# Convenience aliases; dune is the build system.

.PHONY: all check test lint stats fixtures bench bench-snapshot fmt clean

all:
	dune build @all

# Tier-1 verification in one command.  The formatting check only runs
# when ocamlformat is installed (version pinned in .ocamlformat); the
# build and tests never depend on it.
check:
	dune build && dune runtest
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  echo "checking formatting"; dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

test: check

# Static diagnostics: every registered app must audit clean under
# --strict, the committed clean model fixture must pass, and each
# seeded-corruption fixture must fail with its documented rule code.
lint:
	dune build bin/opprox_cli.exe
	dune exec --no-build bin/opprox_cli.exe -- check --strict
	dune exec --no-build bin/opprox_cli.exe -- check kmeans --strict \
	  --models test/fixtures/trained_kmeans.sexp
	@for f in corrupt_nan_coeff corrupt_inverted_ci; do \
	  if dune exec --no-build bin/opprox_cli.exe -- check kmeans \
	       --models test/fixtures/$$f.sexp >/dev/null 2>&1; then \
	    echo "lint: $$f.sexp was NOT flagged"; exit 1; \
	  else echo "lint: $$f.sexp flagged (ok)"; fi; \
	done
	@for f in corrupt_level_range corrupt_ragged; do \
	  if dune exec --no-build bin/opprox_cli.exe -- check kmeans \
	       --schedule test/fixtures/$$f.sexp >/dev/null 2>&1; then \
	    echo "lint: $$f.sexp was NOT flagged"; exit 1; \
	  else echo "lint: $$f.sexp flagged (ok)"; fi; \
	done
	@echo "lint: ok"

# Observability smoke test: a reduced pipeline pass must complete and
# report live metrics, and the tracer must emit loadable JSON.
stats:
	dune build bin/opprox_cli.exe
	dune exec --no-build bin/opprox_cli.exe -- stats
	dune exec --no-build bin/opprox_cli.exe -- stats kmeans --trace /tmp/opprox_stats_trace.json \
	  --metrics-sexp > /dev/null
	@test -s /tmp/opprox_stats_trace.json && echo "stats: trace written (ok)"
	@rm -f /tmp/opprox_stats_trace.json

# Regenerate the committed corruption fixtures under test/fixtures/.
fixtures:
	dune exec test/gen_fixtures.exe

# Full experiment harness (reduced sampling).
bench:
	dune exec bench/main.exe -- --quick

# Regenerate the committed benchmark snapshots (BENCH_pool.json,
# BENCH_checkpoint.json, and BENCH_obs.json) from the bechamel micro-suite.
bench-snapshot:
	dune exec bench/main.exe -- --bechamel

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
