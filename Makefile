# Convenience aliases; dune is the build system.

.PHONY: all check test lint stats serve-smoke corpus-smoke pool-smoke conc-smoke control-smoke search-smoke fixtures bench bench-snapshot fmt clean

all:
	dune build @all

# Tier-1 verification in one command.  The formatting check only runs
# when ocamlformat is installed (version pinned in .ocamlformat); the
# build and tests never depend on it.
check:
	dune build && dune runtest
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  echo "checking formatting"; dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

test: check

# Static diagnostics: every registered app must audit clean under
# --strict, the committed clean model fixture must pass, and each
# seeded-corruption fixture must fail with its documented rule code.
lint:
	dune build bin/opprox_cli.exe
	dune exec --no-build bin/opprox_cli.exe -- check --strict
	dune exec --no-build bin/opprox_cli.exe -- check kmeans --strict \
	  --models test/fixtures/trained_kmeans.sexp
	@for f in corrupt_nan_coeff corrupt_inverted_ci; do \
	  if dune exec --no-build bin/opprox_cli.exe -- check kmeans \
	       --models test/fixtures/$$f.sexp >/dev/null 2>&1; then \
	    echo "lint: $$f.sexp was NOT flagged"; exit 1; \
	  else echo "lint: $$f.sexp flagged (ok)"; fi; \
	done
	@for f in corrupt_level_range corrupt_ragged; do \
	  if dune exec --no-build bin/opprox_cli.exe -- check kmeans \
	       --schedule test/fixtures/$$f.sexp >/dev/null 2>&1; then \
	    echo "lint: $$f.sexp was NOT flagged"; exit 1; \
	  else echo "lint: $$f.sexp flagged (ok)"; fi; \
	done
	@echo "lint: ok"

# Observability smoke test: a reduced pipeline pass must complete and
# report live metrics, and the tracer must emit loadable JSON.
stats:
	dune build bin/opprox_cli.exe
	dune exec --no-build bin/opprox_cli.exe -- stats
	dune exec --no-build bin/opprox_cli.exe -- stats kmeans --trace /tmp/opprox_stats_trace.json \
	  --metrics-sexp > /dev/null
	@test -s /tmp/opprox_stats_trace.json && echo "stats: trace written (ok)"
	@rm -f /tmp/opprox_stats_trace.json

# Serving smoke test: a daemon on a temp socket must answer a cold
# request with a plan (cache miss), the repeat from the cache (hit),
# reject a bad budget and a malformed frame with nonzero exits, and
# drain to exit status 0 on SIGTERM.
serve-smoke:
	dune build bin/opprox_cli.exe
	@set -e; \
	SOCK=$$(mktemp -u /tmp/opprox-smoke-XXXXXX.sock); \
	OPX="dune exec --no-build bin/opprox_cli.exe --"; \
	$$OPX serve --socket $$SOCK --models test/fixtures/trained_kmeans.sexp \
	  > /tmp/opprox_serve_smoke.log 2>&1 & \
	SRV=$$!; \
	trap 'kill $$SRV 2>/dev/null || true; rm -f $$SOCK /tmp/opprox_serve_smoke.log' EXIT; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	[ -S $$SOCK ] || { echo "serve-smoke: daemon never bound $$SOCK"; exit 1; }; \
	$$OPX request kmeans --socket $$SOCK --budget 12 | grep -q "source: solved" \
	  && echo "serve-smoke: cold request planned (ok)"; \
	$$OPX request kmeans --socket $$SOCK --budget 12 | grep -q "source: cache" \
	  && echo "serve-smoke: repeat served from cache (ok)"; \
	if $$OPX request kmeans --socket $$SOCK --budget 150 >/dev/null 2>&1; then \
	  echo "serve-smoke: bad budget was NOT rejected"; exit 1; \
	else echo "serve-smoke: bad budget rejected (ok)"; fi; \
	if $$OPX request --socket $$SOCK --malformed >/dev/null 2>&1; then \
	  echo "serve-smoke: malformed frame was NOT rejected"; exit 1; \
	else echo "serve-smoke: malformed frame rejected (ok)"; fi; \
	kill -TERM $$SRV; \
	if wait $$SRV; then echo "serve-smoke: graceful drain on SIGTERM (ok)"; \
	else echo "serve-smoke: daemon exited non-zero on SIGTERM"; \
	  cat /tmp/opprox_serve_smoke.log; exit 1; fi; \
	if [ -S $$SOCK ]; then echo "serve-smoke: socket file not removed"; exit 1; fi; \
	echo "serve-smoke: ok"

# Corpus smoke test: precompute a tiny plan corpus for the committed
# kmeans fixture, serve it, and walk the whole lookup ladder over the
# wire: an on-grid request answers from the corpus, an off-grid one from
# the nearest-neighbour fallback, a below-grid one pays one solve and
# then hits the LRU, and after a SIGTERM drain a restarted daemon with
# --cache-restore answers the below-grid key from the restored cache.
corpus-smoke:
	dune build bin/opprox_cli.exe
	@set -e; \
	DIR=$$(mktemp -d /tmp/opprox-corpus-XXXXXX); \
	SOCK=$$DIR/serve.sock; \
	OPX="dune exec --no-build bin/opprox_cli.exe --"; \
	trap 'kill $$SRV 2>/dev/null || true; rm -rf $$DIR' EXIT; \
	$$OPX precompute --models test/fixtures/trained_kmeans.sexp \
	  --budgets 5,10,20 -o $$DIR/plans.opx; \
	$$OPX check --corpus $$DIR/plans.opx --models test/fixtures/trained_kmeans.sexp \
	  && echo "corpus-smoke: corpus lints clean (ok)"; \
	$$OPX serve --socket $$SOCK --models test/fixtures/trained_kmeans.sexp \
	  --corpus $$DIR/plans.opx --cache-restore $$DIR/cache.sexp \
	  > $$DIR/serve.log 2>&1 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	[ -S $$SOCK ] || { echo "corpus-smoke: daemon never bound $$SOCK"; cat $$DIR/serve.log; exit 1; }; \
	$$OPX request kmeans --socket $$SOCK --budget 10 | grep -q "source: corpus" \
	  && echo "corpus-smoke: on-grid request served from corpus (ok)"; \
	$$OPX request kmeans --socket $$SOCK --budget 12 | grep -q "source: nn" \
	  && echo "corpus-smoke: off-grid request served from nearest neighbour (ok)"; \
	$$OPX request kmeans --socket $$SOCK --budget 4.2 | grep -q "source: solved" \
	  && echo "corpus-smoke: below-grid request solved cold (ok)"; \
	$$OPX request kmeans --socket $$SOCK --budget 4.2 | grep -q "source: cache" \
	  && echo "corpus-smoke: repeat served from LRU (ok)"; \
	kill -TERM $$SRV; \
	wait $$SRV || { echo "corpus-smoke: daemon exited non-zero on SIGTERM"; cat $$DIR/serve.log; exit 1; }; \
	[ -s $$DIR/cache.sexp ] || { echo "corpus-smoke: no cache snapshot written"; exit 1; }; \
	echo "corpus-smoke: cache snapshot written on drain (ok)"; \
	$$OPX serve --socket $$SOCK --models test/fixtures/trained_kmeans.sexp \
	  --corpus $$DIR/plans.opx --cache-restore $$DIR/cache.sexp \
	  > $$DIR/serve2.log 2>&1 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	[ -S $$SOCK ] || { echo "corpus-smoke: restarted daemon never bound $$SOCK"; cat $$DIR/serve2.log; exit 1; }; \
	$$OPX request kmeans --socket $$SOCK --budget 4.2 | grep -q "source: cache" \
	  && echo "corpus-smoke: restart answers from restored cache (ok)"; \
	kill -TERM $$SRV; wait $$SRV || true; \
	echo "corpus-smoke: ok"

# Pool scaling smoke test: a j2 pool must produce a bit-identical
# training dataset no slower (within tolerance) than a j1 pool, even on
# a single-core runner where the surplus worker parks under the active
# cap.  Fast enough for CI; the full gate runs under bench-snapshot.
pool-smoke:
	dune build bench/main.exe
	dune exec --no-build bench/main.exe -- --pool-smoke

# Concurrency smoke test: the seeded defect fixtures must each fail
# with their documented CONC code, and the deterministic self-exercise
# suite (pool stress, shardmap, plancache, singleflight, server
# loopback under seeded interleaving widening) must report clean.
conc-smoke:
	dune build bin/opprox_cli.exe
	@for f in deadlock unguarded reentrant; do \
	  if dune exec --no-build bin/opprox_cli.exe -- check \
	       --conc-fixture $$f >/dev/null 2>&1; then \
	    echo "conc-smoke: $$f fixture was NOT flagged"; exit 1; \
	  else echo "conc-smoke: $$f fixture flagged (ok)"; fi; \
	done
	dune exec --no-build bin/opprox_cli.exe -- check --concurrency --strict
	@echo "conc-smoke: ok"

# Online-recontrol smoke test: on a small-scale bodytrack training
# (seconds, not minutes — same pipeline, trimmed inputs), the static
# plan must blow its budget on a perturbed input while the controlled
# run replans at a phase boundary and holds it; then the same scenario
# again with the replans streamed as telemetry frames to a serve
# daemon answering with plan deltas over a real socket.
control-smoke:
	dune build bin/opprox_cli.exe
	@set -e; \
	DIR=$$(mktemp -d /tmp/opprox-control-XXXXXX); \
	SOCK=$$DIR/serve.sock; \
	OPX="dune exec --no-build bin/opprox_cli.exe --"; \
	SMALL="-p 3 --inputs 2,16,3;3,24,4 --joint 4"; \
	trap 'kill $$SRV 2>/dev/null || true; rm -rf $$DIR' EXIT; \
	$$OPX train bodytrack $$SMALL -o $$DIR/bt.sexp >/dev/null 2>&1; \
	$$OPX run bodytrack $$SMALL -b 10 --perturb 1.5 --controlled \
	  > $$DIR/run.out 2>/dev/null; \
	grep -q "static:.*over budget" $$DIR/run.out \
	  || { echo "control-smoke: static plan did NOT violate its budget"; cat $$DIR/run.out; exit 1; }; \
	echo "control-smoke: static plan violates on the perturbed input (ok)"; \
	grep -Eq "controlled: [1-9][0-9]* replan\(s\), budget held" $$DIR/run.out \
	  || { echo "control-smoke: controlled run did not replan and hold"; cat $$DIR/run.out; exit 1; }; \
	echo "control-smoke: controlled run replanned and held the budget (ok)"; \
	$$OPX serve --socket $$SOCK --models $$DIR/bt.sexp > $$DIR/serve.log 2>&1 & \
	SRV=$$!; \
	for i in $$(seq 1 100); do [ -S $$SOCK ] && break; sleep 0.1; done; \
	[ -S $$SOCK ] || { echo "control-smoke: daemon never bound $$SOCK"; cat $$DIR/serve.log; exit 1; }; \
	$$OPX run bodytrack $$SMALL -b 10 --perturb 1.5 --via $$SOCK \
	  > $$DIR/via.out 2>/dev/null; \
	grep -q "streaming telemetry via" $$DIR/via.out \
	  || { echo "control-smoke: run did not stream telemetry"; cat $$DIR/via.out; exit 1; }; \
	grep -Eq "controlled: [1-9][0-9]* replan\(s\), budget held" $$DIR/via.out \
	  || { echo "control-smoke: streamed recontrol did not replan and hold"; \
	       cat $$DIR/via.out $$DIR/serve.log; exit 1; }; \
	echo "control-smoke: streamed recontrol replanned and held the budget (ok)"; \
	kill -TERM $$SRV; wait $$SRV || true; \
	echo "control-smoke: ok"

# Stochastic-search smoke test: on a small-scale transformer training
# the multi-chain MCMC must plan the 9^13-point joint space (enumeration
# is infeasible there — the fallback the PLAN010 rule makes visible) in
# seconds with a lint-clean plan (opprox search exits non-zero on any
# PLAN/SRCH error), and the result must be bit-identical across repeat
# runs and across --jobs: chains are seeded by (seed, index), never by
# scheduling.
search-smoke:
	dune build bin/opprox_cli.exe
	@set -e; \
	DIR=$$(mktemp -d /tmp/opprox-search-XXXXXX); \
	trap 'rm -rf $$DIR' EXIT; \
	ARGS="search transformer -b 10 -p 2 --inputs 32,12,8 --joint 3 --chains 2 --iters 400 --seed 11"; \
	dune exec --no-build bin/opprox_cli.exe -- $$ARGS -j 1 > $$DIR/j1.out \
	  || { echo "search-smoke: search failed"; cat $$DIR/j1.out; exit 1; }; \
	grep -q "2541865828329 joint configs" $$DIR/j1.out \
	  || { echo "search-smoke: 9^13 joint space not reported"; cat $$DIR/j1.out; exit 1; }; \
	grep -q "predicted speedup" $$DIR/j1.out \
	  || { echo "search-smoke: no search stats line"; cat $$DIR/j1.out; exit 1; }; \
	echo "search-smoke: planned the 9^13 joint space, plan lint-clean (ok)"; \
	dune exec --no-build bin/opprox_cli.exe -- $$ARGS -j 1 > $$DIR/j1b.out; \
	cmp -s $$DIR/j1.out $$DIR/j1b.out \
	  || { echo "search-smoke: repeat run differs at the same seed"; \
	       diff $$DIR/j1.out $$DIR/j1b.out; exit 1; }; \
	echo "search-smoke: repeat run bit-identical (ok)"; \
	dune exec --no-build bin/opprox_cli.exe -- $$ARGS -j 4 > $$DIR/j4.out; \
	cmp -s $$DIR/j1.out $$DIR/j4.out \
	  || { echo "search-smoke: output differs between -j 1 and -j 4"; \
	       diff $$DIR/j1.out $$DIR/j4.out; exit 1; }; \
	echo "search-smoke: bit-identical across --jobs (ok)"; \
	echo "search-smoke: ok"

# Regenerate the committed corruption fixtures under test/fixtures/.
fixtures:
	dune exec test/gen_fixtures.exe

# Full experiment harness (reduced sampling).
bench:
	dune exec bench/main.exe -- --quick

# Regenerate the committed benchmark snapshots (BENCH_pool.json,
# BENCH_checkpoint.json, BENCH_obs.json, BENCH_serve.json,
# BENCH_corpus.json, BENCH_conc.json, BENCH_control.json, and
# BENCH_search.json) from the bechamel micro-suite.  Exits non-zero if
# the pool scaling gate fails (inverted scaling, or under 1.5x at j4 on
# a >= 4-core host), the corpus gate fails (corpus hit over 1.25x an
# LRU hit, corpus/nn lookups over 0.2 ms, or duplicate solves not held
# to one per fingerprint under a hot-key loadgen storm), the conc gate
# fails (disabled-checker Dmutex lock/unlock more than 1.35x a bare
# Mutex), the control gate fails (the controller not reducing
# budget-violations vs the static plan on the perturbed-input suite,
# never replanning, re-simulating executed phases, or a suffix
# re-solve costing more than a controlled run), or the search gate
# fails (the stochastic solve on the transformer's 9^13 space — where
# enumeration is recorded as infeasible, never attempted — missing its
# wall-clock bound, differing across seeds or pool widths, or
# returning an infeasible or over-budget plan).
bench-snapshot:
	dune exec bench/main.exe -- --bechamel

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
