# Convenience aliases; dune is the build system.

.PHONY: all check test bench bench-snapshot fmt clean

all:
	dune build @all

# Tier-1 verification in one command.  The formatting check only runs
# when ocamlformat is installed (version pinned in .ocamlformat); the
# build and tests never depend on it.
check:
	dune build && dune runtest
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  echo "checking formatting"; dune build @fmt; \
	else \
	  echo "ocamlformat not installed; skipping format check"; \
	fi

test: check

# Full experiment harness (reduced sampling).
bench:
	dune exec bench/main.exe -- --quick

# Regenerate the committed benchmark snapshots (BENCH_pool.json and
# BENCH_checkpoint.json) from the bechamel micro-suite.
bench-snapshot:
	dune exec bench/main.exe -- --bechamel

fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
