# Convenience aliases; dune is the build system.

.PHONY: all check test bench fmt clean

all:
	dune build @all

# Tier-1 verification in one command.
check:
	dune build && dune runtest

test: check

# Full experiment harness (reduced sampling); refreshes BENCH_pool.json.
bench:
	dune exec bench/main.exe -- --quick

# Requires ocamlformat (version pinned in .ocamlformat); the build and
# tests never depend on it.
fmt:
	dune build @fmt --auto-promote

clean:
	dune clean
