(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing a representative unit of the work that experiment performs
   (a simulator run, a model fit, an optimizer solve, ...). *)

open Bechamel
open Toolkit
module Schedule = Opprox_sim.Schedule
module Driver = Opprox_sim.Driver
module App = Opprox_sim.App
module Rng = Opprox_util.Rng
module Pool = Opprox_util.Pool
module Training = Opprox.Training
module Oracle = Opprox.Oracle

let app name = Opprox_apps.Registry.find name

let run_uniform name levels () =
  let a = app name in
  ignore (Driver.evaluate a (Schedule.uniform ~n_phases:1 levels) a.App.default_input)

(* Model-fitting payload for the fig12/13 benchmarks. *)
let polyreg_payload =
  lazy
    (let rng = Rng.create 3 in
     let rows = Array.init 120 (fun i -> [| float_of_int (i mod 12); float_of_int (i / 12) |]) in
     let ys = Array.map (fun r -> (r.(0) *. r.(1)) +. (2.0 *. r.(0)) +. 1.0) rows in
     (rng, rows, ys))

let fit_polyreg () =
  let rng, rows, ys = Lazy.force polyreg_payload in
  ignore (Opprox_ml.Polyreg.fit ~rng:(Rng.copy rng) rows ys)

let mic_payload =
  lazy
    (let rng = Rng.create 4 in
     let xs = Array.init 300 (fun _ -> Rng.uniform rng) in
     let ys = Array.map (fun x -> sin (10.0 *. x)) xs in
     (xs, ys))

let compute_mic () =
  let xs, ys = Lazy.force mic_payload in
  ignore (Opprox_ml.Mic.compute xs ys)

(* A trained pipeline on the toy-scale PSO app for the optimizer benchmark
   (training once, outside the measured region). *)
let optimizer_payload =
  lazy
    (let a = app "comd" in
     let config =
       {
         Opprox.default_train_config with
         n_phases = Some 2;
         training = { Opprox.Training.default_config with joint_samples_per_phase = 4 };
       }
     in
     Opprox.train ~config a)

let run_optimizer () =
  let tr = Lazy.force optimizer_payload in
  ignore (Opprox.optimize tr ~budget:10.0)

let dtree_payload =
  lazy
    (let rng = Rng.create 5 in
     let rows = Array.init 200 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
     let labels = Array.map (fun r -> if r.(0) +. r.(1) > 1.0 then 1 else 0) rows in
     (rows, labels))

let fit_dtree () =
  let rows, labels = Lazy.force dtree_payload in
  ignore (Opprox_ml.Dtree.fit rows labels)

(* ---------------------------------------------------------- pool group *)

(* Sequential vs 1/2/4-domain Training.collect and Oracle.measured_space.
   The j1 pool exercises the sequential fast path (no domains, no locks);
   j2/j4 measure real fan-out on multi-core hosts and scheduling overhead
   on single-core ones.  Estimates land in BENCH_pool.json so later PRs
   can track the trajectory. *)
let pool_jobs = [ 1; 2; 4 ]
let pool_table = lazy (List.map (fun j -> (j, Pool.create ~jobs:j ())) pool_jobs)
let pool j = List.assoc j (Lazy.force pool_table)

(* Two comd inputs keep one collect around a second; the shape (local
   sweeps + joint samples over a flat task list) is the production one. *)
let pool_training_config =
  lazy
    {
      Training.default_config with
      joint_samples_per_phase = 2;
      inputs = Some (Array.sub (app "comd").App.training_inputs 0 2);
    }

let collect_with_pool j () =
  ignore
    (Training.collect ~config:(Lazy.force pool_training_config) ~pool:(pool j) (app "comd")
       ~n_phases:2)

let oracle_with_pool j () =
  (* Clear the memo so every iteration measures the sweep, not a lookup;
     the driver's exact-run cache stays warm (shared baseline).  ffmpeg
     has the cheapest full enumeration (216 configs). *)
  Oracle.clear_cache ();
  let a = app "ffmpeg" in
  ignore (Oracle.measured_space ~pool:(pool j) a ~input:a.App.default_input)

let pool_tests =
  List.concat_map
    (fun j ->
      [
        Test.make
          ~name:(Printf.sprintf "pool:training-collect-j%d" j)
          (Staged.stage (collect_with_pool j));
        Test.make
          ~name:(Printf.sprintf "pool:oracle-space-j%d" j)
          (Staged.stage (oracle_with_pool j));
      ])
    pool_jobs

let pool_snapshot_file = "BENCH_pool.json"

let write_pool_snapshot entries =
  let oc = open_out pool_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let tests =
  [
    Test.make ~name:"tab1:config-space-enumeration" (Staged.stage (fun () ->
        List.iter (fun (a : App.t) -> ignore (Opprox_sim.Config_space.all a.abs)) Opprox_apps.Registry.all));
    Test.make ~name:"fig2:lulesh-run" (Staged.stage (run_uniform "lulesh" [| 1; 1; 1; 1 |]));
    Test.make ~name:"fig3:lulesh-heavy-run" (Staged.stage (run_uniform "lulesh" [| 3; 5; 5; 5 |]));
    Test.make ~name:"fig4_5:lulesh-phase-run" (Staged.stage (fun () ->
        let a = app "lulesh" in
        ignore
          (Driver.evaluate a
             (Schedule.single_phase_active ~n_phases:4 ~phase:3 [| 2; 2; 2; 2 |])
             a.App.default_input)));
    Test.make ~name:"fig7:ffmpeg-run" (Staged.stage (run_uniform "ffmpeg" [| 2; 2; 2 |]));
    Test.make ~name:"fig9:comd-run" (Staged.stage (run_uniform "comd" [| 2; 2; 2 |]));
    Test.make ~name:"fig10:bodytrack-run" (Staged.stage (run_uniform "bodytrack" [| 2; 2; 2; 1 |]));
    Test.make ~name:"fig11:pso-run" (Staged.stage (run_uniform "pso" [| 1; 1; 1 |]));
    Test.make ~name:"fig12:polyreg-fit" (Staged.stage fit_polyreg);
    Test.make ~name:"fig13:mic-compute" (Staged.stage compute_mic);
    Test.make ~name:"fig14:optimizer-solve" (Staged.stage run_optimizer);
    Test.make ~name:"fig15:dtree-fit" (Staged.stage fit_dtree);
    Test.make ~name:"tab2:exact-run-cached" (Staged.stage (fun () ->
        let a = app "pso" in
        ignore (Driver.run_exact a a.App.default_input)));
  ]

(* Measure one test and return its (name, ns-per-run estimate) pairs. *)
let measure cfg instances test =
  let results = Benchmark.all cfg instances test in
  Hashtbl.fold
    (fun name raw acc ->
      let est =
        match
          Analyze.one
            (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        with
        | ols -> ( match Analyze.OLS.estimates ols with Some [ est ] -> Some est | _ -> None)
        | exception _ -> None
      in
      (name, est) :: acc)
    results []

let print_entry (name, est) =
  match est with
  | Some est -> Printf.printf "  %-28s %12.1f ns/run\n%!" name est
  | None -> Printf.printf "  %-28s (no estimate)\n%!" name

let run () =
  print_endline "Bechamel micro-benchmarks (monotonic clock, OLS estimate per run):";
  (* Force payload construction (training, datasets) outside the measured
     region. *)
  ignore (Lazy.force polyreg_payload);
  ignore (Lazy.force mic_payload);
  ignore (Lazy.force optimizer_payload);
  ignore (Lazy.force dtree_payload);
  ignore (Lazy.force pool_table);
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  List.iter (fun test -> List.iter print_entry (measure cfg instances test)) tests;
  let pool_entries = List.concat_map (measure cfg instances) pool_tests in
  let pool_entries =
    (* Hashtbl.fold order is unspecified; restore the declaration order. *)
    List.sort (fun (a, _) (b, _) -> compare a b) pool_entries
  in
  List.iter print_entry pool_entries;
  write_pool_snapshot pool_entries;
  Printf.printf "  pool group snapshot -> %s\n%!" pool_snapshot_file;
  List.iter (fun (_, p) -> Pool.shutdown p) (Lazy.force pool_table)
