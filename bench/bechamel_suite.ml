(* Bechamel micro-benchmarks: one Test.make per reproduced table/figure,
   timing a representative unit of the work that experiment performs
   (a simulator run, a model fit, an optimizer solve, ...). *)

open Bechamel
open Toolkit
module Schedule = Opprox_sim.Schedule
module Driver = Opprox_sim.Driver
module App = Opprox_sim.App
module Rng = Opprox_util.Rng
module Pool = Opprox_util.Pool
module Training = Opprox.Training
module Oracle = Opprox.Oracle

let app name = Opprox_apps.Registry.find name

let run_uniform name levels () =
  let a = app name in
  ignore (Driver.evaluate a (Schedule.uniform ~n_phases:1 levels) a.App.default_input)

(* Model-fitting payload for the fig12/13 benchmarks. *)
let polyreg_payload =
  lazy
    (let rng = Rng.create 3 in
     let rows = Array.init 120 (fun i -> [| float_of_int (i mod 12); float_of_int (i / 12) |]) in
     let ys = Array.map (fun r -> (r.(0) *. r.(1)) +. (2.0 *. r.(0)) +. 1.0) rows in
     (rng, rows, ys))

let fit_polyreg () =
  let rng, rows, ys = Lazy.force polyreg_payload in
  ignore (Opprox_ml.Polyreg.fit ~rng:(Rng.copy rng) rows ys)

let mic_payload =
  lazy
    (let rng = Rng.create 4 in
     let xs = Array.init 300 (fun _ -> Rng.uniform rng) in
     let ys = Array.map (fun x -> sin (10.0 *. x)) xs in
     (xs, ys))

let compute_mic () =
  let xs, ys = Lazy.force mic_payload in
  ignore (Opprox_ml.Mic.compute xs ys)

(* A trained pipeline on the toy-scale PSO app for the optimizer benchmark
   (training once, outside the measured region). *)
let optimizer_payload =
  lazy
    (let a = app "comd" in
     let config =
       {
         Opprox.default_train_config with
         n_phases = Some 2;
         training = { Opprox.Training.default_config with joint_samples_per_phase = 4 };
       }
     in
     Opprox.train ~config a)

let run_optimizer () =
  let tr = Lazy.force optimizer_payload in
  ignore (Opprox.optimize tr ~budget:10.0)

(* Naive vs hoisted prediction over one full config-space enumeration —
   the inner loop of Optimizer.optimize.  The naive arm re-classifies the
   input and re-allocates every feature vector per query; the hoisted arm
   compiles the pipeline once (Models.predictor) and reuses scratch. *)
let predict_configs = lazy (Opprox_sim.Config_space.all (app "comd").App.abs)

let predict_naive () =
  let tr = Lazy.force optimizer_payload in
  let models = tr.Opprox.models in
  let input = (app "comd").App.default_input in
  let n_phases = Opprox.Models.n_phases models in
  List.iter
    (fun levels ->
      for phase = 0 to n_phases - 1 do
        ignore (Opprox.Models.predict models ~input ~phase ~levels)
      done)
    (Lazy.force predict_configs)

let predict_hoisted () =
  let tr = Lazy.force optimizer_payload in
  let models = tr.Opprox.models in
  let input = (app "comd").App.default_input in
  let n_phases = Opprox.Models.n_phases models in
  let predict = Opprox.Models.predictor models ~input in
  List.iter
    (fun levels ->
      for phase = 0 to n_phases - 1 do
        ignore (predict ~phase ~levels)
      done)
    (Lazy.force predict_configs)

let predict_tests =
  [
    Test.make ~name:"opt:predict-naive" (Staged.stage predict_naive);
    Test.make ~name:"opt:predict-hoisted" (Staged.stage predict_hoisted);
  ]

let dtree_payload =
  lazy
    (let rng = Rng.create 5 in
     let rows = Array.init 200 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
     let labels = Array.map (fun r -> if r.(0) +. r.(1) > 1.0 then 1 else 0) rows in
     (rows, labels))

let fit_dtree () =
  let rows, labels = Lazy.force dtree_payload in
  ignore (Opprox_ml.Dtree.fit rows labels)

(* ---------------------------------------------------------- pool group *)

(* Sequential vs 1/2/4-domain Training.collect and Oracle.measured_space.
   The j1 pool exercises the sequential fast path (no domains, no locks);
   j2/j4 measure real fan-out on multi-core hosts and scheduling overhead
   on single-core ones.  Estimates land in BENCH_pool.json so later PRs
   can track the trajectory. *)
let pool_jobs = [ 1; 2; 4 ]
let pool_table = lazy (List.map (fun j -> (j, Pool.create ~jobs:j ())) pool_jobs)
let pool j = List.assoc j (Lazy.force pool_table)

(* Four comd inputs so the hoisted per-input parallelism has as many
   independent groups as the widest pool has domains; the shape (local
   sweeps + joint samples over an input-major task list) is the
   production one. *)
let pool_training_config =
  lazy
    {
      Training.default_config with
      joint_samples_per_phase = 2;
      inputs = Some (Array.sub (app "comd").App.training_inputs 0 4);
    }

let collect_with_pool j () =
  (* Clear the whole-evaluation memo so every iteration measures real
     simulation fan-out, not lookups; the exact-run and checkpoint caches
     stay warm (shared baseline / production prefix reuse). *)
  Driver.clear_eval_cache ();
  ignore
    (Training.collect ~config:(Lazy.force pool_training_config) ~pool:(pool j) (app "comd")
       ~n_phases:2)

let oracle_with_pool j () =
  (* Clear the memo so every iteration measures the sweep, not a lookup;
     the driver's exact-run cache stays warm (shared baseline).  ffmpeg
     has the cheapest full enumeration (216 configs). *)
  Oracle.clear_cache ();
  Driver.clear_eval_cache ();
  let a = app "ffmpeg" in
  ignore (Oracle.measured_space ~pool:(pool j) a ~input:a.App.default_input)

let pool_tests =
  List.concat_map
    (fun j ->
      [
        Test.make
          ~name:(Printf.sprintf "pool:training-collect-j%d" j)
          (Staged.stage (collect_with_pool j));
        Test.make
          ~name:(Printf.sprintf "pool:oracle-space-j%d" j)
          (Staged.stage (oracle_with_pool j));
      ])
    pool_jobs

(* ----------------------------------------------------- checkpoint group *)

(* Scratch vs checkpointed+memoized offline stages at one domain.  The
   scratch arms disable both the phase-boundary checkpoint path and the
   whole-evaluation memo (pre-PR behaviour, exact-run cache warm in both
   arms); the memo arms run the production configuration, whose steady
   state restores exact phase prefixes from checkpoints and serves
   repeated evaluations from the memo.  Training.collect datasets are
   asserted bit-identical across the two configurations in the test
   suite (test_checkpoint), so the speedup is free of semantic drift. *)
let without_driver_caches f =
  Driver.set_checkpointing false;
  Driver.set_eval_cache false;
  Fun.protect
    ~finally:(fun () ->
      Driver.set_checkpointing true;
      Driver.set_eval_cache true)
    f

let ckpt_training_config =
  lazy
    {
      Training.default_config with
      joint_samples_per_phase = 2;
      inputs = Some (Array.sub (app "comd").App.training_inputs 0 2);
    }

let ckpt_collect () =
  ignore
    (Training.collect ~config:(Lazy.force ckpt_training_config) ~pool:(pool 1) (app "comd")
       ~n_phases:4)

let ckpt_probe () = ignore (Opprox.Phases.probe ~samples_per_phase:4 (app "comd") ~n_phases:4)

let ckpt_tests =
  [
    Test.make ~name:"ckpt:collect-scratch-j1"
      (Staged.stage (fun () -> without_driver_caches ckpt_collect));
    Test.make ~name:"ckpt:collect-memo-j1" (Staged.stage ckpt_collect);
    Test.make ~name:"ckpt:phase-probe-scratch"
      (Staged.stage (fun () -> without_driver_caches ckpt_probe));
    Test.make ~name:"ckpt:phase-probe-memo" (Staged.stage ckpt_probe);
  ]

let ckpt_snapshot_file = "BENCH_checkpoint.json"

let write_ckpt_snapshot entries =
  let est name = Option.join (List.assoc_opt name entries) in
  let speedup scratch memo =
    match (est scratch, est memo) with
    | Some a, Some b when b > 0.0 -> Some (a /. b)
    | _ -> None
  in
  let oc = open_out ckpt_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"jobs\": 1,\n";
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"speedups\": {\n";
  let pairs =
    [
      ("training-collect", "ckpt:collect-scratch-j1", "ckpt:collect-memo-j1");
      ("phase-probe", "ckpt:phase-probe-scratch", "ckpt:phase-probe-memo");
      ("optimizer-predict", "opt:predict-naive", "opt:predict-hoisted");
    ]
  in
  let np = List.length pairs in
  List.iteri
    (fun i (label, scratch, memo) ->
      let value =
        match speedup scratch memo with Some s -> Printf.sprintf "%.2f" s | None -> "null"
      in
      Printf.fprintf oc "    %S: %s%s\n" label value (if i = np - 1 then "" else ","))
    pairs;
  Printf.fprintf oc "  }\n}\n";
  close_out oc

(* ------------------------------------------------------------ obs group *)

(* Overhead of the observability layer on its own (counter increment,
   histogram observation, disabled span) and on a production hot path
   (memoized Driver.evaluate, whose memo hit bumps one counter).  The
   primitive arms run 1000 operations per measured call so the estimate
   is well above clock resolution; BENCH_obs.json stores the per-op
   figures.  The disabled arms toggle the global flag inside the call —
   two atomic stores, noise at this batch size. *)
module Metrics = Opprox_obs.Metrics
module Obs_trace = Opprox_obs.Trace

let obs_counter = Metrics.counter "bench.obs.counter"
let obs_hist = Metrics.histogram "bench.obs.hist"
let obs_batch = 1000

let counter_batch () =
  for _ = 1 to obs_batch do
    Metrics.incr obs_counter
  done

let with_metrics_off f =
  Metrics.set_enabled false;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled true) f

let hist_batch () =
  for i = 1 to obs_batch do
    Metrics.observe obs_hist (float_of_int i)
  done

let span_batch () =
  for _ = 1 to obs_batch do
    Obs_trace.with_span "bench" (fun () -> ())
  done

let span_batch_enabled () =
  Obs_trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs_trace.set_enabled false;
      Obs_trace.clear ())
    span_batch

let eval_memo_hit () =
  (* Steady state: the schedule/input pair is already in the eval memo,
     so each call is a lookup plus one [driver.eval.hit] increment. *)
  let a = app "pso" in
  ignore (Driver.evaluate a (Schedule.uniform ~n_phases:1 [| 1; 1; 1 |]) a.App.default_input)

let obs_tests =
  [
    Test.make ~name:"obs:counter-incr-on-x1000" (Staged.stage counter_batch);
    Test.make ~name:"obs:counter-incr-off-x1000"
      (Staged.stage (fun () -> with_metrics_off counter_batch));
    Test.make ~name:"obs:hist-observe-on-x1000" (Staged.stage hist_batch);
    Test.make ~name:"obs:hist-observe-off-x1000"
      (Staged.stage (fun () -> with_metrics_off hist_batch));
    Test.make ~name:"obs:span-off-x1000" (Staged.stage span_batch);
    Test.make ~name:"obs:span-on-x1000" (Staged.stage span_batch_enabled);
    Test.make ~name:"obs:eval-memo-metrics-on" (Staged.stage eval_memo_hit);
    Test.make ~name:"obs:eval-memo-metrics-off"
      (Staged.stage (fun () -> with_metrics_off eval_memo_hit));
  ]

let obs_snapshot_file = "BENCH_obs.json"

let write_obs_snapshot entries =
  let est name = Option.join (List.assoc_opt name entries) in
  let per_op name = Option.map (fun ns -> ns /. float_of_int obs_batch) (est name) in
  let num = function Some v -> Printf.sprintf "%.2f" v | None -> "null" in
  let oc = open_out obs_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"ops_per_run\": %d,\n" obs_batch;
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"ns_per_op\": {\n";
  Printf.fprintf oc "    \"counter_incr_enabled\": %s,\n" (num (per_op "obs:counter-incr-on-x1000"));
  Printf.fprintf oc "    \"counter_incr_disabled\": %s,\n"
    (num (per_op "obs:counter-incr-off-x1000"));
  Printf.fprintf oc "    \"hist_observe_enabled\": %s,\n" (num (per_op "obs:hist-observe-on-x1000"));
  Printf.fprintf oc "    \"hist_observe_disabled\": %s,\n"
    (num (per_op "obs:hist-observe-off-x1000"));
  Printf.fprintf oc "    \"span_disabled\": %s,\n" (num (per_op "obs:span-off-x1000"));
  Printf.fprintf oc "    \"span_enabled\": %s\n" (num (per_op "obs:span-on-x1000"));
  Printf.fprintf oc "  },\n";
  let ratio =
    match (est "obs:eval-memo-metrics-on", est "obs:eval-memo-metrics-off") with
    | Some on, Some off when off > 0.0 -> Printf.sprintf "%.3f" (on /. off)
    | _ -> "null"
  in
  Printf.fprintf oc "  \"eval_memo_on_over_off\": %s\n}\n" ratio;
  close_out oc

(* ----------------------------------------------------------- conc group *)

(* Cost of the concurrency checker's instrumentation on the lock
   primitive itself.  The contract the whole design rests on: a Dmutex
   with checking off is one atomic load over a bare [Mutex.t], so the
   checker can stay compiled into every lock in the runtime.  The
   checked arms price what [OPPROX_RACECHECK=1] costs (held-stack and
   order-graph bookkeeping) — diagnostic-run overhead, not production.
   1000 lock/unlock pairs per measured call keep the per-op estimate
   well above clock resolution. *)
module Conc = Opprox_util.Conc
module Dmutex = Opprox_util.Dmutex
module Guarded = Opprox_util.Guarded

let conc_batch = 1000
let conc_mutex = Mutex.create ()
let conc_dmutex = Dmutex.create ~name:"bench.conc.lock" ()
let conc_guard = Dmutex.create ~name:"bench.conc.guard" ()
let conc_cell = Guarded.create ~name:"bench.conc.cell" ~locks:[ conc_guard ] 0

let bare_mutex_batch () =
  for _ = 1 to conc_batch do
    Mutex.lock conc_mutex;
    Mutex.unlock conc_mutex
  done

let dmutex_batch () =
  for _ = 1 to conc_batch do
    Dmutex.lock conc_dmutex;
    Dmutex.unlock conc_dmutex
  done

let with_checker_on f =
  Conc.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Conc.set_enabled false;
      Conc.reset ())
    f

let guarded_batch () =
  for _ = 1 to conc_batch do
    ignore (Guarded.get conc_cell : int)
  done

(* The checked Guarded arm holds the guard lock so it measures the
   lockset-membership walk, not a (deduplicated) CONC002 report. *)
let guarded_on_batch () =
  with_checker_on (fun () ->
      Dmutex.lock conc_guard;
      Fun.protect ~finally:(fun () -> Dmutex.unlock conc_guard) guarded_batch)

let conc_tests =
  [
    Test.make ~name:"conc:bare-mutex-x1000" (Staged.stage bare_mutex_batch);
    Test.make ~name:"conc:dmutex-off-x1000" (Staged.stage dmutex_batch);
    Test.make ~name:"conc:dmutex-on-x1000"
      (Staged.stage (fun () -> with_checker_on dmutex_batch));
    Test.make ~name:"conc:guarded-off-x1000" (Staged.stage guarded_batch);
    Test.make ~name:"conc:guarded-on-x1000" (Staged.stage guarded_on_batch);
  ]

let conc_snapshot_file = "BENCH_conc.json"

(* Disabled-checker lock overhead must be within noise of a bare mutex.
   These are ~30 ns operations even batched x1000, and repeated quiet
   runs on this host draw the ratio anywhere in 0.88-1.22; 1.35 gives
   one-sigma headroom over that jitter while still convicting a real
   slow path (an allocation or a second mutex op roughly doubles the
   ratio). *)
let conc_overhead_limit = 1.35

let write_conc_snapshot entries =
  let est name = Option.join (List.assoc_opt name entries) in
  let per_op name = Option.map (fun ns -> ns /. float_of_int conc_batch) (est name) in
  let num = function Some v -> Printf.sprintf "%.2f" v | None -> "null" in
  let ratio =
    match (est "conc:dmutex-off-x1000", est "conc:bare-mutex-x1000") with
    | Some d, Some b when b > 0.0 -> Some (d /. b)
    | _ -> None
  in
  let passed = match ratio with Some r -> r <= conc_overhead_limit | None -> false in
  let oc = open_out conc_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"ops_per_run\": %d,\n" conc_batch;
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"ns_per_op\": {\n";
  Printf.fprintf oc "    \"bare_mutex_lock_unlock\": %s,\n" (num (per_op "conc:bare-mutex-x1000"));
  Printf.fprintf oc "    \"dmutex_checker_off\": %s,\n" (num (per_op "conc:dmutex-off-x1000"));
  Printf.fprintf oc "    \"dmutex_checker_on\": %s,\n" (num (per_op "conc:dmutex-on-x1000"));
  Printf.fprintf oc "    \"guarded_get_checker_off\": %s,\n" (num (per_op "conc:guarded-off-x1000"));
  Printf.fprintf oc "    \"guarded_get_checker_on\": %s\n" (num (per_op "conc:guarded-on-x1000"));
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"gate\": {\n";
  Printf.fprintf oc "    \"dmutex_off_over_bare_mutex\": %s,\n" (num ratio);
  Printf.fprintf oc "    \"max_ratio\": %.2f,\n" conc_overhead_limit;
  Printf.fprintf oc "    \"passed\": %b\n" passed;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  (match (per_op "conc:bare-mutex-x1000", per_op "conc:dmutex-off-x1000", ratio) with
  | Some b, Some d, Some r ->
      Printf.printf
        "  conc gate: bare mutex %.2f ns/op, dmutex-off %.2f ns/op (ratio %.2f, limit %.2f)\n%!"
        b d r conc_overhead_limit
  | _ -> Printf.printf "  conc gate: missing estimates\n%!");
  if not passed then Printf.printf "  CONC GATE FAILED (see %s)\n%!" conc_snapshot_file;
  passed

(* ---------------------------------------------------------- serve group *)

(* The daemon's request path through the in-process loopback transport,
   which runs the full admission / validation / cache / solve pipeline
   plus both wire codecs — everything but the socket itself.  The hit
   arm is the steady state the cache exists for; the cold arm bypasses
   the lookup ([no_cache]) and pays an optimizer solve every call; the
   reject arm prices boundary validation.  BENCH_serve.json records the
   estimates and the cold/hit ratio — the cache's whole value
   proposition as one number. *)
module Serve_protocol = Opprox_serve.Protocol
module Serve_server = Opprox_serve.Server
module Serve_client = Opprox_serve.Client

let serve_payload =
  lazy
    (let server = Serve_server.create [ Lazy.force optimizer_payload ] in
     let client = Serve_client.loopback server in
     (server, client))

let serve_hit_request = lazy (Serve_protocol.request ~app:"comd" ~budget:10.0 ())

let serve_cold_request =
  lazy (Serve_protocol.request ~no_cache:true ~app:"comd" ~budget:10.0 ())

let serve_reject_request = lazy (Serve_protocol.request ~app:"comd" ~budget:0.0 ())

let serve_roundtrip req () =
  let _, client = Lazy.force serve_payload in
  ignore (Serve_client.request client (Lazy.force req))

let serve_fingerprint () =
  ignore
    (Opprox_serve.Plancache.fingerprint ~app:"comd"
       ~input:[| 1.0; 2.0; 3.0 |]
       ~budget:10.0 ~models_hash:"0123456789abcdef0123456789abcdef")

let serve_tests =
  [
    Test.make ~name:"serve:cache-hit" (Staged.stage (serve_roundtrip serve_hit_request));
    Test.make ~name:"serve:cold-solve" (Staged.stage (serve_roundtrip serve_cold_request));
    Test.make ~name:"serve:validation-reject"
      (Staged.stage (serve_roundtrip serve_reject_request));
    Test.make ~name:"serve:fingerprint" (Staged.stage serve_fingerprint);
  ]

let serve_snapshot_file = "BENCH_serve.json"

let write_serve_snapshot entries =
  let est name = Option.join (List.assoc_opt name entries) in
  let oc = open_out serve_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"transport\": \"loopback (codecs + request path, no socket)\",\n";
  Printf.fprintf oc "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  let ratio =
    match (est "serve:cold-solve", est "serve:cache-hit") with
    | Some cold, Some hit when hit > 0.0 -> Printf.sprintf "%.1f" (cold /. hit)
    | _ -> "null"
  in
  Printf.fprintf oc "  \"cold_over_hit\": %s\n}\n" ratio;
  close_out oc

(* --------------------------------------------------------- corpus group *)

(* The lookup-first serving ladder, measured through [Server.handle]
   directly (no wire codecs, whose encode/decode cost would swamp the
   differences between lookup tiers): a precomputed-corpus exact hit off
   the mmap, the nearest-neighbour fallback (including its per-request
   plan audit), a sharded-LRU hit, and a cold solve.  The raw arms price
   the corpus data structure alone (binary search + record decode).
   BENCH_corpus.json commits the estimates plus an open-loop loadgen run
   whose gate proves the singleflight holds duplicate solves to one per
   fingerprint under hot-key skew. *)
module Corpus = Opprox_corpus.Corpus
module Corpus_key = Opprox_corpus.Key
module Precompute = Opprox_corpus.Precompute
module Loadgen = Opprox_serve.Loadgen

let corpus_budgets = [| 5.0; 10.0; 20.0 |]

let corpus_payload =
  lazy
    (let tr = Lazy.force optimizer_payload in
     let path = Filename.temp_file "opprox_bench_corpus" ".opx" in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     ignore (Precompute.run ~budgets:corpus_budgets ~out:path [ tr ]);
     let corpus_server =
       Serve_server.create
         ~config:{ Serve_server.default_config with Serve_server.corpus_path = Some path }
         [ tr ]
     in
     let lru_server = Serve_server.create [ tr ] in
     (path, corpus_server, lru_server))

let corpus_exact_req = lazy (Serve_protocol.request ~app:"comd" ~budget:10.0 ())
let corpus_nn_req = lazy (Serve_protocol.request ~app:"comd" ~budget:12.5 ())

let corpus_cold_req =
  lazy (Serve_protocol.request ~no_cache:true ~app:"comd" ~budget:10.0 ())

let corpus_exact_hit () =
  let _, cs, _ = Lazy.force corpus_payload in
  ignore (Serve_server.handle cs (Lazy.force corpus_exact_req))

let corpus_nn_hit () =
  let _, cs, _ = Lazy.force corpus_payload in
  ignore (Serve_server.handle cs (Lazy.force corpus_nn_req))

let corpus_lru_hit () =
  let _, _, ls = Lazy.force corpus_payload in
  ignore (Serve_server.handle ls (Lazy.force corpus_exact_req))

let corpus_cold_solve () =
  let _, _, ls = Lazy.force corpus_payload in
  ignore (Serve_server.handle ls (Lazy.force corpus_cold_req))

let corpus_raw =
  lazy
    (let path, _, _ = Lazy.force corpus_payload in
     let tr = Lazy.force optimizer_payload in
     let c = Corpus.load path in
     let input = (app "comd").App.default_input in
     let group =
       Corpus_key.group ~app:"comd" ~input ~models_hash:(Precompute.models_hash tr)
     in
     (c, group, Corpus_key.of_group ~group ~budget:10.0))

let corpus_raw_find () =
  let c, _, fp = Lazy.force corpus_raw in
  ignore (Corpus.find c fp)

let corpus_raw_find_nn () =
  let c, group, _ = Lazy.force corpus_raw in
  ignore (Corpus.find_nn c ~group ~budget:12.5)

let corpus_tests =
  [
    Test.make ~name:"corpus:exact-hit" (Staged.stage corpus_exact_hit);
    Test.make ~name:"corpus:nn-hit" (Staged.stage corpus_nn_hit);
    Test.make ~name:"corpus:lru-hit" (Staged.stage corpus_lru_hit);
    Test.make ~name:"corpus:cold-solve" (Staged.stage corpus_cold_solve);
    Test.make ~name:"corpus:raw-find" (Staged.stage corpus_raw_find);
    Test.make ~name:"corpus:raw-find-nn" (Staged.stage corpus_raw_find_nn);
  ]

let bench_counter name =
  match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0

(* Hot-key storm against a cold LRU server: 300 Zipf-skewed requests over
   three fingerprints at a rate far above the cold-solve latency, so the
   burst piles identical requests onto an unsolved key.  The singleflight
   must hold total optimizer solves to one per distinct fingerprint. *)
let corpus_loadgen_dedup () =
  let tr = Lazy.force optimizer_payload in
  let server = Serve_server.create [ tr ] in
  let keys =
    Array.of_list
      (List.map
         (fun budget -> { Loadgen.app = "comd"; input = None; budget })
         [ 7.7; 13.3; 23.9 ])
  in
  let cfg =
    {
      Loadgen.default_config with
      Loadgen.requests = 300;
      rate = 2000.0;
      conns = 2;
      zipf = 1.2;
      seed = 11;
    }
  in
  let solves0 = bench_counter "optimizer.solves" in
  let report =
    Loadgen.run ~connect:(fun () -> Serve_client.loopback server) ~keys cfg
  in
  (report, bench_counter "optimizer.solves" - solves0, Array.length keys)

let corpus_snapshot_file = "BENCH_corpus.json"
let corpus_p50_budget_ms = 0.2

(* The corpus hit and the warm LRU probe are both ~10 us dominated by
   [Server.handle] overhead; their gap is a few microseconds either way,
   run to run.  A strict corpus < lru comparison therefore flaps (and
   flipped sign when the Dmutex instrumentation rework shaved the LRU
   arm).  The corpus's value is avoiding the ~400x cold solve and
   surviving restarts, not out-probing a warm hash table — so the gate
   only requires the corpus hit to stay in the LRU hit's league. *)
let corpus_vs_lru_limit = 1.25

let write_corpus_snapshot entries (report, solves, n_keys) =
  let est name = Option.join (List.assoc_opt name entries) in
  let ms = Option.map (fun ns -> ns /. 1e6) in
  let exact_ms = ms (est "corpus:exact-hit") in
  let nn_ms = ms (est "corpus:nn-hit") in
  let lru_ms = ms (est "corpus:lru-hit") in
  let lookup_faster =
    match (exact_ms, lru_ms) with
    | Some c, Some l -> c <= l *. corpus_vs_lru_limit
    | _ -> false
  in
  let under_budget =
    match (exact_ms, nn_ms) with
    | Some c, Some n -> c <= corpus_p50_budget_ms && n <= corpus_p50_budget_ms
    | _ -> false
  in
  let dedup_ok = report.Loadgen.answered = report.Loadgen.sent && solves <= n_keys in
  let passed = lookup_faster && under_budget && dedup_ok in
  let oc = open_out corpus_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"transport\": \"Server.handle (request path, no codecs)\",\n";
  Printf.fprintf oc "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"loadgen\": {\n";
  Printf.fprintf oc "    \"requests\": %d,\n" report.Loadgen.sent;
  Printf.fprintf oc "    \"answered\": %d,\n" report.Loadgen.answered;
  Printf.fprintf oc "    \"shed\": %d,\n" report.Loadgen.shed;
  Printf.fprintf oc "    \"errors\": %d,\n" report.Loadgen.errors;
  Printf.fprintf oc "    \"p50_ms\": %.3f,\n" report.Loadgen.p50_ms;
  Printf.fprintf oc "    \"p99_ms\": %.3f,\n" report.Loadgen.p99_ms;
  Printf.fprintf oc "    \"p999_ms\": %.3f,\n" report.Loadgen.p999_ms;
  Printf.fprintf oc "    \"sources\": { \"corpus\": %d, \"nn\": %d, \"cache\": %d, \"solved\": %d },\n"
    report.Loadgen.sources.Loadgen.corpus report.Loadgen.sources.Loadgen.nn
    report.Loadgen.sources.Loadgen.cache report.Loadgen.sources.Loadgen.solved;
  Printf.fprintf oc "    \"distinct_fingerprints\": %d,\n" n_keys;
  Printf.fprintf oc "    \"optimizer_solves\": %d\n" solves;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"gate\": {\n";
  Printf.fprintf oc "    \"corpus_hit_within_ratio_of_lru_hit\": %.2f,\n" corpus_vs_lru_limit;
  Printf.fprintf oc "    \"corpus_hit_within_ratio\": %b,\n" lookup_faster;
  Printf.fprintf oc "    \"corpus_and_nn_under_ms\": %.1f,\n" corpus_p50_budget_ms;
  Printf.fprintf oc "    \"corpus_and_nn_under_budget\": %b,\n" under_budget;
  Printf.fprintf oc "    \"duplicate_solves_held_to_one_per_fingerprint\": %b,\n" dedup_ok;
  Printf.fprintf oc "    \"passed\": %b\n" passed;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  (match (exact_ms, nn_ms, lru_ms) with
  | Some c, Some nn, Some l ->
      Printf.printf
        "  corpus gate: exact %.4f ms, nn %.4f ms, lru %.4f ms (budget %.1f ms); solves \
         %d over %d fingerprints\n%!"
        c nn l corpus_p50_budget_ms solves n_keys
  | _ -> Printf.printf "  corpus gate: missing estimates\n%!");
  if not passed then Printf.printf "  CORPUS GATE FAILED (see %s)\n%!" corpus_snapshot_file;
  passed

(* ------------------------------------------------------------- controller *)

(* Perturbed-input harness for the online controller: train bodytrack at
   a small problem scale, solve one static plan for the training-default
   input, then execute that plan on a suite of inputs drawn further and
   further off the training distribution.  The static runs show how the
   open-loop plan's budget guarantee erodes with input drift; the
   controlled runs must strictly reduce the violation count by
   re-solving the remaining phases at the boundaries where the drift
   shows up — while reusing the live run's state (steps equal to outer
   iterations, no re-simulation). *)
module Controller = Opprox.Controller

let control_budget = 10.0

(* input.(0) scaled by (1 + f): the same off-distribution axis the
   controller tests pin. *)
let control_perturbations = [ 0.0; 0.5; 1.0; 1.5; 2.0; 2.5 ]

let control_payload =
  lazy
    (let a =
       App.with_training_inputs (app "bodytrack")
         ~default_input:[| 2.0; 16.0; 3.0 |]
         ~training_inputs:[| [| 2.0; 16.0; 3.0 |]; [| 3.0; 24.0; 4.0 |] |]
     in
     let config =
       {
         Opprox.default_train_config with
         n_phases = Some 3;
         training = { Opprox.Training.default_config with joint_samples_per_phase = 4 };
       }
     in
     let tr = Opprox.train ~config a in
     let plan = Opprox.optimize tr ~budget:control_budget in
     (tr, plan))

let control_input f =
  let tr, _ = Lazy.force control_payload in
  let input = Array.copy tr.Opprox.app.App.default_input in
  input.(0) <- input.(0) *. (1.0 +. f);
  input

let control_static_run () =
  let tr, plan = Lazy.force control_payload in
  ignore (Opprox.apply ~input:(control_input 1.5) tr plan)

let control_controlled_run () =
  let tr, plan = Lazy.force control_payload in
  ignore (Opprox.run_controlled ~input:(control_input 1.5) tr plan)

(* The marginal cost of one boundary re-solve: the reused solver closure
   pricing a remaining-phase suffix, the thing a replan adds on top of
   the run itself. *)
let control_solver =
  lazy
    (let tr, _ = Lazy.force control_payload in
     Opprox.Optimizer.solver ~models:tr.Opprox.models ~roi:tr.Opprox.roi
       ~input:(control_input 1.5) ())

let control_suffix_solve () =
  ignore ((Lazy.force control_solver) ~first_phase:1 ~budget:6.0 ())

let control_tests =
  [
    Test.make ~name:"control:static-run" (Staged.stage control_static_run);
    Test.make ~name:"control:controlled-run" (Staged.stage control_controlled_run);
    Test.make ~name:"control:suffix-solve" (Staged.stage control_suffix_solve);
  ]

type control_row = {
  cr_perturb : float;
  cr_static_qos : float;
  cr_static_violates : bool;
  cr_ctrl_qos : float;
  cr_ctrl_violates : bool;
  cr_ctrl_speedup : float;
  cr_replans : int;
  cr_steps_consistent : bool;
}

let control_suite () =
  let tr, plan = Lazy.force control_payload in
  List.map
    (fun f ->
      let input = control_input f in
      let static = Opprox.apply ~input tr plan in
      let out = Opprox.run_controlled ~input tr plan in
      let ev = out.Controller.evaluation in
      {
        cr_perturb = f;
        cr_static_qos = static.Driver.qos_degradation;
        cr_static_violates = static.Driver.qos_degradation > control_budget;
        cr_ctrl_qos = ev.Driver.qos_degradation;
        cr_ctrl_violates = not out.Controller.within_budget;
        cr_ctrl_speedup = ev.Driver.speedup;
        cr_replans = out.Controller.replans;
        cr_steps_consistent = out.Controller.steps = ev.Driver.outer_iters;
      })
    control_perturbations

let control_snapshot_file = "BENCH_control.json"

let write_control_snapshot entries rows =
  let est name = Option.join (List.assoc_opt name entries) in
  let static_violations =
    List.length (List.filter (fun r -> r.cr_static_violates) rows)
  in
  let ctrl_violations = List.length (List.filter (fun r -> r.cr_ctrl_violates) rows) in
  let replans = List.fold_left (fun acc r -> acc + r.cr_replans) 0 rows in
  let steps_ok = List.for_all (fun r -> r.cr_steps_consistent) rows in
  (* The replan must cost less than starting over: one suffix solve
     under the controlled run's own roof, and the controlled run itself
     within 2x of the static run it replaces (it adds one reference
     profile evaluation and the boundary checks). *)
  let replan_bounded =
    match (est "control:suffix-solve", est "control:controlled-run") with
    | Some solve, Some run -> solve < run
    | _ -> false
  in
  let passed =
    ctrl_violations < static_violations && static_violations > 0 && replans > 0 && steps_ok
    && replan_bounded
  in
  let oc = open_out control_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc
    "  \"suite\": \"bodytrack small-scale, 3 phases, budget %.1f%%, input[0] scaled by \
     (1+f)\",\n"
    control_budget;
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, e) ->
      let value = match e with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"perturbed_suite\": [\n";
  let m = List.length rows in
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"perturb\": %.1f, \"static_qos\": %.2f, \"static_violates\": %b, \
         \"controlled_qos\": %.2f, \"controlled_violates\": %b, \"controlled_speedup\": \
         %.3f, \"replans\": %d }%s\n"
        r.cr_perturb r.cr_static_qos r.cr_static_violates r.cr_ctrl_qos r.cr_ctrl_violates
        r.cr_ctrl_speedup r.cr_replans
        (if i = m - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"gate\": {\n";
  Printf.fprintf oc "    \"static_violations\": %d,\n" static_violations;
  Printf.fprintf oc "    \"controlled_violations\": %d,\n" ctrl_violations;
  Printf.fprintf oc "    \"controlled_strictly_fewer_violations\": %b,\n"
    (ctrl_violations < static_violations);
  Printf.fprintf oc "    \"replans_fired\": %d,\n" replans;
  Printf.fprintf oc "    \"steps_equal_outer_iters\": %b,\n" steps_ok;
  Printf.fprintf oc "    \"suffix_solve_cheaper_than_run\": %b,\n" replan_bounded;
  Printf.fprintf oc "    \"passed\": %b\n" passed;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf
    "  control gate: %d/%d static violations vs %d/%d controlled, %d replan(s)\n%!"
    static_violations m ctrl_violations m replans;
  if not passed then Printf.printf "  CONTROL GATE FAILED (see %s)\n%!" control_snapshot_file;
  passed

(* --------------------------------------------------------- search group *)

(* Stochastic schedule search over the transformer's 9^13 joint space.
   Enumeration is never attempted at this scale — the gate records it as
   infeasible against Lint_app.enumeration_bound instead of timing it —
   so the measured arms price the layers the search is built from (the
   model-priced cost, one MCMC chain, the deterministic polish, the
   multi-chain solve), and the gate holds the end-to-end solve to a
   wall-clock bound, bit-identical results across seeds and pool widths,
   and a budget-feasible, lint-clean plan. *)

module Search = Opprox_search.Search
module Scost = Opprox_search.Cost
module Smcmc = Opprox_search.Mcmc

let search_budget = 10.0

let search_payload =
  lazy
    (let a = app "transformer" in
     let a =
       App.with_training_inputs a ~default_input:[| 32.0; 12.0; 8.0 |]
         ~training_inputs:[| [| 32.0; 12.0; 8.0 |]; [| 48.0; 16.0; 8.0 |] |]
     in
     let config =
       {
         Opprox.default_train_config with
         n_phases = Some 2;
         training = { Training.default_config with joint_samples_per_phase = 3 };
       }
     in
     let tr = Opprox.train ~config a in
     let cost =
       Scost.make ~models:tr.Opprox.models ~input:a.App.default_input ~budget:search_budget
     in
     (tr, a, cost))

let search_mid_schedule =
  lazy
    (let _, a, _ = Lazy.force search_payload in
     Array.init 2 (fun _ -> Array.map (fun m -> (m + 1) / 2) (App.max_levels a)))

let search_cost_eval () =
  let _, _, cost = Lazy.force search_payload in
  ignore (Scost.eval cost (Lazy.force search_mid_schedule))

let search_chain () =
  let _, _, cost = Lazy.force search_payload in
  ignore
    (Smcmc.run ~rng:(Rng.create 11) ~cost ~first_phase:0 (Smcmc.default_config ~iters:200))

let search_polish () =
  let _, a, cost = Lazy.force search_payload in
  let exact = Array.init 2 (fun _ -> Array.make (App.n_abs a) 0) in
  ignore (Smcmc.polish ~cost ~first_phase:0 exact)

let search_solve ?pool ~chains ~iters ~seed () =
  let tr, a, _ = Lazy.force search_payload in
  Search.solve_levels
    ~config:{ Search.chains; iters; seed }
    ?pool ~models:tr.Opprox.models ~input:a.App.default_input ~budget:search_budget ()

let search_solve_arm () = ignore (search_solve ~chains:2 ~iters:300 ~seed:11 ())

let search_tests =
  [
    Test.make ~name:"search:cost-eval" (Staged.stage search_cost_eval);
    Test.make ~name:"search:chain-200" (Staged.stage search_chain);
    Test.make ~name:"search:polish-exact" (Staged.stage search_polish);
    Test.make ~name:"search:solve-2x300" (Staged.stage search_solve_arm);
  ]

type search_gate_row = {
  sg_joint : int;
  sg_enum_bound : int;
  sg_solve_s : float;
  sg_limit_s : float;
  sg_deterministic : bool;
  sg_jobs_invariant : bool;
  sg_feasible : bool;
  sg_qos_hi : float;
}

let search_suite () =
  let tr, a, _ = Lazy.force search_payload in
  let solve ?pool () = search_solve ?pool ~chains:4 ~iters:800 ~seed:0x5EA2C () in
  let t0 = Unix.gettimeofday () in
  let levels, stats = solve () in
  let solve_s = Unix.gettimeofday () -. t0 in
  let levels2, _ = solve () in
  let p1 = Pool.create ~jobs:1 () and p2 = Pool.create ~jobs:2 () in
  let levels_j1, _ = solve ~pool:p1 () in
  let levels_j2, _ = solve ~pool:p2 () in
  Pool.shutdown p1;
  Pool.shutdown p2;
  (* The full plan-level audit: raises on any PLAN error. *)
  let plan =
    Opprox.Optimizer.plan_of_levels ~models:tr.Opprox.models ~input:a.App.default_input
      ~budget:search_budget levels
  in
  {
    sg_joint = Opprox_sim.Config_space.count a.App.abs;
    sg_enum_bound = Opprox_analysis.Lint_app.enumeration_bound;
    sg_solve_s = solve_s;
    sg_limit_s = 10.0;
    sg_deterministic = levels = levels2;
    sg_jobs_invariant = levels_j1 = levels && levels_j2 = levels;
    sg_feasible = stats.Search.feasible;
    sg_qos_hi = plan.Opprox.Optimizer.predicted_qos;
  }

let search_snapshot_file = "BENCH_search.json"

let write_search_snapshot entries row =
  let passed =
    row.sg_joint > row.sg_enum_bound
    && row.sg_solve_s <= row.sg_limit_s
    && row.sg_deterministic && row.sg_jobs_invariant && row.sg_feasible
    && row.sg_qos_hi <= search_budget +. 1e-6
  in
  let oc = open_out search_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc
    "  \"suite\": \"transformer small-scale (2 phases, 13 ABs x 9 levels), budget %.1f%%\",\n"
    search_budget;
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, e) ->
      let value = match e with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"enumeration\": { \"joint_configs\": %d, \"bound\": %d, \"feasible\": \
                     false, \"attempted\": false },\n"
    row.sg_joint row.sg_enum_bound;
  Printf.fprintf oc "  \"gate\": {\n";
  Printf.fprintf oc "    \"solve_seconds\": %.3f,\n" row.sg_solve_s;
  Printf.fprintf oc "    \"solve_seconds_limit\": %.1f,\n" row.sg_limit_s;
  Printf.fprintf oc "    \"deterministic_same_seed\": %b,\n" row.sg_deterministic;
  Printf.fprintf oc "    \"invariant_across_jobs\": %b,\n" row.sg_jobs_invariant;
  Printf.fprintf oc "    \"best_feasible\": %b,\n" row.sg_feasible;
  Printf.fprintf oc "    \"predicted_qos_hi\": %.2f,\n" row.sg_qos_hi;
  Printf.fprintf oc "    \"passed\": %b\n" passed;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf
    "  search gate: 9^13 space (enumeration infeasible, not attempted), solve %.2fs \
     (limit %.0fs), deterministic %b, jobs-invariant %b, qos-hi %.2f%%\n%!"
    row.sg_solve_s row.sg_limit_s row.sg_deterministic row.sg_jobs_invariant row.sg_qos_hi;
  if not passed then Printf.printf "  SEARCH GATE FAILED (see %s)\n%!" search_snapshot_file;
  passed

let pool_snapshot_file = "BENCH_pool.json"

(* Scaling gate.  On a host with real cores (>= 4 recommended domains)
   the engine must deliver: j2 no slower than j1 and j4 at least 1.5x
   over j1.  On narrower hosts the honest requirement is *no inversion*:
   the active-worker cap parks surplus domains, so extra jobs may cost a
   little bookkeeping but must never reintroduce the GC-sync collapse
   (the pre-rework engine was ~2x slower — 0.53x — at j2 on one core).
   The 0.85 floor leaves room for the ~10% run-to-run noise of these
   few-iteration estimates while still catching any real regression. *)
let pool_gate_thresholds () =
  if Domain.recommended_domain_count () >= 4 then (1.0, 1.5) else (0.85, 0.85)

let pool_scaling entries =
  let est name = Option.join (List.assoc_opt name entries) in
  List.filter_map
    (fun group ->
      match
        ( est (Printf.sprintf "pool:%s-j1" group),
          est (Printf.sprintf "pool:%s-j2" group),
          est (Printf.sprintf "pool:%s-j4" group) )
      with
      | Some t1, Some t2, Some t4 when t2 > 0.0 && t4 > 0.0 ->
          Some (group, t1 /. t2, t1 /. t4)
      | _ -> None)
    [ "training-collect"; "oracle-space" ]

let write_pool_snapshot entries =
  let scaling = pool_scaling entries in
  let min_j2, min_j4 = pool_gate_thresholds () in
  let passed =
    scaling <> []
    && List.for_all (fun (_, s2, s4) -> s2 >= min_j2 && s4 >= min_j4) scaling
  in
  let oc = open_out pool_snapshot_file in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"host_recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  Printf.fprintf oc "  \"benchmarks\": [\n";
  let n = List.length entries in
  List.iteri
    (fun i (name, est) ->
      let value = match est with Some ns -> Printf.sprintf "%.1f" ns | None -> "null" in
      Printf.fprintf oc "    { \"name\": %S, \"ns_per_run\": %s }%s\n" name value
        (if i = n - 1 then "" else ","))
    entries;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"scaling\": {\n";
  let ns = List.length scaling in
  List.iteri
    (fun i (group, s2, s4) ->
      Printf.fprintf oc
        "    %S: { \"j2_speedup_over_j1\": %.2f, \"j4_speedup_over_j1\": %.2f }%s\n" group s2 s4
        (if i = ns - 1 then "" else ","))
    scaling;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"gate\": { \"min_j2_speedup\": %.2f, \"min_j4_speedup\": %.2f, \"passed\": %b }\n"
    min_j2 min_j4 passed;
  Printf.fprintf oc "}\n";
  close_out oc;
  List.iter
    (fun (group, s2, s4) ->
      Printf.printf "  pool scaling %-18s j2 %.2fx  j4 %.2fx (gate: j2 >= %.2f, j4 >= %.2f)\n%!"
        group s2 s4 min_j2 min_j4)
    scaling;
  if not passed then
    Printf.printf "  POOL SCALING GATE FAILED (see %s)\n%!" pool_snapshot_file;
  passed

let tests =
  [
    Test.make ~name:"tab1:config-space-enumeration" (Staged.stage (fun () ->
        (* Only the enumerable registry apps: transformer's 9^13-point
           space exists precisely to defeat this, and materializing it
           would OOM.  The skip mirrors the optimizer's own PLAN010
           fallback guard. *)
        List.iter
          (fun (a : App.t) ->
            if
              Opprox_sim.Config_space.count a.abs
              <= Opprox_analysis.Lint_app.enumeration_bound
            then ignore (Opprox_sim.Config_space.all a.abs))
          (Opprox_apps.Registry.all ())));
    Test.make ~name:"fig2:lulesh-run" (Staged.stage (run_uniform "lulesh" [| 1; 1; 1; 1 |]));
    Test.make ~name:"fig3:lulesh-heavy-run" (Staged.stage (run_uniform "lulesh" [| 3; 5; 5; 5 |]));
    Test.make ~name:"fig4_5:lulesh-phase-run" (Staged.stage (fun () ->
        let a = app "lulesh" in
        ignore
          (Driver.evaluate a
             (Schedule.single_phase_active ~n_phases:4 ~phase:3 [| 2; 2; 2; 2 |])
             a.App.default_input)));
    Test.make ~name:"fig7:ffmpeg-run" (Staged.stage (run_uniform "ffmpeg" [| 2; 2; 2 |]));
    Test.make ~name:"fig9:comd-run" (Staged.stage (run_uniform "comd" [| 2; 2; 2 |]));
    Test.make ~name:"fig10:bodytrack-run" (Staged.stage (run_uniform "bodytrack" [| 2; 2; 2; 1 |]));
    Test.make ~name:"fig11:pso-run" (Staged.stage (run_uniform "pso" [| 1; 1; 1 |]));
    Test.make ~name:"fig12:polyreg-fit" (Staged.stage fit_polyreg);
    Test.make ~name:"fig13:mic-compute" (Staged.stage compute_mic);
    Test.make ~name:"fig14:optimizer-solve" (Staged.stage run_optimizer);
    Test.make ~name:"fig15:dtree-fit" (Staged.stage fit_dtree);
    Test.make ~name:"tab2:exact-run-cached" (Staged.stage (fun () ->
        let a = app "pso" in
        ignore (Driver.run_exact a a.App.default_input)));
  ]

(* Measure one test and return its (name, ns-per-run estimate) pairs. *)
let measure cfg instances test =
  let results = Benchmark.all cfg instances test in
  Hashtbl.fold
    (fun name raw acc ->
      let est =
        match
          Analyze.one
            (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
            Instance.monotonic_clock raw
        with
        | ols -> ( match Analyze.OLS.estimates ols with Some [ est ] -> Some est | _ -> None)
        | exception _ -> None
      in
      (name, est) :: acc)
    results []

let print_entry (name, est) =
  match est with
  | Some est -> Printf.printf "  %-28s %12.1f ns/run\n%!" name est
  | None -> Printf.printf "  %-28s (no estimate)\n%!" name

let run () =
  print_endline "Bechamel micro-benchmarks (monotonic clock, OLS estimate per run):";
  (* Force payload construction (training, datasets) outside the measured
     region. *)
  ignore (Lazy.force polyreg_payload);
  ignore (Lazy.force mic_payload);
  ignore (Lazy.force optimizer_payload);
  ignore (Lazy.force dtree_payload);
  ignore (Lazy.force pool_table);
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.8) ~kde:None () in
  List.iter (fun test -> List.iter print_entry (measure cfg instances test)) tests;
  (* Warm the exact-run / checkpoint memos once so every pool arm
     measures the same steady state — the estimates are few-iteration,
     and without this the first arm measured (j1) would be charged the
     one-time cold baselines, inflating the scaling ratios. *)
  collect_with_pool 1 ();
  oracle_with_pool 1 ();
  (* Pool arms run seconds per iteration; a larger quota buys each arm
     more than one iteration so the scaling ratios are stable. *)
  let pool_cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 5.0) ~kde:None () in
  let pool_entries = List.concat_map (measure pool_cfg instances) pool_tests in
  let pool_entries =
    (* Hashtbl.fold order is unspecified; restore the declaration order. *)
    List.sort (fun (a, _) (b, _) -> compare a b) pool_entries
  in
  List.iter print_entry pool_entries;
  let pool_gate_ok = write_pool_snapshot pool_entries in
  Printf.printf "  pool group snapshot -> %s\n%!" pool_snapshot_file;
  (* Warm the eval memo so both obs:eval-memo arms measure the hit path. *)
  eval_memo_hit ();
  let obs_entries = List.concat_map (measure cfg instances) obs_tests in
  let obs_entries = List.sort (fun (a, _) (b, _) -> compare a b) obs_entries in
  List.iter print_entry obs_entries;
  write_obs_snapshot obs_entries;
  Printf.printf "  obs group snapshot -> %s\n%!" obs_snapshot_file;
  let conc_entries = List.concat_map (measure cfg instances) conc_tests in
  let conc_entries = List.sort (fun (a, _) (b, _) -> compare a b) conc_entries in
  List.iter print_entry conc_entries;
  let conc_gate_ok = write_conc_snapshot conc_entries in
  Printf.printf "  conc group snapshot -> %s\n%!" conc_snapshot_file;
  (* Warm the plan cache so the hit arm measures the steady state. *)
  serve_roundtrip serve_hit_request ();
  let serve_entries = List.concat_map (measure cfg instances) serve_tests in
  let serve_entries = List.sort (fun (a, _) (b, _) -> compare a b) serve_entries in
  List.iter print_entry serve_entries;
  write_serve_snapshot serve_entries;
  Printf.printf "  serve group snapshot -> %s\n%!" serve_snapshot_file;
  (* Warm the corpus payload (precompute sweep) and the LRU arm's cache
     entry, so every arm measures its steady state. *)
  ignore (Lazy.force corpus_payload);
  ignore (Lazy.force corpus_raw);
  corpus_lru_hit ();
  let corpus_entries = List.concat_map (measure cfg instances) corpus_tests in
  let corpus_entries = List.sort (fun (a, _) (b, _) -> compare a b) corpus_entries in
  List.iter print_entry corpus_entries;
  let corpus_gate_ok = write_corpus_snapshot corpus_entries (corpus_loadgen_dedup ()) in
  Printf.printf "  corpus group snapshot -> %s\n%!" corpus_snapshot_file;
  (* Warm the controller payload (training + the static plan) so the
     control arms measure execution, not setup. *)
  ignore (Lazy.force control_payload);
  let (_ : ?first_phase:int -> budget:float -> unit -> Opprox.Optimizer.plan) =
    Lazy.force control_solver
  in
  let control_entries = List.concat_map (measure cfg instances) control_tests in
  let control_entries = List.sort (fun (a, _) (b, _) -> compare a b) control_entries in
  List.iter print_entry control_entries;
  let control_gate_ok = write_control_snapshot control_entries (control_suite ()) in
  Printf.printf "  control group snapshot -> %s\n%!" control_snapshot_file;
  (* Warm the search payload (trimmed transformer training) so the
     search arms measure chains and pricing, not training. *)
  ignore (Lazy.force search_payload);
  ignore (Lazy.force search_mid_schedule);
  let search_entries = List.concat_map (measure cfg instances) search_tests in
  let search_entries = List.sort (fun (a, _) (b, _) -> compare a b) search_entries in
  List.iter print_entry search_entries;
  let search_gate_ok = write_search_snapshot search_entries (search_suite ()) in
  Printf.printf "  search group snapshot -> %s\n%!" search_snapshot_file;
  (* The scratch collect arm re-simulates everything and takes seconds per
     run; give the checkpoint group a larger quota so both arms get
     enough iterations for a stable estimate. *)
  (* Populate the driver's checkpoint and evaluation memo layers once,
     outside the measured region, so the memo arms measure the production
     steady state (offline stages re-running identical evaluations); the
     one-time population cost is itself a checkpointed scratch pass.  The
     scratch arms disable the caches, so warming cannot contaminate them. *)
  ckpt_collect ();
  ckpt_probe ();
  let ckpt_cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 3.0) ~kde:None () in
  let ckpt_entries =
    List.concat_map (measure ckpt_cfg instances) (ckpt_tests @ predict_tests)
  in
  let ckpt_entries = List.sort (fun (a, _) (b, _) -> compare a b) ckpt_entries in
  List.iter print_entry ckpt_entries;
  write_ckpt_snapshot ckpt_entries;
  Printf.printf "  checkpoint group snapshot -> %s\n%!" ckpt_snapshot_file;
  List.iter (fun (_, p) -> Pool.shutdown p) (Lazy.force pool_table);
  pool_gate_ok && corpus_gate_ok && conc_gate_ok && control_gate_ok && search_gate_ok

(* Fast wall-clock sanity check for CI (a full bechamel pass is minutes):
   collect the same training dataset on a 1-job and a 2-job pool, require
   bit-identical results and no inversion beyond [tolerance].  On a
   single-core runner the 2-job pool's surplus worker parks under the
   active cap, so this is exactly the regression the rework fixed: before
   it, j2 was ~2x slower than j1 here. *)
let pool_smoke () =
  let a = app "comd" in
  let config =
    {
      Training.default_config with
      joint_samples_per_phase = 2;
      inputs = Some (Array.sub a.App.training_inputs 0 2);
    }
  in
  let collect pool =
    Driver.clear_eval_cache ();
    Training.collect ~config ~pool a ~n_phases:2
  in
  let p1 = Pool.create ~jobs:1 () and p2 = Pool.create ~jobs:2 () in
  (* Warm the exact-run / checkpoint memos so both arms measure the same
     steady state, and check determinism across job counts while at it. *)
  let w1 = collect p1 and w2 = collect p2 in
  let identical = w1.Training.samples = w2.Training.samples in
  let reps = 3 in
  let time pool =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (collect pool)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let t1 = time p1 in
  let t2 = time p2 in
  Pool.shutdown p1;
  Pool.shutdown p2;
  let tolerance = 1.30 in
  let ok = identical && t2 <= t1 *. tolerance in
  Printf.printf "pool smoke: j1 %.0f ms/collect, j2 %.0f ms/collect (j2/j1 %.2f, limit %.2f), %s\n%!"
    (t1 *. 1e3) (t2 *. 1e3) (t2 /. t1) tolerance
    (if identical then "datasets bit-identical" else "DATASETS DIFFER");
  if not ok then Printf.printf "pool smoke: FAILED\n%!";
  ok
