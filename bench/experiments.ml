(* One function per paper table/figure (see DESIGN.md's experiment index).
   Each prints the same rows/series the paper reports, preceded by the
   expected qualitative shape. *)

open Harness
module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Ab = Opprox_sim.Ab
module Training = Opprox.Training
module Models = Opprox.Models

(* ------------------------------------------------------------------ fig2 *)

let fig2 () =
  section "Fig. 2 — LULESH: speedup and QoS degradation vs approximation level";
  print_endline "Expected shape: both speedup and error increase with the level.";
  let app = find_app "lulesh" in
  let t = Table.create [ "level (all ABs)"; "speedup"; "qos degradation %"; "outer iters" ] in
  let max_levels = App.max_levels app in
  for level = 0 to 5 do
    let levels = Array.map (fun m -> Stdlib.min level m) max_levels in
    let ev = evaluate app (Schedule.uniform ~n_phases:1 levels) in
    Table.add_row t
      [
        string_of_int level;
        fmt "%.3f" ev.Driver.speedup;
        fmt "%.2f" ev.Driver.qos_degradation;
        string_of_int ev.Driver.outer_iters;
      ]
  done;
  print_table t

(* ------------------------------------------------------------------ fig3 *)

let fig3 () =
  section "Fig. 3 — LULESH: outer-loop iteration count varies with the ALs";
  print_endline "Expected shape: approximation can increase the iteration count";
  print_endline "(the paper observed 921 exact vs up to 965 approximate).";
  let app = find_app "lulesh" in
  let exact = Driver.run_exact app (default_input app) in
  let configs = probe_set app in
  let t = Table.create [ "configuration"; "outer iters"; "vs exact" ] in
  Table.add_row t [ "exact"; string_of_int exact.Driver.iters; "-" ];
  Array.iter
    (fun levels ->
      let ev = evaluate app (Schedule.uniform ~n_phases:1 levels) in
      Table.add_row t
        [
          fmt "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int levels)));
          string_of_int ev.Driver.outer_iters;
          fmt "%+d" (ev.Driver.outer_iters - exact.Driver.iters);
        ])
    configs;
  print_table t

(* ---------------------------------------------------------------- fig4_5 *)

let phase_table ?(n_phases = 4) app =
  let configs = probe_set app in
  (* Scatter: one x-segment per phase (plus "All"), deterministic jitter
     inside the segment so points do not overprint. *)
  let scatter_points extract =
    Array.of_list
      (List.concat
         (List.init (n_phases + 1) (fun phase ->
              let _, _, qs, ss = phase_profile app ~n_phases configs phase in
              let values = extract (qs, ss) in
              Array.to_list
                (Array.mapi
                   (fun i v ->
                     let jitter = 0.8 *. float_of_int i /. float_of_int (Array.length values) in
                     (float_of_int phase +. 0.1 +. jitter, v))
                   values))))
  in
  let t =
    Table.create
      ([ "segment" ]
      @ [ "mean qos %"; "min qos %"; "max qos %"; "mean speedup"; "min S"; "max S" ])
  in
  for phase = 0 to n_phases do
    let label = if phase >= n_phases then "All" else fmt "phase-%d" (phase + 1) in
    let mean_q, mean_s, qs, ss = phase_profile app ~n_phases configs phase in
    Table.add_row t
      [
        label;
        fmt "%.2f" mean_q;
        fmt "%.2f" (Stats.min qs);
        fmt "%.2f" (Stats.max qs);
        fmt "%.3f" mean_s;
        fmt "%.3f" (Stats.min ss);
        fmt "%.3f" (Stats.max ss);
      ]
  done;
  print_table t;
  Plot.print ~height:12 ~x_label:"phase segment (last = All)" ~y_label:"qos degradation %"
    [ Plot.series "configs" (scatter_points fst) ];
  Plot.print ~height:10 ~x_label:"phase segment (last = All)" ~y_label:"speedup"
    [ Plot.series ~glyph:'x' "configs" (scatter_points snd) ];
  print_newline ()

let fig4_5 () =
  section "Figs. 4 & 5 — LULESH: phase-specific QoS degradation and speedup";
  print_endline "Expected shape: QoS degradation falls sharply from phase 1 to";
  print_endline "phase 4; speedup varies much less across phases.";
  phase_table (find_app "lulesh")

(* ------------------------------------------------------------------ fig7 *)

let fig7 () =
  section "Fig. 7 — FFmpeg: filter order changes the QoS degradation";
  print_endline "Expected shape: swapping the edge and deflate filters produces";
  print_endline "visibly different PSNR for the same approximation setting.";
  let app = find_app "ffmpeg" in
  let t = Table.create [ "filter order"; "AL setting"; "PSNR (dB)"; "qos %" ] in
  List.iter
    (fun levels ->
      List.iter
        (fun (label, order) ->
          let input = [| 24.0; 4.0; 6.0; order |] in
          let ev = Driver.evaluate app (Schedule.uniform ~n_phases:1 levels) input in
          Table.add_row t
            [
              label;
              fmt "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int levels)));
              (match ev.Driver.psnr with Some p -> fmt "%.2f" p | None -> "-");
              fmt "%.2f" ev.Driver.qos_degradation;
            ])
        [ ("edge->deflate", 0.0); ("deflate->edge", 1.0) ])
    [ [| 2; 2; 2 |]; [| 4; 4; 4 |] ];
  print_table t

(* ------------------------------------------------------------- fig9 / 10 *)

let fig9 () =
  section "Fig. 9 — phase-specific QoS degradation (CoMD, PSO, Bodytrack, FFmpeg)";
  print_endline "Expected shape: degradation decreases for later phases; the";
  print_endline "first phase is comparable to approximating the whole run.";
  List.iter
    (fun name ->
      print_newline ();
      print_endline ("-- " ^ name);
      phase_table (find_app name))
    [ "comd"; "pso"; "bodytrack"; "ffmpeg" ]

let fig10 () =
  section "Fig. 10 — phase-specific speedup (CoMD, PSO, Bodytrack, FFmpeg)";
  print_endline "Expected shape: speedup approximately phase-insensitive for";
  print_endline "CoMD/Bodytrack/FFmpeg; PSO's convergence loop reacts to phase.";
  (* Same profile as fig9 (one table carries both views, as in phase_table). *)
  List.iter
    (fun name ->
      print_newline ();
      print_endline ("-- " ^ name);
      phase_table (find_app name))
    [ "comd"; "pso"; "bodytrack"; "ffmpeg" ]

(* ----------------------------------------------------------------- fig11 *)

let fig11 () =
  section "Fig. 11 — QoS degradation with the execution divided into 2/4/8 phases";
  print_endline "Expected shape: 2 and 4 phases separate cleanly; at 8 phases the";
  print_endline "distinction between consecutive phases blurs.";
  List.iter
    (fun name ->
      let app = find_app name in
      print_newline ();
      print_endline ("-- " ^ name);
      List.iter
        (fun n_phases ->
          let configs = probe_set app in
          let t =
            Table.create
              ([ fmt "%d phases" n_phases ] @ List.init n_phases (fun p -> fmt "ph%d" (p + 1)))
          in
          let means =
            List.init n_phases (fun phase ->
                let mean_q, _, _, _ = phase_profile app ~n_phases configs phase in
                fmt "%.2f" mean_q)
          in
          Table.add_row t ("mean qos %" :: means);
          print_table t)
        [ 2; 4; 8 ])
    [ "bodytrack"; "lulesh" ]

(* ------------------------------------------------------------- fig12 / 13 *)

let split_training (training : Training.t) =
  let rng = Rng.create 0x5EED in
  let samples = Array.copy training.Training.samples in
  Rng.shuffle rng samples;
  let half = Array.length samples / 2 in
  ( { training with Training.samples = Array.sub samples 0 half },
    Array.sub samples half (Array.length samples - half) )

let prediction_quality () =
  List.map
    (fun app ->
      let tr = trained app in
      let train_half, test_half = split_training tr.Opprox.training in
      let models = Models.build train_half in
      let actual_q = ref [] and pred_q = ref [] in
      let actual_s = ref [] and pred_s = ref [] in
      Array.iter
        (fun (s : Training.sample) ->
          let p = Models.predict models ~input:s.input ~phase:s.phase ~levels:s.levels in
          actual_q := s.qos :: !actual_q;
          pred_q := p.Models.qos :: !pred_q;
          actual_s := s.speedup :: !actual_s;
          pred_s := p.Models.speedup :: !pred_s)
        test_half;
      let arr l = Array.of_list !l in
      (app, arr actual_q, arr pred_q, arr actual_s, arr pred_s))
    apps

let quality_row (app : App.t) actual predicted =
  [
    app.App.name;
    fmt "%.3f" (Stats.r2_score ~actual ~predicted);
    fmt "%.3f" (Stats.mae ~actual ~predicted);
    fmt "%.3f" (Stats.pearson actual predicted);
    string_of_int (Array.length actual);
  ]

let quality = lazy (prediction_quality ())

let prediction_scatter actual predicted =
  (* Diagonal reference drawn as its own series. *)
  let points = Array.map2 (fun a p -> (a, p)) actual predicted in
  let lo = Stats.min actual and hi = Stats.max actual in
  let diagonal =
    Array.init 40 (fun i ->
        let v = lo +. ((hi -. lo) *. float_of_int i /. 39.0) in
        (v, v))
  in
  [ Plot.series ~glyph:'.' "perfect prediction" diagonal; Plot.series "test points" points ]

let fig12 () =
  section "Fig. 12 — prediction of QoS degradation (held-out half)";
  print_endline "Expected shape: points close to the diagonal; R2 high for most";
  print_endline "applications (PSO is the noisiest).";
  let t = Table.create [ "app"; "R2"; "MAE"; "pearson"; "test points" ] in
  List.iter (fun (app, aq, pq, _, _) -> Table.add_row t (quality_row app aq pq)) (Lazy.force quality);
  print_table t;
  List.iter
    (fun ((app : App.t), aq, pq, _, _) ->
      Plot.print ~height:12 ~x_label:(app.App.name ^ ": actual qos %") ~y_label:"predicted"
        (prediction_scatter aq pq))
    (Lazy.force quality)

let fig13 () =
  section "Fig. 13 — prediction of speedup (held-out half)";
  print_endline "Expected shape: speedup models are accurate for all applications.";
  let t = Table.create [ "app"; "R2"; "MAE"; "pearson"; "test points" ] in
  List.iter (fun (app, _, _, as_, ps) -> Table.add_row t (quality_row app as_ ps)) (Lazy.force quality);
  print_table t;
  List.iter
    (fun ((app : App.t), _, _, as_, ps) ->
      Plot.print ~height:12 ~x_label:(app.App.name ^ ": actual speedup") ~y_label:"predicted"
        (prediction_scatter as_ ps))
    (Lazy.force quality)

(* ----------------------------------------------------------------- fig14 *)

let fig14 () =
  section "Fig. 14 — OPPROX vs phase-agnostic baselines, per QoS budget";
  print_endline "Expected shape: OPPROX retains speedup at the small budget where";
  print_endline "the phase-agnostic oracle finds little or nothing; at the large";
  print_endline "budget the oracle becomes competitive (paper: avg 14% vs 2% work";
  print_endline "reduction at 5%; 42% vs 37% at 20%).  'N=1' is a Capri-like";
  print_endline "model-based phase-agnostic optimizer (our extra, realistic";
  print_endline "baseline; the oracle measures instead of predicting).";
  let t =
    Table.create
      [ "app (phases)"; "budget"; "OPPROX S"; "OPPROX qos %"; "N=1 S"; "N=1 qos %";
        "oracle S"; "oracle qos %" ]
  in
  let summary = Hashtbl.create 4 in
  List.iter
    (fun app ->
      let tr = trained app in
      let flat =
        (* The same pipeline restricted to a single phase: prior work's
           model-based proactive control (Capri). *)
        Opprox.train ~config:{ (train_config ()) with Opprox.n_phases = Some 1 } app
      in
      let n_phases = tr.Opprox.training.Training.n_phases in
      List.iter
        (fun (label, budget) ->
          let plan = Opprox.optimize tr ~budget in
          let outcome = Opprox.apply tr plan in
          let flat_outcome = Opprox.apply flat (Opprox.optimize flat ~budget) in
          let oracle = Opprox.run_oracle app ~budget in
          let o = oracle.Opprox.Oracle.evaluation in
          Table.add_row t
            [
              fmt "%s (%d)" app.App.name n_phases;
              budget_label app (label, budget);
              fmt "%.3f" outcome.Driver.speedup;
              fmt "%.2f" outcome.Driver.qos_degradation;
              fmt "%.3f" flat_outcome.Driver.speedup;
              fmt "%.2f" flat_outcome.Driver.qos_degradation;
              fmt "%.3f" o.Driver.speedup;
              fmt "%.2f" o.Driver.qos_degradation;
            ];
          let prev = try Hashtbl.find summary label with Not_found -> [] in
          Hashtbl.replace summary label
            ((outcome.Driver.speedup, flat_outcome.Driver.speedup, o.Driver.speedup) :: prev))
        (budgets_for app))
    apps;
  print_table t;
  let s =
    Table.create
      [ "budget"; "OPPROX mean S"; "N=1 mean S"; "oracle mean S";
        "OPPROX work cut %"; "N=1 work cut %"; "oracle work cut %" ]
  in
  List.iter
    (fun label ->
      match Hashtbl.find_opt summary label with
      | None -> ()
      | Some triples ->
          let col f = Array.of_list (List.map f triples) in
          let ours = col (fun (a, _, _) -> a) in
          let flats = col (fun (_, b, _) -> b) in
          let oracles = col (fun (_, _, c) -> c) in
          let work_cut arr =
            100.0 *. Stats.mean (Array.map (fun sp -> 1.0 -. (1.0 /. sp)) arr)
          in
          Table.add_row s
            [
              label;
              fmt "%.3f" (Stats.mean ours);
              fmt "%.3f" (Stats.mean flats);
              fmt "%.3f" (Stats.mean oracles);
              fmt "%.1f" (work_cut ours);
              fmt "%.1f" (work_cut flats);
              fmt "%.1f" (work_cut oracles);
            ])
    [ "small"; "medium"; "large" ];
  print_endline "Across the five applications:";
  print_table s

(* ----------------------------------------------------------------- fig15 *)

let fig15 () =
  section "Fig. 15 — phase-specific behaviour across input combinations";
  print_endline "Expected shape: the per-phase trend (declining QoS) is consistent";
  print_endline "across inputs, so phase-awareness is not input-specific.";
  List.iter
    (fun name ->
      let app = find_app name in
      print_newline ();
      print_endline ("-- " ^ name);
      let inputs =
        Array.to_list (Array.sub app.App.training_inputs 0 (Stdlib.min 4 (Array.length app.App.training_inputs)))
      in
      let t =
        Table.create
          ([ "input" ] @ List.init 4 (fun p -> fmt "ph%d qos%%" (p + 1))
          @ List.init 4 (fun p -> fmt "ph%d S" (p + 1)))
      in
      List.iter
        (fun input ->
          let configs = probe_set app in
          let cells =
            List.init 4 (fun phase ->
                let evs =
                  Pool.parallel_map ~chunk:1
                    (fun levels ->
                      Driver.evaluate app
                        (Schedule.single_phase_active ~n_phases:4 ~phase levels)
                        input)
                    configs
                in
                ( Stats.mean (Array.map (fun (e : Driver.evaluation) -> e.qos_degradation) evs),
                  Stats.mean (Array.map (fun (e : Driver.evaluation) -> e.speedup) evs) ))
          in
          Table.add_row t
            ([ fmt "[%s]" (String.concat ";" (Array.to_list (Array.map Table.fmt_float input))) ]
            @ List.map (fun (q, _) -> fmt "%.2f" q) cells
            @ List.map (fun (_, s) -> fmt "%.3f" s) cells))
        inputs;
      print_table t)
    [ "bodytrack"; "lulesh" ]

(* ------------------------------------------------------------------ tab1 *)

let tab1 () =
  section "Table 1 — applications, input parameters, techniques, search spaces";
  let t =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Right; Table.Right ]
      [ "app"; "input parameters"; "approx. techniques"; "joint configs"; "search space" ]
  in
  List.iter
    (fun (app : App.t) ->
      let techniques =
        List.sort_uniq compare
          (Array.to_list (Array.map (fun (ab : Ab.t) -> Ab.technique_name ab.technique) app.abs))
      in
      let joint = Opprox_sim.Config_space.count app.abs in
      let space =
        Opprox_sim.Config_space.phase_space_count app.abs ~n_phases:4
          ~n_inputs:(Array.length app.training_inputs)
      in
      Table.add_row t
        [
          app.name;
          String.concat ", " (Array.to_list app.param_names);
          String.concat ", " techniques;
          string_of_int joint;
          string_of_int space;
        ])
    apps;
  print_table t

(* ------------------------------------------------------------------ tab2 *)

let tab2 () =
  section "Table 2 — training and optimization time vs phase granularity";
  print_endline "Expected shape: both grow with the number of phases (training";
  print_endline "superlinearly: the sampling plan is proportional to N).";
  let t =
    Table.create
      [ "app"; "N=1 train s"; "N=2 train s"; "N=4 train s"; "N=8 train s";
        "N=1 opt s"; "N=2 opt s"; "N=4 opt s"; "N=8 opt s" ]
  in
  let phase_counts = [ 1; 2; 4; 8 ] in
  List.iter
    (fun (app : App.t) ->
      Driver.clear_cache ();
      let cells =
        List.map
          (fun n ->
            let config =
              {
                (train_config ()) with
                Opprox.n_phases = Some n;
                training =
                  { Training.default_config with joint_samples_per_phase = (if !quick then 4 else 8) };
              }
            in
            let tr, train_time = timed (fun () -> Opprox.train ~config app) in
            let _, opt_time = timed (fun () -> Opprox.optimize tr ~budget:10.0) in
            (train_time, opt_time))
          phase_counts
      in
      Table.add_row t
        ((app.name :: List.map (fun (tt, _) -> fmt "%.1f" tt) cells)
        @ List.map (fun (_, ot) -> fmt "%.3f" ot) cells))
    apps;
  print_table t

(* -------------------------------------------------------------- ablations *)

let ablate_roi () =
  section "Ablation — ROI-proportional vs uniform budget allocation";
  print_endline "DESIGN.md: ROI decides which phases receive leftover budget first.";
  print_endline "With sweep redistribution both splits converge to similar plans;";
  print_endline "differences show up as threshold effects at tight budgets.";
  let t =
    Table.create [ "app"; "budget %"; "ROI-split speedup"; "uniform-split speedup" ]
  in
  List.iter
    (fun name ->
      let app = find_app name in
      let tr = trained app in
      let n = tr.Opprox.training.Training.n_phases in
      List.iter
        (fun budget ->
          let plan_roi = Opprox.optimize tr ~budget in
          let uniform_roi = Array.make n 1.0 in
          let plan_uniform =
            Opprox.Optimizer.optimize ~models:tr.Opprox.models ~roi:uniform_roi
              ~input:(default_input app) ~budget ()
          in
          let s_roi = (Opprox.apply tr plan_roi).Driver.speedup in
          let s_uni = (Opprox.apply tr plan_uniform).Driver.speedup in
          Table.add_row t
            [ name; fmt "%.0f" budget; fmt "%.3f" s_roi; fmt "%.3f" s_uni ])
        [ 5.0; 10.0 ])
    [ "comd"; "lulesh" ];
  print_table t

let ablate_ci () =
  section "Ablation — conservative confidence intervals";
  print_endline "DESIGN.md: the optimizer uses upper-CI QoS / lower-CI speedup; with";
  print_endline "CIs disabled the plans get faster but risk budget violations.";
  let t =
    Table.create
      [ "app"; "budget %"; "with CI: S / qos"; "violation"; "no CI: S / qos"; "violation" ]
  in
  List.iter
    (fun name ->
      let app = find_app name in
      let tr = trained app in
      let no_ci_models =
        Models.build
          ~config:{ Models.default_config with ci_p = 0.0 }
          tr.Opprox.training
      in
      List.iter
        (fun budget ->
          let run models =
            let plan =
              Opprox.Optimizer.optimize ~models ~roi:tr.Opprox.roi
                ~input:(default_input app) ~budget ()
            in
            Driver.evaluate app plan.Opprox.Optimizer.schedule (default_input app)
          in
          let with_ci = run tr.Opprox.models in
          let without = run no_ci_models in
          let cell (e : Driver.evaluation) = fmt "%.3f / %.2f" e.speedup e.qos_degradation in
          let violated (e : Driver.evaluation) = if e.qos_degradation > budget then "YES" else "no" in
          Table.add_row t
            [ name; fmt "%.0f" budget; cell with_ci; violated with_ci; cell without; violated without ])
        [ 5.0; 10.0 ])
    [ "lulesh"; "bodytrack" ];
  print_table t

let ablate_mic () =
  section "Ablation — MIC feature screening";
  print_endline "DESIGN.md: screening uninformative features should not hurt (and";
  print_endline "usually helps) model quality.";
  let t = Table.create [ "app"; "qos R2 with MIC"; "qos R2 without"; "speedup R2 with"; "without" ] in
  List.iter
    (fun name ->
      let app = find_app name in
      let tr = trained app in
      let with_mic = tr.Opprox.models in
      let without =
        Models.build
          ~config:
            {
              Models.default_config with
              regression = { Opprox_ml.Polyreg.default_config with mic_threshold = None };
            }
          tr.Opprox.training
      in
      Table.add_row t
        [
          name;
          fmt "%.3f" (Models.qos_r2 with_mic);
          fmt "%.3f" (Models.qos_r2 without);
          fmt "%.3f" (Models.speedup_r2 with_mic);
          fmt "%.3f" (Models.speedup_r2 without);
        ])
    [ "lulesh"; "comd" ];
  print_table t

let ablate_phase_count () =
  section "Ablation — value of phase-awareness (1 vs 2 vs 4 phases)";
  print_endline "N=1 is the phase-agnostic degenerate case of OPPROX itself.";
  let t = Table.create [ "app"; "budget %"; "N=1 speedup"; "N=2 speedup"; "N=4 speedup" ] in
  List.iter
    (fun name ->
      let app = find_app name in
      List.iter
        (fun budget ->
          let cells =
            List.map
              (fun n ->
                let config = { (train_config ()) with Opprox.n_phases = Some n } in
                let tr = Opprox.train ~config app in
                let plan = Opprox.optimize tr ~budget in
                fmt "%.3f" (Opprox.apply tr plan).Driver.speedup)
              [ 1; 2; 4 ]
          in
          Table.add_row t ([ name; fmt "%.0f" budget ] @ cells))
        [ 10.0 ])
    [ "comd" ];
  print_table t

let ablate_model () =
  section "Ablation — polynomial regression vs M5-style regression tree";
  print_endline "Capri (ASPLOS 2016) models accuracy/performance with Quinlan's M5;";
  print_endline "OPPROX uses polynomial regression.  Held-out R2 of both model";
  print_endline "types on the same training data:";
  let t =
    Table.create
      [ "app"; "target"; "polyreg R2"; "regtree R2" ]
  in
  List.iter
    (fun name ->
      let app = find_app name in
      let tr = trained app in
      let train_half, test_half = split_training tr.Opprox.training in
      (* Flat feature encoding shared by both model types: levels ++ input
         parameters ++ phase index. *)
      let features (s : Training.sample) =
        Array.concat
          [ Array.map float_of_int s.levels; s.input; [| float_of_int s.phase |] ]
      in
      let train_x = Array.map features train_half.Training.samples in
      let test_x = Array.map features test_half in
      List.iter
        (fun (target_name, target_of) ->
          let train_y = Array.map target_of train_half.Training.samples in
          let test_y = Array.map target_of test_half in
          let rng = Rng.create 0xAB1A in
          let poly = Opprox_ml.Polyreg.fit ~rng train_x train_y in
          let tree = Opprox_ml.Regtree.fit train_x train_y in
          let r2 predict =
            Stats.r2_score ~actual:test_y ~predicted:(Array.map predict test_x)
          in
          Table.add_row t
            [
              name;
              target_name;
              fmt "%.3f" (r2 (Opprox_ml.Polyreg.predict poly));
              fmt "%.3f" (r2 (Opprox_ml.Regtree.predict tree));
            ])
        [ ("qos", (fun (s : Training.sample) -> s.qos));
          ("speedup", fun (s : Training.sample) -> s.speedup) ])
    [ "lulesh"; "comd" ];
  print_table t

(* -------------------------------------------------------------- registry *)

let all : (string * string * (unit -> unit)) list =
  [
    ("tab1", "Table 1: applications and search spaces", tab1);
    ("fig2", "Fig 2: LULESH level sweep", fig2);
    ("fig3", "Fig 3: LULESH iteration variation", fig3);
    ("fig4_5", "Figs 4/5: LULESH phase profiles", fig4_5);
    ("fig7", "Fig 7: FFmpeg filter order", fig7);
    ("fig9", "Fig 9: phase QoS profiles", fig9);
    ("fig10", "Fig 10: phase speedup profiles", fig10);
    ("fig11", "Fig 11: phase granularity", fig11);
    ("fig12", "Fig 12: QoS prediction quality", fig12);
    ("fig13", "Fig 13: speedup prediction quality", fig13);
    ("fig14", "Fig 14: OPPROX vs phase-agnostic oracle", fig14);
    ("fig15", "Fig 15: per-input phase behaviour", fig15);
    ("tab2", "Table 2: training/optimization time vs phases", tab2);
    ("ablate_roi", "Ablation: ROI budget split", ablate_roi);
    ("ablate_ci", "Ablation: confidence intervals", ablate_ci);
    ("ablate_mic", "Ablation: MIC screening", ablate_mic);
    ("ablate_phases", "Ablation: phase count", ablate_phase_count);
    ("ablate_model", "Ablation: polynomial regression vs regression tree", ablate_model);
  ]
