(* Shared infrastructure for the experiment harness: the application list,
   per-app budget protocol, and a cache of trained OPPROX pipelines so
   experiments that need the same offline stage (figs. 12-14, table 2)
   do not retrain. *)

module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Qos = Opprox_sim.Qos
module Config_space = Opprox_sim.Config_space
module Table = Opprox_util.Table
module Plot = Opprox_util.Plot
module Rng = Opprox_util.Rng
module Stats = Opprox_util.Stats
module Pool = Opprox_util.Pool

let apps = Opprox_apps.Registry.paper
let find_app = Opprox_apps.Registry.find

(* Quick mode: fewer samples everywhere; used by CI-style runs. *)
let quick = ref false

(* When set, every printed table is also written to <dir>/<experiment>_<n>.csv. *)
let csv_dir : string option ref = ref None
let current_experiment = ref "experiment"
let csv_counter = ref 0

let print_table ?title t =
  Table.print ?title t;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      incr csv_counter;
      let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" !current_experiment !csv_counter) in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      close_out oc

let joint_samples () = if !quick then 6 else 12
let probe_configs () = if !quick then 6 else 14

(* Budget protocol (paper Sec. 5.3): 5/10/20 % QoS degradation for the
   distortion-metric applications; PSNR targets 30/20/10 dB for FFmpeg,
   mapped onto the uniform degradation scale. *)
let budgets_for (app : App.t) =
  match app.report_metric with
  | App.Distortion -> [ ("small", 5.0); ("medium", 10.0); ("large", 20.0) ]
  | App.Psnr ->
      List.map
        (fun (label, psnr) -> (label, Qos.psnr_to_degradation psnr))
        [ ("small", 30.0); ("medium", 20.0); ("large", 10.0) ]

let budget_label (app : App.t) (label, budget) =
  match app.report_metric with
  | App.Distortion -> Printf.sprintf "%s (%.0f%%)" label budget
  | App.Psnr -> Printf.sprintf "%s (%.0f dB)" label (Qos.degradation_to_psnr budget)

(* ------------------------------------------------- trained-pipeline cache *)

let trained_cache : (string, Opprox.trained) Hashtbl.t = Hashtbl.create 8

let train_config () =
  {
    Opprox.default_train_config with
    training = { Opprox.Training.default_config with joint_samples_per_phase = joint_samples () };
  }

let trained app =
  let name = app.App.name in
  match Hashtbl.find_opt trained_cache name with
  | Some t -> t
  | None ->
      let t = Opprox.train ~config:(train_config ()) app in
      Hashtbl.replace trained_cache name t;
      t

(* ------------------------------------------------------------- utilities *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let default_input (app : App.t) = app.App.default_input

let evaluate app sched = Driver.evaluate app sched (default_input app)

(* Random probe configurations shared across phases of one experiment so
   per-phase numbers are directly comparable (same settings, different
   placement). *)
let probe_set ?(seed = 0xBE7C) app =
  let rng = Rng.create seed in
  Array.init (probe_configs ()) (fun _ -> Config_space.random_nonzero rng app.App.abs)

(* Mean QoS/speedup of a probe set when approximating only [phase] of
   [n_phases] ([phase = n_phases] means the whole run, the "All" column). *)
let phase_profile app ~n_phases configs phase =
  let evaluations =
    (* Each probe configuration is an independent simulator run; fan the
       sweep out across the domain pool (chunk 1: runs are coarse). *)
    Pool.parallel_map ~chunk:1
      (fun levels ->
        let sched =
          if phase >= n_phases then Schedule.uniform ~n_phases levels
          else Schedule.single_phase_active ~n_phases ~phase levels
        in
        evaluate app sched)
      configs
  in
  let qos = Array.map (fun (e : Driver.evaluation) -> e.qos_degradation) evaluations in
  let speedup = Array.map (fun (e : Driver.evaluation) -> e.speedup) evaluations in
  (Stats.mean qos, Stats.mean speedup, qos, speedup)

let fmt = Printf.sprintf

let section title =
  print_newline ();
  print_endline (String.make 72 '=');
  print_endline title;
  print_endline (String.make 72 '=')
