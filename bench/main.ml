(* Benchmark harness entry point.

   Usage:
     dune exec bench/main.exe                   run every experiment
     dune exec bench/main.exe -- --only fig14   run one experiment
     dune exec bench/main.exe -- --quick        reduced sampling
     dune exec bench/main.exe -- --bechamel     micro-benchmarks only
     dune exec bench/main.exe -- --pool-smoke   fast pool scaling check (CI)
     dune exec bench/main.exe -- --list         list experiment ids *)

let usage () =
  print_endline
    "usage: main.exe [--quick] [--list] [--bechamel] [--pool-smoke] [--csv DIR] [--jobs N] [--only <id> ...]";
  print_endline "experiments:";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-14s %s\n" id desc) Experiments.all

let () =
  let only = ref [] and bechamel = ref false and list = ref false and pool_smoke = ref false in
  let rec parse = function
    | [] -> ()
    | "--quick" :: rest ->
        Harness.quick := true;
        parse rest
    | "--bechamel" :: rest ->
        bechamel := true;
        parse rest
    | "--pool-smoke" :: rest ->
        pool_smoke := true;
        parse rest
    | "--list" :: rest ->
        list := true;
        parse rest
    | "--only" :: id :: rest ->
        only := id :: !only;
        parse rest
    | "--csv" :: dir :: rest ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        Harness.csv_dir := Some dir;
        parse rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> Opprox_util.Pool.set_default_jobs j
        | _ ->
            Printf.eprintf "--jobs expects a positive integer, got %s\n" n;
            exit 2);
        parse rest
    | arg :: _ ->
        Printf.eprintf "unknown argument %s\n" arg;
        usage ();
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !list then usage ()
  else if !pool_smoke then begin
    if not (Bechamel_suite.pool_smoke ()) then exit 1
  end
  else begin
    let t0 = Unix.gettimeofday () in
    let gate_ok = ref true in
    if !bechamel then gate_ok := Bechamel_suite.run ()
    else begin
      let selected =
        match !only with
        | [] -> Experiments.all
        | ids ->
            List.iter
              (fun id ->
                if not (List.exists (fun (i, _, _) -> i = id) Experiments.all) then begin
                  Printf.eprintf "unknown experiment id %s\n" id;
                  usage ();
                  exit 2
                end)
              ids;
            List.filter (fun (id, _, _) -> List.mem id ids) Experiments.all
      in
      print_endline "OPPROX experiment harness - reproduces every table and figure of";
      print_endline "\"Phase-Aware Optimization in Approximate Computing\" (CGO 2017).";
      List.iter
        (fun (id, _, f) ->
          Harness.current_experiment := id;
          Harness.csv_counter := 0;
          let _, dt = Harness.timed f in
          Printf.printf "[%s finished in %.1f s]\n%!" id dt)
        selected;
      (* The micro-benchmarks close the default full run. *)
      if !only = [] then gate_ok := Bechamel_suite.run ()
    end;
    Printf.printf "\nTotal harness time: %.1f s\n" (Unix.gettimeofday () -. t0);
    if not !gate_ok then exit 1
  end
