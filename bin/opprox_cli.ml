(* opprox — command-line front end.

   Subcommands:
     list                        the bundled benchmark applications
     probe APP                   phase/level sensitivity of one application
     train APP -o FILE           offline stage only; persist the models
     optimize APP -b BUDGET      emit + execute a plan (optionally --load)
     run APP -b BUDGET           execute on a (perturbed) input; --controlled adds
                                 online phase-boundary recontrol
     search APP -b BUDGET        multi-chain MCMC plan search (--chains, --iters,
                                 --seed) for spaces enumeration cannot touch
     oracle APP -b BUDGET        the phase-agnostic exhaustive baseline
     check [APP]                 static diagnostics over apps/models/schedules/corpora
     stats [APP]                 exercise the pipeline, report the metrics registry
     precompute --models FILE -o CORPUS
                                 sweep input x budget grids into a plan corpus
     serve --models FILE         plan-serving daemon (--corpus, --cache-restore)
     request --app APP -b B      query a daemon (or in-process loopback)
     loadgen                     open-loop load generator with latency percentiles

   Pipeline subcommands also take --trace FILE (Chrome trace-event
   timeline of the run) and --metrics-sexp (dump the registry at exit). *)

open Cmdliner
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

let setup_logs verbose =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))
module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Table = Opprox_util.Table

let app_conv =
  let parse s =
    match Opprox_apps.Registry.find s with
    | app -> Ok app
    | exception Not_found ->
        Error
          (`Msg
             (Printf.sprintf "unknown application %s (known: %s)" s
                (String.concat ", " (Opprox_apps.Registry.names ()))))
  in
  let print ppf (app : App.t) = Format.pp_print_string ppf app.name in
  Arg.conv (parse, print)

let app_arg =
  Arg.(required & pos 0 (some app_conv) None & info [] ~docv:"APP" ~doc:"Benchmark application name.")

let budget_arg =
  Arg.(
    value
    & opt float 10.0
    & info [ "b"; "budget" ] ~docv:"PERCENT"
        ~doc:"QoS degradation budget in percent (0 = exact output required).")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Log the pipeline's progress.")

(* Evaluated first in each command (the term is the leftmost [$ arg]):
   sizes the shared domain pool before any simulator work starts. *)
let jobs_arg =
  let set = function
    | None -> ()
    | Some n ->
        if n < 1 then (
          Printf.eprintf "opprox: --jobs expects a positive integer\n";
          exit 2)
        else Opprox_util.Pool.set_default_jobs n
  in
  Term.(
    const set
    $ Arg.(
        value
        & opt (some int) None
        & info [ "j"; "jobs" ] ~docv:"N"
            ~doc:
              "Number of domains for parallel training/oracle sweeps (default: \
               $(b,OPPROX_JOBS) or the machine's recommended domain count)."))

let phases_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "p"; "phases" ]
        ~docv:"N"
        ~doc:"Force the phase count instead of running the Algorithm-1 search.")

(* ---------------------------------------------------------- observability *)

let metrics_registry_sexp () =
  let module S = Opprox_util.Sexp in
  S.list
    (List.map
       (fun (name, view) ->
         match view with
         | Metrics.Counter n -> S.list [ S.string name; S.atom "counter"; S.int n ]
         | Metrics.Gauge x -> S.list [ S.string name; S.atom "gauge"; S.float x ]
         | Metrics.Histogram { edges; counts; count; sum } ->
             S.list
               [
                 S.string name;
                 S.atom "histogram";
                 S.record
                   [
                     ("count", S.int count);
                     ("sum", S.float sum);
                     ("edges", S.float_array edges);
                     ("counts", S.int_array counts);
                   ];
               ])
       (Metrics.dump ()))

let print_metrics_table () =
  let t = Table.create [ "metric"; "kind"; "value" ] in
  List.iter
    (fun (name, view) ->
      let kind, value =
        match view with
        | Metrics.Counter n -> ("counter", string_of_int n)
        | Metrics.Gauge x -> ("gauge", Printf.sprintf "%.1f" x)
        | Metrics.Histogram { count; sum; _ } ->
            ( "histogram",
              if count = 0 then "n=0"
              else Printf.sprintf "n=%d sum=%.0f mean=%.1f" count sum (sum /. float_of_int count)
            )
      in
      Table.add_row t [ name; kind; value ])
    (Metrics.dump ());
  Table.print ~title:"Metrics registry" t

(* Evaluated before the positional args, like [jobs_arg]: switches the
   tracer on before any pipeline work runs, and registers the at-exit
   exports so every exit path (including [exit] inside a command) still
   writes the requested dumps. *)
let obs_arg =
  let setup trace_file metrics_sexp =
    (* With an export requested, SIGINT/SIGTERM must become an orderly
       [exit] so the at-exit dumps below still run when a long pipeline
       run is interrupted; the default behaviour kills the process
       before any hook fires.  Commands with their own lifecycle
       (opprox serve) install their handlers after this one. *)
    if trace_file <> None || metrics_sexp then begin
      Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> exit 130));
      Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> exit 143))
    end;
    (match trace_file with
    | None -> ()
    | Some path ->
        Trace.set_enabled true;
        at_exit (fun () ->
            Trace.export path;
            Printf.eprintf "opprox: %d trace event(s) -> %s\n" (Trace.event_count ()) path));
    if metrics_sexp then
      at_exit (fun () ->
          print_endline (Opprox_util.Sexp.to_string (metrics_registry_sexp ())))
  in
  Term.(
    const setup
    $ Arg.(
        value
        & opt (some string) None
        & info [ "trace" ] ~docv:"FILE"
            ~doc:
              "Record a span timeline of the run and write it as Chrome trace-event JSON \
               (load in chrome://tracing or Perfetto).")
    $ Arg.(
        value & flag
        & info [ "metrics-sexp" ]
            ~doc:"Dump the full metrics registry as an s-expression on stdout at exit."))

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    let t = Table.create [ "name"; "ABs"; "joint configs"; "description" ] in
    List.iter
      (fun (app : App.t) ->
        Table.add_row t
          [
            app.name;
            string_of_int (App.n_abs app);
            string_of_int (Opprox_sim.Config_space.count app.abs);
            app.description;
          ])
      (Opprox_apps.Registry.all ());
    Table.print t
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled benchmark applications.")
    Term.(const run $ const ())

(* ----------------------------------------------------------------- probe *)

let probe_cmd =
  let run () (app : App.t) =
    let input = app.App.default_input in
    let exact = Driver.run_exact app input in
    Printf.printf "%s: exact run %d iterations, %d work units\n\n" app.name exact.Driver.iters
      exact.Driver.work;
    let t = Table.create [ "level (all ABs)"; "speedup"; "qos %"; "iters" ] in
    for level = 0 to 5 do
      let levels = Array.map (fun m -> Stdlib.min level m) (App.max_levels app) in
      let ev = Driver.evaluate app (Schedule.uniform ~n_phases:1 levels) input in
      Table.add_row t
        [
          string_of_int level;
          Printf.sprintf "%.3f" ev.Driver.speedup;
          Printf.sprintf "%.2f" ev.Driver.qos_degradation;
          string_of_int ev.Driver.outer_iters;
        ]
    done;
    Table.print ~title:"Uniform level sweep" t;
    let mid = Array.map (fun m -> (m + 1) / 2) (App.max_levels app) in
    let t = Table.create [ "active phase (of 4)"; "speedup"; "qos %" ] in
    for phase = 0 to 3 do
      let ev = Driver.evaluate app (Schedule.single_phase_active ~n_phases:4 ~phase mid) input in
      Table.add_row t
        [
          string_of_int (phase + 1);
          Printf.sprintf "%.3f" ev.Driver.speedup;
          Printf.sprintf "%.3f" ev.Driver.qos_degradation;
        ]
    done;
    Table.print ~title:"Mid-level approximation, one phase at a time" t
  in
  Cmd.v (Cmd.info "probe" ~doc:"Print an application's level and phase sensitivity.")
    Term.(const run $ obs_arg $ app_arg)

(* ----------------------------------------------------------------- train *)

(* Small-scale training knobs shared by [train] and [run].  Full-scale
   bodytrack training runs for minutes; trimmed to two small inputs and
   a few joint samples it runs in under a second, which is what the
   smoke targets and CI need.  [--inputs] rebuilds the registry app
   through {!App.with_training_inputs} (same computation, same ABs —
   only the workload scale changes), so the trimmed pipeline is a real
   pipeline, not a mock. *)
let train_inputs_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "inputs" ] ~docv:"CSV;CSV"
        ~doc:"Train on these input vectors instead of the app's registered training set \
              (semicolon-separated vectors of comma-separated floats; the first also \
              becomes the default input).  Small-scale training for smokes and CI.")

let joint_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "joint" ] ~docv:"N"
        ~doc:"Joint configuration samples drawn per phase during profiling (default: \
              the training config's).")

let trim_app (app : App.t) = function
  | None -> app
  | Some spec ->
      let vector s =
        match List.map float_of_string (String.split_on_char ',' (String.trim s)) with
        | v -> Array.of_list v
        | exception Failure _ ->
            Printf.eprintf "opprox: --inputs: cannot parse %S as a float vector\n" s;
            exit 2
      in
      let vectors =
        String.split_on_char ';' spec
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map vector |> Array.of_list
      in
      if Array.length vectors = 0 then begin
        Printf.eprintf "opprox: --inputs: no input vectors given\n";
        exit 2
      end;
      (try App.with_training_inputs app ~default_input:vectors.(0) ~training_inputs:vectors
       with Invalid_argument msg ->
         Printf.eprintf "opprox: --inputs: %s\n" msg;
         exit 2)

(* The one uniform stochastic-seed flag.  Every pipeline command that
   draws randomness takes [--seed N] with the same meaning: it seeds the
   training sampler (default 0xDA7A = 55930), and in [search] the MCMC
   master seed as well (default 0x5EA2C = 387628).  Results are a
   deterministic function of the seed at any [--jobs]. *)
let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:"Seed for the command's stochastic components: the training sampling plan \
              (default $(b,0xDA7A) = 55930) and, under $(b,search), the MCMC master seed \
              (default $(b,0x5EA2C) = 387628).  Every result is a deterministic function \
              of the seed, independent of $(b,--jobs).")

let train_config ~phases ~joint ~seed =
  let config =
    match phases with
    | None -> Opprox.default_train_config
    | Some n -> { Opprox.default_train_config with n_phases = Some n }
  in
  let config =
    match joint with
    | None -> config
    | Some n ->
        {
          config with
          Opprox.training =
            { config.Opprox.training with Opprox.Training.joint_samples_per_phase = n };
        }
  in
  match seed with
  | None -> config
  | Some s ->
      { config with Opprox.training = { config.Opprox.training with Opprox.Training.seed = s } }

let train_cmd =
  let output_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to store the trained pipeline.")
  in
  let run () () (app : App.t) phases inputs joint seed output verbose =
    setup_logs verbose;
    let app = trim_app app inputs in
    let config = train_config ~phases ~joint ~seed in
    Printf.printf "Training OPPROX on %s...\n%!" app.name;
    let trained = Opprox.train ~config app in
    Opprox.save output trained;
    Printf.printf "  %d phases, %d profiling runs -> %s\n"
      trained.Opprox.training.Opprox.Training.n_phases
      (Opprox.Training.n_runs trained.Opprox.training)
      output
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Run the offline stage and persist the trained pipeline.")
    Term.(
      const run $ jobs_arg $ obs_arg $ app_arg $ phases_arg $ train_inputs_arg $ joint_arg
      $ seed_arg $ output_arg $ verbose_arg)

(* -------------------------------------------------------------- optimize *)

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Load a pipeline saved by $(b,train) instead of retraining.")

(* One plan rendered as the per-phase choice table — shared by
   [optimize] (local solve) and [request] (daemon reply). *)
let print_plan_table ~budget (plan : Opprox.Optimizer.plan) =
  let t = Table.create [ "phase"; "levels"; "sub-budget %"; "predicted qos-hi %" ] in
  List.iter
    (fun (c : Opprox.Optimizer.phase_choice) ->
      Table.add_row t
        [
          string_of_int (c.phase + 1);
          Printf.sprintf "[%s]"
            (String.concat ";" (Array.to_list (Array.map string_of_int c.levels)));
          Printf.sprintf "%.2f" c.sub_budget;
          Printf.sprintf "%.2f" c.predicted.Opprox.Models.qos_hi;
        ])
    (List.sort
       (fun (a : Opprox.Optimizer.phase_choice) b -> compare a.phase b.phase)
       plan.Opprox.Optimizer.choices);
  Table.print ~title:(Printf.sprintf "Plan for budget %.1f%%" budget) t

let optimize_cmd =
  let run () () (app : App.t) budget phases load verbose =
    setup_logs verbose;
    let trained =
      match load with
      | Some path ->
          Printf.printf "Loading trained pipeline from %s...\n%!" path;
          Opprox.load ~resolve:Opprox_apps.Registry.find path
      | None ->
          let config =
            match phases with
            | None -> Opprox.default_train_config
            | Some n -> { Opprox.default_train_config with n_phases = Some n }
          in
          Printf.printf "Training OPPROX on %s...\n%!" app.name;
          Opprox.train ~config app
    in
    Printf.printf "  phases: %d, profiling runs: %d, QoS R2: %.2f, speedup R2: %.2f\n%!"
      trained.Opprox.training.Opprox.Training.n_phases
      (Opprox.Training.n_runs trained.Opprox.training)
      (Opprox.Models.qos_r2 trained.Opprox.models)
      (Opprox.Models.speedup_r2 trained.Opprox.models);
    let plan = Opprox.optimize trained ~budget in
    print_plan_table ~budget plan;
    let outcome = Opprox.apply trained plan in
    Printf.printf "Measured: speedup %.3f, qos degradation %.2f%% (budget %.1f%%)%s\n"
      outcome.Driver.speedup outcome.Driver.qos_degradation budget
      (if outcome.Driver.qos_degradation > budget then "  ** over budget **" else "")
  in
  Cmd.v
    (Cmd.info "optimize" ~doc:"Train OPPROX and execute the phase-aware plan for a budget.")
    Term.(
      const run $ jobs_arg $ obs_arg $ app_arg $ budget_arg $ phases_arg $ load_arg
      $ verbose_arg)

(* ------------------------------------------------------------------- run *)

let run_cmd =
  let controlled_arg =
    Arg.(
      value & flag
      & info [ "controlled" ]
          ~doc:"Execute under the online controller (phase-boundary drift checks and \
                mid-run replans) alongside the static plan, and compare.")
  in
  let drift_tol_arg =
    Arg.(
      value
      & opt float Opprox.Controller.default_config.Opprox.Controller.drift_tol
      & info [ "drift-tol" ] ~docv:"F"
          ~doc:"Relative per-phase work drift that triggers a replan (0 replans on any \
                drift; inf never replans).")
  in
  let max_replans_arg =
    Arg.(
      value
      & opt int Opprox.Controller.default_config.Opprox.Controller.max_replans
      & info [ "max-replans" ] ~docv:"N" ~doc:"Cap on mid-run re-solves.")
  in
  let input_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "input" ] ~docv:"CSV"
          ~doc:"Input vector to execute on, comma-separated (default: the app's default \
                input).  The plan is always solved for the default input, so a different \
                vector here runs the plan off its assumptions — the controller's case.")
  in
  let perturb_arg =
    Arg.(
      value
      & opt float 0.0
      & info [ "perturb" ] ~docv:"F"
          ~doc:"Scale the leading (size) input parameter by $(b,1+F) before executing — a \
                shorthand for an off-distribution input.")
  in
  let via_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "via" ] ~docv:"SOCKET"
          ~doc:"Stream the controlled run's phase-boundary telemetry to the $(b,opprox \
                serve) daemon on $(docv) and adopt its plan deltas instead of re-solving \
                locally (implies $(b,--controlled)).")
  in
  let run () () (app : App.t) budget phases inputs joint seed load controlled drift_tol
      max_replans via input perturb verbose =
    setup_logs verbose;
    let app = trim_app app inputs in
    let controlled = controlled || via <> None in
    let trained =
      match load with
      | Some path ->
          Printf.printf "Loading trained pipeline from %s...\n%!" path;
          Opprox.load ~resolve:Opprox_apps.Registry.find path
      | None ->
          let config = train_config ~phases ~joint ~seed in
          Printf.printf "Training OPPROX on %s...\n%!" app.name;
          Opprox.train ~config app
    in
    let input =
      let base =
        match input with Some l -> Array.of_list l | None -> app.App.default_input
      in
      if perturb = 0.0 then base
      else begin
        let p = Array.copy base in
        p.(0) <- p.(0) *. (1.0 +. perturb);
        p
      end
    in
    (* The static OPPROX protocol: solve for the default input, run the
       plan unchanged on whatever input actually arrives. *)
    let plan = Opprox.optimize trained ~budget in
    print_plan_table ~budget plan;
    let static = Opprox.apply ~input trained plan in
    Printf.printf "static:     speedup %.3f, qos degradation %.2f%% (budget %.1f%%)%s\n%!"
      static.Driver.speedup static.Driver.qos_degradation budget
      (if static.Driver.qos_degradation > budget then "  ** over budget **" else "");
    if controlled then begin
      let config = { Opprox.Controller.drift_tol; max_replans } in
      let outcome =
        match via with
        | None -> Opprox.run_controlled ~config ~input trained plan
        | Some socket -> (
            (* Streaming recontrol: this process executes the phases;
               every over-tolerance boundary ships to the daemon as a
               telemetry frame, and the daemon's plan deltas steer the
               remaining phases. *)
            let client =
              try Opprox_serve.Client.connect ~socket
              with Unix.Unix_error (err, _, _) ->
                Printf.eprintf "opprox run: cannot connect to %s: %s\n" socket
                  (Unix.error_message err);
                exit 2
            in
            Printf.printf "controlled: streaming telemetry via %s\n%!" socket;
            Fun.protect
              ~finally:(fun () -> Opprox_serve.Client.close client)
              (fun () ->
                let replan =
                  Opprox_serve.Client.replanner client ~input ~app:app.App.name
                    ~plan_budget:budget ~drift_tol ()
                in
                try Opprox.run_controlled ~config ~replan ~input trained plan
                with Failure msg ->
                  Printf.eprintf "opprox run: telemetry stream failed: %s\n" msg;
                  exit 1))
      in
      let ev = outcome.Opprox.Controller.evaluation in
      Printf.printf "controlled: speedup %.3f, qos degradation %.2f%% (budget %.1f%%)%s\n"
        ev.Driver.speedup ev.Driver.qos_degradation budget
        (if outcome.Opprox.Controller.within_budget then "" else "  ** over budget **");
      Printf.printf "controlled: %d replan(s), budget %s\n"
        outcome.Opprox.Controller.replans
        (if outcome.Opprox.Controller.within_budget then "held" else "violated");
      let t = Table.create [ "phase"; "levels"; "pred work"; "obs work"; "drift"; "replan" ] in
      List.iter
        (fun (r : Opprox.Controller.phase_report) ->
          Table.add_row t
            [
              string_of_int (r.Opprox.Controller.phase + 1);
              Printf.sprintf "[%s]"
                (String.concat ";"
                   (Array.to_list (Array.map string_of_int r.Opprox.Controller.levels)));
              Printf.sprintf "%.0f" r.Opprox.Controller.predicted_work;
              Printf.sprintf "%.0f" r.Opprox.Controller.observed_work;
              Printf.sprintf "%.2f" r.Opprox.Controller.drift;
              (if r.Opprox.Controller.replanned then "yes" else "");
            ])
        outcome.Opprox.Controller.phases;
      Table.print ~title:"Controlled execution" t
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute a plan on an input — optionally perturbed away from the training \
          distribution — statically and, with $(b,--controlled), under the online \
          phase-boundary controller (drift checks, mid-run suffix replans against the \
          remaining budget).")
    Term.(
      const run $ jobs_arg $ obs_arg $ app_arg $ budget_arg $ phases_arg $ train_inputs_arg
      $ joint_arg $ seed_arg $ load_arg $ controlled_arg $ drift_tol_arg $ max_replans_arg
      $ via_arg $ input_arg $ perturb_arg $ verbose_arg)

(* ---------------------------------------------------------------- search *)

let search_cmd =
  let chains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chains" ] ~docv:"N"
          ~doc:"Independent MCMC chains (default 4).  Chain $(i,i) is seeded from \
                $(b,(seed, i)) alone, so the result is bit-identical at any $(b,--jobs) \
                and — once the iteration budget lets every chain converge — across chain \
                counts too.")
  in
  let iters_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "iters" ] ~docv:"N" ~doc:"Proposal steps per chain (default 2000).")
  in
  let run () () (app : App.t) budget phases inputs joint seed load chains iters verbose =
    setup_logs verbose;
    let app = trim_app app inputs in
    let trained =
      match load with
      | Some path ->
          Printf.printf "Loading trained pipeline from %s...\n%!" path;
          Opprox.load ~resolve:Opprox_apps.Registry.find path
      | None ->
          let config = train_config ~phases ~joint ~seed in
          Printf.printf "Training OPPROX on %s...\n%!" app.name;
          Opprox.train ~config app
    in
    let app = trained.Opprox.app in
    let module Search = Opprox_search.Search in
    let base = Search.default_config in
    let config =
      {
        Search.chains = Option.value chains ~default:base.Search.chains;
        iters = Option.value iters ~default:base.Search.iters;
        seed = Option.value seed ~default:base.Search.seed;
      }
    in
    Printf.printf
      "Searching %s (%d ABs, %d joint configs) at budget %.1f%%: %d chain(s) x %d step(s), \
       seed %d\n%!"
      app.App.name (App.n_abs app)
      (Opprox_sim.Config_space.count app.abs)
      budget config.Search.chains config.Search.iters config.Search.seed;
    let plan, stats =
      try
        Search.solve ~config ~models:trained.Opprox.models ~input:app.App.default_input
          ~budget ()
      with Opprox_analysis.Diagnostic.Lint_error diags ->
        Format.eprintf "opprox search: audit failed:@.%a@." Opprox_analysis.Diagnostic.pp_list
          diags;
        exit 1
    in
    print_plan_table ~budget plan;
    let t = Table.create [ "chain"; "best cost" ] in
    Array.iteri
      (fun i c ->
        Table.add_row t
          [
            (if i = stats.Search.best_chain then Printf.sprintf "%d *" i else string_of_int i);
            (if Float.is_nan c then "never feasible" else Printf.sprintf "%.6f" c);
          ])
      stats.Search.chain_costs;
    Table.print ~title:"Chains (* = winner)" t;
    Printf.printf
      "search: %d step(s), %d accept(s) (%.0f%%), %d restart(s); best cost %.6f, predicted \
       speedup %.3f, predicted qos-hi %.2f%%\n"
      stats.Search.steps stats.Search.accepts
      (if stats.Search.steps = 0 then 0.0
       else 100.0 *. float_of_int stats.Search.accepts /. float_of_int stats.Search.steps)
      stats.Search.restarts stats.Search.best_cost plan.Opprox.Optimizer.predicted_speedup
      plan.Opprox.Optimizer.predicted_qos;
    let outcome = Opprox.apply trained plan in
    Printf.printf "Measured: speedup %.3f, qos degradation %.2f%% (budget %.1f%%)%s\n"
      outcome.Driver.speedup outcome.Driver.qos_degradation budget
      (if outcome.Driver.qos_degradation > budget then "  ** over budget **" else "")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Plan through the stochastic schedule search: multi-chain MCMC over whole \
          per-phase AL schedules, priced by the trained models — the only strategy that \
          scales to joint spaces enumeration cannot touch (e.g. $(b,transformer)'s \
          9^13).  Prints the winning plan, per-chain outcomes, and acceptance stats, \
          then executes the plan.")
    Term.(
      const run $ jobs_arg $ obs_arg $ app_arg $ budget_arg $ phases_arg $ train_inputs_arg
      $ joint_arg $ seed_arg $ load_arg $ chains_arg $ iters_arg $ verbose_arg)

(* ---------------------------------------------------------------- submit *)

let submit_cmd =
  let config_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CONFIG" ~doc:"Job configuration file (app=, budget=, models=, input=).")
  in
  let run () config_path =
    (* No --verbose here, but config-parsing warnings (duplicate keys)
       must still reach the user. *)
    setup_logs false;
    let job = Opprox.Runtime.load_config config_path in
    let submission = Opprox.submit ~resolve:Opprox_apps.Registry.find job in
    Printf.printf "Job %s at budget %.1f%% -> environment:\n" job.Opprox.Runtime.app_name
      job.Opprox.Runtime.budget;
    List.iter (fun (k, v) -> Printf.printf "  %s=%s\n" k v) submission.Opprox.Runtime.env;
    let outcome = submission.Opprox.Runtime.outcome in
    Printf.printf "Executed: speedup %.3f, qos degradation %.2f%%\n" outcome.Driver.speedup
      outcome.Driver.qos_degradation
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Load models named by a job config, optimize, and launch (the paper's runtime step).")
    Term.(const run $ obs_arg $ config_arg)

(* ----------------------------------------------------------------- check *)

module Diagnostic = Opprox_analysis.Diagnostic
module Checker = Opprox_analysis.Checker
module Lint_app = Opprox_analysis.Lint_app
module Lint_schedule = Opprox_analysis.Lint_schedule

module Conc = Opprox_util.Conc
module Dmutex = Opprox_util.Dmutex
module Guarded = Opprox_util.Guarded

(* Seeded defect fixtures: each deterministically triggers one CONC rule
   so `make conc-smoke` (and the docs) can demonstrate the checker
   catching a real defect with a stable code.  The deadlock fixture
   needs no second domain — the order graph convicts the AB/BA shape
   from one domain's history, which is the point: the cycle is reported
   even when this run happened not to interleave fatally. *)
let run_conc_fixture kind =
  Conc.enable ();
  match kind with
  | "deadlock" ->
      let a = Dmutex.create ~name:"fixture.lock_a" () in
      let b = Dmutex.create ~name:"fixture.lock_b" () in
      Dmutex.lock a;
      Dmutex.lock b;
      Dmutex.unlock b;
      Dmutex.unlock a;
      Dmutex.lock b;
      Dmutex.lock a;
      Dmutex.unlock a;
      Dmutex.unlock b
  | "unguarded" ->
      let m = Dmutex.create ~name:"fixture.guard" () in
      let cell = Guarded.create ~name:"fixture.cell" ~locks:[ m ] 0 in
      ignore (Guarded.get cell : int)
  | "reentrant" ->
      let m = Dmutex.create ~name:"fixture.reentrant" () in
      Dmutex.lock m;
      (try Dmutex.lock m with Failure _ -> ());
      Dmutex.unlock m
  | other ->
      Printf.eprintf
        "opprox check: unknown --conc-fixture %S (expected deadlock, unguarded, or reentrant)\n"
        other;
      exit 2

(* The deterministic self-exercise: drive every concurrent structure the
   runtime owns — pool, shardmap, plancache, singleflight, and the full
   server loopback path — under the checker, with seeded yield injection
   widening the interleavings each repetition explores.  A clean run is
   the evidence `opprox check --concurrency` reports; any discipline
   break surfaces as a CONC diagnostic. *)
let run_conc_suite ~seed ~reps =
  Conc.enable ();
  (* Train once (checked, not stressed): the driver memos and the pool
     already run under the enabled checker here. *)
  let app = List.hd (Opprox_apps.Registry.all ()) in
  let config =
    {
      Opprox.default_train_config with
      n_phases = Some 2;
      training =
        {
          Opprox.Training.default_config with
          joint_samples_per_phase = 2;
          inputs =
            Some
              (Array.sub app.App.training_inputs 0
                 (Stdlib.min 2 (Array.length app.App.training_inputs)));
        };
    }
  in
  let trained = Opprox.train ~config app in
  let server = Opprox_serve.Server.create [ trained ] in
  Conc.stress ~seed ~reps (fun rep ->
      let pool = Opprox_util.Pool.create ~jobs:4 () in
      Fun.protect
        ~finally:(fun () -> Opprox_util.Pool.shutdown pool)
        (fun () ->
          (* Pool + shardmap: concurrent add/find churn across shards,
             with capacity trims exercising the order lock. *)
          let map = Opprox_util.Shardmap.create ~name:"conc.suite.map" ~capacity:64 () in
          Opprox_util.Pool.parallel_iter ~pool
            (fun i ->
              let key = Printf.sprintf "k%d" (i mod 96) in
              ignore (Opprox_util.Shardmap.add map key i : bool);
              ignore (Opprox_util.Shardmap.find map key : int option))
            (Array.init 256 Fun.id);
          Opprox_util.Shardmap.set_capacity map 16;
          ignore (Opprox_util.Shardmap.size map : int);
          (* Plancache: sharded LRU under concurrent hits and evictions. *)
          let cache = Opprox_serve.Plancache.create ~shards:4 ~capacity:32 () in
          Opprox_util.Pool.parallel_iter ~pool
            (fun i ->
              let key = Printf.sprintf "p%d" (i mod 48) in
              Opprox_serve.Plancache.add cache key i;
              ignore (Opprox_serve.Plancache.find cache key : int option))
            (Array.init 256 Fun.id);
          (* Singleflight: a hot-key storm — leaders publish through the
             entry condvar while followers park on it. *)
          let sf : int Opprox_serve.Singleflight.t = Opprox_serve.Singleflight.create () in
          Opprox_util.Pool.parallel_iter ~pool
            (fun i ->
              ignore
                (Opprox_serve.Singleflight.run sf "hot"
                   (fun () ->
                     for _ = 0 to 200 do
                       Domain.cpu_relax ()
                     done;
                     i)
                  : int Opprox_serve.Singleflight.outcome))
            (Array.init 64 Fun.id);
          (* Server loopback: the full request path (validation, corpus
             ladder, LRU, singleflight-coalesced solve) from several
             domains at once. *)
          Opprox_util.Pool.parallel_iter ~pool
            (fun i ->
              let client = Opprox_serve.Client.loopback server in
              let budget = 5.0 +. float_of_int (i mod 3 + rep) in
              let req = Opprox_serve.Protocol.request ~app:app.App.name ~budget () in
              ignore (Opprox_serve.Client.request client req : Opprox_serve.Protocol.response))
            (Array.init 32 Fun.id)))

let conc_metric name =
  match Opprox_obs.Metrics.find name with
  | Some (Opprox_obs.Metrics.Counter n) -> n
  | Some (Opprox_obs.Metrics.Gauge g) -> int_of_float g
  | _ -> 0

let check_cmd =
  let app_opt_arg =
    Arg.(
      value
      & pos 0 (some app_conv) None
      & info [] ~docv:"APP"
          ~doc:"Application to audit.  Omitted: audit every registered application.")
  in
  let models_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "models" ] ~docv:"FILE"
          ~doc:"Audit a trained pipeline saved by $(b,train) (coefficients, conditioning, \
                confidence intervals, prediction sanity sweep).")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "schedule" ] ~docv:"FILE"
          ~doc:"Audit a serialized schedule (shape, level ranges against $(i,APP)).")
  in
  let request_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "request" ] ~docv:"FILE"
          ~doc:"Audit a serving request (budget range, known app, input arity — the \
                $(b,SRV) rules the daemon applies at its boundary).")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Audit a precomputed plan corpus: structure and index order ($(b,CORP002)), \
                record decodability ($(b,CORP004)), stale models hashes against \
                $(b,--models) ($(b,CORP001)), and — with $(b,--request) — grid coverage \
                ($(b,CORP003)).")
  in
  let strict_arg =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:"Treat warnings as failures (also enabled by $(b,OPPROX_STRICT=1)).")
  in
  let disable_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "disable" ] ~docv:"CODES"
          ~doc:"Comma-separated rule codes or code prefixes to mute (e.g. \
                $(b,SCHED006,MODEL)).")
  in
  let sexp_arg =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Also print each finding as an s-expression on stdout.")
  in
  let concurrency_arg =
    Arg.(
      value & flag
      & info [ "concurrency" ]
          ~doc:"Run the concurrency self-exercise suite (pool, shardmap, plancache, \
                singleflight, server loopback) under the runtime checker with seeded \
                interleaving widening, and report any $(b,CONC) findings (lock-order \
                cycles, unguarded shared state, reentrancy, foreign release).")
  in
  let conc_seed_arg =
    Arg.(
      value & opt int 42
      & info [ "conc-seed" ] ~docv:"SEED"
          ~doc:"Seed for the stress mode's randomized yield injection.")
  in
  let conc_reps_arg =
    Arg.(
      value & opt int 3
      & info [ "conc-reps" ] ~docv:"N"
          ~doc:"Repetitions of the self-exercise suite; each widens a different \
                interleaving family from the seed.")
  in
  let conc_fixture_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "conc-fixture" ] ~docv:"KIND"
          ~doc:"Instead of the self-exercise suite, run a seeded defect fixture and \
                report its finding: $(b,deadlock) (AB/BA lock-order cycle, CONC001), \
                $(b,unguarded) (lockset violation, CONC002), or $(b,reentrant) \
                (self-deadlock, CONC003).  Exercises the checker's detection paths; \
                used by $(b,make conc-smoke).")
  in
  let run app models_file schedule_file request_file corpus_file strict_flag disabled sexp_out
      concurrency conc_seed conc_reps conc_fixture verbose =
    setup_logs verbose;
    let strict = strict_flag || Diagnostic.strict_env () in
    let checker =
      try Checker.create ~disabled ()
      with Invalid_argument msg ->
        Printf.eprintf "opprox check: %s\n" msg;
        exit 2
    in
    let app_name = Option.map (fun (a : App.t) -> a.name) app in
    (match app with
    | Some a -> Checker.add checker (Lint_app.check_app a)
    | None ->
        let all = Opprox_apps.Registry.all () in
        List.iter (fun a -> Checker.add checker (Lint_app.check_app a)) all;
        Checker.add checker (Lint_app.check_registry all));
    (match models_file with
    | None -> ()
    | Some path -> (
        (* Load without the fail-fast wiring: the point here is to gather
           every finding into one report, not to stop at the first. *)
        match Opprox.load ~strict:false ~resolve:Opprox_apps.Registry.find path with
        | trained ->
            (match app_name with
            | Some n when n <> trained.Opprox.app.App.name ->
                Printf.eprintf "opprox check: %s holds models for %s, not %s\n" path
                  trained.Opprox.app.App.name n;
                exit 2
            | _ -> ());
            Checker.add checker (Opprox.Models.lint trained.Opprox.models)
        | exception Failure msg ->
            Printf.eprintf "opprox check: cannot load %s: %s\n" path msg;
            exit 2
        | exception Not_found ->
            Printf.eprintf "opprox check: %s names an unregistered application\n" path;
            exit 2));
    (match schedule_file with
    | None -> ()
    | Some path ->
        let raw =
          match
            let sexp = Opprox_util.Sexp.load path in
            Array.of_list
              (List.map Opprox_util.Sexp.to_int_array
                 (Opprox_util.Sexp.to_list (Opprox_util.Sexp.field sexp "levels")))
          with
          | raw -> raw
          | exception Failure msg ->
              Printf.eprintf "opprox check: cannot load %s: %s\n" path msg;
              exit 2
        in
        let raw_diags = Lint_schedule.check_raw ?app:app_name raw in
        Checker.add checker raw_diags;
        (* Only a well-shaped matrix can be checked against an app's ABs. *)
        if Diagnostic.exit_code ~strict:false raw_diags = 0 then
          match app with
          | Some (a : App.t) ->
              Checker.add checker
                (Lint_schedule.check ~app:a.name ~abs:a.abs (Schedule.make raw))
          | None -> ());
    (match request_file with
    | None -> ()
    | Some path ->
        (* The registry stands in for a serving target: every bundled app
           is "loaded", and with no model set at hand the hash rule
           (SRV003) has nothing to compare against. *)
        let module Protocol = Opprox_serve.Protocol in
        let module Lint_request = Opprox_analysis.Lint_request in
        let target =
          {
            Lint_request.known_apps = Opprox_apps.Registry.names ();
            param_arity =
              (fun name ->
                match Opprox_apps.Registry.find name with
                | a -> Some (Array.length a.App.param_names)
                | exception Not_found -> None);
            expected_hash = (fun _ -> None);
          }
        in
        let findings =
          match Opprox_util.Sexp.load path with
          | exception Failure msg -> [ Lint_request.malformed msg ]
          | sexp -> (
              match Protocol.frame_version sexp with
              | exception Failure msg -> [ Lint_request.malformed msg ]
              | v when v <> Protocol.version -> [ Lint_request.bad_version ~got:v ]
              | _ -> (
                  match Protocol.request_of_sexp sexp with
                  | exception Failure msg -> [ Lint_request.malformed msg ]
                  | req ->
                      Lint_request.check target
                        {
                          Lint_request.app = req.Protocol.app;
                          budget = req.Protocol.budget;
                          input = req.Protocol.input;
                          models_hash = req.Protocol.models_hash;
                          deadline_ms = req.Protocol.deadline_ms;
                        }))
        in
        Checker.add checker findings);
    (match corpus_file with
    | None -> ()
    | Some path ->
        let module Corpus = Opprox_corpus.Corpus in
        let expected_hashes =
          (* With --models alongside, the corpus stamps are checked
             against the pipeline the server would actually load. *)
          match models_file with
          | None -> []
          | Some mpath -> (
              match Opprox.load ~strict:false ~resolve:Opprox_apps.Registry.find mpath with
              | trained ->
                  [
                    ( trained.Opprox.app.App.name,
                      Opprox_corpus.Precompute.models_hash trained );
                  ]
              | exception _ -> [])
        in
        Checker.add checker (Corpus.lint_file ~expected_hashes path);
        (* With --request alongside: would this corpus answer it, exactly
           or through the nearest-neighbour fallback? *)
        (match (request_file, Corpus.load path) with
        | Some rpath, corpus -> (
            let module Protocol = Opprox_serve.Protocol in
            match Protocol.request_of_sexp (Opprox_util.Sexp.load rpath) with
            | req ->
                Checker.add checker
                  (Corpus.lint_coverage corpus ~app:req.Protocol.app
                     ~budget:req.Protocol.budget)
            | exception Failure _ -> ())
        | None, _ -> ()
        | exception Failure _ -> () (* already reported by lint_file *)));
    (match (concurrency, conc_fixture) with
    | false, None -> ()
    | _ ->
        Conc.reset ();
        (match conc_fixture with
        | Some kind -> run_conc_fixture kind
        | None -> run_conc_suite ~seed:conc_seed ~reps:conc_reps);
        Printf.printf
          "concurrency: %d lock acquisitions, %d lock classes, %d order edges, %d stress \
           yields, %d reports\n"
          (conc_metric "conc.locks.acquisitions")
          (conc_metric "conc.locks.classes")
          (conc_metric "conc.order.edges")
          (conc_metric "conc.stress.yields")
          (conc_metric "conc.reports");
        Opprox_analysis.Lint_conc.check_into checker);
    if sexp_out then
      List.iter
        (fun d -> print_endline (Opprox_util.Sexp.to_string (Diagnostic.to_sexp d)))
        (Checker.diagnostics checker);
    Checker.report ~strict checker;
    exit (Checker.exit_code ~strict checker)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Audit applications, trained models, and schedules without running the simulator, \
          and — with $(b,--concurrency) — the runtime's own lock discipline under the \
          concurrency checker.  Exit status 0 when clean (or only notes/warnings), 1 when \
          any error — or any warning under $(b,--strict) — fired, 2 on usage problems.")
    Term.(
      const run $ app_opt_arg $ models_arg $ schedule_arg $ request_arg $ corpus_arg
      $ strict_arg $ disable_arg $ sexp_arg $ concurrency_arg $ conc_seed_arg $ conc_reps_arg
      $ conc_fixture_arg $ verbose_arg)

(* ---------------------------------------------------------------- oracle *)

let oracle_cmd =
  let run () () (app : App.t) budget =
    let r = Opprox.run_oracle app ~budget in
    Printf.printf "%s phase-agnostic oracle at %.1f%% budget:\n" app.name budget;
    Printf.printf "  levels [%s], speedup %.3f, qos %.2f%%\n"
      (String.concat ";" (Array.to_list (Array.map string_of_int r.Opprox.Oracle.levels)))
      r.Opprox.Oracle.evaluation.Driver.speedup
      r.Opprox.Oracle.evaluation.Driver.qos_degradation
  in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Run the phase-agnostic exhaustive baseline for a budget.")
    Term.(const run $ jobs_arg $ obs_arg $ app_arg $ budget_arg)

(* ----------------------------------------------------------------- stats *)

let stats_cmd =
  let app_opt_arg =
    Arg.(
      value
      & pos 0 (some app_conv) None
      & info [] ~docv:"APP"
          ~doc:"Application to exercise (default: the first registered one).")
  in
  let run () () app budget seed verbose =
    setup_logs verbose;
    let app =
      match app with
      | Some a -> a
      | None -> List.hd (Opprox_apps.Registry.all ())
    in
    (* A deliberately small pipeline pass: enough to touch training, the
       optimizer, the memo layers, and the pool, so the registry shows
       live values — while staying fast enough for CI. *)
    let config =
      {
        Opprox.default_train_config with
        n_phases = Some 2;
        training =
          {
            Opprox.Training.joint_samples_per_phase = 2;
            inputs =
              Some
                (Array.sub app.App.training_inputs 0
                   (Stdlib.min 2 (Array.length app.App.training_inputs)));
            seed =
              Option.value seed ~default:Opprox.Training.default_config.Opprox.Training.seed;
          };
      }
    in
    let trained = Opprox.train ~config app in
    let plan = Opprox.optimize trained ~budget in
    let outcome = Opprox.apply trained plan in
    Printf.printf "%s at budget %.1f%%: speedup %.3f, qos degradation %.2f%%\n\n" app.App.name
      budget outcome.Driver.speedup outcome.Driver.qos_degradation;
    print_metrics_table ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a small train/optimize/apply pass and print the metrics registry \
          (counters, gauges, histograms) it produced.")
    Term.(const run $ jobs_arg $ obs_arg $ app_opt_arg $ budget_arg $ seed_arg $ verbose_arg)

(* ----------------------------------------------------------------- serve *)

module Protocol = Opprox_serve.Protocol
module Server = Opprox_serve.Server
module Client = Opprox_serve.Client

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path the daemon listens on.")

let serve_cmd =
  let models_arg =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "models" ] ~docv:"FILE"
          ~doc:"Trained pipeline saved by $(b,train); repeat to serve several applications.")
  in
  let max_inflight_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"K"
          ~doc:"Admission bound: requests beyond $(docv) in flight are shed with an \
                $(b,overloaded) reply.")
  in
  let cache_cap_arg =
    Arg.(
      value
      & opt int Server.default_config.Server.cache_capacity
      & info [ "cache-cap" ] ~docv:"C" ~doc:"Plan-cache capacity in entries.")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:"Default per-request deadline applied when a request carries none.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"Precomputed plan corpus (from $(b,opprox precompute)) consulted before the \
                cache and the solver: exact fingerprint hits and nearest-neighbour \
                budget-grid hits are served without solving.")
  in
  let restore_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-restore" ] ~docv:"PATH"
          ~doc:"Persist the plan cache here on shutdown drain and restore it from here at \
                startup (ignored when absent; rejected with a warning when its models \
                hashes mismatch the loaded pipelines).")
  in
  let run () () socket models max_inflight cache_cap deadline_ms corpus_path cache_snapshot
      verbose =
    setup_logs verbose;
    let socket =
      match socket with
      | Some s -> s
      | None ->
          Printf.eprintf "opprox serve: --socket PATH is required\n";
          exit 2
    in
    let pipelines =
      List.map
        (fun path ->
          Printf.printf "Loading trained pipeline from %s...\n%!" path;
          match Opprox.load ~resolve:Opprox_apps.Registry.find path with
          | trained -> trained
          | exception Failure msg ->
              Printf.eprintf "opprox serve: cannot load %s: %s\n" path msg;
              exit 2
          | exception Not_found ->
              Printf.eprintf "opprox serve: %s names an unregistered application\n" path;
              exit 2)
        models
    in
    let config =
      {
        Server.default_config with
        Server.max_inflight;
        cache_capacity = cache_cap;
        default_deadline_ms = deadline_ms;
        corpus_path;
        cache_snapshot;
      }
    in
    let server =
      try Server.create ~config pipelines with
      | Invalid_argument msg ->
          Printf.eprintf "opprox serve: %s\n" msg;
          exit 2
      | Failure msg ->
          (* A structurally invalid corpus must fail at startup. *)
          Printf.eprintf "opprox serve: %s\n" msg;
          exit 1
      | Opprox_analysis.Diagnostic.Lint_error diags ->
          Format.eprintf "opprox serve: model audit failed:@.%a@."
            Opprox_analysis.Diagnostic.pp_list diags;
          exit 1
    in
    Server.install_signal_handlers server;
    List.iter
      (fun app ->
        Printf.printf "  serving %s (models %s)\n%!" app
          (Option.value ~default:"?" (Server.models_hash server app)))
      (Server.apps server);
    (match Server.serve server ~socket with
    | () -> ()
    | exception Unix.Unix_error (err, fn, arg) ->
        Printf.eprintf "opprox serve: %s(%s): %s\n" fn arg (Unix.error_message err);
        exit 1);
    let stats = Server.cache_stats server in
    Printf.printf "Drained.  Cache: %d hit(s), %d miss(es), %d eviction(s)\n"
      stats.Opprox_serve.Plancache.hits stats.Opprox_serve.Plancache.misses
      stats.Opprox_serve.Plancache.evictions
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the plan-serving daemon: load trained pipelines once, then answer plan \
          requests over a Unix-domain socket with a sharded plan cache, per-request \
          deadlines, and overload shedding.  SIGINT/SIGTERM drain in-flight requests \
          before exit.")
    Term.(
      const run $ jobs_arg $ obs_arg $ socket_arg $ models_arg $ max_inflight_arg
      $ cache_cap_arg $ deadline_arg $ corpus_arg $ restore_arg $ verbose_arg)

(* ------------------------------------------------------------ precompute *)

(* Load trained pipelines for the corpus tools, with serve's error style. *)
let load_pipelines ~cmd paths =
  List.map
    (fun path ->
      match Opprox.load ~resolve:Opprox_apps.Registry.find path with
      | trained -> trained
      | exception Failure msg ->
          Printf.eprintf "opprox %s: cannot load %s: %s\n" cmd path msg;
          exit 2
      | exception Not_found ->
          Printf.eprintf "opprox %s: %s names an unregistered application\n" cmd path;
          exit 2)
    paths

let budgets_arg =
  Arg.(
    value
    & opt (list float) [ 5.0; 10.0; 20.0 ]
    & info [ "budgets" ] ~docv:"CSV"
        ~doc:"Budget grid in percent, comma-separated.")

let precompute_cmd =
  let models_arg =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "models" ] ~docv:"FILE"
          ~doc:"Trained pipeline saved by $(b,train); repeat to sweep several applications.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the corpus.")
  in
  let run () () models budgets out verbose =
    setup_logs verbose;
    let pipelines = load_pipelines ~cmd:"precompute" models in
    match
      Opprox_corpus.Precompute.run ~budgets:(Array.of_list budgets) ~out pipelines
    with
    | progress ->
        Printf.printf "wrote %s: %d plan(s) from %d app(s) x %d (app,input) task(s) x %d \
                       budget(s)%s\n"
          out progress.Opprox_corpus.Precompute.cells progress.Opprox_corpus.Precompute.apps
          progress.Opprox_corpus.Precompute.tasks (List.length budgets)
          (if progress.Opprox_corpus.Precompute.failed > 0 then
             Printf.sprintf "  (%d infeasible cell(s) skipped)"
               progress.Opprox_corpus.Precompute.failed
           else "")
    | exception (Invalid_argument msg | Failure msg) ->
        Printf.eprintf "opprox precompute: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "precompute"
       ~doc:
         "Sweep (application x input grid x budget grid) across the domain pool and write \
          the plans as a binary, mmap-friendly corpus that $(b,opprox serve --corpus) \
          answers from without solving.")
    Term.(const run $ jobs_arg $ obs_arg $ models_arg $ budgets_arg $ out_arg $ verbose_arg)

(* --------------------------------------------------------------- loadgen *)

module Loadgen = Opprox_serve.Loadgen

let loadgen_cmd =
  let loopback_models_arg =
    Arg.(
      value
      & opt_all file []
      & info [ "models" ] ~docv:"FILE"
          ~doc:"Without $(b,--socket): drive an in-process loopback server built from these \
                trained pipelines.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "corpus" ] ~docv:"FILE"
          ~doc:"With $(b,--models): plan corpus for the loopback server (a socket daemon \
                loads its own via $(b,opprox serve --corpus)).")
  in
  let apps_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "app" ] ~docv:"NAME"
          ~doc:"Application(s) to request plans for.  Default: every app the loopback \
                server holds (required with $(b,--socket)).")
  in
  let requests_arg =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.requests
      & info [ "n"; "requests" ] ~docv:"N" ~doc:"Number of requests in the schedule.")
  in
  let rate_arg =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.rate
      & info [ "rate" ] ~docv:"RPS" ~doc:"Mean arrival rate, requests per second.")
  in
  let conns_arg =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.conns
      & info [ "conns" ] ~docv:"K" ~doc:"Concurrent connections (one domain each).")
  in
  let tail_arg =
    Arg.(
      value
      & opt (enum [ ("pareto", `Pareto); ("exp", `Exp) ]) `Pareto
      & info [ "tail" ] ~docv:"DIST"
          ~doc:"Interarrival distribution: $(b,pareto) (heavy-tailed bursts) or $(b,exp) \
                (Poisson).")
  in
  let alpha_arg =
    Arg.(
      value
      & opt float 1.5
      & info [ "alpha" ] ~docv:"A"
          ~doc:"Pareto shape (must exceed 1; smaller is burstier).  Ignored under \
                $(b,--tail exp).")
  in
  let zipf_arg =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.zipf
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Hot-key skew exponent over the (app x budget) key set; 0 is uniform.")
  in
  let offgrid_arg =
    Arg.(
      value
      & opt float Loadgen.default_config.Loadgen.offgrid
      & info [ "offgrid" ] ~docv:"F"
          ~doc:"Fraction of requests whose budget is nudged off the grid — exercises the \
                corpus nearest-neighbour fallback.")
  in
  let seed_arg =
    Arg.(
      value
      & opt int Loadgen.default_config.Loadgen.seed
      & info [ "seed" ] ~docv:"N" ~doc:"Schedule seed (the whole arrival/key schedule is \
                                        deterministic given the seed).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline.")
  in
  let run () () socket loopback_models corpus_path apps budgets requests rate conns tail alpha
      zipf offgrid seed deadline_ms verbose =
    setup_logs verbose;
    let connect, default_apps =
      match (socket, loopback_models) with
      | Some path, _ ->
          ((fun () -> Client.connect ~socket:path), [])
      | None, [] ->
          Printf.eprintf "opprox loadgen: need --socket PATH or --models FILE\n";
          exit 2
      | None, models ->
          let pipelines = load_pipelines ~cmd:"loadgen" models in
          let config = { Server.default_config with Server.corpus_path } in
          let server =
            try Server.create ~config pipelines
            with Failure msg | Invalid_argument msg ->
              Printf.eprintf "opprox loadgen: %s\n" msg;
              exit 2
          in
          ((fun () -> Client.loopback server), Server.apps server)
    in
    let apps = if apps <> [] then apps else default_apps in
    if apps = [] then begin
      Printf.eprintf "opprox loadgen: --socket needs at least one --app NAME\n";
      exit 2
    end;
    let keys =
      Array.of_list
        (List.concat_map
           (fun app ->
             List.map (fun budget -> { Loadgen.app; input = None; budget }) budgets)
           apps)
    in
    let cfg =
      {
        Loadgen.requests;
        rate;
        conns;
        tail = (match tail with `Exp -> Loadgen.Exponential | `Pareto -> Loadgen.Pareto alpha);
        zipf;
        offgrid;
        seed;
        deadline_ms;
      }
    in
    match Loadgen.run ~connect ~keys cfg with
    | report -> Format.printf "%a@." Loadgen.pp report
    | exception Invalid_argument msg ->
        Printf.eprintf "opprox loadgen: %s\n" msg;
        exit 2
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Open-loop load generator: a seeded schedule of heavy-tailed, Zipf-skewed plan \
          requests fired at a daemon (or an in-process loopback server), reporting \
          p50/p99/p999 latency from intended arrival, shed rate, and the \
          corpus/nn/cache/solved breakdown.")
    Term.(
      const run $ jobs_arg $ obs_arg $ socket_arg $ loopback_models_arg $ corpus_arg
      $ apps_arg $ budgets_arg $ requests_arg $ rate_arg $ conns_arg $ tail_arg $ alpha_arg
      $ zipf_arg $ offgrid_arg $ seed_arg $ deadline_arg $ verbose_arg)

(* --------------------------------------------------------------- request *)

let request_cmd =
  let app_opt_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"APP" ~doc:"Application to request a plan for.")
  in
  let input_arg =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "input" ] ~docv:"CSV"
          ~doc:"Input parameter vector, comma-separated (default: the app's default input).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Reply-by deadline for this request.")
  in
  let no_cache_arg =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Bypass the server's plan-cache lookup (the solve still populates it).")
  in
  let hash_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "models-hash" ] ~docv:"MD5"
          ~doc:"Assert the server's models match this hash ($(b,SRV003) error on mismatch).")
  in
  let batch_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "batch" ] ~docv:"FILE"
          ~doc:"Send every request in $(docv) (an s-expression list of request records) \
                over one connection instead of building one from the flags.")
  in
  let sexp_arg =
    Arg.(
      value & flag
      & info [ "sexp" ] ~doc:"Print each reply as its wire s-expression instead of a table.")
  in
  let malformed_arg =
    Arg.(
      value & flag
      & info [ "malformed" ]
          ~doc:"Send a deliberately undecodable frame and print the server's reply — \
                exercises the $(b,SRV004) path (needs $(b,--socket)).")
  in
  let loopback_models_arg =
    Arg.(
      value
      & opt_all file []
      & info [ "models" ] ~docv:"FILE"
          ~doc:"Without $(b,--socket): answer in-process from these trained pipelines \
                (the loopback transport the tests use).")
  in
  let print_response ~sexp_out (resp : Protocol.response) =
    if sexp_out then print_endline (Opprox_util.Sexp.to_string (Protocol.response_to_sexp resp));
    match resp with
    | Protocol.Plan { plan; cache; models_hash; elapsed_ms } ->
        Printf.printf "source: %s  (%.2f ms, models %s)\n"
          (Protocol.cache_source_string cache)
          elapsed_ms models_hash;
        if not sexp_out then print_plan_table ~budget:plan.Opprox.Optimizer.budget plan;
        true
    | Protocol.Error diags ->
        Format.eprintf "request rejected:@.%a@." Opprox_analysis.Diagnostic.pp_list diags;
        false
    | Protocol.Timeout { elapsed_ms; deadline_ms } ->
        Printf.eprintf "request timed out: %.2f ms elapsed, %.2f ms deadline\n" elapsed_ms
          deadline_ms;
        false
    | Protocol.Overloaded { inflight; limit } ->
        Printf.eprintf "server overloaded: %d in flight, limit %d\n" inflight limit;
        false
    | Protocol.PlanDelta _ ->
        (* Plan requests never get a delta; only telemetry frames do. *)
        Printf.eprintf "unexpected plan-delta reply to a plan request\n";
        false
  in
  let run () () socket app input budget deadline_ms no_cache models_hash batch sexp_out
      malformed loopback_models verbose =
    setup_logs verbose;
    let client =
      match (socket, loopback_models) with
      | Some path, _ -> (
          try Client.connect ~socket:path
          with Unix.Unix_error (err, _, _) ->
            Printf.eprintf "opprox request: cannot connect to %s: %s\n" path
              (Unix.error_message err);
            exit 2)
      | None, [] ->
          Printf.eprintf "opprox request: need --socket PATH or --models FILE\n";
          exit 2
      | None, models ->
          let pipelines =
            List.map (fun p -> Opprox.load ~resolve:Opprox_apps.Registry.find p) models
          in
          Client.loopback (Server.create pipelines)
    in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let requests =
          if malformed then []
          else
            match batch with
            | Some path -> (
                match
                  List.map Protocol.request_of_sexp
                    (Opprox_util.Sexp.to_list (Opprox_util.Sexp.load path))
                with
                | reqs -> reqs
                | exception Failure msg ->
                    Printf.eprintf "opprox request: cannot load %s: %s\n" path msg;
                    exit 2)
            | None -> (
                match app with
                | None ->
                    Printf.eprintf "opprox request: need APP or --batch FILE\n";
                    exit 2
                | Some app ->
                    [
                      Protocol.request ?input:(Option.map Array.of_list input) ?deadline_ms
                        ?models_hash ~no_cache ~app ~budget ();
                    ])
        in
        let ok =
          if malformed then (
            match Client.send_raw client "((v 1) (app" with
            | resp -> print_response ~sexp_out resp
            | exception Failure msg ->
                Printf.eprintf "opprox request: %s\n" msg;
                false)
          else
            (* One pipelined batch over the one connection: every frame is
               written, then every reply read, so a batch costs one
               round-trip — and each reply reports its own cache source. *)
            match Client.batch client requests with
            | resps -> List.fold_left (fun acc r -> print_response ~sexp_out r && acc) true resps
            | exception Failure msg ->
                Printf.eprintf "opprox request: %s\n" msg;
                false
        in
        if not ok then exit 1)
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Ask a running $(b,opprox serve) daemon (or an in-process loopback server) for a \
          plan.  Exit status 0 only when every reply is a plan.")
    Term.(
      const run $ jobs_arg $ obs_arg $ socket_arg $ app_opt_arg $ input_arg
      $ budget_arg $ deadline_arg $ no_cache_arg $ hash_arg $ batch_arg $ sexp_arg
      $ malformed_arg $ loopback_models_arg $ verbose_arg)

let () =
  let doc = "phase-aware optimization of approximate programs (OPPROX, CGO 2017)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "opprox" ~doc)
          [
            list_cmd;
            probe_cmd;
            train_cmd;
            optimize_cmd;
            run_cmd;
            search_cmd;
            submit_cmd;
            oracle_cmd;
            check_cmd;
            stats_cmd;
            precompute_cmd;
            serve_cmd;
            request_cmd;
            loadgen_cmd;
          ]))
