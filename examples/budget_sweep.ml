(* Budget sweep: OPPROX against the phase-agnostic oracle across a range
   of QoS degradation budgets on one application:

       dune exec examples/budget_sweep.exe -- [app] [budgets...]
       dune exec examples/budget_sweep.exe -- comd 2 5 10 15 20

   Defaults to CoMD with budgets 2/5/10/15/20 %. *)

module Driver = Opprox_sim.Driver
module Table = Opprox_util.Table

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let name, budgets =
    match args with
    | [] -> ("comd", [ 2.0; 5.0; 10.0; 15.0; 20.0 ])
    | name :: rest ->
        (name, if rest = [] then [ 2.0; 5.0; 10.0; 15.0; 20.0 ] else List.map float_of_string rest)
  in
  let app =
    try Opprox_apps.Registry.find name
    with Not_found ->
      Printf.eprintf "unknown application %s (known: %s)\n" name
        (String.concat ", " (Opprox_apps.Registry.names ()));
      exit 2
  in
  Printf.printf "Training OPPROX for %s...\n%!" app.Opprox_sim.App.name;
  let trained = Opprox.train app in
  let t =
    Table.create
      [ "budget %"; "OPPROX speedup"; "OPPROX qos %"; "oracle speedup"; "oracle qos %"; "winner" ]
  in
  List.iter
    (fun budget ->
      let plan = Opprox.optimize trained ~budget in
      let ours = Opprox.apply trained plan in
      let oracle = (Opprox.run_oracle app ~budget).Opprox.Oracle.evaluation in
      Table.add_row t
        [
          Printf.sprintf "%.1f" budget;
          Printf.sprintf "%.3f" ours.Driver.speedup;
          Printf.sprintf "%.2f" ours.Driver.qos_degradation;
          Printf.sprintf "%.3f" oracle.Driver.speedup;
          Printf.sprintf "%.2f" oracle.Driver.qos_degradation;
          (if ours.Driver.speedup >= oracle.Driver.speedup then "OPPROX" else "oracle");
        ])
    budgets;
  Table.print ~title:(Printf.sprintf "%s: phase-aware vs phase-agnostic" app.Opprox_sim.App.name) t
