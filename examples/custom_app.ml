(* Bringing your own application to OPPROX.

       dune exec examples/custom_app.exe

   This example wraps a small iterative computation — Jacobi relaxation of
   a 1-D heat equation — as an [Opprox_sim.App.t]:

   + declare the approximable blocks and their techniques,
   + write the main loop against [Opprox_sim.Env] (ask for the current
     level, charge work units, report outer-loop iterations),
   + hand the app to [Opprox.train] / [Opprox.optimize] unchanged.

   The stencil update is perforated (skipped cells keep stale values) and
   the convergence check is evaluated on a sampled subset, so aggressive
   settings can terminate early or late — the iteration-count coupling the
   paper highlights. *)

module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Driver = Opprox_sim.Driver

let cells = 64
let tolerance = 2e-5
let max_iters = 4000

let abs =
  [|
    Ab.make ~name:"stencil_update" ~technique:Ab.Perforation ~max_level:4;
    Ab.make ~name:"convergence_check" ~technique:Ab.Perforation ~max_level:4;
  |]

(* input = [| left boundary temperature; right boundary temperature |] *)
let run env input =
  let left = input.(0) and right = input.(1) in
  let u = Array.make cells 0.0 in
  u.(0) <- left;
  u.(cells - 1) <- right;
  let next = Array.copy u in
  let continue_ = ref true and below_tol = ref 0 in
  while !continue_ do
    let iter = Env.begin_outer_iter env in
    (* AB0: Jacobi stencil, perforated over interior cells. *)
    Env.enter_ab env ~ab:0;
    let l0 = Env.current_level env ~ab:0 in
    Array.blit u 0 next 0 cells;
    Approx.perforate ~offset:iter ~level:l0 (cells - 2) (fun k ->
        let i = k + 1 in
        next.(i) <- 0.5 *. (u.(i - 1) +. u.(i + 1));
        Env.charge env ~ab:0 2);
    (* AB1: residual estimated over a sample of the cells (mean residual,
       confirmed on two consecutive iterations, so the sampled estimate
       does not trigger termination on a fluke). *)
    Env.enter_ab env ~ab:1;
    let l1 = Env.current_level env ~ab:1 in
    let residual = ref 0.0 and counted = ref 0 in
    Approx.perforate ~offset:iter ~level:l1 (cells - 2) (fun k ->
        let i = k + 1 in
        residual := !residual +. Float.abs (next.(i) -. u.(i));
        incr counted;
        Env.charge env ~ab:1 1);
    let mean_residual = !residual /. float_of_int (Stdlib.max 1 !counted) in
    Array.blit next 0 u 0 cells;
    Env.charge_base env 8;
    if mean_residual < tolerance then incr below_tol else below_tol := 0;
    if !below_tol >= 2 || Env.outer_iters env >= max_iters then continue_ := false
  done;
  Array.copy u

let app =
  App.make ~name:"heat1d" ~description:"Jacobi relaxation of a 1-D heat equation"
    ~param_names:[| "left_temp"; "right_temp" |]
    ~abs
    ~default_input:[| 1.0; 0.25 |]
    ~training_inputs:[| [| 1.0; 0.0 |]; [| 1.0; 0.25 |]; [| 0.5; 0.5 |]; [| 2.0; 0.0 |] |]
    ~run ()

let () =
  Printf.printf "Custom application: %s\n%!" app.App.description;
  let exact = Driver.run_exact app app.App.default_input in
  Printf.printf "Exact run converges in %d iterations (%d work units)\n%!" exact.Driver.iters
    exact.Driver.work;

  let trained =
    Opprox.train
      ~config:{ Opprox.default_train_config with n_phases = Some 2 }
      app
  in
  Printf.printf "Trained with %d profiling runs over %d phases\n%!"
    (Opprox.Training.n_runs trained.Opprox.training)
    trained.Opprox.training.Opprox.Training.n_phases;

  List.iter
    (fun budget ->
      let plan = Opprox.optimize trained ~budget in
      let outcome = Opprox.apply trained plan in
      Printf.printf "budget %5.1f%%: speedup %.3f at %.3f%% degradation, schedule %s\n%!" budget
        outcome.Driver.speedup outcome.Driver.qos_degradation
        (String.concat " | "
           (List.map
              (fun (c : Opprox.Optimizer.phase_choice) ->
                Printf.sprintf "ph%d:[%s]" (c.phase + 1)
                  (String.concat ";" (Array.to_list (Array.map string_of_int c.levels))))
              (List.sort
                 (fun (a : Opprox.Optimizer.phase_choice) b -> compare a.phase b.phase)
                 plan.Opprox.Optimizer.choices))))
    [ 1.0; 5.0; 15.0 ]
