(* Phase-sensitivity study on the LULESH hydrodynamics benchmark
   (reproducing the observations behind paper Figs. 2-5 interactively):

       dune exec examples/lulesh_phase_study.exe

   The study runs the simulated application directly through the public
   driver API — no OPPROX training involved — and prints how the same
   approximation setting behaves depending on the phase it is applied in. *)

module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Table = Opprox_util.Table

let () =
  let app = Opprox_apps.Registry.find "lulesh" in
  let input = app.App.default_input in
  let exact = Driver.run_exact app input in
  Printf.printf "LULESH exact run: %d outer-loop iterations, %d work units\n\n" exact.Driver.iters
    exact.Driver.work;

  (* Level sweep: uniform approximation of every AB. *)
  let t = Table.create [ "level"; "speedup"; "qos %"; "iters" ] in
  for level = 0 to 5 do
    let levels = Array.map (fun m -> Stdlib.min level m) (App.max_levels app) in
    let ev = Driver.evaluate app (Schedule.uniform ~n_phases:1 levels) input in
    Table.add_row t
      [
        string_of_int level;
        Printf.sprintf "%.3f" ev.Driver.speedup;
        Printf.sprintf "%.2f" ev.Driver.qos_degradation;
        string_of_int ev.Driver.outer_iters;
      ]
  done;
  Table.print ~title:"Uniform approximation (all ABs at the same level)" t;

  (* The same mid-level setting applied to one phase at a time. *)
  let mid = Array.map (fun m -> (m + 1) / 2) (App.max_levels app) in
  let t = Table.create [ "active phase"; "speedup"; "qos %" ] in
  for phase = 0 to 3 do
    let sched = Schedule.single_phase_active ~n_phases:4 ~phase mid in
    let ev = Driver.evaluate app sched input in
    Table.add_row t
      [
        Printf.sprintf "phase %d of 4" (phase + 1);
        Printf.sprintf "%.3f" ev.Driver.speedup;
        Printf.sprintf "%.3f" ev.Driver.qos_degradation;
      ]
  done;
  Table.print ~title:"Mid-level approximation active in a single phase" t;

  (* Per-AB phase asymmetry: the ratio the paper quotes as ~8x. *)
  let t = Table.create [ "approximable block"; "phase-1 qos %"; "phase-4 qos %"; "ratio" ] in
  Array.iteri
    (fun ab (desc : Opprox_sim.Ab.t) ->
      let q phase =
        let levels = Array.make (App.n_abs app) 0 in
        levels.(ab) <- Stdlib.min 3 desc.max_level;
        let sched = Schedule.single_phase_active ~n_phases:4 ~phase levels in
        (Driver.evaluate app sched input).Driver.qos_degradation
      in
      let q1 = q 0 and q4 = q 3 in
      Table.add_row t
        [
          desc.name;
          Printf.sprintf "%.3f" q1;
          Printf.sprintf "%.3f" q4;
          (if q4 > 1e-9 then Printf.sprintf "%.1fx" (q1 /. q4) else "inf");
        ])
    app.App.abs;
  Table.print ~title:"Early-vs-late phase error asymmetry per AB (level 3)" t
