(* The paper's deployment workflow, end to end (Sec. 4.2):

       dune exec examples/offline_runtime.exe

   1. Offline: train once and persist the models to disk (the paper's
      pickled-model store).
   2. Job submission: write a small configuration file naming the
      application, the error budget, and the model store.
   3. Runtime: load the config, load the models, optimize, and launch —
      the phase-specific settings travel as environment variables. *)

let () =
  let dir = Filename.temp_file "opprox_workflow" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let model_path = Filename.concat dir "comd-models.scm" in
  let config_path = Filename.concat dir "job.conf" in

  (* 1. Offline training, once, persisted. *)
  let app = Opprox_apps.Registry.find "comd" in
  Printf.printf "[offline] training %s...\n%!" app.Opprox_sim.App.name;
  let trained = Opprox.train app in
  Opprox.save model_path trained;
  Printf.printf "[offline] models stored at %s (%d bytes)\n%!" model_path
    (let ic = open_in model_path in
     let n = in_channel_length ic in
     close_in ic;
     n);

  (* 2. The user writes a job configuration. *)
  let oc = open_out config_path in
  output_string oc "# nightly production run\n";
  output_string oc "app = comd\n";
  output_string oc "budget = 10        # percent QoS degradation\n";
  Printf.fprintf oc "models = %s\n" model_path;
  close_out oc;
  Printf.printf "[submit] wrote %s\n%!" config_path;

  (* 3. Runtime: config -> models -> optimizer -> environment -> launch. *)
  let job = Opprox.Runtime.load_config config_path in
  let submission = Opprox.submit ~resolve:Opprox_apps.Registry.find job in
  Printf.printf "[runtime] job environment:\n";
  List.iter (fun (k, v) -> Printf.printf "    %s=%s\n" k v) submission.Opprox.Runtime.env;
  let outcome = submission.Opprox.Runtime.outcome in
  Printf.printf "[runtime] executed: speedup %.3f at %.2f%% QoS degradation (budget %.0f%%)\n"
    outcome.Opprox_sim.Driver.speedup outcome.Opprox_sim.Driver.qos_degradation
    job.Opprox.Runtime.budget;

  Sys.remove model_path;
  Sys.remove config_path;
  Sys.rmdir dir
