(* Quickstart: train OPPROX on one application and ask it for phase-aware
   approximation settings under an error budget.

       dune exec examples/quickstart.exe

   The three stages mirror the paper: offline training (phase search,
   profiling, model fitting), pre-run optimization (Algorithm 2 under the
   budget), and execution of the chosen phase-specific schedule. *)

module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule

let () =
  let app = Opprox_apps.Registry.find "comd" in
  Printf.printf "Application: %s — %s\n%!" app.Opprox_sim.App.name
    app.Opprox_sim.App.description;

  (* 1. Offline stage: identify phases, profile, fit models. *)
  Printf.printf "Training (profiling runs + model fitting)...\n%!";
  let trained = Opprox.train app in
  let n_phases = trained.Opprox.training.Opprox.Training.n_phases in
  Printf.printf "  %d phases selected by Algorithm 1; %d profiling runs; QoS model R2 %.2f\n%!"
    n_phases
    (Opprox.Training.n_runs trained.Opprox.training)
    (Opprox.Models.qos_r2 trained.Opprox.models);

  (* 2. Pre-run stage: pick phase-specific levels for a 10 % error budget. *)
  let budget = 10.0 in
  let plan = Opprox.optimize trained ~budget in
  Printf.printf "Plan for a %.0f%% QoS degradation budget:\n" budget;
  List.iter
    (fun (c : Opprox.Optimizer.phase_choice) ->
      Printf.printf "  phase %d: levels [%s] (predicted qos <= %.2f%%)\n" (c.phase + 1)
        (String.concat ";" (Array.to_list (Array.map string_of_int c.levels)))
        c.predicted.Opprox.Models.qos_hi)
    (List.sort (fun (a : Opprox.Optimizer.phase_choice) b -> compare a.phase b.phase)
       plan.Opprox.Optimizer.choices);

  (* 3. Run the real application under the plan and measure the outcome. *)
  let outcome = Opprox.apply trained plan in
  Printf.printf "Measured: speedup %.3f at %.2f%% QoS degradation (budget %.0f%%)\n"
    outcome.Driver.speedup outcome.Driver.qos_degradation budget;

  (* Compare with the phase-agnostic oracle of prior work. *)
  let oracle = Opprox.run_oracle app ~budget in
  Printf.printf "Phase-agnostic oracle: speedup %.3f at %.2f%% degradation\n"
    oracle.Opprox.Oracle.evaluation.Driver.speedup
    oracle.Opprox.Oracle.evaluation.Driver.qos_degradation
