module D = Diagnostic

type t = { mutable diags : D.t list; disabled : string list }

let create ?(disabled = []) () =
  List.iter
    (fun sel ->
      if not (List.exists (fun (code, _) -> String.starts_with ~prefix:sel code) D.codes) then
        invalid_arg (Printf.sprintf "Checker.create: unknown rule code or prefix %S" sel))
    disabled;
  { diags = []; disabled }

let enabled t (d : D.t) =
  not (List.exists (fun sel -> String.starts_with ~prefix:sel d.D.code) t.disabled)

let add t ds = t.diags <- t.diags @ List.filter (enabled t) ds
let diagnostics t = t.diags
let has_failures ~strict t = List.exists (D.is_failure ~strict) t.diags
let exit_code ~strict t = D.exit_code ~strict t.diags

let report ?(ppf = Format.err_formatter) ~strict t =
  D.pp_list ppf t.diags;
  let count sev = List.length (List.filter (fun (d : D.t) -> d.D.severity = sev) t.diags) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d note(s)%s@."
    (count D.Error) (count D.Warning) (count D.Info)
    (if has_failures ~strict t then "" else " — ok")
