(** Diagnostic aggregation with per-rule enable/disable.

    A checker accumulates the findings of any number of rule runs,
    filters them against a disabled-code set (exact codes or prefixes:
    disabling ["MODEL002"] mutes one rule, ["SCHED"] a whole family),
    and renders one report with a summary line and the documented exit
    code. *)

type t

val create : ?disabled:string list -> unit -> t
(** [create ~disabled ()] — every element must be a known rule code or a
    prefix of one ({!Diagnostic.codes}); raises [Invalid_argument]
    otherwise, so a typo in [--disable] fails loudly instead of silently
    keeping the rule on. *)

val add : t -> Diagnostic.t list -> unit
(** Append the findings of one rule run (disabled codes are dropped). *)

val diagnostics : t -> Diagnostic.t list
(** Everything retained, in insertion order. *)

val has_failures : strict:bool -> t -> bool

val exit_code : strict:bool -> t -> int
(** {!Diagnostic.exit_code} over the retained findings. *)

val report : ?ppf:Format.formatter -> strict:bool -> t -> unit
(** Print every retained diagnostic (one per line) followed by a summary
    ([N errors, N warnings, N notes]).  Defaults to [err_formatter]. *)
