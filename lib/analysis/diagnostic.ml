module Sexp = Opprox_util.Sexp

type severity = Error | Warning | Info

type location = {
  app : string option;
  cls : int option;
  phase : int option;
  ab : int option;
  detail : string option;
}

type t = { code : string; severity : severity; location : location; message : string }

exception Lint_error of t list

let v ?app ?cls ?phase ?ab ?detail ~code severity fmt =
  Printf.ksprintf
    (fun message -> { code; severity; location = { app; cls; phase; ab; detail }; message })
    fmt

let severity_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let codes =
  [
    ("APP001", "duplicate AB names within one application");
    ("APP002", "AB max_level below 1");
    ("APP003", "joint configuration space empty or overflowed");
    ("APP004", "joint configuration space too large to enumerate");
    ("APP005", "non-finite input-parameter value");
    ("APP006", "input vector arity differs from param_names");
    ("APP007", "no training inputs declared");
    ("APP008", "duplicate application names in a registry");
    ("SCHED001", "ragged schedule rows");
    ("SCHED002", "negative approximation level");
    ("SCHED003", "approximation level exceeds the AB's max_level");
    ("SCHED004", "schedule AB count differs from the application's");
    ("SCHED005", "schedule phase count differs from the expected one");
    ("SCHED006", "dead knob: AB never approximated in any phase");
    ("MODEL001", "non-finite regression coefficient");
    ("MODEL002", "near-rank-deficient least-squares fit");
    ("MODEL003", "degenerate or inverted confidence interval");
    ("MODEL004", "control-flow class trained on few samples");
    ("MODEL005", "prediction sanity sweep violation");
    ("MODEL006", "model set structurally inconsistent");
    ("MODEL007", "models were trained for a different application");
    ("PLAN001", "negative or non-finite QoS budget");
    ("PLAN002", "ROI vector arity differs from the phase count");
    ("PLAN003", "non-finite or negative ROI / input values");
    ("PLAN004", "sub-budget split infeasible for the total budget");
    ("PLAN005", "chosen levels are not admissible for the ABs");
    ("PLAN006", "predicted QoS exceeds the phase sub-budget");
    ("PLAN007", "plan schedule shape differs from the models'");
    ("PLAN008", "plan choices are not one-per-phase in phase order");
    ("PLAN009", "sub-budget split far exceeds the plan's predicted consumption");
    ("PLAN010", "per-phase search fell back from exhaustive enumeration");
    ("SRV001", "request budget non-finite or outside (0, 100]");
    ("SRV002", "request names an application the server holds no models for");
    ("SRV003", "request models-hash differs from the loaded models");
    ("SRV004", "malformed, oversized, or truncated request frame");
    ("SRV005", "unsupported serving-protocol version");
    ("SRV006", "request input vector invalid (arity or non-finite values)");
    ("SRV007", "request deadline is not positive");
    ("SRV008", "internal server error while solving a plan");
    ("CORP001", "corpus was built against a stale models hash");
    ("CORP002", "corpus file truncated, malformed, or index out of order");
    ("CORP003", "request falls outside the corpus app/budget grid");
    ("CORP004", "corpus plan record fails to decode or disagrees with its fingerprint");
    ("CONC001", "potential deadlock: lock-order cycle between lock classes");
    ("CONC002", "shared state accessed without its guarding lockset held");
    ("CONC003", "reentrant acquisition of a mutex the domain already holds");
    ("CONC004", "mutex released or waited on by a domain that does not hold it");
    ("SRCH001", "stochastic search chains diverged on best cost");
    ("SRCH002", "stochastic search found no feasible schedule");
    ("SRCH003", "stochastic search best schedule violates the QoS budget");
  ]

let is_failure ~strict d =
  match d.severity with Error -> true | Warning -> strict | Info -> false

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let exit_code ~strict ds = if List.exists (is_failure ~strict) ds then 1 else 0

let raise_errors ~strict ds =
  match List.filter (is_failure ~strict) ds with
  | [] -> ()
  | failing -> raise (Lint_error failing)

let strict_env () = Sys.getenv_opt "OPPROX_STRICT" = Some "1"

let pp_location ppf loc =
  let part name to_string = Option.map (fun v -> name ^ "=" ^ to_string v) in
  let parts =
    List.filter_map Fun.id
      [
        part "app" Fun.id loc.app;
        part "class" string_of_int loc.cls;
        part "phase" string_of_int loc.phase;
        part "ab" string_of_int loc.ab;
        loc.detail;
      ]
  in
  if parts <> [] then Format.fprintf ppf " %s" (String.concat " " parts)

let pp ppf d =
  Format.fprintf ppf "%s[%s]%a: %s" (severity_string d.severity) d.code pp_location d.location
    d.message

let pp_list ppf ds =
  List.iter (fun d -> Format.fprintf ppf "%a@\n" pp d) ds

let to_sexp d =
  let opt name conv = function None -> [] | Some v -> [ (name, conv v) ] in
  Sexp.record
    ([
       ("code", Sexp.atom d.code);
       ("severity", Sexp.atom (severity_string d.severity));
     ]
    @ opt "app" Sexp.string d.location.app
    @ opt "class" Sexp.int d.location.cls
    @ opt "phase" Sexp.int d.location.phase
    @ opt "ab" Sexp.int d.location.ab
    @ opt "detail" Sexp.string d.location.detail
    @ [ ("message", Sexp.string d.message) ])

let of_sexp sexp =
  let opt name conv = Option.map conv (Sexp.field_opt sexp name) in
  let severity =
    match Sexp.to_string_atom (Sexp.field sexp "severity") with
    | "error" -> Error
    | "warning" -> Warning
    | "info" -> Info
    | s -> failwith (Printf.sprintf "Diagnostic.of_sexp: unknown severity %S" s)
  in
  {
    code = Sexp.to_string_atom (Sexp.field sexp "code");
    severity;
    location =
      {
        app = opt "app" Sexp.to_string_atom;
        cls = opt "class" Sexp.to_int;
        phase = opt "phase" Sexp.to_int;
        ab = opt "ab" Sexp.to_int;
        detail = opt "detail" Sexp.to_string_atom;
      };
    message = Sexp.to_string_atom (Sexp.field sexp "message");
  }

let () =
  Printexc.register_printer (function
    | Lint_error ds ->
        Some
          (Printf.sprintf "Opprox_analysis.Diagnostic.Lint_error [%s]"
             (String.concat "; "
                (List.map (fun d -> Printf.sprintf "%s: %s" d.code d.message) ds)))
    | _ -> None)
