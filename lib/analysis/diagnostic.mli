(** Structured static-analysis diagnostics.

    Every finding of the {!Opprox_analysis} rule modules is a [t]: a
    stable rule code (e.g. [SCHED003]), a severity, a structured location
    (application / control-flow class / phase / AB / free-form detail),
    and a human message.  Diagnostics render both for humans ({!pp}) and
    machines ({!to_sexp}), and map onto a process exit code through one
    documented policy ({!exit_code}).

    {2 Exit-code policy}

    + [0] — no diagnostics, or only [Info] (and, without [strict], only
      [Warning]) findings;
    + [1] — at least one [Error], or at least one [Warning] when [strict]
      is set.

    Strict mode is requested per call site ([~strict]) or globally through
    the [OPPROX_STRICT=1] environment variable ({!strict_env}). *)

type severity = Error | Warning | Info

type location = {
  app : string option;  (** application name *)
  cls : int option;  (** control-flow class id *)
  phase : int option;
  ab : int option;  (** AB index *)
  detail : string option;  (** free-form coordinate, e.g. ["overall_qos weights[3]"] *)
}

type t = { code : string; severity : severity; location : location; message : string }

exception Lint_error of t list
(** Raised by fail-fast call sites ({!val:raise_errors}); carries every
    diagnostic that crossed the severity threshold.  A printer is
    registered, so an uncaught [Lint_error] shows its rule codes. *)

val v :
  ?app:string ->
  ?cls:int ->
  ?phase:int ->
  ?ab:int ->
  ?detail:string ->
  code:string ->
  severity ->
  ('a, unit, string, t) format4 ->
  'a
(** [v ~code sev fmt ...] builds a diagnostic with a printf-style
    message. *)

val severity_string : severity -> string

val codes : (string * string) list
(** The rule-code registry: every stable code paired with a one-line
    description.  This is the table DESIGN.md documents; {!Checker}
    validates enable/disable selectors against it. *)

val is_failure : strict:bool -> t -> bool
(** Whether this diagnostic makes the run fail: [Error] always, [Warning]
    only under [strict], [Info] never. *)

val errors : t list -> t list
val warnings : t list -> t list

val exit_code : strict:bool -> t list -> int
(** The documented exit-code policy over a diagnostic set. *)

val raise_errors : strict:bool -> t list -> unit
(** Raise {!Lint_error} with the failing subset when {!exit_code} is
    non-zero; return unit otherwise. *)

val strict_env : unit -> bool
(** [true] iff the [OPPROX_STRICT] environment variable is ["1"]. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[SCHED003] app=lulesh phase=2 ab=1: message]. *)

val pp_list : Format.formatter -> t list -> unit

val to_sexp : t -> Opprox_util.Sexp.t
(** Machine rendering: a record of code, severity, location fields and
    message. *)

val of_sexp : Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp} — this is how the plan-serving client
    reconstructs a server-side error reply.  Raises [Failure] on a
    malformed record. *)
