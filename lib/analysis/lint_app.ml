module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Config_space = Opprox_sim.Config_space
module D = Diagnostic

let enumeration_bound = 100_000

let check_vector ~app ~what params v =
  let arity_diag =
    if Array.length v <> Array.length params then
      [
        D.v ~app ~detail:what ~code:"APP006" D.Error "%s has arity %d, param_names has %d" what
          (Array.length v) (Array.length params);
      ]
    else []
  in
  let finite_diags =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun i x ->
              if Float.is_finite x then None
              else
                Some
                  (D.v ~app ~detail:(Printf.sprintf "%s[%d]" what i) ~code:"APP005" D.Error
                     "non-finite value %h in %s" x what))
            v))
  in
  arity_diag @ finite_diags

let check_app (app : App.t) =
  let name = app.App.name in
  let abs = app.App.abs in
  let dup_abs =
    (* Quadratic, but AB sets are tiny (paper: 2-4 per application). *)
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun i (ab : Ab.t) ->
              let earlier = Array.sub abs 0 i in
              if Array.exists (fun (b : Ab.t) -> b.Ab.name = ab.Ab.name) earlier then
                Some
                  (D.v ~app:name ~ab:i ~code:"APP001" D.Error
                     "duplicate AB name %S (per-AB local models would be confused)" ab.Ab.name)
              else None)
            abs))
  in
  let bad_levels =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun i (ab : Ab.t) ->
              if ab.Ab.max_level < 1 then
                Some
                  (D.v ~app:name ~ab:i ~code:"APP002" D.Error "AB %S has max_level %d (< 1)"
                     ab.Ab.name ab.Ab.max_level)
              else None)
            abs))
  in
  let space =
    (* [count] multiplies (max_level + 1) per AB; a non-positive result
       means an empty space or an int overflow — either way nothing
       downstream can enumerate it. *)
    let count = Config_space.count abs in
    if count < 1 then
      [ D.v ~app:name ~code:"APP003" D.Error "joint configuration space count is %d" count ]
    else if count > enumeration_bound then
      [
        D.v ~app:name ~code:"APP004" D.Info
          "joint configuration space has %d points (> %d); exhaustive passes are skipped and \
           plans come from greedy or stochastic search"
          count enumeration_bound;
      ]
    else []
  in
  let inputs =
    check_vector ~app:name ~what:"default_input" app.App.param_names app.App.default_input
    @ List.concat
        (Array.to_list
           (Array.mapi
              (fun i v ->
                check_vector ~app:name
                  ~what:(Printf.sprintf "training_inputs[%d]" i)
                  app.App.param_names v)
              app.App.training_inputs))
  in
  let no_training =
    if Array.length app.App.training_inputs = 0 then
      [
        D.v ~app:name ~code:"APP007" D.Warning
          "no training inputs declared; models cannot be fit for this application";
      ]
    else []
  in
  dup_abs @ bad_levels @ space @ inputs @ no_training

let check_registry apps =
  let rec dups seen = function
    | [] -> []
    | (app : App.t) :: rest ->
        if List.mem app.App.name seen then
          D.v ~app:app.App.name ~code:"APP008" D.Error
            "duplicate application name %S in the registry (find would silently shadow)"
            app.App.name
          :: dups seen rest
        else dups (app.App.name :: seen) rest
  in
  dups [] apps
