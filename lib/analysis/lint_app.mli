(** Registry-contract rules (codes [APP***]).

    Audits application descriptors without running them: AB declarations
    (unique names, sane level ranges), the enumerability of the joint
    configuration space the training sampler and optimizer walk, and the
    declared input vectors. *)

val enumeration_bound : int
(** Joint spaces larger than this trigger [APP004] ([Info]):
    {!Opprox_sim.Config_space.all} materializes the full list, and both
    the optimizer's exhaustive search and the model sanity sweep
    enumerate it.  Larger spaces are legitimate since the stochastic
    search landed — the diagnostic records that exhaustive passes are
    skipped for them, not a defect. *)

val check_app : Opprox_sim.App.t -> Diagnostic.t list
(** Rules [APP001]–[APP007] over one application. *)

val check_registry : Opprox_sim.App.t list -> Diagnostic.t list
(** [APP008] (duplicate application names) over a registry; does {e not}
    include the per-app findings — run {!check_app} per app for those. *)
