(* The CONC rule family: renders the concurrency checker's findings
   ({!Opprox_util.Conc}) as diagnostics.

   The checker itself lives in [lib/util] — it must sit below every
   locked structure it instruments — and knows nothing of diagnostics;
   this module is the bridge.  Every CONC report is an [Error]: each one
   names a defect class (deadlock potential, unguarded shared state,
   reentrancy, foreign release) that is a correctness bug whenever it
   fires, never a style matter.  The [subject] becomes the location
   detail, so [--sexp] consumers can key on the lock class / guarded
   cell without parsing the message. *)

module Conc = Opprox_util.Conc

let of_report (r : Conc.report) =
  Diagnostic.v ~detail:r.subject ~code:r.code Diagnostic.Error "%s" r.message

let diagnostics () = List.map of_report (Conc.reports ())

let check_into checker = Checker.add checker (diagnostics ())
