(** CONC rule family — concurrency-checker findings as diagnostics.

    {!Opprox_util.Conc} accumulates raw reports while the runtime
    checker is enabled ([OPPROX_RACECHECK=1] / [Conc.enable]); this
    module converts them for [opprox check --concurrency] and any other
    {!Checker} consumer.

    Codes (all [Error] severity):
    - [CONC001] — potential deadlock: a nested acquisition closed a
      cycle in the lock-order graph (both acquisition sites reported).
    - [CONC002] — a {!Opprox_util.Guarded} cell was accessed without its
      guarding lockset held.
    - [CONC003] — reentrant acquisition of a held {!Opprox_util.Dmutex}.
    - [CONC004] — a mutex released or waited on by a non-owner domain. *)

val of_report : Opprox_util.Conc.report -> Diagnostic.t

val diagnostics : unit -> Diagnostic.t list
(** The checker's accumulated findings, converted. *)

val check_into : Checker.t -> unit
(** Add {!diagnostics} to an aggregating checker. *)
