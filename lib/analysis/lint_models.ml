module Config_space = Opprox_sim.Config_space
module D = Diagnostic

type regression = {
  role : string;
  pieces : (string * float array * float array) list;
}

type phase_view = {
  regressions : regression list;
  speedup_ci : float;
  qos_ci : float;
}

type prediction_view = {
  speedup : float;
  speedup_lo : float;
  qos : float;
  qos_hi : float;
  iters_ratio : float;
}

type view = {
  app_name : string;
  abs : Opprox_sim.Ab.t array;
  n_phases : int;
  min_class_samples : int;
  class_samples : (int * int) list;
  per_class : phase_view array array;
  predict : phase:int -> levels:int array -> prediction_view;
}

let rank_tolerance = 1e-10

let check_structure v =
  let app = v.app_name in
  let classes =
    if Array.length v.per_class = 0 then
      [ D.v ~app ~code:"MODEL006" D.Error "model set has no control-flow classes" ]
    else []
  in
  let phases =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun cls phases ->
              if Array.length phases <> v.n_phases then
                Some
                  (D.v ~app ~cls ~code:"MODEL006" D.Error
                     "class has models for %d phases, pipeline declares %d" (Array.length phases)
                     v.n_phases)
              else None)
            v.per_class))
  in
  classes @ phases

let check_coefficients v =
  let app = v.app_name in
  let out = ref [] in
  Array.iteri
    (fun cls phases ->
      Array.iteri
        (fun phase pv ->
          List.iter
            (fun r ->
              List.iter
                (fun (path, weights, _) ->
                  Array.iteri
                    (fun i w ->
                      if not (Float.is_finite w) then
                        out :=
                          D.v ~app ~cls ~phase
                            ~detail:(Printf.sprintf "%s %s weights[%d]" r.role path i)
                            ~code:"MODEL001" D.Error "non-finite regression coefficient %h" w
                          :: !out)
                    weights)
                r.pieces)
            pv.regressions)
        phases)
    v.per_class;
  List.rev !out

let check_rank v =
  let app = v.app_name in
  let out = ref [] in
  Array.iteri
    (fun cls phases ->
      Array.iteri
        (fun phase pv ->
          List.iter
            (fun r ->
              List.iter
                (fun (path, _, r_diag) ->
                  if Array.length r_diag > 0 then begin
                    let mags = Array.map Float.abs r_diag in
                    let largest = Array.fold_left Float.max 0.0 mags in
                    let smallest = Array.fold_left Float.min infinity mags in
                    if largest = 0.0 || smallest < rank_tolerance *. largest then
                      out :=
                        D.v ~app ~cls ~phase ~detail:(Printf.sprintf "%s %s" r.role path)
                          ~code:"MODEL002" D.Warning
                          "near-rank-deficient fit (|R| diagonal spans %.2e .. %.2e)" smallest
                          largest
                        :: !out
                  end)
                r.pieces)
            pv.regressions)
        phases)
    v.per_class;
  List.rev !out

let check_intervals v =
  let app = v.app_name in
  let out = ref [] in
  Array.iteri
    (fun cls phases ->
      Array.iteri
        (fun phase pv ->
          let check_ci what e =
            if not (Float.is_finite e) then
              out :=
                D.v ~app ~cls ~phase ~detail:what ~code:"MODEL003" D.Error
                  "confidence half-width is %h" e
                :: !out
            else if e < 0.0 then
              out :=
                D.v ~app ~cls ~phase ~detail:what ~code:"MODEL003" D.Error
                  "confidence half-width %g is negative: the interval is inverted" e
                :: !out
          in
          check_ci "speedup_ci" pv.speedup_ci;
          check_ci "qos_ci" pv.qos_ci)
        phases)
    v.per_class;
  List.rev !out

let check_class_samples v =
  let app = v.app_name in
  (* Class 0 is the fallback trained on every sample; only the dedicated
     per-class fits have a meaningful count threshold (Models.build uses
     min_class_samples * n_phases as its own fallback cutoff). *)
  List.filter_map
    (fun (cls, count) ->
      if cls > 0 && count < v.min_class_samples * v.n_phases then
        Some
          (D.v ~app ~cls ~code:"MODEL004" D.Info
             "class has %d training samples (< %d x %d phases); the fallback models serve it"
             count v.min_class_samples v.n_phases)
      else None)
    v.class_samples

(* Exhaustive sweep of the discrete (phase, levels) space.  Violations of
   one kind repeat across many points (a NaN coefficient poisons a whole
   region), so report the first offending point per (phase, rule) only. *)
let check_sweep v =
  let app = v.app_name in
  (* The guard must run before the space is materialized: a huge app's
     joint space (transformer: ~2.5e12 points) cannot even be listed. *)
  let truncated =
    if Config_space.count v.abs > Lint_app.enumeration_bound then
      [
        D.v ~app ~code:"APP004" D.Info
          "prediction sweep skipped: configuration space exceeds %d points"
          Lint_app.enumeration_bound;
      ]
    else []
  in
  if truncated <> [] then truncated
  else begin
    let space = Config_space.all v.abs in
    let out = ref [] in
    let levels_str levels =
      Printf.sprintf "levels [%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int levels)))
    in
    for phase = 0 to v.n_phases - 1 do
      let bad_finite = ref false and bad_qos = ref false and bad_speedup = ref false in
      List.iter
        (fun levels ->
          let p = v.predict ~phase ~levels in
          let finite =
            Float.is_finite p.speedup && Float.is_finite p.speedup_lo && Float.is_finite p.qos
            && Float.is_finite p.qos_hi && Float.is_finite p.iters_ratio
          in
          if (not finite) && not !bad_finite then begin
            bad_finite := true;
            out :=
              D.v ~app ~phase ~detail:(levels_str levels) ~code:"MODEL005" D.Error
                "non-finite prediction (speedup %h, qos %h, iters %h)" p.speedup p.qos
                p.iters_ratio
              :: !out
          end;
          if finite && (p.qos_hi < p.qos -. 1e-9 || p.qos < -1e-9) && not !bad_qos then begin
            bad_qos := true;
            out :=
              D.v ~app ~phase ~detail:(levels_str levels) ~code:"MODEL005" D.Error
                "QoS bound inverted: qos_hi %g < qos %g" p.qos_hi p.qos
              :: !out
          end;
          if
            finite
            && (p.speedup_lo > p.speedup +. 1e-9 || p.speedup <= 0.0)
            && not !bad_speedup
          then begin
            bad_speedup := true;
            out :=
              D.v ~app ~phase ~detail:(levels_str levels) ~code:"MODEL005" D.Error
                "speedup bound inverted: speedup_lo %g > speedup %g" p.speedup_lo p.speedup
              :: !out
          end)
        space
    done;
    List.rev !out
  end

let check v =
  let structure = check_structure v in
  let static =
    check_coefficients v @ check_rank v @ check_intervals v @ check_class_samples v
  in
  (* The sweep indexes per_class by phase through [predict]; only run it
     on a structurally consistent model set. *)
  if structure <> [] then structure @ static else static @ check_sweep v
