(** Trained-model rules (codes [MODEL***]).

    The analysis library sits {e below} [lib/core] (so the core producers
    — [Models.build], the sexp loader — can run these rules fail-fast
    without a dependency cycle), so the rules operate on a neutral {!view}
    of a trained model set rather than on [Models.t] itself.
    [Opprox.Models.view] constructs one.

    Checks: every regression coefficient finite ([MODEL001]); the
    least-squares R-factor diagonal retained from the QR fit inspected for
    near-rank-deficiency ([MODEL002]); confidence-interval half-widths
    finite and non-negative, i.e. intervals non-degenerate and
    non-inverted ([MODEL003]); per-class training-sample counts against
    [min_class_samples] ([MODEL004]); and an exhaustive sanity sweep over
    the full discrete [(phase, levels)] space asserting every prediction
    is finite with [qos_hi >= qos >= 0] and [0 < speedup_lo <= speedup]
    ([MODEL005]).  Structural inconsistencies ([MODEL006]) are reported
    first and suppress the sweep, which could not index such a model set
    safely. *)

type regression = {
  role : string;  (** e.g. ["iter_model"], ["local_qos[2]"], ["overall_speedup"] *)
  pieces : (string * float array * float array) list;
      (** per polynomial piece: (path within the model, weight vector,
          |R|-factor diagonal of its least-squares fit — [[||]] when the
          fit did not go through QR). *)
}

type phase_view = {
  regressions : regression list;
  speedup_ci : float;  (** confidence half-width; must be finite, >= 0 *)
  qos_ci : float;
}

type prediction_view = {
  speedup : float;
  speedup_lo : float;
  qos : float;
  qos_hi : float;
  iters_ratio : float;
}

type view = {
  app_name : string;
  abs : Opprox_sim.Ab.t array;
  n_phases : int;
  min_class_samples : int;
  class_samples : (int * int) list;
      (** (class id, training-sample count); [[]] when the training set is
          not available (bare model files). *)
  per_class : phase_view array array;  (** class-major, then phase *)
  predict : phase:int -> levels:int array -> prediction_view;
      (** prediction at the audited input (the sanity-sweep oracle) *)
}

val rank_tolerance : float
(** [MODEL002] fires when [min |r_ii| / max |r_ii| < rank_tolerance]. *)

val check : view -> Diagnostic.t list
