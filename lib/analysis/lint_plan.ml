module Ab = Opprox_sim.Ab
module Schedule = Opprox_sim.Schedule
module D = Diagnostic

type inputs = {
  app_name : string;
  abs : Ab.t array;
  n_phases : int;
  param_arity : int;
  roi : float array;
  budget : float;
  input : float array;
}

let check_inputs i =
  let app = i.app_name in
  let budget =
    if not (Float.is_finite i.budget) then
      [ D.v ~app ~code:"PLAN001" D.Error "budget is %h" i.budget ]
    else if i.budget < 0.0 then
      [ D.v ~app ~code:"PLAN001" D.Error "negative budget %g" i.budget ]
    else []
  in
  let roi_arity =
    if Array.length i.roi <> i.n_phases then
      [
        D.v ~app ~code:"PLAN002" D.Error "ROI vector has %d entries, models have %d phases"
          (Array.length i.roi) i.n_phases;
      ]
    else []
  in
  let roi_values =
    List.filter_map Fun.id
      (Array.to_list
         (Array.mapi
            (fun phase r ->
              if not (Float.is_finite r) then
                Some (D.v ~app ~phase ~code:"PLAN003" D.Error "ROI entry is %h" r)
              else if r < 0.0 then
                Some (D.v ~app ~phase ~code:"PLAN003" D.Error "negative ROI entry %g" r)
              else None)
            i.roi))
  in
  let input =
    let arity =
      if Array.length i.input <> i.param_arity then
        [
          D.v ~app ~code:"PLAN003" D.Error "input vector has arity %d, application declares %d"
            (Array.length i.input) i.param_arity;
        ]
      else []
    in
    let finite =
      List.filter_map Fun.id
        (Array.to_list
           (Array.mapi
              (fun j x ->
                if Float.is_finite x then None
                else
                  Some
                    (D.v ~app ~detail:(Printf.sprintf "input[%d]" j) ~code:"PLAN003" D.Error
                       "non-finite input value %h" x))
              i.input))
    in
    arity @ finite
  in
  budget @ roi_arity @ roi_values @ input

type choice = { phase : int; levels : int array; sub_budget : float; qos_hi : float }

type plan_view = {
  app_name : string;
  abs : Ab.t array;
  n_phases : int;
  budget : float;
  choices : choice list;
  schedule : Schedule.t;
}

let feasibility_eps budget = 1e-6 *. Float.max 1.0 (Float.abs budget)

let check_plan v =
  let app = v.app_name in
  let n_abs = Array.length v.abs in
  let per_choice c =
    let sub_budget =
      if (not (Float.is_finite c.sub_budget)) || c.sub_budget < 0.0 then
        [
          D.v ~app ~phase:c.phase ~code:"PLAN004" D.Error
            "phase assigned an unusable sub-budget %h" c.sub_budget;
        ]
      else []
    in
    let admissible =
      if Array.length c.levels <> n_abs then
        [
          D.v ~app ~phase:c.phase ~code:"PLAN005" D.Error
            "choice has %d levels, application declares %d ABs" (Array.length c.levels) n_abs;
        ]
      else
        List.filter_map Fun.id
          (Array.to_list
             (Array.mapi
                (fun a l ->
                  if l < 0 || l > v.abs.(a).Ab.max_level then
                    Some
                      (D.v ~app ~phase:c.phase ~ab:a ~code:"PLAN005" D.Error
                         "chosen level %d is not admissible for AB %S (range 0..%d)" l
                         v.abs.(a).Ab.name v.abs.(a).Ab.max_level)
                  else None)
                c.levels))
    in
    let feasible =
      if
        Float.is_finite c.sub_budget && Float.is_finite c.qos_hi
        && c.qos_hi > c.sub_budget +. feasibility_eps v.budget
      then
        [
          D.v ~app ~phase:c.phase ~code:"PLAN006" D.Warning
            "predicted conservative QoS %.3f exceeds the phase sub-budget %.3f" c.qos_hi
            c.sub_budget;
        ]
      else []
    in
    sub_budget @ admissible @ feasible
  in
  let order =
    (* Plans execute phase 0 first whatever order the optimizer visited
       phases in; consumers (env-var encoding, reporting) index choices
       by position, so a plan must carry exactly one choice per phase, in
       phase order.  This catches both optimizer regressions (PR 4 fixed
       choices arriving in descending-ROI order) and doctored external
       plans. *)
    let phases = List.map (fun c -> c.phase) v.choices in
    if phases <> List.init v.n_phases Fun.id then
      [
        D.v ~app ~code:"PLAN008" D.Error
          "plan choices are not one-per-phase in phase order (got [%s], want [0..%d])"
          (String.concat ";" (List.map string_of_int phases))
          (v.n_phases - 1);
      ]
    else []
  in
  let split =
    let total = List.fold_left (fun acc c -> acc +. c.sub_budget) 0.0 v.choices in
    if Float.is_finite total && total > v.budget +. feasibility_eps v.budget then
      [
        D.v ~app ~code:"PLAN004" D.Error
          "sub-budget split sums to %.3f, exceeding the total budget %.3f" total v.budget;
      ]
    else []
  in
  let over_alloc =
    (* Allocation drifting away from predicted consumption is the
       signature of stale budget accounting (the pre-fix optimizer sweep
       re-granted infeasible phases every pass): the split can stay under
       the hard PLAN004 cap while still promising phases far more than
       the plan predicts they can spend.  Warning severity — generous
       hand-written splits are legal, just suspicious past half the
       budget scale. *)
    let total_alloc = List.fold_left (fun acc c -> acc +. c.sub_budget) 0.0 v.choices in
    let total_need =
      List.fold_left (fun acc c -> acc +. Float.max 0.0 c.qos_hi) 0.0 v.choices
    in
    if
      Float.is_finite total_alloc && Float.is_finite total_need
      && total_alloc > total_need +. (0.5 *. Float.max 1.0 (Float.abs v.budget))
    then
      [
        D.v ~app ~code:"PLAN009" D.Warning
          "sub-budget split sums to %.3f but predicted consumption is only %.3f — stale or \
           inflated budget accounting"
          total_alloc total_need;
      ]
    else []
  in
  let shape =
    let sched_diags =
      if Schedule.n_phases v.schedule <> v.n_phases then
        [
          D.v ~app ~code:"PLAN007" D.Error "plan schedule has %d phases, models have %d"
            (Schedule.n_phases v.schedule) v.n_phases;
        ]
      else []
    in
    let ab_diags =
      if Schedule.n_abs v.schedule <> n_abs then
        [
          D.v ~app ~code:"PLAN007" D.Error "plan schedule has %d ABs, application declares %d"
            (Schedule.n_abs v.schedule) n_abs;
        ]
      else []
    in
    sched_diags @ ab_diags
  in
  let sched =
    if shape = [] then
      (* Dead knobs are legitimate in plans (tight budgets leave ABs
         exact); drop the Info-level SCHED006 noise here. *)
      List.filter
        (fun (d : D.t) -> d.D.code <> "SCHED006")
        (Lint_schedule.check ~app ~abs:v.abs ~n_phases:v.n_phases v.schedule)
    else []
  in
  List.concat_map per_choice v.choices @ order @ split @ over_alloc @ shape @ sched

let fallback ~app ~space ~limit ~chosen =
  D.v ~app ~code:"PLAN010" D.Warning
    "per-phase space has %d points (> enumeration limit %d); falling back to %s search" space
    limit chosen
