(** Optimizer input/output rules (codes [PLAN***]).

    [Optimizer.optimize] routes its pre-flight validation through
    {!check_inputs} (replacing the ad-hoc [invalid_arg] checks it used to
    carry) and audits the plan it constructed — and any plan it is asked
    to execute — through {!check_plan}, so a schedule whose levels fall
    outside an AB's range is rejected up front instead of failing (or
    silently misbehaving) mid-run. *)

type inputs = {
  app_name : string;
  abs : Opprox_sim.Ab.t array;
  n_phases : int;
  param_arity : int;
  roi : float array;
  budget : float;
  input : float array;
}

val check_inputs : inputs -> Diagnostic.t list
(** [PLAN001] (negative / non-finite budget), [PLAN002] (ROI arity),
    [PLAN003] (non-finite or negative ROI entries; non-finite or
    wrong-arity input vector). *)

type choice = { phase : int; levels : int array; sub_budget : float; qos_hi : float }

type plan_view = {
  app_name : string;
  abs : Opprox_sim.Ab.t array;
  n_phases : int;
  budget : float;
  choices : choice list;
  schedule : Opprox_sim.Schedule.t;
}

val check_plan : plan_view -> Diagnostic.t list
(** Budget feasibility and admissibility of a constructed plan:
    [PLAN004] (negative sub-budget, or the ROI split summing past the
    budget [e_b]), [PLAN005] (chosen levels outside an AB's range or of
    the wrong arity), [PLAN006] (a choice's conservative QoS exceeding
    its sub-budget — the optimizer's own feasibility contract;
    [Warning]), [PLAN007] (schedule shape differing from the models'),
    [PLAN008] (choices not one-per-phase in phase order — consumers
    index choices by position), [PLAN009] (the split summing far past
    the plan's own predicted consumption — stale or inflated budget
    accounting, the signature of the pre-fix optimizer sweep re-granting
    infeasible phases; [Warning]), plus the [SCHED***] findings of
    {!Lint_schedule.check} on the plan's schedule. *)

val fallback : app:string -> space:int -> limit:int -> chosen:string -> Diagnostic.t
(** [PLAN010] ([Warning]): the optimizer replaced exhaustive per-phase
    enumeration with [chosen] ("greedy" or "stochastic") because the
    joint AL space has [space] points, more than [limit].  Built here so
    the optimizer's silent-fallback fix and its regression test share one
    constructor; the optimizer logs it and bumps [optimizer.fallbacks]
    rather than failing — the fallback is correct, just no longer
    invisible. *)
