module D = Diagnostic

type view = {
  app : string;
  budget : float;
  input : float array option;
  models_hash : string option;
  deadline_ms : float option;
}

type target = {
  known_apps : string list;
  param_arity : string -> int option;
  expected_hash : string -> string option;
}

let check_budget v =
  if not (Float.is_finite v.budget) then
    [ D.v ~code:"SRV001" D.Error "budget %f is not finite" v.budget ]
  else if v.budget <= 0.0 || v.budget > 100.0 then
    [
      D.v ~code:"SRV001" D.Error "budget %g%% is outside (0, 100] (percent QoS degradation)"
        v.budget;
    ]
  else []

let check_app target v =
  if List.mem v.app target.known_apps then []
  else
    [
      D.v ~app:v.app ~code:"SRV002" D.Error "no models loaded for %s (serving: %s)" v.app
        (match target.known_apps with [] -> "nothing" | l -> String.concat ", " l);
    ]

let check_hash target v =
  match (v.models_hash, target.expected_hash v.app) with
  | Some asserted, Some expected when asserted <> expected ->
      [
        D.v ~app:v.app ~code:"SRV003" D.Error
          "request asserts models %s but the server loaded %s" asserted expected;
      ]
  | _ -> []

let check_input target v =
  match v.input with
  | None -> []
  | Some input -> (
      let bad_values =
        Array.to_list input
        |> List.mapi (fun i x -> (i, x))
        |> List.filter_map (fun (i, x) ->
               if Float.is_finite x then None
               else
                 Some
                   (D.v ~app:v.app ~code:"SRV006"
                      ~detail:(Printf.sprintf "input[%d]" i)
                      D.Error "input component %d is %f" i x))
      in
      match target.param_arity v.app with
      | Some arity when arity <> Array.length input ->
          D.v ~app:v.app ~code:"SRV006" D.Error "input has %d components, %s takes %d"
            (Array.length input) v.app arity
          :: bad_values
      | _ -> bad_values)

let check_deadline v =
  match v.deadline_ms with
  | Some d when (not (Float.is_finite d)) || d <= 0.0 ->
      [ D.v ~code:"SRV007" D.Error "deadline %gms can never be met" d ]
  | _ -> []

let check target v =
  check_budget v @ check_app target v @ check_hash target v @ check_input target v
  @ check_deadline v

let malformed msg = D.v ~code:"SRV004" D.Error "malformed frame: %s" msg

let bad_version ~got =
  D.v ~code:"SRV005" D.Error "protocol version %d is not supported (this server speaks 1)" got

let internal msg = D.v ~code:"SRV008" D.Error "plan solve failed: %s" msg
