(** Serving-boundary request rules (codes [SRV***]).

    The plan-serving daemon ({!module:Opprox_serve}) answers
    per-job plan queries against models loaded at startup — the paper's
    "optimize at job-submission time" step turned into a long-lived
    service.  Everything that crosses that boundary is untrusted: a bad
    budget, an unknown application, stale client-side model assumptions.
    These rules validate one request against one serving target, so both
    [opprox check --request] and the server reply with the same stable
    diagnostic codes instead of crashing or answering garbage.

    Rules:
    + [SRV001] — budget non-finite or outside (0, 100] (percent QoS
      degradation, same unit as the rest of the pipeline);
    + [SRV002] — the target holds no models for the requested app;
    + [SRV003] — the client-asserted models hash differs from the hash of
      the models actually loaded (the client planned against different
      coefficients);
    + [SRV006] — input vector arity differs from the app's parameters, or
      a component is non-finite;
    + [SRV007] — a non-positive deadline (can never be met).

    [SRV004] (malformed frame), [SRV005] (protocol version) and [SRV008]
    (internal solve failure) are constructed by the framing and serving
    layers through the helpers below — they describe transport and server
    conditions, not request fields. *)

type view = {
  app : string;
  budget : float;  (** percent QoS degradation, like the whole pipeline *)
  input : float array option;
  models_hash : string option;  (** client-asserted, when it cares *)
  deadline_ms : float option;
}
(** One request, as seen at the serving boundary. *)

type target = {
  known_apps : string list;  (** apps the server holds models for *)
  param_arity : string -> int option;  (** input arity per known app *)
  expected_hash : string -> string option;
      (** hash of the loaded models per known app; [None] mutes [SRV003]
          (e.g. [opprox check] without a models file) *)
}
(** What the request is validated against. *)

val check : target -> view -> Diagnostic.t list
(** Every [SRV001]/[SRV002]/[SRV003]/[SRV006]/[SRV007] finding for one
    request.  Never raises: the server boundary turns the findings into a
    structured error reply. *)

val malformed : string -> Diagnostic.t
(** [SRV004] — an undecodable, oversized, or truncated frame. *)

val bad_version : got:int -> Diagnostic.t
(** [SRV005] — a frame whose [(v N)] is not the supported version. *)

val internal : string -> Diagnostic.t
(** [SRV008] — the solve raised something that is not a lint finding;
    the exception text is carried in the message. *)
