module Ab = Opprox_sim.Ab
module Schedule = Opprox_sim.Schedule
module D = Diagnostic

let check_raw ?app levels =
  if Array.length levels = 0 then
    [ D.v ?app ~code:"SCHED001" D.Error "schedule has no phases" ]
  else begin
    let n_abs = Array.length levels.(0) in
    let per_row p row =
      let ragged =
        if Array.length row <> n_abs then
          [
            D.v ?app ~phase:p ~code:"SCHED001" D.Error
              "ragged row: phase %d has %d ABs, phase 0 has %d" p (Array.length row) n_abs;
          ]
        else []
      in
      let negative =
        List.filter_map Fun.id
          (Array.to_list
             (Array.mapi
                (fun a l ->
                  if l < 0 then
                    Some (D.v ?app ~phase:p ~ab:a ~code:"SCHED002" D.Error "negative level %d" l)
                  else None)
                row))
      in
      ragged @ negative
    in
    let empty =
      if n_abs = 0 then [ D.v ?app ~phase:0 ~code:"SCHED001" D.Error "schedule has no ABs" ]
      else []
    in
    empty @ List.concat (Array.to_list (Array.mapi per_row levels))
  end

let check ?app ?n_phases ~abs sched =
  let shape =
    if Schedule.n_abs sched <> Array.length abs then
      [
        D.v ?app ~code:"SCHED004" D.Error "schedule has %d ABs, application declares %d"
          (Schedule.n_abs sched) (Array.length abs);
      ]
    else []
  in
  let phases =
    match n_phases with
    | Some n when Schedule.n_phases sched <> n ->
        [
          D.v ?app ~code:"SCHED005" D.Error "schedule has %d phases, expected %d"
            (Schedule.n_phases sched) n;
        ]
    | _ -> []
  in
  if shape <> [] then shape @ phases
  else begin
    let range = ref [] in
    let used = Array.make (Array.length abs) false in
    for p = 0 to Schedule.n_phases sched - 1 do
      Array.iteri
        (fun a l ->
          if l > 0 then used.(a) <- true;
          if l > abs.(a).Ab.max_level then
            range :=
              D.v ?app ~phase:p ~ab:a ~code:"SCHED003" D.Error
                "level %d exceeds max_level %d of AB %S" l abs.(a).Ab.max_level abs.(a).Ab.name
              :: !range)
        (Schedule.levels_of_phase sched p)
    done;
    let dead =
      List.filter_map Fun.id
        (Array.to_list
           (Array.mapi
              (fun a u ->
                if u then None
                else
                  Some
                    (D.v ?app ~ab:a ~code:"SCHED006" D.Info
                       "dead knob: AB %S is never approximated in any phase" abs.(a).Ab.name))
              used))
    in
    phases @ List.rev !range @ dead
  end
