(** Schedule rules (codes [SCHED***]).

    Two entry points: {!check_raw} audits a raw level matrix {e before} it
    is turned into a {!Opprox_sim.Schedule.t} (so raggedness and negative
    levels surface as diagnostics with coordinates instead of as a raised
    [Invalid_argument]), and {!check} audits a constructed schedule
    against an application's AB declarations. *)

val check_raw : ?app:string -> int array array -> Diagnostic.t list
(** [SCHED001] (empty / ragged rows) and [SCHED002] (negative levels),
    each located by phase and AB index. *)

val check :
  ?app:string ->
  ?n_phases:int ->
  abs:Opprox_sim.Ab.t array ->
  Opprox_sim.Schedule.t ->
  Diagnostic.t list
(** Against the AB array: [SCHED003] (level above the AB's [max_level]),
    [SCHED004] (AB-count mismatch), [SCHED005] (phase count differs from
    [?n_phases] when given), and [SCHED006] (dead knob — an AB never
    approximated in any phase; [Info], legitimate in probe schedules and
    tight-budget plans). *)
