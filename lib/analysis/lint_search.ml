module D = Diagnostic

type view = {
  app_name : string;
  budget : float;
  chain_costs : float array;
  best_cost : float;
  best_qos_hi : float;
  feasible : bool;
}

let divergence_threshold = 0.10

(* Mirrors Lint_plan.feasibility_eps: budgets are percent-scale floats
   accumulated over phases, so comparisons carry a small relative slack. *)
let feasibility_eps budget = 1e-6 *. Float.max 1.0 (Float.abs budget)

let check v =
  let app = v.app_name in
  let divergence =
    let finite =
      List.filter Float.is_finite (Array.to_list v.chain_costs)
    in
    match finite with
    | [] | [ _ ] -> []
    | costs ->
        let best = List.fold_left Float.min infinity costs in
        let worst = List.fold_left Float.max neg_infinity costs in
        let spread = (worst -. best) /. Float.max 1e-9 (Float.abs best) in
        if spread > divergence_threshold then
          [
            D.v ~app ~code:"SRCH001" D.Warning
              "chains diverged: best costs spread %.1f%% across %d chain(s) (best %.4f, worst \
               %.4f) — consider more iterations or chains"
              (100.0 *. spread) (List.length costs) best worst;
          ]
        else []
  in
  let infeasible =
    if not v.feasible then
      [
        D.v ~app ~code:"SRCH002" D.Warning
          "no chain visited a feasible schedule under budget %.3f; falling back to the \
           all-exact schedule"
          v.budget;
      ]
    else []
  in
  let over_budget =
    if v.feasible && v.best_qos_hi > v.budget +. feasibility_eps v.budget then
      [
        D.v ~app ~code:"SRCH003" D.Error
          "best schedule marked feasible but conservative QoS %.3f exceeds budget %.3f"
          v.best_qos_hi v.budget;
      ]
    else []
  in
  divergence @ infeasible @ over_budget
