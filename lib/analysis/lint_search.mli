(** Stochastic-search outcome rules (codes [SRCH***]).

    The multi-chain MCMC driver ({!Opprox_search.Search}) audits its
    best-of-chains result through {!check} before it builds a plan, the
    same way the optimizer audits its output through {!Lint_plan}.  The
    rules judge the {e search outcome}, not the plan — the plan itself
    still goes through the full [PLAN***] audit afterwards. *)

type view = {
  app_name : string;
  budget : float;  (** total conservative-QoS budget the chains ran under *)
  chain_costs : float array;
      (** best feasible cost reached by each chain, in chain order;
          [nan] for a chain that never visited a feasible schedule *)
  best_cost : float;  (** cost of the schedule the driver is returning *)
  best_qos_hi : float;  (** conservative QoS of that schedule *)
  feasible : bool;  (** at least one chain visited a feasible schedule *)
}

val divergence_threshold : float
(** Relative spread of per-chain best costs above which the chains are
    considered diverged (default 0.10): a spread this wide means the
    iteration budget was too small for the chains to agree on a basin. *)

val check : view -> Diagnostic.t list
(** [SRCH001] ([Warning]): feasible chain best costs spread more than
    {!divergence_threshold} relative to the best — raise [--iters] or
    [--chains].  [SRCH002] ([Warning]): no chain ever visited a feasible
    schedule; the driver falls back to the all-exact schedule (always
    feasible for a non-negative budget).  [SRCH003] ([Error]): the
    returned best claims feasibility but its conservative QoS exceeds the
    budget — a cost-function or bookkeeping bug, never expected. *)
