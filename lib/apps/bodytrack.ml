module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Rng = Opprox_util.Rng

let ab_likelihood = 0
let ab_features = 1
let ab_resample = 2
let ab_anneal = 3

let abs =
  [|
    Ab.make ~name:"likelihood_evaluation" ~technique:Ab.Perforation ~max_level:5;
    Ab.make ~name:"image_feature_extraction" ~technique:Ab.Memoization ~max_level:5;
    Ab.make ~name:"particle_resampling" ~technique:Ab.Parameter_tuning ~max_level:5;
    Ab.make ~name:"annealing_schedule" ~technique:Ab.Parameter_tuning ~max_level:3;
  |]

let pose_dim = 5

(* Ground truth: smooth articulated motion — torso drift plus swinging
   joints.  The subject moves fast at the start of the sequence and
   settles (per-frame motion decays geometrically), so the early frames
   are the hardest to track.  Amplitudes are picked so all components
   matter in the QoS. *)
let truth ~frame =
  (* cumulative "motion time": step 0.55 * 0.92^frame *)
  let t = 0.66 /. 0.09 *. (1.0 -. (0.91 ** float_of_int frame)) in
  [|
    2.0 +. (1.5 *. sin (0.30 *. t));
    1.5 +. (1.0 *. cos (0.22 *. t));
    0.8 *. sin (0.9 *. t);
    0.6 *. sin ((1.1 *. t) +. 0.7);
    0.5 *. cos (0.8 *. t);
  |]

(* Observation features: ground truth corrupted by deterministic per-frame
   sensor noise.  The "image" is summarized by a feature vector, as the
   real application's edge/silhouette maps feed the likelihood. *)
let observation_noise = 0.07
let feature_patch_work = 160 (* cost of extracting features from a frame *)

let observe ~seed ~frame =
  let rng = Rng.create (seed + (7919 * frame)) in
  Array.map (fun v -> v +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:observation_noise) (truth ~frame)

(* Annealing schedule: layer l of n uses beta growing geometrically so the
   last layer is the sharpest. *)
let beta ~layer ~layers = 0.5 *. (2.0 ** float_of_int (layer - layers + 1)) *. 24.0

let spawn_sigma = 0.22 (* particle spread around the previous estimate *)
let anneal_jitter = 0.18 (* per-layer diffusion, shrinking with beta *)

type filter_state = {
  particles : float array array;
  weights : float array;
  estimate : float array; (* current pose estimate *)
}

type st = {
  layers_in : int;
  n_particles_in : int;
  n_frames : int;
  seed : int;
  fst : filter_state;
  output : float array;
  mutable cached_features : float array;
  mutable frame : int;  (* current frame index *)
  mutable layer : int;  (* next annealing layer within the frame *)
  (* Per-frame values set by the frame preamble (layer = 0). *)
  mutable features : float array;
  mutable eff_layers : int;
  mutable eff_particles : int;
}

let copy st =
  {
    st with
    fst =
      {
        particles = Array.map Array.copy st.fst.particles;
        weights = Array.copy st.fst.weights;
        estimate = Array.copy st.fst.estimate;
      };
    output = Array.copy st.output;
    cached_features = Array.copy st.cached_features;
    features = Array.copy st.features;
  }

let init env input =
  let layers_in = Stdlib.max 1 (int_of_float input.(0)) in
  let n_particles_in = Stdlib.max 8 (int_of_float input.(1)) in
  let n_frames = Stdlib.max 2 (int_of_float input.(2)) in
  let seed = Rng.int (Env.rng env) 0x3FFFFFFF in
  let fst =
    {
      particles = Array.init n_particles_in (fun _ -> Array.make pose_dim 0.0);
      weights = Array.make n_particles_in (1.0 /. float_of_int n_particles_in);
      estimate = Array.copy (truth ~frame:0);
    }
  in
  let output = Array.make (n_frames * pose_dim) 0.0 in
  let cached_features = observe ~seed ~frame:0 in
  {
    layers_in;
    n_particles_in;
    n_frames;
    seed;
    fst;
    output;
    cached_features;
    frame = 0;
    layer = 0;
    features = cached_features;
    eff_layers = 1;
    eff_particles = 8;
  }

(* The frame preamble runs before the frame's first annealing layer begins
   its outer iteration, so the AB knobs consulted here are read at the
   phase of the previously begun iteration — exactly as in the original
   nested-loop formulation. *)
let frame_preamble env t =
  let frame = t.frame in
  let st = t.fst in
  (* AB1: image feature extraction, memoized over frames. *)
  let feature_level = Env.current_level env ~ab:ab_features in
  Env.enter_ab env ~ab:ab_features;
  if frame mod (feature_level + 1) = 0 then begin
    t.cached_features <- observe ~seed:t.seed ~frame;
    Env.charge env ~ab:ab_features feature_patch_work
  end
  else Env.charge env ~ab:ab_features 4;
  t.features <- t.cached_features;

  (* AB3: effective number of annealing layers (parameter tuning). *)
  let anneal_level = Env.current_level env ~ab:ab_anneal in
  let max_anneal = abs.(ab_anneal).Ab.max_level in
  t.eff_layers <-
    Stdlib.max 1
      (int_of_float
         (Float.round
            (Approx.tune_parameter ~level:anneal_level ~max_level:max_anneal
               (float_of_int t.layers_in))));
  (* AB2: effective particle count (parameter tuning; applies to the whole
     frame: the knob is re-read each frame from the current phase). *)
  let resample_level = Env.current_level env ~ab:ab_resample in
  let max_resample = abs.(ab_resample).Ab.max_level in
  t.eff_particles <-
    (* The particle budget shrinks quadratically with the knob: the
       filter's travel per annealing layer depends on the edge density
       of the particle cloud, so a linear cut would barely bite. *)
    (let factor =
       let f1 = Approx.tune_parameter ~level:resample_level ~max_level:max_resample 1.0 in
       f1 *. f1
     in
     Stdlib.max 8 (int_of_float (factor *. float_of_int t.n_particles_in)));

  (* Spawn particles for this frame around the previous estimate: the
     local search that makes early mistracks persistent. *)
  let frame_rng = Rng.create (t.seed lxor (104729 * frame)) in
  for i = 0 to t.eff_particles - 1 do
    for d = 0 to pose_dim - 1 do
      st.particles.(i).(d) <-
        st.estimate.(d) +. Rng.gaussian_scaled frame_rng ~mean:0.0 ~sigma:spawn_sigma
    done;
    st.weights.(i) <- 1.0 /. float_of_int t.eff_particles
  done;
  Env.charge_base env (2 * t.eff_particles)

(* One annealing layer of one frame = one outer iteration. *)
let step env t =
  if t.frame >= t.n_frames then false
  else begin
    if t.layer = 0 then frame_preamble env t;
    let frame = t.frame and layer = t.layer in
    let layers_in = t.layers_in and n_particles_in = t.n_particles_in in
    let seed = t.seed in
    let eff_particles = t.eff_particles in
    let features = t.features in
    let st = t.fst in
    begin
      let iter = Env.begin_outer_iter env in
      (* The beta ladder is laid out for the configured layer count, so
         cutting layers (AB3) stops the annealing at a blunter beta. *)
      let b = beta ~layer ~layers:layers_in in

      (* AB0: likelihood evaluation, perforated over particles; skipped
         particles keep their stale weights. *)
      let lik_level = Env.current_level env ~ab:ab_likelihood in
      Env.enter_ab env ~ab:ab_likelihood;
      Approx.perforate ~offset:iter ~level:lik_level eff_particles (fun i ->
          let d2 = ref 0.0 in
          for d = 0 to pose_dim - 1 do
            let diff = st.particles.(i).(d) -. features.(d) in
            d2 := !d2 +. (diff *. diff)
          done;
          st.weights.(i) <- exp (-.b *. !d2);
          Env.charge env ~ab:ab_likelihood (3 * pose_dim));

      (* Systematic resampling + annealing jitter (base work — the knob on
         this stage is the particle count above). *)
      Env.enter_ab env ~ab:ab_resample;
      let total = ref 0.0 in
      for i = 0 to eff_particles - 1 do
        total := !total +. st.weights.(i)
      done;
      if !total > 1e-12 then begin
        let layer_rng = Rng.create (seed lxor (31 * ((frame * 97) + layer)) ) in
        let step = !total /. float_of_int eff_particles in
        let u0 = Rng.float layer_rng step in
        let source = Array.map Array.copy (Array.sub st.particles 0 eff_particles) in
        let cum = ref 0.0 and src = ref 0 in
        let jitter = anneal_jitter /. sqrt (1.0 +. b) in
        for i = 0 to eff_particles - 1 do
          let u = u0 +. (float_of_int i *. step) in
          while !cum +. st.weights.(!src) < u && !src < eff_particles - 1 do
            cum := !cum +. st.weights.(!src);
            incr src
          done;
          for d = 0 to pose_dim - 1 do
            st.particles.(i).(d) <-
              source.(!src).(d) +. Rng.gaussian_scaled layer_rng ~mean:0.0 ~sigma:jitter
          done
        done;
        Env.charge env ~ab:ab_resample (2 * eff_particles)
      end;
      (* Per-layer image operations (projection, silhouette comparison
         set-up) are not approximable and scale with the configured
         particle count. *)
      Env.charge_base env (eff_particles + (8 * n_particles_in))
    end;
    t.layer <- layer + 1;
    if t.layer >= t.eff_layers then begin
      (* Pose estimate: weighted mean over the final layer's particles. *)
      let total = ref 0.0 in
      Array.fill st.estimate 0 pose_dim 0.0;
      for i = 0 to eff_particles - 1 do
        total := !total +. st.weights.(i)
      done;
      if !total > 1e-12 then
        for i = 0 to eff_particles - 1 do
          let w = st.weights.(i) /. !total in
          for d = 0 to pose_dim - 1 do
            st.estimate.(d) <- st.estimate.(d) +. (w *. st.particles.(i).(d))
          done
        done
      else Array.blit features 0 st.estimate 0 pose_dim;
      Env.charge_base env eff_particles;
      Array.blit st.estimate 0 t.output (frame * pose_dim) pose_dim;
      t.frame <- frame + 1;
      t.layer <- 0
    end;
    true
  end

let finish _env t = t.output

let training_inputs =
  Opprox_sim.Inputs.grid [ [ 3.0; 5.0 ]; [ 96.0; 160.0 ]; [ 24.0; 36.0 ] ]

let app =
  App.make_iterative ~name:"bodytrack"
    ~description:"annealed particle filter tracking a synthetic articulated pose"
    ~param_names:[| "n_annealing_layers"; "n_particles"; "n_frames" |]
    ~abs
    ~default_input:[| 4.0; 128.0; 30.0 |]
    ~training_inputs:(Opprox_sim.Inputs.with_default [| 4.0; 128.0; 30.0 |] training_inputs)
    ~init ~step ~finish ~copy ~seed:0xB0D7 ()
