(** Bodytrack-like annealed particle filter (paper Sec. 4.1).

    Tracks a synthetic articulated pose (torso position plus three joint
    angles) through a sequence of frames with an annealed particle filter.
    The outer loop runs one iteration per (frame, annealing layer) pair, so
    its length is [n_frames * n_annealing_layers] — and because one AB tunes
    the number of annealing layers, {e the iteration count depends on the
    approximation levels} (the paper notes Bodytrack's iteration count
    becomes AL-dependent when min-particles is small).

    Particles for each frame spawn around the previous frame's estimate,
    so a mistrack early in the sequence takes many frames to heal —
    early-phase approximation degrades the QoS most (paper Fig. 9c) while
    the speedup is phase-insensitive (Fig. 10c).

    Input parameters (Table 1): [n_annealing_layers], [n_particles],
    [n_frames].

    Approximable blocks:
    + [likelihood_evaluation] — {b loop perforation} over particles
      (skipped particles keep stale weights),
    + [image_feature_extraction] — {b memoization} over frames (the
      previous frame's observation features are replayed),
    + [particle_resampling] — {b parameter tuning} of the effective
      particle count,
    + [annealing_schedule] — {b parameter tuning} of the number of
      annealing layers (reduces outer-loop iterations directly).

    QoS metric: relative distortion of the per-frame pose estimates
    (vector components weighted by magnitude, as in the paper). *)

val app : Opprox_sim.App.t

val pose_dim : int
(** Dimensionality of the tracked pose vector. *)

val truth : frame:int -> float array
(** Ground-truth pose at a frame (exposed for tests). *)
