module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Rng = Opprox_util.Rng

let ab_force = 0
let ab_neighbor = 1
let ab_integrate = 2

let abs =
  [|
    Ab.make ~name:"force_computation" ~technique:Ab.Perforation ~max_level:5;
    Ab.make ~name:"neighbor_evaluation" ~technique:Ab.Truncation ~max_level:5;
    Ab.make ~name:"velocity_integration" ~technique:Ab.Perforation ~max_level:5;
  |]

(* Reduced Lennard-Jones units: epsilon = sigma = mass = 1. *)
let cutoff = 2.5
let dt = 0.005
let temperature = 1.2
(* Quench schedule: the liquid is annealed to a frozen structure over the
   first 60% of the run (Berendsen thermostat), then held cold. *)
let t_final = 0.02
let quench_fraction = 0.3
let thermostat_tau = 50.0 *. 0.005

type system_state = {
  n : int;
  species : bool array; (* true = minority (B) species *)
  box : float; (* periodic box edge *)
  x : float array;
  y : float array;
  z : float array;
  vx : float array;
  vy : float array;
  vz : float array;
  fx : float array;
  fy : float array;
  fz : float array;
}

let minimum_image box d =
  if d > 0.5 *. box then d -. box else if d < -0.5 *. box then d +. box else d

let init rng ~cells ~lattice =
  let n = cells * cells * cells in
  let box = float_of_int cells *. lattice in
  let st =
    {
      n;
      (* Kob-Andersen-style 80/20 binary mixture: monodisperse LJ
         crystallizes into one of a handful of structures, collapsing the
         QoS to a few discrete values; the mixture glass-forms, giving a
         continuum of inherent structures. *)
      species = Array.init n (fun i -> i mod 5 = 4);
      box;
      x = Array.make n 0.0;
      y = Array.make n 0.0;
      z = Array.make n 0.0;
      vx = Array.make n 0.0;
      vy = Array.make n 0.0;
      vz = Array.make n 0.0;
      fx = Array.make n 0.0;
      fy = Array.make n 0.0;
      fz = Array.make n 0.0;
    }
  in
  let idx = ref 0 in
  for i = 0 to cells - 1 do
    for j = 0 to cells - 1 do
      for k = 0 to cells - 1 do
        st.x.(!idx) <- (float_of_int i +. 0.5) *. lattice;
        st.y.(!idx) <- (float_of_int j +. 0.5) *. lattice;
        st.z.(!idx) <- (float_of_int k +. 0.5) *. lattice;
        incr idx
      done
    done
  done;
  let sigma = sqrt temperature in
  for i = 0 to n - 1 do
    st.vx.(i) <- Rng.gaussian_scaled rng ~mean:0.0 ~sigma;
    st.vy.(i) <- Rng.gaussian_scaled rng ~mean:0.0 ~sigma;
    st.vz.(i) <- Rng.gaussian_scaled rng ~mean:0.0 ~sigma
  done;
  (* Remove net momentum so the lattice does not drift. *)
  let fn = float_of_int n in
  let mx = Array.fold_left ( +. ) 0.0 st.vx /. fn in
  let my = Array.fold_left ( +. ) 0.0 st.vy /. fn in
  let mz = Array.fold_left ( +. ) 0.0 st.vz /. fn in
  for i = 0 to n - 1 do
    st.vx.(i) <- st.vx.(i) -. mx;
    st.vy.(i) <- st.vy.(i) -. my;
    st.vz.(i) <- st.vz.(i) -. mz
  done;
  st

(* Kob-Andersen pair parameters: (epsilon, sigma^2) by species pair. *)
let pair_params a b =
  match (a, b) with
  | false, false -> (1.0, 1.0) (* A-A *)
  | true, true -> (0.5, 0.7744) (* B-B, sigma 0.88 *)
  | _ -> (1.5, 0.64) (* A-B, sigma 0.8 *)

(* Lennard-Jones pair force magnitude / r and pair potential. *)
let lj_force_over_r ~eps ~sigma2 r2 =
  let inv_r2 = sigma2 /. r2 in
  let inv_r6 = inv_r2 *. inv_r2 *. inv_r2 in
  24.0 *. eps /. r2 *. inv_r6 *. ((2.0 *. inv_r6) -. 1.0)

let lj_potential ~eps ~sigma2 r2 =
  let inv_r2 = sigma2 /. r2 in
  let inv_r6 = inv_r2 *. inv_r2 *. inv_r2 in
  4.0 *. eps *. inv_r6 *. (inv_r6 -. 1.0)

(* AB0 + AB1: force computation.  AB0 perforates the atom loop with a
   rotating offset (skipped atoms keep stale forces); AB1 truncates the
   interaction range, dropping the attractive tail of the pair loop. *)
let forces_kernel env st ~iter =
  let level_perf = Env.current_level env ~ab:ab_force in
  let level_trunc = Env.current_level env ~ab:ab_neighbor in
  Env.enter_ab env ~ab:ab_force;
  Env.enter_ab env ~ab:ab_neighbor;
  let max_trunc = abs.(ab_neighbor).Ab.max_level in
  let rc =
    cutoff *. (1.0 -. (float_of_int level_trunc /. float_of_int (2 * max_trunc)))
  in
  let rc2 = rc *. rc in
  Approx.perforate ~offset:iter ~level:level_perf st.n (fun i ->
      let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
      let pair_evals = ref 0 in
      for j = 0 to st.n - 1 do
        if j <> i then begin
          let dx = minimum_image st.box (st.x.(i) -. st.x.(j)) in
          let dy = minimum_image st.box (st.y.(i) -. st.y.(j)) in
          let dz = minimum_image st.box (st.z.(i) -. st.z.(j)) in
          let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
          if r2 < rc2 then begin
            let eps, sigma2 = pair_params st.species.(i) st.species.(j) in
            let r2 = Float.max r2 (0.81 *. sigma2) (* overlap guard *) in
            let f = lj_force_over_r ~eps ~sigma2 r2 in
            fx := !fx +. (f *. dx);
            fy := !fy +. (f *. dy);
            fz := !fz +. (f *. dz);
            incr pair_evals
          end
        end
      done;
      (* Clamped stress: bounds the energy a stale force can inject. *)
      let cap = 25.0 in
      let clamp v = Float.max (-.cap) (Float.min cap v) in
      st.fx.(i) <- clamp !fx;
      st.fy.(i) <- clamp !fy;
      st.fz.(i) <- clamp !fz;
      (* distance checks charged to the neighbor AB, force evaluations to
         the force AB *)
      Env.charge env ~ab:ab_neighbor st.n;
      Env.charge env ~ab:ab_force (4 * !pair_evals));
  (* Non-approximable per-step infrastructure: cell-list maintenance, halo
     exchange and reductions.  Keeps kernel speedups in a realistic range. *)
  Env.charge_base env (st.n * st.n / 2)

(* AB2: velocity-Verlet kick + drift.  Perforation over atoms with a
   rotating offset: a skipped atom misses this step's kick and receives a
   compensated (sub-cycled) kick the next time it is sampled. *)
let integrate_kernel env st ~iter =
  let level = Env.current_level env ~ab:ab_integrate in
  Env.enter_ab env ~ab:ab_integrate;
  let kick_dt = dt *. float_of_int (level + 1) in
  Approx.perforate ~offset:iter ~level st.n (fun i ->
      st.vx.(i) <- st.vx.(i) +. (st.fx.(i) *. kick_dt);
      st.vy.(i) <- st.vy.(i) +. (st.fy.(i) *. kick_dt);
      st.vz.(i) <- st.vz.(i) +. (st.fz.(i) *. kick_dt);
      Env.charge env ~ab:ab_integrate 6);
  let wrap box v = if v < 0.0 then v +. box else if v >= box then v -. box else v in
  for i = 0 to st.n - 1 do
    st.x.(i) <- wrap st.box (st.x.(i) +. (st.vx.(i) *. dt));
    st.y.(i) <- wrap st.box (st.y.(i) +. (st.vy.(i) *. dt));
    st.z.(i) <- wrap st.box (st.z.(i) +. (st.vz.(i) *. dt))
  done;
  Env.charge_base env (3 * st.n)

(* Berendsen velocity rescaling toward the quench schedule's target
   temperature (non-approximable bookkeeping). *)
let thermostat env st ~step ~steps =
  let progress = float_of_int step /. float_of_int steps in
  let target =
    if progress >= quench_fraction then t_final
    else temperature +. ((t_final -. temperature) *. progress /. quench_fraction)
  in
  let ke = ref 0.0 in
  for i = 0 to st.n - 1 do
    ke :=
      !ke
      +. 0.5
         *. ((st.vx.(i) *. st.vx.(i)) +. (st.vy.(i) *. st.vy.(i)) +. (st.vz.(i) *. st.vz.(i)))
  done;
  let t_current = Float.max 1e-6 (2.0 *. !ke /. (3.0 *. float_of_int st.n)) in
  let lambda = sqrt (1.0 +. (dt /. thermostat_tau *. ((target /. t_current) -. 1.0))) in
  let lambda = Float.max 0.8 (Float.min 1.2 lambda) in
  for i = 0 to st.n - 1 do
    st.vx.(i) <- st.vx.(i) *. lambda;
    st.vy.(i) <- st.vy.(i) *. lambda;
    st.vz.(i) <- st.vz.(i) *. lambda
  done;
  Env.charge_base env (2 * st.n)

(* Per-atom potential energies of the final (frozen) structure — the QoS
   output.  Early-phase perturbations strike while the system is still
   liquid and steer it into a different glass basin (large structural
   difference); once the quench has frozen the structure, perturbations
   can no longer rearrange it. *)
let final_structure env st =
  let rc2 = cutoff *. cutoff in
  let out = Array.make st.n 0.0 in
  for i = 0 to st.n - 1 do
    let pe = ref 0.0 in
    for j = 0 to st.n - 1 do
      if j <> i then begin
        let dx = minimum_image st.box (st.x.(i) -. st.x.(j)) in
        let dy = minimum_image st.box (st.y.(i) -. st.y.(j)) in
        let dz = minimum_image st.box (st.z.(i) -. st.z.(j)) in
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        if r2 < rc2 then begin
          let eps, sigma2 = pair_params st.species.(i) st.species.(j) in
          pe := !pe +. (0.5 *. lj_potential ~eps ~sigma2 (Float.max r2 (0.81 *. sigma2)))
        end
      end
    done;
    out.(i) <- !pe
  done;
  Env.charge_base env (st.n * st.n);
  out

type st = { sys : system_state; steps : int; mutable step : int }

let copy st =
  {
    st with
    sys =
      {
        st.sys with
        species = Array.copy st.sys.species;
        x = Array.copy st.sys.x;
        y = Array.copy st.sys.y;
        z = Array.copy st.sys.z;
        vx = Array.copy st.sys.vx;
        vy = Array.copy st.sys.vy;
        vz = Array.copy st.sys.vz;
        fx = Array.copy st.sys.fx;
        fy = Array.copy st.sys.fy;
        fz = Array.copy st.sys.fz;
      };
  }

let init_sim env input =
  let cells = Stdlib.max 2 (int_of_float input.(0)) in
  let lattice = Float.max 1.1 input.(1) in
  let steps = Stdlib.max 40 (int_of_float input.(2)) in
  let rng = Rng.split (Env.rng env) in
  let sys = init rng ~cells ~lattice in
  (* Initial force evaluation happens before the first outer iteration
     (and thus under phase 0's levels, like the warm-up of the real code). *)
  forces_kernel env sys ~iter:0;
  { sys; steps; step = 1 }

let step_sim env st =
  if st.step > st.steps then false
  else begin
    let iter = Env.begin_outer_iter env in
    forces_kernel env st.sys ~iter;
    integrate_kernel env st.sys ~iter;
    thermostat env st.sys ~step:st.step ~steps:st.steps;
    st.step <- st.step + 1;
    true
  end

let finish env st = final_structure env st.sys

let training_inputs =
  Opprox_sim.Inputs.grid [ [ 3.0 ]; [ 1.35; 1.5 ]; [ 500.0; 800.0 ] ]

let app =
  App.make_iterative ~name:"comd"
    ~description:"Lennard-Jones molecular dynamics with a fixed-count timestep loop"
    ~param_names:[| "n_unit_cells"; "lattice_parameter"; "n_timesteps" |]
    ~abs
    ~default_input:[| 3.0; 1.4; 800.0 |]
    ~training_inputs:(Opprox_sim.Inputs.with_default [| 3.0; 1.4; 800.0 |] training_inputs)
    ~init:init_sim ~step:step_sim ~finish ~copy ~seed:0xC0_4D ()
