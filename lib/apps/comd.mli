(** CoMD-like molecular-dynamics proxy benchmark (paper Sec. 4.1).

    Lennard-Jones atoms on a periodic cubic lattice integrated with
    velocity Verlet.  The outer loop is a classic timestep loop: the
    iteration count is the [n_timesteps] input parameter and depends on
    neither the other inputs nor the approximation levels (paper: "CoMD
    outer loop represents a classic timestep loop").

    Chaotic N-body dynamics make the trajectory divergence grow with the
    time since a perturbation, so approximating early phases corrupts the
    final per-atom energies far more than approximating late phases
    (paper Fig. 9a), while the speedup is phase-insensitive (Fig. 10a).

    Input parameters (Table 1): [n_unit_cells] (atoms per edge),
    [lattice_parameter] (spacing), [n_timesteps].

    Approximable blocks:
    + [force_computation] — {b loop perforation} over atoms with a
      rotating offset (skipped atoms keep stale forces),
    + [neighbor_evaluation] — {b loop truncation} of the interaction
      range (the pair loop stops at a reduced cutoff),
    + [velocity_integration] — {b loop perforation} over atoms (skipped
      atoms coast without a kick this step).

    QoS metric: relative distortion of final per-atom potential + kinetic
    energies (paper: energy difference averaged across atoms). *)

val app : Opprox_sim.App.t
