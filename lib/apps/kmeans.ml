module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Rng = Opprox_util.Rng

let ab_distance = 0
let ab_centroid = 1
let ab_convergence = 2

let abs =
  [|
    Ab.make ~name:"distance_evaluation" ~technique:Ab.Perforation ~max_level:4;
    Ab.make ~name:"centroid_update" ~technique:Ab.Memoization ~max_level:2;
    Ab.make ~name:"convergence_check" ~technique:Ab.Perforation ~max_level:4;
  |]

let max_iters = 120

(* Synthetic blobs: cluster centers on a circle, Gaussian spread.  The
   spread overlaps neighbouring blobs slightly so the optimization
   landscape has competing local optima. *)
let generate rng ~n ~k ~dim =
  let centers =
    Array.init k (fun c ->
        Array.init dim (fun d ->
            let angle = 2.0 *. Float.pi *. float_of_int c /. float_of_int k in
            match d with
            | 0 -> 5.0 *. cos angle
            | 1 -> 5.0 *. sin angle
            | _ -> 2.0 *. sin (angle *. float_of_int d)))
  in
  Array.init n (fun i ->
      let c = i mod k in
      Array.init dim (fun d -> centers.(c).(d) +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:2.6))

let distance2 a b =
  let acc = ref 0.0 in
  Array.iteri (fun d x -> acc := !acc +. ((x -. b.(d)) *. (x -. b.(d)))) a;
  !acc

type st = {
  n : int;
  k : int;
  dim : int;
  points : float array array;
  assignment : int array;
  centroids : float array array;
  mutable continue_ : bool;
  mutable stable_streak : int;
}

let copy st =
  {
    st with
    points = Array.map Array.copy st.points;
    assignment = Array.copy st.assignment;
    centroids = Array.map Array.copy st.centroids;
  }

let init env input =
  let n = Stdlib.max 8 (int_of_float input.(0)) in
  let k = Stdlib.max 2 (int_of_float input.(1)) in
  let dim = Stdlib.max 2 (int_of_float input.(2)) in
  let rng = Rng.split (Env.rng env) in
  let points = generate rng ~n ~k ~dim in
  let assignment = Array.make n 0 in
  (* Deliberately poor initialization (arbitrary points, possibly from the
     same blob): k-means needs a realistic number of iterations to sort
     itself out, and different perturbations settle in different optima. *)
  let centroids = Array.init k (fun c -> Array.copy points.(c * 37 mod n)) in
  { n; k; dim; points; assignment; centroids; continue_ = true; stable_streak = 0 }

let step env ({ n; k; dim; points; assignment; centroids; _ } as st) =
  if not st.continue_ then false
  else begin
    let iter = Env.begin_outer_iter env in

    (* AB0: nearest-centroid assignment, perforated over points. *)
    let changed = Array.make n false in
    Env.enter_ab env ~ab:ab_distance;
    let l0 = Env.current_level env ~ab:ab_distance in
    Approx.perforate ~offset:iter ~level:l0 n (fun i ->
        let best = ref 0 and best_d = ref infinity in
        for c = 0 to k - 1 do
          let d = distance2 points.(i) centroids.(c) in
          if d < !best_d then begin
            best_d := d;
            best := c
          end
        done;
        if !best <> assignment.(i) then begin
          assignment.(i) <- !best;
          changed.(i) <- true
        end;
        Env.charge env ~ab:ab_distance (k * dim));

    (* AB1: centroid recomputation, memoized across iterations. *)
    Env.enter_ab env ~ab:ab_centroid;
    let l1 = Env.current_level env ~ab:ab_centroid in
    if iter mod (l1 + 1) = 0 then begin
      let sums = Array.init k (fun _ -> Array.make dim 0.0) in
      let counts = Array.make k 0 in
      for i = 0 to n - 1 do
        let c = assignment.(i) in
        counts.(c) <- counts.(c) + 1;
        for d = 0 to dim - 1 do
          sums.(c).(d) <- sums.(c).(d) +. points.(i).(d)
        done
      done;
      for c = 0 to k - 1 do
        if counts.(c) > 0 then
          for d = 0 to dim - 1 do
            centroids.(c).(d) <- sums.(c).(d) /. float_of_int counts.(c)
          done
      done;
      Env.charge env ~ab:ab_centroid (n * dim)
    end
    else Env.charge env ~ab:ab_centroid k;

    (* AB2: convergence test over a sample of the points. *)
    Env.enter_ab env ~ab:ab_convergence;
    let l2 = Env.current_level env ~ab:ab_convergence in
    let any_changed = ref false in
    Approx.perforate ~offset:iter ~level:l2 n (fun i ->
        if changed.(i) then any_changed := true;
        Env.charge env ~ab:ab_convergence 1);

    Env.charge_base env n;
    (* Two consecutive stable samples end the run (a single quiet sample of
       a perforated check is not proof of convergence). *)
    if not !any_changed then st.stable_streak <- st.stable_streak + 1 else st.stable_streak <- 0;
    if st.stable_streak >= 2 || Env.outer_iters env >= max_iters then st.continue_ <- false;
    true
  end

let finish env { n; k; dim; points; assignment; centroids; _ } =
  (* Canonical output: centroids sorted lexicographically, plus inertia. *)
  let order = Array.init k (fun c -> c) in
  Array.sort (fun a b -> compare centroids.(a) centroids.(b)) order;
  let inertia = ref 0.0 in
  for i = 0 to n - 1 do
    inertia := !inertia +. distance2 points.(i) centroids.(assignment.(i))
  done;
  Env.charge_base env (n * dim);
  Array.concat
    (Array.to_list (Array.map (fun c -> centroids.(c)) order)
    @ [ [| !inertia /. float_of_int n |] ])

let training_inputs =
  Opprox_sim.Inputs.grid [ [ 320.0; 400.0; 500.0 ]; [ 8.0; 10.0 ]; [ 3.0 ] ]

let app =
  App.make_iterative ~name:"kmeans"
    ~description:"Lloyd's k-means on Gaussian blobs; assignment-stability convergence loop"
    ~param_names:[| "n_points"; "n_clusters"; "dimension" |]
    ~abs
    ~default_input:[| 400.0; 10.0; 3.0 |]
    ~training_inputs:(Array.append training_inputs [| [| 400.0; 10.0; 3.0 |] |])
    ~init ~step ~finish ~copy ~seed:0x63A5 ()
