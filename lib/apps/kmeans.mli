(** K-means clustering (extension application, not part of the paper's
    evaluation set).

    Lloyd's algorithm on synthetic Gaussian blobs.  The outer loop is a
    convergence loop — it runs until an iteration changes no assignments —
    so approximation shifts the iteration count in both directions, and
    k-means' many local optima give early-phase approximation a lasting
    effect (the run settles into a different basin) while late-phase
    approximation perturbs an already-converged state.

    Input parameters: [n_points], [n_clusters], [dimension].

    Approximable blocks:
    + [distance_evaluation] — {b loop perforation} over points (skipped
      points keep their previous assignment),
    + [centroid_update] — {b memoization}: centroids are recomputed every
      (level+1)-th iteration and reused in between,
    + [convergence_check] — {b loop perforation}: stability is tested on a
      sample of the points.

    QoS metric: relative distortion of the canonically-ordered final
    centroids plus the clustering inertia. *)

val app : Opprox_sim.App.t
