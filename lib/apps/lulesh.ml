module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx

let default_cells = 48

(* Kernel indices: the four ABs of paper Sec. 2. *)
let ab_forces = 0
let ab_position = 1
let ab_strain = 2
let ab_timeconstraint = 3

let abs =
  [|
    Ab.make ~name:"forces_on_elements" ~technique:Ab.Perforation ~max_level:3;
    Ab.make ~name:"position_of_elements" ~technique:Ab.Memoization ~max_level:5;
    Ab.make ~name:"strain_of_elements" ~technique:Ab.Truncation ~max_level:5;
    Ab.make ~name:"calculate_timeconstraints" ~technique:Ab.Perforation ~max_level:5;
  |]

(* Simulation constants.  The tube has unit length and unit initial density;
   a Sedov-style blast deposits energy in the leftmost cell.  The timestep
   obeys a Courant condition with hard bounds so aggressive approximation
   degrades quality instead of crashing the run (sensitivity profiling in
   the paper filtered out crash-inducing blocks; ours are built to survive). *)
let t_end = 1.0
let cfl = 0.35
let dt_min = 1.5e-4
let dt_max = 1.5e-3
let max_iters = 8000
let blast_energy = 1.0
let background_energy = 1e-4
let q_linear = 1.0
let q_quadratic = 2.0

let clamp lo hi v = Float.max lo (Float.min hi v)

type state = {
  n : int;
  x : float array; (* node positions, n+1 *)
  u : float array; (* node velocities, n+1 *)
  f : float array; (* nodal forces, persists across steps for perforation *)
  du : float array; (* cached velocity increments for memoization *)
  e : float array; (* cell specific internal energy, n *)
  p : float array; (* cell pressure *)
  q : float array; (* cell artificial viscosity *)
  vol : float array; (* cell volumes *)
  gamma : float array; (* per-cell adiabatic index (region-dependent) *)
  m_cell : float;
}

let init ~cells ~regions =
  let n = cells in
  let dx = 1.0 /. float_of_int n in
  let gamma =
    Array.init n (fun i ->
        (* Regions tile the tube; each region uses a slightly different
           material (adiabatic index), as LULESH's multi-region setup does. *)
        let r = i * regions / n in
        1.4 +. (0.08 *. float_of_int (r mod 3)))
  in
  (* The blast is deposited as a smooth Gaussian over the first few cells;
     a delta deposition makes the early flow so violent that any
     approximation error saturates instead of scaling with the level. *)
  let blast_width = 3.0 in
  let profile = Array.init n (fun i -> exp (-.((float_of_int i /. blast_width) ** 2.0))) in
  let norm = Array.fold_left ( +. ) 0.0 profile *. dx in
  let e =
    Array.init n (fun i -> background_energy +. (blast_energy *. profile.(i) /. norm))
  in
  let p = Array.init n (fun i -> (gamma.(i) -. 1.0) *. 1.0 *. e.(i)) in
  {
    n;
    x = Array.init (n + 1) (fun i -> float_of_int i *. dx);
    u = Array.make (n + 1) 0.0;
    f = Array.make (n + 1) 0.0;
    du = Array.make (n + 1) 0.0;
    e;
    p;
    q = Array.make n 0.0;
    vol = Array.make n dx;
    gamma;
    m_cell = dx;
  }

(* The first few dozen timesteps are the blast's formation transient — the
   paper's systems treat initialization/warm-up as outside the approximable
   main computation (Sec. 3.5), so approximation is gated until the flow is
   established. *)
let warmup_iters = 5

let effective_level env ~iter ~ab =
  if iter < warmup_iters then 0 else Env.current_level env ~ab

(* AB0: nodal forces from the pressure gradient of adjacent cells.
   Perforation skips nodes; a skipped node keeps its stale force. *)
let forces_kernel env st ~iter =
  let level = effective_level env ~iter ~ab:ab_forces in
  Env.enter_ab env ~ab:ab_forces;
  Approx.perforate ~offset:iter ~level (st.n - 1) (fun k ->
      let i = k + 1 in
      (* total stress = pressure + artificial viscosity *)
      let left = st.p.(i - 1) +. st.q.(i - 1) in
      let right = st.p.(i) +. st.q.(i) in
      st.f.(i) <- left -. right;
      (* Stress integration costs more where the flow is violent (hourglass
         control and viscous terms activate near the front), so the early,
         shock-dominated iterations carry more approximable work. *)
      let violence = Float.abs (st.q.(i - 1) +. st.q.(i)) in
      let refine = 1 + Stdlib.min 8 (int_of_float (30.0 *. violence)) in
      Env.charge env ~ab:ab_forces (3 * refine))

(* AB1: velocity and position integration.  Memoization is temporal: the
   velocity field is refreshed from the forces only every (level+1)-th
   outer iteration and the cached (stale) field drives the position update
   in between.  Skipped refreshes add no spurious energy — the flow merely
   lags the accelerations it missed. *)
let position_kernel env st dt ~iter =
  let level = effective_level env ~iter ~ab:ab_position in
  Env.enter_ab env ~ab:ab_position;
  let m_node = st.m_cell in
  let fresh = iter mod (level + 1) = 0 in
  for i = 1 to st.n - 1 do
    if fresh then begin
      st.du.(i) <- st.f.(i) /. m_node *. dt *. sqrt (float_of_int (level + 1));
      st.u.(i) <- clamp (-10.0) 10.0 (0.998 *. (st.u.(i) +. st.du.(i)));
      Env.charge env ~ab:ab_position 3
    end
    else st.u.(i) <- 0.998 *. st.u.(i);
    Env.charge env ~ab:ab_position 1
  done;
  (* Walls are rigid: boundary nodes never move. *)
  st.u.(0) <- 0.0;
  st.u.(st.n) <- 0.0;
  (* Artificial velocity diffusion: damps grid-scale oscillations (the
     dominant instability mode) while leaving the smooth shock intact. *)
  let alpha = 0.06 in
  let prev = ref st.u.(0) in
  for i = 1 to st.n - 1 do
    let here = st.u.(i) in
    let smoothed = here +. (alpha *. (!prev -. (2.0 *. here) +. st.u.(i + 1))) in
    prev := here;
    st.u.(i) <- smoothed
  done;
  for i = 1 to st.n - 1 do
    st.x.(i) <- st.x.(i) +. (st.u.(i) *. dt)
  done;
  Env.charge_base env st.n

(* AB2: volume/density/energy/pressure (EOS) update.  Truncation leaves the
   trailing cells — far from the shock for most of the run — with stale
   thermodynamic state. *)
let strain_kernel env st ~iter =
  let level = effective_level env ~iter ~ab:ab_strain in
  Env.enter_ab env ~ab:ab_strain;
  let max_level = abs.(ab_strain).Ab.max_level in
  Approx.truncate ~level ~max_level st.n (fun i ->
      let vol_new = Float.max (0.125 *. st.m_cell) (st.x.(i + 1) -. st.x.(i)) in
      let dvol = vol_new -. st.vol.(i) in
      let rho = clamp 1e-3 1e3 (st.m_cell /. vol_new) in
      (* compression work: de = -(p+q) dV / m *)
      let de = -.(st.p.(i) +. st.q.(i)) *. dvol /. st.m_cell in
      st.e.(i) <- clamp 0.0 100.0 (st.e.(i) +. de);
      st.vol.(i) <- vol_new;
      st.p.(i) <- Float.max 0.0 ((st.gamma.(i) -. 1.0) *. rho *. st.e.(i));
      let du = st.u.(i + 1) -. st.u.(i) in
      st.q.(i) <-
        (if du < 0.0 then
           let cs = sqrt (st.gamma.(i) *. (st.p.(i) +. 1e-12) /. rho) in
           (q_quadratic *. rho *. du *. du) +. (q_linear *. rho *. cs *. Float.abs du)
         else 0.0);
      (* EOS Newton iterations: strong compression needs more of them. *)
      let refine = 1 + Stdlib.min 8 (int_of_float (60.0 *. Float.abs du)) in
      Env.charge env ~ab:ab_strain (4 * refine))

(* AB3: Courant timestep.  Perforation takes the minimum over a sample of
   cells; missing the most constrained cell yields an over-large timestep,
   whose instability feeds back into the state (and hence into future
   timesteps — this is where the outer-loop iteration count moves). *)
let timeconstraint_kernel env st ~dt_prev ~iter =
  let level = effective_level env ~iter ~ab:ab_timeconstraint in
  Env.enter_ab env ~ab:ab_timeconstraint;
  let best = ref dt_max in
  Approx.perforate ~offset:iter ~level st.n (fun i ->
      let rho = st.m_cell /. Float.max (0.125 *. st.m_cell) st.vol.(i) in
      let cs = sqrt (st.gamma.(i) *. (st.p.(i) +. 1e-12) /. rho) in
      let du = Float.abs (st.u.(i + 1) -. st.u.(i)) in
      let dt_cell = cfl *. st.vol.(i) /. (cs +. du +. 1e-9) in
      if dt_cell < !best then best := dt_cell;
      Env.charge env ~ab:ab_timeconstraint 2);
  (* Sampling the reduction can only overestimate the Courant limit, so a
     level-dependent safety factor keeps the sampled timestep conservative.
     The factor inflates the outer-loop iteration count with the level —
     approximation can slow the application down (paper Fig. 3). *)
  let safety = 1.0 -. (0.03 *. float_of_int level) in
  clamp dt_min dt_max (Float.min (safety *. !best) (1.08 *. dt_prev))

type sim = { st : state; mutable t : float; mutable dt : float }

let copy sim =
  {
    sim with
    st =
      {
        sim.st with
        x = Array.copy sim.st.x;
        u = Array.copy sim.st.u;
        f = Array.copy sim.st.f;
        du = Array.copy sim.st.du;
        e = Array.copy sim.st.e;
        p = Array.copy sim.st.p;
        q = Array.copy sim.st.q;
        vol = Array.copy sim.st.vol;
        gamma = Array.copy sim.st.gamma;
      };
  }

let init_sim _env input =
  let cells = int_of_float input.(0) in
  let regions = Stdlib.max 1 (int_of_float input.(1)) in
  if cells < 8 then invalid_arg "Lulesh.run: mesh too small";
  { st = init ~cells ~regions; t = 0.0; dt = dt_min }

let step env sim =
  if not (sim.t < t_end && Env.outer_iters env < max_iters) then false
  else begin
    let iter = Env.begin_outer_iter env in
    forces_kernel env sim.st ~iter;
    position_kernel env sim.st sim.dt ~iter;
    strain_kernel env sim.st ~iter;
    sim.dt <- timeconstraint_kernel env sim.st ~dt_prev:sim.dt ~iter;
    sim.t <- sim.t +. sim.dt;
    (* Non-approximable bookkeeping (reductions, boundary conditions). *)
    Env.charge_base env (sim.st.n * 4);
    true
  end

let finish _env sim = Array.copy sim.st.e

let training_inputs = Opprox_sim.Inputs.grid [ [ 40.0; 48.0; 56.0 ]; [ 2.0; 4.0; 8.0 ] ]

let app =
  App.make_iterative ~name:"lulesh"
    ~description:"1-D Lagrangian shock hydrodynamics (Sedov blast), Courant-driven outer loop"
    ~param_names:[| "mesh_length"; "n_regions" |]
    ~abs
    ~default_input:[| float_of_int default_cells; 4.0 |]
    ~training_inputs:(Opprox_sim.Inputs.with_default [| float_of_int default_cells; 4.0 |] training_inputs)
    ~init:init_sim ~step ~finish ~copy ~seed:0x10_1e5 ()
