(** LULESH-like Lagrangian shock hydrodynamics mini-app (paper Sec. 2).

    A 1-D Sedov-style blast problem on a staggered Lagrangian grid: energy
    is deposited in the first cell and a shock propagates down a tube of
    cells.  The outer loop advances simulation time with a timestep from a
    Courant condition until a fixed end time — so the {e iteration count
    depends on the state}, and approximation of the internal kernels can
    increase or decrease it (paper Fig. 3).

    Input parameters (matching Table 1):
    - [mesh_length] — number of cells in the tube (paper: length of cube
      mesh; our tube is its 1-D analogue),
    - [n_regions] — number of material regions with distinct adiabatic
      indices.

    Approximable blocks (paper Sec. 2, four kernels):
    + [forces_on_elements] — pressure-gradient nodal forces; {b loop
      perforation} over nodes (skipped nodes keep their stale force),
    + [position_of_elements] — velocity/position integration;
      {b memoization} over nodes (velocity increments replayed),
    + [strain_of_elements] — volume/density/energy/pressure (EOS) update;
      {b loop truncation} over cells (trailing cells keep stale state),
    + [calculate_timeconstraints] — Courant timestep reduction; {b loop
      perforation} over cells (the minimum is taken over a sample).

    QoS metric: relative distortion of final per-cell energies (paper:
    difference in final energy averaged across elements). *)

val app : Opprox_sim.App.t

val default_cells : int
(** Mesh length of the default input. *)
