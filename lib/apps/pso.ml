module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Rng = Opprox_util.Rng

let ab_fitness = 0
let ab_velocity = 1
let ab_best = 2

let abs =
  [|
    Ab.make ~name:"fitness_evaluation" ~technique:Ab.Perforation ~max_level:4;
    Ab.make ~name:"velocity_update" ~technique:Ab.Memoization ~max_level:5;
    Ab.make ~name:"best_update" ~technique:Ab.Perforation ~max_level:5;
  |]

(* PSO constants (standard constriction-style coefficients). *)
let inertia = 0.72
let c_personal = 1.49
let c_global = 1.49
let domain = 5.12
let max_iters = 600
let stagnation_window = 25
let stagnation_epsilon = 0.01
let ripple = 1.5 (* Rastrigin amplitude; full 10.0 traps the swarm too often *)

(* The optimum sits away from the origin so the exact result is a
   non-degenerate vector for the relative-distortion QoS metric. *)
let optimum d = 2.0 +. (0.5 *. sin (float_of_int d))

let objective x =
  let acc = ref 0.0 in
  Array.iteri
    (fun d xd ->
      let xi = xd -. optimum d in
      acc := !acc +. ((xi *. xi) -. (ripple *. cos (2.0 *. Float.pi *. xi)) +. ripple))
    x;
  !acc

type swarm = {
  pos : float array array;
  vel : float array array;
  att : float array array; (* cached attraction terms (memoization) *)
  fitness : float array; (* possibly stale fitness of the current position *)
  pbest_pos : float array array;
  pbest_val : float array;
  gbest_pos : float array;
  mutable gbest_val : float;
}

let init rng ~n ~dim =
  let pos = Array.init n (fun _ -> Array.init dim (fun _ -> Rng.range rng (-.domain) domain)) in
  let vel = Array.init n (fun _ -> Array.init dim (fun _ -> Rng.range rng (-1.0) 1.0)) in
  let fitness = Array.map objective pos in
  let pbest_pos = Array.map Array.copy pos in
  let pbest_val = Array.copy fitness in
  let gbest = ref 0 in
  Array.iteri (fun i f -> if f < pbest_val.(!gbest) then gbest := i) fitness;
  {
    pos;
    vel;
    att = Array.init n (fun _ -> Array.make dim 0.0);
    fitness;
    pbest_pos;
    pbest_val;
    gbest_pos = Array.copy pos.(!gbest);
    gbest_val = fitness.(!gbest);
  }

(* AB0: objective evaluation.  Perforation with a rotating offset skips
   particles; a skipped particle keeps its stale fitness, so its
   personal-best update waits until it is sampled again. *)
let fitness_kernel env sw ~iter ~dim =
  let level = Env.current_level env ~ab:ab_fitness in
  Env.enter_ab env ~ab:ab_fitness;
  let n = Array.length sw.pos in
  Approx.perforate ~offset:iter ~level n (fun i ->
      sw.fitness.(i) <- objective sw.pos.(i);
      Env.charge env ~ab:ab_fitness (2 * dim);
      if sw.fitness.(i) < sw.pbest_val.(i) then begin
        sw.pbest_val.(i) <- sw.fitness.(i);
        Array.blit sw.pos.(i) 0 sw.pbest_pos.(i) 0 dim
      end)

(* AB1: velocity update.  Memoization is temporal: the attraction terms
   are recomputed every (level+1)-th outer iteration and the cached terms
   are replayed in between.  The stale attraction still points roughly at
   the bests, so homing continues, only less precisely — the convergence
   loop runs longer. *)
let velocity_kernel env sw ~iter ~dim rng =
  let level = Env.current_level env ~ab:ab_velocity in
  Env.enter_ab env ~ab:ab_velocity;
  let n = Array.length sw.pos in
  (* Stale iterations freeze a particle in place (its last computed state
     is the memoized result); the rotating offset staggers refreshes so a
     fraction of the swarm moves every iteration. *)
  let period = level + 1 in
  let offset = iter mod period in
  for i = 0 to n - 1 do
    if level = 0 || i mod period = offset then begin
      for d = 0 to dim - 1 do
        let r1 = Rng.uniform rng and r2 = Rng.uniform rng in
        sw.att.(i).(d) <-
          (c_personal *. r1 *. (sw.pbest_pos.(i).(d) -. sw.pos.(i).(d)))
          +. (c_global *. r2 *. (sw.gbest_pos.(d) -. sw.pos.(i).(d)))
      done;
      for d = 0 to dim - 1 do
        sw.vel.(i).(d) <-
          Float.max (-.domain)
            (Float.min domain ((inertia *. sw.vel.(i).(d)) +. sw.att.(i).(d)));
        sw.pos.(i).(d) <-
          Float.max (-.domain) (Float.min domain (sw.pos.(i).(d) +. sw.vel.(i).(d)))
      done;
      Env.charge env ~ab:ab_velocity (4 * dim)
    end
  done

(* AB2: global-best reduction.  Perforation scans only a sample of the
   particles; improvements at the others are picked up in later
   iterations when the rotating offset reaches them. *)
let best_kernel env sw ~iter ~dim =
  let level = Env.current_level env ~ab:ab_best in
  Env.enter_ab env ~ab:ab_best;
  let n = Array.length sw.pos in
  Approx.perforate ~offset:iter ~level n (fun i ->
      Env.charge env ~ab:ab_best 1;
      if sw.pbest_val.(i) < sw.gbest_val then begin
        sw.gbest_val <- sw.pbest_val.(i);
        Array.blit sw.pbest_pos.(i) 0 sw.gbest_pos 0 dim
      end)

(* One run drives an ensemble of independent swarms in lockstep (as PSO
   benchmarking harnesses do): the ensemble mean smooths the heavy-tailed
   convergence-time distribution of a single swarm, which would otherwise
   drown the approximation effects in restart noise. *)
let ensemble_size = 6

type st = {
  n : int;
  dim : int;
  run_seed : int;
  swarms : swarm array;
  mutable last_improvement_iter : int;
  mutable last_best : float;
  mutable continue_ : bool;
}

let copy_swarm sw =
  {
    pos = Array.map Array.copy sw.pos;
    vel = Array.map Array.copy sw.vel;
    att = Array.map Array.copy sw.att;
    fitness = Array.copy sw.fitness;
    pbest_pos = Array.map Array.copy sw.pbest_pos;
    pbest_val = Array.copy sw.pbest_val;
    gbest_pos = Array.copy sw.gbest_pos;
    gbest_val = sw.gbest_val;
  }

let copy st = { st with swarms = Array.map copy_swarm st.swarms }

let mean_best swarms =
  Array.fold_left (fun acc sw -> acc +. sw.gbest_val) 0.0 swarms /. float_of_int ensemble_size

let init_st env input =
  let n = Stdlib.max 4 (int_of_float input.(0)) in
  let dim = Stdlib.max 2 (int_of_float input.(1)) in
  let init_rng = Rng.split (Env.rng env) in
  let run_seed = Rng.int (Env.rng env) 0x3FFFFFFF in
  let swarms = Array.init ensemble_size (fun _ -> init (Rng.split init_rng) ~n ~dim) in
  (* Convergence test: the loop ends once the contracted swarms can no
     longer improve — when the ensemble-mean best has stagnated for a
     window of iterations. *)
  { n; dim; run_seed; swarms; last_improvement_iter = 0; last_best = mean_best swarms; continue_ = true }

let step env st =
  if not st.continue_ then false
  else begin
    let iter = Env.begin_outer_iter env in
    (* Per-iteration RNG derived from (seed, iter): approximation cannot
       shift the random stream of later iterations. *)
    let rng = Rng.create (st.run_seed + (7919 * iter)) in
    Array.iter
      (fun sw ->
        fitness_kernel env sw ~iter ~dim:st.dim;
        best_kernel env sw ~iter ~dim:st.dim;
        velocity_kernel env sw ~iter ~dim:st.dim rng)
      st.swarms;
    Env.charge_base env st.n;
    let best = mean_best st.swarms in
    if best < st.last_best *. (1.0 -. stagnation_epsilon) then begin
      st.last_best <- best;
      st.last_improvement_iter <- iter
    end;
    if
      iter - st.last_improvement_iter >= stagnation_window || Env.outer_iters env >= max_iters
    then st.continue_ <- false;
    true
  end

let finish _env st =
  Array.concat
    (Array.to_list
       (Array.map (fun sw -> Array.append sw.gbest_pos [| sw.gbest_val |]) st.swarms))

let training_inputs = Opprox_sim.Inputs.grid [ [ 24.0; 40.0 ]; [ 6.0; 8.0; 10.0 ] ]

let app =
  App.make_iterative ~name:"pso"
    ~description:"global-best particle swarm optimization with a convergence-test outer loop"
    ~param_names:[| "swarm_size"; "dimension" |]
    ~abs
    ~default_input:[| 40.0; 8.0 |]
    ~training_inputs:(Opprox_sim.Inputs.with_default [| 40.0; 8.0 |] training_inputs)
    ~init:init_st ~step ~finish ~copy ~seed:0x9_50 ()
