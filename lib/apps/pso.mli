(** Particle swarm optimization benchmark (paper Sec. 4.1).

    A standard global-best PSO minimizing a mildly multimodal objective
    (Rastrigin with reduced ripple amplitude) over a continuous domain.
    The outer loop is a {e convergence loop}: it runs until the global-best
    fitness falls below a fixed fraction of its initial value (or an
    iteration cap) — so approximation that stalls convergence directly
    inflates the iteration count, and the speedup of approximating late
    phases degrades (paper Figs. 9b, 10b).

    Input parameters (Table 1): [swarm_size] and [dimension].

    Approximable blocks:
    + [fitness_evaluation] — {b loop perforation} over particles (skipped
      particles keep stale fitness, missing personal-best updates),
    + [velocity_update] — {b memoization}: velocities are refreshed from
      the attraction terms only every (level+1)-th outer iteration and the
      swarm coasts in between,
    + [best_update] — {b loop perforation} over the global-best reduction
      (improvements at unsampled particles are found only later).

    QoS metric: relative distortion of the final global-best position and
    value (paper: average difference of the best fitness vectors). *)

val app : Opprox_sim.App.t

val objective : float array -> float
(** The objective function (exposed for tests): non-negative, zero at the
    origin. *)
