let registered : Opprox_sim.App.t list ref = ref []

let register (app : Opprox_sim.App.t) =
  if List.exists (fun (a : Opprox_sim.App.t) -> String.equal a.name app.name) !registered
  then invalid_arg (Printf.sprintf "Registry.register: duplicate app name %S" app.name);
  registered := !registered @ [ app ]

let paper = [ Lulesh.app; Vidproc.app; Bodytrack.app; Pso.app; Comd.app ]
let extensions = [ Kmeans.app; Transformer.app ]
let () = List.iter register (paper @ extensions)
let all () = !registered

let find name =
  match List.find_opt (fun (a : Opprox_sim.App.t) -> a.name = name) !registered with
  | Some a -> a
  | None -> raise Not_found

let names () = List.map (fun (a : Opprox_sim.App.t) -> a.name) !registered
