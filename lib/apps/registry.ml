let paper = [ Lulesh.app; Vidproc.app; Bodytrack.app; Pso.app; Comd.app ]
let extensions = [ Kmeans.app ]
let all = paper @ extensions

let find name =
  match List.find_opt (fun (a : Opprox_sim.App.t) -> a.name = name) all with
  | Some a -> a
  | None -> raise Not_found

let names = List.map (fun (a : Opprox_sim.App.t) -> a.name) all
