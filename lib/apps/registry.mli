(** The bundled benchmark applications.

    The registry is a mutable table: the bundled apps register themselves
    at module initialization, and embedders can {!register} further apps
    (e.g. test doubles) at startup.  Registration is the single choke
    point where name uniqueness is enforced — every later lookup
    ({!find}, the CLI's app argument, the checker) relies on names being
    unambiguous. *)

val register : Opprox_sim.App.t -> unit
(** Add an application.  Raises [Invalid_argument] when an app with the
    same name is already registered — duplicate names would make {!find}
    silently resolve to whichever registered first. *)

val paper : Opprox_sim.App.t list
(** The five applications of the paper's evaluation (Table 1), in the
    paper's order: LULESH, FFmpeg, Bodytrack, PSO, CoMD. *)

val extensions : Opprox_sim.App.t list
(** Applications beyond the paper's set (currently k-means). *)

val all : unit -> Opprox_sim.App.t list
(** Every registered app, in registration order ([paper @ extensions]
    first). *)

val find : string -> Opprox_sim.App.t
(** Look up by [App.name].  Raises [Not_found] for unknown names. *)

val names : unit -> string list
