(** The bundled benchmark applications. *)

val paper : Opprox_sim.App.t list
(** The five applications of the paper's evaluation (Table 1), in the
    paper's order: LULESH, FFmpeg, Bodytrack, PSO, CoMD. *)

val extensions : Opprox_sim.App.t list
(** Applications beyond the paper's set (currently k-means). *)

val all : Opprox_sim.App.t list
(** [paper @ extensions]. *)

val find : string -> Opprox_sim.App.t
(** Look up by [App.name].  Raises [Not_found] for unknown names. *)

val names : string list
