module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx
module Rng = Opprox_util.Rng

(* Autoregressive transformer-inference simulation: the outer loop decodes
   one token per iteration, attending over the hidden-state history (the
   KV cache) and pushing the new hidden state through four layer groups.
   The hidden state recurs across tokens, so an approximation error in an
   early phase corrupts the history every later token attends to — the
   paper's phase-sensitivity structure.

   The point of this app is its knob space: 13 ABs x 9 levels each gives
   9^13 ~ 2.5e12 joint configurations — far past any enumeration bound
   (Lint_app.enumeration_bound is 1e5) and past 1e12, so plans can only
   come from the greedy or stochastic search.  Everything else is sized to
   keep a run in the low milliseconds. *)

let max_level = 8
let n_groups = 4
let attention_window = 24
let refine_iters = 12

let ab_attn g = g (* 0..3 *)
let ab_ffn g = n_groups + g (* 4..7 *)
let ab_kv = 8
let ab_topk = 9
let ab_ln = 10
let ab_quant = 11
let ab_refine = 12

let abs =
  Array.append
    (Array.append
       (Array.init n_groups (fun g ->
            Ab.make
              ~name:(Printf.sprintf "attention_scores_g%d" g)
              ~technique:Ab.Perforation ~max_level))
       (Array.init n_groups (fun g ->
            Ab.make
              ~name:(Printf.sprintf "ffn_update_g%d" g)
              ~technique:Ab.Perforation ~max_level)))
    [|
      Ab.make ~name:"kv_cache_summary" ~technique:Ab.Memoization ~max_level;
      Ab.make ~name:"context_topk" ~technique:Ab.Truncation ~max_level;
      Ab.make ~name:"layernorm" ~technique:Ab.Perforation ~max_level;
      Ab.make ~name:"logit_precision" ~technique:Ab.Parameter_tuning ~max_level;
      Ab.make ~name:"decode_refinement" ~technique:Ab.Truncation ~max_level;
    |]

type st = {
  n_tokens : int;
  d : int;
  lpg : int;  (** layers per group *)
  seq : float array array;  (** input embeddings, one row per token *)
  hist : float array array;  (** hidden-state history (the KV cache) *)
  h : float array;  (** recurrent hidden state *)
  kv : float array;  (** memoized context summary *)
  drift : float array;
      (** integrated hidden-state drift: never decays, so an early-token
          perturbation shifts every later token's decode — the mechanism
          that makes phase-1 approximation the most damaging *)
  out : float array;  (** accumulated decoded output *)
  mutable entropy : float;  (** accumulated attention-weight trace *)
  mutable t : int;
}

let copy st =
  {
    st with
    seq = Array.map Array.copy st.seq;
    hist = Array.map Array.copy st.hist;
    h = Array.copy st.h;
    kv = Array.copy st.kv;
    drift = Array.copy st.drift;
    out = Array.copy st.out;
  }

let init env input =
  let n_tokens = Stdlib.max 8 (int_of_float input.(0)) in
  let d = Stdlib.max 4 (int_of_float input.(1)) in
  let layers = Stdlib.max n_groups (int_of_float input.(2)) in
  let rng = Rng.split (Env.rng env) in
  (* A drifting input sequence: successive embeddings are correlated, so
     attention over recent history is meaningful. *)
  let drift = Array.init d (fun _ -> Rng.range rng (-0.5) 0.5) in
  let seq =
    Array.init n_tokens (fun t ->
        Array.init d (fun i ->
            Float.sin ((0.37 *. float_of_int t *. drift.(i)) +. float_of_int i)
            +. Rng.gaussian_scaled rng ~mean:0.0 ~sigma:0.2))
  in
  {
    n_tokens;
    d;
    lpg = Stdlib.max 1 (layers / n_groups);
    seq;
    hist = Array.init n_tokens (fun _ -> Array.make d 0.0);
    h = Array.make d 0.0;
    kv = Array.make d 0.0;
    drift = Array.make d 0.0;
    out = Array.make d 0.0;
    entropy = 0.0;
    t = 0;
  }

let step env st =
  if st.t >= st.n_tokens then false
  else begin
    let t = Env.begin_outer_iter env in
    let d = st.d in
    let fd = float_of_int d in
    let window = Stdlib.min (t + 1) attention_window in

    (* AB9: context top-k — truncation shrinks how much of the recent
       history the attention sweep considers at all. *)
    Env.enter_ab env ~ab:ab_topk;
    let l_topk = Env.current_level env ~ab:ab_topk in
    let ctx = Stdlib.max 1 (Approx.truncated_count ~level:l_topk ~max_level window) in
    let avail = Stdlib.min ctx t in
    Env.charge env ~ab:ab_topk ctx;

    (* AB8: KV-cache summary — the mean of the attended history rows,
       recomputed only every (level+1) tokens and replayed stale in
       between. *)
    Env.enter_ab env ~ab:ab_kv;
    let l_kv = Env.current_level env ~ab:ab_kv in
    if avail > 0 && t mod (l_kv + 1) = 0 then begin
      Array.fill st.kv 0 d 0.0;
      for j = 0 to avail - 1 do
        let row = st.hist.(t - 1 - j) in
        for i = 0 to d - 1 do
          st.kv.(i) <- st.kv.(i) +. row.(i)
        done
      done;
      let inv = 1.0 /. float_of_int avail in
      for i = 0 to d - 1 do
        st.kv.(i) <- st.kv.(i) *. inv
      done;
      Env.charge env ~ab:ab_kv (avail * d)
    end
    else Env.charge env ~ab:ab_kv d;

    (* Four layer groups: perforated attention scoring feeding a
       perforated FFN/residual update of the hidden state. *)
    for g = 0 to n_groups - 1 do
      Env.enter_ab env ~ab:(ab_attn g);
      let la = Env.current_level env ~ab:(ab_attn g) in
      let acc = Array.make d 0.0 in
      let visited = ref 0 in
      if avail > 0 then
        Approx.perforate ~offset:(t + g) ~level:la avail (fun j ->
            let row = st.hist.(t - 1 - j) in
            let s = ref 0.0 in
            for i = 0 to d - 1 do
              s := !s +. (st.h.(i) *. row.(i))
            done;
            let w = Float.tanh ((!s /. fd) +. (0.1 *. float_of_int g)) in
            st.entropy <- st.entropy +. Float.abs w;
            for i = 0 to d - 1 do
              acc.(i) <- acc.(i) +. (w *. row.(i))
            done;
            incr visited;
            Env.charge env ~ab:(ab_attn g) (st.lpg * d));
      let scale = if !visited > 0 then 1.0 /. float_of_int !visited else 0.0 in

      Env.enter_ab env ~ab:(ab_ffn g);
      let lf = Env.current_level env ~ab:(ab_ffn g) in
      Approx.perforate ~offset:(t + g) ~level:lf d (fun i ->
          st.h.(i) <-
            Float.tanh
              ((0.85 *. st.h.(i))
              +. (0.25 *. st.seq.(t).(i))
              +. (0.30 *. scale *. acc.(i))
              +. (0.15 *. st.kv.(i)));
          Env.charge env ~ab:(ab_ffn g) (4 * st.lpg))
    done;

    (* AB10: layernorm — perforated centering of the hidden state. *)
    Env.enter_ab env ~ab:ab_ln;
    let l_ln = Env.current_level env ~ab:ab_ln in
    let mean = ref 0.0 and seen = ref 0 in
    Approx.perforate ~offset:t ~level:l_ln d (fun i ->
        mean := !mean +. st.h.(i);
        incr seen;
        Env.charge env ~ab:ab_ln 2);
    if !seen > 0 then begin
      let m = 0.5 *. !mean /. float_of_int !seen in
      Approx.perforate ~offset:t ~level:l_ln d (fun i -> st.h.(i) <- st.h.(i) -. m)
    end;

    (* AB11: logit precision — a tuned quantization grid; fewer bits cost
       less work and round harder. *)
    Env.enter_ab env ~ab:ab_quant;
    let l_q = Env.current_level env ~ab:ab_quant in
    let q = Float.max 2.0 (Approx.tune_parameter ~level:l_q ~max_level 32.0) in
    let bits = Stdlib.max 1 (int_of_float (Float.log q /. Float.log 2.0)) in
    Env.charge env ~ab:ab_quant (d * bits);
    let quant x = Float.round (x *. q) /. q in

    (* AB12: decode refinement — a truncated fixed-point loop pulling the
       token's output contribution toward the quantized hidden state. *)
    Env.enter_ab env ~ab:ab_refine;
    let l_r = Env.current_level env ~ab:ab_refine in
    let contrib = Array.make d 0.0 in
    Approx.truncate ~level:l_r ~max_level refine_iters (fun _k ->
        for i = 0 to d - 1 do
          contrib.(i) <-
            contrib.(i) +. (0.5 *. (1.0 +. quant (st.h.(i) +. st.drift.(i)) -. contrib.(i)))
        done;
        Env.charge env ~ab:ab_refine d);
    for i = 0 to d - 1 do
      st.out.(i) <- st.out.(i) +. contrib.(i)
    done;

    (* Commit this token's hidden state to the history and integrate the
       drift: the integral never decays, so damage done to early tokens
       keeps shifting every later decode. *)
    Array.blit st.h 0 st.hist.(t) 0 d;
    let gain = 4.0 /. float_of_int st.n_tokens in
    for i = 0 to d - 1 do
      st.drift.(i) <- st.drift.(i) +. (gain *. st.h.(i))
    done;
    Env.charge_base env d;
    st.t <- st.t + 1;
    true
  end

let finish env st =
  Env.charge_base env st.d;
  let inv = 1.0 /. float_of_int st.n_tokens in
  Array.append
    (Array.map (fun x -> x *. inv) st.out)
    [| st.entropy *. inv |]

let training_inputs =
  Opprox_sim.Inputs.grid [ [ 64.0; 96.0 ]; [ 16.0; 24.0 ]; [ 8.0 ] ]

let app =
  App.make_iterative ~name:"transformer"
    ~description:
      "autoregressive transformer-inference simulation: per-token decode over a KV-cache \
       history; 13 ABs x 9 levels (9^13 ~ 2.5e12 joint configs, stochastic-search only)"
    ~param_names:[| "n_tokens"; "d_model"; "n_layers" |]
    ~abs
    ~default_input:[| 96.0; 24.0; 8.0 |]
    ~training_inputs:(Array.append training_inputs [| [| 96.0; 24.0; 8.0 |] |])
    ~init ~step ~finish ~copy ~seed:0x7F08 ()
