(** Transformer-inference simulation (extension application): the
    deliberately huge knob space that defeats enumeration.

    The outer loop decodes one token per iteration.  Each token attends
    over the hidden-state history (the KV cache), runs four layer groups
    of perforated attention scoring + perforated FFN/residual updates of
    a recurrent hidden state, then layer-norms, quantizes, and refines
    the token's output contribution.  Because the hidden state and the
    attended history both recur, an early-phase approximation corrupts
    everything decoded after it — the paper's phase-sensitivity
    structure, at a scale only the stochastic search can plan for.

    Input parameters: [n_tokens], [d_model], [n_layers].

    Approximable blocks — 13 ABs, every one with [max_level = 8], so the
    joint configuration space is 9{^13} (~2.5e12 points, far past both
    {!Opprox_analysis.Lint_app.enumeration_bound} and 10{^12}):
    + [attention_scores_g0..g3] — {b loop perforation} over the attended
      context positions, per layer group,
    + [ffn_update_g0..g3] — {b loop perforation} over the hidden
      dimensions updated per token, per layer group,
    + [kv_cache_summary] — {b memoization}: the context-summary vector is
      recomputed every (level+1)-th token and replayed stale in between,
    + [context_topk] — {b truncation} of the attention window,
    + [layernorm] — {b loop perforation} of the centering pass,
    + [logit_precision] — {b parameter tuning} of the quantization grid,
    + [decode_refinement] — {b truncation} of the fixed-point decode
      loop.

    QoS metric: relative distortion of the accumulated decoded output
    plus an attention-entropy trace. *)

val app : Opprox_sim.App.t
