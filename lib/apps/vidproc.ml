module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx

let ab_blur = 0
let ab_edge = 1
let ab_deflate = 2

let abs =
  [|
    Ab.make ~name:"blur_filter" ~technique:Ab.Perforation ~max_level:5;
    Ab.make ~name:"edge_filter" ~technique:Ab.Memoization ~max_level:5;
    Ab.make ~name:"deflate_filter" ~technique:Ab.Perforation ~max_level:5;
  |]

let frame_width = 20
let frame_height = 20
let pixels = frame_width * frame_height

let clamp_pixel v = Float.max 0.0 (Float.min 255.0 v)

(* Synthetic source: a gradient background, a drifting bright square and a
   moving sinusoidal texture — enough structure for the filters to bite.
   Frames depend only on [t], so they are cached across runs. *)
let generate_frame_uncached ~t =
  let ft = float_of_int t in
  let frame = Array.make pixels 0.0 in
  let box_x = int_of_float (ft *. 0.7) mod frame_width in
  let box_y = int_of_float (ft *. 0.4) mod frame_height in
  for y = 0 to frame_height - 1 do
    for x = 0 to frame_width - 1 do
      let fx = float_of_int x and fy = float_of_int y in
      let gradient = 40.0 +. (120.0 *. fx /. float_of_int frame_width) in
      let texture = 30.0 *. sin ((0.5 *. fy) +. (0.06 *. ft)) *. cos (0.4 *. fx) in
      let in_box =
        let dx = (x - box_x + frame_width) mod frame_width in
        let dy = (y - box_y + frame_height) mod frame_height in
        dx < 6 && dy < 6
      in
      let box = if in_box then 80.0 else 0.0 in
      frame.((y * frame_width) + x) <- clamp_pixel (gradient +. texture +. box)
    done
  done;
  frame

(* Frames are deterministic in [t] and never mutated after generation, so
   the cache may be shared across pool domains; the mutex only guards the
   table structure itself. *)
let frame_cache : (int, float array) Hashtbl.t = Hashtbl.create 64
let frame_cache_mutex = Mutex.create ()

let generate_frame ~t =
  let cached =
    Mutex.lock frame_cache_mutex;
    let f = Hashtbl.find_opt frame_cache t in
    Mutex.unlock frame_cache_mutex;
    f
  in
  match cached with
  | Some f -> f
  | None ->
      let f = generate_frame_uncached ~t in
      Mutex.lock frame_cache_mutex;
      (if not (Hashtbl.mem frame_cache t) then Hashtbl.replace frame_cache t f);
      Mutex.unlock frame_cache_mutex;
      f

let at frame x y = frame.((y * frame_width) + x)

(* 3x3 box sum of row [y] into [dst] (clamped borders), shared by the blur
   and deflate kernels. *)
let box_sum_row frame y dst =
  let w = frame_width in
  let y0 = Stdlib.max 0 (y - 1) * w
  and y1 = y * w
  and y2 = Stdlib.min (frame_height - 1) (y + 1) * w in
  for x = 0 to w - 1 do
    let x0 = Stdlib.max 0 (x - 1) and x1 = Stdlib.min (w - 1) (x + 1) in
    dst.(x) <-
      frame.(y0 + x0) +. frame.(y0 + x) +. frame.(y0 + x1)
      +. frame.(y1 + x0) +. frame.(y1 + x) +. frame.(y1 + x1)
      +. frame.(y2 + x0) +. frame.(y2 + x) +. frame.(y2 + x1)
  done

let clip lo hi v = Stdlib.max lo (Stdlib.min hi v)

(* AB0: 3x3 box blur.  Perforation over rows with a rotating offset:
   skipped rows copy the previously computed blurred row. *)
let blur_kernel env ~iter frame =
  let level = Env.current_level env ~ab:ab_blur in
  Env.enter_ab env ~ab:ab_blur;
  let out = Array.make pixels 0.0 in
  let done_rows = Array.make frame_height false in
  let sums = Array.make frame_width 0.0 in
  Approx.perforate ~offset:iter ~level frame_height (fun y ->
      box_sum_row frame y sums;
      for x = 0 to frame_width - 1 do
        out.((y * frame_width) + x) <- sums.(x) /. 9.0
      done;
      done_rows.(y) <- true;
      Env.charge env ~ab:ab_blur (3 * frame_width));
  (* Skipped rows are linearly interpolated from the nearest computed
     rows (vertical subsampling), so perforation degrades smoothly. *)
  let prev_done = Array.make frame_height (-1) in
  let next_done = Array.make frame_height (-1) in
  let last = ref (-1) in
  for y = 0 to frame_height - 1 do
    if done_rows.(y) then last := y;
    prev_done.(y) <- !last
  done;
  last := -1;
  for y = frame_height - 1 downto 0 do
    if done_rows.(y) then last := y;
    next_done.(y) <- !last
  done;
  for y = 0 to frame_height - 1 do
    if not done_rows.(y) then begin
      let a = prev_done.(y) and b = next_done.(y) in
      (match (a, b) with
      | -1, -1 -> Array.blit frame (y * frame_width) out (y * frame_width) frame_width
      | -1, b -> Array.blit out (b * frame_width) out (y * frame_width) frame_width
      | a, -1 -> Array.blit out (a * frame_width) out (y * frame_width) frame_width
      | a, b ->
          let w = float_of_int (y - a) /. float_of_int (b - a) in
          for x = 0 to frame_width - 1 do
            out.((y * frame_width) + x) <-
              ((1.0 -. w) *. out.((a * frame_width) + x)) +. (w *. out.((b * frame_width) + x))
          done);
      Env.charge env ~ab:ab_blur 2
    end
  done;
  out

(* AB1: edge enhancement (unsharp masking).  Memoization over rows: the
   edge-response row is recomputed every (level+1)-th row and replayed in
   between. *)
let edge_kernel env ~iter frame =
  let level = Env.current_level env ~ab:ab_edge in
  Env.enter_ab env ~ab:ab_edge;
  let out = Array.make pixels 0.0 in
  let response = Array.make frame_width 0.0 in
  Approx.memoize ~offset:iter ~level frame_height
    ~compute:(fun y ->
      for x = 0 to frame_width - 1 do
        let x0 = clip 0 (frame_width - 1) (x - 1) and x1 = clip 0 (frame_width - 1) (x + 1) in
        let y0 = clip 0 (frame_height - 1) (y - 1) and y1 = clip 0 (frame_height - 1) (y + 1) in
        let laplacian =
          (4.0 *. at frame x y) -. at frame x0 y -. at frame x1 y -. at frame x y0
          -. at frame x y1
        in
        response.(x) <- laplacian
      done;
      Env.charge env ~ab:ab_edge (4 * frame_width);
      Array.copy response)
    ~use:(fun y resp ->
      for x = 0 to frame_width - 1 do
        out.((y * frame_width) + x) <- clamp_pixel (at frame x y +. (0.45 *. resp.(x)))
      done;
      Env.charge env ~ab:ab_edge frame_width);
  out

(* AB2: deflate denoising (suppress bright speckles by pulling pixels down
   toward the local mean).  Perforation over rows: skipped rows pass
   through unfiltered. *)
let deflate_kernel env ~iter frame =
  let level = Env.current_level env ~ab:ab_deflate in
  Env.enter_ab env ~ab:ab_deflate;
  let out = Array.copy frame in
  let sums = Array.make frame_width 0.0 in
  Approx.perforate ~offset:iter ~level frame_height (fun y ->
      box_sum_row frame y sums;
      for x = 0 to frame_width - 1 do
        let mean = sums.(x) /. 9.0 in
        let v = at frame x y in
        out.((y * frame_width) + x) <- (if v > mean then (0.5 *. v) +. (0.5 *. mean) else v)
      done;
      Env.charge env ~ab:ab_deflate (3 * frame_width));
  out

(* Open-loop DPCM encoder: each frame is coded as the quantized delta of
   successive *filtered* frames, and the decoder accumulates deltas onto
   its own reconstruction.  Quantization residues therefore never
   self-correct — any filtering error in frame k leaves a permanent offset
   in every later reconstructed frame (the paper's Sec. 5.1.1 inter-frame
   dependency: "the second encoded frame only keeps the information
   relative to the first"). *)
let code_cap = 3.0 (* bitrate ceiling: at most +-cap codes per pixel per frame *)

let encode env ~q ~prev_filtered ~recon filtered =
  for i = 0 to pixels - 1 do
    let delta = filtered.(i) -. prev_filtered.(i) in
    let code = Float.of_int (int_of_float (delta /. q)) in
    let code = Float.max (-.code_cap) (Float.min code_cap code) in
    recon.(i) <- clamp_pixel (recon.(i) +. (code *. q))
  done;
  Env.charge_base env (2 * pixels)

type st = {
  n_frames : int;
  q : float;
  edge_first : bool;
  mutable prev_filtered : float array;
  recon : float array;
  output : float array;
  mutable t : int;
}

let copy st =
  {
    st with
    prev_filtered = Array.copy st.prev_filtered;
    recon = Array.copy st.recon;
    output = Array.copy st.output;
  }

let init _env input =
  let fps = clip 10 60 (int_of_float input.(0)) in
  let duration = clip 1 10 (int_of_float input.(1)) in
  let q = Float.max 1.0 input.(2) in
  let edge_first = int_of_float input.(3) mod 2 = 0 in
  let n_frames = fps * duration in
  {
    n_frames;
    q;
    edge_first;
    prev_filtered = Array.make pixels 0.0;
    recon = Array.make pixels 0.0;
    output = Array.make (n_frames * pixels) 0.0;
    t = 0;
  }

let step env st =
  if st.t >= st.n_frames then false
  else begin
    let t = st.t in
    let iter = Env.begin_outer_iter env in
    let frame = generate_frame ~t in
    Env.charge_base env pixels;
    let blurred = blur_kernel env ~iter frame in
    let filtered =
      if st.edge_first then deflate_kernel env ~iter (edge_kernel env ~iter blurred)
      else edge_kernel env ~iter (deflate_kernel env ~iter blurred)
    in
    encode env ~q:st.q ~prev_filtered:st.prev_filtered ~recon:st.recon filtered;
    st.prev_filtered <- filtered;
    Array.blit st.recon 0 st.output (t * pixels) pixels;
    st.t <- t + 1;
    true
  end

let finish _env st = st.output

let training_inputs =
  Opprox_sim.Inputs.grid
    [ [ 24.0; 30.0 ]; [ 3.0; 4.0 ]; [ 4.0; 10.0 ]; [ 0.0; 1.0 ] ]

let app =
  App.make_iterative ~name:"ffmpeg"
    ~description:"video filter chain + delta encoder; streaming per-frame outer loop"
    ~param_names:[| "fps"; "duration_s"; "bitrate_q"; "filter_order" |]
    ~abs
    ~default_input:[| 24.0; 4.0; 6.0; 0.0 |]
    ~training_inputs:(Opprox_sim.Inputs.with_default [| 24.0; 4.0; 6.0; 0.0 |] training_inputs)
    ~init ~step ~finish ~copy ~report_metric:App.Psnr ~seed:0xFF_4 ()
