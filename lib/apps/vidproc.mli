(** FFmpeg-like video filter/encode pipeline (paper Sec. 4.1).

    Synthetic grayscale frames flow through a filter chain (blur, edge
    enhancement, deflate denoising) and a delta encoder with a dead-zone
    quantizer.  The outer loop enumerates frames: its iteration count is
    fully determined by the [fps] and [duration] inputs and is independent
    of the approximation levels (a classic streaming-analytics loop).

    The encoder codes each frame as a quantized delta against the previous
    {e reconstructed} frame; residuals below the dead zone are never
    corrected, so errors introduced in early frames propagate through the
    remaining stream (paper Sec. 5.1.1: FFmpeg's inter-frame dependency) —
    approximating phase 1 degrades PSNR the most.

    The [filter_order] input swaps the edge and deflate stages; the two
    orders produce visibly different output (paper Fig. 7) and different
    AB call-context sequences, exercising the control-flow classifier.

    Input parameters (Table 1): [fps], [duration_s], [bitrate_q]
    (quantizer step; higher = lower bitrate), [filter_order].

    Approximable blocks:
    + [blur_filter] — {b loop perforation} over rows (skipped rows reuse
      the previous blurred row),
    + [edge_filter] — {b memoization} over rows (the edge response of the
      last computed row is replayed),
    + [deflate_filter] — {b loop perforation} over rows (skipped rows pass
      through unfiltered).

    QoS metric: PSNR of the approximate reconstruction against the exact
    pipeline's reconstruction. *)

val app : Opprox_sim.App.t

val frame_width : int
val frame_height : int

val generate_frame : t:int -> float array
(** The synthetic source frame at time index [t] (exposed for tests);
    row-major [frame_width * frame_height], values in [0, 255]. *)
