module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Dtree = Opprox_ml.Dtree
module Metrics = Opprox_obs.Metrics

let log_src = Logs.Src.create "opprox.cfmodel" ~doc:"OPPROX control-flow classifier"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_unknown = Metrics.counter "cfmodel.unknown_signature"
let signature_length = 8

type t = {
  classes : (int list, int) Hashtbl.t;
  tree : Dtree.t;
  accuracy : float;
  n_classes : int;
}

let rec take n = function
  | [] -> []
  | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest

let signature_of_trace trace = take signature_length trace

let build app ~inputs =
  if Array.length inputs = 0 then invalid_arg "Cfmodel.build: no inputs";
  let classes = Hashtbl.create 8 in
  let labels =
    Array.map
      (fun input ->
        let exact = Driver.run_exact app input in
        let signature = signature_of_trace exact.trace in
        match Hashtbl.find_opt classes signature with
        | Some id -> id
        | None ->
            let id = Hashtbl.length classes in
            Hashtbl.replace classes signature id;
            id)
      inputs
  in
  let tree = Dtree.fit inputs labels in
  let accuracy = Dtree.accuracy tree inputs labels in
  { classes; tree; accuracy; n_classes = Hashtbl.length classes }

let classify t input = Dtree.predict t.tree input

let class_of_trace t trace =
  match Hashtbl.find_opt t.classes (signature_of_trace trace) with
  | Some id -> id
  | None ->
      (* Falling back to class 0 keeps the pipeline alive, but a trace the
         classifier never saw means the training inputs missed a control
         flow — surface it instead of mapping silently. *)
      Metrics.incr m_unknown;
      Log.warn (fun m ->
          m "unseen control-flow signature [%s]; falling back to class 0"
            (String.concat ";" (List.map string_of_int (signature_of_trace trace))));
      0

let n_classes t = t.n_classes
let training_accuracy t = t.accuracy

(* -------------------------------------------------------- serialization *)

module Sexp = Opprox_util.Sexp

let to_sexp t =
  let class_entries =
    Hashtbl.fold
      (fun signature id acc ->
        Sexp.list [ Sexp.list (List.map Sexp.int signature); Sexp.int id ] :: acc)
      t.classes []
  in
  Sexp.record
    [
      ("classes", Sexp.list class_entries);
      ("tree", Dtree.to_sexp t.tree);
      ("accuracy", Sexp.float t.accuracy);
      ("n_classes", Sexp.int t.n_classes);
    ]

let of_sexp sexp =
  let classes = Hashtbl.create 8 in
  List.iter
    (fun entry ->
      match Sexp.to_list entry with
      | [ signature; id ] ->
          Hashtbl.replace classes
            (List.map Sexp.to_int (Sexp.to_list signature))
            (Sexp.to_int id)
      | _ -> failwith "Cfmodel.of_sexp: malformed class entry")
    (Sexp.to_list (Sexp.field sexp "classes"));
  let n_classes = Sexp.to_int (Sexp.field sexp "n_classes") in
  (* Signatures map 1:1 to class ids, so a persisted [n_classes] that
     disagrees with the class table marks a corrupted or hand-edited
     artifact; loading it would misindex every per-class model. *)
  if n_classes <> Hashtbl.length classes then
    failwith
      (Printf.sprintf "Cfmodel.of_sexp: n_classes %d disagrees with %d persisted signatures"
         n_classes (Hashtbl.length classes));
  {
    classes;
    tree = Dtree.of_sexp (Sexp.field sexp "tree");
    accuracy = Sexp.to_float (Sexp.field sexp "accuracy");
    n_classes;
  }
