(** Control-flow prediction (paper Sec. 3.4).

    The application's control flow — which sequence of AB call-contexts an
    execution follows — can change with the input parameters (e.g. the
    filter order in FFmpeg).  OPPROX extracts a control-flow {e signature}
    from each execution log, assigns distinct signatures class ids, and
    trains a decision-tree classifier that predicts the class from the
    input parameters, so per-class models can be selected before running. *)

type t

val signature_length : int
(** Number of leading call-context entries that form the signature (the
    per-outer-iteration AB pattern repeats, so a short prefix identifies
    the flow). *)

val signature_of_trace : int list -> int list
(** Truncate a trace to its signature. *)

val build : Opprox_sim.App.t -> inputs:float array array -> t
(** Run each input exactly (memoized), extract signatures, assign class
    ids in first-seen order, and fit the decision tree. *)

val classify : t -> float array -> int
(** Predict the control-flow class of an input from its parameters. *)

val class_of_trace : t -> int list -> int
(** Class id of an observed trace; unseen signatures map to class 0,
    logging a warning and bumping the [cfmodel.unknown_signature]
    metric (a coverage gap in the training inputs). *)

val n_classes : t -> int

val training_accuracy : t -> float
(** Decision-tree accuracy on the signatures it was built from. *)

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize the signature table and the trained classifier. *)

val of_sexp : Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp}; raises [Failure] on malformed input,
    including a persisted [n_classes] that disagrees with the class
    table (a corrupted artifact would misindex per-class models). *)
