module App = Opprox_sim.App
module Env = Opprox_sim.Env
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Qos = Opprox_sim.Qos
module Rng = Opprox_util.Rng
module Diagnostic = Opprox_analysis.Diagnostic
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

let log_src = Logs.Src.create "opprox.controller" ~doc:"OPPROX runtime controller"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_runs = Metrics.counter "controller.runs"
let m_phases = Metrics.counter "controller.phases"
let m_replans = Metrics.counter "controller.replans"
let m_violations = Metrics.counter "controller.budget_violations"

type config = { drift_tol : float; max_replans : int }

let default_config = { drift_tol = 0.25; max_replans = 4 }

type telemetry = {
  phase : int;
  n_phases : int;
  drift : float;
  observed_work : float;
  predicted_work : float;
  remaining_budget : float;
}

type replanner = telemetry -> Optimizer.plan option

type phase_report = {
  phase : int;
  levels : int array;
  predicted_work : float;
  observed_work : float;
  drift : float;
  replanned : bool;
}

type outcome = {
  evaluation : Driver.evaluation;
  schedule : Schedule.t;
  phases : phase_report list;
  replans : int;
  plan_budget : float;
  within_budget : bool;
  steps : int;
}

let budget_eps budget = 1e-6 *. Float.max 1.0 (Float.abs budget)

(* Conservative estimate of the QoS a completed phase consumed: the plan's
   upper-CI prediction, inflated by the observed work drift (capped at
   doubling — drift is a work-space signal, not a QoS measurement, so the
   inflation only hedges, it does not pretend to measure). *)
let consumed_estimate (choice : Optimizer.phase_choice) ~drift =
  Float.max 0.0 choice.Optimizer.predicted.Models.qos_hi *. (1.0 +. Float.min 1.0 drift)

let validate_config config =
  if not (config.drift_tol >= 0.0) (* also rejects NaN *) then
    invalid_arg "Controller.run: drift_tol must be >= 0";
  if config.max_replans < 0 then invalid_arg "Controller.run: max_replans must be >= 0"

let run ?(config = default_config) ?replan ~models ~roi ~input (plan : Optimizer.plan) =
  validate_config config;
  let app = Models.app models in
  let mk =
    match app.App.iterative with
    | Some mk -> mk
    | None ->
        invalid_arg
          (Printf.sprintf "Controller.run: %S exposes no iterative interface" app.App.name)
  in
  (* Same pre-flight as Opprox.apply: plans can arrive deserialized or
     doctored, and a mid-run replan inherits whatever the base plan got
     away with. *)
  Diagnostic.raise_errors ~strict:false (Optimizer.lint ~models plan);
  Metrics.incr m_runs;
  Trace.with_span ~cat:"controller" "controller.run" @@ fun () ->
  let exact = Driver.run_exact app input in
  let i_total = exact.Driver.iters in
  let total_exact_work = float_of_int exact.Driver.work in
  let n_phases = Schedule.n_phases plan.Optimizer.schedule in
  let n_abs = App.n_abs app in
  (* The exact run's work, split over this plan's phases.  Computed through
     the driver's evaluation path, so it rides the whole-evaluation memo
     and checkpoint reuse — no extra exact simulation is charged. *)
  let exact_profile =
    let ev = Driver.evaluate app (Schedule.uniform ~n_phases (Array.make n_abs 0)) input in
    Array.map float_of_int ev.Driver.work_per_phase
  in
  (* Per-phase work the plan predicts: the phase's share of exact work
     minus the whole-run savings its speedup prediction promises (the
     models' speedup is whole-run-with-only-this-phase-approximated, so
     all its savings land in this phase — the same algebra as
     Optimizer.compose_speedup). *)
  let predicted_work (choice : Optimizer.phase_choice) p =
    let s = Float.max 0.01 choice.Optimizer.predicted.Models.speedup in
    let savings = (1.0 -. (1.0 /. s)) *. total_exact_work in
    Float.max 1.0 (exact_profile.(p) -. savings)
  in
  let replanner =
    match replan with
    | Some f -> f
    | None ->
        let solve = lazy (Optimizer.solver ~models ~roi ~input ()) in
        fun (t : telemetry) ->
          Some ((Lazy.force solve) ~first_phase:(t.phase + 1) ~budget:t.remaining_budget ())
  in
  let choices = Array.of_list plan.Optimizer.choices in
  if Array.length choices <> n_phases then
    invalid_arg "Controller.run: plan carries fewer choices than phases";
  let sched = ref plan.Optimizer.schedule in
  let rng = Rng.create (Driver.seed_for app input) in
  let env = ref (Env.create ~rng ~sched:!sched ~expected_iters:i_total ~n_abs) in
  let inst = ref (mk !env input) in
  let running = ref true in
  let steps = ref 0 in
  let replans = ref 0 in
  let reports = ref [] in
  let consumed_est = ref 0.0 in
  let boundary q = Driver.phase_boundary ~n_phases ~i_total q in
  for p = 0 to n_phases - 1 do
    Metrics.incr m_phases;
    (* Extra iterations beyond the exact count belong to the last phase
       (paper footnote 2), so the last phase runs to termination. *)
    let upto = if p = n_phases - 1 then max_int else boundary (p + 1) in
    while !running && Env.outer_iters !env < upto do
      running := (!inst).App.step ();
      if !running then incr steps
    done;
    let observed = float_of_int (Env.work_per_phase !env).(p) in
    let predicted = predicted_work choices.(p) p in
    let drift = Float.abs (observed -. predicted) /. Float.max 1.0 predicted in
    consumed_est := !consumed_est +. consumed_estimate choices.(p) ~drift;
    let replanned =
      if
        (not !running) || p >= n_phases - 1 || drift <= config.drift_tol
        || !replans >= config.max_replans
      then false
      else begin
        let remaining = Float.max 0.0 (plan.Optimizer.budget -. !consumed_est) in
        let t =
          {
            phase = p;
            n_phases;
            drift;
            observed_work = observed;
            predicted_work = predicted;
            remaining_budget = remaining;
          }
        in
        match Trace.with_span ~cat:"controller" "controller.replan" (fun () -> replanner t) with
        | None -> false
        | Some plan' ->
            if Schedule.n_phases plan'.Optimizer.schedule <> n_phases then
              invalid_arg "Controller.run: replan changed the phase count";
            Diagnostic.raise_errors ~strict:false (Optimizer.lint ~models plan');
            (* Keep the executed prefix as it actually ran; adopt the
               re-solved suffix. *)
            let merged =
              Schedule.make
                (Array.init n_phases (fun q ->
                     if q <= p then Schedule.levels_of_phase !sched q
                     else Schedule.levels_of_phase plan'.Optimizer.schedule q))
            in
            if Schedule.equal merged !sched then false
            else begin
              incr replans;
              Metrics.incr m_replans;
              Log.info (fun m ->
                  m "%s: drift %.2f > tol %.2f after phase %d; replanned phases %d..%d against \
                     remaining budget %.3f"
                    app.App.name drift config.drift_tol p (p + 1) (n_phases - 1) remaining);
              (* Swap the schedule under the live run: snapshot the
                 phase-boundary state, rebuild the environment under the
                 merged schedule, and clone the instance onto it — the
                 Env.resume machinery the driver's checkpoints use, so
                 nothing executed so far is re-simulated. *)
              let snap = Env.snapshot !env in
              let env' = Env.resume snap ~sched:merged ~expected_iters:i_total in
              inst := (!inst).App.clone env';
              env := env';
              sched := merged;
              List.iter
                (fun (c : Optimizer.phase_choice) ->
                  if c.Optimizer.phase > p then choices.(c.Optimizer.phase) <- c)
                plan'.Optimizer.choices;
              true
            end
      end
    in
    reports :=
      {
        phase = p;
        levels = Schedule.levels_of_phase !sched p;
        predicted_work = predicted;
        observed_work = observed;
        drift;
        replanned;
      }
      :: !reports
  done;
  let output = (!inst).App.finish () in
  let work = Env.total_work !env in
  let psnr, qos_degradation =
    match app.App.report_metric with
    | App.Distortion ->
        (None, Qos.relative_distortion ~exact:exact.Driver.output ~approx:output)
    | App.Psnr ->
        let p = Qos.psnr ~exact:exact.Driver.output ~approx:output in
        (Some p, Qos.psnr_to_degradation p)
  in
  let evaluation =
    {
      Driver.sched = !sched;
      qos_degradation;
      psnr;
      speedup = float_of_int exact.Driver.work /. float_of_int (Stdlib.max work 1);
      work;
      outer_iters = Env.outer_iters !env;
      exact_iters = i_total;
      trace = Env.trace !env;
      work_per_ab = Array.init n_abs (Env.work_of_ab !env);
      work_per_phase = Env.work_per_phase !env;
    }
  in
  let within_budget =
    qos_degradation <= plan.Optimizer.budget +. budget_eps plan.Optimizer.budget
  in
  if not within_budget then Metrics.incr m_violations;
  {
    evaluation;
    schedule = !sched;
    phases = List.rev !reports;
    replans = !replans;
    plan_budget = plan.Optimizer.budget;
    within_budget;
    steps = !steps;
  }
