(** Online phase-boundary recontrol.

    OPPROX commits to a static plan before the run starts, which is
    exactly where it loses on inputs drawn off the training distribution:
    the plan's per-phase predictions stop matching what the run actually
    does, and by the time the output is scored the budget is already
    blown.  The controller executes a plan {e phase by phase} and checks
    it against reality at every phase boundary — the one place mid-run
    state is well defined (the same boundaries the driver's checkpoint
    cache keys on, via {!Opprox_sim.Driver.phase_boundary}).

    At the end of each phase the controller compares the work the phase
    {e actually} charged against what the plan's per-phase speedup
    prediction implied.  When the relative drift exceeds [drift_tol], the
    remaining phases are re-solved against the budget still unspent
    ({!Optimizer.solver} with [~first_phase], reusing one compiled solver
    across every replan), and the run continues under the merged
    schedule.  The switch uses {!Opprox_sim.Env.snapshot} /
    {!Opprox_sim.Env.resume} plus {!Opprox_sim.App.instance} cloning —
    the same machinery behind the driver's checkpoint reuse — so {b no
    completed work is ever re-simulated}: the outcome's [steps] counter
    equals the final outer-iteration count whatever happened.

    A zero-drift run (or [drift_tol = infinity]) never replans and is
    bit-identical to [Driver.evaluate] of the static plan — the
    controller creates its environment exactly as the driver does (same
    {!Opprox_sim.Driver.seed_for} seed, same expected iteration count).

    Metrics: [controller.runs], [controller.phases] (boundaries
    inspected), [controller.replans], [controller.budget_violations]
    (final QoS past the plan budget).  Spans: [controller.run] and one
    [controller.replan] per re-solve. *)

type config = {
  drift_tol : float;
      (** relative per-phase work drift that triggers a replan; [0] replans
          at every boundary with any drift, [infinity] never replans *)
  max_replans : int;  (** hard cap on re-solves per run *)
}

val default_config : config
(** [drift_tol = 0.25], [max_replans = 4]. *)

type telemetry = {
  phase : int;  (** phase that just completed *)
  n_phases : int;
  drift : float;  (** relative work drift observed for that phase *)
  observed_work : float;
  predicted_work : float;
  remaining_budget : float;
      (** plan budget minus the conservative estimate of QoS already
          consumed by the executed phases *)
}
(** What the controller knows at a phase boundary — also the payload of
    the serving protocol's telemetry frames (streaming recontrol). *)

type replanner = telemetry -> Optimizer.plan option
(** Policy invoked when drift exceeds tolerance.  Returning [None] (or a
    plan whose suffix schedule is unchanged) keeps the current schedule.
    A returned plan must keep the phase count; only its phases after
    [telemetry.phase] are adopted.  The default replanner solves locally
    with [Optimizer.solver ~first_phase:(phase+1)
    ~budget:remaining_budget]; the serving client substitutes one that
    ships the telemetry to a daemon and applies the returned plan
    delta. *)

type phase_report = {
  phase : int;
  levels : int array;  (** levels this phase actually ran under *)
  predicted_work : float;
  observed_work : float;
  drift : float;
  replanned : bool;  (** a replan fired at this phase's end boundary *)
}

type outcome = {
  evaluation : Opprox_sim.Driver.evaluation;
      (** scored like any driver evaluation, under the merged schedule *)
  schedule : Opprox_sim.Schedule.t;  (** the schedule that actually ran *)
  phases : phase_report list;  (** one report per phase, in phase order *)
  replans : int;
  plan_budget : float;
  within_budget : bool;
      (** final QoS degradation within the plan's budget (+eps) *)
  steps : int;
      (** outer iterations actually stepped; equals
          [evaluation.outer_iters] — the no-re-simulation proof *)
}

val run :
  ?config:config ->
  ?replan:replanner ->
  models:Models.t ->
  roi:float array ->
  input:float array ->
  Optimizer.plan ->
  outcome
(** Execute [plan] under control.  The plan is audited first
    ({!Optimizer.lint}, errors raise
    {!Opprox_analysis.Diagnostic.Lint_error}).  Requires an application
    built with {!Opprox_sim.App.make_iterative} — controlling an opaque
    run is impossible (no phase-boundary state) and raises
    [Invalid_argument].  [roi] is only used by the default replanner;
    pass the trained pipeline's ROI vector. *)
