module App = Opprox_sim.App
module Polyreg = Opprox_ml.Polyreg
module Confidence = Opprox_ml.Confidence
module Stats = Opprox_util.Stats
module Rng = Opprox_util.Rng
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_models = Opprox_analysis.Lint_models

let log_src = Logs.Src.create "opprox.models" ~doc:"OPPROX model fitting"

module Log = (val Logs.src_log log_src : Logs.LOG)

type prediction = {
  speedup : float;
  qos : float;
  speedup_lo : float;
  qos_hi : float;
  iters_ratio : float;
}

type config = {
  regression : Polyreg.config;
  ci_p : float;
  min_class_samples : int;
  seed : int;
}

let default_config =
  { regression = Polyreg.default_config; ci_p = 0.95; min_class_samples = 40; seed = 0x40DE1 }

type phase_models = {
  iter_model : Polyreg.t;
  local_speedup : Polyreg.t array; (* indexed by AB *)
  local_qos : Polyreg.t array;
  overall_speedup : Polyreg.t;
  overall_qos : Polyreg.t;
  speedup_ci : Confidence.t;
  qos_ci : Confidence.t;
}

type t = {
  app : App.t;
  n_phases : int;
  config : config;
  classes : Cfmodel.t;
  (* class id -> per-phase models; class 0 doubles as the fallback trained
     on every sample. *)
  per_class : phase_models array array;
  (* (class id, training-sample count) at build time; [] for model files
     saved before the counts were recorded.  Kept for the static checker's
     thin-class audit (MODEL004). *)
  class_samples : (int * int) list;
}

let iter_features (s : Training.sample) =
  Array.append (Array.map float_of_int s.levels) s.input

(* QoS degradations are heavy-tailed (an unstable corner of the AL space
   can produce errors orders of magnitude above the useful operating
   region), so QoS models are fit on log(1 + qos): regression error in the
   tail no longer wrecks the fit near the budgets the optimizer cares
   about, and the confidence interval becomes multiplicative. *)
let log_qos q = Float.log1p (Float.max 0.0 q)
let unlog_qos l = Float.max 0.0 (Float.expm1 l)

let local_features (s : Training.sample) ~ab = Array.append [| float_of_int s.levels.(ab) |] s.input

(* Overall-model features: the local models' predictions for each AB's
   level in this sample, plus the estimated iteration ratio (paper: "we
   explicitly use the estimated value as an input feature"). *)
let overall_features pm (s : Training.sample) =
  let n_abs = Array.length pm.local_speedup in
  let iters_est = Polyreg.predict pm.iter_model (iter_features s) in
  Array.init (n_abs + 1) (fun i ->
      if i = n_abs then iters_est else Polyreg.predict pm.local_speedup.(i) (local_features s ~ab:i))

let overall_qos_features pm (s : Training.sample) =
  let n_abs = Array.length pm.local_qos in
  let iters_est = Polyreg.predict pm.iter_model (iter_features s) in
  Array.init (n_abs + 1) (fun i ->
      if i = n_abs then iters_est else Polyreg.predict pm.local_qos.(i) (local_features s ~ab:i))

let fit_phase ~config ~rng ~app samples =
  let n_abs = App.n_abs app in
  let all_rows f = Array.map f samples in
  let iter_model =
    Polyreg.fit ~config:config.regression ~rng (all_rows iter_features)
      (Array.map (fun (s : Training.sample) -> s.iters_ratio) samples)
  in
  let fit_local target_of ab =
    (* Local sweeps have every other AB at level 0; joint samples would
       contaminate the local relationship, so filter to locals — but fall
       back to every sample when an AB has no dedicated sweep data. *)
    let locals =
      Array.of_seq
        (Seq.filter
           (fun (s : Training.sample) ->
             Array.for_all Fun.id (Array.mapi (fun i l -> i = ab || l = 0) s.levels))
           (Array.to_seq samples))
    in
    let data = if Array.length locals >= 4 then locals else samples in
    Polyreg.fit ~config:config.regression ~rng
      (Array.map (fun s -> local_features s ~ab) data)
      (Array.map target_of data)
  in
  let local_speedup = Array.init n_abs (fit_local (fun s -> s.speedup)) in
  let local_qos = Array.init n_abs (fit_local (fun (s : Training.sample) -> log_qos s.qos)) in
  let partial =
    {
      iter_model;
      local_speedup;
      local_qos;
      overall_speedup = iter_model (* placeholder, replaced below *);
      overall_qos = iter_model;
      speedup_ci = Confidence.of_residuals [||];
      qos_ci = Confidence.of_residuals [||];
    }
  in
  let overall_speedup =
    Polyreg.fit ~config:config.regression ~rng
      (Array.map (overall_features partial) samples)
      (Array.map (fun (s : Training.sample) -> s.speedup) samples)
  in
  let overall_qos =
    Polyreg.fit ~config:config.regression ~rng
      (Array.map (overall_qos_features partial) samples)
      (Array.map (fun (s : Training.sample) -> log_qos s.qos) samples)
  in
  {
    partial with
    overall_speedup;
    overall_qos;
    speedup_ci = Confidence.of_model ~p:config.ci_p overall_speedup;
    qos_ci = Confidence.of_model ~p:config.ci_p overall_qos;
  }


let models_for t input =
  let cls = Cfmodel.classify t.classes input in
  if cls >= 0 && cls < Array.length t.per_class then t.per_class.(cls) else t.per_class.(0)

let predict t ~input ~phase ~levels =
  if phase < 0 || phase >= t.n_phases then invalid_arg "Models.predict: bad phase";
  if Array.length levels <> App.n_abs t.app then invalid_arg "Models.predict: bad levels arity";
  if Array.for_all (fun l -> l = 0) levels then
    (* Exact execution needs no model: speedup 1, no degradation. *)
    { speedup = 1.0; qos = 0.0; speedup_lo = 1.0; qos_hi = 0.0; iters_ratio = 1.0 }
  else
  let pm = (models_for t input).(phase) in
  let pseudo : Training.sample =
    {
      input;
      phase;
      levels;
      speedup = 0.0;
      qos = 0.0;
      iters_ratio = 0.0;
      trace_class = 0;
    }
  in
  let iters_ratio = Polyreg.predict pm.iter_model (iter_features pseudo) in
  let speedup = Polyreg.predict pm.overall_speedup (overall_features pm pseudo) in
  let log_q = Polyreg.predict pm.overall_qos (overall_qos_features pm pseudo) in
  let speedup = Float.max 0.01 speedup in
  {
    speedup;
    qos = unlog_qos log_q;
    speedup_lo = Float.max 0.01 (Confidence.lower pm.speedup_ci speedup);
    qos_hi = unlog_qos (Confidence.upper pm.qos_ci log_q);
    iters_ratio;
  }

(* Compiled per-input predictor: classification, model selection, and
   regression-model compilation happen once; each call reuses the scratch
   feature buffers below.  The arithmetic mirrors [predict] exactly, with
   one redundancy removed: [predict] evaluates the iteration model three
   times per query (once directly, once inside each overall feature
   vector) — here it is evaluated once and the identical float reused. *)
let predictor t ~input =
  let n_abs = App.n_abs t.app in
  let n_input = Array.length input in
  let compiled =
    Array.map
      (fun pm ->
        ( pm,
          Polyreg.predictor pm.iter_model,
          Array.map Polyreg.predictor pm.local_speedup,
          Array.map Polyreg.predictor pm.local_qos,
          Polyreg.predictor pm.overall_speedup,
          Polyreg.predictor pm.overall_qos ))
      (models_for t input)
  in
  (* Feature layouts match [iter_features] / [local_features] /
     [overall_features]: levels (or one level) first, then the input
     vector, which never changes and is blitted once. *)
  let iter_feat = Array.make (n_abs + n_input) 0.0 in
  Array.blit input 0 iter_feat n_abs n_input;
  let local_feat = Array.make (1 + n_input) 0.0 in
  Array.blit input 0 local_feat 1 n_input;
  let overall_feat = Array.make (n_abs + 1) 0.0 in
  fun ~phase ~levels ->
    if phase < 0 || phase >= t.n_phases then invalid_arg "Models.predictor: bad phase";
    if Array.length levels <> n_abs then invalid_arg "Models.predictor: bad levels arity";
    if Array.for_all (fun l -> l = 0) levels then
      { speedup = 1.0; qos = 0.0; speedup_lo = 1.0; qos_hi = 0.0; iters_ratio = 1.0 }
    else begin
      let pm, iter_p, local_speedup_p, local_qos_p, overall_speedup_p, overall_qos_p =
        compiled.(phase)
      in
      for i = 0 to n_abs - 1 do
        iter_feat.(i) <- float_of_int levels.(i)
      done;
      let iters_ratio = iter_p iter_feat in
      for ab = 0 to n_abs - 1 do
        local_feat.(0) <- float_of_int levels.(ab);
        overall_feat.(ab) <- local_speedup_p.(ab) local_feat
      done;
      overall_feat.(n_abs) <- iters_ratio;
      let speedup = overall_speedup_p overall_feat in
      for ab = 0 to n_abs - 1 do
        local_feat.(0) <- float_of_int levels.(ab);
        overall_feat.(ab) <- local_qos_p.(ab) local_feat
      done;
      overall_feat.(n_abs) <- iters_ratio;
      let log_q = overall_qos_p overall_feat in
      let speedup = Float.max 0.01 speedup in
      {
        speedup;
        qos = unlog_qos log_q;
        speedup_lo = Float.max 0.01 (Confidence.lower pm.speedup_ci speedup);
        qos_hi = unlog_qos (Confidence.upper pm.qos_ci log_q);
        iters_ratio;
      }
    end

(* ------------------------------------------------------- static checking *)

let regression_views pm =
  let reg role m = { Lint_models.role; pieces = Polyreg.pieces m } in
  (reg "iter_model" pm.iter_model :: reg "overall_speedup" pm.overall_speedup
  :: reg "overall_qos" pm.overall_qos
  :: Array.to_list
       (Array.mapi (fun i m -> reg (Printf.sprintf "local_speedup[%d]" i) m) pm.local_speedup)
  )
  @ Array.to_list
      (Array.mapi (fun i m -> reg (Printf.sprintf "local_qos[%d]" i) m) pm.local_qos)

let view t =
  {
    Lint_models.app_name = t.app.App.name;
    abs = t.app.App.abs;
    n_phases = t.n_phases;
    min_class_samples = t.config.min_class_samples;
    class_samples = t.class_samples;
    per_class =
      Array.map
        (Array.map (fun pm ->
             {
               Lint_models.regressions = regression_views pm;
               speedup_ci = Confidence.half_width pm.speedup_ci;
               qos_ci = Confidence.half_width pm.qos_ci;
             }))
        t.per_class;
    predict =
      (let compiled = lazy (predictor t ~input:t.app.App.default_input) in
       fun ~phase ~levels ->
        let p = Lazy.force compiled ~phase ~levels in
        {
          Lint_models.speedup = p.speedup;
          speedup_lo = p.speedup_lo;
          qos = p.qos;
          qos_hi = p.qos_hi;
          iters_ratio = p.iters_ratio;
        });
  }

let lint t = Lint_models.check (view t)

let audit ?(strict = Diagnostic.strict_env ()) t =
  let diags = lint t in
  List.iter
    (fun (d : Diagnostic.t) ->
      let level =
        match d.severity with
        | Diagnostic.Error -> Logs.Error
        | Diagnostic.Warning -> Logs.Warning
        | Diagnostic.Info -> Logs.Info
      in
      Log.msg level (fun m -> m "%a" Diagnostic.pp d))
    diags;
  (* Warnings stay logged in every mode; strict turns Error-severity model
     defects into a raised {!Diagnostic.Lint_error} (the CLI's [--strict]
     additionally promotes warnings, but only for its exit code). *)
  if strict then Diagnostic.raise_errors ~strict:false diags;
  t

let build ?(config = default_config) ?strict (training : Training.t) =
  let rng = Rng.create config.seed in
  let app = training.app in
  let n_phases = training.n_phases in
  let fit_class samples =
    Array.init n_phases (fun phase ->
        let phase_samples =
          Array.of_seq
            (Seq.filter (fun (s : Training.sample) -> s.phase = phase) (Array.to_seq samples))
        in
        fit_phase ~config ~rng ~app phase_samples)
  in
  let fallback = fit_class training.samples in
  let n_classes = Cfmodel.n_classes training.classes in
  let per_class =
    Array.init n_classes (fun cls ->
        if cls = 0 then fallback
        else
          let class_samples =
            Array.of_seq
              (Seq.filter
                 (fun (s : Training.sample) -> s.trace_class = cls)
                 (Array.to_seq training.samples))
          in
          if Array.length class_samples < config.min_class_samples * n_phases then fallback
          else fit_class class_samples)
  in
  let class_samples =
    List.init n_classes (fun cls ->
        ( cls,
          Array.fold_left
            (fun acc (s : Training.sample) -> if s.trace_class = cls then acc + 1 else acc)
            0 training.samples ))
  in
  let t = { app; n_phases; config; classes = training.classes; per_class; class_samples } in
  Log.info (fun m ->
      let mean f = Stats.mean (Array.map f t.per_class.(0)) in
      m "fitted models for %s: %d classes x %d phases (qos R2 %.3f, speedup R2 %.3f)"
        app.App.name n_classes n_phases
        (mean (fun pm -> Polyreg.cv_r2 pm.overall_qos))
        (mean (fun pm -> Polyreg.cv_r2 pm.overall_speedup)));
  audit ?strict t

let n_phases t = t.n_phases
let app t = t.app

let mean_over_phases t f =
  Stats.mean (Array.map f t.per_class.(0))

let qos_r2 t = mean_over_phases t (fun pm -> Polyreg.cv_r2 pm.overall_qos)
let speedup_r2 t = mean_over_phases t (fun pm -> Polyreg.cv_r2 pm.overall_speedup)
let iter_r2 t = mean_over_phases t (fun pm -> Polyreg.cv_r2 pm.iter_model)

let max_polynomial_degree t =
  Array.fold_left
    (fun acc phases ->
      Array.fold_left
        (fun acc pm ->
          List.fold_left Stdlib.max acc
            [
              Polyreg.degree pm.iter_model;
              Polyreg.degree pm.overall_speedup;
              Polyreg.degree pm.overall_qos;
            ])
        acc phases)
    0 t.per_class

(* -------------------------------------------------------- serialization *)

module Sexp = Opprox_util.Sexp

let phase_models_to_sexp pm =
  Sexp.record
    [
      ("iter_model", Polyreg.to_sexp pm.iter_model);
      ("local_speedup", Sexp.list (Array.to_list (Array.map Polyreg.to_sexp pm.local_speedup)));
      ("local_qos", Sexp.list (Array.to_list (Array.map Polyreg.to_sexp pm.local_qos)));
      ("overall_speedup", Polyreg.to_sexp pm.overall_speedup);
      ("overall_qos", Polyreg.to_sexp pm.overall_qos);
      ("speedup_ci", Confidence.to_sexp pm.speedup_ci);
      ("qos_ci", Confidence.to_sexp pm.qos_ci);
    ]

let phase_models_of_sexp sexp =
  let polyregs name =
    Array.of_list (List.map Polyreg.of_sexp (Sexp.to_list (Sexp.field sexp name)))
  in
  {
    iter_model = Polyreg.of_sexp (Sexp.field sexp "iter_model");
    local_speedup = polyregs "local_speedup";
    local_qos = polyregs "local_qos";
    overall_speedup = Polyreg.of_sexp (Sexp.field sexp "overall_speedup");
    overall_qos = Polyreg.of_sexp (Sexp.field sexp "overall_qos");
    speedup_ci = Confidence.of_sexp (Sexp.field sexp "speedup_ci");
    qos_ci = Confidence.of_sexp (Sexp.field sexp "qos_ci");
  }

let config_to_sexp (c : config) =
  Sexp.record
    [
      ("ci_p", Sexp.float c.ci_p);
      ("min_class_samples", Sexp.int c.min_class_samples);
      ("seed", Sexp.int c.seed);
    ]

let config_of_sexp sexp =
  {
    default_config with
    ci_p = Sexp.to_float (Sexp.field sexp "ci_p");
    min_class_samples = Sexp.to_int (Sexp.field sexp "min_class_samples");
    seed = Sexp.to_int (Sexp.field sexp "seed");
  }

let to_sexp t =
  Sexp.record
    [
      ("app", Sexp.string t.app.App.name);
      ("n_phases", Sexp.int t.n_phases);
      ("config", config_to_sexp t.config);
      ("classes", Cfmodel.to_sexp t.classes);
      ( "class_samples",
        Sexp.list
          (List.map (fun (c, n) -> Sexp.list [ Sexp.int c; Sexp.int n ]) t.class_samples) );
      ( "per_class",
        Sexp.list
          (Array.to_list
             (Array.map
                (fun phases ->
                  Sexp.list (Array.to_list (Array.map phase_models_to_sexp phases)))
                t.per_class)) );
    ]

let of_sexp ?strict ~resolve sexp =
  let t =
    {
      app = resolve (Sexp.to_string_atom (Sexp.field sexp "app"));
      n_phases = Sexp.to_int (Sexp.field sexp "n_phases");
      config = config_of_sexp (Sexp.field sexp "config");
      classes = Cfmodel.of_sexp (Sexp.field sexp "classes");
      (* Absent in files saved before the counts were recorded. *)
      class_samples =
        (match Sexp.field_opt sexp "class_samples" with
        | None -> []
        | Some s ->
            List.map
              (fun pair ->
                match Sexp.to_list pair with
                | [ c; n ] -> (Sexp.to_int c, Sexp.to_int n)
                | _ -> failwith "Models.of_sexp: malformed class_samples")
              (Sexp.to_list s));
      per_class =
        Array.of_list
          (List.map
             (fun phases ->
               Array.of_list (List.map phase_models_of_sexp (Sexp.to_list phases)))
             (Sexp.to_list (Sexp.field sexp "per_class")));
    }
  in
  audit ?strict t
