(** Performance and error models (paper Secs. 3.6–3.7).

    For each control-flow class and each phase, OPPROX fits:

    + an {b iteration-count estimator} — polynomial regression from
      (AL vector, input parameters) to the ratio of approximate to exact
      outer-loop iterations;
    + {b local models} — per AB, regressions from (that AB's AL, input
      parameters) to whole-run speedup / QoS degradation when only that
      AB is approximated in that phase;
    + {b overall models} — regressions from (the local models'
      predictions, the estimated iteration ratio) to whole-run speedup /
      QoS degradation under joint approximation.

    Confidence intervals come from training-residual quantiles
    ({!Opprox_ml.Confidence}); the optimizer consumes the conservative
    bounds (upper QoS, lower speedup). *)

type prediction = {
  speedup : float;
  qos : float;
  speedup_lo : float;  (** lower confidence bound (conservative) *)
  qos_hi : float;  (** upper confidence bound (conservative) *)
  iters_ratio : float;
}

type t

type config = {
  regression : Opprox_ml.Polyreg.config;
  ci_p : float;  (** confidence level for the intervals; default 0.99 *)
  min_class_samples : int;
      (** classes with fewer samples reuse the all-class models; default 40 *)
  seed : int;
}

val default_config : config

val build : ?config:config -> ?strict:bool -> Training.t -> t
(** Fit all models from a collected training set.  The result is audited
    by {!Opprox_analysis.Lint_models} before it is returned: every
    diagnostic is logged at its severity, and — when [strict] (default
    {!Opprox_analysis.Diagnostic.strict_env}, i.e. [OPPROX_STRICT=1]) —
    Error-severity findings raise {!Opprox_analysis.Diagnostic.Lint_error}
    instead of handing a defective model set to the optimizer. *)

val predict : t -> input:float array -> phase:int -> levels:int array -> prediction
(** Predict the whole-run effect of approximating one phase with the
    given AL vector.  Speedup predictions are floored at a small positive
    value and QoS at 0. *)

val predictor : t -> input:float array -> phase:int -> levels:int array -> prediction
(** [predictor t ~input] hoists everything that does not depend on
    [(phase, levels)] out of the prediction loop: the control-flow
    classification of [input], model selection, the compiled regression
    closures ({!Opprox_ml.Polyreg.predictor}), and the feature scratch
    buffers.  The returned closure is bit-identical to {!predict} on
    every query but allocation-free, which is what the optimizer's
    per-phase enumeration (≤ thousands of configs × phases × sweeps)
    wants.  The closure owns mutable scratch: do not share one closure
    between domains. *)

val n_phases : t -> int

val app : t -> Opprox_sim.App.t
(** The application the models were trained on. *)

val qos_r2 : t -> float
(** Mean cross-validated R2 of the overall QoS models across phases. *)

val speedup_r2 : t -> float

val iter_r2 : t -> float

val max_polynomial_degree : t -> int
(** Highest degree escalation reached by any model (paper: 2–6). *)

val view : t -> Opprox_analysis.Lint_models.view
(** The neutral audit surface {!Opprox_analysis.Lint_models} checks:
    regression coefficients and R-factor diagonals per (class, phase,
    role), confidence half-widths, build-time class sample counts, and a
    prediction closure over the app's default input. *)

val lint : t -> Opprox_analysis.Diagnostic.t list
(** [Lint_models.check (view t)]. *)

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize the full model set (per control-flow class, per phase).
    The application is stored by name. *)

val of_sexp :
  ?strict:bool -> resolve:(string -> Opprox_sim.App.t) -> Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp}.  Like {!build}, the loaded set is audited:
    diagnostics are logged, and errors raise under [strict] — a model
    file corrupted on disk (NaN coefficient, inverted interval) is
    caught at load time, not mid-optimization. *)
