module Training = Training
module Models = Models
module Roi = Roi
module Optimizer = Optimizer
module Oracle = Oracle
module Phases = Phases
module Cfmodel = Cfmodel
module Runtime = Runtime
module Controller = Controller
module App = Opprox_sim.App
module Driver = Opprox_sim.Driver

type trained = {
  app : App.t;
  training : Training.t;
  models : Models.t;
  roi : float array;
  phase_probes : Phases.probe_result list;
}

type train_config = {
  n_phases : int option;
  phase_threshold : float;
  max_phases : int;
  training : Training.config;
  model : Models.config;
}

let default_train_config =
  {
    n_phases = None;
    phase_threshold = 1.0;
    max_phases = 4;
    training = Training.default_config;
    model = Models.default_config;
  }

let train ?(config = default_train_config) app =
  let n_phases, phase_probes =
    match config.n_phases with
    | Some n -> (n, [])
    | None -> Phases.search ~threshold:config.phase_threshold ~max_phases:config.max_phases app
  in
  let training = Training.collect ~config:config.training app ~n_phases in
  let models = Models.build ~config:config.model training in
  let roi = Roi.of_training training in
  { app; training; models; roi; phase_probes }

let optimize ?input trained ~budget =
  let input = match input with Some i -> i | None -> trained.app.App.default_input in
  Optimizer.optimize ~models:trained.models ~roi:trained.roi ~input ~budget ()

let apply ?input trained (plan : Optimizer.plan) =
  let input = match input with Some i -> i | None -> trained.app.App.default_input in
  (* Plans can arrive from outside the optimizer (deserialized, edited by
     hand, or built for different models); re-audit before running one. *)
  Opprox_analysis.Diagnostic.raise_errors ~strict:false
    (Optimizer.lint ~models:trained.models plan);
  Driver.evaluate trained.app plan.Optimizer.schedule input

let run_controlled ?config ?replan ?input trained (plan : Optimizer.plan) =
  let input = match input with Some i -> i | None -> trained.app.App.default_input in
  Controller.run ?config ?replan ~models:trained.models ~roi:trained.roi ~input plan

let run_oracle ?input app ~budget =
  let input = match input with Some i -> i | None -> app.App.default_input in
  Oracle.search app ~input ~budget

(* -------------------------------------------------------- serialization *)

module Sexp = Opprox_util.Sexp

let to_sexp trained =
  Sexp.record
    [
      ("app", Sexp.string trained.app.App.name);
      ("roi", Sexp.float_array trained.roi);
      ("training", Training.to_sexp trained.training);
      ("models", Models.to_sexp trained.models);
    ]

let of_sexp ?strict ~resolve sexp =
  {
    app = resolve (Sexp.to_string_atom (Sexp.field sexp "app"));
    roi = Sexp.to_float_array (Sexp.field sexp "roi");
    training = Training.of_sexp ~resolve (Sexp.field sexp "training");
    models = Models.of_sexp ?strict ~resolve (Sexp.field sexp "models");
    phase_probes = [];
  }

let save path trained = Sexp.save path (to_sexp trained)

let load ?strict ~resolve path = of_sexp ?strict ~resolve (Sexp.load path)

let submit ~resolve (job : Runtime.job) =
  let trained = load ~resolve job.Runtime.model_path in
  let app = trained.app in
  if app.App.name <> job.Runtime.app_name then
    failwith
      (Printf.sprintf "Opprox.submit: models were trained for %s, job says %s" app.App.name
         job.Runtime.app_name);
  let input = match job.Runtime.input with Some i -> i | None -> app.App.default_input in
  let plan = optimize ~input trained ~budget:job.Runtime.budget in
  let env = Runtime.plan_env_vars ~app plan in
  let outcome = apply ~input trained plan in
  { Runtime.job; plan; env; outcome }
