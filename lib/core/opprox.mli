(** OPPROX: phase-aware optimization of approximate programs.

    Reproduction of Mitra, Gupta, Misailovic & Bagchi, {e Phase-Aware
    Optimization in Approximate Computing} (CGO 2017).

    The end-to-end pipeline ({!train} then {!optimize}) mirrors the
    paper's four conceptual steps:

    + identify the computation phases ({!Phases}, Algorithm 1),
    + model speedup and QoS degradation per phase from profiling runs on
      representative inputs ({!Training}, {!Models}),
    + split the user's error budget into phase sub-budgets in proportion
      to each phase's return on investment ({!Roi}),
    + solve a per-phase discrete optimization for the most profitable
      approximation-level settings ({!Optimizer}, Algorithm 2).

    The phase-agnostic exhaustive baseline of prior work is {!Oracle}.

    {2 Quickstart}

    {[
      let app = Opprox_apps.Pso.app in
      let trained = Opprox.train app in
      let plan = Opprox.optimize trained ~budget:10.0 in
      let outcome = Opprox.apply trained plan in
      Printf.printf "speedup %.2f at %.1f%% QoS degradation\n"
        outcome.speedup outcome.qos_degradation
    ]} *)

module Training = Training
module Models = Models
module Roi = Roi
module Optimizer = Optimizer
module Oracle = Oracle
module Phases = Phases
module Cfmodel = Cfmodel
module Runtime = Runtime
module Controller = Controller

type trained = {
  app : Opprox_sim.App.t;
  training : Training.t;
  models : Models.t;
  roi : float array;
  phase_probes : Phases.probe_result list;  (** empty when [n_phases] was forced *)
}

type train_config = {
  n_phases : int option;
      (** force a phase count instead of running Algorithm 1 *)
  phase_threshold : float;  (** Algorithm 1 sensitivity threshold *)
  max_phases : int;
  training : Training.config;
  model : Models.config;
}

val default_train_config : train_config

val train : ?config:train_config -> Opprox_sim.App.t -> trained
(** Offline stage: phase search, profiling runs, model fitting, ROI. *)

val optimize : ?input:float array -> trained -> budget:float -> Optimizer.plan
(** Pre-run stage: find phase-specific AL settings for a QoS budget
    (percent degradation).  [input] defaults to the app's default input. *)

val apply : ?input:float array -> trained -> Optimizer.plan -> Opprox_sim.Driver.evaluation
(** Execute the application under a plan's schedule and measure the real
    speedup and QoS degradation.  The plan is first audited against the
    trained models ({!Optimizer.lint}); a plan whose schedule does not
    fit the application — out-of-range level, wrong AB count — raises
    {!Opprox_analysis.Diagnostic.Lint_error} instead of misbehaving
    mid-run. *)

val run_controlled :
  ?config:Controller.config ->
  ?replan:Controller.replanner ->
  ?input:float array ->
  trained ->
  Optimizer.plan ->
  Controller.outcome
(** Execute a plan under the online {!Controller}: phase-by-phase, with
    drift checks at each boundary and suffix replans against the
    remaining budget when observations diverge from the plan's
    predictions.  Requires an iterative application.  [input] defaults to
    the app's default input — running a plan solved for one input on a
    {e different} (perturbed) input is the whole point. *)

val run_oracle : ?input:float array -> Opprox_sim.App.t -> budget:float -> Oracle.result
(** The phase-agnostic exhaustive baseline on the same protocol. *)

val save : string -> trained -> unit
(** Persist a trained pipeline (dataset, models, ROI) to a file — the
    equivalent of the paper's pickled-model store between the offline
    training stage and job submission.  The application is stored by
    name. *)

val submit : resolve:(string -> Opprox_sim.App.t) -> Runtime.job -> Runtime.submission
(** The paper's runtime step end to end: load the trained pipeline named
    by the job's config, optimize for its budget, encode the settings as
    environment variables, and execute.  Fails when the stored models were
    trained for a different application than the job names. *)

val load : ?strict:bool -> resolve:(string -> Opprox_sim.App.t) -> string -> trained
(** Load a pipeline saved by {!save}.  [resolve] maps the stored
    application name back to its descriptor — pass
    [Opprox_apps.Registry.find] for the bundled benchmarks, or your own
    lookup for custom applications.  The loaded models are audited by
    {!Models.of_sexp}'s lint pass: diagnostics are logged, and
    Error-severity findings raise under [strict] (default
    [OPPROX_STRICT=1]). *)
