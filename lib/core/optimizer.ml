module App = Opprox_sim.App
module Schedule = Opprox_sim.Schedule
module Config_space = Opprox_sim.Config_space
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_plan = Opprox_analysis.Lint_plan
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

let log_src = Logs.Src.create "opprox.optimizer" ~doc:"OPPROX phase optimizer"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_solves = Metrics.counter "optimizer.solves"
let m_sweeps = Metrics.counter "optimizer.sweeps"
let m_predict_hits = Metrics.counter "optimizer.predict.hit"
let m_predict_misses = Metrics.counter "optimizer.predict.miss"
let m_reopts = Metrics.counter "optimizer.phase.reopt"
let m_fallbacks = Metrics.counter "optimizer.fallbacks"

type phase_choice = {
  phase : int;
  levels : int array;
  predicted : Models.prediction;
  sub_budget : float;
}

type plan = {
  schedule : Schedule.t;
  choices : phase_choice list;
  predicted_speedup : float;
  predicted_qos : float;
  budget : float;
}

type search = Enumerate | Greedy | Stochastic

type stochastic_params = { chains : int; iters : int; seed : int }

let default_stochastic_params = { chains = 4; iters = 2000; seed = 0x5EA2C }

(* The stochastic strategy lives in opprox.search, which depends on this
   module (it prices schedules through Models.predictor and audits plans
   through lint).  The dependency is inverted through a registration
   hook: linking opprox.search installs the solver at module-init time. *)
let stochastic_solver :
    (models:Models.t ->
    input:float array ->
    budget:float ->
    first_phase:int ->
    params:stochastic_params ->
    int array array)
    option
    ref =
  ref None

let set_stochastic_solver f = stochastic_solver := Some f
let stochastic_available () = !stochastic_solver <> None

let compose_speedup speedups =
  let savings =
    List.fold_left (fun acc s -> acc +. (1.0 -. (1.0 /. Float.max 0.01 s))) 0.0 speedups
  in
  1.0 /. Float.max 0.05 (1.0 -. savings)

(* Exact enumeration of one phase's AL space: keep the configuration with
   the best conservative speedup whose conservative QoS fits the budget. *)
let enumerate_phase ~predict ~input ~phase ~budget abs =
  let best = ref None in
  List.iter
    (fun levels ->
      let p = predict ~input ~phase ~levels in
      if p.Models.qos_hi <= budget then
        match !best with
        | Some (_, best_p) when best_p.Models.speedup_lo >= p.Models.speedup_lo -> ()
        | _ -> best := Some (levels, p))
    (Config_space.all abs);
  !best

(* Greedy coordinate ascent: repeatedly take the single-AB level change
   that most improves conservative speedup while staying within budget. *)
let greedy_phase ~predict ~input ~phase ~budget abs =
  let n = Array.length abs in
  let current = Array.make n 0 in
  let current_pred = ref (predict ~input ~phase ~levels:current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best_step = ref None in
    for ab = 0 to n - 1 do
      List.iter
        (fun delta ->
          let l = current.(ab) + delta in
          if l >= 0 && l <= abs.(ab).Opprox_sim.Ab.max_level && l <> current.(ab) then begin
            let candidate = Array.copy current in
            candidate.(ab) <- l;
            let p = predict ~input ~phase ~levels:candidate in
            if
              p.Models.qos_hi <= budget
              && p.Models.speedup_lo > !current_pred.Models.speedup_lo +. 1e-9
            then
              match !best_step with
              | Some (_, bp) when bp.Models.speedup_lo >= p.Models.speedup_lo -> ()
              | _ -> best_step := Some (candidate, p)
          end)
        [ 1; -1 ]
    done;
    match !best_step with
    | Some (candidate, p) ->
        Array.blit candidate 0 current 0 n;
        current_pred := p;
        improved := true
    | None -> ()
  done;
  if !current_pred.Models.qos_hi <= budget then Some (Array.copy current, !current_pred) else None

(* The neutral view of a plan that {!Opprox_analysis.Lint_plan} audits. *)
let plan_view ~models (plan : plan) =
  let app = Models.app models in
  {
    Lint_plan.app_name = app.App.name;
    abs = app.App.abs;
    n_phases = Models.n_phases models;
    budget = plan.budget;
    choices =
      List.map
        (fun c ->
          {
            Lint_plan.phase = c.phase;
            levels = c.levels;
            sub_budget = c.sub_budget;
            qos_hi = c.predicted.Models.qos_hi;
          })
        plan.choices;
    schedule = plan.schedule;
  }

let lint ~models plan = Lint_plan.check_plan (plan_view ~models plan)

let log_diags diags =
  List.iter
    (fun (d : Diagnostic.t) ->
      let level =
        match d.severity with
        | Diagnostic.Error -> Logs.Error
        | Diagnostic.Warning -> Logs.Warning
        | Diagnostic.Info -> Logs.Info
      in
      Log.msg level (fun m -> m "%a" Diagnostic.pp d))
    diags

let solver ?search ?(enumeration_limit = 20000) ?(stochastic = default_stochastic_params)
    ~models ~roi ~input () =
  let app = Models.app models in
  let n_phases = Models.n_phases models in
  let abs = app.App.abs in
  (* Compile the prediction pipeline once per {e solver}: classification,
     model selection, and all regression scratch buffers are hoisted out
     of the sweep loops (Models.predictor), and a memo on top absorbs the
     many re-visits of the same (phase, levels) point across sweeps — and,
     when the solver is reused over a budget grid (the precompute sweep),
     across budgets: the prediction at a point does not depend on the
     budget, only admissibility does. *)
  let predict_compiled = Models.predictor models ~input in
  let cache = Hashtbl.create 4096 in
  let predict_cached ~input:_ ~phase ~levels =
    let key = (phase, Array.to_list levels) in
    match Hashtbl.find_opt cache key with
    | Some p ->
        Metrics.incr m_predict_hits;
        p
    | None ->
        Metrics.incr m_predict_misses;
        let p = predict_compiled ~phase ~levels in
        Hashtbl.replace cache key p;
        p
  in
  let search =
    match search with
    | Some s -> s
    | None ->
        let space = Config_space.count abs in
        if space <= enumeration_limit then Enumerate
        else begin
          (* The fallback is correct but must not be silent: a plan whose
             per-phase optimum came from a heuristic search is a different
             artifact than an enumerated one.  PLAN010 + a counter make
             the switch observable (and regression-testable). *)
          let chosen = if stochastic_available () then Stochastic else Greedy in
          Metrics.incr m_fallbacks;
          log_diags
            [
              Lint_plan.fallback ~app:app.App.name ~space ~limit:enumeration_limit
                ~chosen:(match chosen with Stochastic -> "stochastic" | _ -> "greedy");
            ];
          chosen
        end
  in
  let order = Roi.descending_order roi in
  let n_abs = Array.length abs in
  fun ?(first_phase = 0) ~budget () ->
  Trace.with_span ~cat:"optimizer" "optimizer.solve" @@ fun () ->
  Metrics.incr m_solves;
  if first_phase < 0 || first_phase > n_phases then
    invalid_arg
      (Printf.sprintf "Optimizer.solver: first_phase %d out of range 0..%d" first_phase n_phases);
  (* Suffix solve (mid-run replanning): phases before [first_phase] are
     already executed, so they take no allocation and stay exact in the
     emitted schedule; only the remaining phases compete for [budget]. *)
  let active phase = phase >= first_phase in
  let order = List.filter active order in
  (* Pre-flight: budget / ROI / input defects become structured
     diagnostics (raised as Lint_error) instead of ad-hoc invalid_arg. *)
  Diagnostic.raise_errors ~strict:false
    (Lint_plan.check_inputs
       {
         Lint_plan.app_name = app.App.name;
         abs = app.App.abs;
         n_phases;
         param_arity = Array.length app.App.param_names;
         roi;
         budget;
         input;
       });
  let schedule_levels = Array.init n_phases (fun _ -> Array.make n_abs 0) in
  (* Per-phase budgets and what each phase's current choice consumes. *)
  let allocated = Array.make n_phases 0.0 in
  let consumed = Array.make n_phases 0.0 in
  let chosen = Array.init n_phases (fun _ -> None) in
  let total_consumed () = Array.fold_left ( +. ) 0.0 consumed in
  let sweep () =
    (* One Algorithm-2 pass: distribute the unconsumed budget over phases
       in decreasing-ROI order and re-optimize each phase with its grown
       allocation.  Leftovers from earlier phases flow to later ones. *)
    let remaining = ref (Float.max 0.0 (budget -. total_consumed ())) in
    let remaining_roi = ref (List.fold_left (fun acc phase -> acc +. roi.(phase)) 0.0 order) in
    let changed = ref false in
    List.iter
      (fun phase ->
        let share = if !remaining_roi > 0.0 then roi.(phase) /. !remaining_roi else 0.0 in
        let extra = Float.max 0.0 (!remaining *. share) in
        allocated.(phase) <- allocated.(phase) +. extra;
        remaining := !remaining -. extra;
        remaining_roi := !remaining_roi -. roi.(phase);
        let result =
          match search with
          | Enumerate -> enumerate_phase ~predict:predict_cached ~input ~phase ~budget:allocated.(phase) abs
          | Greedy -> greedy_phase ~predict:predict_cached ~input ~phase ~budget:allocated.(phase) abs
          | Stochastic -> assert false (* whole-schedule strategy; handled before the sweeps *)
        in
        match result with
        | Some (levels, p) ->
            let better =
              match chosen.(phase) with
              | Some (_, prev) -> p.Models.speedup_lo > prev.Models.speedup_lo +. 1e-9
              | None -> true
            in
            if better then begin
              (* Replacing an earlier sweep's choice is a phase
                 re-optimization; a first choice is not. *)
              if chosen.(phase) <> None then Metrics.incr m_reopts;
              chosen.(phase) <- Some (levels, p);
              changed := true
            end;
            (match chosen.(phase) with
            | Some (_, p) ->
                let c = Float.max 0.0 p.Models.qos_hi in
                (* Unused allocation flows back into the next sweep. *)
                remaining := !remaining +. Float.max 0.0 (allocated.(phase) -. Float.max c consumed.(phase));
                allocated.(phase) <- Float.max c consumed.(phase);
                consumed.(phase) <- Float.max c consumed.(phase)
            | None -> ())
        | None ->
            (* No feasible configuration at this allocation: hand the whole
               unconsumed grant back to the phases visited after this one.
               Without this the grant was stranded for the rest of the
               sweep and a fresh one re-granted every sweep, so the
               reported sub_budget inflated monotonically and the split
               could sum past the total budget. *)
            remaining := !remaining +. Float.max 0.0 (allocated.(phase) -. consumed.(phase));
            allocated.(phase) <- consumed.(phase))
      order;
    !changed
  in
  (match search with
  | Stochastic ->
      (* Whole-schedule strategy: the registered MCMC driver searches the
         joint per-phase space directly instead of sweeping phases under
         ROI-split sub-budgets.  Each phase's sub-budget is then simply
         what its chosen levels are predicted to consume. *)
      let solve =
        match !stochastic_solver with
        | Some f -> f
        | None ->
            failwith
              "Optimizer: Stochastic search requested but no solver is registered (link \
               opprox.search)"
      in
      let levels = solve ~models ~input ~budget ~first_phase ~params:stochastic in
      if Array.length levels <> n_phases then
        failwith
          (Printf.sprintf "Optimizer: stochastic solver returned %d phases, models have %d"
             (Array.length levels) n_phases);
      Array.iteri
        (fun phase lv ->
          if active phase then begin
            let p = predict_cached ~input ~phase ~levels:lv in
            let c = Float.max 0.0 p.Models.qos_hi in
            chosen.(phase) <- Some (Array.copy lv, p);
            allocated.(phase) <- c;
            consumed.(phase) <- c
          end)
        levels
  | Enumerate | Greedy ->
      (* At most [max_sweeps] Algorithm-2 passes run, and the count below is
         the number actually executed: the cap is checked {e before} a sweep
         starts.  (An earlier revision tested the cap after the call, running
         a sixth sweep whose convergence signal was discarded, and logged a
         count one past the executed sweeps on early convergence.) *)
      let max_sweeps = 5 in
      let sweeps = ref 0 in
      let converged = ref false in
      while (not !converged) && !sweeps < max_sweeps do
        incr sweeps;
        Metrics.incr m_sweeps;
        converged := not (Trace.with_span ~cat:"optimizer" "optimizer.sweep" sweep)
      done;
      Log.debug (fun m ->
          m "budget %.2f settled after %d sweep(s); consumed %.2f" budget !sweeps
            (total_consumed ())));
  (* Choices are reported in phase order — the order the plan executes —
     not in the descending-ROI order the sweeps visited them in. *)
  let choices =
    List.init n_phases (fun phase ->
        let levels, predicted =
          match chosen.(phase) with
          | Some (levels, p) -> (levels, p)
          | None ->
              let levels = Array.make n_abs 0 in
              (levels, predict_cached ~input ~phase ~levels)
        in
        schedule_levels.(phase) <- levels;
        { phase; levels; predicted; sub_budget = allocated.(phase) })
  in
  let predicted_speedup =
    compose_speedup (List.map (fun c -> c.predicted.Models.speedup) choices)
  in
  let predicted_qos =
    List.fold_left (fun acc c -> acc +. c.predicted.Models.qos_hi) 0.0 choices
  in
  let plan =
    { schedule = Schedule.make schedule_levels; choices; predicted_speedup; predicted_qos; budget }
  in
  (* Post-flight: the optimizer's own output contract.  Violations mark a
     solver bug (or corrupted models that slipped through) — log
     everything, fail on errors. *)
  let diags = lint ~models plan in
  log_diags diags;
  Diagnostic.raise_errors ~strict:false diags;
  plan

let optimize ?search ?enumeration_limit ?stochastic ~models ~roi ~input ~budget () =
  solver ?search ?enumeration_limit ?stochastic ~models ~roi ~input () ~budget ()

(* Build (and audit) a plan directly from a full levels matrix — the exit
   path of the stochastic search, and useful for any externally-produced
   schedule that should carry the models' predictions.  Each phase's
   sub-budget is its own predicted conservative consumption, so the split
   sums exactly to the plan's predicted QoS. *)
let plan_of_levels ~models ~input ~budget levels =
  let app = Models.app models in
  let n_phases = Models.n_phases models in
  let n_abs = Array.length app.App.abs in
  if Array.length levels <> n_phases then
    invalid_arg
      (Printf.sprintf "Optimizer.plan_of_levels: %d phases, models have %d"
         (Array.length levels) n_phases);
  Array.iter
    (fun row ->
      if Array.length row <> n_abs then
        invalid_arg
          (Printf.sprintf "Optimizer.plan_of_levels: a row has %d levels, app has %d ABs"
             (Array.length row) n_abs))
    levels;
  let predict = Models.predictor models ~input in
  let choices =
    List.init n_phases (fun phase ->
        let lv = Array.copy levels.(phase) in
        let p = predict ~phase ~levels:lv in
        { phase; levels = lv; predicted = p; sub_budget = Float.max 0.0 p.Models.qos_hi })
  in
  let predicted_speedup =
    compose_speedup (List.map (fun c -> c.predicted.Models.speedup) choices)
  in
  let predicted_qos =
    List.fold_left (fun acc c -> acc +. c.predicted.Models.qos_hi) 0.0 choices
  in
  let plan =
    {
      schedule = Schedule.make (Array.map Array.copy levels);
      choices;
      predicted_speedup;
      predicted_qos;
      budget;
    }
  in
  let diags = lint ~models plan in
  log_diags diags;
  Diagnostic.raise_errors ~strict:false diags;
  plan

(* ---------------------------------------------------------- serialization *)

(* Plans travel over the serving protocol (daemon reply) and into audit
   tooling, so the codec round-trips every field bit-exactly (floats via
   Sexp.float's 17 significant digits). *)

module Sexp = Opprox_util.Sexp

let prediction_to_sexp (p : Models.prediction) =
  Sexp.record
    [
      ("speedup", Sexp.float p.Models.speedup);
      ("qos", Sexp.float p.Models.qos);
      ("speedup_lo", Sexp.float p.Models.speedup_lo);
      ("qos_hi", Sexp.float p.Models.qos_hi);
      ("iters_ratio", Sexp.float p.Models.iters_ratio);
    ]

let prediction_of_sexp sexp =
  {
    Models.speedup = Sexp.to_float (Sexp.field sexp "speedup");
    qos = Sexp.to_float (Sexp.field sexp "qos");
    speedup_lo = Sexp.to_float (Sexp.field sexp "speedup_lo");
    qos_hi = Sexp.to_float (Sexp.field sexp "qos_hi");
    iters_ratio = Sexp.to_float (Sexp.field sexp "iters_ratio");
  }

let choice_to_sexp c =
  Sexp.record
    [
      ("phase", Sexp.int c.phase);
      ("levels", Sexp.int_array c.levels);
      ("predicted", prediction_to_sexp c.predicted);
      ("sub_budget", Sexp.float c.sub_budget);
    ]

let choice_of_sexp sexp =
  {
    phase = Sexp.to_int (Sexp.field sexp "phase");
    levels = Sexp.to_int_array (Sexp.field sexp "levels");
    predicted = prediction_of_sexp (Sexp.field sexp "predicted");
    sub_budget = Sexp.to_float (Sexp.field sexp "sub_budget");
  }

let plan_to_sexp plan =
  Sexp.record
    [
      ("budget", Sexp.float plan.budget);
      ("predicted_speedup", Sexp.float plan.predicted_speedup);
      ("predicted_qos", Sexp.float plan.predicted_qos);
      ("schedule", Schedule.to_sexp plan.schedule);
      ("choices", Sexp.list (List.map choice_to_sexp plan.choices));
    ]

let plan_of_sexp sexp =
  {
    budget = Sexp.to_float (Sexp.field sexp "budget");
    predicted_speedup = Sexp.to_float (Sexp.field sexp "predicted_speedup");
    predicted_qos = Sexp.to_float (Sexp.field sexp "predicted_qos");
    schedule = Schedule.of_sexp (Sexp.field sexp "schedule");
    choices = List.map choice_of_sexp (Sexp.to_list (Sexp.field sexp "choices"));
  }
