(** Phase-specific trade-off optimization (paper Sec. 3.8, Algorithm 2).

    Given the per-phase models, a QoS degradation budget and an input,
    the optimizer visits phases in decreasing-ROI order, allocates each
    phase a sub-budget proportional to its normalized ROI over the budget
    still unspent, and solves

    {v maximize   S(A)   subject to  qos_hi(A) <= sub-budget v}

    over the discrete AL-vector space of the phase, using the models'
    conservative bounds (upper-CI QoS, lower-CI speedup).  Whatever a
    phase does not consume flows to the phases visited after it.

    AL spaces here are small (at most 6^4 = 1296), so the search is exact
    enumeration by default; a greedy coordinate-ascent fallback handles
    hypothetically larger spaces and is property-tested against
    enumeration. *)

type phase_choice = {
  phase : int;
  levels : int array;
  predicted : Models.prediction;
  sub_budget : float;
}

type plan = {
  schedule : Opprox_sim.Schedule.t;
  choices : phase_choice list;
      (** one choice per phase, in phase (execution) order — audited by
          {!Opprox_analysis.Lint_plan} as PLAN008 *)
  predicted_speedup : float;  (** composed whole-run speedup estimate *)
  predicted_qos : float;  (** sum of per-phase conservative QoS estimates *)
  budget : float;
}

type search =
  | Enumerate  (** exact per-phase enumeration (small AL spaces) *)
  | Greedy  (** per-phase greedy coordinate ascent *)
  | Stochastic
      (** whole-schedule multi-chain MCMC ({!Opprox_search.Search});
          requires the [opprox.search] library to be linked — it installs
          itself through {!set_stochastic_solver} at module-init time *)

type stochastic_params = { chains : int; iters : int; seed : int }
(** Knobs forwarded to the registered stochastic solver: number of
    independent Metropolis–Hastings chains, iterations per chain, and the
    master seed the per-chain streams are split from. *)

val default_stochastic_params : stochastic_params
(** [{ chains = 4; iters = 2000; seed = 0x5EA2C }]. *)

val set_stochastic_solver :
  (models:Models.t ->
  input:float array ->
  budget:float ->
  first_phase:int ->
  params:stochastic_params ->
  int array array) ->
  unit
(** Install the whole-schedule stochastic solver.  The returned matrix is
    [n_phases x n_abs] levels; phases before [first_phase] must be
    all-zero.  Called by [opprox.search] when it is linked; not meant for
    application code. *)

val stochastic_available : unit -> bool
(** Whether a stochastic solver has been registered. *)

val optimize :
  ?search:search ->
  ?enumeration_limit:int ->
  ?stochastic:stochastic_params ->
  models:Models.t ->
  roi:float array ->
  input:float array ->
  budget:float ->
  unit ->
  plan
(** Run Algorithm 2.  When the per-phase space exceeds
    [enumeration_limit] (default 20000) and [?search] was not forced, the
    solve falls back to [Stochastic] when available (else [Greedy]) —
    visibly: a Warning-severity [PLAN010] diagnostic is logged and the
    [optimizer.fallbacks] counter bumped.  The returned schedule always
    satisfies the models' conservative per-phase constraints; the
    all-exact schedule is the fallback when no setting fits a sub-budget.

    Inputs are validated through {!Opprox_analysis.Lint_plan.check_inputs}
    before any search runs — a negative or non-finite budget, an ROI
    vector of the wrong arity, or a malformed input vector raises
    {!Opprox_analysis.Diagnostic.Lint_error} carrying [PLAN***]
    diagnostics (instead of the ad-hoc [Invalid_argument] of earlier
    revisions).  The constructed plan is audited the same way
    ({!Opprox_analysis.Lint_plan.check_plan}) before it is returned.

    Observability: each solve runs at most five Algorithm-2 sweeps and
    accounts for itself in the {!Opprox_obs.Metrics} registry —
    [optimizer.solves], [optimizer.sweeps] (sweeps actually executed),
    [optimizer.predict.hit]/[optimizer.predict.miss] (the per-solve
    prediction memo) and [optimizer.phase.reopt] (choices replaced by a
    later sweep) — and emits one {!Opprox_obs.Trace} span per solve and
    per sweep. *)

val solver :
  ?search:search ->
  ?enumeration_limit:int ->
  ?stochastic:stochastic_params ->
  models:Models.t ->
  roi:float array ->
  input:float array ->
  unit ->
  ?first_phase:int ->
  budget:float ->
  unit ->
  plan
(** Partially-applied {!optimize}: compile the prediction pipeline (input
    classification, model selection, regression scratch) and the
    (phase, levels) prediction memo {e once}, then solve any number of
    budgets against them.  Predictions do not depend on the budget — only
    admissibility does — so a budget-grid sweep (the corpus precompute)
    pays the model-compilation cost once per (app, input) instead of once
    per cell.  [optimize ~budget ()] is [solver () ~budget ()].

    [first_phase] (default 0) restricts the solve to the plan {e suffix}:
    phases before it are treated as already executed — they receive no
    allocation, keep all-exact levels in the emitted schedule, and report
    a zero sub-budget — while the remaining phases compete for the whole
    [budget] in descending-ROI order.  This is what the runtime
    {!Controller} calls at a phase boundary to re-solve only the work
    still ahead against the budget still unspent; a caller merges the
    suffix into the executed prefix itself.  Raises [Invalid_argument]
    when [first_phase] is outside [0..n_phases]. *)

val plan_of_levels :
  models:Models.t -> input:float array -> budget:float -> int array array -> plan
(** Build a plan directly from an [n_phases x n_abs] levels matrix: each
    phase is priced through the models' hoisted predictor, its sub-budget
    set to its own predicted conservative consumption, and the whole plan
    audited through {!lint} ([Lint_error] on failures) before it is
    returned.  This is how the stochastic search materializes its
    best-of-chains schedule; it works for any externally-produced
    schedule.  Raises [Invalid_argument] on a shape mismatch. *)

val lint : models:Models.t -> plan -> Opprox_analysis.Diagnostic.t list
(** Audit any plan — including one doctored or deserialized outside the
    optimizer — against the models it is meant to run under: budget
    split, level admissibility, schedule shape. *)

val plan_to_sexp : plan -> Opprox_util.Sexp.t
(** Serialize a plan — schedule, per-phase choices with their predictions,
    composed estimates, budget.  This is the payload of the plan-serving
    daemon's reply and round-trips bit-exactly. *)

val plan_of_sexp : Opprox_util.Sexp.t -> plan
(** Inverse of {!plan_to_sexp}.  Raises [Failure] on malformed input and
    [Invalid_argument] (via {!Opprox_sim.Schedule.make}) on a stored
    schedule violating the shape invariants.  A deserialized plan is
    untrusted: run it through {!lint} (or let {!Opprox.apply} do so)
    before executing it. *)

val compose_speedup : float list -> float
(** Combine per-phase whole-run speedups: each phase contributes work
    savings [1 - 1/s]; savings add, so the composed speedup is
    [1 / (1 - sum savings)] (capped to keep the result finite). *)
