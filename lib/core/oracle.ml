module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Config_space = Opprox_sim.Config_space

type result = { levels : int array; evaluation : Driver.evaluation }

let cache : (string * float list, (int array * Driver.evaluation) list) Hashtbl.t =
  Hashtbl.create 16

let clear_cache () = Hashtbl.reset cache

let measured_space (app : App.t) ~input =
  let key = (app.App.name, Array.to_list input) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let exact = Driver.run_exact app input in
      let measured =
        List.map
          (fun levels ->
            let ev = Driver.evaluate ~exact app (Schedule.uniform ~n_phases:1 levels) input in
            (levels, ev))
          (Config_space.all app.App.abs)
      in
      Hashtbl.replace cache key measured;
      measured

let search app ~input ~budget =
  if budget < 0.0 then invalid_arg "Oracle.search: negative budget";
  let best = ref None in
  List.iter
    (fun (levels, (ev : Driver.evaluation)) ->
      if ev.qos_degradation <= budget then
        match !best with
        | Some (_, (b : Driver.evaluation)) when b.speedup >= ev.speedup -> ()
        | _ -> best := Some (levels, ev))
    (measured_space app ~input);
  match !best with
  | Some (levels, evaluation) -> { levels; evaluation }
  | None ->
      (* Unreachable: the all-zero configuration has zero degradation. *)
      let levels = Config_space.zero app.App.abs in
      let evaluation = Driver.evaluate app (Schedule.uniform ~n_phases:1 levels) input in
      { levels; evaluation }
