module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Config_space = Opprox_sim.Config_space
module Pool = Opprox_util.Pool
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

type result = { levels : int array; evaluation : Driver.evaluation }

let m_space_hits = Metrics.counter "oracle.space.hit"
let m_space_misses = Metrics.counter "oracle.space.miss"
let m_configs = Metrics.counter "oracle.space.configs"

(* Measured spaces are memoized on the same stable (app, input-bits)
   string key the driver uses.  The table is sharded (mutex per shard)
   so concurrent hot hits from pool workers — e.g. the experiment
   harness sweeping many budgets over the same inputs — do not
   serialize behind one lock. *)
module Shardmap = Opprox_util.Shardmap

let cache : (int array * Driver.evaluation) list Shardmap.t =
  Shardmap.create ~name:"oracle.measured" ~shards:8 ~capacity:max_int ()

let clear_cache () = Shardmap.clear cache

let measured_space ?pool (app : App.t) ~input =
  let key = Driver.input_key app input in
  match Shardmap.find cache key with
  | Some r ->
      Metrics.incr m_space_hits;
      r
  | None ->
      Metrics.incr m_space_misses;
      Trace.with_span ~cat:"oracle" "oracle.measured_space" @@ fun () ->
      let exact = Driver.run_exact app input in
      let configs = Array.of_list (Config_space.all app.App.abs) in
      Metrics.add m_configs (Array.length configs);
      (* The exhaustive sweep is embarrassingly parallel: every
         configuration is scored independently against the shared exact
         baseline.  Index-preserving map keeps the enumeration order.
         Per-config cost collapses to sub-microsecond once the driver's
         eval memo is warm, so a grain of several configs keeps the
         steal traffic proportional to useful work. *)
      let evaluations =
        Pool.parallel_map ?pool ~grain:8
          (fun levels ->
            let ev = Driver.evaluate ~exact app (Schedule.uniform ~n_phases:1 levels) input in
            (levels, ev))
          configs
      in
      let measured = Array.to_list evaluations in
      ignore (Shardmap.add cache key measured);
      measured

let search ?pool app ~input ~budget =
  if budget < 0.0 then invalid_arg "Oracle.search: negative budget";
  let best = ref None in
  List.iter
    (fun (levels, (ev : Driver.evaluation)) ->
      if ev.qos_degradation <= budget then
        match !best with
        | Some (_, (b : Driver.evaluation)) when b.speedup >= ev.speedup -> ()
        | _ -> best := Some (levels, ev))
    (measured_space ?pool app ~input);
  match !best with
  | Some (levels, evaluation) -> { levels; evaluation }
  | None ->
      (* Unreachable: the all-zero configuration has zero degradation. *)
      let levels = Config_space.zero app.App.abs in
      let evaluation = Driver.evaluate app (Schedule.uniform ~n_phases:1 levels) input in
      { levels; evaluation }
