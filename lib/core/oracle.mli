(** Phase-agnostic oracle baseline (paper Sec. 5.3).

    Exhaustive search over whole-run approximation settings, scored by
    {e actual} (measured) executions: the best achievable result for any
    phase-agnostic technique, as used by prior work (Sidiroglou et al.
    [43], Capri [44]) for their idealized comparison.  Because it measures
    rather than predicts, it never violates the budget — but it can only
    apply one AL vector to the whole execution. *)

type result = {
  levels : int array;  (** the chosen whole-run AL vector *)
  evaluation : Opprox_sim.Driver.evaluation;  (** its measured effect *)
}

val search :
  ?pool:Opprox_util.Pool.t -> Opprox_sim.App.t -> input:float array -> budget:float -> result
(** [search app ~input ~budget] measures every configuration (memoized
    per (app, input) across calls within a process) and returns the one
    with maximum speedup among those with measured QoS degradation within
    [budget].  The all-exact configuration (speedup 1, QoS 0) is always
    feasible, so the search never fails. *)

val measured_space :
  ?pool:Opprox_util.Pool.t ->
  Opprox_sim.App.t ->
  input:float array ->
  (int array * Opprox_sim.Driver.evaluation) list
(** All measured configurations (useful for scatter figures).  The
    exhaustive sweep fans out over [?pool] (default:
    {!Opprox_util.Pool.default}); the returned list preserves
    [Config_space.all]'s enumeration order.  Memoized on a stable string
    key of the input vector's IEEE-754 bits; both the lookup and
    {!clear_cache} are safe to call from multiple domains. *)

val clear_cache : unit -> unit
