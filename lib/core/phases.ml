module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Config_space = Opprox_sim.Config_space
module Stats = Opprox_util.Stats
module Rng = Opprox_util.Rng

type probe_result = {
  n_phases : int;
  mean_qos_per_phase : float array;
  max_consecutive_diff : float;
}

let probe ?(samples_per_phase = 8) ?(seed = 0x9A5E) (app : App.t) ~n_phases =
  if n_phases < 1 then invalid_arg "Phases.probe: n_phases must be >= 1";
  (* Seed from [seed] alone — NOT [seed + n_phases].  Algorithm 1 compares
     max_consecutive_diff across phase counts, so every probe must draw the
     same AL configurations; seeding per phase count injected sampling
     variance into exactly the signal the doubling threshold chases. *)
  let rng = Rng.create seed in
  let input = app.App.default_input in
  (* The same AL vectors probe every phase, so per-phase means differ only
     by phase placement. *)
  let configs =
    Array.init samples_per_phase (fun _ -> Config_space.random_nonzero rng app.App.abs)
  in
  let mean_qos_per_phase =
    Array.init n_phases (fun phase ->
        let degradations =
          Array.map
            (fun levels ->
              let sched = Schedule.single_phase_active ~n_phases ~phase levels in
              (Driver.evaluate app sched input).qos_degradation)
            configs
        in
        Stats.mean degradations)
  in
  let max_consecutive_diff =
    if n_phases = 1 then 0.0
    else begin
      let best = ref 0.0 in
      for p = 0 to n_phases - 2 do
        best := Float.max !best (Float.abs (mean_qos_per_phase.(p + 1) -. mean_qos_per_phase.(p)))
      done;
      !best
    end
  in
  { n_phases; mean_qos_per_phase; max_consecutive_diff }

let search ?(threshold = 1.0) ?(max_phases = 8) ?samples_per_phase ?seed app =
  if max_phases < 2 then invalid_arg "Phases.search: max_phases must be >= 2";
  let first = probe ?samples_per_phase ?seed app ~n_phases:2 in
  (* Algorithm 1: keep doubling while the max consecutive-phase QoS
     difference still moves by more than the threshold. *)
  let rec go n prev probes =
    let next_n = n * 2 in
    if next_n > max_phases then (n, List.rev probes)
    else begin
      let next = probe ?samples_per_phase ?seed app ~n_phases:next_n in
      let probes = next :: probes in
      if Float.abs (prev.max_consecutive_diff -. next.max_consecutive_diff) > threshold then
        go next_n next probes
      else (n, List.rev probes)
    end
  in
  go 2 first [ first ]
