(** Phase-granularity search (paper Sec. 3.5, Algorithm 1).

    Starting from two phases, the search doubles the phase count while
    the change in the maximum QoS-degradation difference between
    consecutive phases stays above a sensitivity threshold.  Too few
    phases hide distinct error regimes; too many multiply the training
    cost while consecutive phases become indistinguishable (paper
    Fig. 11). *)

type probe_result = {
  n_phases : int;
  mean_qos_per_phase : float array;
      (** mean measured QoS degradation of approximating only that phase *)
  max_consecutive_diff : float;
      (** getMaxQoSDiff: the largest |mean(p+1) - mean(p)| *)
}

val probe : ?samples_per_phase:int -> ?seed:int -> Opprox_sim.App.t -> n_phases:int -> probe_result
(** The helper getMaxQoSDiff: run the application's default input with
    [samples_per_phase] (default 8) random AL vectors active in one phase
    at a time and aggregate the per-phase mean QoS degradations. *)

val search :
  ?threshold:float ->
  ?max_phases:int ->
  ?samples_per_phase:int ->
  ?seed:int ->
  Opprox_sim.App.t ->
  int * probe_result list
(** Algorithm 1: returns the selected phase count and the probes made
    along the way.  [threshold] (default 1.0 QoS points) is the
    user-provided phase-sensitivity threshold; [max_phases] (default 8)
    bounds the doubling. *)
