module Stats = Opprox_util.Stats

let of_training ?(epsilon = 0.05) (t : Training.t) =
  Array.init t.n_phases (fun phase ->
      let samples = Training.samples_of_phase t phase in
      if Array.length samples = 0 then 0.0
      else
        Stats.mean
          (Array.map
             (fun (s : Training.sample) -> s.speedup /. Float.max epsilon s.qos)
             samples))

let normalize roi =
  let total = Array.fold_left ( +. ) 0.0 roi in
  if total <= 0.0 then Array.make (Array.length roi) (1.0 /. float_of_int (Array.length roi))
  else Array.map (fun r -> r /. total) roi

let allocate ~roi ~budget =
  if budget < 0.0 then invalid_arg "Roi.allocate: negative budget";
  Array.map (fun share -> share *. budget) (normalize roi)

let descending_order roi =
  let indexed = List.init (Array.length roi) (fun i -> (i, roi.(i))) in
  List.map fst (List.sort (fun (_, a) (_, b) -> compare b a) indexed)
