(** Return-on-investment budget allocation (paper Sec. 3.8, Eq. 1).

    For each phase, the ROI is the mean over that phase's training samples
    of (speedup / QoS degradation) — a statistical estimate of how much
    speedup a unit of error budget buys in that phase.  The total QoS
    budget is split across phases in proportion to normalized ROI. *)

val of_training : ?epsilon:float -> Training.t -> float array
(** [of_training t] is the per-phase ROI vector.  Degradations below
    [epsilon] (default [0.05]%) are floored to avoid division blow-ups
    (a phase where approximation is free would otherwise absorb the whole
    budget; the floor keeps ROI finite while still favoring it). *)

val normalize : float array -> float array
(** ROI vector scaled to sum to 1 (uniform if all-zero). *)

val allocate : roi:float array -> budget:float -> float array
(** [allocate ~roi ~budget] is the initial per-phase sub-budget split,
    [budget * normalized roi] (paper: "divides the overall QoS degradation
    budget across all the phases of execution in proportion to their
    corresponding ROI values"). *)

val descending_order : float array -> int list
(** Phase indices sorted by decreasing ROI — the order in which the
    optimizer visits phases (leftover budget flows to later-visited,
    lower-ROI phases). *)
