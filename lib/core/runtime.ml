module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Metrics = Opprox_obs.Metrics

let log_src = Logs.Src.create "opprox.runtime" ~doc:"OPPROX runtime job submission"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_dup_keys = Metrics.counter "runtime.config.dup_key"

type job = {
  app_name : string;
  budget : float;
  model_path : string;
  input : float array option;
}

let parse_config content =
  let table = Hashtbl.create 8 in
  List.iteri
    (fun lineno line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line <> "" then
        match String.index_opt line '=' with
        | None -> failwith (Printf.sprintf "Runtime.parse_config: line %d: missing '='" (lineno + 1))
        | Some i ->
            let key = String.trim (String.sub line 0 i) in
            let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
            if key = "" then
              failwith (Printf.sprintf "Runtime.parse_config: line %d: empty key" (lineno + 1));
            if Hashtbl.mem table key then begin
              (* Last binding wins (unchanged), but silently is how typos
                 ship a job with the wrong budget — count and warn. *)
              Metrics.incr m_dup_keys;
              Log.warn (fun m ->
                  m "config line %d: duplicate key %S overrides an earlier value" (lineno + 1)
                    key)
            end;
            Hashtbl.replace table key value)
    (String.split_on_char '\n' content);
  let required key =
    match Hashtbl.find_opt table key with
    | Some v -> v
    | None -> failwith (Printf.sprintf "Runtime.parse_config: missing key %s" key)
  in
  let budget_str = required "budget" in
  let budget =
    match float_of_string_opt budget_str with
    | Some b when b >= 0.0 -> b
    | Some _ -> failwith "Runtime.parse_config: negative budget"
    | None -> failwith (Printf.sprintf "Runtime.parse_config: bad budget %S" budget_str)
  in
  let input =
    match Hashtbl.find_opt table "input" with
    | None -> None
    | Some v ->
        let parts = List.map String.trim (String.split_on_char ',' v) in
        Some
          (Array.of_list
             (List.map
                (fun p ->
                  match float_of_string_opt p with
                  | Some f -> f
                  | None -> failwith (Printf.sprintf "Runtime.parse_config: bad input value %S" p))
                parts))
  in
  { app_name = required "app"; budget; model_path = required "models"; input }

let load_config path = parse_config (Opprox_util.Sexp.read_file path)

let env_var_name ~phase ~ab_name =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' -> Char.uppercase_ascii c
        | 'A' .. 'Z' | '0' .. '9' -> c
        | _ -> '_')
      ab_name
  in
  Printf.sprintf "OPPROX_P%d_%s" (phase + 1) sanitized

let plan_env_vars ~app (plan : Optimizer.plan) =
  let sched = plan.Optimizer.schedule in
  let n_phases = Schedule.n_phases sched in
  let per_setting =
    List.concat
      (List.init n_phases (fun phase ->
           List.init (App.n_abs app) (fun ab ->
               let name = env_var_name ~phase ~ab_name:(App.ab_names app).(ab) in
               (name, string_of_int (Schedule.level sched ~phase ~ab)))))
  in
  ("OPPROX_PHASES", string_of_int n_phases) :: per_setting

type submission = {
  job : job;
  plan : Optimizer.plan;
  env : (string * string) list;
  outcome : Driver.evaluation;
}

