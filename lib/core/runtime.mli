(** Runtime job submission (paper Sec. 4.2, "What happens at the runtime").

    In the paper's deployment, trained models live on disk; the user
    submits a job with a target error budget in a configuration file, a
    runtime script loads the models, runs the optimizer, and passes the
    phase-specific approximation settings to the job through environment
    variables before invoking the SLURM scheduler.  This module is that
    runtime script: config parsing, model loading, and the env-var
    encoding of a plan. *)

type job = {
  app_name : string;
  budget : float;  (** percent QoS degradation *)
  model_path : string;  (** file written by [Opprox.save] *)
  input : float array option;  (** production input; [None] = app default *)
}

val parse_config : string -> job
(** Parse a [key = value] configuration (one pair per line; [#] starts a
    comment).  Required keys: [app], [budget], [models].  Optional:
    [input] (comma-separated floats).  Raises [Failure] on missing or
    malformed keys.  A key bound more than once keeps its last value,
    logs a warning, and bumps the [runtime.config.dup_key] metric. *)

val load_config : string -> job
(** {!parse_config} on a file's contents. *)

val env_var_name : phase:int -> ab_name:string -> string
(** The variable carrying one (phase, AB) setting:
    [OPPROX_P<phase>_<AB-NAME-UPPERCASED>] (1-based phase). *)

val plan_env_vars : app:Opprox_sim.App.t -> Optimizer.plan -> (string * string) list
(** Encode a plan as the environment the job is launched with, one
    variable per (phase, AB), plus [OPPROX_PHASES] with the phase count. *)

type submission = {
  job : job;
  plan : Optimizer.plan;
  env : (string * string) list;
  outcome : Opprox_sim.Driver.evaluation;
      (** measured result of executing the job under the plan (our
          "scheduler" runs the simulated application directly) *)
}
(** Produced by [Opprox.submit]. *)
