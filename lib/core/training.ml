module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Config_space = Opprox_sim.Config_space
module Rng = Opprox_util.Rng
module Pool = Opprox_util.Pool
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

let log_src = Logs.Src.create "opprox.training" ~doc:"OPPROX training sampler"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_collects = Metrics.counter "training.collects"
let m_runs = Metrics.counter "training.runs"

type sample = {
  input : float array;
  phase : int;
  levels : int array;
  speedup : float;
  qos : float;
  iters_ratio : float;
  trace_class : int;
}

type t = {
  app : App.t;
  n_phases : int;
  samples : sample array;
  classes : Cfmodel.t;
}

type config = {
  joint_samples_per_phase : int;
  inputs : float array array option;
  seed : int;
}

let default_config = { joint_samples_per_phase = 12; inputs = None; seed = 0xDA7A }

let evaluate_sample ~classes ~app ~n_phases ~input ~phase levels =
  let sched = Schedule.single_phase_active ~n_phases ~phase levels in
  (* No [?exact] override: the driver resolves the baseline through its
     own (warm) exact-run memo, which keeps these evaluations eligible for
     both the checkpoint path and the whole-evaluation memo. *)
  let ev = Driver.evaluate app sched input in
  {
    input;
    phase;
    levels;
    speedup = ev.speedup;
    qos = ev.qos_degradation;
    iters_ratio = float_of_int ev.outer_iters /. float_of_int (Stdlib.max 1 ev.exact_iters);
    trace_class = Cfmodel.class_of_trace classes ev.trace;
  }

(* One simulator run of the sampling plan. *)
type task = { input : float array; phase : int; levels : int array }

(* The flat sampling plan, in the exact order the sequential nested loops
   used to visit it: input-major, then phase, local sweeps before joint
   samples.  All RNG consumption happens here, sequentially, so the plan
   (and therefore the collected dataset) is a function of the seed alone,
   independent of how many domains later execute it. *)
let sampling_plan ~config ~n_phases ~inputs abs =
  let rng = Rng.create config.seed in
  let tasks = ref [] in
  Array.iter
    (fun input ->
      for phase = 0 to n_phases - 1 do
        (* Exhaustive local sweeps: one AB at a time (paper: "for each AB
           it exhaustively covers the corresponding AL-space, while
           executing all other ABs accurately"). *)
        List.iter
          (fun (_ab, levels) -> tasks := { input; phase; levels } :: !tasks)
          (Config_space.local_sweeps abs);
        (* Sparse random joint samples for the interaction models. *)
        for _ = 1 to config.joint_samples_per_phase do
          let levels = Config_space.random_nonzero rng abs in
          tasks := { input; phase; levels } :: !tasks
        done
      done)
    inputs;
  Array.of_list (List.rev !tasks)

let collect ?(config = default_config) ?pool app ~n_phases =
  if n_phases < 1 then invalid_arg "Training.collect: n_phases must be >= 1";
  Trace.with_span ~cat:"training" "training.collect" @@ fun () ->
  Metrics.incr m_collects;
  let inputs = match config.inputs with Some i -> i | None -> app.App.training_inputs in
  (* Hoist the exact baseline: one golden run per input, computed up front
     (in parallel across inputs) so the driver's exact-run memo is warm
     before the sampling plan fans out. *)
  let _exacts : Driver.exact_run array =
    Trace.with_span ~cat:"training" "training.exact_baselines" (fun () ->
        Pool.parallel_map ?pool ~grain:1 (Driver.run_exact app) inputs)
  in
  let classes =
    Trace.with_span ~cat:"training" "training.cfmodel" (fun () -> Cfmodel.build app ~inputs)
  in
  (* The plan visits phases in ascending order per input, so the first
     phase-1 run of an input creates the phase-1 boundary checkpoint, the
     first phase-2 run extends it, and so on — each exact phase prefix is
     simulated at most once per (input, n_phases). *)
  let plan = sampling_plan ~config ~n_phases ~inputs app.App.abs in
  (* Parallelism is hoisted to whole inputs: the plan is input-major and
     contiguous per input, so each group below is one input's full run
     sequence.  One domain owning a whole input walks its phases in
     ascending order — preserving the checkpoint-extension property above
     without cross-domain coordination — and each group is big enough
     (per-input sweep + joint samples) to amortize a steal.  Results are
     concatenated in plan order, so the dataset is bit-identical to the
     flat per-task map at any job count. *)
  let groups =
    let acc = ref [] in
    let start = ref 0 in
    Array.iteri
      (fun i (t : task) ->
        if i > 0 && t.input != plan.(i - 1).input then begin
          acc := (!start, i - !start) :: !acc;
          start := i
        end)
      plan;
    if Array.length plan > 0 then acc := (!start, Array.length plan - !start) :: !acc;
    Array.of_list (List.rev !acc)
  in
  let samples =
    Trace.with_span ~cat:"training" "training.sampling" (fun () ->
        Array.concat
          (Array.to_list
             (Pool.parallel_map ?pool ~grain:1
                (fun (start, len) ->
                  Array.init len (fun j ->
                      let t = plan.(start + j) in
                      evaluate_sample ~classes ~app ~n_phases ~input:t.input ~phase:t.phase
                        t.levels))
                groups)))
  in
  Metrics.add m_runs (Array.length samples);
  Log.info (fun m ->
      m "collected %d profiling runs for %s (%d phases, %d inputs)" (Array.length samples)
        app.App.name n_phases (Array.length inputs));
  { app; n_phases; samples; classes }

let samples_of_phase t phase =
  Array.of_seq (Seq.filter (fun (s : sample) -> s.phase = phase) (Array.to_seq t.samples))

let local_samples t ~ab ~phase =
  let is_local (s : sample) =
    s.phase = phase
    && s.levels.(ab) > 0
    && Array.for_all (fun l -> l = 0) (Array.mapi (fun i l -> if i = ab then 0 else l) s.levels)
  in
  Array.of_seq (Seq.filter is_local (Array.to_seq t.samples))

let n_runs t = Array.length t.samples

(* -------------------------------------------------------- serialization *)

module Sexp = Opprox_util.Sexp

let sample_to_sexp (s : sample) =
  Sexp.record
    [
      ("input", Sexp.float_array s.input);
      ("phase", Sexp.int s.phase);
      ("levels", Sexp.int_array s.levels);
      ("speedup", Sexp.float s.speedup);
      ("qos", Sexp.float s.qos);
      ("iters_ratio", Sexp.float s.iters_ratio);
      ("trace_class", Sexp.int s.trace_class);
    ]

let sample_of_sexp sexp =
  {
    input = Sexp.to_float_array (Sexp.field sexp "input");
    phase = Sexp.to_int (Sexp.field sexp "phase");
    levels = Sexp.to_int_array (Sexp.field sexp "levels");
    speedup = Sexp.to_float (Sexp.field sexp "speedup");
    qos = Sexp.to_float (Sexp.field sexp "qos");
    iters_ratio = Sexp.to_float (Sexp.field sexp "iters_ratio");
    trace_class = Sexp.to_int (Sexp.field sexp "trace_class");
  }

let to_sexp t =
  Sexp.record
    [
      ("app", Sexp.string t.app.App.name);
      ("n_phases", Sexp.int t.n_phases);
      ("samples", Sexp.list (Array.to_list (Array.map sample_to_sexp t.samples)));
      ("classes", Cfmodel.to_sexp t.classes);
    ]

let of_sexp ~resolve sexp =
  {
    app = resolve (Sexp.to_string_atom (Sexp.field sexp "app"));
    n_phases = Sexp.to_int (Sexp.field sexp "n_phases");
    samples =
      Array.of_list (List.map sample_of_sexp (Sexp.to_list (Sexp.field sexp "samples")));
    classes = Cfmodel.of_sexp (Sexp.field sexp "classes");
  }
