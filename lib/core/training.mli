(** Training-data collection (paper Sec. 3.3).

    For each training input and each phase, the sampler exhaustively
    sweeps every AB's AL range while the other ABs run exactly (the data
    behind the {e local} models), then draws sparse random joint
    configurations to capture multi-AB interaction (the data behind the
    {e overall} models).  Every run is scored against the input's exact
    execution: whole-run speedup, whole-run QoS degradation, and the
    outer-loop iteration count. *)

type sample = {
  input : float array;  (** the input-parameter vector *)
  phase : int;  (** phase that was approximated (others exact) *)
  levels : int array;  (** AL vector active during that phase *)
  speedup : float;
  qos : float;  (** percent degradation *)
  iters_ratio : float;  (** approximate iterations / exact iterations *)
  trace_class : int;  (** control-flow class id (see {!Cfmodel}) *)
}

type t = {
  app : Opprox_sim.App.t;
  n_phases : int;
  samples : sample array;
  classes : Cfmodel.t;
}

type config = {
  joint_samples_per_phase : int;  (** sparse random joint samples; default 12 *)
  inputs : float array array option;
      (** override the app's training inputs (e.g. to subsample) *)
  seed : int;
}

val default_config : config

val collect : ?config:config -> ?pool:Opprox_util.Pool.t -> Opprox_sim.App.t -> n_phases:int -> t
(** Run the instrumented application over the sampling plan.  The exact
    baseline is executed {e once per input}, up front, warming the
    driver's exact-run memo; every sample in the plan is then evaluated
    against that baseline, fanned out over [?pool] (default:
    {!Opprox_util.Pool.default}).  The plan visits phases in ascending
    order per input, which is exactly the checkpoint-friendly order: each
    sample's exact phase prefix is restored from the driver's boundary
    checkpoints instead of being re-simulated (each prefix is executed at
    most once per (input, n_phases) at [--jobs 1]).  The plan itself —
    including every random joint configuration — is drawn sequentially
    from [config.seed] before any parallel execution starts, so the
    collected dataset is bit-identical whatever the domain count. *)

val samples_of_phase : t -> int -> sample array

val local_samples : t -> ab:int -> phase:int -> sample array
(** Samples in which only [ab] was approximated (the local-model data). *)

val n_runs : t -> int
(** Number of approximate executions the collection performed. *)

val sample_to_sexp : sample -> Opprox_util.Sexp.t
val sample_of_sexp : Opprox_util.Sexp.t -> sample

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize the collected dataset (the application itself is stored by
    name; {!of_sexp} re-resolves it through the caller). *)

val of_sexp : resolve:(string -> Opprox_sim.App.t) -> Opprox_util.Sexp.t -> t
(** [resolve] maps the stored application name back to its descriptor
    (e.g. [Opprox_apps.Registry.find]). *)
