module Sexp = Opprox_util.Sexp
module Schedule = Opprox_sim.Schedule
module Optimizer = Opprox.Optimizer
module Diagnostic = Opprox_analysis.Diagnostic

let magic = "OPXCORP1"
let version = 1
let header_bytes = 64
let exact_entry_bytes = 24
let nn_entry_bytes = 32

type entry = {
  app : string;
  input : float array;
  budget : float;
  models_hash : string;
  plan : Optimizer.plan;
}

type map = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* Decode-once memo, one slot per index entry.  A slot always names the
   same immutable record, so a benign last-writer-wins race is sound; a
   repeat hit costs an atomic read instead of a plan decode. *)
type cached = { cfp : string; cplan : Optimizer.plan }

type t = {
  map : map;
  file : string;
  n : int;
  index_off : int;
  nn_off : int;
  records_off : int;
  records_stop : int;
  meta_apps : (string * string) list;  (* sorted by app *)
  meta_budgets : float array;  (* ascending *)
  exact_memo : cached option Atomic.t array;
  nn_memo : cached option Atomic.t array;
}

let length t = t.n
let path t = t.file
let apps t = t.meta_apps
let models_hash t app = List.assoc_opt app t.meta_apps
let budgets t = t.meta_budgets

(* ------------------------------------------------------------------ *)
(* Little-endian primitives over the mapped file.                      *)

let get_i64 (m : map) off =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code m.{off + i}))
  done;
  !v

let get_u32 (m : map) off =
  Char.code m.{off}
  lor (Char.code m.{off + 1} lsl 8)
  lor (Char.code m.{off + 2} lsl 16)
  lor (Char.code m.{off + 3} lsl 24)

let get_f64 m off = Int64.float_of_bits (get_i64 m off)
let get_string (m : map) off len = String.init len (fun i -> m.{off + i})

let buf_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let buf_i64 b v = Buffer.add_int64_le b v
let buf_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

(* ------------------------------------------------------------------ *)
(* Plan codec: fixed binary layout, no parsing beyond bounds checks.   *)

let encode_plan b (p : Optimizer.plan) =
  buf_f64 b p.budget;
  buf_f64 b p.predicted_speedup;
  buf_f64 b p.predicted_qos;
  let np = Schedule.n_phases p.schedule and na = Schedule.n_abs p.schedule in
  buf_u32 b np;
  buf_u32 b na;
  for ph = 0 to np - 1 do
    Array.iter (buf_u32 b) (Schedule.levels_of_phase p.schedule ph)
  done;
  buf_u32 b (List.length p.choices);
  List.iter
    (fun (c : Optimizer.phase_choice) ->
      buf_u32 b c.phase;
      buf_u32 b (Array.length c.levels);
      Array.iter (buf_u32 b) c.levels;
      buf_f64 b c.sub_budget;
      buf_f64 b c.predicted.speedup;
      buf_f64 b c.predicted.qos;
      buf_f64 b c.predicted.speedup_lo;
      buf_f64 b c.predicted.qos_hi;
      buf_f64 b c.predicted.iters_ratio)
    p.choices

(* Generous sanity caps: a corrupt count must fail loudly, not allocate. *)
let max_dim = 65536

let decode_plan (m : map) ~pos ~stop : Optimizer.plan =
  let p = ref pos in
  let need n =
    if !p + n > stop then failwith "truncated plan record"
  in
  let f64 () =
    need 8;
    let v = get_f64 m !p in
    p := !p + 8;
    v
  in
  let u32 () =
    need 4;
    let v = get_u32 m !p in
    p := !p + 4;
    v
  in
  let dim what v =
    if v < 0 || v > max_dim then failwith (Printf.sprintf "implausible %s count %d" what v);
    v
  in
  let budget = f64 () in
  let predicted_speedup = f64 () in
  let predicted_qos = f64 () in
  let np = dim "phase" (u32 ()) in
  let na = dim "ab" (u32 ()) in
  let rows = Array.init np (fun _ -> Array.init na (fun _ -> u32 ())) in
  let schedule = Schedule.make rows in
  let n_choices = dim "choice" (u32 ()) in
  let choices =
    List.init n_choices (fun _ ->
        let phase = u32 () in
        let n_levels = dim "level" (u32 ()) in
        let levels = Array.init n_levels (fun _ -> u32 ()) in
        let sub_budget = f64 () in
        let speedup = f64 () in
        let qos = f64 () in
        let speedup_lo = f64 () in
        let qos_hi = f64 () in
        let iters_ratio = f64 () in
        {
          Optimizer.phase;
          levels;
          sub_budget;
          predicted = { Opprox.Models.speedup; qos; speedup_lo; qos_hi; iters_ratio };
        })
  in
  if !p <> stop then failwith "trailing bytes in plan record";
  { Optimizer.schedule; choices; predicted_speedup; predicted_qos; budget }

(* ------------------------------------------------------------------ *)
(* Write                                                               *)

let meta_sexp ~apps ~budgets ~n =
  Sexp.record
    [
      ("version", Sexp.int version);
      ("entries", Sexp.int n);
      ( "apps",
        Sexp.list
          (List.map (fun (a, h) -> Sexp.list [ Sexp.string a; Sexp.string h ]) apps) );
      ("budgets", Sexp.float_array budgets);
    ]

let meta_of_sexp sexp =
  let apps =
    List.map
      (fun s ->
        match Sexp.to_list s with
        | [ a; h ] -> (Sexp.to_string_atom a, Sexp.to_string_atom h)
        | _ -> failwith "corpus meta: malformed apps entry")
      (Sexp.to_list (Sexp.field sexp "apps"))
  in
  let budgets = Sexp.to_float_array (Sexp.field sexp "budgets") in
  (Sexp.to_int (Sexp.field sexp "version"), Sexp.to_int (Sexp.field sexp "entries"), apps, budgets)

let write file entries =
  if entries = [] then invalid_arg "Corpus.write: empty entry list";
  (* One models hash per app, or the corpus is self-contradictory. *)
  let app_hashes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match Hashtbl.find_opt app_hashes e.app with
      | None -> Hashtbl.add app_hashes e.app e.models_hash
      | Some h when h = e.models_hash -> ()
      | Some _ ->
          invalid_arg
            (Printf.sprintf "Corpus.write: app %s appears with two models hashes" e.app))
    entries;
  let seen = Hashtbl.create (List.length entries) in
  let records = Buffer.create 4096 in
  let packed =
    List.map
      (fun e ->
        let group = Key.group ~app:e.app ~input:e.input ~models_hash:e.models_hash in
        let fp = Key.of_group ~group ~budget:e.budget in
        if Hashtbl.mem seen fp then
          invalid_arg (Printf.sprintf "Corpus.write: duplicate fingerprint %s" fp);
        Hashtbl.add seen fp ();
        let off = Buffer.length records in
        buf_u32 records (String.length fp);
        Buffer.add_string records fp;
        encode_plan records e.plan;
        let len = Buffer.length records - off in
        (Key.hash64 fp, Key.hash64 group, e.budget, off, len))
      entries
  in
  let n = List.length packed in
  let exact = Array.of_list (List.map (fun (h, _, _, off, len) -> (h, off, len)) packed) in
  Array.sort
    (fun (h1, o1, _) (h2, o2, _) ->
      match Int64.unsigned_compare h1 h2 with 0 -> compare o1 o2 | c -> c)
    exact;
  let nn = Array.of_list (List.map (fun (_, g, b, off, len) -> (g, b, off, len)) packed) in
  Array.sort
    (fun (g1, b1, o1, _) (g2, b2, o2, _) ->
      match Int64.unsigned_compare g1 g2 with
      | 0 -> ( match compare b1 b2 with 0 -> compare o1 o2 | c -> c)
      | c -> c)
    nn;
  let apps =
    Hashtbl.fold (fun a h acc -> (a, h) :: acc) app_hashes []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let grid =
    List.sort_uniq compare (List.map (fun e -> e.budget) entries) |> Array.of_list
  in
  let meta = Sexp.to_string (meta_sexp ~apps ~budgets:grid ~n) in
  let meta_off = header_bytes in
  let index_off = meta_off + String.length meta in
  let nn_off = index_off + (n * exact_entry_bytes) in
  let records_off = nn_off + (n * nn_entry_bytes) in
  let records_len = Buffer.length records in
  let header = Buffer.create header_bytes in
  Buffer.add_string header magic;
  buf_u32 header version;
  buf_u32 header n;
  buf_i64 header (Int64.of_int meta_off);
  buf_i64 header (Int64.of_int (String.length meta));
  buf_i64 header (Int64.of_int index_off);
  buf_i64 header (Int64.of_int nn_off);
  buf_i64 header (Int64.of_int records_off);
  buf_i64 header (Int64.of_int records_len);
  assert (Buffer.length header = header_bytes);
  let body = Buffer.create (records_off + records_len) in
  Buffer.add_buffer body header;
  Buffer.add_string body meta;
  Array.iter
    (fun (h, off, len) ->
      buf_i64 body h;
      buf_i64 body (Int64.of_int (records_off + off));
      buf_u32 body len;
      buf_u32 body 0)
    exact;
  Array.iter
    (fun (g, b, off, len) ->
      buf_i64 body g;
      buf_f64 body b;
      buf_i64 body (Int64.of_int (records_off + off));
      buf_u32 body len;
      buf_u32 body 0)
    nn;
  Buffer.add_buffer body records;
  let tmp = Printf.sprintf "%s.tmp.%d" file (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> Buffer.output_buffer oc body)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp file

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let corrupt file fmt = Printf.ksprintf (fun s -> failwith (file ^ ": corpus: " ^ s)) fmt

let load file =
  let fd =
    try Unix.openfile file [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) -> corrupt file "cannot open (%s)" (Unix.error_message e)
  in
  let map, size =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < header_bytes then corrupt file "truncated header (%d bytes)" size;
        ( Bigarray.array1_of_genarray
            (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| size |]),
          size ))
  in
  if get_string map 0 8 <> magic then corrupt file "bad magic";
  let v = get_u32 map 8 in
  if v <> version then corrupt file "unsupported corpus version %d" v;
  let n = get_u32 map 12 in
  let i64_field off =
    let v = get_i64 map off in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int size) > 0 then
      corrupt file "section offset out of bounds";
    Int64.to_int v
  in
  let meta_off = i64_field 16 in
  let meta_len = i64_field 24 in
  let index_off = i64_field 32 in
  let nn_off = i64_field 40 in
  let records_off = i64_field 48 in
  let records_len = i64_field 56 in
  if
    n < 0
    || meta_off <> header_bytes
    || index_off <> meta_off + meta_len
    || nn_off <> index_off + (n * exact_entry_bytes)
    || records_off <> nn_off + (n * nn_entry_bytes)
    || records_off + records_len > size
  then corrupt file "inconsistent section layout";
  let meta_sexp =
    try Sexp.of_string (get_string map meta_off meta_len)
    with Failure m -> corrupt file "meta unreadable (%s)" m
  in
  let mv, mn, meta_apps, meta_budgets =
    try meta_of_sexp meta_sexp with Failure m -> corrupt file "meta unreadable (%s)" m
  in
  if mv <> version || mn <> n then corrupt file "meta disagrees with header";
  { map; file; n; index_off; nn_off; records_off; records_stop = records_off + records_len;
    meta_apps; meta_budgets;
    exact_memo = Array.init n (fun _ -> Atomic.make None);
    nn_memo = Array.init n (fun _ -> Atomic.make None) }

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let exact_hash t i = get_i64 t.map (t.index_off + (i * exact_entry_bytes))

let exact_record t i =
  let base = t.index_off + (i * exact_entry_bytes) in
  (Int64.to_int (get_i64 t.map (base + 8)), get_u32 t.map (base + 16))

let nn_hash t i = get_i64 t.map (t.nn_off + (i * nn_entry_bytes))
let nn_budget t i = get_f64 t.map (t.nn_off + (i * nn_entry_bytes) + 8)

let nn_record t i =
  let base = t.nn_off + (i * nn_entry_bytes) in
  (Int64.to_int (get_i64 t.map (base + 16)), get_u32 t.map (base + 24))

(* First index in [0, n) whose hash (via [hash_at]) is >= [h], by
   unsigned comparison; [n] when none is. *)
let lower_bound t hash_at h =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.unsigned_compare (hash_at t mid) h < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* Decode the record at (off, len), returning its fingerprint and plan.
   Raises [Failure] on any structural problem. *)
let read_record t (off, len) =
  if off < t.records_off || off + len > t.records_stop || len < 4 then
    failwith "record out of bounds";
  let fp_len = get_u32 t.map off in
  if fp_len < 0 || 4 + fp_len > len then failwith "record fingerprint out of bounds";
  let fp = get_string t.map (off + 4) fp_len in
  (fp, lazy (decode_plan t.map ~pos:(off + 4 + fp_len) ~stop:(off + len)))

let find_opt t fp =
  let h = Key.hash64 fp in
  let rec scan i =
    if i >= t.n || not (Int64.equal (exact_hash t i) h) then None
    else
      match Atomic.get t.exact_memo.(i) with
      | Some c -> if String.equal c.cfp fp then Some c.cplan else scan (i + 1)
      | None ->
          let stored_fp, plan = read_record t (exact_record t i) in
          if String.equal stored_fp fp then begin
            let p = Lazy.force plan in
            Atomic.set t.exact_memo.(i) (Some { cfp = stored_fp; cplan = p });
            Some p
          end
          else scan (i + 1)
  in
  scan (lower_bound t exact_hash h)

let find t fp = try find_opt t fp with Failure _ -> None
let mem t fp = find t fp <> None

let find_nn t ~group ~budget =
  let gh = Key.hash64 group in
  let prefix = group ^ "|" in
  let plen = String.length prefix in
  (* The equal-hash run is budget-ascending, so the last verified
     candidate with b <= budget is the nearest one below — and once a
     budget exceeds the request, every later entry in the run does too. *)
  (* full-key check: rules out a group-hash collision *)
  let in_group fp = String.starts_with ~prefix fp && not (String.contains_from fp plen '|') in
  let rec scan i best =
    if i >= t.n || not (Int64.equal (nn_hash t i) gh) then best
    else
      let b = nn_budget t i in
      if b > budget then best
      else
        let best =
          match Atomic.get t.nn_memo.(i) with
          | Some c -> if in_group c.cfp then Some (b, `Cached c.cplan) else best
          | None -> (
              match read_record t (nn_record t i) with
              | exception Failure _ -> best
              | fp, plan when in_group fp -> Some (b, `Fresh (i, fp, plan))
              | _ -> best)
        in
        scan (i + 1) best
  in
  match scan (lower_bound t nn_hash gh) None with
  | None -> None
  | Some (b, `Cached plan) -> Some (b, plan)
  | Some (b, `Fresh (i, fp, plan)) -> (
      try
        let p = Lazy.force plan in
        Atomic.set t.nn_memo.(i) (Some { cfp = fp; cplan = p });
        Some (b, p)
      with Failure _ -> None)

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let d = Diagnostic.v

let lint_file ?(expected_hashes = []) file =
  match load file with
  | exception Failure msg -> [ d ~code:"CORP002" Diagnostic.Error "%s" msg ]
  | t ->
      let ds = ref [] in
      let add x = ds := x :: !ds in
      for i = 0 to t.n - 2 do
        if Int64.unsigned_compare (exact_hash t i) (exact_hash t (i + 1)) > 0 then
          add
            (d ~code:"CORP002" ~detail:(Printf.sprintf "index entry %d" i) Diagnostic.Error
               "exact index out of order")
      done;
      for i = 0 to t.n - 2 do
        let c = Int64.unsigned_compare (nn_hash t i) (nn_hash t (i + 1)) in
        if c > 0 || (c = 0 && nn_budget t i > nn_budget t (i + 1)) then
          add
            (d ~code:"CORP002" ~detail:(Printf.sprintf "nn entry %d" i) Diagnostic.Error
               "nearest-neighbour index out of order")
      done;
      for i = 0 to t.n - 1 do
        match read_record t (exact_record t i) with
        | exception Failure msg ->
            add
              (d ~code:"CORP004" ~detail:(Printf.sprintf "record %d" i) Diagnostic.Error
                 "undecodable record: %s" msg)
        | fp, plan -> (
            match Lazy.force plan with
            | exception e ->
                add
                  (d ~code:"CORP004" ~detail:(Printf.sprintf "record %d" i) Diagnostic.Error
                     "undecodable plan: %s" (Printexc.to_string e))
            | plan ->
                let suffix = Printf.sprintf "|%Lx" (Int64.bits_of_float plan.budget) in
                if not (String.ends_with ~suffix fp) then
                  add
                    (d ~code:"CORP004" ~detail:(Printf.sprintf "record %d" i)
                       Diagnostic.Error "packed budget disagrees with the fingerprint"))
      done;
      List.iter
        (fun (app, hash) ->
          match models_hash t app with
          | None ->
              add
                (d ~code:"CORP003" ~app Diagnostic.Warning
                   "corpus holds no plans for this application")
          | Some h when h <> hash ->
              add
                (d ~code:"CORP001" ~app
                   ~detail:(Printf.sprintf "corpus %s loaded %s" h hash)
                   Diagnostic.Error "corpus models hash is stale")
          | Some _ -> ())
        expected_hashes;
      List.rev !ds

let lint_coverage t ~app ~budget =
  match models_hash t app with
  | None ->
      [ d ~code:"CORP003" ~app Diagnostic.Warning "corpus holds no plans for this application" ]
  | Some _ ->
      if Array.length t.meta_budgets = 0 || budget < t.meta_budgets.(0) then
        [
          d ~code:"CORP003" ~app Diagnostic.Warning
            "budget %g sits below the corpus grid (minimum %g): no exact or \
             nearest-neighbour candidate"
            budget
            (if Array.length t.meta_budgets = 0 then nan else t.meta_budgets.(0));
        ]
      else []
