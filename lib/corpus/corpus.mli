(** Persistent precomputed plan corpus.

    The paper's premise is that phase-aware plans can be computed ahead
    of time and applied cheaply at run time.  This module is the "ahead
    of time" artifact: a binary, mmap-friendly file holding every plan a
    {!Precompute} sweep produced, addressable in O(log n) by the
    canonical {!Key} fingerprint — so the serving daemon can answer a
    known request without taking a lock, touching the LRU, or solving.

    {2 File format}

    All integers little-endian.  A fixed 64-byte header (magic
    [OPXCORP1], version, entry count, section offsets) is followed by
    four sections:

    + {b meta} — an s-expression: the (app, models-hash) pairs the
      corpus was built against, the budget grid, and the input count.
      The models hash stamps the corpus for invalidation: plans for
      models the server did not load can never match (the hash is part
      of every fingerprint), and {!lint_file} reports the mismatch
      explicitly (CORP001).
    + {b exact index} — one 24-byte entry per plan, sorted by the
      64-bit {!Key.hash64} of the fingerprint.  Lookup is a binary
      search plus a full-key compare on the (nearly always singleton)
      equal-hash run, so hash collisions cost a string compare, never a
      wrong answer.
    + {b nn index} — one 32-byte entry per plan, sorted by
      (group hash, budget): the budget axis of one (app, input, models)
      group laid out contiguously, which is what the nearest-neighbour
      fallback walks.
    + {b records} — the fingerprint and the plan, packed in a fixed
      binary layout (no s-expression parsing on the lookup path).

    {!load} maps the file ([Unix.map_file]) and validates the header
    and section bounds in O(1); nothing is parsed until a lookup hits
    it.  Files are written atomically (temp file + rename). *)

type t

type entry = {
  app : string;
  input : float array;
  budget : float;
  models_hash : string;
  plan : Opprox.Optimizer.plan;
}

val write : string -> entry list -> unit
(** Pack and atomically write a corpus.  Raises [Invalid_argument] on an
    empty entry list, on duplicate fingerprints, or when one app appears
    with two different models hashes; [Failure] on IO errors. *)

val load : string -> t
(** Map a corpus file and validate its header, section bounds, and
    index ordering (O(1) + O(log n) spot checks; records are parsed
    lazily per lookup).  Raises [Failure] with a [CORP]-flavoured
    message on anything structurally wrong. *)

val length : t -> int
val path : t -> string

val apps : t -> (string * string) list
(** The (app, models hash) pairs the corpus covers, sorted by app. *)

val models_hash : t -> string -> string option
val budgets : t -> float array
(** The budget grid the corpus was swept over, ascending. *)

val find : t -> string -> Opprox.Optimizer.plan option
(** Exact lookup by full fingerprint ({!Key.fingerprint}). *)

val find_nn : t -> group:string -> budget:float -> (float * Opprox.Optimizer.plan) option
(** Nearest-neighbour fallback within one {!Key.group}: the plan of the
    {e largest} grid budget [b <= budget] — conservative tightening, so
    the returned plan's predicted QoS fits the tighter budget [b] and a
    fortiori the requested one.  [None] when the group is absent or the
    whole grid sits above [budget]. *)

val mem : t -> string -> bool

(** {2 Diagnostics} *)

val lint_file :
  ?expected_hashes:(string * string) list -> string -> Opprox_analysis.Diagnostic.t list
(** Audit a corpus file: CORP002 for a truncated, mis-ordered, or
    structurally invalid file; CORP004 for records that fail to decode
    or whose packed budget disagrees with their fingerprint; CORP001
    when [expected_hashes] (app, hash) pairs disagree with the stamped
    ones.  Unlike {!load} this gathers every finding instead of
    stopping at the first, and it decodes every record. *)

val lint_coverage :
  t -> app:string -> budget:float -> Opprox_analysis.Diagnostic.t list
(** CORP003 (warning) when the corpus cannot answer a request for
    [app] at [budget] even through the nearest-neighbour fallback:
    the app is absent, or the budget sits below the whole grid. *)
