let add_float_bits b x =
  Buffer.add_string b (Printf.sprintf "%Lx" (Int64.bits_of_float x))

let group ~app ~input ~models_hash =
  let b =
    Buffer.create
      (String.length app + String.length models_hash + (17 * Array.length input) + 4)
  in
  Buffer.add_string b app;
  Buffer.add_char b '|';
  Array.iter
    (fun x ->
      add_float_bits b x;
      Buffer.add_char b '.')
    input;
  Buffer.add_char b '|';
  Buffer.add_string b models_hash;
  Buffer.contents b

let of_group ~group ~budget =
  let b = Buffer.create (String.length group + 18) in
  Buffer.add_string b group;
  Buffer.add_char b '|';
  add_float_bits b budget;
  Buffer.contents b

let fingerprint ~app ~input ~budget ~models_hash =
  of_group ~group:(group ~app ~input ~models_hash) ~budget

(* Chained SplitMix64 finalisers over little-endian 8-byte chunks; the
   tail chunk is zero-padded and the length mixed in so "a" and "a\000"
   differ.  Quality is far beyond what the corpus index needs (equal-hash
   runs are resolved by comparing stored keys anyway). *)
let hash64 s =
  let n = String.length s in
  let chunk off =
    let v = ref 0L in
    for i = 7 downto 0 do
      let byte = if off + i < n then Char.code s.[off + i] else 0 in
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int byte)
    done;
    !v
  in
  let h = ref (Opprox_util.Rng.mix64 (Int64.of_int n)) in
  let off = ref 0 in
  while !off < n do
    h := Opprox_util.Rng.mix64 (Int64.logxor !h (chunk !off));
    off := !off + 8
  done;
  !h
