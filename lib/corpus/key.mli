(** Canonical plan-request keys.

    One request for a plan is identified by (application, input vector,
    QoS budget, models hash).  The serving cache, the precomputed
    corpus, and the singleflight table all key on the same canonical
    string so an answer computed by any layer is addressable by every
    other.  Floats enter the key through their IEEE-754 bit patterns:
    two requests that are bitwise equal always collide — whatever
    intermediate re-parsing they went through — and anything a ulp
    apart never does.

    The key factors into a {e group} (everything but the budget) and
    the budget itself.  The corpus's nearest-neighbour fallback walks
    the budget axis {e within} one group: same app, same input bits,
    same models — only the budget differs. *)

val group : app:string -> input:float array -> models_hash:string -> string
(** [app | input bits… | models_hash] — the budget-independent part. *)

val of_group : group:string -> budget:float -> string
(** Append the budget's bit pattern to a {!group}. *)

val fingerprint :
  app:string -> input:float array -> budget:float -> models_hash:string -> string
(** [of_group ~group:(group ~app ~input ~models_hash) ~budget]. *)

val hash64 : string -> int64
(** Stable 64-bit hash of a key (chained SplitMix64 finalisers over
    8-byte chunks).  Independent of [Hashtbl.hash]'s representation, so
    safe to persist in the corpus index.  Collisions are possible and
    handled by comparing the stored full key. *)
