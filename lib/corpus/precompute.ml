module Sexp = Opprox_util.Sexp
module Pool = Opprox_util.Pool
module App = Opprox_sim.App
module Metrics = Opprox_obs.Metrics
module Diagnostic = Opprox_analysis.Diagnostic

let log_src = Logs.Src.create "opprox.corpus" ~doc:"OPPROX plan corpus"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_cells = Metrics.counter "corpus.precompute.cells"
let m_failed = Metrics.counter "corpus.precompute.failed"

type progress = { apps : int; tasks : int; cells : int; failed : int }

let models_hash (tr : Opprox.trained) =
  Digest.to_hex (Digest.string (Sexp.to_string (Opprox.Models.to_sexp tr.Opprox.models)))

let inputs_of (tr : Opprox.trained) =
  let key input =
    Array.to_list (Array.map Int64.bits_of_float input)
  in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun input ->
      let k = key input in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    (tr.Opprox.app.App.default_input :: Array.to_list tr.Opprox.app.App.training_inputs)

let check_budgets budgets =
  if Array.length budgets = 0 then invalid_arg "Precompute: empty budget grid";
  Array.iter
    (fun b ->
      if not (Float.is_finite b) || b <= 0.0 then
        invalid_arg (Printf.sprintf "Precompute: invalid grid budget %g" b))
    budgets

let sweep ?pool ?(inputs = inputs_of) ~budgets trained =
  check_budgets budgets;
  let budgets = Array.of_list (List.sort_uniq compare (Array.to_list budgets)) in
  (* One task per (app, input): the task solves the whole budget axis so
     the solver's prediction memo stays domain-local and shared. *)
  let tasks =
    Array.of_list
      (List.concat_map
         (fun tr ->
           let hash = models_hash tr in
           List.map (fun input -> (tr, hash, input)) (inputs tr))
         trained)
  in
  let results =
    Pool.parallel_map ?pool
      (fun (tr, hash, input) ->
        let solve =
          Opprox.Optimizer.solver ~models:tr.Opprox.models ~roi:tr.Opprox.roi ~input ()
        in
        Array.to_list budgets
        |> List.filter_map (fun budget ->
               match solve ~budget () with
               | plan ->
                   Metrics.incr m_cells;
                   Some
                     {
                       Corpus.app = tr.Opprox.app.App.name;
                       input;
                       budget;
                       models_hash = hash;
                       plan;
                     }
               | exception Diagnostic.Lint_error ds ->
                   Metrics.incr m_failed;
                   Log.warn (fun m ->
                       m "skipping %s budget %g: %a" tr.Opprox.app.App.name budget
                         Diagnostic.pp_list ds);
                   None))
      tasks
  in
  let entries = List.concat (Array.to_list results) in
  let cells = List.length entries in
  let failed = (Array.length tasks * Array.length budgets) - cells in
  (entries, { apps = List.length trained; tasks = Array.length tasks; cells; failed })

let run ?pool ?inputs ~budgets ~out trained =
  let entries, progress = sweep ?pool ?inputs ~budgets trained in
  if entries = [] then failwith "Precompute.run: sweep produced no plans";
  Corpus.write out entries;
  Log.info (fun m ->
      m "wrote %s: %d plans (%d apps, %d tasks, %d failed cells)" out progress.cells
        progress.apps progress.tasks progress.failed);
  progress
