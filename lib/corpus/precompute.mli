(** Bulk plan precomputation: the sweep that fills a {!Corpus}.

    The sweep enumerates (trained pipeline × input × budget-grid) cells
    and solves each one with {!Opprox.Optimizer.solver}, so the model
    compilation (input classification, regression scratch) and the
    (phase, levels) prediction memo are paid once per (app, input) and
    shared by every budget on the grid — the grid axis is nearly free
    next to a cold [optimize] per cell.  (App, input) tasks fan out
    across the work-stealing {!Opprox_util.Pool}; the budget axis runs
    inside one task to keep the memo domain-local. *)

type progress = { apps : int; tasks : int; cells : int; failed : int }

val models_hash : Opprox.trained -> string
(** Digest of the serialized models — the same stamp the serving daemon
    advertises and every cache/corpus fingerprint embeds.  Centralised
    here so the precompute sweep and the server can never drift. *)

val inputs_of : Opprox.trained -> float array list
(** The input grid for one pipeline: the app's default input followed by
    its declared training inputs, deduplicated bitwise. *)

val sweep :
  ?pool:Opprox_util.Pool.t ->
  ?inputs:(Opprox.trained -> float array list) ->
  budgets:float array ->
  Opprox.trained list ->
  Corpus.entry list * progress
(** Solve the whole grid and return the corpus entries (in deterministic
    task order) plus a tally.  [inputs] defaults to {!inputs_of}.
    Cells whose solve raises [Diagnostic.Lint_error] (e.g. a budget
    infeasible for one app) are counted in [failed] and skipped rather
    than aborting the sweep.  Raises [Invalid_argument] on an empty or
    non-positive budget grid. *)

val run :
  ?pool:Opprox_util.Pool.t ->
  ?inputs:(Opprox.trained -> float array list) ->
  budgets:float array ->
  out:string ->
  Opprox.trained list ->
  progress
(** {!sweep} followed by {!Corpus.write} to [out]. *)
