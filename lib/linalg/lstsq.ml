let normal_equations ?(ridge = 0.0) x y =
  let xt = Matrix.transpose x in
  let xtx = Matrix.mul xt x in
  let n = Matrix.rows xtx in
  let lhs =
    if ridge = 0.0 then xtx else Matrix.add xtx (Matrix.scale (Matrix.identity n) ridge)
  in
  let rhs = Matrix.mul_vec xt y in
  Matrix.solve lhs rhs

let fit_diag ?(ridge = 0.0) x y =
  if Matrix.rows x <> Array.length y then invalid_arg "Lstsq.fit: dimension mismatch";
  (* Preferred route: Householder QR (works on the design matrix directly,
     so the conditioning is not squared).  Rank-deficient systems fall back
     to ridge-stabilized normal equations, escalating the penalty —
     degree-6 polynomial bases over near-collinear features routinely
     defeat unregularized solves.  The R diagonal is kept either way: it
     is the conditioning evidence the static model checker audits. *)
  let r_diag, qr_solution =
    if Matrix.rows x >= Matrix.cols x then begin
      let qr = Qr.decompose x in
      let solution =
        if Qr.rank_deficient qr then None
        else match Qr.solve qr y with w -> Some w | exception Failure _ -> None
      in
      (Qr.r_diag qr, solution)
    end
    else ([||], None)
  in
  match qr_solution with
  | Some w -> (w, r_diag)
  | None ->
      let rec attempt ridge =
        match normal_equations ~ridge x y with
        | w -> w
        | exception Failure _ ->
            let next = if ridge = 0.0 then 1e-8 else ridge *. 100.0 in
            if next > 1.0 then failwith "Lstsq.fit: singular even with ridge"
            else attempt next
      in
      (attempt (Float.max ridge 1e-8), r_diag)

let fit ?ridge x y = fst (fit_diag ?ridge x y)

let predict x w = Matrix.mul_vec x w

let fit_predict ?ridge x y =
  let w = fit ?ridge x y in
  (w, predict x w)
