(** Linear least squares.

    Solves [min_w ||X w - y||^2] by Householder QR ({!Qr}) when the design
    matrix is full-rank and at least as tall as wide; otherwise by the
    normal equations [(X'X + lambda I) w = X'y] with geometrically
    escalating ridge penalties (polynomial design matrices become
    ill-conditioned as the degree grows). *)

val fit : ?ridge:float -> Matrix.t -> float array -> float array
(** [fit x y] returns the coefficient vector [w].  [ridge] (default [0.])
    is the initial penalty; on singularity the solver escalates the penalty
    up to [1.0] and raises [Failure] only if even that fails.  Requires
    [rows x = length y] and [rows x >= 1]. *)

val fit_diag : ?ridge:float -> Matrix.t -> float array -> float array * float array
(** Like {!fit}, but also returns the signed R-factor diagonal of the
    design matrix's QR decomposition ([[||]] when [rows < cols], where QR
    is unavailable).  The diagonal is returned even when the solve itself
    fell back to ridge-stabilized normal equations — that fallback is
    precisely the conditioning evidence the static model checker
    ({!Opprox_analysis.Lint_models}) wants to see. *)

val predict : Matrix.t -> float array -> float array
(** [predict x w] is [X w]. *)

val fit_predict : ?ridge:float -> Matrix.t -> float array -> float array * float array
(** Convenience: [(w, X w)]. *)
