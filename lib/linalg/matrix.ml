type t = { nrows : int; ncols : int; data : float array }

let create nrows ncols =
  if nrows <= 0 || ncols <= 0 then invalid_arg "Matrix.create: non-positive dimension";
  { nrows; ncols; data = Array.make (nrows * ncols) 0.0 }

let rows m = m.nrows
let cols m = m.ncols

let get m i j =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then invalid_arg "Matrix.get: out of bounds";
  m.data.((i * m.ncols) + j)

let set m i j v =
  if i < 0 || i >= m.nrows || j < 0 || j >= m.ncols then invalid_arg "Matrix.set: out of bounds";
  m.data.((i * m.ncols) + j) <- v

let init nrows ncols f =
  let m = create nrows ncols in
  for i = 0 to nrows - 1 do
    for j = 0 to ncols - 1 do
      m.data.((i * ncols) + j) <- f i j
    done
  done;
  m

let of_rows arr =
  let nrows = Array.length arr in
  if nrows = 0 then invalid_arg "Matrix.of_rows: no rows";
  let ncols = Array.length arr.(0) in
  if ncols = 0 then invalid_arg "Matrix.of_rows: empty row";
  Array.iter
    (fun r -> if Array.length r <> ncols then invalid_arg "Matrix.of_rows: ragged rows")
    arr;
  init nrows ncols (fun i j -> arr.(i).(j))

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let row m i = Array.init m.ncols (fun j -> get m i j)
let col m j = Array.init m.nrows (fun i -> get m i j)

let transpose m = init m.ncols m.nrows (fun i j -> get m j i)

let mul a b =
  if a.ncols <> b.nrows then invalid_arg "Matrix.mul: dimension mismatch";
  let c = create a.nrows b.ncols in
  for i = 0 to a.nrows - 1 do
    for k = 0 to a.ncols - 1 do
      let aik = a.data.((i * a.ncols) + k) in
      if aik <> 0.0 then
        for j = 0 to b.ncols - 1 do
          c.data.((i * c.ncols) + j) <-
            c.data.((i * c.ncols) + j) +. (aik *. b.data.((k * b.ncols) + j))
        done
    done
  done;
  c

let mul_vec a v =
  if a.ncols <> Array.length v then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init a.nrows (fun i ->
      let acc = ref 0.0 in
      for j = 0 to a.ncols - 1 do
        acc := !acc +. (a.data.((i * a.ncols) + j) *. v.(j))
      done;
      !acc)

let add a b =
  if a.nrows <> b.nrows || a.ncols <> b.ncols then invalid_arg "Matrix.add: dimension mismatch";
  { a with data = Array.mapi (fun i x -> x +. b.data.(i)) a.data }

let scale a s = { a with data = Array.map (fun x -> x *. s) a.data }

let copy m = { m with data = Array.copy m.data }

let solve a b =
  if a.nrows <> a.ncols then invalid_arg "Matrix.solve: matrix not square";
  if a.nrows <> Array.length b then invalid_arg "Matrix.solve: rhs dimension mismatch";
  let n = a.nrows in
  let m = copy a and x = Array.copy b in
  for k = 0 to n - 1 do
    (* Partial pivoting: pick the row with the largest entry in column k. *)
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if Float.abs (get m i k) > Float.abs (get m !pivot k) then pivot := i
    done;
    if Float.abs (get m !pivot k) < 1e-12 then failwith "Matrix.solve: singular";
    if !pivot <> k then begin
      for j = 0 to n - 1 do
        let tmp = get m k j in
        set m k j (get m !pivot j);
        set m !pivot j tmp
      done;
      let tmp = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- tmp
    end;
    for i = k + 1 to n - 1 do
      let factor = get m i k /. get m k k in
      if factor <> 0.0 then begin
        for j = k to n - 1 do
          set m i j (get m i j -. (factor *. get m k j))
        done;
        x.(i) <- x.(i) -. (factor *. x.(k))
      end
    done
  done;
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (get m i j *. x.(j))
    done;
    x.(i) <- !acc /. get m i i
  done;
  x

let equal ?(eps = 1e-9) a b =
  a.nrows = b.nrows && a.ncols = b.ncols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a.data b.data

let pp ppf m =
  for i = 0 to m.nrows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.ncols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%.6g" (get m i j)
    done;
    Format.fprintf ppf "]@\n"
  done
