(** Dense row-major float matrices.

    Just enough linear algebra to back polynomial regression: construction,
    products, transposition, and linear-system solving by Gaussian
    elimination with partial pivoting.  Dimensions here are tiny (design
    matrices of at most a few thousand rows and a few dozen columns), so
    clarity wins over blocking or vectorization. *)

type t
(** An [rows] x [cols] matrix.  Values are mutable through {!set}. *)

val create : int -> int -> t
(** [create rows cols] is the zero matrix.  Requires positive dimensions. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] fills entry [(i, j)] with [f i j]. *)

val of_rows : float array array -> t
(** Build from row vectors; all rows must have equal non-zero length.
    The input arrays are copied. *)

val identity : int -> t

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> float array
(** Copy of row [i]. *)

val col : t -> int -> float array
(** Copy of column [j]. *)

val transpose : t -> t

val mul : t -> t -> t
(** Matrix product.  Raises [Invalid_argument] on dimension mismatch. *)

val mul_vec : t -> float array -> float array
(** Matrix-vector product. *)

val add : t -> t -> t
val scale : t -> float -> t

val solve : t -> float array -> float array
(** [solve a b] solves the square system [a x = b] by Gaussian elimination
    with partial pivoting.  Raises [Failure "Matrix.solve: singular"] when a
    pivot underflows. *)

val copy : t -> t

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise comparison within absolute tolerance [eps] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
