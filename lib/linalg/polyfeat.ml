type t = { arity : int; degree : int; exponents : int array array }

(* Enumerate exponent vectors with total degree <= d, graded order:
   constant first, then degree 1 monomials, etc. *)
let enumerate_exponents arity degree =
  let acc = ref [] in
  let current = Array.make arity 0 in
  let rec go pos remaining =
    if pos = arity then acc := Array.copy current :: !acc
    else
      for e = 0 to remaining do
        current.(pos) <- e;
        go (pos + 1) (remaining - e);
        current.(pos) <- 0
      done
  in
  go 0 degree;
  let all = Array.of_list (List.rev !acc) in
  let total v = Array.fold_left ( + ) 0 v in
  (* Stable sort by total degree keeps a deterministic, readable order. *)
  let indexed = Array.mapi (fun i v -> (i, v)) all in
  Array.sort
    (fun (i, a) (j, b) ->
      match compare (total a) (total b) with 0 -> compare i j | c -> c)
    indexed;
  Array.map snd indexed

let create ?caps ~arity ~degree () =
  if arity < 1 then invalid_arg "Polyfeat.create: arity must be >= 1";
  if degree < 0 then invalid_arg "Polyfeat.create: degree must be >= 0";
  let exponents = enumerate_exponents arity degree in
  let exponents =
    match caps with
    | None -> exponents
    | Some caps ->
        if Array.length caps <> arity then invalid_arg "Polyfeat.create: caps arity mismatch";
        Array.of_seq
          (Seq.filter
             (fun expv ->
               let ok = ref true in
               Array.iteri (fun j e -> if e > caps.(j) then ok := false) expv;
               !ok)
             (Array.to_seq exponents))
  in
  { arity; degree; exponents }

let of_exponents exponents =
  let n = Array.length exponents in
  if n = 0 then invalid_arg "Polyfeat.of_exponents: empty";
  let arity = Array.length exponents.(0) in
  if arity = 0 then invalid_arg "Polyfeat.of_exponents: zero arity";
  Array.iter
    (fun e -> if Array.length e <> arity then invalid_arg "Polyfeat.of_exponents: ragged")
    exponents;
  let degree =
    Array.fold_left (fun acc e -> Stdlib.max acc (Array.fold_left ( + ) 0 e)) 0 exponents
  in
  { arity; degree; exponents = Array.map Array.copy exponents }

let arity t = t.arity
let degree t = t.degree
let output_dim t = Array.length t.exponents
let exponents t = Array.to_list (Array.map Array.copy t.exponents)

let pow x n =
  let rec go acc x n =
    if n = 0 then acc
    else if n land 1 = 1 then go (acc *. x) (x *. x) (n lsr 1)
    else go acc (x *. x) (n lsr 1)
  in
  go 1.0 x n

let apply_into t raw out =
  if Array.length raw <> t.arity then invalid_arg "Polyfeat.apply_into: arity mismatch";
  if Array.length out <> Array.length t.exponents then
    invalid_arg "Polyfeat.apply_into: output dim mismatch";
  for m = 0 to Array.length t.exponents - 1 do
    let expv = t.exponents.(m) in
    let acc = ref 1.0 in
    Array.iteri (fun i e -> if e > 0 then acc := !acc *. pow raw.(i) e) expv;
    out.(m) <- !acc
  done

let apply t raw =
  if Array.length raw <> t.arity then invalid_arg "Polyfeat.apply: arity mismatch";
  let out = Array.make (Array.length t.exponents) 0.0 in
  apply_into t raw out;
  out

let design_matrix t rows =
  if Array.length rows = 0 then invalid_arg "Polyfeat.design_matrix: no rows";
  Matrix.of_rows (Array.map (apply t) rows)
