(** Polynomial feature expansion.

    Maps a raw feature vector [(x1, ..., xk)] to the vector of all monomials
    [x1^e1 * ... * xk^ek] with [e1 + ... + ek <= degree], constant term
    included.  This is the basis OPPROX's polynomial-regression models are
    fit in (paper Sec. 3.6: "c0 + c1 s1 + c2 s2 + c3 s1 s2 + c4 s1^2 + ..."). *)

type t
(** A feature map for a fixed input arity and degree. *)

val create : ?caps:int array -> arity:int -> degree:int -> unit -> t
(** Requires [arity >= 1] and [degree >= 0].  [caps.(j)], when given,
    bounds the exponent of feature [j] in every monomial: a feature
    observed at only [k] distinct values cannot identify powers above
    [k - 1], and uncapped fits oscillate wildly between the observed
    values. *)

val arity : t -> int
val degree : t -> int

val output_dim : t -> int
(** Number of monomials, i.e. [C(arity + degree, degree)]. *)

val of_exponents : int array array -> t
(** Rebuild a feature map from explicit exponent vectors (deserialization).
    Requires a non-empty, rectangular array; the degree is the largest
    total degree present. *)

val exponents : t -> int array list
(** The exponent vector of each monomial, in output order.  The first entry
    is the all-zero vector (constant term). *)

val apply : t -> float array -> float array
(** Expand one raw feature vector.  Raises [Invalid_argument] on arity
    mismatch. *)

val apply_into : t -> float array -> float array -> unit
(** [apply_into t raw out] expands [raw] into the preallocated buffer
    [out] (length {!output_dim}), allocation-free.  The hot prediction
    loops reuse one buffer across millions of expansions; see
    {!Opprox_ml.Polyreg.predictor}.  Raises [Invalid_argument] on arity
    or output-length mismatch. *)

val design_matrix : t -> float array array -> Matrix.t
(** Expand a batch of raw feature vectors into a design matrix with one
    expanded row per input row. *)
