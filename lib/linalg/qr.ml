type t = {
  m : int;
  n : int;
  (* Compact storage: the upper triangle holds R; each column's lower
     part holds the essential part of its Householder vector. *)
  a : float array array;
  beta : float array; (* 2 / (v'v) per reflector *)
  v0 : float array; (* leading component of each Householder vector *)
}

let decompose matrix =
  let m = Matrix.rows matrix and n = Matrix.cols matrix in
  if m < n then invalid_arg "Qr.decompose: need rows >= cols";
  let a = Array.init m (fun i -> Array.init n (fun j -> Matrix.get matrix i j)) in
  let beta = Array.make n 0.0 and v0 = Array.make n 0.0 in
  for k = 0 to n - 1 do
    (* Householder vector annihilating a.(k+1..m-1).(k). *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (a.(i).(k) *. a.(i).(k))
    done;
    let norm = sqrt !norm in
    if norm > 0.0 then begin
      let alpha = if a.(k).(k) >= 0.0 then -.norm else norm in
      let v_head = a.(k).(k) -. alpha in
      let vtv = ref (v_head *. v_head) in
      for i = k + 1 to m - 1 do
        vtv := !vtv +. (a.(i).(k) *. a.(i).(k))
      done;
      if !vtv > 0.0 then begin
        let b = 2.0 /. !vtv in
        beta.(k) <- b;
        v0.(k) <- v_head;
        (* Apply the reflector to the remaining columns. *)
        for j = k to n - 1 do
          let dot = ref (v_head *. a.(k).(j)) in
          for i = k + 1 to m - 1 do
            dot := !dot +. (a.(i).(k) *. a.(i).(j))
          done;
          let s = b *. !dot in
          a.(k).(j) <- a.(k).(j) -. (s *. v_head);
          for i = k + 1 to m - 1 do
            if j = k then () else a.(i).(j) <- a.(i).(j) -. (s *. a.(i).(k))
          done
        done;
        (* Column k below the diagonal keeps the Householder tail. *)
        a.(k).(k) <- alpha
      end
    end
  done;
  { m; n; a; beta; v0 }

let r t =
  Matrix.init t.n t.n (fun i j -> if j >= i then t.a.(i).(j) else 0.0)

let q_transpose_vec t b =
  if Array.length b <> t.m then invalid_arg "Qr.q_transpose_vec: length mismatch";
  let y = Array.copy b in
  for k = 0 to t.n - 1 do
    if t.beta.(k) <> 0.0 then begin
      let dot = ref (t.v0.(k) *. y.(k)) in
      for i = k + 1 to t.m - 1 do
        dot := !dot +. (t.a.(i).(k) *. y.(i))
      done;
      let s = t.beta.(k) *. !dot in
      y.(k) <- y.(k) -. (s *. t.v0.(k));
      for i = k + 1 to t.m - 1 do
        y.(i) <- y.(i) -. (s *. t.a.(i).(k))
      done
    end
  done;
  Array.sub y 0 t.n

let r_diag t = Array.init t.n (fun i -> t.a.(i).(i))

let rank_deficient ?(tolerance = 1e-10) t =
  let diag = Array.init t.n (fun i -> Float.abs t.a.(i).(i)) in
  let largest = Array.fold_left Float.max 0.0 diag in
  largest = 0.0 || Array.exists (fun d -> d < tolerance *. largest) diag

let solve t b =
  let y = q_transpose_vec t b in
  let x = Array.make t.n 0.0 in
  for i = t.n - 1 downto 0 do
    let acc = ref y.(i) in
    for j = i + 1 to t.n - 1 do
      acc := !acc -. (t.a.(i).(j) *. x.(j))
    done;
    if Float.abs t.a.(i).(i) < 1e-12 then failwith "Qr.solve: rank deficient";
    x.(i) <- !acc /. t.a.(i).(i)
  done;
  x
