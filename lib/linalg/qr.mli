(** Householder QR decomposition.

    The normal equations square a design matrix's condition number; QR
    works on the matrix directly and is the numerically preferred route
    for least squares.  {!Lstsq} uses this solver for well-shaped systems
    and falls back to ridge-stabilized normal equations when the matrix
    is rank-deficient. *)

type t
(** A factorization [A = Q R] of an [m x n] matrix with [m >= n],
    stored in compact Householder form. *)

val decompose : Matrix.t -> t
(** Factorize.  Requires [rows >= cols].  Never fails: rank deficiency
    surfaces later as a small diagonal entry of [R]. *)

val r : t -> Matrix.t
(** The [n x n] upper-triangular factor. *)

val q_transpose_vec : t -> float array -> float array
(** [q_transpose_vec qr b] applies [Q'] to a length-[m] vector,
    returning the first [n] components (all that back-substitution
    needs). *)

val solve : t -> float array -> float array
(** Least-squares solution of [A x = b]: back-substitution of
    [R x = Q' b].  Raises [Failure "Qr.solve: rank deficient"] when a
    diagonal entry of [R] underflows. *)

val rank_deficient : ?tolerance:float -> t -> bool
(** Whether any diagonal of [R] is below [tolerance] (default [1e-10])
    times the largest diagonal. *)

val r_diag : t -> float array
(** The diagonal of [R] (signed), length [n].  Its magnitude spread is
    the cheap conditioning diagnostic the static model checker inspects:
    a near-zero entry relative to the largest marks the fit as
    near-rank-deficient. *)
