module Stats = Opprox_util.Stats

type t = { e : float }

let of_residuals ?(p = 0.99) resid =
  if p < 0.0 || p > 1.0 then invalid_arg "Confidence.of_residuals: p outside [0,1]";
  if Array.length resid = 0 then { e = 0.0 }
  else { e = Stats.quantile (Array.map Float.abs resid) p }

let of_model ?p model = of_residuals ?p (Polyreg.residuals model)

let half_width t = t.e
let interval t q = (q -. t.e, q +. t.e)
let upper t q = q +. t.e
let lower t q = q -. t.e

module Sexp = Opprox_util.Sexp

let to_sexp t = Sexp.float t.e
let of_sexp sexp = { e = Sexp.to_float sexp }
