(** Empirical confidence intervals for model predictions (paper Sec. 3.6).

    OPPROX interprets a prediction [Q] as lying anywhere in [\[Q - e, Q + e\]]
    where a fraction [p] of modeling errors stay within [e].  To remain
    conservative it uses the upper limit for QoS degradation and the lower
    limit for speedup.  [e] here is the [p]-quantile of the absolute
    training residuals. *)

type t

val of_residuals : ?p:float -> float array -> t
(** [of_residuals resid] estimates the half-width from signed residuals.
    [p] defaults to [0.99].  An empty residual array yields a zero-width
    interval. *)

val of_model : ?p:float -> Polyreg.t -> t
(** Shortcut over {!Polyreg.residuals}. *)

val half_width : t -> float

val interval : t -> float -> float * float
(** [interval t q] is [(q - e, q + e)]. *)

val upper : t -> float -> float
(** Conservative bound used for QoS-degradation predictions. *)

val lower : t -> float -> float
(** Conservative bound used for speedup predictions. *)

val to_sexp : t -> Opprox_util.Sexp.t
val of_sexp : Opprox_util.Sexp.t -> t
