module Rng = Opprox_util.Rng
module Stats = Opprox_util.Stats

let fold_indices ~rng ~n ~k =
  if k < 2 || k > n then invalid_arg "Crossval.fold_indices: need 2 <= k <= n";
  let idx = Array.init n (fun i -> i) in
  Rng.shuffle rng idx;
  let base = n / k and extra = n mod k in
  let folds = Array.make k [||] in
  let pos = ref 0 in
  for f = 0 to k - 1 do
    let size = base + if f < extra then 1 else 0 in
    folds.(f) <- Array.sub idx !pos size;
    pos := !pos + size
  done;
  folds

let split xs ~test =
  let n = Array.length xs in
  let in_test = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg "Crossval.split: index out of range";
      in_test.(i) <- true)
    test;
  let train = ref [] in
  for i = n - 1 downto 0 do
    if not in_test.(i) then train := xs.(i) :: !train
  done;
  let sorted_test = Array.copy test in
  Array.sort compare sorted_test;
  (Array.of_list !train, Array.map (fun i -> xs.(i)) sorted_test)

let score ~rng ~k ~fit ~predict xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Crossval.score: length mismatch";
  let folds = fold_indices ~rng ~n ~k in
  let scores = ref [] in
  Array.iter
    (fun test ->
      if Array.length test >= 2 then begin
        let train_x, test_x = split xs ~test in
        let train_y, test_y = split ys ~test in
        match fit train_x train_y with
        | model ->
            let predicted = Array.map (predict model) test_x in
            scores := Stats.r2_score ~actual:test_y ~predicted :: !scores
        | exception Failure _ -> ()
      end)
    folds;
  match !scores with
  | [] -> neg_infinity
  | ss -> Stats.mean (Array.of_list ss)
