(** k-fold cross-validation (paper Sec. 3.7).

    The training data is shuffled and split into [k] folds; each fold serves
    once as the held-out test set while the remaining folds train the model.
    Scores are averaged across folds. *)

val fold_indices : rng:Opprox_util.Rng.t -> n:int -> k:int -> int array array
(** [fold_indices ~rng ~n ~k] partitions [0 .. n-1] into [k] disjoint
    shuffled folds whose sizes differ by at most one.  Requires
    [2 <= k <= n]. *)

val split : 'a array -> test:int array -> 'a array * 'a array
(** [split xs ~test] is [(train, held_out)] where [held_out] collects the
    elements at the [test] indices (in index order) and [train] the rest. *)

val score :
  rng:Opprox_util.Rng.t ->
  k:int ->
  fit:(float array array -> float array -> 'm) ->
  predict:('m -> float array -> float) ->
  float array array ->
  float array ->
  float
(** [score ~rng ~k ~fit ~predict xs ys] is the mean R2 over [k] folds.
    When a fold has fewer than two test points or [fit] fails numerically
    the fold is skipped; if every fold is skipped the result is
    [neg_infinity]. *)
