type config = { max_depth : int; min_samples_split : int; min_gain : float }

let default_config = { max_depth = 12; min_samples_split = 2; min_gain = 0.0 }

type node =
  | Leaf of int
  | Node of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; arity : int }

let gini labels =
  let n = Array.length labels in
  if n = 0 then 0.0
  else begin
    let counts = Hashtbl.create 8 in
    Array.iter
      (fun l ->
        Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
      labels;
    let fn = float_of_int n in
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. fn in
        acc -. (p *. p))
      counts 1.0
  end

let majority labels =
  let counts = Hashtbl.create 8 in
  Array.iter
    (fun l ->
      Hashtbl.replace counts l (1 + Option.value ~default:0 (Hashtbl.find_opt counts l)))
    labels;
  (* Deterministic tie-break: smallest label among the most frequent. *)
  Hashtbl.fold
    (fun l c (best_l, best_c) ->
      if c > best_c || (c = best_c && l < best_l) then (l, c) else (best_l, best_c))
    counts (max_int, 0)
  |> fst

let pure labels = Array.for_all (fun l -> l = labels.(0)) labels

(* Best threshold split of one feature: sort by value, sweep boundaries
   between distinct values, track class counts incrementally. *)
let best_split_on_feature rows labels feature =
  let n = Array.length rows in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare rows.(a).(feature) rows.(b).(feature)) order;
  let left_counts = Hashtbl.create 8 and right_counts = Hashtbl.create 8 in
  Array.iter
    (fun i ->
      Hashtbl.replace right_counts labels.(i)
        (1 + Option.value ~default:0 (Hashtbl.find_opt right_counts labels.(i))))
    order;
  let gini_of counts total =
    if total = 0 then 0.0
    else
      let ft = float_of_int total in
      Hashtbl.fold
        (fun _ c acc ->
          let p = float_of_int c /. ft in
          acc -. (p *. p))
        counts 1.0
  in
  let best = ref None in
  let fn = float_of_int n in
  for k = 0 to n - 2 do
    let i = order.(k) in
    let l = labels.(i) in
    Hashtbl.replace left_counts l (1 + Option.value ~default:0 (Hashtbl.find_opt left_counts l));
    Hashtbl.replace right_counts l (Option.get (Hashtbl.find_opt right_counts l) - 1);
    let v = rows.(i).(feature) and v' = rows.(order.(k + 1)).(feature) in
    if v < v' then begin
      let n_left = k + 1 in
      let n_right = n - n_left in
      let impurity =
        (float_of_int n_left /. fn *. gini_of left_counts n_left)
        +. (float_of_int n_right /. fn *. gini_of right_counts n_right)
      in
      let threshold = (v +. v') /. 2.0 in
      match !best with
      | Some (_, best_impurity) when best_impurity <= impurity -> ()
      | _ -> best := Some (threshold, impurity)
    end
  done;
  !best

let rec build ~config rows labels depth =
  let n = Array.length rows in
  if n = 0 then Leaf 0
  else if pure labels || depth >= config.max_depth || n < config.min_samples_split then
    Leaf (majority labels)
  else begin
    let arity = Array.length rows.(0) in
    let parent_gini = gini labels in
    let best = ref None in
    for feature = 0 to arity - 1 do
      match best_split_on_feature rows labels feature with
      | None -> ()
      | Some (threshold, impurity) -> (
          match !best with
          | Some (_, _, best_impurity) when best_impurity <= impurity -> ()
          | _ -> best := Some (feature, threshold, impurity))
    done;
    match !best with
    | Some (feature, threshold, impurity) when parent_gini -. impurity >= config.min_gain ->
        let left_idx = ref [] and right_idx = ref [] in
        for i = n - 1 downto 0 do
          if rows.(i).(feature) <= threshold then left_idx := i :: !left_idx
          else right_idx := i :: !right_idx
        done;
        let take idxs arr = Array.of_list (List.map (fun i -> arr.(i)) idxs) in
        let left =
          build ~config (take !left_idx rows) (take !left_idx labels) (depth + 1)
        in
        let right =
          build ~config (take !right_idx rows) (take !right_idx labels) (depth + 1)
        in
        Node { feature; threshold; left; right }
    | Some _ | None -> Leaf (majority labels)
  end

let fit ?(config = default_config) rows labels =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Dtree.fit: no rows";
  if Array.length labels <> n then invalid_arg "Dtree.fit: label length mismatch";
  let arity = Array.length rows.(0) in
  if arity = 0 then invalid_arg "Dtree.fit: zero-arity features";
  Array.iter
    (fun r -> if Array.length r <> arity then invalid_arg "Dtree.fit: ragged features")
    rows;
  { root = build ~config rows labels 0; arity }

let predict t row =
  if Array.length row <> t.arity then invalid_arg "Dtree.predict: arity mismatch";
  let rec go = function
    | Leaf l -> l
    | Node { feature; threshold; left; right } ->
        if row.(feature) <= threshold then go left else go right
  in
  go t.root

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Node { left; right; _ } -> 1 + Stdlib.max (go left) (go right)
  in
  go t.root

let n_leaves t =
  let rec go = function Leaf _ -> 1 | Node { left; right; _ } -> go left + go right in
  go t.root

let accuracy t rows labels =
  if Array.length rows = 0 then invalid_arg "Dtree.accuracy: no rows";
  if Array.length rows <> Array.length labels then invalid_arg "Dtree.accuracy: length mismatch";
  let correct = ref 0 in
  Array.iteri (fun i row -> if predict t row = labels.(i) then incr correct) rows;
  float_of_int !correct /. float_of_int (Array.length rows)

(* -------------------------------------------------------- serialization *)

module Sexp = Opprox_util.Sexp

let rec node_to_sexp = function
  | Leaf l -> Sexp.list [ Sexp.atom "leaf"; Sexp.int l ]
  | Node { feature; threshold; left; right } ->
      Sexp.list
        [ Sexp.atom "node"; Sexp.int feature; Sexp.float threshold; node_to_sexp left;
          node_to_sexp right ]

let rec node_of_sexp sexp =
  match Sexp.to_list sexp with
  | [ Sexp.Atom "leaf"; l ] -> Leaf (Sexp.to_int l)
  | [ Sexp.Atom "node"; f; thr; l; r ] ->
      Node
        {
          feature = Sexp.to_int f;
          threshold = Sexp.to_float thr;
          left = node_of_sexp l;
          right = node_of_sexp r;
        }
  | _ -> failwith "Dtree.of_sexp: malformed node"

let to_sexp t = Sexp.record [ ("arity", Sexp.int t.arity); ("root", node_to_sexp t.root) ]

let of_sexp sexp =
  {
    arity = Sexp.to_int (Sexp.field sexp "arity");
    root = node_of_sexp (Sexp.field sexp "root");
  }
