(** CART decision-tree classifier.

    OPPROX predicts the application's control flow — which sequence of
    approximable-block call-contexts the run will follow — from the input
    parameters with a decision tree (paper Sec. 3.4, citing Quinlan).  The
    classifier here is a binary CART: numeric features, threshold splits
    chosen to minimize weighted Gini impurity, leaves labelled by majority
    class. *)

type t

type config = {
  max_depth : int;  (** default 12 *)
  min_samples_split : int;  (** minimum node size to attempt a split; default 2 *)
  min_gain : float;
      (** minimum impurity decrease to accept a split; default 0 — zero-gain
          splits are allowed so XOR-like labelings stay learnable *)
}

val default_config : config

val fit : ?config:config -> float array array -> int array -> t
(** [fit features labels] trains a tree.  Labels are arbitrary
    non-negative class ids.  Requires at least one row, rectangular
    features, and matching lengths. *)

val predict : t -> float array -> int
(** Classify a feature vector.  Arity must match training arity. *)

val depth : t -> int
(** Actual depth of the trained tree (a single leaf has depth 0). *)

val n_leaves : t -> int

val accuracy : t -> float array array -> int array -> float
(** Fraction of rows classified correctly. *)

val gini : int array -> float
(** Gini impurity of a label multiset ([0.] when pure).  Exposed for
    testing. *)

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize a trained tree. *)

val of_sexp : Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp}; raises [Failure] on malformed input. *)
