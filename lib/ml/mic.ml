let log2 x = log x /. log 2.0

let mutual_information bx by ~nx ~ny =
  let n = Array.length bx in
  if Array.length by <> n then invalid_arg "Mic.mutual_information: length mismatch";
  if n = 0 then 0.0
  else begin
    let joint = Array.make (nx * ny) 0 in
    let mx = Array.make nx 0 and my = Array.make ny 0 in
    for i = 0 to n - 1 do
      let x = bx.(i) and y = by.(i) in
      if x < 0 || x >= nx || y < 0 || y >= ny then
        invalid_arg "Mic.mutual_information: bin index out of range";
      joint.((x * ny) + y) <- joint.((x * ny) + y) + 1;
      mx.(x) <- mx.(x) + 1;
      my.(y) <- my.(y) + 1
    done;
    let fn = float_of_int n in
    let mi = ref 0.0 in
    for x = 0 to nx - 1 do
      for y = 0 to ny - 1 do
        let c = joint.((x * ny) + y) in
        if c > 0 then begin
          let pxy = float_of_int c /. fn in
          let px = float_of_int mx.(x) /. fn in
          let py = float_of_int my.(y) /. fn in
          mi := !mi +. (pxy *. log2 (pxy /. (px *. py)))
        end
      done
    done;
    Float.max 0.0 !mi
  end

let equal_frequency_bins xs b =
  if b <= 0 then invalid_arg "Mic.equal_frequency_bins: bins must be positive";
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare (xs.(i), i) (xs.(j), j)) order;
  let bins = Array.make n 0 in
  Array.iteri (fun rank idx -> bins.(idx) <- rank * b / n) order;
  bins

let compute xs ys =
  let n = Array.length xs in
  if Array.length ys <> n then invalid_arg "Mic.compute: length mismatch";
  let constant arr = n = 0 || Array.for_all (fun v -> v = arr.(0)) arr in
  if n < 4 || constant xs || constant ys then 0.0
  else begin
    let budget = int_of_float (Float.pow (float_of_int n) 0.6) in
    let budget = Stdlib.max budget 4 in
    let best = ref 0.0 in
    let max_axis = Stdlib.min n (Stdlib.max 2 (budget / 2)) in
    for a = 2 to max_axis do
      let b_max = Stdlib.min max_axis (budget / a) in
      if b_max >= 2 then begin
        let bx = equal_frequency_bins xs a in
        for b = 2 to b_max do
          let by = equal_frequency_bins ys b in
          let mi = mutual_information bx by ~nx:a ~ny:b in
          let norm = log2 (float_of_int (Stdlib.min a b)) in
          if norm > 0.0 then best := Float.max !best (mi /. norm)
        done
      end
    done;
    Float.min 1.0 !best
  end

let filter_features ~threshold rows target =
  if Array.length rows = 0 then invalid_arg "Mic.filter_features: no rows";
  let arity = Array.length rows.(0) in
  let mic_of j = compute (Array.map (fun r -> r.(j)) rows) target in
  let scored = List.init arity (fun j -> (j, mic_of j)) in
  let kept = List.filter (fun (_, s) -> s >= threshold) scored in
  match kept with
  | _ :: _ -> List.map fst kept
  | [] ->
      (* Keep the best single feature so downstream regression has input. *)
      let best, _ =
        List.fold_left
          (fun (bj, bs) (j, s) -> if s > bs then (j, s) else (bj, bs))
          (0, -1.0) scored
      in
      [ best ]
