(** Maximal Information Coefficient, grid approximation.

    OPPROX uses MIC (Reshef et al., Science 2011) to screen model features:
    inputs whose MIC against the target falls below a threshold are dropped
    before regression (paper Sec. 3.7).  Computing exact MIC requires
    optimizing over all grid partitions; following common practice we
    approximate it by restricting both axes to equal-frequency partitions
    and maximizing normalized mutual information over all grid shapes
    [(a, b)] with [a * b <= n^0.6].  This preserves the screening behaviour
    MIC is used for here: near-1 scores for (noisy) functional relationships
    of any shape, near-0 scores for independent variables. *)

val mutual_information : int array -> int array -> nx:int -> ny:int -> float
(** Mutual information (in bits) between two discrete assignments given as
    bin indices; [nx]/[ny] are the bin counts.  Requires equal lengths. *)

val equal_frequency_bins : float array -> int -> int array
(** [equal_frequency_bins xs b] assigns each value a bin in [\[0, b)] such
    that bins have near-equal population (ties broken by value order). *)

val compute : float array -> float array -> float
(** [compute xs ys] is the approximate MIC in [\[0, 1\]].  Returns [0.] for
    arrays shorter than 4 or for constant inputs. *)

val filter_features :
  threshold:float -> float array array -> float array -> int list
(** [filter_features ~threshold rows target] returns the indices of feature
    columns whose MIC against [target] is at least [threshold] — the
    feature-screening step.  If no column passes, the column with the
    highest MIC is kept so the regression always has at least one input. *)
