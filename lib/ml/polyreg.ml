module Rng = Opprox_util.Rng
module Sexp = Opprox_util.Sexp
module Stats = Opprox_util.Stats
module Matrix = Opprox_linalg.Matrix
module Lstsq = Opprox_linalg.Lstsq
module Polyfeat = Opprox_linalg.Polyfeat

type config = {
  min_degree : int;
  max_degree : int;
  target_r2 : float;
  folds : int;
  mic_threshold : float option;
  max_splits : int;
  ridge : float;
}

let default_config =
  {
    min_degree = 1;
    max_degree = 6;
    target_r2 = 0.9;
    folds = 10;
    mic_threshold = Some 0.05;
    max_splits = 3;
    ridge = 1e-9;
  }

type single = {
  feat : Polyfeat.t;
  weights : float array;
  means : float array;  (* per-feature standardization *)
  scales : float array;
  lo : float array;  (* training range of each feature: predictions are *)
  hi : float array;  (* clamped into it, because polynomials explode when
                        extrapolating even slightly outside the data *)
  r_diag : float array;  (* signed R diagonal of the design-matrix QR; [||]
                            when QR was unavailable (rows < cols).  Kept so
                            the static checker can audit conditioning of a
                            persisted model without refitting. *)
}

type body =
  | Constant of float
  | Single of single
  | Split of { split_feature : int; cuts : float array; parts : body array }

type t = {
  body : body;
  selected : int list;  (* column indices kept after MIC screening *)
  arity : int;  (* raw arity before screening *)
  deg : int;
  cv : float;
  train : float;
  resid : float array;
}

let standardize_params rows =
  let arity = Array.length rows.(0) in
  let means = Array.make arity 0.0 and scales = Array.make arity 1.0 in
  for j = 0 to arity - 1 do
    let col = Array.map (fun r -> r.(j)) rows in
    let m = Stats.mean col in
    let s = Stats.stddev col in
    means.(j) <- m;
    scales.(j) <- (if s > 1e-12 then s else 1.0)
  done;
  (means, scales)

let apply_standardize ~means ~scales row =
  Array.mapi (fun j x -> (x -. means.(j)) /. scales.(j)) row

let distinct_counts rows =
  let arity = Array.length rows.(0) in
  Array.init arity (fun j ->
      let col = Array.map (fun r -> r.(j)) rows in
      let sorted = Array.copy col in
      Array.sort compare sorted;
      let count = ref 1 in
      for i = 1 to Array.length sorted - 1 do
        if sorted.(i) <> sorted.(i - 1) then incr count
      done;
      !count)

let fit_single ~ridge ~degree rows targets =
  let means, scales = standardize_params rows in
  let std_rows = Array.map (apply_standardize ~means ~scales) rows in
  (* A feature seen at k distinct values identifies powers up to k-1 only;
     higher powers oscillate between the observed values. *)
  let caps = Array.map (fun k -> k - 1) (distinct_counts rows) in
  let feat = Polyfeat.create ~caps ~arity:(Array.length rows.(0)) ~degree () in
  let x = Polyfeat.design_matrix feat std_rows in
  let weights, r_diag = Lstsq.fit_diag ~ridge x targets in
  let arity = Array.length rows.(0) in
  (* Allowed prediction range: the training range plus a 25% margin, so
     mild extrapolation stays polynomial while far-out queries clamp. *)
  let lo = Array.init arity (fun j -> Array.fold_left (fun a r -> Float.min a r.(j)) infinity rows) in
  let hi = Array.init arity (fun j -> Array.fold_left (fun a r -> Float.max a r.(j)) neg_infinity rows) in
  let margin = Array.init arity (fun j -> 0.25 *. Float.max 1e-9 (hi.(j) -. lo.(j))) in
  let lo = Array.mapi (fun j v -> v -. margin.(j)) lo in
  let hi = Array.mapi (fun j v -> v +. margin.(j)) hi in
  { feat; weights; means; scales; lo; hi; r_diag }

let predict_single s row =
  let clamped = Array.mapi (fun j x -> Float.max s.lo.(j) (Float.min s.hi.(j) x)) row in
  let std = apply_standardize ~means:s.means ~scales:s.scales clamped in
  let expanded = Polyfeat.apply s.feat std in
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (v *. s.weights.(i))) expanded;
  !acc

let rec predict_body body row =
  match body with
  | Constant c -> c
  | Single s -> predict_single s row
  | Split { split_feature; cuts; parts } ->
      let v = row.(split_feature) in
      let rec locate i = if i >= Array.length cuts || v <= cuts.(i) then i else locate (i + 1) in
      predict_body parts.(locate 0) row

(* Cross-validated R2 of a fixed-degree fit over the given data. *)
let cv_r2_of_degree ~rng ~folds ~ridge ~degree rows targets =
  let n = Array.length rows in
  let k = Stdlib.min folds (Stdlib.max 2 (n / 2)) in
  if k < 2 || n < 4 then
    (* Too little data for CV: fall back to train R2 penalized slightly. *)
    match fit_single ~ridge ~degree rows targets with
    | s ->
        let predicted = Array.map (predict_single s) rows in
        Stats.r2_score ~actual:targets ~predicted -. 0.05
    | exception Failure _ -> neg_infinity
  else
    Crossval.score ~rng ~k
      ~fit:(fun xs ys -> fit_single ~ridge ~degree xs ys)
      ~predict:predict_single rows targets

(* Escalate degree until CV R2 reaches the target; keep the best seen and
   stop early after two consecutive degrees without improvement (higher
   degrees only get more expensive and more overfit). *)
let escalate ~config ~rng rows targets =
  let n = Array.length rows in
  let rec go degree best misses =
    if degree > config.max_degree || misses >= 2 then best
    else begin
      (* Refuse degrees whose basis dimension exceeds the sample count. *)
      let dim = Polyfeat.output_dim (Polyfeat.create ~arity:(Array.length rows.(0)) ~degree ()) in
      if dim > n then best
      else
        let score = cv_r2_of_degree ~rng ~folds:config.folds ~ridge:config.ridge ~degree rows targets in
        let best, misses =
          match best with
          | Some (_, best_score) when best_score >= score -> (best, misses + 1)
          | _ -> (Some (degree, score), 0)
        in
        match best with
        | Some (_, s) when s >= config.target_r2 -> best
        | _ -> go (degree + 1) best misses
    end
  in
  go config.min_degree None 0

(* Pick the screened feature with the most distinct values to split on. *)
let pick_split_feature rows =
  let arity = Array.length rows.(0) in
  let distinct j =
    let col = Array.map (fun r -> r.(j)) rows in
    let sorted = Array.copy col in
    Array.sort compare sorted;
    let count = ref 1 in
    for i = 1 to Array.length sorted - 1 do
      if sorted.(i) <> sorted.(i - 1) then incr count
    done;
    !count
  in
  let best = ref 0 and best_count = ref (distinct 0) in
  for j = 1 to arity - 1 do
    let c = distinct j in
    if c > !best_count then begin
      best := j;
      best_count := c
    end
  done;
  (!best, !best_count)

let rec fit_body ~config ~rng rows targets =
  if Stats.stddev targets < 1e-12 then (Constant targets.(0), 0, 1.0)
  else
    match escalate ~config ~rng rows targets with
    | Some (degree, score) when score >= config.target_r2 ->
        (Single (fit_single ~ridge:config.ridge ~degree rows targets), degree, score)
    | best ->
        let degree, score = match best with Some (d, s) -> (d, s) | None -> (config.min_degree, neg_infinity) in
        let fallback () =
          (Single (fit_single ~ridge:config.ridge ~degree rows targets), degree, score)
        in
        let split_feature, n_distinct = pick_split_feature rows in
        let k = Stdlib.min config.max_splits n_distinct in
        let n = Array.length rows in
        if k < 2 || n < 4 * k then fallback ()
        else begin
          (* Subcategory split: order by the chosen feature's magnitude and
             cut into k near-equal groups (paper Sec. 3.7). *)
          let order = Array.init n (fun i -> i) in
          Array.sort (fun a b -> compare rows.(a).(split_feature) rows.(b).(split_feature)) order;
          let groups = Array.init k (fun g -> Array.sub order (g * n / k) (((g + 1) * n / k) - (g * n / k))) in
          let cuts =
            Array.init (k - 1) (fun g ->
                let last = groups.(g).(Array.length groups.(g) - 1) in
                rows.(last).(split_feature))
          in
          let sub_config = { config with max_splits = 0 } in
          match
            Array.map
              (fun idxs ->
                let sub_rows = Array.map (fun i -> rows.(i)) idxs in
                let sub_targets = Array.map (fun i -> targets.(i)) idxs in
                let body, d, s = fit_body ~config:sub_config ~rng sub_rows sub_targets in
                (body, d, s))
              groups
          with
          | parts ->
              let bodies = Array.map (fun (b, _, _) -> b) parts in
              let deg = Array.fold_left (fun acc (_, d, _) -> Stdlib.max acc d) 0 parts in
              let cv = Stats.mean (Array.map (fun (_, _, s) -> s) parts) in
              if cv > score then (Split { split_feature; cuts; parts = bodies }, deg, cv)
              else fallback ()
          | exception Failure _ -> fallback ()
        end

(* Held-out residuals: one extra k-fold pass refitting the selected model
   shape on each fold — the honest residual distribution for confidence
   intervals (training residuals of a flexible fit are near zero). *)
let cv_residuals ~config ~rng fit_fn predict_fn rows targets =
  let n = Array.length rows in
  let k = Stdlib.min config.folds (Stdlib.max 2 (n / 2)) in
  if n < 4 || k < 2 then [||]
  else begin
    let folds = Crossval.fold_indices ~rng ~n ~k in
    let residuals = ref [] in
    Array.iter
      (fun test ->
        if Array.length test >= 1 then begin
          let train_x, test_x = Crossval.split rows ~test in
          let train_y, test_y = Crossval.split targets ~test in
          if Array.length train_x >= 2 then
            match fit_fn train_x train_y with
            | model ->
                Array.iteri
                  (fun i x -> residuals := (test_y.(i) -. predict_fn model x) :: !residuals)
                  test_x
            | exception Failure _ -> ()
        end)
      folds;
    Array.of_list !residuals
  end

let fit ?(config = default_config) ~rng rows targets =
  let n = Array.length rows in
  if n < 2 then invalid_arg "Polyreg.fit: need at least two rows";
  if Array.length targets <> n then invalid_arg "Polyreg.fit: target length mismatch";
  let arity = Array.length rows.(0) in
  if arity = 0 then invalid_arg "Polyreg.fit: zero-arity features";
  Array.iter
    (fun r -> if Array.length r <> arity then invalid_arg "Polyreg.fit: ragged features")
    rows;
  let selected =
    match config.mic_threshold with
    | None -> List.init arity (fun j -> j)
    | Some threshold -> Mic.filter_features ~threshold rows targets
  in
  let project row = Array.of_list (List.map (fun j -> row.(j)) selected) in
  let proj_rows = Array.map project rows in
  let body, deg, cv = fit_body ~config ~rng proj_rows targets in
  let predicted = Array.map (predict_body body) proj_rows in
  let train = Stats.r2_score ~actual:targets ~predicted in
  let resid =
    let held_out =
      cv_residuals ~config ~rng
        (fun xs ys ->
          let b, _, _ = fit_body ~config:{ config with max_splits = 0 } ~rng xs ys in
          b)
        predict_body proj_rows targets
    in
    if Array.length held_out > 0 then held_out
    else Array.mapi (fun i a -> a -. predicted.(i)) targets
  in
  { body; selected; arity; deg; cv; train; resid }

let predict t row =
  if Array.length row <> t.arity then invalid_arg "Polyreg.predict: arity mismatch";
  let proj = Array.of_list (List.map (fun j -> row.(j)) t.selected) in
  predict_body t.body proj

(* Compiled predictor: same arithmetic as [predict] in the same order
   (clamp, standardize, expand, dot product), but every scratch array is
   allocated once at compile time and reused across calls. *)
let single_predictor s =
  let arity = Array.length s.means in
  let std = Array.make arity 0.0 in
  let dim = Array.length s.weights in
  let expanded = Array.make dim 0.0 in
  fun row ->
    for j = 0 to arity - 1 do
      let clamped = Float.max s.lo.(j) (Float.min s.hi.(j) row.(j)) in
      std.(j) <- (clamped -. s.means.(j)) /. s.scales.(j)
    done;
    Polyfeat.apply_into s.feat std expanded;
    let acc = ref 0.0 in
    for i = 0 to dim - 1 do
      acc := !acc +. (expanded.(i) *. s.weights.(i))
    done;
    !acc

let rec body_predictor = function
  | Constant c -> fun _ -> c
  | Single s -> single_predictor s
  | Split { split_feature; cuts; parts } ->
      let compiled = Array.map body_predictor parts in
      fun row ->
        let v = row.(split_feature) in
        let rec locate i = if i >= Array.length cuts || v <= cuts.(i) then i else locate (i + 1) in
        compiled.(locate 0) row

let predictor t =
  let selected = Array.of_list t.selected in
  let proj = Array.make (Array.length selected) 0.0 in
  let compiled = body_predictor t.body in
  fun row ->
    if Array.length row <> t.arity then invalid_arg "Polyreg.predictor: arity mismatch";
    for i = 0 to Array.length selected - 1 do
      proj.(i) <- row.(selected.(i))
    done;
    compiled proj

let degree t = t.deg
let cv_r2 t = t.cv
let train_r2 t = t.train
let residuals t = Array.copy t.resid
let selected_features t = t.selected

let is_split t = match t.body with Split _ -> true | Constant _ | Single _ -> false

(* Flatten the model into auditable pieces: one (path, weights, r_diag)
   triple per leaf.  Constant leaves report their value as a singleton
   weight vector with no conditioning evidence. *)
let pieces t =
  let rec walk path = function
    | Constant c -> [ (path, [| c |], [||]) ]
    | Single s -> [ (path, s.weights, s.r_diag) ]
    | Split { parts; _ } ->
        List.concat
          (List.mapi
             (fun i part -> walk (Printf.sprintf "%s/part%d" path i) part)
             (Array.to_list parts))
  in
  walk "" t.body

(* -------------------------------------------------------- serialization *)

let single_to_sexp s =
  Sexp.record
    [
      ("exponents", Sexp.list (List.map Sexp.int_array (Polyfeat.exponents s.feat)));
      ("weights", Sexp.float_array s.weights);
      ("means", Sexp.float_array s.means);
      ("scales", Sexp.float_array s.scales);
      ("lo", Sexp.float_array s.lo);
      ("hi", Sexp.float_array s.hi);
      ("r_diag", Sexp.float_array s.r_diag);
    ]

let single_of_sexp sexp =
  let exponents =
    Array.of_list (List.map Sexp.to_int_array (Sexp.to_list (Sexp.field sexp "exponents")))
  in
  {
    feat = Polyfeat.of_exponents exponents;
    weights = Sexp.to_float_array (Sexp.field sexp "weights");
    means = Sexp.to_float_array (Sexp.field sexp "means");
    scales = Sexp.to_float_array (Sexp.field sexp "scales");
    lo = Sexp.to_float_array (Sexp.field sexp "lo");
    hi = Sexp.to_float_array (Sexp.field sexp "hi");
    (* Absent in files saved before conditioning evidence was recorded. *)
    r_diag =
      (match Sexp.field_opt sexp "r_diag" with
      | Some s -> Sexp.to_float_array s
      | None -> [||]);
  }

let rec body_to_sexp = function
  | Constant c -> Sexp.list [ Sexp.atom "constant"; Sexp.float c ]
  | Single s -> Sexp.list [ Sexp.atom "single"; single_to_sexp s ]
  | Split { split_feature; cuts; parts } ->
      Sexp.list
        [
          Sexp.atom "split";
          Sexp.int split_feature;
          Sexp.float_array cuts;
          Sexp.list (Array.to_list (Array.map body_to_sexp parts));
        ]

let rec body_of_sexp sexp =
  match Sexp.to_list sexp with
  | [ Sexp.Atom "constant"; c ] -> Constant (Sexp.to_float c)
  | [ Sexp.Atom "single"; s ] -> Single (single_of_sexp s)
  | [ Sexp.Atom "split"; f; cuts; parts ] ->
      Split
        {
          split_feature = Sexp.to_int f;
          cuts = Sexp.to_float_array cuts;
          parts = Array.of_list (List.map body_of_sexp (Sexp.to_list parts));
        }
  | _ -> failwith "Polyreg.of_sexp: malformed body"

let to_sexp t =
  Sexp.record
    [
      ("body", body_to_sexp t.body);
      ("selected", Sexp.list (List.map Sexp.int t.selected));
      ("arity", Sexp.int t.arity);
      ("degree", Sexp.int t.deg);
      ("cv", Sexp.float t.cv);
      ("train", Sexp.float t.train);
      ("residuals", Sexp.float_array t.resid);
    ]

let of_sexp sexp =
  {
    body = body_of_sexp (Sexp.field sexp "body");
    selected = List.map Sexp.to_int (Sexp.to_list (Sexp.field sexp "selected"));
    arity = Sexp.to_int (Sexp.field sexp "arity");
    deg = Sexp.to_int (Sexp.field sexp "degree");
    cv = Sexp.to_float (Sexp.field sexp "cv");
    train = Sexp.to_float (Sexp.field sexp "train");
    resid = Sexp.to_float_array (Sexp.field sexp "residuals");
  }
