(** Polynomial regression with automatic degree escalation (paper Sec. 3.6–3.7).

    The model pipeline mirrors OPPROX's:

    + optionally screen features by MIC against the target ({!Mic}),
    + standardize the surviving features,
    + fit least-squares polynomial models of increasing degree until the
      k-fold cross-validated R2 reaches the target score,
    + if escalation alone cannot reach the target, split the data into
      subcategories along the most informative feature (by magnitude order)
      and fit one sub-model per subcategory.

    Training residuals are retained for confidence-interval estimation
    ({!Confidence}). *)

type t

type config = {
  min_degree : int;  (** first degree tried; default 1 *)
  max_degree : int;  (** last degree tried; default 6 (paper: 2–6 suffice) *)
  target_r2 : float;  (** escalation stops at this CV R2; default 0.9 *)
  folds : int;  (** cross-validation folds; default 10 *)
  mic_threshold : float option;
      (** MIC screening threshold; [None] disables screening (ablation) *)
  max_splits : int;  (** sub-model subcategories when escalation fails; default 3 *)
  ridge : float;  (** initial ridge penalty passed to the solver *)
}

val default_config : config

val fit :
  ?config:config ->
  rng:Opprox_util.Rng.t ->
  float array array ->
  float array ->
  t
(** [fit ~rng features targets] trains a model.  Requires at least two rows
    and rectangular features.  Never raises on poor data: with too few rows
    for the requested fold count the fold count is reduced; a constant
    target yields a constant model. *)

val predict : t -> float array -> float
(** Predict one raw (unexpanded, unfiltered) feature vector.  Arity must
    match training arity.  Each feature is clamped into its training
    range before expansion — polynomial bases explode when extrapolating
    even slightly outside the data, and the clamped (constant) continuation
    is the safe behaviour for an optimizer querying edge settings. *)

val predictor : t -> float array -> float
(** [predictor t] compiles the model into a reusable prediction closure.
    Bit-identical to {!predict} (same clamp/standardize/expand/dot
    arithmetic in the same order), but the feature projection, the
    standardized row, and the expanded monomial vector are allocated once
    and reused across calls — the optimizer's enumeration calls each model
    tens of thousands of times per solve.  The closure owns mutable
    scratch: do not share one closure between domains (compile one per
    domain instead; compilation is cheap). *)

val degree : t -> int
(** Degree selected by escalation (max across sub-models). *)

val cv_r2 : t -> float
(** Cross-validated R2 of the selected model ([1.] for constant models). *)

val train_r2 : t -> float
(** R2 on the training set. *)

val residuals : t -> float array
(** Signed held-out residuals [actual - predicted] from a cross-validation
    pass over the training data (training residuals would understate the
    error of a flexible fit); falls back to training residuals when the
    data is too small to fold.  For CI estimation. *)

val selected_features : t -> int list
(** Indices of the feature columns that survived MIC screening. *)

val is_split : t -> bool
(** Whether sub-model splitting was engaged. *)

val pieces : t -> (string * float array * float array) list
(** [(path, weights, r_diag)] for every leaf of the model tree: [path] is
    [""] for an unsplit model and ["/part0/..."] under splits; [weights]
    are the fitted coefficients (a singleton for constant leaves); [r_diag]
    is the signed R-factor diagonal captured at fit time ([[||]] when QR
    was unavailable or for constant leaves).  This is the audit surface the
    static model checker walks — coefficient finiteness and
    near-rank-deficiency are checkable without refitting. *)

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize a trained model (the paper's systems persist trained models
    between the offline and runtime stages). *)

val of_sexp : Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp}; raises [Failure] on malformed input. *)
