module Stats = Opprox_util.Stats
module Matrix = Opprox_linalg.Matrix
module Lstsq = Opprox_linalg.Lstsq
module Sexp = Opprox_util.Sexp

type config = { max_depth : int; min_samples_leaf : int; min_variance_gain : float }

let default_config = { max_depth = 6; min_samples_leaf = 8; min_variance_gain = 0.01 }

type leaf_model = {
  weights : float array; (* intercept followed by one weight per feature *)
  lo : float array;
  hi : float array;
}

type node =
  | Leaf of leaf_model
  | Node of { feature : int; threshold : float; left : node; right : node }

type t = { root : node; arity : int }

let variance_of targets =
  if Array.length targets = 0 then 0.0 else Stats.variance targets

(* Fit the linear model of one leaf; degenerate systems (constant columns,
   too few rows) fall back to predicting the mean. *)
let fit_leaf rows targets =
  let arity = Array.length rows.(0) in
  let lo = Array.init arity (fun j -> Array.fold_left (fun a r -> Float.min a r.(j)) infinity rows) in
  let hi =
    Array.init arity (fun j -> Array.fold_left (fun a r -> Float.max a r.(j)) neg_infinity rows)
  in
  let mean = Stats.mean targets in
  let fallback = { weights = Array.append [| mean |] (Array.make arity 0.0); lo; hi } in
  if Array.length rows <= arity + 1 then fallback
  else
    let design = Matrix.of_rows (Array.map (fun r -> Array.append [| 1.0 |] r) rows) in
    match Lstsq.fit design targets with
    | weights when Array.for_all Float.is_finite weights -> { weights; lo; hi }
    | _ -> fallback
    | exception Failure _ -> fallback

let predict_leaf leaf row =
  let acc = ref leaf.weights.(0) in
  Array.iteri
    (fun j x ->
      let x = Float.max leaf.lo.(j) (Float.min leaf.hi.(j) x) in
      acc := !acc +. (leaf.weights.(j + 1) *. x))
    row;
  !acc

(* Best variance-reducing threshold on one feature (midpoints between
   distinct sorted values, respecting the leaf-size minimum). *)
let best_split_on_feature ~config rows targets feature =
  let n = Array.length rows in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare rows.(a).(feature) rows.(b).(feature)) order;
  (* Prefix sums of targets in sorted order for O(n) variance sweep. *)
  let sum = ref 0.0 and sum2 = ref 0.0 in
  let prefix = Array.make (n + 1) (0.0, 0.0) in
  Array.iteri
    (fun k i ->
      sum := !sum +. targets.(i);
      sum2 := !sum2 +. (targets.(i) *. targets.(i));
      prefix.(k + 1) <- (!sum, !sum2))
    order;
  let total_sum, total_sum2 = prefix.(n) in
  let sse count s s2 = if count = 0 then 0.0 else s2 -. (s *. s /. float_of_int count) in
  let best = ref None in
  for k = config.min_samples_leaf to n - config.min_samples_leaf do
    let i = order.(k - 1) and i' = order.(k) in
    let v = rows.(i).(feature) and v' = rows.(i').(feature) in
    if v < v' then begin
      let ls, ls2 = prefix.(k) in
      let cost = sse k ls ls2 +. sse (n - k) (total_sum -. ls) (total_sum2 -. ls2) in
      match !best with
      | Some (_, best_cost) when best_cost <= cost -> ()
      | _ -> best := Some ((v +. v') /. 2.0, cost)
    end
  done;
  !best

let rec build ~config rows targets depth =
  let n = Array.length rows in
  let parent_sse = variance_of targets *. float_of_int n in
  if depth >= config.max_depth || n < 2 * config.min_samples_leaf || parent_sse < 1e-12 then
    Leaf (fit_leaf rows targets)
  else begin
    let arity = Array.length rows.(0) in
    let best = ref None in
    for feature = 0 to arity - 1 do
      match best_split_on_feature ~config rows targets feature with
      | None -> ()
      | Some (threshold, cost) -> (
          match !best with
          | Some (_, _, best_cost) when best_cost <= cost -> ()
          | _ -> best := Some (feature, threshold, cost))
    done;
    match !best with
    | Some (feature, threshold, cost)
      when parent_sse -. cost >= config.min_variance_gain *. parent_sse ->
        let left_idx = ref [] and right_idx = ref [] in
        for i = n - 1 downto 0 do
          if rows.(i).(feature) <= threshold then left_idx := i :: !left_idx
          else right_idx := i :: !right_idx
        done;
        let take idxs arr = Array.of_list (List.map (fun i -> arr.(i)) idxs) in
        Node
          {
            feature;
            threshold;
            left = build ~config (take !left_idx rows) (take !left_idx targets) (depth + 1);
            right = build ~config (take !right_idx rows) (take !right_idx targets) (depth + 1);
          }
    | Some _ | None -> Leaf (fit_leaf rows targets)
  end

let fit ?(config = default_config) rows targets =
  let n = Array.length rows in
  if n = 0 then invalid_arg "Regtree.fit: no rows";
  if Array.length targets <> n then invalid_arg "Regtree.fit: target length mismatch";
  let arity = Array.length rows.(0) in
  if arity = 0 then invalid_arg "Regtree.fit: zero-arity features";
  Array.iter
    (fun r -> if Array.length r <> arity then invalid_arg "Regtree.fit: ragged features")
    rows;
  { root = build ~config rows targets 0; arity }

let predict t row =
  if Array.length row <> t.arity then invalid_arg "Regtree.predict: arity mismatch";
  let rec go = function
    | Leaf leaf -> predict_leaf leaf row
    | Node { feature; threshold; left; right } ->
        if row.(feature) <= threshold then go left else go right
  in
  go t.root

let depth t =
  let rec go = function
    | Leaf _ -> 0
    | Node { left; right; _ } -> 1 + Stdlib.max (go left) (go right)
  in
  go t.root

let n_leaves t =
  let rec go = function Leaf _ -> 1 | Node { left; right; _ } -> go left + go right in
  go t.root

let r2 t rows targets =
  let predicted = Array.map (predict t) rows in
  Stats.r2_score ~actual:targets ~predicted

(* -------------------------------------------------------- serialization *)

let leaf_to_sexp leaf =
  Sexp.record
    [
      ("weights", Sexp.float_array leaf.weights);
      ("lo", Sexp.float_array leaf.lo);
      ("hi", Sexp.float_array leaf.hi);
    ]

let leaf_of_sexp sexp =
  {
    weights = Sexp.to_float_array (Sexp.field sexp "weights");
    lo = Sexp.to_float_array (Sexp.field sexp "lo");
    hi = Sexp.to_float_array (Sexp.field sexp "hi");
  }

let rec node_to_sexp = function
  | Leaf leaf -> Sexp.list [ Sexp.atom "leaf"; leaf_to_sexp leaf ]
  | Node { feature; threshold; left; right } ->
      Sexp.list
        [ Sexp.atom "node"; Sexp.int feature; Sexp.float threshold; node_to_sexp left;
          node_to_sexp right ]

let rec node_of_sexp sexp =
  match Sexp.to_list sexp with
  | [ Sexp.Atom "leaf"; leaf ] -> Leaf (leaf_of_sexp leaf)
  | [ Sexp.Atom "node"; f; thr; l; r ] ->
      Node
        {
          feature = Sexp.to_int f;
          threshold = Sexp.to_float thr;
          left = node_of_sexp l;
          right = node_of_sexp r;
        }
  | _ -> failwith "Regtree.of_sexp: malformed node"

let to_sexp t = Sexp.record [ ("arity", Sexp.int t.arity); ("root", node_to_sexp t.root) ]

let of_sexp sexp =
  {
    arity = Sexp.to_int (Sexp.field sexp "arity");
    root = node_of_sexp (Sexp.field sexp "root");
  }
