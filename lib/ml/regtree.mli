(** M5-style regression tree with linear leaf models.

    Capri (ASPLOS 2016), the closest prior system to OPPROX, models
    performance and accuracy with Quinlan's M5 algorithm; this module
    provides a compact variant — a binary variance-reducing tree whose
    leaves hold linear least-squares models — so the model-type choice can
    be ablated against {!Polyreg} (see the bench harness's
    [ablate_model] experiment). *)

type t

type config = {
  max_depth : int;  (** default 6 *)
  min_samples_leaf : int;  (** minimum rows per leaf; default 8 *)
  min_variance_gain : float;
      (** minimum fractional variance reduction to accept a split; default 0.01 *)
}

val default_config : config

val fit : ?config:config -> float array array -> float array -> t
(** [fit rows targets] grows the tree by variance-reduction splits, then
    fits a linear model over all features in each leaf (constant-fallback
    when the local system is degenerate).  Requires matching non-zero
    lengths and rectangular rows. *)

val predict : t -> float array -> float
(** Route to a leaf and evaluate its linear model.  Features clamp to the
    leaf's training range, as in {!Polyreg.predict}. *)

val depth : t -> int
val n_leaves : t -> int

val r2 : t -> float array array -> float array -> float
(** R2 of the tree over a dataset. *)

val to_sexp : t -> Opprox_util.Sexp.t
val of_sexp : Opprox_util.Sexp.t -> t
