(* The registry holds every instrument ever created; instruments hold
   only Atomic.t cells, so mutation never touches the registry mutex.
   The [on] flag is read with one Atomic.get per mutation — the entire
   cost of a disabled metric. *)

let on = Atomic.make true
let enabled () = Atomic.get on
let set_enabled b = Atomic.set on b

type counter = { c_name : string; v : int Atomic.t }
type gauge = { g_name : string; g : float Atomic.t }

type histogram = {
  h_name : string;
  edges : float array;  (* strictly increasing; buckets = len edges + 1 *)
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : float Atomic.t;  (* CAS loop; observation order is irrelevant *)
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_mutex = Mutex.create ()

let registered name make describe =
  Mutex.lock reg_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some existing -> Either.Left existing
    | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        Either.Right m
  in
  Mutex.unlock reg_mutex;
  match r with
  | Either.Right m -> m
  | Either.Left existing -> (
      match describe existing with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already registered with a different kind" name))

let counter name =
  match
    registered name
      (fun () -> C { c_name = name; v = Atomic.make 0 })
      (function C c -> Some (C c) | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge name =
  match
    registered name
      (fun () -> G { g_name = name; g = Atomic.make 0.0 })
      (function G g -> Some (G g) | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let exponential ?(base = 2.0) ~start n =
  if n < 1 then invalid_arg "Metrics.exponential: need at least one edge";
  if not (start > 0.0 && base > 1.0) then
    invalid_arg "Metrics.exponential: start must be > 0 and base > 1";
  Array.init n (fun i -> start *. (base ** float_of_int i))

(* 1-2-5 ladder over seven decades: covers sub-microsecond cache lookups
   through multi-second training sweeps when observations are in us. *)
let default_edges =
  Array.concat
    (List.init 7 (fun d ->
         let scale = 10.0 ** float_of_int d in
         [| scale; 2.0 *. scale; 5.0 *. scale |]))

let validate_edges edges =
  if Array.length edges = 0 then invalid_arg "Metrics.histogram: empty bucket layout";
  Array.iteri
    (fun i e ->
      if not (Float.is_finite e) then invalid_arg "Metrics.histogram: non-finite bucket edge";
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics.histogram: bucket edges must be strictly increasing")
    edges

let histogram ?(edges = default_edges) name =
  validate_edges edges;
  match
    registered name
      (fun () ->
        H
          {
            h_name = name;
            edges = Array.copy edges;
            buckets = Array.init (Array.length edges + 1) (fun _ -> Atomic.make 0);
            count = Atomic.make 0;
            sum = Atomic.make 0.0;
          })
      (function
        | H h -> if h.edges = edges then Some (H h) else None
        | _ -> None)
  with
  | H h -> h
  | _ -> assert false

(* ------------------------------------------------------------ mutation *)

let incr c = if Atomic.get on then Atomic.incr c.v
let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.v n)
let set g x = if Atomic.get on then Atomic.set g.g x

let bucket_index edges v =
  (* First edge >= v; linear scan — layouts are tens of edges at most and
     durations cluster in the low buckets. *)
  let n = Array.length edges in
  let rec go i = if i >= n || v <= edges.(i) then i else go (i + 1) in
  go 0

let rec cas_add sum x =
  let old = Atomic.get sum in
  if not (Atomic.compare_and_set sum old (old +. x)) then cas_add sum x

let observe h v =
  if Atomic.get on then begin
    Atomic.incr h.buckets.(bucket_index h.edges v);
    Atomic.incr h.count;
    cas_add h.sum v
  end

(* ------------------------------------------------------------- reading *)

let value c = Atomic.get c.v
let gauge_value g = Atomic.get g.g
let histogram_count h = Atomic.get h.count
let histogram_sum h = Atomic.get h.sum

let histogram_buckets h =
  Array.init
    (Array.length h.buckets)
    (fun i ->
      let edge = if i < Array.length h.edges then h.edges.(i) else Float.infinity in
      (edge, Atomic.get h.buckets.(i)))

type value_view =
  | Counter of int
  | Gauge of float
  | Histogram of { edges : float array; counts : int array; count : int; sum : float }

let view = function
  | C c -> Counter (value c)
  | G g -> Gauge (gauge_value g)
  | H h ->
      Histogram
        {
          edges = Array.copy h.edges;
          counts = Array.map Atomic.get h.buckets;
          count = Atomic.get h.count;
          sum = Atomic.get h.sum;
        }

let dump () =
  Mutex.lock reg_mutex;
  let entries = Hashtbl.fold (fun name m acc -> (name, view m) :: acc) registry [] in
  Mutex.unlock reg_mutex;
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let find name =
  Mutex.lock reg_mutex;
  let m = Hashtbl.find_opt registry name in
  Mutex.unlock reg_mutex;
  Option.map view m

let reset () =
  Mutex.lock reg_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | C c -> Atomic.set c.v 0
      | G g -> Atomic.set g.g 0.0
      | H h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.count 0;
          Atomic.set h.sum 0.0)
    registry;
  Mutex.unlock reg_mutex

(* The *_name fields exist for error messages and future exporters; keep
   the compiler quiet about them until one lands. *)
let _ = fun (c : counter) -> c.c_name
let _ = fun (g : gauge) -> g.g_name
let _ = fun (h : histogram) -> h.h_name
