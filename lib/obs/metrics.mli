(** Domain-safe metrics registry.

    One process-wide registry of named instruments, designed for the
    pipeline's hot paths: every mutation is a single atomic operation (or
    a handful, for histograms) guarded by one load of the global enable
    flag, so instrumented code pays one predictable branch when metrics
    are collected and close to nothing when they are off.

    Names are stable dotted keys ([driver.ckpt.hit],
    [optimizer.sweeps], ...).  Registration is idempotent: asking for an
    existing name returns the existing instrument, so modules can
    register their instruments at initialization without coordinating.
    Registering a name twice with a different kind (or a histogram with
    different bucket edges) raises [Invalid_argument] — a name collision
    is a programming error, not a runtime condition.

    Collection is {b enabled by default}: the registry doubles as the
    system's accounting substrate (cache hit/miss counts that tests and
    benches assert against).  {!set_enabled}[ false] turns every mutation
    into a no-op for overhead-critical runs; values read back frozen. *)

type counter
type gauge
type histogram

(** {2 Registration} *)

val counter : string -> counter
(** Monotonically increasing integer (resettable via {!reset}). *)

val gauge : string -> gauge
(** A float that goes up and down (queue depths, capacities). *)

val histogram : ?edges:float array -> string -> histogram
(** Fixed-bucket histogram.  [edges] must be strictly increasing; an
    observation [v] lands in the first bucket with [v <= edge], or in the
    implicit overflow bucket after the last edge.  The default layout
    {!default_edges} is a 1-2-5 decade ladder from 1 to 1e7, sized for
    microsecond durations. *)

val default_edges : float array

val exponential : ?base:float -> start:float -> int -> float array
(** [exponential ~start n] — [n] edges growing geometrically from
    [start] by [base] (default 2.0). *)

(** {2 Mutation — no-ops while disabled} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> float -> unit

(** {2 Reading — always live} *)

val value : counter -> int
val gauge_value : gauge -> float

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_buckets : histogram -> (float * int) array
(** [(edge, count)] per bucket; the overflow bucket reports
    [(infinity, count)].  Counts are cumulative per bucket (not
    cumulative across buckets, unlike Prometheus [le] series). *)

(** {2 Registry} *)

type value_view =
  | Counter of int
  | Gauge of float
  | Histogram of { edges : float array; counts : int array; count : int; sum : float }

val dump : unit -> (string * value_view) list
(** Every registered instrument with its current value, sorted by name. *)

val find : string -> value_view option

val reset : unit -> unit
(** Zero every instrument's value; registrations survive.  Works even
    while collection is disabled. *)

(** {2 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit
