(* Events are appended to a mutex-protected list; each append happens
   after the span body finished, so the lock is never held while user
   code runs.  Timestamps are CLOCK_MONOTONIC (via the C stub below)
   relative to the first enable, in microseconds (the unit Chrome's
   trace viewer expects) — an NTP step or settimeofday mid-run cannot
   reorder spans or corrupt deadline arithmetic built on [now_us].  The
   wall-clock instant of the monotonic epoch is captured once and
   exported in the trace metadata so timelines can still be anchored to
   real time. *)

type event = {
  name : string;
  cat : string;
  ph : char;  (* 'X' complete span, 'i' instant *)
  ts : float;  (* microseconds since epoch0 *)
  dur : float;  (* microseconds; 0 for instants *)
  tid : int;  (* domain id *)
}

let on = Atomic.make false
let epoch0 = Atomic.make 0.0
let wall_epoch_us = Atomic.make 0.0
let events : event list ref = ref []
let n_events = Atomic.make 0
let mutex = Mutex.create ()

external monotonic_us : unit -> float = "opprox_monotonic_us"

let now_us = monotonic_us

let set_enabled b =
  if b && Atomic.get epoch0 = 0.0 then begin
    Atomic.set epoch0 (now_us ());
    Atomic.set wall_epoch_us (Unix.gettimeofday () *. 1e6)
  end;
  Atomic.set on b

let wall_epoch () = Atomic.get wall_epoch_us /. 1e6

let enabled () = Atomic.get on

let record ev =
  Mutex.lock mutex;
  events := ev :: !events;
  Atomic.incr n_events;
  Mutex.unlock mutex

let tid () = (Domain.self () :> int)

let with_span ?(cat = "opprox") name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        record
          { name; cat; ph = 'X'; ts = t0 -. Atomic.get epoch0; dur = t1 -. t0; tid = tid () })
      f
  end

let instant ?(cat = "opprox") name =
  if Atomic.get on then
    record { name; cat; ph = 'i'; ts = now_us () -. Atomic.get epoch0; dur = 0.0; tid = tid () }

let event_count () = Atomic.get n_events

let clear () =
  Mutex.lock mutex;
  events := [];
  Atomic.set n_events 0;
  Mutex.unlock mutex

(* ------------------------------------------------------------- export *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_json () =
  let evs =
    Mutex.lock mutex;
    let evs = List.rev !events in
    Mutex.unlock mutex;
    evs
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let pid = Unix.getpid () in
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n{\"name\":\"";
      escape b ev.name;
      Buffer.add_string b "\",\"cat\":\"";
      escape b ev.cat;
      Buffer.add_string b (Printf.sprintf "\",\"ph\":\"%c\"" ev.ph);
      if ev.ph = 'i' then Buffer.add_string b ",\"s\":\"t\"";
      Buffer.add_string b (Printf.sprintf ",\"ts\":%.3f" ev.ts);
      if ev.ph = 'X' then Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" ev.dur);
      Buffer.add_string b (Printf.sprintf ",\"pid\":%d,\"tid\":%d}" pid ev.tid))
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"";
  Buffer.add_string b
    (Printf.sprintf ",\"otherData\":{\"clock\":\"monotonic\",\"wallClockEpochUs\":%.3f}"
       (Atomic.get wall_epoch_us));
  Buffer.add_string b "}\n";
  Buffer.contents b

let export path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (to_json ()))
