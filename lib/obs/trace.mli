(** Span-based tracer with Chrome trace-event export.

    Spans bracket a unit of work ([optimizer.sweep], [training.collect],
    one pool task, ...) and record wall-clock start and duration plus the
    executing domain.  The recorded timeline exports as Chrome
    trace-event JSON ([chrome://tracing], Perfetto, speedscope): one
    complete event (["ph":"X"]) per span, with the domain id as the
    thread lane.

    Tracing is {b disabled by default} — a disabled {!with_span} is one
    atomic load and a tail call, so permanent instrumentation of hot
    paths is safe.  Enable with {!set_enabled} (the CLI's [--trace FILE]
    does, exporting at exit). *)

val set_enabled : bool -> unit
(** Turning tracing on stamps the epoch all subsequent timestamps are
    relative to (first enable only). *)

val enabled : unit -> bool

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and, when tracing is on, records a span
    covering it (also when [f] raises).  [cat] is the Chrome trace
    category (default ["opprox"]). *)

val instant : ?cat:string -> string -> unit
(** A zero-duration marker event. *)

val now_us : unit -> float
(** [CLOCK_MONOTONIC] in microseconds (arbitrary epoch, typically since
    boot; falls back to [gettimeofday] only where the monotonic clock is
    unavailable).  Immune to NTP steps — safe for span timestamps,
    latency histograms, and serve-deadline arithmetic, all of which use
    differences of this clock.  Not wall time: anchor to real time with
    {!wall_epoch}. *)

val wall_epoch : unit -> float
(** Wall-clock time (seconds since the Unix epoch) captured at the same
    instant as the monotonic trace epoch (first {!set_enabled}[ true]);
    [0.] before that.  Exported in the trace JSON metadata as
    [otherData.wallClockEpochUs]. *)

val event_count : unit -> int
(** Spans and markers currently buffered. *)

val clear : unit -> unit
(** Drop every buffered event (the epoch is kept). *)

val to_json : unit -> string
(** The buffered timeline as a Chrome trace-event JSON object
    ([{"traceEvents": [...], ...}]). *)

val export : string -> unit
(** Write {!to_json} to a file. *)
