/* Monotonic clock for the tracer, in microseconds as a double.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and settimeofday, so span
 * durations and serve deadlines computed from differences of this
 * clock cannot jump backwards or skip forwards mid-run.  The value is
 * an arbitrary-epoch reading (typically since boot); the OCaml side
 * pairs it with a wall-clock epoch captured once for trace metadata.
 *
 * Fallback to gettimeofday where CLOCK_MONOTONIC is unavailable — the
 * pre-existing behaviour, kept so the build never loses the tracer.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value opprox_monotonic_us(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return caml_copy_double((double)ts.tv_sec * 1e6 + (double)ts.tv_nsec / 1e3);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_double((double)tv.tv_sec * 1e6 + (double)tv.tv_usec);
  }
}
