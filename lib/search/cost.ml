module Models = Opprox.Models
module Optimizer = Opprox.Optimizer
module App = Opprox_sim.App

type eval = {
  cost : float;
  speedup : float;
  speedup_lo : float;
  qos_hi : float;
  feasible : bool;
}

type t = {
  predict : phase:int -> levels:int array -> Models.prediction;
  cache : (int * int list, Models.prediction) Hashtbl.t;
  budget : float;
  n_phases : int;
  abs : Opprox_sim.Ab.t array;
}

let penalty = 10.0

(* Same slack as Lint_plan/Lint_search: budgets are percent-scale. *)
let feasibility_eps budget = 1e-6 *. Float.max 1.0 (Float.abs budget)

let make ~models ~input ~budget =
  {
    predict = Models.predictor models ~input;
    cache = Hashtbl.create 4096;
    budget;
    n_phases = Models.n_phases models;
    abs = (Models.app models).App.abs;
  }

let predict_cached t ~phase ~levels =
  let key = (phase, Array.to_list levels) in
  match Hashtbl.find_opt t.cache key with
  | Some p -> p
  | None ->
      let p = t.predict ~phase ~levels in
      Hashtbl.replace t.cache key p;
      p

let eval t sched =
  let speedups = ref [] and speedups_lo = ref [] and qos = ref 0.0 in
  for phase = t.n_phases - 1 downto 0 do
    let p = predict_cached t ~phase ~levels:sched.(phase) in
    speedups := p.Models.speedup :: !speedups;
    speedups_lo := p.Models.speedup_lo :: !speedups_lo;
    qos := !qos +. Float.max 0.0 p.Models.qos_hi
  done;
  let speedup = Optimizer.compose_speedup !speedups in
  let speedup_lo = Optimizer.compose_speedup !speedups_lo in
  let overrun = Float.max 0.0 (!qos -. t.budget) in
  {
    cost = (-.speedup_lo) +. (penalty *. overrun);
    speedup;
    speedup_lo;
    qos_hi = !qos;
    feasible = !qos <= t.budget +. feasibility_eps t.budget;
  }

let budget t = t.budget
let n_phases t = t.n_phases
let abs t = t.abs
