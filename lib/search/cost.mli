(** Schedule cost for the stochastic search (minimized).

    The chain prices whole schedules through the {e models}, never the
    simulator: one {!t} compiles the models' hoisted prediction pipeline
    ({!Opprox.Models.predictor}) plus a (phase, levels) memo, exactly like
    the optimizer's solver, so the MCMC inner loop costs a hashtable hit
    for every point it revisits.  A [t] wraps mutable scratch and a
    single-domain predictor — build one per chain, never share one across
    domains. *)

type eval = {
  cost : float;
      (** [-. compose_speedup speedup_lo's +. penalty *. overrun]: lower
          is better; a feasible schedule's cost is the negated composed
          conservative speedup *)
  speedup : float;  (** composed point-estimate speedup *)
  speedup_lo : float;  (** composed conservative (lower-CI) speedup *)
  qos_hi : float;  (** summed conservative per-phase QoS degradation *)
  feasible : bool;  (** [qos_hi <= budget] (small relative slack) *)
}

type t

val penalty : float
(** Weight of the over-budget term (10.0 per percentage point of
    conservative-QoS overrun).  Large enough that no infeasible schedule
    ever outranks a feasible one on this problem's speedup scale, small
    enough that chains can traverse shallow violations while hot. *)

val make : models:Opprox.Models.t -> input:float array -> budget:float -> t
(** Compile the pricing pipeline for one (models, input, budget). *)

val eval : t -> int array array -> eval
(** Price one [n_phases x n_abs] schedule.  Deterministic: equal
    schedules always yield equal evals. *)

val budget : t -> float
val n_phases : t -> int
val abs : t -> Opprox_sim.Ab.t array
