module Rng = Opprox_util.Rng
module Ab = Opprox_sim.Ab

type config = {
  iters : int;
  init_temp : float;
  decay : float;
  min_temp : float;
  restart_stall : int;
}

let default_config ~iters =
  {
    iters;
    init_temp = 1.0;
    decay = 0.999;
    min_temp = 1e-3;
    restart_stall = Stdlib.max 1 (iters / 5);
  }

type result = {
  best : (int array array * Cost.eval) option;
  steps : int;
  accepts : int;
  restarts : int;
}

let copy_sched = Array.map Array.copy

let run ~rng ~cost ~first_phase config =
  let abs = Cost.abs cost in
  let n_phases = Cost.n_phases cost in
  let current = Array.init n_phases (fun _ -> Array.make (Array.length abs) 0) in
  let current_eval = ref (Cost.eval cost current) in
  let current = ref current in
  let best =
    ref (if !current_eval.Cost.feasible then Some (copy_sched !current, !current_eval) else None)
  in
  let temp = ref config.init_temp in
  let accepts = ref 0 in
  let restarts = ref 0 in
  let stall = ref 0 in
  for _step = 1 to config.iters do
    let candidate = Mutate.apply rng ~abs ~first_phase !current in
    let c_eval = Cost.eval cost candidate in
    let delta = c_eval.Cost.cost -. !current_eval.Cost.cost in
    let accept = delta <= 0.0 || Rng.uniform rng < Float.exp (-.delta /. !temp) in
    if accept then begin
      current := candidate;
      current_eval := c_eval;
      incr accepts
    end;
    let improved =
      c_eval.Cost.feasible
      &&
      match !best with
      | Some (_, b) -> c_eval.Cost.cost < b.Cost.cost -. 1e-12
      | None -> true
    in
    if improved then begin
      best := Some (copy_sched candidate, c_eval);
      stall := 0
    end
    else incr stall;
    (* Stalled chains teleport back to their best feasible point: the
       walk keeps its (now cooler) temperature but stops burning steps in
       a worse basin. *)
    (if config.restart_stall > 0 && !stall >= config.restart_stall then
       match !best with
       | Some (b, be) ->
           current := copy_sched b;
           current_eval := be;
           incr restarts;
           stall := 0
       | None -> stall := 0);
    temp := Float.max config.min_temp (!temp *. config.decay)
  done;
  { best = !best; steps = config.iters; accepts = !accepts; restarts = !restarts }

let polish ~cost ~first_phase sched =
  let abs = Cost.abs cost in
  let n_phases = Cost.n_phases cost in
  let n_abs = Array.length abs in
  let current = ref (copy_sched sched) in
  let current_eval = ref (Cost.eval cost !current) in
  let improved = ref true in
  (* Each accepted move strictly improves a bounded cost over a finite
     space, so this terminates; the pass cap is a safety net only. *)
  let passes = ref 0 in
  let max_passes = Stdlib.max 16 (4 * n_phases * n_abs * 8) in
  while !improved && !passes < max_passes do
    incr passes;
    improved := false;
    let best_move = ref None in
    let consider candidate =
      let e = Cost.eval cost candidate in
      if e.Cost.feasible && e.Cost.cost < !current_eval.Cost.cost -. 1e-12 then
        match !best_move with
        | Some (_, be) when be.Cost.cost <= e.Cost.cost -> ()
        | _ -> best_move := Some (candidate, e)
    in
    for phase = first_phase to n_phases - 1 do
      for ab = 0 to n_abs - 1 do
        List.iter
          (fun delta ->
            let l = !current.(phase).(ab) + delta in
            if l >= 0 && l <= abs.(ab).Ab.max_level then begin
              let candidate = copy_sched !current in
              candidate.(phase).(ab) <- l;
              consider candidate
            end)
          [ 1; -1 ]
      done
    done;
    (* Phase-pair swaps widen the neighborhood past what +-1 steps can
       reach: [A|B] and [B|A] are distinct steepest-descent basins under
       single-cell moves, and chains that found either must collapse to
       the same optimum for best-of-chains to be chain-count invariant. *)
    for p = first_phase to n_phases - 2 do
      for q = p + 1 to n_phases - 1 do
        if !current.(p) <> !current.(q) then begin
          let candidate = copy_sched !current in
          let tmp = candidate.(p) in
          candidate.(p) <- candidate.(q);
          candidate.(q) <- tmp;
          consider candidate
        end
      done
    done;
    match !best_move with
    | Some (candidate, e) ->
        current := candidate;
        current_eval := e;
        improved := true
    | None -> ()
  done;
  (!current, !current_eval)
