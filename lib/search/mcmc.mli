(** One Metropolis–Hastings chain over per-phase AL schedules.

    The STOKE recipe ported from instruction sequences to schedules: the
    chain starts from the all-exact schedule (always feasible for a
    non-negative budget — the zero-anchor of the models), proposes one
    {!Mutate} move per step, accepts improvements always and regressions
    with probability [exp (-delta / temperature)] under a geometrically
    decaying temperature, and separately tracks the best {e feasible}
    schedule it ever visited — the chain may wander through shallow
    budget violations while hot, but what it returns never does.

    Everything is a pure function of the input [Rng.t]'s state: two
    chains given generators with equal state produce bit-identical
    results whatever domain they run on. *)

type config = {
  iters : int;  (** proposal steps *)
  init_temp : float;  (** starting temperature (cost units) *)
  decay : float;  (** per-step geometric temperature factor *)
  min_temp : float;  (** temperature floor *)
  restart_stall : int;
      (** steps without a new best before the chain teleports back to its
          best feasible schedule (0 disables restarts) *)
}

val default_config : iters:int -> config
(** [init_temp 1.0], [decay 0.999], [min_temp 1e-3], [restart_stall] a
    fifth of [iters] — the SNIPPETS/STOKE shape. *)

type result = {
  best : (int array array * Cost.eval) option;
      (** best feasible schedule visited, or [None] if the chain never
          saw one (negative budget) *)
  steps : int;
  accepts : int;
  restarts : int;
}

val run :
  rng:Opprox_util.Rng.t -> cost:Cost.t -> first_phase:int -> config -> result
(** Run one chain.  Phase count / AB ranges come from [cost]. *)

val polish :
  cost:Cost.t -> first_phase:int -> int array array -> int array array * Cost.eval
(** Deterministic steepest-descent finish: repeatedly take the move that
    most improves the feasible cost — a single (phase, AB, +-1) step or a
    whole phase-pair swap — until no move improves.  The swap moves merge
    the [A|B] / [B|A] basin pairs that single-cell descent cannot cross
    between.  RNG-free, so chains that converged into one basin collapse
    to the {e same} local optimum — this is what makes best-of-chains
    bit-identical across chain counts once the iteration budget suffices.
    Requires a feasible starting schedule. *)
