module Rng = Opprox_util.Rng
module Ab = Opprox_sim.Ab
module Config_space = Opprox_sim.Config_space

let fresh sched = Array.map Array.copy sched

let mutable_phases ~first_phase sched = Array.length sched - first_phase

let pick_phase rng ~first_phase sched =
  first_phase + Rng.int rng (mutable_phases ~first_phase sched)

let clamp ~(ab : Ab.t) l = Stdlib.max 0 (Stdlib.min ab.Ab.max_level l)

let perturb rng ~abs ~first_phase sched =
  let next = fresh sched in
  if mutable_phases ~first_phase sched <= 0 then next
  else begin
    let phase = pick_phase rng ~first_phase sched in
    let ab = Rng.int rng (Array.length abs) in
    let delta = if Rng.bool rng then 1 else -1 in
    let current = next.(phase).(ab) in
    let moved = clamp ~ab:abs.(ab) (current + delta) in
    (* A blocked direction flips rather than degenerating to the identity:
       max_level >= 1 guarantees one of the two neighbours exists. *)
    next.(phase).(ab) <-
      (if moved <> current then moved else clamp ~ab:abs.(ab) (current - delta));
    next
  end

let swap rng ~abs ~first_phase sched =
  let k = mutable_phases ~first_phase sched in
  if k < 2 then perturb rng ~abs ~first_phase sched
  else begin
    let next = fresh sched in
    let a = first_phase + Rng.int rng k in
    let b =
      (* Distinct second phase via a shifted draw — one Rng call, no
         rejection loop. *)
      let d = 1 + Rng.int rng (k - 1) in
      first_phase + ((a - first_phase + d) mod k)
    in
    let tmp = next.(a) in
    next.(a) <- next.(b);
    next.(b) <- tmp;
    next
  end

let shift_all delta _rng ~abs ~first_phase sched =
  let next = fresh sched in
  for phase = first_phase to Array.length sched - 1 do
    Array.iteri (fun ab l -> next.(phase).(ab) <- clamp ~ab:abs.(ab) (l + delta)) sched.(phase)
  done;
  next

let tighten rng ~abs ~first_phase sched = shift_all (-1) rng ~abs ~first_phase sched
let loosen rng ~abs ~first_phase sched = shift_all 1 rng ~abs ~first_phase sched

let resample rng ~abs ~first_phase sched =
  let next = fresh sched in
  if mutable_phases ~first_phase sched <= 0 then next
  else begin
    let phase = pick_phase rng ~first_phase sched in
    next.(phase) <- Config_space.random rng abs;
    next
  end

let apply rng ~abs ~first_phase sched =
  if mutable_phases ~first_phase sched <= 0 then fresh sched
  else
    match Rng.int rng 8 with
    | 0 | 1 | 2 | 3 -> perturb rng ~abs ~first_phase sched
    | 4 -> swap rng ~abs ~first_phase sched
    | 5 -> tighten rng ~abs ~first_phase sched
    | 6 -> loosen rng ~abs ~first_phase sched
    | _ -> resample rng ~abs ~first_phase sched
