(** Mutation operators over a whole per-phase AL schedule.

    A schedule here is the raw [n_phases x n_abs] levels matrix the MCMC
    chain walks.  Every operator returns a {e fresh} matrix (the input is
    never aliased or modified), draws all of its randomness from the
    [Rng.t] it is handed — so a chain's trajectory is a pure function of
    its seed — and never touches a phase before [first_phase] (suffix
    solves keep executed phases exact, mirroring the optimizer's
    contract).  Out-of-range results are clamped to each AB's
    [0..max_level]. *)

val perturb :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** Move one phase's level in one AB by +-1 (the local move; most of the
    mixing).  When the drawn direction is blocked by a range edge the
    other direction is taken, so the move never degenerates into the
    identity (every AB has [max_level >= 1]). *)

val swap :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** Exchange two distinct phases' whole AL vectors — the phase-aware
    move: total aggressiveness is conserved but re-attributed across
    phases of different sensitivity.  Falls back to {!perturb} when fewer
    than two phases are mutable. *)

val tighten :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** Step every mutable phase's every AB one level down (toward exact) —
    the global retreat move out of a budget violation. *)

val loosen :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** Step every mutable phase's every AB one level up (more aggressive) —
    the global advance move when slack remains. *)

val resample :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** Replace one phase's AL vector with a uniform draw from its whole
    space — the restart-scale move that lets a chain leave a basin. *)

val apply :
  Opprox_util.Rng.t ->
  abs:Opprox_sim.Ab.t array ->
  first_phase:int ->
  int array array ->
  int array array
(** One weighted random mutation: {!perturb} half of the time, the other
    four operators an eighth each (STOKE's shape: mostly local moves,
    occasional structural ones).  Identity when no phase is mutable. *)
