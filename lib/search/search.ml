module Models = Opprox.Models
module Optimizer = Opprox.Optimizer
module Pool = Opprox_util.Pool
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_search = Opprox_analysis.Lint_search
module App = Opprox_sim.App

let log_src = Logs.Src.create "opprox.search" ~doc:"OPPROX stochastic schedule search"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_chains = Metrics.counter "search.chains"
let m_steps = Metrics.counter "search.steps"
let m_accepts = Metrics.counter "search.accepts"
let m_restarts = Metrics.counter "search.restarts"
let m_best_cost = Metrics.gauge "search.best_cost"

type config = { chains : int; iters : int; seed : int }

let default_config =
  let p = Optimizer.default_stochastic_params in
  { chains = p.Optimizer.chains; iters = p.Optimizer.iters; seed = p.Optimizer.seed }

type stats = {
  chains : int;
  steps : int;
  accepts : int;
  restarts : int;
  best_cost : float;
  best_chain : int;
  chain_costs : float array;
  feasible : bool;
  diagnostics : Diagnostic.t list;
}

type chain_outcome = {
  co_best : (int array array * Cost.eval) option;  (** polished *)
  co_steps : int;
  co_accepts : int;
  co_restarts : int;
}

let log_diags diags =
  List.iter
    (fun (d : Diagnostic.t) ->
      let level =
        match d.Diagnostic.severity with
        | Diagnostic.Error -> Logs.Error
        | Diagnostic.Warning -> Logs.Warning
        | Diagnostic.Info -> Logs.Info
      in
      Log.msg level (fun m -> m "%a" Diagnostic.pp d))
    diags

let solve_levels ?(config = default_config) ?pool ~models ~input ~budget ?(first_phase = 0) ()
    =
  Trace.with_span ~cat:"search" "search.solve" @@ fun () ->
  if config.chains < 1 then invalid_arg "Search.solve_levels: chains must be >= 1";
  if config.iters < 0 then invalid_arg "Search.solve_levels: iters must be >= 0";
  let n_phases = Models.n_phases models in
  if first_phase < 0 || first_phase > n_phases then
    invalid_arg
      (Printf.sprintf "Search.solve_levels: first_phase %d out of range 0..%d" first_phase
         n_phases);
  let app = Models.app models in
  let n_abs = Array.length app.App.abs in
  let mcmc_config = Mcmc.default_config ~iters:config.iters in
  (* One chain per index.  Each chain compiles its own Cost (predictor +
     memo): the hoisted prediction pipeline carries mutable scratch and
     must never be shared across pool domains.  parallel_map_seeded splits
     the master seed sequentially by index before anything runs, so chain
     i's trajectory depends on (seed, i) only — not on jobs or on how
     many chains run beside it. *)
  let outcomes =
    Pool.parallel_map_seeded ?pool ~seed:config.seed
      (fun ~rng chain ->
        Trace.with_span ~cat:"search" (Printf.sprintf "search.chain.%d" chain) @@ fun () ->
        let cost = Cost.make ~models ~input ~budget in
        let r = Mcmc.run ~rng ~cost ~first_phase mcmc_config in
        let best =
          Option.map (fun (sched, _) -> Mcmc.polish ~cost ~first_phase sched) r.Mcmc.best
        in
        {
          co_best = best;
          co_steps = r.Mcmc.steps;
          co_accepts = r.Mcmc.accepts;
          co_restarts = r.Mcmc.restarts;
        })
      (Array.init config.chains Fun.id)
  in
  let steps = Array.fold_left (fun acc o -> acc + o.co_steps) 0 outcomes in
  let accepts = Array.fold_left (fun acc o -> acc + o.co_accepts) 0 outcomes in
  let restarts = Array.fold_left (fun acc o -> acc + o.co_restarts) 0 outcomes in
  Metrics.add m_chains config.chains;
  Metrics.add m_steps steps;
  Metrics.add m_accepts accepts;
  Metrics.add m_restarts restarts;
  let chain_costs =
    Array.map
      (fun o -> match o.co_best with Some (_, e) -> e.Cost.cost | None -> Float.nan)
      outcomes
  in
  (* Best-of-chains in chain order with a strict comparison: ties go to
     the lowest index, so the winner is independent of how many further
     chains ran — the determinism-across-chain-counts anchor. *)
  let best = ref None in
  Array.iteri
    (fun i o ->
      match o.co_best with
      | None -> ()
      | Some (sched, e) -> (
          match !best with
          | Some (_, _, be) when be.Cost.cost <= e.Cost.cost -> ()
          | _ -> best := Some (i, sched, e)))
    outcomes;
  let feasible = !best <> None in
  let best_chain, levels, best_eval =
    match !best with
    | Some (i, sched, e) -> (i, sched, e)
    | None ->
        (* Never feasible (negative budget): fall back to the all-exact
           schedule — SRCH002 below records the downgrade. *)
        let zero = Array.init n_phases (fun _ -> Array.make n_abs 0) in
        let cost = Cost.make ~models ~input ~budget in
        (-1, zero, Cost.eval cost zero)
  in
  Metrics.set m_best_cost best_eval.Cost.cost;
  let diagnostics =
    Lint_search.check
      {
        Lint_search.app_name = app.App.name;
        budget;
        chain_costs;
        best_cost = best_eval.Cost.cost;
        best_qos_hi = best_eval.Cost.qos_hi;
        feasible;
      }
  in
  log_diags diagnostics;
  Diagnostic.raise_errors ~strict:false diagnostics;
  Log.debug (fun m ->
      m "budget %.2f: %d chain(s) x %d iter(s), best cost %.4f (chain %d), %d accept(s)"
        budget config.chains config.iters best_eval.Cost.cost best_chain accepts);
  let stats =
    {
      chains = config.chains;
      steps;
      accepts;
      restarts;
      best_cost = best_eval.Cost.cost;
      best_chain;
      chain_costs;
      feasible;
      diagnostics;
    }
  in
  (Array.map Array.copy levels, stats)

let solve ?config ?pool ~models ~input ~budget ?first_phase () =
  let levels, stats = solve_levels ?config ?pool ~models ~input ~budget ?first_phase () in
  (Optimizer.plan_of_levels ~models ~input ~budget levels, stats)

(* Linking opprox.search makes the Stochastic strategy available to the
   optimizer's automatic fallback. *)
let () =
  Optimizer.set_stochastic_solver
    (fun ~models ~input ~budget ~first_phase ~params ->
      let config =
        {
          chains = params.Optimizer.chains;
          iters = params.Optimizer.iters;
          seed = params.Optimizer.seed;
        }
      in
      fst (solve_levels ~config ~models ~input ~budget ~first_phase ()))
