(** Multi-chain stochastic schedule search (the tentpole driver).

    Runs [chains] independent {!Mcmc} chains across the
    {!Opprox_util.Pool} domains, polishes each chain's best feasible
    schedule with the deterministic steepest-descent finisher, takes the
    best-of-chains (ties to the lowest chain index), audits the outcome
    through {!Opprox_analysis.Lint_search} ([SRCH***]) and materializes
    it as a fully lint-audited plan via {!Opprox.Optimizer.plan_of_levels}.

    {b Determinism}: chain [i]'s generator is split from the master seed
    by index ({!Opprox_util.Pool.parallel_map_seeded}), so its trajectory
    depends on [(seed, i)] only — never on [--jobs], scheduling, or how
    many other chains run.  Results are therefore bit-identical at any
    parallelism, and — once the iteration budget lets every chain
    converge to the same polished optimum — across chain counts too.

    Linking this library installs the [Stochastic] strategy into
    {!Opprox.Optimizer} (see {!Opprox.Optimizer.set_stochastic_solver});
    there is nothing to call for that beyond depending on
    [opprox.search]. *)

type config = { chains : int; iters : int; seed : int }

val default_config : config
(** Mirrors {!Opprox.Optimizer.default_stochastic_params}:
    [{ chains = 4; iters = 2000; seed = 0x5EA2C }]. *)

type stats = {
  chains : int;
  steps : int;  (** proposal steps summed over chains *)
  accepts : int;  (** accepted proposals summed over chains *)
  restarts : int;  (** best-teleport restarts summed over chains *)
  best_cost : float;  (** cost of the returned schedule *)
  best_chain : int;  (** index of the winning chain (-1 on fallback) *)
  chain_costs : float array;
      (** polished best cost per chain ([nan]: chain never feasible) *)
  feasible : bool;  (** false = all-exact fallback, [SRCH002] logged *)
  diagnostics : Opprox_analysis.Diagnostic.t list;  (** [SRCH***] audit *)
}

val solve_levels :
  ?config:config ->
  ?pool:Opprox_util.Pool.t ->
  models:Opprox.Models.t ->
  input:float array ->
  budget:float ->
  ?first_phase:int ->
  unit ->
  int array array * stats
(** Search and return the raw [n_phases x n_abs] levels matrix plus
    stats.  Logs the [SRCH***] audit (raising
    {!Opprox_analysis.Diagnostic.Lint_error} on [SRCH003], the
    never-expected feasibility contradiction) but does {e not} build or
    lint a plan.  When no chain ever visits a feasible schedule the
    all-exact matrix is returned with [stats.feasible = false].

    Observability: one [search.solve] span wrapping [search.chain] spans
    (category ["search"]), and the [search.chains] / [search.steps] /
    [search.accepts] / [search.restarts] counters plus the
    [search.best_cost] gauge. *)

val solve :
  ?config:config ->
  ?pool:Opprox_util.Pool.t ->
  models:Opprox.Models.t ->
  input:float array ->
  budget:float ->
  ?first_phase:int ->
  unit ->
  Opprox.Optimizer.plan * stats
(** {!solve_levels}, then the final audit gate: the winning schedule goes
    through {!Opprox.Optimizer.plan_of_levels} — per-phase predictions,
    sub-budgets, and the full [PLAN***] lint — before anything is
    returned. *)
