type transport =
  | Socket of { fd : Unix.file_descr; mutable closed : bool }
  | Loopback of Server.t

type t = { transport : transport }

let connect ~socket =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { transport = Socket { fd; closed = false } }

let loopback server = { transport = Loopback server }

let read_response fd =
  match Protocol.read_frame fd with
  | None -> failwith "Client.request: server closed the connection"
  | Some sexp -> Protocol.response_of_sexp sexp

let request t req =
  match t.transport with
  | Socket { fd; closed } ->
      if closed then failwith "Client.request: connection is closed";
      Protocol.write_frame fd (Protocol.request_to_sexp req);
      read_response fd
  | Loopback server ->
      (* Round-trip both directions through the codecs so loopback
         traffic proves the wire format, not just the server logic. *)
      let req =
        Protocol.request_of_sexp (Opprox_util.Sexp.of_string
                                    (Opprox_util.Sexp.to_string (Protocol.request_to_sexp req)))
      in
      Protocol.response_of_sexp
        (Opprox_util.Sexp.of_string
           (Opprox_util.Sexp.to_string (Protocol.response_to_sexp (Server.handle server req))))

let batch t reqs =
  match t.transport with
  | Socket { fd; closed } ->
      if closed then failwith "Client.batch: connection is closed";
      (* Pipeline the whole batch on the one connection: write every
         frame, then read every reply.  The server answers a connection's
         frames strictly in order, so replies line up with requests; the
         batch costs one round-trip of latency instead of one per
         request. *)
      List.iter (fun req -> Protocol.write_frame fd (Protocol.request_to_sexp req)) reqs;
      List.map (fun _ -> read_response fd) reqs
  | Loopback _ -> List.map (request t) reqs

let telemetry t tm =
  match t.transport with
  | Socket { fd; closed } ->
      if closed then failwith "Client.telemetry: connection is closed";
      Protocol.write_frame fd (Protocol.telemetry_to_sexp tm);
      read_response fd
  | Loopback server ->
      (* Same both-directions codec round-trip as [request]. *)
      let tm =
        Protocol.telemetry_of_sexp
          (Opprox_util.Sexp.of_string
             (Opprox_util.Sexp.to_string (Protocol.telemetry_to_sexp tm)))
      in
      Protocol.response_of_sexp
        (Opprox_util.Sexp.of_string
           (Opprox_util.Sexp.to_string
              (Protocol.response_to_sexp (Server.handle_telemetry server tm))))

let replanner t ?input ~app ~plan_budget ~drift_tol () : Opprox.Controller.replanner =
 fun (tm : Opprox.Controller.telemetry) ->
  let frame =
    Protocol.telemetry ?input ~app ~plan_budget ~phase:tm.Opprox.Controller.phase
      ~n_phases:tm.Opprox.Controller.n_phases ~drift:tm.Opprox.Controller.drift ~drift_tol
      ~observed_work:tm.Opprox.Controller.observed_work
      ~predicted_work:tm.Opprox.Controller.predicted_work
      ~remaining_budget:tm.Opprox.Controller.remaining_budget ()
  in
  match telemetry t frame with
  | Protocol.PlanDelta { delta = Protocol.No_change; _ } -> None
  | Protocol.PlanDelta { delta = Protocol.Replan { plan; _ }; _ } -> Some plan
  | Protocol.Error diags ->
      failwith
        (Printf.sprintf "Client.replanner: server rejected telemetry: %s"
           (String.concat "; "
              (List.map
                 (fun d -> Format.asprintf "%a" Opprox_analysis.Diagnostic.pp d)
                 diags)))
  | Protocol.Plan _ | Protocol.Timeout _ | Protocol.Overloaded _ ->
      failwith "Client.replanner: unexpected reply to a telemetry frame"

let send_raw t payload =
  match t.transport with
  | Socket { fd; closed } ->
      if closed then failwith "Client.send_raw: connection is closed";
      Protocol.write_raw_frame fd payload;
      read_response fd
  | Loopback _ -> failwith "Client.send_raw: raw frames need a socket transport"

let close t =
  match t.transport with
  | Socket s ->
      if not s.closed then begin
        s.closed <- true;
        try Unix.close s.fd with Unix.Unix_error _ -> ()
      end
  | Loopback _ -> ()

let with_connection ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
