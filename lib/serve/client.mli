(** Client for the plan-serving daemon — also a library.

    Two transports behind one type: a Unix-domain-socket connection to a
    running [opprox serve] daemon ({!connect}), and an in-process
    loopback around a {!Server.t} ({!loopback}) that exercises the full
    request path {e and} both wire codecs without a socket or a fork —
    what the tests and the bench suite hammer.

    A connection answers requests sequentially (one frame out, one frame
    in); it is not safe to share across domains without external
    locking. *)

type t

val connect : socket:string -> t
(** Connect to a daemon.  Raises [Unix.Unix_error] when nothing listens
    on [socket]. *)

val loopback : Server.t -> t
(** In-process transport: {!request} runs {!Server.handle} with the
    request and reply round-tripped through the wire codecs, so loopback
    traffic exercises exactly what the socket carries. *)

val request : t -> Protocol.request -> Protocol.response
(** Send one request, wait for the reply.  Raises [Failure] when the
    server closes the connection or replies with an undecodable frame,
    [Unix.Unix_error] on transport failure. *)

val batch : t -> Protocol.request list -> Protocol.response list
(** Pipelined over the one connection: every request frame is written,
    then every reply read (the server answers a connection in order, so
    replies align with requests by position).  One connection and one
    round-trip of latency for the whole batch.  Batches large enough to
    overflow both socket buffers (hundreds of requests) can deadlock a
    non-draining server; split such batches.  Loopback clients degrade
    to sequential {!request}s. *)

val telemetry : t -> Protocol.telemetry -> Protocol.response
(** Send one phase-boundary telemetry frame from a controlled run and
    wait for the server's verdict — normally [PlanDelta], or [Error] on a
    rejected frame.  Loopback clients round-trip both codecs around
    {!Server.handle_telemetry}, like {!request}. *)

val replanner :
  t ->
  ?input:float array ->
  app:string ->
  plan_budget:float ->
  drift_tol:float ->
  unit ->
  Opprox.Controller.replanner
(** Streaming recontrol: an {!Opprox.Controller.replanner} that ships
    each over-tolerance boundary to the server as a telemetry frame and
    adopts the returned plan delta — [No_change] keeps the schedule,
    [Replan] hands the fresh suffix to the controller.  [input] should be
    the input the controlled run executes on (the server re-solves
    against it); [plan_budget] and [drift_tol] stamp the frames.  Raises
    [Failure] when the server rejects the telemetry or answers with a
    non-delta reply. *)

val send_raw : t -> string -> Protocol.response
(** Frame arbitrary bytes and send them — for probing the server's
    malformed-frame ([SRV004]) path.  Raises [Failure] on a loopback
    client (raw frames need a wire). *)

val close : t -> unit
(** Close the connection (idempotent; loopback is a no-op). *)

val with_connection : socket:string -> (t -> 'a) -> 'a
(** {!connect}, run, {!close} (also on raise). *)
