module Rng = Opprox_util.Rng
module Trace = Opprox_obs.Trace

type tail = Exponential | Pareto of float

type key = { app : string; input : float array option; budget : float }

type config = {
  requests : int;
  rate : float;
  conns : int;
  tail : tail;
  zipf : float;
  offgrid : float;
  seed : int;
  deadline_ms : float option;
}

let default_config =
  {
    requests = 200;
    rate = 200.0;
    conns = 2;
    tail = Pareto 1.5;
    zipf = 1.1;
    offgrid = 0.0;
    seed = 42;
    deadline_ms = None;
  }

type counts = { corpus : int; nn : int; cache : int; solved : int }

type report = {
  sent : int;
  answered : int;
  shed : int;
  errors : int;
  timeouts : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
  wall_s : float;
  achieved_rps : float;
  sources : counts;
  dropped_nonfinite : int;
}

(* One scheduled arrival: when (seconds from epoch) and what to send. *)
type shot = { at_s : float; req : Protocol.request }

type outcome = Answered of float * Protocol.cache_status | Shed | Failed | TimedOut

let validate cfg ~keys =
  if Array.length keys = 0 then invalid_arg "Loadgen: no keys";
  if cfg.requests < 1 then invalid_arg "Loadgen: requests must be >= 1";
  if not (Float.is_finite cfg.rate) || cfg.rate <= 0.0 then
    invalid_arg "Loadgen: rate must be positive";
  if cfg.conns < 1 || cfg.conns > 64 then invalid_arg "Loadgen: conns must be in [1, 64]";
  if cfg.zipf < 0.0 then invalid_arg "Loadgen: zipf must be >= 0";
  if cfg.offgrid < 0.0 || cfg.offgrid > 1.0 then
    invalid_arg "Loadgen: offgrid must be in [0, 1]";
  match cfg.tail with
  | Pareto alpha when alpha <= 1.0 ->
      invalid_arg "Loadgen: Pareto shape must exceed 1 (finite mean)"
  | _ -> ()

(* Draw the whole schedule sequentially before anything runs: the
   schedule is a pure function of the seed, whatever the transport does. *)
let schedule cfg ~keys =
  let rng = Rng.create cfg.seed in
  let n_keys = Array.length keys in
  (* Zipf over key rank: weight 1/(rank+1)^s, sampled by inverse CDF. *)
  let cum = Array.make n_keys 0.0 in
  let total = ref 0.0 in
  for i = 0 to n_keys - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) cfg.zipf);
    cum.(i) <- !total
  done;
  let pick_key () =
    let u = Rng.float rng !total in
    let lo = ref 0 and hi = ref (n_keys - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    keys.(!lo)
  in
  let interarrival () =
    let u = Rng.uniform rng in
    match cfg.tail with
    | Exponential -> -.Float.log (1.0 -. u) /. cfg.rate
    | Pareto alpha ->
        (* scale chosen so the mean (alpha xm / (alpha-1)) is 1/rate *)
        let xm = (alpha -. 1.0) /. (alpha *. cfg.rate) in
        xm *. Float.pow (1.0 -. u) (-1.0 /. alpha)
  in
  let clock = ref 0.0 in
  Array.init cfg.requests (fun _ ->
      clock := !clock +. interarrival ();
      let k = pick_key () in
      let budget =
        if cfg.offgrid > 0.0 && Rng.uniform rng < cfg.offgrid then
          (* strictly above the grid cell, at most ~15% looser: exact
             lookup misses, the cell below stays the nearest neighbour *)
          k.budget *. (1.001 +. Rng.float rng 0.15)
        else k.budget
      in
      {
        at_s = !clock;
        req =
          Protocol.request ?input:k.input ?deadline_ms:cfg.deadline_ms ~app:k.app ~budget ();
      })

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1))

(* Percentiles run over finite latencies only, under Float.compare: the
   polymorphic compare this replaced boxed every element and has no
   total order story for NaN, so one bad clock read could land anywhere
   in the sorted array and poison p999.  Non-finite samples are dropped
   and counted instead of silently ranked. *)
let finite_sorted lat =
  let finite, nonfinite = List.partition Float.is_finite lat in
  let sorted = Array.of_list finite in
  Array.sort Float.compare sorted;
  (sorted, List.length nonfinite)

let run ~connect ~keys cfg =
  validate cfg ~keys;
  let shots = schedule cfg ~keys in
  let n = Array.length shots in
  let outcomes = Array.make n Failed in
  let finished = Array.make n 0.0 in
  (* Round-robin partition: connection [c] owns shots [c], [c+conns], …
     in arrival order. *)
  let worker t0_us c () =
    let client = connect () in
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let i = ref c in
        while !i < n do
          let shot = shots.(!i) in
          let target_us = t0_us +. (shot.at_s *. 1e6) in
          let now = Trace.now_us () in
          if now < target_us then Unix.sleepf ((target_us -. now) /. 1e6);
          let resp = try Some (Client.request client shot.req) with _ -> None in
          let done_us = Trace.now_us () in
          finished.(!i) <- done_us;
          (* Latency from intended arrival: server-side queueing and our
             own late send both count against the tail, as they should. *)
          let lat_ms = (done_us -. target_us) /. 1000.0 in
          outcomes.(!i) <-
            (match resp with
            | Some (Protocol.Plan { cache; _ }) -> Answered (lat_ms, cache)
            | Some (Protocol.Overloaded _) -> Shed
            | Some (Protocol.Timeout _) -> TimedOut
            | Some (Protocol.Error _ | Protocol.PlanDelta _) | None -> Failed);
          i := !i + cfg.conns
        done)
  in
  let t0_us = Trace.now_us () in
  let domains =
    List.init (cfg.conns - 1) (fun j -> Domain.spawn (worker t0_us (j + 1)))
  in
  worker t0_us 0 ();
  List.iter Domain.join domains;
  let lat = ref [] in
  let answered = ref 0 and shed = ref 0 and errors = ref 0 and timeouts = ref 0 in
  let sources = ref { corpus = 0; nn = 0; cache = 0; solved = 0 } in
  Array.iter
    (function
      | Answered (l, status) ->
          incr answered;
          lat := l :: !lat;
          sources :=
            (let s = !sources in
             match status with
             | Protocol.Corpus -> { s with corpus = s.corpus + 1 }
             | Protocol.Nearest -> { s with nn = s.nn + 1 }
             | Protocol.Hit -> { s with cache = s.cache + 1 }
             | Protocol.Miss -> { s with solved = s.solved + 1 })
      | Shed -> incr shed
      | Failed -> incr errors
      | TimedOut -> incr timeouts)
    outcomes;
  let sorted, dropped_nonfinite = finite_sorted !lat in
  let last_finish = Array.fold_left Float.max t0_us finished in
  let wall_s = Float.max 1e-9 ((last_finish -. t0_us) /. 1e6) in
  {
    sent = n;
    answered = !answered;
    shed = !shed;
    errors = !errors;
    timeouts = !timeouts;
    p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
    p999_ms = percentile sorted 0.999;
    max_ms = (if Array.length sorted = 0 then Float.nan else sorted.(Array.length sorted - 1));
    wall_s;
    achieved_rps = float_of_int n /. wall_s;
    sources = !sources;
    dropped_nonfinite;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>sent %d  answered %d  shed %d  errors %d  timeouts %d@,\
     latency ms (from intended arrival): p50 %.3f  p99 %.3f  p999 %.3f  max %.3f@,\
     sources: corpus %d  nn %d  cache %d  solved %d@,\
     wall %.2fs  achieved %.0f rps@]"
    r.sent r.answered r.shed r.errors r.timeouts r.p50_ms r.p99_ms r.p999_ms r.max_ms
    r.sources.corpus r.sources.nn r.sources.cache r.sources.solved r.wall_s r.achieved_rps;
  if r.dropped_nonfinite > 0 then
    Format.fprintf ppf "@,WARNING: %d non-finite latency sample(s) dropped before percentiles"
      r.dropped_nonfinite
