(** Open-loop load generator for the plan-serving daemon.

    Serving latency claims die by coordinated omission: a closed-loop
    client (send, wait, send) slows its own arrival rate exactly when
    the server slows down, hiding the tail.  This generator is open-loop
    in the honest sense: the full arrival schedule — heavy-tailed
    interarrivals, Zipf-skewed key choice — is drawn {e up front} from a
    seeded {!Opprox_util.Rng}, and each request's latency is measured
    from its {e intended} arrival time, so a request that queued behind
    a slow server is charged the queueing delay even though the socket
    write happened late.  Arrivals are partitioned round-robin over
    [conns] independent connections (one domain each); with a bounded
    connection count the generator is open-loop per schedule and bounded
    per channel, which still cannot hide server-side queueing from the
    percentiles.

    Knobs map to the serving layers under test: [zipf] concentrates
    traffic on hot keys (what the singleflight and LRU absorb),
    [offgrid] nudges budgets off the corpus grid (what the
    nearest-neighbour fallback absorbs), [Pareto] interarrivals produce
    the bursts that trip admission control. *)

type tail =
  | Exponential  (** Poisson arrivals *)
  | Pareto of float
      (** heavy-tailed interarrivals with the given shape [alpha > 1];
          smaller alpha, burstier traffic *)

type key = { app : string; input : float array option; budget : float }

type config = {
  requests : int;
  rate : float;  (** mean arrivals per second *)
  conns : int;  (** client connections, one domain each (at most 64) *)
  tail : tail;
  zipf : float;  (** key-skew exponent; 0 is uniform *)
  offgrid : float;
      (** fraction of requests whose budget is nudged up off the grid
          cell, landing them in nearest-neighbour territory *)
  seed : int;
  deadline_ms : float option;
}

val default_config : config
(** 200 requests, 200 rps, 2 connections, [Pareto 1.5], zipf 1.1,
    offgrid 0, seed 42, no deadline. *)

type counts = { corpus : int; nn : int; cache : int; solved : int }

type report = {
  sent : int;
  answered : int;  (** plan replies *)
  shed : int;  (** overload replies *)
  errors : int;
  timeouts : int;
  p50_ms : float;
  p99_ms : float;
  p999_ms : float;
  max_ms : float;
      (** percentiles over answered replies, measured from intended
          arrival (NaN when nothing was answered) *)
  wall_s : float;
  achieved_rps : float;
  sources : counts;  (** where answered plans came from *)
  dropped_nonfinite : int;
      (** latency samples that were NaN/infinite (broken clock reads) —
          dropped before the percentile pass instead of being ranked *)
}

val finite_sorted : float list -> float array * int
(** The report's percentile pre-pass: drop non-finite samples (returning
    how many), sort the rest ascending under [Float.compare] — a total
    order, unlike the polymorphic compare it replaced, which had no story
    for NaN and could rank one bad clock read anywhere in the array.
    Exposed so the regression tests can pin the behaviour without a live
    load run. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [sorted] ascending; NaN on an empty
    array. *)

val run : connect:(unit -> Client.t) -> keys:key array -> config -> report
(** Fire the schedule at servers reached through [connect] (called once
    per connection, from that connection's domain; use
    {!Client.loopback} thunks for in-process runs).  Blocks until every
    request has been answered or failed.  Raises [Invalid_argument] on
    an empty key set or nonsensical config. *)

val pp : Format.formatter -> report -> unit
