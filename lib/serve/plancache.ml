module Dmutex = Opprox_util.Dmutex
module Guarded = Opprox_util.Guarded
module Metrics = Opprox_obs.Metrics

(* Process-wide mirrors (aggregated across instances); the exact
   per-instance numbers live in the shard counters below. *)
let m_hit = Metrics.counter "plancache.hit"
let m_miss = Metrics.counter "plancache.miss"
let m_eviction = Metrics.counter "plancache.eviction"
let m_insertion = Metrics.counter "plancache.insertion"
let m_size = Metrics.gauge "plancache.size"

(* One entry: the value plus its shard-local recency stamp.  Recency is a
   monotonically increasing generation per shard; eviction scans for the
   minimum.  Shards are small (capacity/shards entries), so the O(n)
   scan on eviction is cheaper than maintaining an intrusive list and
   much harder to get wrong under concurrency. *)
type 'v entry = { mutable value : 'v; mutable gen : int }

(* Everything a shard mutates under its lock lives in one {!Guarded}
   cell, so the concurrency checker audits that no counter or table is
   touched outside [with_shard]. *)
type 'v shard_state = {
  table : (string, 'v entry) Hashtbl.t;
  cap : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

type 'v shard = { mutex : Dmutex.t; state : 'v shard_state Guarded.t }

type 'v t = { shard_table : 'v shard array; total_capacity : int }

type stats = { hits : int; misses : int; evictions : int; insertions : int }

let create ?(shards = 8) ~capacity () =
  if capacity < 1 then invalid_arg "Plancache.create: capacity must be >= 1";
  if shards < 1 then invalid_arg "Plancache.create: shards must be >= 1";
  let shards = Stdlib.min shards capacity in
  (* Split the capacity exactly: the first [capacity mod shards] shards
     take one extra slot, so the per-shard caps sum to [capacity]. *)
  let base = capacity / shards and extra = capacity mod shards in
  let shard_table =
    Array.init shards (fun i ->
        let cap = base + if i < extra then 1 else 0 in
        let mutex = Dmutex.create ~name:"plancache.shard" () in
        {
          mutex;
          state =
            Guarded.create
              ~name:(Printf.sprintf "plancache.shard[%d]" i)
              ~locks:[ mutex ]
              {
                table = Hashtbl.create (2 * cap);
                cap;
                clock = 0;
                hits = 0;
                misses = 0;
                evictions = 0;
                insertions = 0;
              };
        })
  in
  { shard_table; total_capacity = capacity }

let shard_of t key =
  t.shard_table.(Hashtbl.hash key mod Array.length t.shard_table)

(* [with_shard] hands the body the guarded state, already checked: one
   CONC002 probe per critical section instead of one per field touch. *)
let with_shard s f =
  Dmutex.lock s.mutex;
  Fun.protect ~finally:(fun () -> Dmutex.unlock s.mutex) (fun () -> f (Guarded.get s.state))

let tick st =
  st.clock <- st.clock + 1;
  st.clock

let find t key =
  let s = shard_of t key in
  with_shard s (fun st ->
      match Hashtbl.find_opt st.table key with
      | Some e ->
          e.gen <- tick st;
          st.hits <- st.hits + 1;
          Metrics.incr m_hit;
          Some e.value
      | None ->
          st.misses <- st.misses + 1;
          Metrics.incr m_miss;
          None)

let evict_lru_locked st =
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | Some (_, g) when g <= e.gen -> ()
      | _ -> victim := Some (key, e.gen))
    st.table;
  match !victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove st.table key;
      st.evictions <- st.evictions + 1;
      Metrics.incr m_eviction

let total_size t =
  Array.fold_left (fun acc s -> acc + with_shard s (fun st -> Hashtbl.length st.table)) 0
    t.shard_table

let add t key value =
  let s = shard_of t key in
  with_shard s (fun st ->
      match Hashtbl.find_opt st.table key with
      | Some e ->
          e.value <- value;
          e.gen <- tick st
      | None ->
          if Hashtbl.length st.table >= st.cap then evict_lru_locked st;
          Hashtbl.replace st.table key { value; gen = tick st };
          st.insertions <- st.insertions + 1;
          Metrics.incr m_insertion);
  Metrics.set m_size (float_of_int (total_size t))

let mem t key =
  let s = shard_of t key in
  with_shard s (fun st -> Hashtbl.mem st.table key)

let size = total_size
let capacity t = t.total_capacity
let shards t = Array.length t.shard_table

let clear t =
  Array.iter (fun s -> with_shard s (fun st -> Hashtbl.reset st.table)) t.shard_table;
  Metrics.set m_size 0.0

let stats t =
  Array.fold_left
    (fun acc s ->
      with_shard s (fun st ->
          {
            hits = acc.hits + st.hits;
            misses = acc.misses + st.misses;
            evictions = acc.evictions + st.evictions;
            insertions = acc.insertions + st.insertions;
          }))
    { hits = 0; misses = 0; evictions = 0; insertions = 0 }
    t.shard_table

(* --------------------------------------------------------------- snapshot *)

module Sexp = Opprox_util.Sexp

let to_sexp conv t =
  (* Per shard, entries emit least-recent first; {!restore} replays them
     through {!add}, so within a shard the recency order — and therefore
     the eviction order — survives the round-trip exactly.  Across shards
     generations are independent clocks with no global order to keep. *)
  let entries =
    Array.to_list t.shard_table
    |> List.concat_map (fun s ->
           with_shard s (fun st ->
               Hashtbl.fold (fun key e acc -> (e.gen, key, e.value) :: acc) st.table []
               |> List.sort (fun (g1, _, _) (g2, _, _) -> compare g1 g2)))
  in
  Sexp.list (List.map (fun (_, key, v) -> Sexp.list [ Sexp.string key; conv v ]) entries)

let restore of_value t sexp =
  let n = ref 0 in
  List.iter
    (fun e ->
      match Sexp.to_list e with
      | [ key; v ] ->
          add t (Sexp.to_string_atom key) (of_value v);
          incr n
      | _ -> failwith "Plancache.restore: malformed snapshot entry")
    (Sexp.to_list sexp);
  !n

(* ------------------------------------------------------------ fingerprint *)

(* The canonical key now lives in {!Opprox_corpus.Key} — the corpus, the
   LRU, and the singleflight table must agree on it byte for byte.  Kept
   here as an alias for the existing call sites. *)
let fingerprint = Opprox_corpus.Key.fingerprint
