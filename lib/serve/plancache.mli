(** Sharded LRU plan cache.

    The daemon's whole point is that a plan query for a (app, input,
    budget, models) combination it has answered before must cost a cache
    lookup, not an optimizer solve.  Keys are canonical fingerprints
    ({!fingerprint}): the IEEE-754 bits of every float go into the key,
    so two inputs that print alike but differ in the last ulp never
    collide, and two requests that are bitwise equal always do —
    whatever intermediate re-parsing they went through.

    The table is sharded: a key's shard is a hash of the key, each shard
    is an independent mutex-guarded LRU, so concurrent worker domains
    contend per shard rather than on one global lock.  Total capacity is
    split across shards (remainder to the first shards); the global
    [size] therefore never exceeds [capacity], though a hot shard can
    evict while a cold one has room — the standard sharding trade.

    Recency is exact within a shard: every {!find} hit and every {!add}
    bumps the entry to most-recent; eviction removes the least recent
    entry of the full shard.  Counters ({!stats}) are exact per instance;
    the process-wide [plancache.*] metrics aggregate across instances. *)

type 'v t

val create : ?shards:int -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] — [capacity >= 1] entries in total, spread over
    [shards] (default 8, clamped to [capacity]) independent LRUs.
    Raises [Invalid_argument] on a non-positive capacity or shard
    count. *)

val find : 'v t -> string -> 'v option
(** Lookup; a hit bumps the entry to most-recent.  Counted as one hit or
    one miss. *)

val add : 'v t -> string -> 'v -> unit
(** Insert a fresh key (counted as an insertion) or overwrite an existing
    one in place (not counted); either way the entry becomes most-recent.
    When a fresh key finds its shard full, the shard's least-recent entry
    is evicted (counted). *)

val mem : 'v t -> string -> bool
(** Membership without touching recency or counters. *)

val size : 'v t -> int
val capacity : 'v t -> int
val shards : 'v t -> int

val clear : 'v t -> unit
(** Drop every entry; counters keep accumulating. *)

type stats = { hits : int; misses : int; evictions : int; insertions : int }

val stats : 'v t -> stats
(** Exact per-instance counters, summed over shards. *)

val to_sexp : ('v -> Opprox_util.Sexp.t) -> 'v t -> Opprox_util.Sexp.t
(** Snapshot every entry, least-recent first within each shard, so that
    {!restore} reproduces each shard's recency (and hence eviction)
    order exactly.  Takes each shard's lock in turn; concurrent writers
    see a consistent per-shard view. *)

val restore : (Opprox_util.Sexp.t -> 'v) -> 'v t -> Opprox_util.Sexp.t -> int
(** Replay a {!to_sexp} snapshot through {!add} (counting insertions and
    evicting normally if the snapshot exceeds capacity) and return the
    number of entries restored.  Raises [Failure] on a malformed
    snapshot and whatever the value decoder raises on a malformed
    value. *)

val fingerprint : app:string -> input:float array -> budget:float -> models_hash:string -> string
(** Canonical cache key — an alias of {!Opprox_corpus.Key.fingerprint},
    shared with the plan corpus and the singleflight table: application
    name, the IEEE-754 bit pattern of every input component and of the
    budget, and the models hash.  Equal requests — also
    equal-but-reconstructed ones — map to equal keys; any bit of
    difference changes the key. *)
