module Sexp = Opprox_util.Sexp
module Diagnostic = Opprox_analysis.Diagnostic
module Optimizer = Opprox.Optimizer

let version = 1
let max_frame_bytes = 16 * 1024 * 1024

type request = {
  app : string;
  input : float array option;
  budget : float;
  deadline_ms : float option;
  models_hash : string option;
  no_cache : bool;
}

let request ?input ?deadline_ms ?models_hash ?(no_cache = false) ~app ~budget () =
  { app; input; budget; deadline_ms; models_hash; no_cache }

(* Where the plan came from, most- to least-precomputed: the persistent
   corpus (exact fingerprint), a nearest-neighbour corpus cell (tightened
   budget), the in-memory LRU, or a fresh solve. *)
type cache_status = Corpus | Nearest | Hit | Miss

type telemetry = {
  t_app : string;
  t_input : float array option;
  plan_budget : float;
  phase : int;
  n_phases : int;
  drift : float;
  drift_tol : float;
  observed_work : float;
  predicted_work : float;
  remaining_budget : float;
}

let telemetry ?input ~app ~plan_budget ~phase ~n_phases ~drift ~drift_tol ~observed_work
    ~predicted_work ~remaining_budget () =
  {
    t_app = app;
    t_input = input;
    plan_budget;
    phase;
    n_phases;
    drift;
    drift_tol;
    observed_work;
    predicted_work;
    remaining_budget;
  }

type plan_delta = No_change | Replan of { from_phase : int; plan : Optimizer.plan }

type response =
  | Plan of {
      plan : Optimizer.plan;
      cache : cache_status;
      models_hash : string;
      elapsed_ms : float;
    }
  | PlanDelta of { delta : plan_delta; elapsed_ms : float }
  | Error of Diagnostic.t list
  | Timeout of { elapsed_ms : float; deadline_ms : float }
  | Overloaded of { inflight : int; limit : int }

(* ---------------------------------------------------------------- codecs *)

let opt name conv = function None -> [] | Some v -> [ (name, conv v) ]

let request_to_sexp r =
  Sexp.record
    ([ ("v", Sexp.int version); ("app", Sexp.string r.app); ("budget", Sexp.float r.budget) ]
    @ opt "input" Sexp.float_array r.input
    @ opt "deadline_ms" Sexp.float r.deadline_ms
    @ opt "models_hash" Sexp.string r.models_hash
    @ (if r.no_cache then [ ("no_cache", Sexp.atom "true") ] else []))

let frame_version sexp =
  match Sexp.field_opt sexp "v" with None -> version | Some v -> Sexp.to_int v

(* Plan requests predate the [kind] tag and stay untagged on the wire;
   every other frame shape carries [(kind ...)] so the server can
   dispatch before decoding the payload. *)
let frame_kind sexp =
  match Sexp.field_opt sexp "kind" with
  | None -> "request"
  | Some k -> Sexp.to_string_atom k

let telemetry_to_sexp t =
  Sexp.record
    ([
       ("v", Sexp.int version);
       ("kind", Sexp.atom "telemetry");
       ("app", Sexp.string t.t_app);
       ("plan_budget", Sexp.float t.plan_budget);
       ("phase", Sexp.int t.phase);
       ("n_phases", Sexp.int t.n_phases);
       ("drift", Sexp.float t.drift);
       ("drift_tol", Sexp.float t.drift_tol);
       ("observed_work", Sexp.float t.observed_work);
       ("predicted_work", Sexp.float t.predicted_work);
       ("remaining_budget", Sexp.float t.remaining_budget);
     ]
    @ opt "input" Sexp.float_array t.t_input)

let telemetry_of_sexp sexp =
  (match frame_kind sexp with
  | "telemetry" -> ()
  | k -> failwith (Printf.sprintf "telemetry: frame kind %S is not telemetry" k));
  {
    t_app = Sexp.to_string_atom (Sexp.field sexp "app");
    t_input = Option.map Sexp.to_float_array (Sexp.field_opt sexp "input");
    plan_budget = Sexp.to_float (Sexp.field sexp "plan_budget");
    phase = Sexp.to_int (Sexp.field sexp "phase");
    n_phases = Sexp.to_int (Sexp.field sexp "n_phases");
    drift = Sexp.to_float (Sexp.field sexp "drift");
    drift_tol = Sexp.to_float (Sexp.field sexp "drift_tol");
    observed_work = Sexp.to_float (Sexp.field sexp "observed_work");
    predicted_work = Sexp.to_float (Sexp.field sexp "predicted_work");
    remaining_budget = Sexp.to_float (Sexp.field sexp "remaining_budget");
  }

let request_of_sexp sexp =
  {
    app = Sexp.to_string_atom (Sexp.field sexp "app");
    budget = Sexp.to_float (Sexp.field sexp "budget");
    input = Option.map Sexp.to_float_array (Sexp.field_opt sexp "input");
    deadline_ms = Option.map Sexp.to_float (Sexp.field_opt sexp "deadline_ms");
    models_hash = Option.map Sexp.to_string_atom (Sexp.field_opt sexp "models_hash");
    no_cache =
      (match Sexp.field_opt sexp "no_cache" with
      | Some (Sexp.Atom "true") -> true
      | Some (Sexp.Atom "false") | None -> false
      | Some s -> failwith (Printf.sprintf "request: bad no_cache %s" (Sexp.to_string s)));
  }

let cache_status_string = function
  | Corpus -> "corpus"
  | Nearest -> "nn"
  | Hit -> "hit"
  | Miss -> "miss"

(* CLI-facing naming: what a user calls the place an answer came from. *)
let cache_source_string = function
  | Corpus -> "corpus"
  | Nearest -> "nn"
  | Hit -> "cache"
  | Miss -> "solved"

let response_to_sexp = function
  | Plan { plan; cache; models_hash; elapsed_ms } ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "plan");
          ("cache", Sexp.atom (cache_status_string cache));
          ("models_hash", Sexp.string models_hash);
          ("elapsed_ms", Sexp.float elapsed_ms);
          ("plan", Optimizer.plan_to_sexp plan);
        ]
  | PlanDelta { delta = No_change; elapsed_ms } ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "plan_delta");
          ("delta", Sexp.atom "no_change");
          ("elapsed_ms", Sexp.float elapsed_ms);
        ]
  | PlanDelta { delta = Replan { from_phase; plan }; elapsed_ms } ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "plan_delta");
          ("delta", Sexp.atom "replan");
          ("from_phase", Sexp.int from_phase);
          ("elapsed_ms", Sexp.float elapsed_ms);
          ("plan", Optimizer.plan_to_sexp plan);
        ]
  | Error diags ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "error");
          ("diagnostics", Sexp.list (List.map Diagnostic.to_sexp diags));
        ]
  | Timeout { elapsed_ms; deadline_ms } ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "timeout");
          ("elapsed_ms", Sexp.float elapsed_ms);
          ("deadline_ms", Sexp.float deadline_ms);
        ]
  | Overloaded { inflight; limit } ->
      Sexp.record
        [
          ("v", Sexp.int version);
          ("status", Sexp.atom "overloaded");
          ("inflight", Sexp.int inflight);
          ("limit", Sexp.int limit);
        ]

let response_of_sexp sexp =
  match Sexp.to_string_atom (Sexp.field sexp "status") with
  | "plan" ->
      Plan
        {
          plan = Optimizer.plan_of_sexp (Sexp.field sexp "plan");
          cache =
            (match Sexp.to_string_atom (Sexp.field sexp "cache") with
            | "corpus" -> Corpus
            | "nn" -> Nearest
            | "hit" -> Hit
            | "miss" -> Miss
            | s -> failwith (Printf.sprintf "response: bad cache status %S" s));
          models_hash = Sexp.to_string_atom (Sexp.field sexp "models_hash");
          elapsed_ms = Sexp.to_float (Sexp.field sexp "elapsed_ms");
        }
  | "plan_delta" ->
      let elapsed_ms = Sexp.to_float (Sexp.field sexp "elapsed_ms") in
      let delta =
        match Sexp.to_string_atom (Sexp.field sexp "delta") with
        | "no_change" -> No_change
        | "replan" ->
            Replan
              {
                from_phase = Sexp.to_int (Sexp.field sexp "from_phase");
                plan = Optimizer.plan_of_sexp (Sexp.field sexp "plan");
              }
        | s -> failwith (Printf.sprintf "response: bad plan delta %S" s)
      in
      PlanDelta { delta; elapsed_ms }
  | "error" ->
      Error (List.map Diagnostic.of_sexp (Sexp.to_list (Sexp.field sexp "diagnostics")))
  | "timeout" ->
      Timeout
        {
          elapsed_ms = Sexp.to_float (Sexp.field sexp "elapsed_ms");
          deadline_ms = Sexp.to_float (Sexp.field sexp "deadline_ms");
        }
  | "overloaded" ->
      Overloaded
        {
          inflight = Sexp.to_int (Sexp.field sexp "inflight");
          limit = Sexp.to_int (Sexp.field sexp "limit");
        }
  | s -> failwith (Printf.sprintf "response: unknown status %S" s)

(* --------------------------------------------------------------- framing *)

(* EINTR-safe full write: [Unix.write] may transfer a prefix. *)
let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

let write_raw_frame fd payload =
  let len = String.length payload in
  if len > max_frame_bytes then
    failwith (Printf.sprintf "Protocol.write_frame: payload of %d bytes exceeds %d" len
                max_frame_bytes);
  let frame = Bytes.create (4 + len) in
  Bytes.set_int32_be frame 0 (Int32.of_int len);
  Bytes.blit_string payload 0 frame 4 len;
  write_all fd frame 0 (4 + len)

let write_frame fd sexp = write_raw_frame fd (Sexp.to_string sexp)

(* Read exactly [len] bytes; [`Eof n] reports how many arrived first. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then `Ok buf
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> `Eof off
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame fd =
  match read_exact fd 4 with
  | `Eof 0 -> None
  | `Eof n -> failwith (Printf.sprintf "frame truncated in length prefix (%d of 4 bytes)" n)
  | `Ok header ->
      let len = Int32.to_int (Bytes.get_int32_be header 0) in
      if len < 0 || len > max_frame_bytes then
        failwith (Printf.sprintf "frame length %d outside [0, %d]" len max_frame_bytes)
      else begin
        match read_exact fd len with
        | `Eof n -> failwith (Printf.sprintf "frame truncated (%d of %d payload bytes)" n len)
        | `Ok payload -> Some (Sexp.of_string (Bytes.unsafe_to_string payload))
      end
