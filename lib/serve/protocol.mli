(** Wire protocol of the plan-serving daemon.

    One frame is a 4-byte big-endian payload length followed by that many
    bytes of s-expression text ({!Opprox_util.Sexp}); requests and
    replies are records carrying an explicit protocol version [(v 1)].
    Length-prefixed framing keeps the parser trivial and makes frame
    boundaries survive malformed payloads: a server that fails to decode
    one frame can reply with a structured [SRV004] error and keep the
    connection.

    A request names an application, a QoS degradation budget (percent,
    like the whole pipeline), and optionally an input vector, a deadline,
    a client-asserted models hash, and a cache bypass.  A reply is one of
    four shapes: a plan (with its prediction, cache status, and the hash
    of the models that produced it), a structured diagnostic error, a
    deadline miss, or an overload shed.

    {2 Frame layout}

    {v
    +----------+----------------------------------------+
    | len: u32 | payload: len bytes of sexp text        |
    |  (BE)    | ((v 1) (app kmeans) (budget 10) ...)   |
    +----------+----------------------------------------+
    v}

    Payloads above {!max_frame_bytes} are rejected without being read —
    a garbage length prefix must not allocate gigabytes. *)

val version : int
(** The protocol version this build speaks (1). *)

val max_frame_bytes : int
(** Upper bound on a payload (16 MiB). *)

type request = {
  app : string;
  input : float array option;  (** [None]: the app's default input *)
  budget : float;  (** percent QoS degradation, in (0, 100] *)
  deadline_ms : float option;
      (** reply-by budget, measured from frame receipt; [None] defers to
          the server's default *)
  models_hash : string option;
      (** assert the server's models match what the client planned
          against ([SRV003] on mismatch) *)
  no_cache : bool;
      (** bypass the plan-cache lookup (the solve still populates it) *)
}

val request :
  ?input:float array ->
  ?deadline_ms:float ->
  ?models_hash:string ->
  ?no_cache:bool ->
  app:string ->
  budget:float ->
  unit ->
  request

type cache_status =
  | Corpus  (** exact fingerprint hit in the precomputed plan corpus *)
  | Nearest
      (** nearest-neighbour corpus cell: the plan of the largest grid
          budget at or below the requested one (never looser) *)
  | Hit  (** in-memory sharded-LRU hit *)
  | Miss  (** freshly solved (possibly coalesced onto another solve) *)

val cache_status_string : cache_status -> string
(** Wire naming: [corpus], [nn], [hit], [miss]. *)

val cache_source_string : cache_status -> string
(** User-facing naming: [corpus], [nn], [cache], [solved]. *)

type telemetry = {
  t_app : string;  (** application the controlled run executes *)
  t_input : float array option;
      (** the input the run is executing on ([None]: the app's default) —
          the server re-solves against {e this} input, not the one the
          original plan was built for *)
  plan_budget : float;  (** the plan's total QoS budget (percent) *)
  phase : int;  (** phase that just completed *)
  n_phases : int;
  drift : float;  (** relative work drift the controller observed *)
  drift_tol : float;
      (** the controller's tolerance; the server answers [No_change] when
          [drift <= drift_tol], so retransmitted or below-threshold frames
          are cheap *)
  observed_work : float;
  predicted_work : float;
  remaining_budget : float;  (** budget left for the remaining phases *)
}
(** One phase-boundary report from a controlled run (streaming
    recontrol).  On the wire it is a [(kind telemetry)] frame — plan
    requests stay untagged — so one connection can interleave plan
    requests and telemetry. *)

val telemetry :
  ?input:float array ->
  app:string ->
  plan_budget:float ->
  phase:int ->
  n_phases:int ->
  drift:float ->
  drift_tol:float ->
  observed_work:float ->
  predicted_work:float ->
  remaining_budget:float ->
  unit ->
  telemetry

type plan_delta =
  | No_change  (** keep executing the current schedule *)
  | Replan of { from_phase : int; plan : Opprox.Optimizer.plan }
      (** adopt [plan]'s phases at and after [from_phase]; phases before
          it are already executed and never change *)
(** The server's verdict on one telemetry frame. *)

type response =
  | Plan of {
      plan : Opprox.Optimizer.plan;
      cache : cache_status;
      models_hash : string;  (** hash of the models that solved it *)
      elapsed_ms : float;
    }
  | PlanDelta of { delta : plan_delta; elapsed_ms : float }
      (** reply to a telemetry frame *)
  | Error of Opprox_analysis.Diagnostic.t list
      (** boundary validation or solve failure; every diagnostic carries
          a stable [SRV***] (or [PLAN***]) code *)
  | Timeout of { elapsed_ms : float; deadline_ms : float }
  | Overloaded of { inflight : int; limit : int }

(** {2 Codecs} *)

val request_to_sexp : request -> Opprox_util.Sexp.t

val request_of_sexp : Opprox_util.Sexp.t -> request
(** Raises [Failure] on a malformed record.  A missing [(v N)] field is
    treated as the current version — hand-written batch files need not
    carry it — but a {e present} mismatched version must be rejected by
    the caller (see {!frame_version}). *)

val frame_version : Opprox_util.Sexp.t -> int
(** The [(v N)] field of a frame, defaulting to {!version} when absent. *)

val frame_kind : Opprox_util.Sexp.t -> string
(** The [(kind K)] field of a frame; ["request"] when absent (plan
    requests predate the tag and stay untagged on the wire). *)

val telemetry_to_sexp : telemetry -> Opprox_util.Sexp.t

val telemetry_of_sexp : Opprox_util.Sexp.t -> telemetry
(** Raises [Failure] on a malformed record or a frame whose [kind] is not
    [telemetry]. *)

val response_to_sexp : response -> Opprox_util.Sexp.t

val response_of_sexp : Opprox_util.Sexp.t -> response
(** Raises [Failure] on a malformed record. *)

(** {2 Framing} *)

val write_frame : Unix.file_descr -> Opprox_util.Sexp.t -> unit
(** Write one length-prefixed frame; loops over partial writes.  Raises
    [Unix.Unix_error] on transport failure. *)

val write_raw_frame : Unix.file_descr -> string -> unit
(** Frame arbitrary bytes without sexp validation — deliberately
    malformed payloads for testing the server's [SRV004] path. *)

val read_frame : Unix.file_descr -> Opprox_util.Sexp.t option
(** Read one frame.  [None] on clean EOF at a frame boundary; raises
    [Failure] on a truncated frame, an oversized length prefix, or an
    unparseable payload, and [Unix.Unix_error] on transport failure
    (including a receive timeout). *)
