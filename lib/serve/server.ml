module App = Opprox_sim.App
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_request = Opprox_analysis.Lint_request
module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace
module Pool = Opprox_util.Pool
module Sexp = Opprox_util.Sexp

let log_src = Logs.Src.create "opprox.serve" ~doc:"OPPROX plan-serving daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let m_requests = Metrics.counter "server.requests"
let m_connections = Metrics.counter "server.connections"
let m_overloaded = Metrics.counter "server.overloaded"
let m_timeouts = Metrics.counter "server.timeouts"
let m_errors = Metrics.counter "server.errors"
let m_inflight = Metrics.gauge "server.inflight"
let m_request_us = Metrics.histogram "server.request_us"
let m_solve_us = Metrics.histogram "server.solve_us"
let m_sf_leaders = Metrics.counter "server.singleflight.leaders"
let m_sf_coalesced = Metrics.counter "server.singleflight.coalesced"
let m_telemetry = Metrics.counter "server.telemetry"
let m_deltas = Metrics.counter "server.plan_deltas"
let m_corpus_hits = Metrics.counter "corpus.hits"
let m_corpus_misses = Metrics.counter "corpus.misses"
let m_corpus_nn_hits = Metrics.counter "corpus.nn_hits"
let m_restore_rejected = Metrics.counter "plancache.restore.rejected"

module Corpus = Opprox_corpus.Corpus
module Key = Opprox_corpus.Key

type config = {
  jobs : int option;
  max_inflight : int;
  cache_capacity : int;
  cache_shards : int;
  default_deadline_ms : float option;
  idle_timeout_s : float;
  drain_timeout_s : float;
  corpus_path : string option;
  cache_snapshot : string option;
}

let default_config =
  {
    jobs = None;
    max_inflight = 64;
    cache_capacity = 512;
    cache_shards = 8;
    default_deadline_ms = None;
    idle_timeout_s = 30.0;
    drain_timeout_s = 10.0;
    corpus_path = None;
    cache_snapshot = None;
  }

type served = { trained : Opprox.trained; hash : string }

type t = {
  config : config;
  served : (string, served) Hashtbl.t;
  target : Lint_request.target;
  cache : Protocol.response Plancache.t;
      (* cached values are always [Plan {cache = Miss; ...}] templates;
         hits re-stamp the cache status and elapsed time *)
  corpus : Corpus.t option;
  flight : Protocol.response Singleflight.t;
  pool : Pool.t option;  (* [None]: the shared default pool *)
  inflight : int Atomic.t;
  stopping : bool Atomic.t;
}

(* --------------------------------------------------------- cache snapshots *)

let sorted_served t =
  Hashtbl.fold (fun app s acc -> (app, s.hash) :: acc) t.served []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The snapshot records the models the LRU was warmed against; a restore
   into a server holding different models is rejected wholesale (the
   entries could never hit anyway — their fingerprints embed the hash —
   so restoring them would only displace live capacity). *)
let save_cache_snapshot t path =
  Sexp.save path
    (Sexp.record
       [
         ( "models",
           Sexp.list
             (List.map
                (fun (app, h) -> Sexp.list [ Sexp.string app; Sexp.string h ])
                (sorted_served t)) );
         ("cache", Plancache.to_sexp Protocol.response_to_sexp t.cache);
       ])

let restore_cache_snapshot t path =
  let reject fmt =
    Printf.ksprintf
      (fun why ->
        Metrics.incr m_restore_rejected;
        Log.warn (fun m -> m "cache snapshot %s rejected: %s" path why);
        false)
      fmt
  in
  match Opprox_util.Sexp.load path with
  | exception Failure msg -> reject "%s" msg
  | sexp -> (
      match
        List.map
          (fun e ->
            match Sexp.to_list e with
            | [ app; h ] -> (Sexp.to_string_atom app, Sexp.to_string_atom h)
            | _ -> failwith "malformed models entry")
          (Sexp.to_list (Sexp.field sexp "models"))
      with
      | exception Failure msg -> reject "%s" msg
      | recorded -> (
          let stale =
            List.filter
              (fun (app, h) ->
                match Hashtbl.find_opt t.served app with
                | Some s -> s.hash <> h
                | None -> true)
              recorded
          in
          match stale with
          | (app, _) :: _ ->
              reject "models hash mismatch for %s (snapshot predates a retrain?)" app
          | [] -> (
              match
                Plancache.restore Protocol.response_of_sexp t.cache (Sexp.field sexp "cache")
              with
              | exception Failure msg -> reject "%s" msg
              | n ->
                  Log.app (fun m -> m "restored %d cached plan(s) from %s" n path);
                  true)))

let create ?(config = default_config) pipelines =
  if pipelines = [] then invalid_arg "Server.create: no trained pipelines";
  if config.max_inflight < 1 then invalid_arg "Server.create: max_inflight must be >= 1";
  let served = Hashtbl.create (List.length pipelines) in
  List.iter
    (fun (tr : Opprox.trained) ->
      let name = tr.Opprox.app.App.name in
      if Hashtbl.mem served name then
        invalid_arg (Printf.sprintf "Server.create: duplicate models for %s" name);
      (* Loading already audited (Models.of_sexp); re-audit here so
         in-process construction from a fresh [train] gets the same
         fail-at-startup guarantee as the daemon's load path. *)
      let diags = Opprox.Models.lint tr.Opprox.models in
      List.iter (fun d -> Log.info (fun m -> m "%s: %a" name Diagnostic.pp d)) diags;
      Diagnostic.raise_errors ~strict:false diags;
      (* The corpus precompute stamps its entries with the same digest;
         the two must never drift, so both call one helper. *)
      let hash = Opprox_corpus.Precompute.models_hash tr in
      Hashtbl.add served name { trained = tr; hash })
    pipelines;
  let known_apps = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) served []) in
  let target =
    {
      Lint_request.known_apps;
      param_arity =
        (fun app ->
          Option.map
            (fun s -> Array.length s.trained.Opprox.app.App.param_names)
            (Hashtbl.find_opt served app));
      expected_hash = (fun app -> Option.map (fun s -> s.hash) (Hashtbl.find_opt served app));
    }
  in
  let corpus =
    match config.corpus_path with
    | None -> None
    | Some path ->
        let c = Corpus.load path in
        (* A stale stamp can never produce a wrong answer — the hash is
           part of every fingerprint, so lookups just miss — but it turns
           the corpus into dead weight; say so at startup. *)
        List.iter
          (fun (app, h) ->
            match Hashtbl.find_opt served app with
            | Some s when s.hash <> h ->
                Log.warn (fun m ->
                    m "corpus %s: stale models hash for %s (CORP001); its plans cannot hit"
                      path app)
            | _ -> ())
          (Corpus.apps c);
        Log.app (fun m ->
            m "corpus %s: %d precomputed plans over %d app(s)" path (Corpus.length c)
              (List.length (Corpus.apps c)));
        Some c
  in
  let t =
    {
      config;
      served;
      target;
      cache = Plancache.create ~shards:config.cache_shards ~capacity:config.cache_capacity ();
      corpus;
      flight = Singleflight.create ();
      pool = Option.map (fun jobs -> Pool.create ~jobs ()) config.jobs;
      inflight = Atomic.make 0;
      stopping = Atomic.make false;
    }
  in
  (match config.cache_snapshot with
  | Some path when Sys.file_exists path -> ignore (restore_cache_snapshot t path)
  | _ -> ());
  t

let apps t = t.target.Lint_request.known_apps
let models_hash t app = t.target.Lint_request.expected_hash app
let cache_stats t = Plancache.stats t.cache
let cache_clear t = Plancache.clear t.cache
let corpus t = t.corpus
let inflight t = Atomic.get t.inflight

(* ------------------------------------------------------------ request path *)

(* Validate + cache + deadline + solve for one admitted request.  [t0_us]
   is when the request entered the server (frame fully read, or [handle]
   called); the deadline and the latency histogram both measure from
   there. *)
let process t (req : Protocol.request) ~t0_us =
  Metrics.incr m_requests;
  Trace.with_span ~cat:"server" "server.request" (fun () ->
      let elapsed_ms () = (Trace.now_us () -. t0_us) /. 1000.0 in
      let view =
        {
          Lint_request.app = req.Protocol.app;
          budget = req.Protocol.budget;
          input = req.Protocol.input;
          models_hash = req.Protocol.models_hash;
          deadline_ms = req.Protocol.deadline_ms;
        }
      in
      let diags = Lint_request.check t.target view in
      if Diagnostic.errors diags <> [] then begin
        Metrics.incr m_errors;
        Protocol.Error diags
      end
      else begin
        let served = Hashtbl.find t.served req.Protocol.app in
        let input =
          match req.Protocol.input with
          | Some i -> i
          | None -> served.trained.Opprox.app.App.default_input
        in
        let deadline_ms =
          match req.Protocol.deadline_ms with
          | Some d -> Some d
          | None -> t.config.default_deadline_ms
        in
        let timed_out () =
          match deadline_ms with Some d -> elapsed_ms () > d | None -> false
        in
        let timeout () =
          Metrics.incr m_timeouts;
          Protocol.Timeout
            { elapsed_ms = elapsed_ms (); deadline_ms = Option.get deadline_ms }
        in
        let group = Key.group ~app:req.Protocol.app ~input ~models_hash:served.hash in
        let key = Key.of_group ~group ~budget:req.Protocol.budget in
        (* Lookup-first, most- to least-precomputed: corpus exact hit,
           then the adjacent budget-grid cell (conservative tightening,
           re-audited before reply), then the LRU.  Only a miss through
           all three pays a solve — and at most one request per
           fingerprint pays it; the rest park on the singleflight. *)
        let corpus_lookup () =
          match t.corpus with
          | None -> None
          | Some c -> (
              match Corpus.find c key with
              | Some plan ->
                  Metrics.incr m_corpus_hits;
                  Some (plan, Protocol.Corpus)
              | None -> (
                  match Corpus.find_nn c ~group ~budget:req.Protocol.budget with
                  | Some (nn_budget, plan) ->
                      let diags =
                        Opprox.Optimizer.lint ~models:served.trained.Opprox.models plan
                      in
                      if Diagnostic.errors diags = [] then begin
                        Metrics.incr m_corpus_nn_hits;
                        Some (plan, Protocol.Nearest)
                      end
                      else begin
                        Log.warn (fun m ->
                            m "corpus nn candidate (budget %g) failed the plan audit; solving"
                              nn_budget);
                        Metrics.incr m_corpus_misses;
                        None
                      end
                  | None ->
                      Metrics.incr m_corpus_misses;
                      None))
        in
        let lookup () =
          if req.Protocol.no_cache then None
          else
            match corpus_lookup () with
            | Some (plan, status) ->
                Some
                  (Protocol.Plan
                     { plan; cache = status; models_hash = served.hash; elapsed_ms = 0.0 })
            | None -> (
                match Plancache.find t.cache key with
                | Some (Protocol.Plan p) -> Some (Protocol.Plan { p with cache = Protocol.Hit })
                | Some _ | None -> None)
        in
        match lookup () with
        | Some (Protocol.Plan p) -> Protocol.Plan { p with elapsed_ms = elapsed_ms () }
        | Some r -> r
        | None -> (
            if timed_out () then timeout ()
            else
              let solve () =
                let solved =
                  try
                    let t_solve = Trace.now_us () in
                    let plan =
                      Trace.with_span ~cat:"server" "server.solve" (fun () ->
                          Opprox.optimize ~input served.trained ~budget:req.Protocol.budget)
                    in
                    Metrics.observe m_solve_us (Trace.now_us () -. t_solve);
                    Ok plan
                  with
                  | Diagnostic.Lint_error ds -> Result.Error ds
                  | Stdlib.Exit | Stack_overflow | Out_of_memory | Assert_failure _ as e ->
                      raise e
                  | e -> Result.Error [ Lint_request.internal (Printexc.to_string e) ]
                in
                match solved with
                | Result.Error ds ->
                    Metrics.incr m_errors;
                    Protocol.Error ds
                | Ok plan ->
                    let reply =
                      Protocol.Plan
                        {
                          plan;
                          cache = Protocol.Miss;
                          models_hash = served.hash;
                          elapsed_ms = elapsed_ms ();
                        }
                    in
                    Plancache.add t.cache key reply;
                    reply
              in
              (* One in-flight solve per fingerprint: concurrent identical
                 requests (no_cache ones included — solves are
                 deterministic) park on the leader and share its reply. *)
              let resp =
                match Singleflight.run t.flight key solve with
                | Singleflight.Led r ->
                    Metrics.incr m_sf_leaders;
                    r
                | Singleflight.Joined r ->
                    Metrics.incr m_sf_coalesced;
                    r
              in
              match resp with
              | Protocol.Plan p ->
                  (* The plan is kept (so the retry hits the cache), but a
                     missed deadline still gets an honest timeout reply. *)
                  if timed_out () then timeout ()
                  else Protocol.Plan { p with elapsed_ms = elapsed_ms () }
              | r -> r)
      end)

(* ---------------------------------------------------------- telemetry path *)

(* Answer one phase-boundary telemetry frame from a controlled run:
   below-tolerance drift is acknowledged with [No_change]; anything past
   it re-solves the remaining phases against the remaining budget on the
   input the run is actually executing.  The suffix solve reuses the
   plan-request machinery's models but none of its caches — telemetry
   budgets are continuous (remaining budget after an arbitrary drift),
   so fingerprint reuse would be noise. *)
let process_telemetry t (tm : Protocol.telemetry) ~t0_us =
  Metrics.incr m_telemetry;
  Trace.with_span ~cat:"server" "server.telemetry" (fun () ->
      let elapsed_ms () = (Trace.now_us () -. t0_us) /. 1000.0 in
      let view =
        {
          Lint_request.app = tm.Protocol.t_app;
          budget = tm.Protocol.plan_budget;
          input = tm.Protocol.t_input;
          models_hash = None;
          deadline_ms = None;
        }
      in
      let shape_diags =
        let bad fmt = Printf.ksprintf (fun m -> [ Lint_request.malformed m ]) fmt in
        if tm.Protocol.n_phases < 1 then bad "telemetry: n_phases %d < 1" tm.Protocol.n_phases
        else if tm.Protocol.phase < 0 || tm.Protocol.phase >= tm.Protocol.n_phases then
          bad "telemetry: phase %d outside 0..%d" tm.Protocol.phase (tm.Protocol.n_phases - 1)
        else if not (Float.is_finite tm.Protocol.drift && tm.Protocol.drift >= 0.0) then
          bad "telemetry: non-finite or negative drift"
        else if not (Float.is_finite tm.Protocol.remaining_budget) then
          bad "telemetry: non-finite remaining budget"
        else []
      in
      let diags = shape_diags @ Lint_request.check t.target view in
      if Diagnostic.errors diags <> [] then begin
        Metrics.incr m_errors;
        Protocol.Error diags
      end
      else if tm.Protocol.drift <= tm.Protocol.drift_tol then
        Protocol.PlanDelta { delta = Protocol.No_change; elapsed_ms = elapsed_ms () }
      else begin
        let served = Hashtbl.find t.served tm.Protocol.t_app in
        let trained = served.trained in
        let input =
          match tm.Protocol.t_input with
          | Some i -> i
          | None -> trained.Opprox.app.App.default_input
        in
        match
          let t_solve = Trace.now_us () in
          let plan =
            Trace.with_span ~cat:"server" "server.solve" (fun () ->
                Opprox.Optimizer.solver ~models:trained.Opprox.models ~roi:trained.Opprox.roi
                  ~input ()
                  ~first_phase:(tm.Protocol.phase + 1)
                  ~budget:(Float.max 0.0 tm.Protocol.remaining_budget)
                  ())
          in
          Metrics.observe m_solve_us (Trace.now_us () -. t_solve);
          plan
        with
        | exception Diagnostic.Lint_error ds ->
            Metrics.incr m_errors;
            Protocol.Error ds
        | exception ((Stdlib.Exit | Stack_overflow | Out_of_memory | Assert_failure _) as e) ->
            raise e
        | exception e ->
            Metrics.incr m_errors;
            Protocol.Error [ Lint_request.internal (Printexc.to_string e) ]
        | plan ->
            Metrics.incr m_deltas;
            Log.info (fun m ->
                m "%s: drift %.2f > tol %.2f after phase %d; replanned phases %d.. against \
                   budget %.3f"
                  tm.Protocol.t_app tm.Protocol.drift tm.Protocol.drift_tol tm.Protocol.phase
                  (tm.Protocol.phase + 1) tm.Protocol.remaining_budget);
            Protocol.PlanDelta
              {
                delta = Protocol.Replan { from_phase = tm.Protocol.phase + 1; plan };
                elapsed_ms = elapsed_ms ();
              }
      end)

(* Admission around one request: bump the in-flight counter, shed when
   over the bound. *)
let with_admission t f =
  let n = Atomic.fetch_and_add t.inflight 1 in
  Metrics.set m_inflight (float_of_int (n + 1));
  Fun.protect
    ~finally:(fun () ->
      let n = Atomic.fetch_and_add t.inflight (-1) in
      Metrics.set m_inflight (float_of_int (n - 1)))
    (fun () ->
      if n >= t.config.max_inflight then begin
        Metrics.incr m_overloaded;
        Protocol.Overloaded { inflight = n; limit = t.config.max_inflight }
      end
      else f ())

let handle t req =
  let t0_us = Trace.now_us () in
  let resp = with_admission t (fun () -> process t req ~t0_us) in
  Metrics.observe m_request_us (Trace.now_us () -. t0_us);
  resp

let handle_telemetry t tm =
  let t0_us = Trace.now_us () in
  let resp = with_admission t (fun () -> process_telemetry t tm ~t0_us) in
  Metrics.observe m_request_us (Trace.now_us () -. t0_us);
  resp

(* ------------------------------------------------------------- socket side *)

(* Serve one admitted connection: answer frames until EOF, idle timeout,
   a transport error, or drain.  Frame-level garbage gets a structured
   SRV004/SRV005 reply; only transport failures close the connection
   without one. *)
let handle_conn t fd =
  let reply sexp = Protocol.write_frame fd sexp in
  let rec loop () =
    match Protocol.read_frame fd with
    | None -> ()
    | exception Failure msg ->
        Metrics.incr m_errors;
        (try reply (Protocol.response_to_sexp (Protocol.Error [ Lint_request.malformed msg ]))
         with Unix.Unix_error _ -> ())
        (* Framing is lost after a malformed frame; drop the connection. *)
    | Some frame ->
        let t0_us = Trace.now_us () in
        (match Protocol.frame_version frame with
        | v when v <> Protocol.version ->
            Metrics.incr m_errors;
            reply
              (Protocol.response_to_sexp
                 (Protocol.Error [ Lint_request.bad_version ~got:v ]))
        | _ -> (
            match (try Protocol.frame_kind frame with Failure _ -> "<malformed>") with
            | "telemetry" -> (
                match Protocol.telemetry_of_sexp frame with
                | exception Failure msg ->
                    Metrics.incr m_errors;
                    reply
                      (Protocol.response_to_sexp
                         (Protocol.Error [ Lint_request.malformed msg ]))
                | tm ->
                    let resp = process_telemetry t tm ~t0_us in
                    Metrics.observe m_request_us (Trace.now_us () -. t0_us);
                    reply (Protocol.response_to_sexp resp))
            | "request" -> (
                match Protocol.request_of_sexp frame with
                | exception Failure msg ->
                    Metrics.incr m_errors;
                    reply
                      (Protocol.response_to_sexp
                         (Protocol.Error [ Lint_request.malformed msg ]))
                | req ->
                    let resp = process t req ~t0_us in
                    Metrics.observe m_request_us (Trace.now_us () -. t0_us);
                    reply (Protocol.response_to_sexp resp))
            | k ->
                Metrics.incr m_errors;
                reply
                  (Protocol.response_to_sexp
                     (Protocol.Error
                        [
                          Lint_request.malformed
                            (Printf.sprintf "unknown frame kind %S" k);
                        ]))));
        (* During a drain, finish the frame just answered, then close. *)
        if not (Atomic.get t.stopping) then loop ()
  in
  try loop () with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Log.debug (fun m -> m "connection idle past %.0fs; closing" t.config.idle_timeout_s)
  | Unix.Unix_error (e, _, _) ->
      Log.debug (fun m -> m "connection dropped: %s" (Unix.error_message e))

let stop t = Atomic.set t.stopping true

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler

let serve t ~socket =
  Atomic.set t.stopping false;
  if Sys.file_exists socket then Unix.unlink socket;
  let lsock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      try Unix.unlink socket with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind lsock (Unix.ADDR_UNIX socket);
      Unix.listen lsock 64;
      Log.app (fun m ->
          m "serving %s on %s (max in-flight %d, cache %d)"
            (String.concat ", " (apps t))
            socket t.config.max_inflight t.config.cache_capacity);
      while not (Atomic.get t.stopping) do
        (* Poll with a short timeout so a [stop] — e.g. from a signal
           handler — is noticed without a pending connection. *)
        match Unix.select [ lsock ] [] [] 0.05 with
        | [], _, _ -> ()
        | _ -> (
            match Unix.accept ~cloexec:true lsock with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
            | fd, _ ->
                Metrics.incr m_connections;
                let n = Atomic.fetch_and_add t.inflight 1 in
                Metrics.set m_inflight (float_of_int (n + 1));
                let release () =
                  let n = Atomic.fetch_and_add t.inflight (-1) in
                  Metrics.set m_inflight (float_of_int (n - 1));
                  try Unix.close fd with Unix.Unix_error _ -> ()
                in
                if n >= t.config.max_inflight then begin
                  (* Shed in the accept loop itself: one explicit reply,
                     no queueing behind busy workers. *)
                  Metrics.incr m_overloaded;
                  (try
                     Protocol.write_frame fd
                       (Protocol.response_to_sexp
                          (Protocol.Overloaded
                             { inflight = n; limit = t.config.max_inflight }))
                   with Unix.Unix_error _ -> ());
                  release ()
                end
                else begin
                  (try
                     Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.config.idle_timeout_s
                   with Unix.Unix_error _ -> ());
                  Pool.async ?pool:t.pool (fun () ->
                      Fun.protect ~finally:release (fun () -> handle_conn t fd))
                end)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      (* Drain: stop accepting (the listen socket closes in [finally]),
         then wait for admitted requests to settle. *)
      let deadline = Trace.now_us () +. (t.config.drain_timeout_s *. 1e6) in
      while Atomic.get t.inflight > 0 && Trace.now_us () < deadline do
        Unix.sleepf 0.02
      done;
      if Atomic.get t.inflight > 0 then
        Log.warn (fun m ->
            m "drain timed out with %d request(s) in flight" (Atomic.get t.inflight))
      else Log.app (fun m -> m "drained; shutting down");
      (* Persist the warm LRU after the drain settles, so the snapshot
         includes every request answered on this run. *)
      (match t.config.cache_snapshot with
      | None -> ()
      | Some path -> (
          try
            save_cache_snapshot t path;
            Log.app (fun m -> m "saved %d cached plan(s) to %s" (Plancache.size t.cache) path)
          with Failure msg | Sys_error msg ->
            Log.warn (fun m -> m "cache snapshot %s not saved: %s" path msg)));
      match t.pool with Some p -> Pool.shutdown p | None -> ())
