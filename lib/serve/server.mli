(** The plan-serving daemon.

    OPPROX's deployment story is "train offline, optimize at
    job-submission time from the stored models".  This server is that
    submission-time step turned into a long-lived service: trained
    pipelines are loaded {e once} at startup (audited by the
    {!Opprox_analysis} model lints on the way in), and each request —
    app, input, budget — costs one plan-cache lookup or one optimizer
    solve, never a process start or a model load.

    {2 Request path}

    + {b Admission} — an atomic in-flight counter; a request arriving
      while [max_inflight] are already in flight is shed with an explicit
      [Overloaded] reply (never queued invisibly, never crashed into).
    + {b Validation} — {!Opprox_analysis.Lint_request} at the boundary:
      bad budget, unknown app, stale models hash, malformed input each
      produce a structured [SRV***]-coded [Error] reply.
    + {b Corpus} — with [corpus_path] set, the precomputed plan corpus
      ({!Opprox_corpus.Corpus}) answers first: an exact fingerprint hit
      is served straight off the mmap (no lock, no LRU churn,
      [corpus.hits]); failing that, the nearest budget-grid cell {e at
      or below} the requested budget is re-audited
      ({!Opprox.Optimizer.lint}) and served ([corpus.nn_hits]) — the
      tightened plan can only be more conservative than what a fresh
      solve would return.
    + {b Cache} — {!Plancache} keyed by the canonical fingerprint of
      (app, input bits, models hash, budget bits).  With
      [cache_snapshot] set, the LRU is restored from the snapshot at
      startup (rejected wholesale on a models-hash mismatch:
      [plancache.restore.rejected]) and saved after the shutdown drain.
    + {b Deadline} — cooperative: checked after the lookups miss and
      again after the solve.  A missed deadline replies [Timeout] (the
      solved plan still enters the cache, so the retry hits).
    + {b Solve} — {!Opprox.optimize} on a {!Opprox_util.Pool} worker
      domain, coalesced per fingerprint through {!Singleflight}: under a
      hot-key storm, one request leads the solve
      ([server.singleflight.leaders]) and the duplicates park and share
      its reply ([server.singleflight.coalesced]).  Concurrent solves
      share nothing but the models (immutable after load) and the
      mutex-guarded caches.

    The same path backs both transports: the Unix-domain-socket accept
    loop ({!serve}) and the in-process loopback ({!handle}) that tests
    and the bench suite hammer without forking.

    Every request is instrumented through {!Opprox_obs}: [server.*]
    counters/histograms/gauge, [plancache.*] counters, and a
    [server.request] / [server.solve] span pair per request. *)

type config = {
  jobs : int option;
      (** worker domains for connection handling; [None] = the shared
          {!Opprox_util.Pool.default} pool *)
  max_inflight : int;  (** admission bound; default 64 *)
  cache_capacity : int;  (** plan-cache entries; default 512 *)
  cache_shards : int;  (** default 8 *)
  default_deadline_ms : float option;
      (** applied to requests that carry no deadline; default [None] *)
  idle_timeout_s : float;
      (** receive timeout per connection, so an idle client cannot pin a
          worker domain forever; default 30 s *)
  drain_timeout_s : float;
      (** bound on waiting for in-flight requests at shutdown; default 10 s *)
  corpus_path : string option;
      (** precomputed plan corpus to consult before cache and solve;
          default [None].  {!create} raises [Failure] on a structurally
          invalid file — a bad corpus must fail at startup. *)
  cache_snapshot : string option;
      (** path for LRU persistence: restored at startup when the file
          exists, saved after the shutdown drain; default [None] *)
}

val default_config : config

type t

val create : ?config:config -> Opprox.trained list -> t
(** Build a server holding the given trained pipelines.  Each model set
    is audited ({!Opprox.Models.lint}): findings are logged, and
    Error-severity findings raise
    {!Opprox_analysis.Diagnostic.Lint_error} — a corrupt model file must
    fail at startup, not per request.  Raises [Invalid_argument] on
    duplicate app names, an empty list, or a non-positive bound. *)

val apps : t -> string list
(** Application names served, sorted. *)

val models_hash : t -> string -> string option
(** MD5 (hex) of the serialized model set for one app — what replies
    report and [SRV003] checks client assertions against. *)

val handle : t -> Protocol.request -> Protocol.response
(** In-process loopback: the full admission / validation / cache /
    deadline / solve path without any socket.  Never raises on request
    defects — they come back as [Error] replies; programming errors
    inside the server itself still raise. *)

val handle_telemetry : t -> Protocol.telemetry -> Protocol.response
(** Streaming-recontrol loopback: answer one phase-boundary telemetry
    frame from a controlled run.  Drift at or below the frame's
    [drift_tol] is acknowledged with [PlanDelta No_change]; drift past it
    re-solves the remaining phases against the remaining budget on the
    run's actual input ({!Opprox.Optimizer.solver} with [~first_phase])
    and replies [PlanDelta (Replan _)].  Unknown apps, bad inputs, and
    malformed fields come back as [SRV***]-coded [Error] replies.  The
    socket path dispatches [(kind telemetry)] frames here
    ([server.telemetry] / [server.plan_deltas] metrics). *)

val serve : t -> socket:string -> unit
(** Bind [socket] (an existing stale socket file is replaced), then
    accept until {!stop}: each connection is handed to a pool worker,
    which answers length-prefixed request frames sequentially until EOF
    or idle timeout.  Admission is checked per accepted connection;
    shed connections get one [Overloaded] frame and are closed.  On
    {!stop}: stop accepting, close the listen socket, wait up to
    [drain_timeout_s] for in-flight requests, remove the socket file,
    return.  Raises [Unix.Unix_error] if the socket cannot be bound. *)

val stop : t -> unit
(** Request shutdown — one atomic store, safe from a signal handler.
    {!serve} notices within ~50 ms. *)

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!stop} for a graceful drain. *)

val cache_stats : t -> Plancache.stats
val cache_clear : t -> unit

val corpus : t -> Opprox_corpus.Corpus.t option
(** The loaded plan corpus, when [corpus_path] was set. *)

val save_cache_snapshot : t -> string -> unit
(** Write the live LRU (values plus per-shard recency order) and the
    served (app, models hash) pairs to a snapshot file, atomically.
    Raises [Failure] on IO errors.  {!serve} calls this after the drain
    when [cache_snapshot] is set. *)

val restore_cache_snapshot : t -> string -> bool
(** Replay a snapshot into the live LRU.  [false] — with a warning and a
    [plancache.restore.rejected] bump — when the file is unreadable,
    malformed, or stamped with models hashes that differ from the served
    pipelines; never raises.  {!create} calls this at startup when
    [cache_snapshot] names an existing file. *)

val inflight : t -> int
(** Requests currently admitted (socket connections being served plus
    in-process {!handle} calls in progress). *)
