module Dmutex = Opprox_util.Dmutex
module Guarded = Opprox_util.Guarded

type 'a state = Pending | Done of ('a, exn) result

(* Per-flight rendezvous.  [state] flips Pending -> Done exactly once,
   under [m]; followers sleep on [cv].  All entries share the
   [singleflight.entry] lock class — it must never nest with the table
   lock (followers release the table before parking; the leader
   publishes after retiring the flight). *)
type 'a entry = { m : Dmutex.t; cv : Condition.t; state : 'a state Guarded.t }

type 'a t = { m : Dmutex.t; table : (string, 'a entry) Hashtbl.t Guarded.t }

let create () =
  let m = Dmutex.create ~name:"singleflight.table" () in
  { m; table = Guarded.create ~name:"singleflight.table" ~locks:[ m ] (Hashtbl.create 64) }

type 'a outcome = Led of 'a | Joined of 'a

let inflight t =
  Dmutex.lock t.m;
  let n = Hashtbl.length (Guarded.get t.table) in
  Dmutex.unlock t.m;
  n

let make_entry key =
  let m = Dmutex.create ~name:"singleflight.entry" () in
  {
    m;
    cv = Condition.create ();
    state = Guarded.create ~name:("singleflight.entry " ^ key) ~locks:[ m ] Pending;
  }

let run t key f =
  Dmutex.lock t.m;
  match Hashtbl.find_opt (Guarded.get t.table) key with
  | Some e -> (
      (* Follower: park until the leader publishes. *)
      Dmutex.unlock t.m;
      Dmutex.lock e.m;
      let rec wait () =
        match Guarded.get e.state with
        | Pending ->
            Dmutex.wait e.cv e.m;
            wait ()
        | Done r -> r
      in
      let r = wait () in
      Dmutex.unlock e.m;
      match r with Ok v -> Joined v | Error exn -> raise exn)
  | None -> (
      let e = make_entry key in
      Hashtbl.add (Guarded.get t.table) key e;
      Dmutex.unlock t.m;
      let r = try Ok (f ()) with exn -> Error exn in
      (* Retire the flight before publishing: a caller that arrives after
         this point leads a fresh one instead of reading a stale result. *)
      Dmutex.lock t.m;
      Hashtbl.remove (Guarded.get t.table) key;
      Dmutex.unlock t.m;
      Dmutex.lock e.m;
      Guarded.set e.state (Done r);
      Condition.broadcast e.cv;
      Dmutex.unlock e.m;
      match r with Ok v -> Led v | Error exn -> raise exn)
