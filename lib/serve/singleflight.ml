type 'a state = Pending | Done of ('a, exn) result

type 'a entry = { m : Mutex.t; cv : Condition.t; mutable state : 'a state }

type 'a t = { m : Mutex.t; table : (string, 'a entry) Hashtbl.t }

let create () = { m = Mutex.create (); table = Hashtbl.create 64 }

type 'a outcome = Led of 'a | Joined of 'a

let inflight t =
  Mutex.lock t.m;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.m;
  n

let run t key f =
  Mutex.lock t.m;
  match Hashtbl.find_opt t.table key with
  | Some e -> (
      (* Follower: park until the leader publishes. *)
      Mutex.unlock t.m;
      Mutex.lock e.m;
      let rec wait () =
        match e.state with
        | Pending ->
            Condition.wait e.cv e.m;
            wait ()
        | Done r -> r
      in
      let r = wait () in
      Mutex.unlock e.m;
      match r with Ok v -> Joined v | Error exn -> raise exn)
  | None -> (
      let e = { m = Mutex.create (); cv = Condition.create (); state = Pending } in
      Hashtbl.add t.table key e;
      Mutex.unlock t.m;
      let r = try Ok (f ()) with exn -> Error exn in
      (* Retire the flight before publishing: a caller that arrives after
         this point leads a fresh one instead of reading a stale result. *)
      Mutex.lock t.m;
      Hashtbl.remove t.table key;
      Mutex.unlock t.m;
      Mutex.lock e.m;
      e.state <- Done r;
      Condition.broadcast e.cv;
      Mutex.unlock e.m;
      match r with Ok v -> Led v | Error exn -> raise exn)
