(** Per-key solve coalescing.

    A burst of identical requests — the hot-key pattern every cache-miss
    storm is made of — must cost {e one} optimizer solve, not one per
    request.  [run t key f] elects the first caller of a key its
    {e leader}: the leader runs [f] while every concurrent caller of the
    same key parks on a condition variable and receives the leader's
    result.  The entry is removed before the result is published, so a
    caller arriving {e after} the leader finished starts a fresh flight
    (singleflight deduplicates concurrency, it is not a cache).

    If the leader raises, followers re-raise the same exception; the
    failed flight is forgotten, so a retry leads a new one. *)

type 'a t

val create : unit -> 'a t

type 'a outcome =
  | Led of 'a  (** this caller ran [f] *)
  | Joined of 'a  (** this caller parked and received a leader's result *)

val run : 'a t -> string -> (unit -> 'a) -> 'a outcome
(** [run t key f] — leader runs [f]; followers block until the leader
    publishes.  Reentrant calls on distinct keys are independent; [f]
    must not recursively call [run] on the same [key] (it would join
    itself and deadlock is avoided only because the entry belongs to the
    caller — it would simply run again). *)

val inflight : 'a t -> int
(** Number of keys currently being led — for tests and gauges. *)
