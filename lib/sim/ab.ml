type technique = Perforation | Truncation | Memoization | Parameter_tuning

type t = { name : string; technique : technique; max_level : int }

let make ~name ~technique ~max_level =
  if max_level < 1 then invalid_arg "Ab.make: max_level must be >= 1";
  if String.length name = 0 then invalid_arg "Ab.make: empty name";
  { name; technique; max_level }

let equal a b =
  String.equal a.name b.name && a.technique = b.technique && a.max_level = b.max_level

let technique_name = function
  | Perforation -> "loop perforation"
  | Truncation -> "loop truncation"
  | Memoization -> "memoization"
  | Parameter_tuning -> "parameter tuning"

let pp ppf t =
  Format.fprintf ppf "%s (%s, AL 0..%d)" t.name (technique_name t.technique) t.max_level
