(** Approximable-block descriptors.

    An approximable block (AB) is a compute-intensive kernel that tolerates
    approximation, together with the technique applied to it and the range
    of its approximation-level (AL) knob.  Level [0] always means exact
    execution; [max_level] is the most aggressive setting (paper Sec. 2:
    "levels from 0 to 5"). *)

type technique =
  | Perforation  (** skip loop iterations with a stride *)
  | Truncation  (** drop trailing loop iterations *)
  | Memoization  (** reuse a cached result for most iterations *)
  | Parameter_tuning  (** scale an accuracy-controlling input parameter *)

type t = {
  name : string;  (** kernel name, e.g. ["forces_on_elements"] *)
  technique : technique;
  max_level : int;  (** highest AL; must be >= 1 *)
}

val make : name:string -> technique:technique -> max_level:int -> t
(** Raises [Invalid_argument] if [max_level < 1] or the name is empty. *)

val equal : t -> t -> bool
(** Structural equality on all three fields. *)

val technique_name : technique -> string

val pp : Format.formatter -> t -> unit
