type report_metric = Distortion | Psnr

type instance = {
  step : unit -> bool;
  finish : unit -> float array;
  clone : Env.t -> instance;
}

type t = {
  name : string;
  description : string;
  param_names : string array;
  abs : Ab.t array;
  default_input : float array;
  training_inputs : float array array;
  run : Env.t -> float array -> float array;
  iterative : (Env.t -> float array -> instance) option;
  report_metric : report_metric;
  seed : int;
}

let validate ~name ~abs ~param_names ~default_input ~training_inputs =
  if String.length name = 0 then invalid_arg "App.make: empty name";
  if Array.length abs = 0 then invalid_arg "App.make: no approximable blocks";
  let arity = Array.length param_names in
  if arity = 0 then invalid_arg "App.make: no parameters";
  let check_input label input =
    if Array.length input <> arity then
      invalid_arg (Printf.sprintf "App.make: %s arity mismatch for %s" label name);
    Array.iter
      (fun v ->
        if not (Float.is_finite v) then
          invalid_arg (Printf.sprintf "App.make: non-finite %s value for %s" label name))
      input
  in
  check_input "default input" default_input;
  Array.iter (check_input "training input") training_inputs;
  if Array.length training_inputs = 0 then invalid_arg "App.make: no training inputs"

let make ~name ~description ~param_names ~abs ~default_input ~training_inputs ~run
    ?(report_metric = Distortion) ?seed () =
  validate ~name ~abs ~param_names ~default_input ~training_inputs;
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  {
    name;
    description;
    param_names;
    abs;
    default_input;
    training_inputs;
    run;
    iterative = None;
    report_metric;
    seed;
  }

let make_iterative ~name ~description ~param_names ~abs ~default_input ~training_inputs ~init
    ~step ~finish ~copy ?(report_metric = Distortion) ?seed () =
  validate ~name ~abs ~param_names ~default_input ~training_inputs;
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  (* The state type is existential from the driver's point of view; closing
     over it here lets heterogeneous app states live in one checkpoint
     table without a GADT. *)
  let rec instance env st =
    {
      step = (fun () -> step env st);
      finish = (fun () -> finish env st);
      clone = (fun env' -> instance env' (copy st));
    }
  in
  let iterative env input = instance env (init env input) in
  let run env input =
    let inst = iterative env input in
    while inst.step () do
      ()
    done;
    inst.finish ()
  in
  {
    name;
    description;
    param_names;
    abs;
    default_input;
    training_inputs;
    run;
    iterative = Some iterative;
    report_metric;
    seed;
  }

let with_training_inputs t ~default_input ~training_inputs =
  validate ~name:t.name ~abs:t.abs ~param_names:t.param_names ~default_input ~training_inputs;
  { t with default_input; training_inputs }

let n_abs t = Array.length t.abs
let max_levels t = Array.map (fun (ab : Ab.t) -> ab.max_level) t.abs
let ab_names t = Array.map (fun (ab : Ab.t) -> ab.name) t.abs
