(** Application descriptor.

    An application bundles everything OPPROX needs to profile and optimize
    it: the parameter space of its inputs, its approximable blocks, and a
    [run] function that executes the (simulated) computation under a
    phase-aware schedule carried by an {!Env.t}.

    Inputs are flat parameter vectors; [param_names] gives the vector
    components meaning (e.g. LULESH: mesh length and region count).
    Outputs are flat float vectors the QoS metrics compare.

    Applications built with {!make_iterative} additionally expose their
    outer loop one iteration at a time through {!instance}, which is what
    lets the driver snapshot state at phase boundaries and resume
    mid-run. *)

type report_metric =
  | Distortion  (** percent relative distortion; lower is better *)
  | Psnr  (** PSNR in dB for reporting (video); higher is better *)

type instance = {
  step : unit -> bool;
      (** Run exactly one outer-loop iteration and return [true], or return
          [false] without side effects when the run is already complete.
          The termination check happens {e before} any work — so stepping a
          finished instance is a no-op, and a checkpoint taken at a phase
          boundary that coincides with termination stays valid. *)
  finish : unit -> float array;
      (** Produce the output vector.  Must only be called once stepping has
          returned [false]; may charge base (non-approximable) work. *)
  clone : Env.t -> instance;
      (** Deep-copy the application state and bind the copy to a new
          environment.  The original instance is unaffected; clones evolve
          independently.  This is what makes a memoized checkpoint safe to
          resume any number of times. *)
}
(** A paused in-flight run.  The state type is hidden inside the closures,
    so instances of different applications can share one checkpoint
    table. *)

type t = private {
  name : string;
  description : string;
  param_names : string array;
  abs : Ab.t array;
  default_input : float array;
  training_inputs : float array array;
  run : Env.t -> float array -> float array;
  iterative : (Env.t -> float array -> instance) option;
      (** [Some] for apps built with {!make_iterative}; the driver's
          checkpoint path requires it and falls back to [run] otherwise. *)
  report_metric : report_metric;
  seed : int;
}

val make :
  name:string ->
  description:string ->
  param_names:string array ->
  abs:Ab.t array ->
  default_input:float array ->
  training_inputs:float array array ->
  run:(Env.t -> float array -> float array) ->
  ?report_metric:report_metric ->
  ?seed:int ->
  unit ->
  t
(** Opaque-run constructor: the application is a black-box closure and the
    driver can only execute it from scratch.  Validates that there is at
    least one AB and one parameter, that every input vector matches
    [param_names]'s arity, and that the default input appears sane (finite
    values).  [report_metric] defaults to [Distortion]; [seed] defaults to
    a hash of the name. *)

val make_iterative :
  name:string ->
  description:string ->
  param_names:string array ->
  abs:Ab.t array ->
  default_input:float array ->
  training_inputs:float array array ->
  init:(Env.t -> float array -> 'st) ->
  step:(Env.t -> 'st -> bool) ->
  finish:(Env.t -> 'st -> float array) ->
  copy:('st -> 'st) ->
  ?report_metric:report_metric ->
  ?seed:int ->
  unit ->
  t
(** Iterative constructor.  [init] builds the mutable loop state (consuming
    any setup randomness from the environment's RNG), [step] advances one
    outer iteration per the {!instance} contract, [finish] extracts the
    output, and [copy] deep-copies the state (every mutable array/ref
    duplicated — aliasing breaks checkpoint isolation).  [run] is
    synthesized as init / step-to-completion / finish, so behaviour is
    identical for callers that never checkpoint. *)

val with_training_inputs : t -> default_input:float array -> training_inputs:float array array -> t
(** The same application over a different input set — the computation,
    ABs, and seed are untouched.  What tests and bench harnesses use to
    retrain a registry app at a smaller problem scale without rebuilding
    its closures.  Validates like {!make} (arity, finiteness, at least one
    training input). *)

val n_abs : t -> int

val max_levels : t -> int array
(** Per-AB maximum approximation level. *)

val ab_names : t -> string array
