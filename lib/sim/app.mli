(** Application descriptor.

    An application bundles everything OPPROX needs to profile and optimize
    it: the parameter space of its inputs, its approximable blocks, and a
    [run] function that executes the (simulated) computation under a
    phase-aware schedule carried by an {!Env.t}.

    Inputs are flat parameter vectors; [param_names] gives the vector
    components meaning (e.g. LULESH: mesh length and region count).
    Outputs are flat float vectors the QoS metrics compare. *)

type report_metric =
  | Distortion  (** percent relative distortion; lower is better *)
  | Psnr  (** PSNR in dB for reporting (video); higher is better *)

type t = private {
  name : string;
  description : string;
  param_names : string array;
  abs : Ab.t array;
  default_input : float array;
  training_inputs : float array array;
  run : Env.t -> float array -> float array;
  report_metric : report_metric;
  seed : int;
}

val make :
  name:string ->
  description:string ->
  param_names:string array ->
  abs:Ab.t array ->
  default_input:float array ->
  training_inputs:float array array ->
  run:(Env.t -> float array -> float array) ->
  ?report_metric:report_metric ->
  ?seed:int ->
  unit ->
  t
(** Validates that there is at least one AB and one parameter, that every
    input vector matches [param_names]'s arity, and that the default input
    appears sane (finite values).  [report_metric] defaults to
    [Distortion]; [seed] defaults to a hash of the name. *)

val n_abs : t -> int
val max_levels : t -> int array
(** Per-AB maximum approximation level. *)

val ab_names : t -> string array
