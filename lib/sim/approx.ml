let check_level level = if level < 0 then invalid_arg "Approx: negative level"
let check_n n = if n < 0 then invalid_arg "Approx: negative iteration count"

let perforate ?(offset = 0) ~level n f =
  check_level level;
  check_n n;
  if offset < 0 then invalid_arg "Approx.perforate: negative offset";
  let stride = level + 1 in
  let i = ref (offset mod stride) in
  while !i < n do
    f !i;
    i := !i + stride
  done

let perforated_count ?(offset = 0) ~level n =
  check_level level;
  check_n n;
  let stride = level + 1 in
  let first = offset mod stride in
  if first >= n then 0 else ((n - 1 - first) / stride) + 1

let truncated_count ~level ~max_level n =
  check_level level;
  check_n n;
  if max_level < 1 then invalid_arg "Approx.truncate: max_level must be >= 1";
  if level > max_level then invalid_arg "Approx.truncate: level above max_level";
  n - (n * level / (2 * max_level))

let truncate ~level ~max_level n f =
  let keep = truncated_count ~level ~max_level n in
  for i = 0 to keep - 1 do
    f i
  done

let memoize ?(offset = 0) ~level n ~compute ~use =
  check_level level;
  check_n n;
  if offset < 0 then invalid_arg "Approx.memoize: negative offset";
  let period = level + 1 in
  let cache = ref None in
  for i = 0 to n - 1 do
    let v =
      if i mod period = offset mod period || Option.is_none !cache then begin
        let v = compute i in
        cache := Some v;
        v
      end
      else
        match !cache with
        | Some v -> v
        | None -> assert false (* i = 0 always computes *)
    in
    use i v
  done

let memoized_compute_count ?(offset = 0) ~level n =
  check_level level;
  check_n n;
  let period = level + 1 in
  let target = offset mod period in
  let count = ref 0 in
  for i = 0 to n - 1 do
    if i mod period = target || (i = 0 && target <> 0) then incr count
  done;
  !count

let tune_parameter ~level ~max_level p =
  check_level level;
  if max_level < 1 then invalid_arg "Approx.tune_parameter: max_level must be >= 1";
  if level > max_level then invalid_arg "Approx.tune_parameter: level above max_level";
  let factor = 1.0 -. (float_of_int level /. float_of_int (2 * max_level)) in
  Float.max 0.0 (p *. factor)
