(** The four approximation techniques (paper Sec. 3.2).

    Each combinator drives an inner loop of [n] iterations under an
    approximation level.  Level [0] is always exact; higher levels do
    strictly less computation.  The level-to-knob scaling is fixed here so
    every application interprets ALs uniformly:

    - {b perforation}: stride [level + 1] (level 0 visits every iteration);
    - {b truncation}: drops [n * level / (2 * max_level)] trailing
      iterations (the paper drops "the last few"; scaling by the loop
      length keeps the knob meaningful across loop sizes);
    - {b memoization}: recomputes every [level + 1]-th iteration and
      replays the cached value in between;
    - {b parameter tuning}: scales an accuracy-controlling numeric
      parameter by [1 - level / (2 * max_level)].

    All combinators raise [Invalid_argument] on a negative level or
    negative [n]. *)

val perforate : ?offset:int -> level:int -> int -> (int -> unit) -> unit
(** [perforate ~level n f] calls [f i] for [i = o, o+s, o+2s, ... < n] with
    stride [s = level + 1] and start [o = offset mod s] (default 0).
    Kernels that persist state across outer-loop iterations pass the outer
    iteration index as [offset], rotating which inner iterations execute so
    staleness stays bounded ("interleaved" perforation). *)

val perforated_count : ?offset:int -> level:int -> int -> int
(** Number of iterations {!perforate} will execute. *)

val truncate : level:int -> max_level:int -> int -> (int -> unit) -> unit
(** [truncate ~level ~max_level n f] calls [f] on a prefix of [0..n-1];
    level [max_level] halves the loop. *)

val truncated_count : level:int -> max_level:int -> int -> int

val memoize :
  ?offset:int ->
  level:int ->
  int ->
  compute:(int -> 'a) ->
  use:(int -> 'a -> unit) ->
  unit
(** [memoize ~level n ~compute ~use] calls [compute i] when
    [i mod (level + 1) = offset mod (level + 1)] (and always at [i = 0], so
    the cache is never empty) and otherwise replays the last computed
    value; [use i v] consumes the (fresh or cached) value at every
    iteration. *)

val memoized_compute_count : ?offset:int -> level:int -> int -> int
(** Number of [compute] calls {!memoize} will make. *)

val tune_parameter : level:int -> max_level:int -> float -> float
(** Scaled-down accuracy parameter; identity at level [0], halved at
    [max_level].  The result is never scaled below zero. *)
