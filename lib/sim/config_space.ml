module Rng = Opprox_util.Rng

let count abs =
  Array.fold_left (fun acc (ab : Ab.t) -> acc * (ab.max_level + 1)) 1 abs

let phase_space_count abs ~n_phases ~n_inputs =
  if n_phases < 1 || n_inputs < 1 then invalid_arg "Config_space.phase_space_count";
  count abs * n_phases * n_inputs

let all abs =
  let n = Array.length abs in
  if n = 0 then invalid_arg "Config_space.all: no ABs";
  let rec go a =
    if a = n then [ [] ]
    else
      let rest = go (a + 1) in
      List.concat_map
        (fun l -> List.map (fun tail -> l :: tail) rest)
        (List.init (abs.(a).Ab.max_level + 1) (fun l -> l))
  in
  List.map Array.of_list (go 0)

let local_sweeps abs =
  let n = Array.length abs in
  List.concat
    (List.init n (fun a ->
         List.init abs.(a).Ab.max_level (fun l ->
             let config = Array.make n 0 in
             config.(a) <- l + 1;
             (a, config))))

let zero abs = Array.make (Array.length abs) 0

let random rng abs = Array.map (fun (ab : Ab.t) -> Rng.int rng (ab.Ab.max_level + 1)) abs

let random_nonzero rng abs =
  let rec retry () =
    let c = random rng abs in
    if Array.exists (fun l -> l > 0) c then c else retry ()
  in
  retry ()
