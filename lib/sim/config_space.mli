(** Enumeration of approximation-level configurations.

    A configuration is a vector assigning one AL to each AB.  The spaces
    here back both the training sampler (exhaustive local sweeps + sparse
    joint samples, paper Sec. 3.3) and the phase-agnostic oracle's
    exhaustive search. *)

val count : Ab.t array -> int
(** Size of the full joint configuration space: prod (max_level_i + 1). *)

val phase_space_count : Ab.t array -> n_phases:int -> n_inputs:int -> int
(** Search-space size reported in Table 1: joint configurations times
    phases times input combinations. *)

val all : Ab.t array -> int array list
(** Every joint configuration, all-zero vector first, in lexicographic
    order.  Intended for spaces up to a few thousand configurations. *)

val local_sweeps : Ab.t array -> (int * int array) list
(** For each AB index [a] and each level [l] in [1 .. max_level_a], the
    configuration with AB [a] at [l] and every other AB exact — the
    exhaustive per-AB "local model" samples. *)

val random : Opprox_util.Rng.t -> Ab.t array -> int array
(** Uniformly random joint configuration (any AB may be 0). *)

val random_nonzero : Opprox_util.Rng.t -> Ab.t array -> int array
(** Random configuration that approximates at least one AB. *)

val zero : Ab.t array -> int array
