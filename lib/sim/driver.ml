module Rng = Opprox_util.Rng

type exact_run = { output : float array; work : int; iters : int; trace : int list }

type evaluation = {
  sched : Schedule.t;
  qos_degradation : float;
  psnr : float option;
  speedup : float;
  work : int;
  outer_iters : int;
  exact_iters : int;
  trace : int list;
  work_per_ab : int array;
  work_per_phase : int array;
}

(* Exact runs are memoized under a mutex so that pool workers (see
   Opprox_util.Pool) can share the table.  The key is a stable string —
   the application name plus the IEEE-754 bits of each input component —
   rather than a polymorphic (string * float list) pair: cheap to hash,
   no float-equality surprises, and identical across domains. *)
let cache : (string, exact_run) Hashtbl.t = Hashtbl.create 64
let cache_mutex = Mutex.create ()

(* Number of exact executions actually performed (cache misses).  Tests
   use this to assert that training runs the golden configuration exactly
   once per input. *)
let exact_executions = Atomic.make 0
let exact_run_count () = Atomic.get exact_executions
let reset_exact_run_count () = Atomic.set exact_executions 0

let input_key (app : App.t) input =
  let b = Buffer.create 64 in
  Buffer.add_string b app.name;
  Array.iter
    (fun x ->
      Buffer.add_char b '|';
      Buffer.add_string b (Int64.to_string (Int64.bits_of_float x)))
    input;
  Buffer.contents b

let clear_cache () =
  Mutex.lock cache_mutex;
  Hashtbl.reset cache;
  Mutex.unlock cache_mutex

let seed_for (app : App.t) input =
  (* Same seed for exact and approximate runs of one input: QoS differences
     must come from the approximation alone, not from RNG divergence. *)
  app.seed lxor Hashtbl.hash (Array.to_list input)

let execute (app : App.t) sched ~expected_iters input =
  let rng = Rng.create (seed_for app input) in
  let env = Env.create ~rng ~sched ~expected_iters ~n_abs:(App.n_abs app) in
  let output = app.run env input in
  (env, output)

let run_exact (app : App.t) input =
  let key = input_key app input in
  let cached =
    Mutex.lock cache_mutex;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_mutex;
    r
  in
  match cached with
  | Some r -> r
  | None ->
      (* Computed outside the lock: two domains racing on the same input
         duplicate a deterministic run instead of serializing every
         distinct one behind it. *)
      Atomic.incr exact_executions;
      let sched = Schedule.exact ~n_abs:(App.n_abs app) in
      let env, output = execute app sched ~expected_iters:0 input in
      let r =
        {
          output;
          work = Env.total_work env;
          iters = Env.outer_iters env;
          trace = Env.trace env;
        }
      in
      Mutex.lock cache_mutex;
      if not (Hashtbl.mem cache key) then Hashtbl.replace cache key r;
      Mutex.unlock cache_mutex;
      r

let evaluate ?exact (app : App.t) sched input =
  if Schedule.n_abs sched <> App.n_abs app then
    invalid_arg "Driver.evaluate: schedule AB count mismatch";
  let exact = match exact with Some e -> e | None -> run_exact app input in
  let env, output = execute app sched ~expected_iters:exact.iters input in
  let work = Env.total_work env in
  let psnr, qos_degradation =
    match app.report_metric with
    | App.Distortion ->
        (None, Qos.relative_distortion ~exact:exact.output ~approx:output)
    | App.Psnr ->
        let p = Qos.psnr ~exact:exact.output ~approx:output in
        (Some p, Qos.psnr_to_degradation p)
  in
  {
    sched;
    qos_degradation;
    psnr;
    speedup = float_of_int exact.work /. float_of_int (Stdlib.max work 1);
    work;
    outer_iters = Env.outer_iters env;
    exact_iters = exact.iters;
    trace = Env.trace env;
    work_per_ab = Array.init (App.n_abs app) (Env.work_of_ab env);
    work_per_phase = Env.work_per_phase env;
  }

let evaluate_uniform app levels input =
  evaluate app (Schedule.uniform ~n_phases:1 levels) input
