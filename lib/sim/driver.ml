module Rng = Opprox_util.Rng
module Dmutex = Opprox_util.Dmutex
module Metrics = Opprox_obs.Metrics

type exact_run = { output : float array; work : int; iters : int; trace : int list }

type evaluation = {
  sched : Schedule.t;
  qos_degradation : float;
  psnr : float option;
  speedup : float;
  work : int;
  outer_iters : int;
  exact_iters : int;
  trace : int list;
  work_per_ab : int array;
  work_per_phase : int array;
}

type cache_stats = { hits : int; misses : int; size : int }

(* ------------------------------------------------------------- caches *)

(* Every driver cache follows the same discipline: stable string keys,
   lookups under a per-shard mutex ({!Opprox_util.Shardmap}), computation
   outside it (two domains racing on one key duplicate a deterministic
   computation instead of serializing every distinct one behind it), FIFO
   eviction beyond the capacity so long bench matrices cannot grow memory
   without limit.  Hashing keys across shards means a hot memo hit from a
   pool worker takes an uncontended lock with high probability — under
   the old single-mutex tables the memo itself was the scaling
   bottleneck once checkpointing collapsed per-task cost. *)
module Bounded = Opprox_util.Shardmap

(* Exact phase-boundary checkpoints: the paused state of the golden
   trajectory at the first iteration of phase q, keyed by
   (app, input, n_phases, q). *)
type checkpoint = {
  snap : Env.snapshot;
  frozen : App.instance;  (* never stepped; cloned once per resume *)
}

let default_memo_shards = 16
let memo_shards_n = ref default_memo_shards
let ckpt_capacity = ref 512
let eval_capacity = ref 4096

(* Exact runs are pure functions of (application, input); the memo is
   unbounded like in previous revisions (one entry per distinct input). *)
let exact_cache : exact_run Bounded.t ref =
  ref (Bounded.create ~name:"driver.exact" ~shards:default_memo_shards ~capacity:max_int ())

let checkpoint_cache : checkpoint Bounded.t ref =
  ref (Bounded.create ~name:"driver.ckpt" ~shards:default_memo_shards ~capacity:!ckpt_capacity ())

(* Full-evaluation memo: schedules repeat across training sweeps, oracle
   probes and bench matrices, and an evaluation is a pure function of
   (app, input, schedule). *)
let eval_cache : evaluation Bounded.t ref =
  ref (Bounded.create ~name:"driver.eval" ~shards:default_memo_shards ~capacity:!eval_capacity ())

let checkpointing_on = Atomic.make true
let eval_cache_on = Atomic.make true
let set_checkpointing b = Atomic.set checkpointing_on b
let set_eval_cache b = Atomic.set eval_cache_on b

let set_checkpoint_capacity n =
  ckpt_capacity := n;
  Bounded.set_capacity !checkpoint_cache n

let set_eval_cache_capacity n =
  eval_capacity := n;
  Bounded.set_capacity !eval_cache n

let memo_shards () = !memo_shards_n

let set_memo_shards n =
  if n < 1 then invalid_arg "Driver.set_memo_shards: shards must be >= 1";
  memo_shards_n := n;
  exact_cache := Bounded.create ~name:"driver.exact" ~shards:n ~capacity:max_int ();
  checkpoint_cache := Bounded.create ~name:"driver.ckpt" ~shards:n ~capacity:!ckpt_capacity ();
  eval_cache := Bounded.create ~name:"driver.eval" ~shards:n ~capacity:!eval_capacity ()

(* Cache accounting lives in the process-wide metrics registry (atomic
   counters, so pool workers bump them without the cache mutexes); tests
   and benches assert reuse against these instead of inferring it from
   wall-clock.  The accessor functions below are thin reads over the
   registry, kept for source compatibility. *)
let exact_executions = Metrics.counter "driver.exact.run"
let exact_hits = Metrics.counter "driver.exact.hit"
let ckpt_hits = Metrics.counter "driver.ckpt.hit"
let ckpt_misses = Metrics.counter "driver.ckpt.miss"
let ckpt_saves = Metrics.counter "driver.ckpt.save"
let eval_hits = Metrics.counter "driver.eval.hit"
let eval_misses = Metrics.counter "driver.eval.miss"

(* Resettable counters: Metrics.reset is registry-wide, but the cache
   accounting must be zeroable in isolation (tests bracket one collect).
   Each counter keeps a baseline subtracted on read. *)
let baselines : (string * int Atomic.t * Metrics.counter) list =
  List.map
    (fun (name, c) -> (name, Atomic.make 0, c))
    [
      ("driver.exact.run", exact_executions);
      ("driver.exact.hit", exact_hits);
      ("driver.ckpt.hit", ckpt_hits);
      ("driver.ckpt.miss", ckpt_misses);
      ("driver.ckpt.save", ckpt_saves);
      ("driver.eval.hit", eval_hits);
      ("driver.eval.miss", eval_misses);
    ]

let read c =
  let _, base, _ = List.find (fun (_, _, c') -> c' == c) baselines in
  Metrics.value c - Atomic.get base

let exact_run_count () = read exact_executions
let reset_exact_run_count () =
  let _, base, _ = List.find (fun (_, _, c') -> c' == exact_executions) baselines in
  Atomic.set base (Metrics.value exact_executions)

let exact_cache_stats () =
  { hits = read exact_hits; misses = read exact_executions; size = Bounded.size !exact_cache }

let checkpoint_stats () =
  { hits = read ckpt_hits; misses = read ckpt_misses; size = Bounded.size !checkpoint_cache }

let eval_cache_stats () =
  { hits = read eval_hits; misses = read eval_misses; size = Bounded.size !eval_cache }

let checkpoint_save_count () = read ckpt_saves

let reset_cache_stats () =
  List.iter (fun (_, base, c) -> Atomic.set base (Metrics.value c)) baselines

let input_key (app : App.t) input =
  let b = Buffer.create 64 in
  Buffer.add_string b app.name;
  Array.iter
    (fun x ->
      Buffer.add_char b '|';
      Buffer.add_string b (Int64.to_string (Int64.bits_of_float x)))
    input;
  Buffer.contents b

let clear_cache () = Bounded.clear !exact_cache
let clear_checkpoints () = Bounded.clear !checkpoint_cache
let clear_eval_cache () = Bounded.clear !eval_cache

let clear_all_caches () =
  clear_cache ();
  clear_checkpoints ();
  clear_eval_cache ()

let seed_for (app : App.t) input =
  (* Same seed for exact and approximate runs of one input: QoS differences
     must come from the approximation alone, not from RNG divergence.  The
     seed folds the IEEE-754 bits of every component through SplitMix64's
     finaliser, so it is stable across OCaml versions and processes —
     unlike [Hashtbl.hash], whose output depends on the runtime's internal
     value representation. *)
  let h =
    Array.fold_left
      (fun acc x -> Rng.mix64 (Int64.logxor acc (Int64.bits_of_float x)))
      (Rng.mix64 (Int64.of_int app.seed))
      input
  in
  Int64.to_int h land max_int

let execute (app : App.t) sched ~expected_iters input =
  let rng = Rng.create (seed_for app input) in
  let env = Env.create ~rng ~sched ~expected_iters ~n_abs:(App.n_abs app) in
  let output = app.run env input in
  (env, output)

let run_exact (app : App.t) input =
  let key = input_key app input in
  match Bounded.find !exact_cache key with
  | Some r ->
      Metrics.incr exact_hits;
      r
  | None ->
      Metrics.incr exact_executions;
      let sched = Schedule.exact ~n_abs:(App.n_abs app) in
      let env, output = execute app sched ~expected_iters:0 input in
      let r =
        {
          output;
          work = Env.total_work env;
          iters = Env.outer_iters env;
          trace = Env.trace env;
        }
      in
      ignore (Bounded.add !exact_cache key r);
      r

(* ------------------------------------------------- checkpointed path *)

(* First iteration of phase [q] under [n] phases and [i_total] exact
   iterations: the smallest [k] with [k * n / i_total = q], i.e.
   [ceil (q * i_total / n)].  The state of any schedule with an exact
   prefix covering phases [0 .. q-1] is bit-identical to the golden
   trajectory up to (not including) this iteration. *)
let boundary_iter ~n_phases ~i_total q = ((q * i_total) + n_phases - 1) / n_phases
let phase_boundary ~n_phases ~i_total q = boundary_iter ~n_phases ~i_total q

(* Run [app] under [sched], restoring the deepest cached exact-prefix
   checkpoint and saving any boundary checkpoints the run passes through.
   Returns [None] when no phase boundary is reusable (no exact prefix,
   single phase, or a zero-iteration exact run) — the caller then takes
   the scratch path. *)
let execute_checkpointed (app : App.t) mk sched ~(exact : exact_run) input =
  let n = Schedule.n_phases sched in
  let i_total = exact.iters in
  let boundary q = boundary_iter ~n_phases:n ~i_total q in
  let q_max =
    (* Deepest boundary inside the exact prefix; phase [n-1] has no
       boundary after it, and boundaries at iteration 0 are the scratch
       state — nothing to reuse there. *)
    let rec shrink q = if q >= 1 && boundary q = 0 then shrink (q - 1) else q in
    shrink (Stdlib.min (Schedule.exact_prefix sched) (n - 1))
  in
  if q_max < 1 then None
  else begin
    let base = input_key app input in
    let key q = Printf.sprintf "%s#%d#%d" base n q in
    let rec lookup q =
      if q < 1 then None
      else
        match Bounded.find !checkpoint_cache (key q) with
        | Some c -> Some (q, c)
        | None -> lookup (q - 1)
    in
    let env, inst, q_start =
      match lookup q_max with
      | Some (q, c) ->
          Metrics.incr ckpt_hits;
          let env = Env.resume c.snap ~sched ~expected_iters:i_total in
          (env, c.frozen.App.clone env, q)
      | None ->
          Metrics.incr ckpt_misses;
          let rng = Rng.create (seed_for app input) in
          let env = Env.create ~rng ~sched ~expected_iters:i_total ~n_abs:(App.n_abs app) in
          (env, (mk env input : App.instance), 0)
    in
    (* Drive through each missing boundary up to [q_max], freezing a
       checkpoint at each.  The frozen instance is bound to a throwaway
       resumed environment and never stepped; each future resume clones
       it again, so concurrent and repeated resumes cannot alias state. *)
    for q = q_start + 1 to q_max do
      let b = boundary q in
      let running = ref true in
      while !running && Env.outer_iters env < b do
        running := inst.App.step ()
      done;
      if Env.outer_iters env = b then begin
        let snap = Env.snapshot env in
        let frozen = inst.App.clone (Env.resume snap ~sched ~expected_iters:i_total) in
        if Bounded.add !checkpoint_cache (key q) { snap; frozen } then Metrics.incr ckpt_saves
      end
    done;
    while inst.App.step () do
      ()
    done;
    Some (env, inst.App.finish ())
  end

let run_sched (app : App.t) sched ~exact input =
  let via_checkpoint =
    if Atomic.get checkpointing_on then
      match app.iterative with
      | Some mk -> execute_checkpointed app mk sched ~exact input
      | None -> None
    else None
  in
  match via_checkpoint with
  | Some r -> r
  | None -> execute app sched ~expected_iters:exact.iters input

(* ------------------------------------------------------- evaluation *)

let sched_key sched =
  let b = Buffer.create 32 in
  for p = 0 to Schedule.n_phases sched - 1 do
    Buffer.add_char b ';';
    Array.iter
      (fun l ->
        Buffer.add_char b ',';
        Buffer.add_string b (string_of_int l))
      (Schedule.levels_of_phase sched p)
  done;
  Buffer.contents b

(* The per-AB / per-phase arrays are fresh per call even on a memo hit, so
   a caller mutating its result cannot corrupt the cache. *)
let copy_evaluation ev =
  { ev with work_per_ab = Array.copy ev.work_per_ab; work_per_phase = Array.copy ev.work_per_phase }

let compute_evaluation (app : App.t) sched ~(exact : exact_run) input =
  let env, output = run_sched app sched ~exact input in
  let work = Env.total_work env in
  let psnr, qos_degradation =
    match app.report_metric with
    | App.Distortion -> (None, Qos.relative_distortion ~exact:exact.output ~approx:output)
    | App.Psnr ->
        let p = Qos.psnr ~exact:exact.output ~approx:output in
        (Some p, Qos.psnr_to_degradation p)
  in
  {
    sched;
    qos_degradation;
    psnr;
    speedup = float_of_int exact.work /. float_of_int (Stdlib.max work 1);
    work;
    outer_iters = Env.outer_iters env;
    exact_iters = exact.iters;
    trace = Env.trace env;
    work_per_ab = Array.init (App.n_abs app) (Env.work_of_ab env);
    work_per_phase = Env.work_per_phase env;
  }

let evaluate ?exact (app : App.t) sched input =
  if Schedule.n_abs sched <> App.n_abs app then
    invalid_arg "Driver.evaluate: schedule AB count mismatch";
  match exact with
  | Some e ->
      (* A caller-supplied baseline may differ from the memoized exact run
         (tests do this); such evaluations bypass the memo entirely. *)
      compute_evaluation app sched ~exact:e input
  | None ->
      if not (Atomic.get eval_cache_on) then
        compute_evaluation app sched ~exact:(run_exact app input) input
      else begin
        let key = input_key app input ^ sched_key sched in
        match Bounded.find !eval_cache key with
        | Some ev ->
            Metrics.incr eval_hits;
            copy_evaluation ev
        | None ->
            Metrics.incr eval_misses;
            let ev = compute_evaluation app sched ~exact:(run_exact app input) input in
            ignore (Bounded.add !eval_cache key (copy_evaluation ev));
            ev
      end

let evaluate_uniform app levels input = evaluate app (Schedule.uniform ~n_phases:1 levels) input
