module Rng = Opprox_util.Rng

type exact_run = { output : float array; work : int; iters : int; trace : int list }

type evaluation = {
  sched : Schedule.t;
  qos_degradation : float;
  psnr : float option;
  speedup : float;
  work : int;
  outer_iters : int;
  exact_iters : int;
  trace : int list;
  work_per_ab : int array;
  work_per_phase : int array;
}

let cache : (string * float list, exact_run) Hashtbl.t = Hashtbl.create 64

let clear_cache () = Hashtbl.reset cache

let seed_for (app : App.t) input =
  (* Same seed for exact and approximate runs of one input: QoS differences
     must come from the approximation alone, not from RNG divergence. *)
  app.seed lxor Hashtbl.hash (Array.to_list input)

let execute (app : App.t) sched ~expected_iters input =
  let rng = Rng.create (seed_for app input) in
  let env = Env.create ~rng ~sched ~expected_iters ~n_abs:(App.n_abs app) in
  let output = app.run env input in
  (env, output)

let run_exact (app : App.t) input =
  let key = (app.name, Array.to_list input) in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let sched = Schedule.exact ~n_abs:(App.n_abs app) in
      let env, output = execute app sched ~expected_iters:0 input in
      let r =
        {
          output;
          work = Env.total_work env;
          iters = Env.outer_iters env;
          trace = Env.trace env;
        }
      in
      Hashtbl.replace cache key r;
      r

let evaluate ?exact (app : App.t) sched input =
  if Schedule.n_abs sched <> App.n_abs app then
    invalid_arg "Driver.evaluate: schedule AB count mismatch";
  let exact = match exact with Some e -> e | None -> run_exact app input in
  let env, output = execute app sched ~expected_iters:exact.iters input in
  let work = Env.total_work env in
  let psnr, qos_degradation =
    match app.report_metric with
    | App.Distortion ->
        (None, Qos.relative_distortion ~exact:exact.output ~approx:output)
    | App.Psnr ->
        let p = Qos.psnr ~exact:exact.output ~approx:output in
        (Some p, Qos.psnr_to_degradation p)
  in
  {
    sched;
    qos_degradation;
    psnr;
    speedup = float_of_int exact.work /. float_of_int (Stdlib.max work 1);
    work;
    outer_iters = Env.outer_iters env;
    exact_iters = exact.iters;
    trace = Env.trace env;
    work_per_ab = Array.init (App.n_abs app) (Env.work_of_ab env);
    work_per_phase = Env.work_per_phase env;
  }

let evaluate_uniform app levels input =
  evaluate app (Schedule.uniform ~n_phases:1 levels) input
