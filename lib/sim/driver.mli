(** Running applications and measuring speedup / QoS degradation.

    The driver owns the protocol the whole system depends on: for a given
    input, first obtain the {e exact} run (golden output, instruction-count
    baseline, and outer-loop iteration count); then execute approximate
    runs whose phase boundaries are derived from the exact iteration count,
    and score them against the golden output.

    Three memo layers avoid re-simulating deterministic work, all
    domain-safe (mutex + stable string keys) and observable through
    {!cache_stats}:

    - {b exact runs} per (application, input) — unbounded, one entry per
      distinct input;
    - {b exact phase-boundary checkpoints} per (application, input,
      n_phases, boundary phase): the paused golden trajectory at the first
      iteration of a phase.  A schedule whose leading phases are all exact
      (e.g. the training sampler's single-phase-active probes) resumes from
      the deepest cached boundary instead of re-simulating the prefix;
    - {b whole evaluations} per (application, input, schedule).

    The determinism contract is hard: a resumed run is bit-identical to
    the scratch run — output, work units, outer iterations and trace — so
    caching is observable only through the counters and the clock. *)

type exact_run = {
  output : float array;
  work : int;
  iters : int;  (** outer-loop iterations of the exact run *)
  trace : int list;  (** AB call-context sequence (control-flow signature) *)
}

type evaluation = {
  sched : Schedule.t;
  qos_degradation : float;  (** percent, >= 0, 0 = golden *)
  psnr : float option;  (** only for [Psnr] applications *)
  speedup : float;  (** exact work / approximate work *)
  work : int;
  outer_iters : int;
  exact_iters : int;
  trace : int list;
  work_per_ab : int array;
  work_per_phase : int array;
}

val run_exact : App.t -> float array -> exact_run
(** Memoized exact execution of one input. *)

val evaluate : ?exact:exact_run -> App.t -> Schedule.t -> float array -> evaluation
(** [evaluate app sched input] runs [app] on [input] under [sched] and
    scores it against the exact run (computed, or supplied via [?exact] to
    bypass the cache).  The schedule's AB count must match the app's.

    When the app is iterative and the schedule has a non-empty exact phase
    prefix, the run resumes from a memoized checkpoint when one exists and
    saves the boundary checkpoints it passes through.  Evaluations with
    [?exact] omitted are additionally memoized whole; a caller-supplied
    baseline bypasses that memo (the result depends on the baseline). *)

val evaluate_uniform : App.t -> int array -> float array -> evaluation
(** Phase-agnostic convenience: apply one AL vector for the whole run. *)

(** {2 Cache control and observability} *)

type cache_stats = {
  hits : int;  (** lookups served from the cache *)
  misses : int;  (** lookups that fell through to real execution *)
  size : int;  (** entries currently resident *)
}

val clear_cache : unit -> unit
(** Drop memoized exact runs (used by timing benchmarks).  Safe to call
    concurrently with lookups from other domains. *)

val clear_checkpoints : unit -> unit
(** Drop memoized phase-boundary checkpoints. *)

val clear_eval_cache : unit -> unit
(** Drop memoized whole evaluations. *)

val clear_all_caches : unit -> unit
(** All three of the above. *)

val set_checkpointing : bool -> unit
(** Enable/disable checkpoint reuse (default on).  Disabling forces every
    run down the scratch path — the bit-identity tests and the scratch arm
    of the checkpoint benchmarks rely on it. *)

val set_eval_cache : bool -> unit
(** Enable/disable the whole-evaluation memo (default on). *)

val set_checkpoint_capacity : int -> unit
(** Bound the checkpoint table (FIFO eviction; default 512 entries).
    Lowering the capacity evicts immediately. *)

val set_eval_cache_capacity : int -> unit
(** Bound the evaluation memo (FIFO eviction; default 4096 entries). *)

val memo_shards : unit -> int
(** Number of independent shards each memo table hashes its keys across
    (default 16).  Each shard has its own mutex, so concurrent hot hits
    from pool workers take uncontended locks with high probability. *)

val set_memo_shards : int -> unit
(** Rebuild all three memo tables with the given shard count.  {b Drops
    every cached entry} (counters are untouched).  Sharding only
    partitions keys across locks: hit/miss/save accounting and results
    are identical at any shard count (property-tested against 1 shard). *)

val exact_cache_stats : unit -> cache_stats
val checkpoint_stats : unit -> cache_stats
(** A miss is counted only when checkpointing {e applied} (iterative app,
    exact prefix covering at least one boundary iteration) but no boundary
    was cached — i.e. exactly one of hit/miss per checkpointable run. *)

val eval_cache_stats : unit -> cache_stats

val checkpoint_save_count : unit -> int
(** Boundary checkpoints actually inserted (first writer per key). *)

val reset_cache_stats : unit -> unit
(** Zero every hit/miss/save counter (cache contents are untouched). *)

val exact_run_count : unit -> int
(** Number of exact executions actually performed by this process (cache
    misses, not lookups).  Training asserts "one exact run per input"
    against this counter. *)

val reset_exact_run_count : unit -> unit

val input_key : App.t -> float array -> string
(** Stable memo key for an (application, input) pair: the application
    name plus the IEEE-754 bit pattern of every input component.  Shared
    with {!Oracle}'s measured-space memo. *)

val phase_boundary : n_phases:int -> i_total:int -> int -> int
(** [phase_boundary ~n_phases ~i_total q] is the first outer iteration of
    phase [q] when [i_total] exact iterations are split over [n_phases]
    phases: [ceil (q * i_total / n_phases)].  This is the boundary the
    checkpoint cache keys on; the runtime controller uses it to step a
    live instance phase by phase and to snapshot at exactly the
    iterations the driver's own checkpoints would. *)

val seed_for : App.t -> float array -> int
(** The deterministic RNG seed the driver uses for a given input: the
    app seed and the IEEE-754 bits of every input component folded through
    SplitMix64's finaliser.  Stable across processes and OCaml versions
    (no dependence on [Hashtbl.hash]); exposed so tests can reproduce
    runs. *)
