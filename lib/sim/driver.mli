(** Running applications and measuring speedup / QoS degradation.

    The driver owns the protocol the whole system depends on: for a given
    input, first obtain the {e exact} run (golden output, instruction-count
    baseline, and outer-loop iteration count); then execute approximate
    runs whose phase boundaries are derived from the exact iteration count,
    and score them against the golden output.

    Exact runs are memoized per (application, input) — they are pure
    functions of both — so repeated experiments do not pay for re-running
    the golden configuration. *)

type exact_run = {
  output : float array;
  work : int;
  iters : int;  (** outer-loop iterations of the exact run *)
  trace : int list;  (** AB call-context sequence (control-flow signature) *)
}

type evaluation = {
  sched : Schedule.t;
  qos_degradation : float;  (** percent, >= 0, 0 = golden *)
  psnr : float option;  (** only for [Psnr] applications *)
  speedup : float;  (** exact work / approximate work *)
  work : int;
  outer_iters : int;
  exact_iters : int;
  trace : int list;
  work_per_ab : int array;
  work_per_phase : int array;
}

val run_exact : App.t -> float array -> exact_run
(** Memoized exact execution of one input. *)

val evaluate : ?exact:exact_run -> App.t -> Schedule.t -> float array -> evaluation
(** [evaluate app sched input] runs [app] on [input] under [sched] and
    scores it against the exact run (computed, or supplied via [?exact] to
    bypass the cache).  The schedule's AB count must match the app's. *)

val evaluate_uniform : App.t -> int array -> float array -> evaluation
(** Phase-agnostic convenience: apply one AL vector for the whole run. *)

val clear_cache : unit -> unit
(** Drop memoized exact runs (used by timing benchmarks).  Safe to call
    concurrently with lookups from other domains. *)

val exact_run_count : unit -> int
(** Number of exact executions actually performed by this process (cache
    misses, not lookups).  Training asserts "one exact run per input"
    against this counter. *)

val reset_exact_run_count : unit -> unit

val input_key : App.t -> float array -> string
(** Stable memo key for an (application, input) pair: the application
    name plus the IEEE-754 bit pattern of every input component.  Shared
    with {!Oracle}'s measured-space memo. *)

val seed_for : App.t -> float array -> int
(** The deterministic RNG seed the driver uses for a given input; exposed
    so tests can reproduce runs. *)
