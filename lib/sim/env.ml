module Rng = Opprox_util.Rng

type t = {
  rng : Rng.t;
  sched : Schedule.t;
  expected_iters : int;
  meter : Workmeter.t;
  work_per_ab : int array;
  work_per_phase : int array;
  mutable trace_rev : int list;
  mutable iters : int;
  mutable phase : int;
}

let create ~rng ~sched ~expected_iters ~n_abs =
  if n_abs <> Schedule.n_abs sched then invalid_arg "Env.create: schedule AB count mismatch";
  if expected_iters < 0 then invalid_arg "Env.create: negative expected_iters";
  {
    rng;
    sched;
    expected_iters;
    meter = Workmeter.create ();
    work_per_ab = Array.make n_abs 0;
    work_per_phase = Array.make (Schedule.n_phases sched) 0;
    trace_rev = [];
    iters = 0;
    phase = 0;
  }

let rng t = t.rng

let level t ~iter ~ab =
  let phase = Schedule.phase_of_iter t.sched ~expected_iters:t.expected_iters ~iter in
  Schedule.level t.sched ~phase ~ab

let current_level t ~ab = Schedule.level t.sched ~phase:t.phase ~ab

let begin_outer_iter t =
  let i = t.iters in
  t.iters <- i + 1;
  t.phase <- Schedule.phase_of_iter t.sched ~expected_iters:t.expected_iters ~iter:i;
  i

let outer_iters t = t.iters

let enter_ab t ~ab =
  if ab < 0 || ab >= Array.length t.work_per_ab then invalid_arg "Env.enter_ab: bad ab";
  t.trace_rev <- ab :: t.trace_rev

let charge t ~ab n =
  Workmeter.add t.meter n;
  t.work_per_ab.(ab) <- t.work_per_ab.(ab) + n;
  t.work_per_phase.(t.phase) <- t.work_per_phase.(t.phase) + n

let charge_base t n =
  Workmeter.add t.meter n;
  t.work_per_phase.(t.phase) <- t.work_per_phase.(t.phase) + n

(* A snapshot freezes every piece of per-run mutable state — RNG position,
   meter, per-AB/per-phase work, trace, iteration and phase counters — so a
   run can later be resumed bit-identically under a different schedule with
   the same shape (n_phases, n_abs, expected_iters). *)
type snapshot = {
  s_rng : Rng.t;
  s_total : int;
  s_work_per_ab : int array;
  s_work_per_phase : int array;
  s_trace_rev : int list;
  s_iters : int;
  s_phase : int;
}

let snapshot t =
  {
    s_rng = Rng.copy t.rng;
    s_total = Workmeter.total t.meter;
    s_work_per_ab = Array.copy t.work_per_ab;
    s_work_per_phase = Array.copy t.work_per_phase;
    s_trace_rev = t.trace_rev;
    s_iters = t.iters;
    s_phase = t.phase;
  }

let resume snap ~sched ~expected_iters =
  if Array.length snap.s_work_per_ab <> Schedule.n_abs sched then
    invalid_arg "Env.resume: schedule AB count mismatch";
  if Array.length snap.s_work_per_phase <> Schedule.n_phases sched then
    invalid_arg "Env.resume: schedule phase count mismatch";
  let meter = Workmeter.create () in
  Workmeter.add meter snap.s_total;
  {
    rng = Rng.copy snap.s_rng;
    sched;
    expected_iters;
    meter;
    work_per_ab = Array.copy snap.s_work_per_ab;
    work_per_phase = Array.copy snap.s_work_per_phase;
    trace_rev = snap.s_trace_rev;
    iters = snap.s_iters;
    phase = snap.s_phase;
  }

let total_work t = Workmeter.total t.meter
let work_of_ab t ab = t.work_per_ab.(ab)
let work_per_phase t = Array.copy t.work_per_phase
let trace t = List.rev t.trace_rev
let current_phase t = t.phase
