(** Per-run execution environment handed to application kernels.

    The environment carries everything the simulated application's main
    loop needs from the harness: the phase-aware approximation schedule,
    the work meter, a deterministic RNG, and the instrumentation sinks
    (call-context trace, per-AB work, outer-iteration counter) that play
    the role of the paper's log-based profiling. *)

type t

val create :
  rng:Opprox_util.Rng.t ->
  sched:Schedule.t ->
  expected_iters:int ->
  n_abs:int ->
  t
(** [expected_iters] is the exact run's outer-loop iteration count for this
    input, used to map iterations onto phases; pass [0] when unknown (the
    exact run itself — every level is then 0 anyway). *)

val rng : t -> Opprox_util.Rng.t

val level : t -> iter:int -> ab:int -> int
(** AL of AB [ab] during outer-loop iteration [iter], resolved through the
    schedule's phase map. *)

val current_level : t -> ab:int -> int
(** AL of AB [ab] in the phase of the most recently begun outer iteration —
    the usual lookup from inside a kernel. *)

val begin_outer_iter : t -> int
(** Mark the start of an outer-loop iteration; returns its index (0-based).
    Applications call this exactly once per outer iteration. *)

val outer_iters : t -> int
(** Iterations begun so far. *)

val enter_ab : t -> ab:int -> unit
(** Record an AB call-context in the execution trace. *)

val charge : t -> ab:int -> int -> unit
(** Charge work units to the meter, attributed to AB [ab]. *)

val charge_base : t -> int -> unit
(** Charge non-approximable (base) work. *)

val total_work : t -> int
val work_of_ab : t -> int -> int
val work_per_phase : t -> int array
(** Work charged while each phase was active (length = schedule phases). *)

val trace : t -> int list
(** AB call-context ids in execution order. *)

val current_phase : t -> int
(** Phase of the most recently begun outer iteration. *)

type snapshot
(** Immutable copy of all per-run mutable state: RNG position, work meter,
    per-AB and per-phase work, trace, and the iteration/phase counters. *)

val snapshot : t -> snapshot
(** Capture the environment's state.  The snapshot is independent of the
    live environment: further stepping does not affect it. *)

val resume : snapshot -> sched:Schedule.t -> expected_iters:int -> t
(** Rebuild a live environment from a snapshot under a (possibly different)
    schedule of the same shape.  Raises [Invalid_argument] if the schedule's
    AB or phase count differs from the snapshot's.  The caller is
    responsible for [expected_iters] matching the original run's (checkpoint
    reuse relies on it).  Each call returns a fresh environment; resuming
    the same snapshot repeatedly is safe. *)
