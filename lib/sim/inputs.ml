let grid axes =
  if axes = [] then invalid_arg "Inputs.grid: no axes";
  List.iter (fun axis -> if axis = [] then invalid_arg "Inputs.grid: empty axis") axes;
  let rec go = function
    | [] -> [ [] ]
    | axis :: rest ->
        let tails = go rest in
        List.concat_map (fun v -> List.map (fun tail -> v :: tail) tails) axis
  in
  Array.of_list (List.map Array.of_list (go axes))

let with_default default inputs =
  if Array.exists (fun i -> i = default) inputs then inputs
  else Array.append inputs [| default |]

let count axes =
  if axes = [] then invalid_arg "Inputs.count: no axes";
  List.fold_left (fun acc axis -> acc * List.length axis) 1 axes
