(** Input-space construction helpers.

    OPPROX trains on "a set of representative inputs that exercise the
    application's desired functionality" (paper Sec. 1).  Applications
    describe their training inputs as a grid over per-parameter value
    lists; these combinators build the cartesian product and keep the
    production (default) input inside the training set so the models never
    extrapolate at the point that matters. *)

val grid : float list list -> float array array
(** [grid [xs; ys; ...]] is the cartesian product in row-major order
    (the first parameter varies slowest).  Raises [Invalid_argument] on an
    empty axis list or an empty axis. *)

val with_default : float array -> float array array -> float array array
(** Append the default input unless an identical vector is already
    present. *)

val count : float list list -> int
(** Size of the grid without building it. *)
