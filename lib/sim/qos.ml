let check_pair name exact approx =
  let n = Array.length exact in
  if n = 0 then invalid_arg (Printf.sprintf "Qos.%s: empty output" name);
  if Array.length approx <> n then invalid_arg (Printf.sprintf "Qos.%s: length mismatch" name)

let relative_distortion ~exact ~approx =
  check_pair "relative_distortion" exact approx;
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i e ->
      num := !num +. Float.abs (approx.(i) -. e);
      den := !den +. Float.abs e)
    exact;
  100.0 *. !num /. Float.max !den 1e-12

let mse ~exact ~approx =
  check_pair "mse" exact approx;
  let acc = ref 0.0 in
  Array.iteri
    (fun i e ->
      let d = approx.(i) -. e in
      acc := !acc +. (d *. d))
    exact;
  !acc /. float_of_int (Array.length exact)

let peak = 255.0

let psnr ~exact ~approx =
  let m = mse ~exact ~approx in
  if m = 0.0 then infinity else 10.0 *. log10 (peak *. peak /. m)

let psnr_to_degradation ?(reference_psnr = 50.0) value =
  if Float.is_nan value then invalid_arg "Qos.psnr_to_degradation: nan";
  if value >= reference_psnr then 0.0
  else 100.0 *. (reference_psnr -. Float.max 0.0 value) /. reference_psnr

let degradation_to_psnr ?(reference_psnr = 50.0) degradation =
  if degradation < 0.0 then invalid_arg "Qos.degradation_to_psnr: negative degradation";
  Float.max 0.0 (reference_psnr *. (1.0 -. (degradation /. 100.0)))
