(** Quality-of-service metrics.

    QoS degradation is expressed uniformly as a non-negative percentage
    (0 = identical to exact output).  Applications without a domain metric
    use the relative scaled distortion of Rinard (ICS 2006); video uses
    PSNR for reporting, with {!psnr_to_degradation} mapping PSNR targets
    onto the uniform degradation scale for the optimizer. *)

val relative_distortion : exact:float array -> approx:float array -> float
(** [100 * sum_i |a_i - e_i| / max(sum_i |e_i|, eps)], i.e. percent
    relative L1 distortion.  Requires equal non-zero lengths. *)

val mse : exact:float array -> approx:float array -> float
(** Mean squared error. *)

val psnr : exact:float array -> approx:float array -> float
(** Peak signal-to-noise ratio in dB, [10 log10 (255^2 / mse)] for 8-bit
    pixel signals.  Identical signals yield [infinity]. *)

val psnr_to_degradation : ?reference_psnr:float -> float -> float
(** Map a PSNR value onto the percent-degradation scale:
    [0] at or above [reference_psnr] (default 50 dB, visually lossless)
    and growing linearly as PSNR decreases, reaching 100 at 0 dB. *)

val degradation_to_psnr : ?reference_psnr:float -> float -> float
(** Inverse of {!psnr_to_degradation} on its linear segment: the PSNR
    value corresponding to a percent degradation. *)
