type t = { levels : int array array }

let make levels =
  let n_phases = Array.length levels in
  if n_phases = 0 then invalid_arg "Schedule.make: no phases";
  let n_abs = Array.length levels.(0) in
  if n_abs = 0 then invalid_arg "Schedule.make: no ABs";
  Array.iteri
    (fun phase row ->
      if Array.length row <> n_abs then
        invalid_arg
          (Printf.sprintf
             "Schedule.make: ragged rows (phase %d has %d ABs, phase 0 has %d)" phase
             (Array.length row) n_abs);
      Array.iteri
        (fun ab l ->
          if l < 0 then
            invalid_arg
              (Printf.sprintf "Schedule.make: negative level %d (phase %d, ab %d)" l phase
                 ab))
        row)
    levels;
  { levels = Array.map Array.copy levels }

let exact ~n_abs = make [| Array.make n_abs 0 |]

let uniform ~n_phases levels =
  if n_phases < 1 then invalid_arg "Schedule.uniform: n_phases must be >= 1";
  make (Array.init n_phases (fun _ -> Array.copy levels))

let single_phase_active ~n_phases ~phase levels =
  if phase < 0 || phase >= n_phases then invalid_arg "Schedule.single_phase_active: bad phase";
  make
    (Array.init n_phases (fun p ->
         if p = phase then Array.copy levels else Array.make (Array.length levels) 0))

let n_phases t = Array.length t.levels
let n_abs t = Array.length t.levels.(0)

let level t ~phase ~ab =
  if phase < 0 || phase >= n_phases t then invalid_arg "Schedule.level: bad phase";
  if ab < 0 || ab >= n_abs t then invalid_arg "Schedule.level: bad ab";
  t.levels.(phase).(ab)

let levels_of_phase t p =
  if p < 0 || p >= n_phases t then invalid_arg "Schedule.levels_of_phase: bad phase";
  Array.copy t.levels.(p)

let phase_of_iter t ~expected_iters ~iter =
  if iter < 0 then invalid_arg "Schedule.phase_of_iter: negative iteration";
  let n = n_phases t in
  if expected_iters <= 0 then 0 else Stdlib.min (n - 1) (iter * n / expected_iters)

let is_exact t = Array.for_all (fun row -> Array.for_all (fun l -> l = 0) row) t.levels

let exact_prefix t =
  let n = n_phases t in
  let rec go p =
    if p < n && Array.for_all (fun l -> l = 0) t.levels.(p) then go (p + 1) else p
  in
  go 0

let equal a b = a.levels = b.levels

module Sexp = Opprox_util.Sexp

let to_sexp t =
  Sexp.record
    [ ("levels", Sexp.list (Array.to_list (Array.map Sexp.int_array t.levels))) ]

let of_sexp sexp =
  let levels =
    Array.of_list (List.map Sexp.to_int_array (Sexp.to_list (Sexp.field sexp "levels")))
  in
  make levels

let pp ppf t =
  Array.iteri
    (fun p row ->
      Format.fprintf ppf "phase %d: [%s]@\n" p
        (String.concat "; " (Array.to_list (Array.map string_of_int row))))
    t.levels
