(** Phase-specific approximation schedules.

    A schedule assigns an approximation level to every (phase, AB) pair.
    Phases partition the outer loop's iterations into [n_phases] equal
    segments of the {e exact} run's iteration count [I]; iteration [k]
    belongs to phase [min (k * n_phases / I) (n_phases - 1)], so the
    remainder — and any extra iterations an approximate run performs beyond
    [I] — lands in the final phase (paper footnote 2). *)

type t

val make : int array array -> t
(** [make levels] with [levels.(p).(a)] the AL of AB [a] during phase [p].
    Requires at least one phase, rectangular rows with at least one AB, and
    non-negative levels. *)

val exact : n_abs:int -> t
(** Single phase, every AB at level 0. *)

val uniform : n_phases:int -> int array -> t
(** [uniform ~n_phases levels] applies the same AL vector in every phase —
    the phase-agnostic setting prior work is restricted to. *)

val single_phase_active : n_phases:int -> phase:int -> int array -> t
(** AL vector active only during [phase]; all other phases run exact.
    This is the probe schedule behind the paper's Figs. 4, 5, 9, 10. *)

val n_phases : t -> int
val n_abs : t -> int

val level : t -> phase:int -> ab:int -> int

val levels_of_phase : t -> int -> int array
(** Copy of the AL vector of one phase. *)

val phase_of_iter : t -> expected_iters:int -> iter:int -> int
(** Phase of outer-loop iteration [iter] given the exact run's iteration
    count.  [expected_iters <= 0] (unknown; happens only during the exact
    run itself) maps everything to phase 0. *)

val is_exact : t -> bool
(** True when every level in every phase is 0. *)

val exact_prefix : t -> int
(** Number of leading phases whose levels are all 0.  Equals [n_phases t]
    iff the schedule is exact.  A run of such a schedule follows the exact
    run's trajectory bit-for-bit until the first iteration of the first
    non-exact phase — the property the driver's checkpoint reuse rests on. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_sexp : t -> Opprox_util.Sexp.t
(** Serialize, so schedules can be shipped to [opprox check] and audited
    without re-running the optimizer. *)

val of_sexp : Opprox_util.Sexp.t -> t
(** Inverse of {!to_sexp}.  Raises [Failure] on malformed input and
    [Invalid_argument] (via {!make}) when the stored schedule violates the
    shape invariants. *)
