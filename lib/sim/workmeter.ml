type t = { mutable total : int }

let create () = { total = 0 }

let add t n =
  if n < 0 then invalid_arg "Workmeter.add: negative work";
  t.total <- t.total + n

let total t = t.total

let reset t = t.total <- 0
