(** Abstract work-unit accounting.

    The paper measures "speedup" as the ratio of instructions executed by
    the exact run to instructions executed by the approximate run
    (Sec. 3.6).  Our simulated kernels charge work units to a meter at
    every inner-loop step; the ratio of meter totals plays the role of the
    instruction-count ratio. *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Charge [n >= 0] work units. *)

val total : t -> int

val reset : t -> unit
