(* Concurrency-safety checker runtime: the shared state behind the CONC
   diagnostic family.

   {!Dmutex} and {!Guarded} call into this module from their slow paths;
   nothing here runs unless checking is enabled ([OPPROX_RACECHECK=1],
   the legacy alias [OPPROX_DEBUG=1], or {!enable}).  The runtime keeps

   - a per-domain stack of held locks (in domain-local storage, so
     reading it never synchronizes with other domains), and
   - a global lock-order graph over lock {e classes}: an edge [a -> b]
     means some domain acquired a lock of class [b] while holding one of
     class [a].  The 16 shard locks of one map share a class, so the
     graph stays a handful of nodes however wide the sharding — and
     nesting two {e instances} of one class is a self-edge, which is
     exactly the AB/BA hazard sharded structures must never create.

   A new edge that closes a cycle is a potential deadlock (CONC001):
   some interleaving of the involved domains can block forever, even if
   this run did not.  Cycle detection runs only on the {e first}
   observation of an edge, so steady-state cost per acquisition is a
   held-stack walk plus one hashtable miss per held lock.

   The checker's own state is guarded by a plain [Mutex.t] — it cannot
   instrument itself.  Reports are deduplicated on (code, subject):
   a defective call site inside a hot loop yields one report, not
   millions. *)

module Metrics = Opprox_obs.Metrics

let m_acquisitions = Metrics.counter "conc.locks.acquisitions"
let m_classes = Metrics.gauge "conc.locks.classes"
let m_edges = Metrics.gauge "conc.order.edges"
let m_reports = Metrics.counter "conc.reports"
let m_yields = Metrics.counter "conc.stress.yields"

type report = { code : string; subject : string; message : string }

(* ------------------------------------------------------------- enabling *)

let env_on v = Sys.getenv_opt v = Some "1"
let enabled_flag = Atomic.make (env_on "OPPROX_RACECHECK" || env_on "OPPROX_DEBUG")
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let enable () = set_enabled true

(* -------------------------------------------------------- lock identity *)

let next_id = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add next_id 1

(* ------------------------------------------------- per-domain held stack *)

type held = { id : int; cls : string; bt : Printexc.raw_backtrace }

let held_key : held list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let held_stack () = Domain.DLS.get held_key
let holds ~id = List.exists (fun h -> h.id = id) !(held_stack ())
let held_classes () = List.map (fun h -> h.cls) !(held_stack ())

(* ------------------------------------------------------- checker state *)

let state_mu = Mutex.create ()

(* Adjacency lists for cycle search; [edge_sites] doubles as the edge
   set and remembers the acquisition sites of each edge's first
   observation (the pair CONC001 reports). *)
let succs : (string, string list ref) Hashtbl.t = Hashtbl.create 64
let edge_sites : (string * string, string * string) Hashtbl.t = Hashtbl.create 64
let classes : (string, unit) Hashtbl.t = Hashtbl.create 64
let report_keys : (string, unit) Hashtbl.t = Hashtbl.create 16
let reports_rev : report list ref = ref []

let with_state f =
  Mutex.lock state_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock state_mu) f

let report_locked ~code ~subject message =
  let key = code ^ "|" ^ subject in
  if not (Hashtbl.mem report_keys key) then begin
    Hashtbl.add report_keys key ();
    reports_rev := { code; subject; message } :: !reports_rev;
    Metrics.incr m_reports
  end

let report ~code ~subject fmt =
  Printf.ksprintf (fun message -> with_state (fun () -> report_locked ~code ~subject message)) fmt

let reports () = with_state (fun () -> List.rev !reports_rev)
let report_count () = with_state (fun () -> List.length !reports_rev)

let reset () =
  with_state (fun () ->
      Hashtbl.reset succs;
      Hashtbl.reset edge_sites;
      Hashtbl.reset classes;
      Hashtbl.reset report_keys;
      reports_rev := [];
      Metrics.set m_classes 0.0;
      Metrics.set m_edges 0.0);
  (* Only the calling domain's stack can be cleared safely; entries left
     by enabling/disabling mid-critical-section on other domains drain
     as those domains release. *)
  held_stack () := []

(* Backtraces compress to their first few frames on one line: enough to
   name the acquisition site without drowning a diagnostic in a page of
   stack. *)
let site_string bt =
  let internal frame =
    (* The checker's and Dmutex's own frames head every capture; the
       caller wants the acquisition site, not the instrumentation. *)
    let has sub =
      let n = String.length sub and m = String.length frame in
      let rec at i = i + n <= m && (String.sub frame i n = sub || at (i + 1)) in
      at 0
    in
    has "Opprox_util__Conc" || has "Opprox_util__Dmutex"
  in
  let frames =
    String.split_on_char '\n' (Printexc.raw_backtrace_to_string bt)
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && not (internal l))
  in
  match frames with
  | [] -> "(backtrace unavailable; compile with debug info)"
  | frames -> String.concat " | " (List.filteri (fun i _ -> i < 3) frames)

(* --------------------------------------------------- stress (yield widening) *)

let stress_on = Atomic.make false
let stress_seed = Atomic.make 0

let rng_key : (int * Random.State.t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let maybe_yield () =
  if Atomic.get stress_on then begin
    let seed = Atomic.get stress_seed in
    let cell = Domain.DLS.get rng_key in
    let st =
      match !cell with
      | Some (s, st) when s = seed -> st
      | _ ->
          let st = Random.State.make [| seed; (Domain.self () :> int) |] in
          cell := Some (seed, st);
          st
    in
    (* A short randomized spin at the lock site perturbs the arrival
       order of contending domains, widening the interleavings one
       seeded run explores. *)
    let n = Random.State.int st 4 in
    if n > 0 then begin
      Metrics.incr m_yields;
      for _ = 1 to n * 16 do
        Domain.cpu_relax ()
      done
    end
  end

let stress ?(seed = 0) ?(reps = 3) f =
  let prev_enabled = enabled () in
  set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stress_on false;
      set_enabled prev_enabled)
    (fun () ->
      for rep = 0 to reps - 1 do
        (* A distinct seed per repetition re-randomizes every domain's
           yield schedule; the multiplier just decorrelates low bits. *)
        Atomic.set stress_seed (seed + (rep * 0x9e3779b9));
        Atomic.set stress_on true;
        f rep
      done)

(* ------------------------------------------------------ order graph *)

let path_exists_locked src dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    n = dst
    || (not (Hashtbl.mem visited n)
       &&
       (Hashtbl.add visited n ();
        match Hashtbl.find_opt succs n with
        | None -> false
        | Some l -> List.exists go !l))
  in
  go src

let intern_class_locked c =
  if not (Hashtbl.mem classes c) then begin
    Hashtbl.add classes c ();
    Metrics.set m_classes (float_of_int (Hashtbl.length classes))
  end

(* Called by [Dmutex.create] — lock creation is rare, so interning every
   class up front keeps [conc.locks.classes] meaningful without touching
   the acquisition path. *)
let register_class c = with_state (fun () -> intern_class_locked c)

let add_edge_locked ~from_cls ~from_bt ~to_cls ~to_bt =
  let key = (from_cls, to_cls) in
  if not (Hashtbl.mem edge_sites key) then begin
    (* Check reachability before inserting, so the fresh edge itself is
       not part of the searched graph. *)
    let closes_cycle = path_exists_locked to_cls from_cls in
    Hashtbl.add edge_sites key (site_string from_bt, site_string to_bt);
    let l =
      match Hashtbl.find_opt succs from_cls with
      | Some l -> l
      | None ->
          let l = ref [] in
          Hashtbl.add succs from_cls l;
          l
    in
    l := to_cls :: !l;
    intern_class_locked from_cls;
    intern_class_locked to_cls;
    Metrics.set m_edges (float_of_int (Hashtbl.length edge_sites));
    if closes_cycle then begin
      let here_from, here_to = Hashtbl.find edge_sites key in
      let return_leg =
        match Hashtbl.find_opt edge_sites (to_cls, from_cls) with
        | Some (rf, rt) ->
            Printf.sprintf "reverse edge %s -> %s first seen holding-at %s, acquiring-at %s"
              to_cls from_cls rf rt
        | None -> Printf.sprintf "reverse path %s ->* %s via intermediate lock classes" to_cls from_cls
      in
      report_locked ~code:"CONC001"
        ~subject:(Printf.sprintf "%s -> %s" from_cls to_cls)
        (Printf.sprintf
           "lock-order cycle: acquiring %s while holding %s (held-at %s, acquired-at %s) \
            completes a cycle; %s"
           to_cls from_cls here_from here_to return_leg)
    end
  end

(* ------------------------------------------------------- Dmutex hooks *)

(* All hooks below are slow-path only: {!Dmutex} calls them after one
   atomic load of the enable flag said checking is on. *)

let add_edge ~from_cls ~from_bt ~to_cls ~to_bt =
  with_state (fun () -> add_edge_locked ~from_cls ~from_bt ~to_cls ~to_bt)

let on_lock ~id:_ ~cls =
  Metrics.incr m_acquisitions;
  let bt = Printexc.get_callstack 16 in
  List.iter (fun h -> add_edge ~from_cls:h.cls ~from_bt:h.bt ~to_cls:cls ~to_bt:bt) !(held_stack ());
  maybe_yield ();
  bt

let on_acquired ~id ~cls ~bt =
  let s = held_stack () in
  s := { id; cls; bt } :: !s

let on_release ~id =
  let s = held_stack () in
  let rec remove_first = function
    | [] -> []
    | h :: tl -> if h.id = id then tl else h :: remove_first tl
  in
  s := remove_first !s
