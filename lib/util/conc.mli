(** Concurrency-safety checker runtime (the CONC diagnostic family).

    Always compiled in; near-free when off.  {!Dmutex} and {!Guarded}
    consult one atomic enable flag per operation and call into this
    module only when checking is on — [OPPROX_RACECHECK=1] in the
    environment at startup, the legacy alias [OPPROX_DEBUG=1], or
    {!enable}.  While enabled, the runtime maintains a per-domain
    held-lock stack and a global lock-order graph over lock {e classes}
    (same-named locks — e.g. all 16 shard locks of one map — share a
    class), and accumulates deduplicated {!report}s:

    - [CONC001] — a nested acquisition closed a cycle in the lock-order
      graph: a potential deadlock, reported with both acquisition sites.
    - [CONC002] — a {!Guarded} cell was accessed without its guarding
      lockset held (reported by {!Guarded}, stored here).
    - [CONC003] — reentrant acquisition: a domain locked a {!Dmutex} it
      already holds (reported by {!Dmutex}).
    - [CONC004] — a {!Dmutex} was released by a domain that does not
      hold it (reported by {!Dmutex}).

    Reports are plain data; {!Opprox_analysis} renders them as
    [Diagnostic]s ([Lint_conc]).  Metrics: [conc.locks.acquisitions],
    [conc.locks.classes], [conc.order.edges], [conc.reports],
    [conc.stress.yields]. *)

type report = { code : string; subject : string; message : string }
(** One deduplicated finding: stable CONC code, the lock class / edge /
    cell it concerns, and a human message carrying acquisition sites. *)

(** {2 Enabling} *)

val enabled : unit -> bool
val enable : unit -> unit

val set_enabled : bool -> unit
(** Process-wide. Initial state comes from [OPPROX_RACECHECK=1] or
    [OPPROX_DEBUG=1].  Toggling while locks are held leaves the checker's
    view of those locks incomplete; reports remain best-effort until
    they are released (never false deadlocks from balanced sections). *)

(** {2 Reports} *)

val reports : unit -> report list
(** Accumulated findings in observation order (deduplicated on
    (code, subject)). *)

val report_count : unit -> int

val report : code:string -> subject:string -> ('a, unit, string, unit) format4 -> 'a
(** Record a finding (deduplicated).  Used by {!Dmutex} / {!Guarded};
    available to other instrumentation that detects CONC conditions. *)

val reset : unit -> unit
(** Drop all reports and the lock-order graph, and clear the {e calling}
    domain's held stack.  Tests bracket fixtures with this. *)

(** {2 Stress — seeded interleaving widening} *)

val stress : ?seed:int -> ?reps:int -> (int -> unit) -> unit
(** [stress ~seed ~reps f] runs [f 0 .. f (reps-1)] with checking forced
    on and randomized yield injection active at every instrumented lock
    site: each contending domain spins a seeded-pseudorandom number of
    times before acquiring, perturbing arrival orders so one test
    explores [reps] distinct interleaving families deterministically
    per seed.  Restores the previous enable state. *)

val maybe_yield : unit -> unit
(** The stress-mode yield point (no-op unless {!stress} is active). *)

(** {2 Instrumentation hooks — called by Dmutex/Guarded slow paths} *)

val fresh_id : unit -> int
(** Process-unique lock identity. *)

val register_class : string -> unit
(** Intern a lock class for the [conc.locks.classes] gauge (called once
    per {!Dmutex.create}). *)

val holds : id:int -> bool
(** Whether the calling domain's held stack contains lock [id]. *)

val held_classes : unit -> string list
(** Lock classes the calling domain currently holds, innermost first. *)

val on_lock : id:int -> cls:string -> Printexc.raw_backtrace
(** Pre-acquisition hook: counts the acquisition, adds lock-order edges
    from every held lock to [cls] (checking each new edge for a cycle —
    CONC001), and applies stress yields.  Returns the captured
    acquisition site for {!on_acquired}. *)

val on_acquired : id:int -> cls:string -> bt:Printexc.raw_backtrace -> unit
(** Post-acquisition hook: pushes the lock on the held stack. *)

val on_release : id:int -> unit
(** Removes the lock from the held stack (also used around
    [Condition.wait]'s release window). *)
