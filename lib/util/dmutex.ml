(* An instrumented mutex.  In normal operation this is a plain [Mutex.t]
   plus one atomic load of the {!Conc} enable flag per operation.  With
   checking on, every acquisition runs through the {!Conc} runtime: the
   per-domain held stack catches reentrant acquisition (CONC003) before
   it deadlocks, the lock-order graph catches cyclic nesting across lock
   classes (CONC001), and release by a non-owner is CONC004.  The
   reentrancy/foreign-release defects additionally raise [Failure]
   immediately — they corrupt the calling domain's own discipline and
   continuing would hang or crash it anyway. *)

type t = { m : Mutex.t; owner : int Atomic.t; id : int; cls : string }

let no_owner = -1

let create ?name () =
  let id = Conc.fresh_id () in
  (* Unnamed locks get a unique class: distinct anonymous locks must not
     alias in the order graph.  Named locks share their name as a class
     (all shards of one map), so instance count never widens the graph. *)
  let cls = match name with Some n -> n | None -> Printf.sprintf "lock#%d" id in
  Conc.register_class cls;
  { m = Mutex.create (); owner = Atomic.make no_owner; id; cls }

let name t = t.cls
let id t = t.id
let self () = (Domain.self () :> int)

let lock_slow t =
  if Conc.holds ~id:t.id then begin
    Conc.report ~code:"CONC003" ~subject:t.cls
      "reentrant acquisition of %s by domain %d (already on its held stack)" t.cls (self ());
    failwith "Dmutex.lock: reentrant acquisition (this domain already holds the lock)"
  end;
  let bt = Conc.on_lock ~id:t.id ~cls:t.cls in
  Mutex.lock t.m;
  Atomic.set t.owner (self ());
  Conc.on_acquired ~id:t.id ~cls:t.cls ~bt

let lock t = if Conc.enabled () then lock_slow t else Mutex.lock t.m

let unlock_slow t =
  let o = Atomic.get t.owner in
  (* [o = no_owner] is tolerated: checking may have been enabled between
     lock and unlock. *)
  if o <> no_owner && o <> self () then begin
    Conc.report ~code:"CONC004" ~subject:t.cls
      "%s released by domain %d while owned by domain %d" t.cls (self ()) o;
    failwith "Dmutex.unlock: lock held by another domain"
  end;
  Atomic.set t.owner no_owner;
  Conc.on_release ~id:t.id;
  Mutex.unlock t.m

let unlock t = if Conc.enabled () then unlock_slow t else Mutex.unlock t.m

let wait cond t =
  if Conc.enabled () then begin
    let o = Atomic.get t.owner in
    if o <> no_owner && o <> self () then begin
      Conc.report ~code:"CONC004" ~subject:t.cls
        "%s waited on by domain %d while owned by domain %d" t.cls (self ()) o;
      failwith "Dmutex.wait: lock held by another domain"
    end;
    (* Condition.wait releases the mutex atomically; the checker's view
       must agree for the duration so a waking peer acquires cleanly. *)
    Atomic.set t.owner no_owner;
    Conc.on_release ~id:t.id;
    Condition.wait cond t.m;
    Atomic.set t.owner (self ());
    Conc.on_acquired ~id:t.id ~cls:t.cls ~bt:(Printexc.get_callstack 16)
  end
  else Condition.wait cond t.m

let held_by_self t = Conc.enabled () && Conc.holds ~id:t.id
let set_enabled = Conc.set_enabled
let checking = Conc.enabled
