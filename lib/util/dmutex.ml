(* A mutex with optional owner tracking.  In normal operation this is a
   plain [Mutex.t] — one extra branch per operation.  With checking
   enabled ([OPPROX_DEBUG=1] or {!set_enabled}) each acquisition records
   the owning domain, and a domain re-acquiring a lock it already holds
   fails immediately with a descriptive exception instead of deadlocking
   silently.  Systhreads mutexes already raise [Sys_error] on some
   platforms for recursive locking, but not reliably, and never with the
   owner identified. *)

type t = { m : Mutex.t; owner : int Atomic.t }

let no_owner = -1
let enabled = ref (Sys.getenv_opt "OPPROX_DEBUG" = Some "1")
let set_enabled b = enabled := b
let checking () = !enabled
let create () = { m = Mutex.create (); owner = Atomic.make no_owner }
let self () = (Domain.self () :> int)

let lock t =
  if !enabled && Atomic.get t.owner = self () then
    failwith "Dmutex.lock: reentrant acquisition (this domain already holds the lock)";
  Mutex.lock t.m;
  if !enabled then Atomic.set t.owner (self ())

let unlock t =
  if !enabled then begin
    let o = Atomic.get t.owner in
    (* [o = no_owner] is tolerated: checking may have been enabled between
       lock and unlock. *)
    if o <> no_owner && o <> self () then
      failwith "Dmutex.unlock: lock held by another domain";
    Atomic.set t.owner no_owner
  end;
  Mutex.unlock t.m

let wait cond t =
  if !enabled then begin
    let o = Atomic.get t.owner in
    if o <> no_owner && o <> self () then
      failwith "Dmutex.wait: lock held by another domain";
    (* Condition.wait releases the mutex atomically; ownership must be
       cleared for the duration so a waking peer can acquire cleanly. *)
    Atomic.set t.owner no_owner
  end;
  Condition.wait cond t.m;
  if !enabled then Atomic.set t.owner (self ())
