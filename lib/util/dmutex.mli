(** Instrumented mutex — the lock primitive of the concurrency checker.

    Drop-in for the [Mutex.t]/[Condition.wait] subset the codebase uses.
    In normal operation the cost over a bare mutex is one atomic load of
    the {!Conc} enable flag per operation.  With checking on —
    [OPPROX_RACECHECK=1] (or the legacy alias [OPPROX_DEBUG=1]) in the
    environment at startup, or {!Conc.enable} — every acquisition feeds
    the per-domain held-lock stack and the global lock-order graph:

    - cyclic nesting across lock classes reports [CONC001];
    - reentrant acquisition reports [CONC003] {e and} raises [Failure]
      (the classic self-deadlock in memo-table callbacks) instead of
      hanging the process;
    - release or wait by a non-owner reports [CONC004] and raises.

    Locks created with the same [?name] share a lock {e class} in the
    order graph — name structural roles (["shardmap.plans.shard"]), not
    instances, so 16-way sharding stays one graph node and nesting two
    shards of one class is flagged as the self-edge it is. *)

type t

val create : ?name:string -> unit -> t
(** [create ~name ()] — [name] is the lock class for order auditing;
    unnamed locks get a unique class of their own. *)

val name : t -> string
(** The lock class. *)

val id : t -> int
(** Process-unique instance identity (checker integration — {!Guarded}
    uses it to test membership in the holder's lockset). *)

val lock : t -> unit
(** Acquire.  With checking on, raises [Failure] (after recording
    CONC003) if the calling domain already holds [t]. *)

val unlock : t -> unit
(** Release.  With checking on, raises [Failure] (after recording
    CONC004) if another domain is the recorded owner. *)

val wait : Condition.t -> t -> unit
(** [wait cond t] is [Condition.wait cond (the underlying mutex)]:
    atomically releases [t] and sleeps, reacquiring before returning.
    The checker's held stack and ownership track the release window. *)

val held_by_self : t -> bool
(** With checking on, whether the calling domain holds [t]; always
    [false] when checking is off (the held stack is not maintained). *)

val set_enabled : bool -> unit
(** Alias for {!Conc.set_enabled} (kept for existing call sites). *)

val checking : unit -> bool
(** Alias for {!Conc.enabled}. *)
