(** Owner-tracked mutex for debugging lock discipline.

    Drop-in for the [Mutex.t]/[Condition.wait] subset the codebase uses.
    In normal operation the cost over a bare mutex is one branch per
    operation.  When checking is on — [OPPROX_DEBUG=1] in the environment
    at startup, or {!set_enabled} — each acquisition records the owning
    domain and a reentrant acquisition (the same domain locking a lock it
    already holds, the classic self-deadlock in memo-table callbacks)
    raises [Failure] immediately instead of hanging the process. *)

type t

val create : unit -> t

val lock : t -> unit
(** Acquire.  With checking on, raises [Failure] if the calling domain
    already holds [t]. *)

val unlock : t -> unit
(** Release.  With checking on, raises [Failure] if another domain is the
    recorded owner. *)

val wait : Condition.t -> t -> unit
(** [wait cond t] is [Condition.wait cond (the underlying mutex)]:
    atomically releases [t] and sleeps, reacquiring before returning.
    Ownership tracking is cleared for the sleep and restored on wakeup. *)

val set_enabled : bool -> unit
(** Turn checking on or off process-wide (initial state comes from
    [OPPROX_DEBUG=1]).  Affects subsequent operations on all mutexes. *)

val checking : unit -> bool
(** Whether checking is currently on. *)
