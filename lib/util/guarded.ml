(* A lockset-checked cell: the data half of the concurrency checker.

   The lock-order graph in {!Conc} answers "can these locks deadlock";
   this module answers the complementary Eraser-style question "is this
   shared state only touched under its lock".  A [Guarded.t] binds a
   value to the {!Dmutex}(es) that guard it at construction time; with
   checking on, every [get]/[set] verifies the full lockset is on the
   calling domain's held stack and records CONC002 when it is not.
   Unlike reentrancy, an unguarded access is not fatal to the caller, so
   it reports and proceeds — one deduplicated report per cell, not a
   crash in the middle of a run.

   With checking off an access is one atomic load plus the field
   read/write — the same cost as the bare record field it replaces. *)

type 'a t = { cell_name : string; locks : Dmutex.t list; mutable v : 'a }

let create ?(name = "guarded") ~locks v =
  if locks = [] then invalid_arg "Guarded.create: empty lockset";
  { cell_name = name; locks; v }

let name t = t.cell_name
let lockset t = t.locks
let lockset_held t = List.for_all (fun l -> Conc.holds ~id:(Dmutex.id l)) t.locks

let check t op =
  if not (lockset_held t) then
    Conc.report ~code:"CONC002" ~subject:t.cell_name
      "unguarded %s of %s by domain %d: lockset {%s} not held (holding: %s)" op t.cell_name
      (Domain.self () :> int)
      (String.concat ", " (List.map Dmutex.name t.locks))
      (match Conc.held_classes () with [] -> "nothing" | cs -> String.concat ", " cs)

let get t =
  if Conc.enabled () then check t "read";
  t.v

let set t v =
  if Conc.enabled () then check t "write";
  t.v <- v

let unsafe_get t = t.v
