(** Lockset-checked shared state (CONC002).

    [Guarded.t] binds a mutable cell to the {!Dmutex}(es) that guard it;
    with checking on ({!Conc.enabled}), any {!get}/{!set} performed by a
    domain that does not hold the {e entire} lockset records a CONC002
    report (deduplicated per cell) and proceeds.  With checking off an
    access costs one atomic load over the bare field it replaces.

    The cell holds the {e root} of the guarded state: putting a
    [Hashtbl.t] in a cell checks that every traversal {e entry} happens
    under the lock — interior mutation through a retained alias is
    outside the discipline, as in every lockset checker. *)

type 'a t

val create : ?name:string -> locks:Dmutex.t list -> 'a -> 'a t
(** [create ~name ~locks v] — [name] labels CONC002 reports; [locks]
    must be non-empty ([Invalid_argument] otherwise). *)

val name : 'a t -> string
val lockset : 'a t -> Dmutex.t list

val lockset_held : 'a t -> bool
(** Whether the calling domain's held stack covers the lockset (always
    [false] with checking off — the stack is not maintained). *)

val get : 'a t -> 'a
(** Read; records CONC002 when checking is on and the lockset is not
    held. *)

val set : 'a t -> 'a -> unit
(** Write; same check as {!get}. *)

val unsafe_get : 'a t -> 'a
(** Read with no check ever — for deliberate lock-free snapshots
    (metrics gauges, [to_sexp] of a quiesced structure).  Use sparingly;
    every use is an assertion that tearing is acceptable. *)
