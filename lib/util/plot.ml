type series = { label : string; points : (float * float) array; glyph : char }

let series ?(glyph = 'o') label points = { label; points; glyph }

let glyph_cycle = [| 'o'; 'x'; '+'; '*'; '#'; '@'; '%' |]

let auto_glyphs point_sets labels =
  List.mapi
    (fun i (points, label) ->
      { label; points; glyph = glyph_cycle.(i mod Array.length glyph_cycle) })
    (List.combine point_sets labels)

let finite_points s =
  Array.of_seq
    (Seq.filter
       (fun (x, y) -> Float.is_finite x && Float.is_finite y)
       (Array.to_seq s.points))

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") all_series =
  let cleaned = List.map (fun s -> { s with points = finite_points s }) all_series in
  let everything = Array.concat (List.map (fun s -> s.points) cleaned) in
  if Array.length everything = 0 then ""
  else begin
    let xs = Array.map fst everything and ys = Array.map snd everything in
    let pad lo hi =
      let range = hi -. lo in
      if range <= 0.0 then (lo -. 1.0, hi +. 1.0)
      else (lo -. (0.05 *. range), hi +. (0.05 *. range))
    in
    let x_lo, x_hi = pad (Stats.min xs) (Stats.max xs) in
    let y_lo, y_hi = pad (Stats.min ys) (Stats.max ys) in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        Array.iter
          (fun (x, y) ->
            let col =
              int_of_float (Float.round ((x -. x_lo) /. (x_hi -. x_lo) *. float_of_int (width - 1)))
            in
            let row =
              int_of_float (Float.round ((y -. y_lo) /. (y_hi -. y_lo) *. float_of_int (height - 1)))
            in
            let col = Stdlib.max 0 (Stdlib.min (width - 1) col) in
            let row = Stdlib.max 0 (Stdlib.min (height - 1) row) in
            (* Row 0 of the grid is the TOP of the plot. *)
            let cell = grid.(height - 1 - row).(col) in
            grid.(height - 1 - row).(col) <- (if cell = ' ' || cell = s.glyph then s.glyph else '?'))
          s.points)
      cleaned;
    let buf = Buffer.create ((width + 12) * (height + 4)) in
    let y_hi_label = Printf.sprintf "%.3g" y_hi and y_lo_label = Printf.sprintf "%.3g" y_lo in
    let margin = Stdlib.max (String.length y_hi_label) (String.length y_lo_label) in
    if y_label <> "" then begin
      Buffer.add_string buf y_label;
      Buffer.add_char buf '\n'
    end;
    Array.iteri
      (fun i row ->
        let tick =
          if i = 0 then y_hi_label else if i = height - 1 then y_lo_label else ""
        in
        Buffer.add_string buf (Printf.sprintf "%*s |" margin tick);
        Array.iter (Buffer.add_char buf) row;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%*s +%s\n" margin "" (String.make width '-'));
    let x_lo_label = Printf.sprintf "%.3g" x_lo and x_hi_label = Printf.sprintf "%.3g" x_hi in
    let gap =
      Stdlib.max 1 (width - String.length x_lo_label - String.length x_hi_label)
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s  %s%s%s\n" margin "" x_lo_label (String.make gap ' ') x_hi_label);
    if x_label <> "" then
      Buffer.add_string buf (Printf.sprintf "%*s  [x: %s]\n" margin "" x_label);
    let legend =
      String.concat "   "
        (List.filter_map
           (fun s -> if s.label = "" then None else Some (Printf.sprintf "%c = %s" s.glyph s.label))
           cleaned)
    in
    if legend <> "" then Buffer.add_string buf ("  " ^ legend ^ "\n");
    Buffer.contents buf
  end

let print ?width ?height ?x_label ?y_label ?title all_series =
  (match title with
  | None -> ()
  | Some t ->
      print_endline t;
      print_endline (String.make (String.length t) '-'));
  print_string (render ?width ?height ?x_label ?y_label all_series)
