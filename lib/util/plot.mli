(** ASCII scatter plots.

    The paper's evaluation artifacts are figures; the bench harness prints
    each one as a table {e and} as a terminal scatter plot so the shape
    (who wins, where the knee is) is visible at a glance without leaving
    the terminal.

    Plots are plain character grids: distinct glyphs per series, axes with
    min/max tick labels, and an optional legend.  Rendering is pure —
    the functions return strings. *)

type series = {
  label : string;
  points : (float * float) array;
  glyph : char;  (** the character drawn for this series' points *)
}

val series : ?glyph:char -> string -> (float * float) array -> series
(** Build a series; when [glyph] is omitted, callers typically rely on
    {!auto_glyphs}. *)

val auto_glyphs : (float * float) array list -> string list -> series list
(** Zip point sets with labels, assigning the default glyph cycle
    [o x + * # @ %]. *)

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Render a scatter plot ([width] x [height] interior, defaults 64 x 16).
    Returns the empty string for an empty or degenerate (no finite points)
    input.  Points outside the computed range cannot occur (the range is
    computed from the data); x and y ranges pad by 5% so extreme points
    do not sit on the border. *)

val print :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  ?title:string ->
  series list ->
  unit
(** {!render} to stdout with an optional underlined title. *)
