(* A small reusable domain pool.  Work arrives as thunks on a shared
   queue; worker domains sleep on a condition variable between bursts.
   The submitting domain participates in execution while it waits, which
   also makes nested submissions from inside a task deadlock-free: the
   worker that submits keeps draining the queue instead of blocking. *)

module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

(* Shared across every pool: depth of the pending queue (sampled at each
   push/pop), tasks executed, and per-task busy time.  Busy time is only
   clocked while metrics are enabled, so the disabled path never calls
   the clock. *)
let m_queue_depth = Metrics.gauge "pool.queue.depth"
let m_tasks = Metrics.counter "pool.tasks"
let m_busy_us = Metrics.counter "pool.busy_us"
let m_task_us = Metrics.histogram "pool.task_us"
let m_at_exit = Metrics.counter "pool.default.at_exit_registrations"
let m_async_exn = Metrics.counter "pool.async.exceptions"

type t = {
  jobs : int;
  mutex : Dmutex.t;
  pending : (unit -> unit) Queue.t;
  wake : Condition.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
}

let sample_depth_locked t = Metrics.set m_queue_depth (float_of_int (Queue.length t.pending))

(* Run one task with its busy-time accounting.  [task] never raises: the
   submission wrapper in [run_tasks] already catches. *)
let run_task task =
  if Metrics.enabled () then begin
    let t0 = Trace.now_us () in
    task ();
    let dt = Trace.now_us () -. t0 in
    Metrics.incr m_tasks;
    Metrics.add m_busy_us (int_of_float dt);
    Metrics.observe m_task_us dt
  end
  else task ()

let rec worker_loop t =
  Dmutex.lock t.mutex;
  while Queue.is_empty t.pending && not t.closing do
    Dmutex.wait t.wake t.mutex
  done;
  if Queue.is_empty t.pending then Dmutex.unlock t.mutex (* closing *)
  else begin
    let task = Queue.pop t.pending in
    sample_depth_locked t;
    Dmutex.unlock t.mutex;
    run_task task;
    worker_loop t
  end

let default_jobs () =
  match Sys.getenv_opt "OPPROX_JOBS" with
  | Some s when (match int_of_string_opt (String.trim s) with Some n -> n >= 1 | None -> false)
    ->
      int_of_string (String.trim s)
  | _ -> Stdlib.max 1 (Stdlib.min 64 (Domain.recommended_domain_count ()))

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      mutex = Dmutex.create ();
      pending = Queue.create ();
      wake = Condition.create ();
      closing = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Dmutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.wake;
  Dmutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Run every task and block until all have settled; re-raise the first
   exception observed.  Callable from any domain, including a pool worker. *)
let run_tasks t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.jobs <= 1 || t.workers = [] || n = 1 then Array.iter (fun task -> task ()) tasks
  else begin
    let remaining = ref n in
    let finished = Condition.create () in
    let error = ref None in
    let wrap task () =
      (try task ()
       with e ->
         Dmutex.lock t.mutex;
         if !error = None then error := Some e;
         Dmutex.unlock t.mutex);
      Dmutex.lock t.mutex;
      decr remaining;
      if !remaining = 0 then Condition.broadcast finished;
      Dmutex.unlock t.mutex
    in
    Dmutex.lock t.mutex;
    Array.iter (fun task -> Queue.push (wrap task) t.pending) tasks;
    sample_depth_locked t;
    Condition.broadcast t.wake;
    (* Help execute until every task of this submission has completed.
       Helping may also pick up tasks from concurrent submissions; that
       is harmless and keeps nested submissions live. *)
    let rec help () =
      if !remaining > 0 then
        if not (Queue.is_empty t.pending) then begin
          let task = Queue.pop t.pending in
          sample_depth_locked t;
          Dmutex.unlock t.mutex;
          run_task task;
          Dmutex.lock t.mutex;
          help ()
        end
        else begin
          Dmutex.wait finished t.mutex;
          help ()
        end
    in
    help ();
    Dmutex.unlock t.mutex;
    match !error with Some e -> raise e | None -> ()
  end

(* ---------------------------------------------------------- default pool *)

let default_pool = ref None
let default_lock = Dmutex.create ()

(* One at_exit hook for the lifetime of the process, registered the
   first time a default pool exists; it shuts down whatever the default
   is at exit.  Earlier revisions registered a fresh closure per
   [set_default_jobs] call, accumulating hooks that re-joined every pool
   ever installed. *)
let at_exit_registered = ref false

let register_default_at_exit_locked () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Metrics.incr m_at_exit;
    at_exit (fun () ->
        Dmutex.lock default_lock;
        let p = !default_pool in
        default_pool := None;
        Dmutex.unlock default_lock;
        match p with Some p -> shutdown p | None -> ())
  end

let default () =
  Dmutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        register_default_at_exit_locked ();
        p
  in
  Dmutex.unlock default_lock;
  pool

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Dmutex.lock default_lock;
  let old = !default_pool in
  let p = create ~jobs:n () in
  default_pool := Some p;
  register_default_at_exit_locked ();
  Dmutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

(* ------------------------------------------------------ async submission *)

(* Fire-and-forget: enqueue one task for whichever worker wakes first and
   return immediately.  The serving layer's accept loop hands connections
   off through this.  Exceptions escaping the task are contained (a raise
   must not kill a worker domain): they are counted and reported on
   stderr, never re-raised anywhere. *)
let async ?pool task =
  let t = match pool with Some p -> p | None -> default () in
  let task () =
    try task ()
    with e ->
      Metrics.incr m_async_exn;
      Printf.eprintf "Pool.async: task raised %s\n%!" (Printexc.to_string e)
  in
  if t.jobs <= 1 || t.workers = [] then task ()
  else begin
    Dmutex.lock t.mutex;
    if t.closing then begin
      (* The pool is draining; run in the caller rather than drop work. *)
      Dmutex.unlock t.mutex;
      task ()
    end
    else begin
      Queue.push task t.pending;
      sample_depth_locked t;
      Condition.signal t.wake;
      Dmutex.unlock t.mutex
    end
  end

(* ----------------------------------------------------------- combinators *)

let chunk_size ?chunk t n =
  match chunk with
  | Some c -> if c < 1 then invalid_arg "Pool.parallel_map: chunk must be >= 1" else c
  | None -> Stdlib.max 1 (n / (t.jobs * 4))

let chunk_tasks ~chunk n body =
  let n_chunks = (n + chunk - 1) / chunk in
  Array.init n_chunks (fun ci () ->
      let lo = ci * chunk in
      let hi = Stdlib.min n (lo + chunk) - 1 in
      for i = lo to hi do
        body i
      done)

let parallel_mapi ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else
    let t = match pool with Some p -> p | None -> default () in
    if t.jobs <= 1 || t.workers = [] then Array.mapi f arr
    else begin
      let chunk = chunk_size ?chunk t n in
      let out = Array.make n None in
      run_tasks t (chunk_tasks ~chunk n (fun i -> out.(i) <- Some (f i arr.(i))));
      Array.map (function Some v -> v | None -> assert false) out
    end

let parallel_map ?pool ?chunk f arr = parallel_mapi ?pool ?chunk (fun _ x -> f x) arr

let parallel_iter ?pool ?chunk f arr =
  let n = Array.length arr in
  if n = 0 then ()
  else
    let t = match pool with Some p -> p | None -> default () in
    if t.jobs <= 1 || t.workers = [] then Array.iter f arr
    else
      let chunk = chunk_size ?chunk t n in
      run_tasks t (chunk_tasks ~chunk n (fun i -> f arr.(i)))

let parallel_map_seeded ?pool ?chunk ~seed f arr =
  (* Seed splitting happens sequentially, before any parallelism: each
     task's generator depends only on (seed, index). *)
  let master = Rng.create seed in
  let rngs = Array.map (fun _ -> Rng.split master) arr in
  parallel_mapi ?pool ?chunk (fun i x -> f ~rng:rngs.(i) x) arr
