(* Work-stealing execution engine.

   Each worker domain owns a Chase–Lev deque: the owner pushes and pops
   closures at the bottom (LIFO, cache-hot), thieves steal from the top
   (FIFO) with a single compare-and-set.  External domains submit through
   a small mutex-guarded inject queue; workers that find nothing to steal
   back off exponentially and then park on a condition variable, so an
   idle pool costs nothing and — crucially for hosts with fewer cores
   than [jobs] — oversubscribed domains stay parked instead of turning
   every minor GC into a stop-the-world sync storm.  The number of
   simultaneously *awake* domains is bounded by [active_cap] (the host's
   recommended domain count by default), while [jobs] remains the upper
   bound on available parallelism.

   Determinism is unchanged from the queue-based engine this replaces:
   combinators write [f arr.(i)] into slot [i], and all seed-splitting
   happens sequentially before any parallel execution. *)

module Metrics = Opprox_obs.Metrics
module Trace = Opprox_obs.Trace

let m_queue_depth = Metrics.gauge "pool.queue.depth" (* inject queue, sampled per push/pop *)
let m_tasks = Metrics.counter "pool.tasks"
let m_busy_us = Metrics.counter "pool.busy_us"
let m_task_us = Metrics.histogram "pool.task_us"
let m_at_exit = Metrics.counter "pool.default.at_exit_registrations"
let m_async_exn = Metrics.counter "pool.async.exceptions"
let m_steal_attempts = Metrics.counter "pool.steal.attempts"
let m_steal_success = Metrics.counter "pool.steal.success"
let m_steal_parks = Metrics.counter "pool.steal.parks"
let m_deque_pushes = Metrics.counter "pool.deque.pushes"
let m_deque_pops = Metrics.counter "pool.deque.pops"
let m_deque_splits = Metrics.counter "pool.deque.splits"
let m_bad_jobs = Metrics.counter "pool.env.bad_jobs"

(* ------------------------------------------------------ Chase–Lev deque *)

module Deque = struct
  (* The owner pushes/pops [bottom]; thieves CAS [top].  The buffer is a
     single mutable pointer to an immutable-shape record so a thief reads
     (arr, mask) consistently; growth copies the live window [top, bottom)
     into a doubled buffer.  A thief orders its reads top, bottom, buffer:
     seeing a [bottom] past index [t] happens-after the push of entry [t],
     which happens-after any growth that relocated it, so the buffer the
     thief then reads contains entry [t].  The CAS on [top] validates the
     read before the task is returned. *)
  type buffer = { arr : (unit -> unit) array; mask : int }

  type t = {
    mutable buf : buffer;
    top : int Atomic.t;
    bottom : int Atomic.t;
  }

  let dummy () = ()
  let create () = { buf = { arr = Array.make 64 dummy; mask = 63 }; top = Atomic.make 0; bottom = Atomic.make 0 }

  (* Approximate size; exact for the owner. *)
  let size d = Atomic.get d.bottom - Atomic.get d.top

  let grow d b t =
    let old = d.buf in
    let n = Array.length old.arr in
    let arr = Array.make (2 * n) dummy in
    let mask = (2 * n) - 1 in
    for i = t to b - 1 do
      arr.(i land mask) <- old.arr.(i land old.mask)
    done;
    d.buf <- { arr; mask }

  (* Owner only. *)
  let push d task =
    let b = Atomic.get d.bottom and t = Atomic.get d.top in
    if b - t > d.buf.mask then grow d b t;
    let buf = d.buf in
    buf.arr.(b land buf.mask) <- task;
    Atomic.set d.bottom (b + 1)

  (* Owner only. *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      Atomic.set d.bottom t;
      None
    end
    else begin
      let buf = d.buf in
      let task = buf.arr.(b land buf.mask) in
      if b > t then begin
        buf.arr.(b land buf.mask) <- dummy;
        Some task
      end
      else begin
        (* Last element: race against thieves for it. *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then Some task else None
      end
    end

  (* Any domain.  [None] covers both "empty" and "lost the race"; the
     caller's search loop revisits victims anyway. *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else begin
      let buf = d.buf in
      let task = buf.arr.(t land buf.mask) in
      if Atomic.compare_and_set d.top t (t + 1) then Some task else None
    end
end

(* ------------------------------------------------------------- the pool *)

type t = {
  jobs : int;
  active_cap : int;
  deques : Deque.t array; (* one per spawned worker: ids 0 .. jobs-2 *)
  inject : (unit -> unit) Queue.t;
  inject_n : int Atomic.t; (* mirrors Queue.length, read without the lock *)
  inject_mutex : Dmutex.t;
  park_mutex : Dmutex.t;
  park_cond : Condition.t;
  n_parked : int Atomic.t;
  n_searching : int Atomic.t;
  n_active : int Atomic.t;
  closing : bool Atomic.t;
  mutable workers : unit Domain.t list;
}

(* Identifies the current domain as a worker of some pool, so nested
   submissions go straight onto its own deque. *)
let dls_key : (t * int) option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let worker_slot pool =
  match !(Domain.DLS.get dls_key) with
  | Some (p, id) when p == pool -> Some id
  | _ -> None

let work_visible t =
  Atomic.get t.inject_n > 0 || Array.exists (fun d -> Deque.size d > 0) t.deques

(* Wake one parked worker.  Acquiring the park mutex orders the signal
   after any in-flight park decision, so a worker that saw no work before
   we published ours is guaranteed to be in [wait] when the signal fires. *)
let wake_one t =
  if Atomic.get t.n_parked > 0 then begin
    Dmutex.lock t.park_mutex;
    Condition.signal t.park_cond;
    Dmutex.unlock t.park_mutex
  end

(* Recruit a worker for freshly published batch work, but never wake more
   domains than the host can actually run: waking a 4th domain on a
   single-core box only adds GC-synchronisation stalls. *)
let recruit t =
  if
    Atomic.get t.n_searching = 0
    && Atomic.get t.n_parked > 0
    && Atomic.get t.n_active < t.active_cap
  then wake_one t

(* Run one task with its busy-time accounting.  Tasks handed to the
   engine never raise: batch wrappers and [async] both catch. *)
let run_task task =
  if Metrics.enabled () then begin
    let t0 = Trace.now_us () in
    task ();
    let dt = Trace.now_us () -. t0 in
    Metrics.incr m_tasks;
    Metrics.add m_busy_us (int_of_float dt);
    Metrics.observe m_task_us dt
  end
  else task ()

let sample_inject_depth t = Metrics.set m_queue_depth (float_of_int (Atomic.get t.inject_n))

let inject_task t task =
  Dmutex.lock t.inject_mutex;
  Queue.push task t.inject;
  Atomic.incr t.inject_n;
  sample_inject_depth t;
  Dmutex.unlock t.inject_mutex

let try_inject t =
  if Atomic.get t.inject_n > 0 then begin
    Dmutex.lock t.inject_mutex;
    let r =
      if Queue.is_empty t.inject then None
      else begin
        Atomic.decr t.inject_n;
        sample_inject_depth t;
        Some (Queue.pop t.inject)
      end
    in
    Dmutex.unlock t.inject_mutex;
    r
  end
  else None

(* Cheap per-searcher xorshift for victim randomisation.  Scheduling
   randomness only — results are written by index, so victim order can
   never reach the output. *)
let next_rand state =
  let x = !state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  state := x land max_int;
  !state

let try_steal t ~exclude rand =
  let n = Array.length t.deques in
  if n = 0 then None
  else begin
    let start = next_rand rand mod n in
    let rec go k =
      if k = n then None
      else begin
        let i = (start + k) mod n in
        if i = exclude then go (k + 1)
        else begin
          Metrics.incr m_steal_attempts;
          match Deque.steal t.deques.(i) with
          | Some task ->
              Metrics.incr m_steal_success;
              Some task
          | None -> go (k + 1)
        end
      end
    in
    go 0
  end

(* One full sweep: own deque (workers), then the inject queue, then every
   victim in random order. *)
let sweep t ~self rand =
  let own =
    match self with
    | Some id -> (
        match Deque.pop t.deques.(id) with
        | Some task ->
            Metrics.incr m_deque_pops;
            Some task
        | None -> None)
    | None -> None
  in
  match own with
  | Some _ as s -> s
  | None -> (
      match try_inject t with
      | Some _ as s -> s
      | None -> try_steal t ~exclude:(match self with Some id -> id | None -> -1) rand)

(* Sweep with bounded exponential backoff between rounds; gives up (and
   lets the caller park) after [max_rounds] empty sweeps. *)
let search t ~self rand =
  Atomic.incr t.n_searching;
  let max_rounds = 6 in
  let rec rounds r =
    match sweep t ~self rand with
    | Some _ as s -> s
    | None ->
        if r >= max_rounds then None
        else begin
          for _ = 1 to 16 lsl r do
            Domain.cpu_relax ()
          done;
          rounds (r + 1)
        end
  in
  let r = rounds 0 in
  Atomic.decr t.n_searching;
  r

let rec worker_loop t id rand =
  match search t ~self:(Some id) rand with
  | Some task ->
      (* Propagate the wake-up chain while work remains visible; cheap
         guards first so the common no-op costs three atomic loads. *)
      if
        Atomic.get t.n_searching = 0
        && Atomic.get t.n_parked > 0
        && Atomic.get t.n_active < t.active_cap
        && work_visible t
      then wake_one t;
      run_task task;
      worker_loop t id rand
  | None ->
      if Atomic.get t.closing then
        if work_visible t then worker_loop t id rand else Atomic.decr t.n_active
      else begin
        Dmutex.lock t.park_mutex;
        Atomic.incr t.n_parked;
        (* Re-check under the park mutex: a submitter that published work
           after our empty sweep is ordered to see [n_parked > 0] and will
           signal once it acquires this mutex. *)
        if work_visible t || Atomic.get t.closing then begin
          Atomic.decr t.n_parked;
          Dmutex.unlock t.park_mutex
        end
        else begin
          Atomic.decr t.n_active;
          Metrics.incr m_steal_parks;
          Dmutex.wait t.park_cond t.park_mutex;
          Atomic.decr t.n_parked;
          Atomic.incr t.n_active;
          Dmutex.unlock t.park_mutex
        end;
        worker_loop t id rand
      end

let auto_jobs () = Stdlib.max 1 (Stdlib.min 64 (Domain.recommended_domain_count ()))

let default_jobs () =
  match Sys.getenv_opt "OPPROX_JOBS" with
  | None -> auto_jobs ()
  | Some s -> (
      let s = String.trim s in
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          if s <> "" then begin
            (* Malformed values used to fall back silently; make the
               misconfiguration observable. *)
            Metrics.incr m_bad_jobs;
            Printf.eprintf "opprox: ignoring malformed OPPROX_JOBS=%S (want a positive integer)\n%!"
              s
          end;
          auto_jobs ())

let create ?jobs ?active () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let active_cap =
    match active with
    | Some a ->
        if a < 1 then invalid_arg "Pool.create: active must be >= 1";
        Stdlib.min a jobs
    | None -> Stdlib.max 1 (Stdlib.min jobs (Domain.recommended_domain_count ()))
  in
  let t =
    {
      jobs;
      active_cap;
      deques = Array.init (jobs - 1) (fun _ -> Deque.create ());
      inject = Queue.create ();
      inject_n = Atomic.make 0;
      inject_mutex = Dmutex.create ~name:"pool.inject" ();
      park_mutex = Dmutex.create ~name:"pool.park" ();
      park_cond = Condition.create ();
      n_parked = Atomic.make 0;
      n_searching = Atomic.make 0;
      n_active = Atomic.make 0;
      closing = Atomic.make false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun id ->
        Domain.spawn (fun () ->
            Domain.DLS.get dls_key := Some (t, id);
            Atomic.incr t.n_active;
            worker_loop t id (ref ((id * 0x9E3779B9) lor 1))));
  t

let jobs t = t.jobs
let active_cap t = t.active_cap

let shutdown t =
  Atomic.set t.closing true;
  Dmutex.lock t.park_mutex;
  Condition.broadcast t.park_cond;
  Dmutex.unlock t.park_mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* --------------------------------------------------------------- batches *)

(* One [run_tasks] (or adaptive map) submission.  [remaining] counts
   unfinished tasks and may grow while the batch runs (adaptive splits);
   the error slot is settled with a compare-and-set *before* the final
   decrement, so the waiter that observes [remaining = 0] cannot read a
   torn or missing exception. *)
type batch = {
  remaining : int Atomic.t;
  first_error : exn option Atomic.t;
  bmutex : Dmutex.t;
  bcond : Condition.t;
}

let make_batch n =
  {
    remaining = Atomic.make n;
    first_error = Atomic.make None;
    bmutex = Dmutex.create ~name:"pool.batch" ();
    bcond = Condition.create ();
  }

let record_error b e =
  if Atomic.get b.first_error = None then
    ignore (Atomic.compare_and_set b.first_error None (Some e))

let batch_task_done b =
  if Atomic.fetch_and_add b.remaining (-1) = 1 then begin
    Dmutex.lock b.bmutex;
    Condition.broadcast b.bcond;
    Dmutex.unlock b.bmutex
  end

let wrap b task () =
  (try task () with e -> record_error b e);
  batch_task_done b

(* Put one ready-to-run closure where the current domain is allowed to
   publish it: its own deque when it is a worker of [t], the inject queue
   otherwise. *)
let publish t task =
  (match worker_slot t with
  | Some id ->
      Deque.push t.deques.(id) task;
      Metrics.incr m_deque_pushes
  | None -> inject_task t task);
  recruit t

(* Execute pool work until [b.remaining] hits zero, helping with whatever
   is runnable in the meantime (which keeps nested submissions live), and
   parking on the batch condition only when nothing is runnable anywhere —
   at that point every unfinished task of [b] is executing in some other
   domain, and the final [batch_task_done] will signal.  [~counted]
   marks a submitter that is not a pool worker: it is already counted in
   [n_active] (see [with_submitter_active]) and steps out of the count
   while blocked on the batch condition. *)
let help_until_done t b ~counted =
  let self = worker_slot t in
  let rand = ref ((Domain.self () :> int) lxor 0x5DEECE6 lor 1) in
  while Atomic.get b.remaining > 0 do
    match sweep t ~self rand with
    | Some task -> run_task task
    | None ->
        Dmutex.lock b.bmutex;
        if Atomic.get b.remaining > 0 && not (work_visible t) then begin
          if counted then Atomic.decr t.n_active;
          Dmutex.wait b.bcond b.bmutex;
          if counted then Atomic.incr t.n_active
        end;
        Dmutex.unlock b.bmutex
  done

(* A batch submitter is a running domain: counting it against the active
   cap *before* it publishes means [recruit] never wakes a worker the
   host has no core for.  On a single-core box a batch therefore runs
   entirely in the submitter (workers stay parked) — full fan-out on
   multicore is unchanged, the submitter merely occupies one slot. *)
let with_submitter_active t f =
  let counted = worker_slot t = None in
  if counted then Atomic.incr t.n_active;
  Fun.protect ~finally:(fun () -> if counted then Atomic.decr t.n_active) (fun () -> f ~counted)

let finish_batch b =
  match Atomic.get b.first_error with Some e -> raise e | None -> ()

(* Run every task and block until all have settled; re-raise the first
   exception observed.  Callable from any domain, including a pool worker. *)
let run_tasks t tasks =
  let n = Array.length tasks in
  if n = 0 then ()
  else if t.jobs <= 1 || t.workers = [] || n = 1 then Array.iter (fun task -> task ()) tasks
  else begin
    let b = make_batch n in
    with_submitter_active t (fun ~counted ->
        (match worker_slot t with
        | Some id ->
            let d = t.deques.(id) in
            Array.iter
              (fun task ->
                Deque.push d (wrap b task);
                Metrics.incr m_deque_pushes)
              tasks;
            recruit t
        | None ->
            Dmutex.lock t.inject_mutex;
            Array.iter
              (fun task ->
                Queue.push (wrap b task) t.inject;
                Atomic.incr t.inject_n)
              tasks;
            sample_inject_depth t;
            Dmutex.unlock t.inject_mutex;
            recruit t);
        help_until_done t b ~counted);
    finish_batch b
  end

(* ---------------------------------------------------------- default pool *)

let default_pool = ref None
let default_lock = Dmutex.create ~name:"pool.default" ()

(* One at_exit hook for the lifetime of the process, registered the
   first time a default pool exists; it shuts down whatever the default
   is at exit. *)
let at_exit_registered = ref false

let register_default_at_exit_locked () =
  if not !at_exit_registered then begin
    at_exit_registered := true;
    Metrics.incr m_at_exit;
    at_exit (fun () ->
        Dmutex.lock default_lock;
        let p = !default_pool in
        default_pool := None;
        Dmutex.unlock default_lock;
        match p with Some p -> shutdown p | None -> ())
  end

let default () =
  Dmutex.lock default_lock;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create () in
        default_pool := Some p;
        register_default_at_exit_locked ();
        p
  in
  Dmutex.unlock default_lock;
  pool

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Dmutex.lock default_lock;
  let old = !default_pool in
  let p = create ~jobs:n () in
  default_pool := Some p;
  register_default_at_exit_locked ();
  Dmutex.unlock default_lock;
  match old with Some p -> shutdown p | None -> ()

(* ------------------------------------------------------ async submission *)

(* Fire-and-forget: publish one task and return immediately.  The serving
   layer's accept loop hands connections off through this, so the wake-up
   is not throttled by [active_cap] — a parked worker is always preferable
   to a request waiting behind a busy one.  Exceptions escaping the task
   are contained: counted, reported on stderr, never re-raised. *)
let async ?pool task =
  let t = match pool with Some p -> p | None -> default () in
  let task () =
    try task ()
    with e ->
      Metrics.incr m_async_exn;
      Printf.eprintf "Pool.async: task raised %s\n%!" (Printexc.to_string e)
  in
  if t.jobs <= 1 || t.workers = [] || Atomic.get t.closing then task ()
  else begin
    (match worker_slot t with
    | Some id ->
        Deque.push t.deques.(id) task;
        Metrics.incr m_deque_pushes
    | None -> inject_task t task);
    if Atomic.get t.n_searching = 0 then wake_one t
  end

(* ----------------------------------------------------------- combinators *)

(* Legacy fixed-size chunking, kept for callers that need an exact task
   shape (tests pin chunk boundaries).  [?grain] is the adaptive engine's
   knob and the default. *)
let chunk_tasks ~chunk n body =
  let n_chunks = (n + chunk - 1) / chunk in
  Array.init n_chunks (fun ci () ->
      let lo = ci * chunk in
      let hi = Stdlib.min n (lo + chunk) - 1 in
      for i = lo to hi do
        body i
      done)

(* Adaptive execution of [body 0 .. body (n-1)]: the running task splits
   off the upper half of its range — publishing it for thieves — only
   while idle capacity exists (a worker is searching, or one is parked
   and the active count is under the cap), and otherwise chews through
   one [grain]-sized block before re-checking.  With no idle capacity
   (e.g. a single-core host) this degrades to a sequential loop whose
   only overhead is a few atomic loads per block. *)
let idle_capacity t =
  Atomic.get t.n_searching > 0
  || (Atomic.get t.n_parked > 0 && Atomic.get t.n_active < t.active_cap)

let adaptive_run t ~grain ~n body =
  if n > 0 then begin
    let b = make_batch 1 in
    let rec range lo hi () =
      (try chew lo hi with e -> record_error b e);
      batch_task_done b
    and chew lo hi =
      if hi - lo <= grain then
        for i = lo to hi - 1 do
          body i
        done
      else if idle_capacity t then begin
        let mid = (lo + hi) lsr 1 in
        ignore (Atomic.fetch_and_add b.remaining 1);
        Metrics.incr m_deque_splits;
        publish t (range mid hi);
        chew lo mid
      end
      else begin
        let block = Stdlib.min (lo + grain) hi in
        for i = lo to block - 1 do
          body i
        done;
        chew block hi
      end
    in
    (* The root range is published and immediately picked back up by the
       submitter's own help loop; thieves peel ranges off as splits
       publish them. *)
    with_submitter_active t (fun ~counted ->
        publish t (range 0 n);
        help_until_done t b ~counted);
    finish_batch b
  end

let validate_grain = function
  | Some g when g < 1 -> invalid_arg "Pool.parallel_map: grain must be >= 1"
  | Some g -> g
  | None -> 1

let parallel_body ?pool ?chunk ?grain n body =
  if n > 0 then begin
    let t = match pool with Some p -> p | None -> default () in
    if t.jobs <= 1 || t.workers = [] || n = 1 then
      for i = 0 to n - 1 do
        body i
      done
    else
      match chunk with
      | Some c ->
          if c < 1 then invalid_arg "Pool.parallel_map: chunk must be >= 1";
          run_tasks t (chunk_tasks ~chunk:c n body)
      | None -> adaptive_run t ~grain:(validate_grain grain) ~n body
  end

let parallel_mapi ?pool ?chunk ?grain f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_body ?pool ?chunk ?grain n (fun i -> out.(i) <- Some (f i arr.(i)));
    Array.map (function Some v -> v | None -> assert false) out
  end

let parallel_map ?pool ?chunk ?grain f arr = parallel_mapi ?pool ?chunk ?grain (fun _ x -> f x) arr

let parallel_iter ?pool ?chunk ?grain f arr =
  parallel_body ?pool ?chunk ?grain (Array.length arr) (fun i -> f arr.(i))

let parallel_map_seeded ?pool ?chunk ?grain ~seed f arr =
  (* Seed splitting happens sequentially, before any parallelism: each
     task's generator depends only on (seed, index). *)
  let master = Rng.create seed in
  let rngs = Array.map (fun _ -> Rng.split master) arr in
  parallel_mapi ?pool ?chunk ?grain (fun i x -> f ~rng:rngs.(i) x) arr
