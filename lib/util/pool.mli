(** Domain-parallel execution engine.

    A reusable pool of worker domains (OCaml 5 shared-memory parallelism)
    behind deterministic, chunked [parallel_map] / [parallel_iter]
    combinators.  The pool exists so that the embarrassingly parallel hot
    paths — training-data collection, the phase-agnostic oracle's
    exhaustive sweep, and the experiment matrix — fan out across cores
    without changing their observable output.

    {2 Determinism contract}

    [parallel_map f arr] writes [f arr.(i)] into slot [i] of the result:
    the output is {e index-preserving} and therefore identical to
    [Array.map f arr] regardless of the number of domains, the chunk
    size, or scheduling order — provided [f] itself is pure (or keyed on
    its argument alone, like the driver's memoized exact runs).  Tasks
    that need randomness use {!parallel_map_seeded}, which splits one
    master seed into an independent {!Rng.t} per index {e sequentially}
    before any parallel execution starts, so the stream each task sees is
    a function of its index and the master seed only.

    {2 Sizing}

    The default worker count is the [OPPROX_JOBS] environment variable
    when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  With one job every combinator
    degrades to the plain sequential implementation — no domains are
    spawned, no locks are taken.

    {2 Observability}

    The parallel path feeds the {!Opprox_obs.Metrics} registry: the
    [pool.queue.depth] gauge samples the pending-queue length at every
    push/pop, [pool.tasks] counts tasks executed through the queue, and
    [pool.busy_us] / [pool.task_us] accumulate per-task busy time
    (clocked only while metrics collection is enabled).  The sequential
    fast path stays uninstrumented. *)

type t
(** A pool of worker domains.  The pool owning [jobs t = n] runs tasks on
    [n] domains in total: [n - 1] spawned workers plus the submitting
    domain, which participates while it waits. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}).  Requires [jobs >= 1]. *)

val jobs : t -> int
(** Total parallelism of the pool (workers + submitter). *)

val shutdown : t -> unit
(** Join the pool's worker domains.  Idempotent.  Submitting work to a
    pool after [shutdown] falls back to sequential execution. *)

val default_jobs : unit -> int
(** [OPPROX_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()] (capped at 64). *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_jobs} workers and joined automatically at exit. *)

val set_default_jobs : int -> unit
(** Replace the process-wide pool with one of the given size (the
    [--jobs] CLI flag).  Shuts the previous default pool down.  A single
    process-wide [at_exit] hook (registered once, whatever the number of
    replacements) joins whichever pool is the default at exit. *)

val async : ?pool:t -> (unit -> unit) -> unit
(** [async task] enqueues one fire-and-forget task on the pool ([?pool]
    defaults to {!default}) and returns immediately; some worker domain
    runs it as soon as one is free.  This is the serving layer's
    hand-off: an accept loop stays responsive while request handlers run
    on the workers.  With one job (or after {!shutdown}) the task runs
    synchronously in the caller.  An exception escaping the task never
    kills a worker: it is counted ([pool.async.exceptions]) and reported
    on stderr. *)

val parallel_map : ?pool:t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f arr] is [Array.map f arr] evaluated on the pool
    ([?pool] defaults to {!default}).  Work is handed out in contiguous
    chunks of [?chunk] elements (default: enough for ~4 chunks per
    domain).  If any [f] raises, the first exception observed is
    re-raised in the caller after all tasks settle. *)

val parallel_iter : ?pool:t -> ?chunk:int -> ('a -> unit) -> 'a array -> unit
(** [parallel_iter f arr] applies [f] to every element on the pool; same
    chunking and exception behaviour as {!parallel_map}. *)

val parallel_mapi : ?pool:t -> ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Index-aware variant of {!parallel_map}. *)

val parallel_map_seeded :
  ?pool:t -> ?chunk:int -> seed:int -> (rng:Rng.t -> 'a -> 'b) -> 'a array -> 'b array
(** [parallel_map_seeded ~seed f arr] derives one independent generator
    per element by splitting [Rng.create seed] sequentially (SplitMix64
    splitting), then maps in parallel.  Output is bit-identical for a
    fixed [seed] whatever the parallelism. *)
