(** Work-stealing domain-parallel execution engine.

    A reusable pool of worker domains (OCaml 5 shared-memory parallelism)
    behind deterministic [parallel_map] / [parallel_iter] combinators.
    Each worker owns a Chase–Lev deque: the owner pushes and pops work at
    one end, idle workers steal from the other with a single
    compare-and-set, so in steady state a running task takes no lock at
    all.  External domains submit through a small inject queue.  Workers
    that find nothing to steal back off exponentially and park on a
    condition variable; the number of simultaneously {e awake} domains is
    bounded by the pool's {e active cap} (the host's recommended domain
    count by default), so requesting more jobs than the machine has cores
    costs parked domains rather than GC-synchronisation storms.  A batch
    submitter counts against the cap while it helps: on a single-core
    host a batch runs entirely in the submitting domain and the workers
    never wake.

    {2 Determinism contract}

    [parallel_map f arr] writes [f arr.(i)] into slot [i] of the result:
    the output is {e index-preserving} and therefore identical to
    [Array.map f arr] regardless of the number of domains, the grain or
    chunk size, or which domain stole which range — provided [f] itself
    is pure (or keyed on its argument alone, like the driver's memoized
    exact runs).  Victim selection is randomized, but scheduling
    randomness can never reach the output.  Tasks that need randomness
    use {!parallel_map_seeded}, which splits one master seed into an
    independent {!Rng.t} per index {e sequentially} before any parallel
    execution starts.

    {2 Chunking}

    By default work is split {e adaptively}: the task executing a range
    halves it — publishing the upper half for thieves — only while idle
    capacity exists, and otherwise advances one [grain]-sized block
    (default 1) before re-checking.  On a saturated or single-core pool
    this degrades to a sequential loop with a few atomic loads of
    overhead per block.  Pass [~grain] to set the smallest range worth
    stealing when per-element cost is tiny (memo-hit sweeps want tens of
    elements per block); pass [~chunk] to force the legacy fixed
    contiguous chunking with an exact task shape.

    {2 Observability}

    The engine feeds the {!Opprox_obs.Metrics} registry: [pool.tasks],
    [pool.busy_us] and [pool.task_us] account executed tasks;
    [pool.steal.attempts] / [pool.steal.success] / [pool.steal.parks]
    describe the stealing traffic; [pool.deque.pushes] /
    [pool.deque.pops] / [pool.deque.splits] the deque traffic;
    [pool.queue.depth] samples the inject queue; [pool.env.bad_jobs]
    counts malformed [OPPROX_JOBS] values (also reported on stderr).
    The sequential fast path stays uninstrumented. *)

type t
(** A pool of worker domains.  The pool owning [jobs t = n] can run tasks
    on [n] domains in total: [n - 1] spawned workers plus the submitting
    domain, which participates while it waits. *)

val create : ?jobs:int -> ?active:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] defaults
    to {!default_jobs}).  Requires [jobs >= 1].  [active] caps how many
    domains are woken to run concurrently (clamped to [jobs]; defaults to
    the host's recommended domain count): spare workers stay parked until
    capacity frees up.  Tests force [~active:jobs] to exercise real
    stealing on small hosts. *)

val jobs : t -> int
(** Total parallelism of the pool (workers + submitter). *)

val active_cap : t -> int
(** Maximum number of domains the pool wakes to run at once. *)

val shutdown : t -> unit
(** Join the pool's worker domains (draining any published work first).
    Idempotent.  Submitting work to a pool after [shutdown] falls back to
    sequential execution. *)

val default_jobs : unit -> int
(** [OPPROX_JOBS] if set to a positive integer, otherwise
    [Domain.recommended_domain_count ()] (capped at 64).  A malformed
    non-empty value warns on stderr and bumps [pool.env.bad_jobs] instead
    of silently falling back. *)

val default : unit -> t
(** The process-wide shared pool, created on first use with
    {!default_jobs} workers and joined automatically at exit. *)

val set_default_jobs : int -> unit
(** Replace the process-wide pool with one of the given size (the
    [--jobs] CLI flag).  Shuts the previous default pool down.  A single
    process-wide [at_exit] hook (registered once, whatever the number of
    replacements) joins whichever pool is the default at exit. *)

val async : ?pool:t -> (unit -> unit) -> unit
(** [async task] publishes one fire-and-forget task on the pool ([?pool]
    defaults to {!default}) and returns immediately; some worker domain
    runs it as soon as one is free.  This is the serving layer's
    hand-off: an accept loop stays responsive while request handlers run
    on the workers.  The wake-up is not throttled by the active cap — a
    parked worker beats a queued request.  With one job (or after
    {!shutdown}) the task runs synchronously in the caller.  An exception
    escaping the task never kills a worker: it is counted
    ([pool.async.exceptions]) and reported on stderr. *)

val parallel_map : ?pool:t -> ?chunk:int -> ?grain:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map f arr] is [Array.map f arr] evaluated on the pool
    ([?pool] defaults to {!default}) with adaptive splitting down to
    [?grain] elements (default 1); [?chunk] forces fixed contiguous
    chunks instead.  If any [f] raises, the first exception observed is
    re-raised in the caller after all tasks settle. *)

val parallel_iter : ?pool:t -> ?chunk:int -> ?grain:int -> ('a -> unit) -> 'a array -> unit
(** [parallel_iter f arr] applies [f] to every element on the pool; same
    splitting and exception behaviour as {!parallel_map}. *)

val parallel_mapi : ?pool:t -> ?chunk:int -> ?grain:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Index-aware variant of {!parallel_map}. *)

val parallel_map_seeded :
  ?pool:t ->
  ?chunk:int ->
  ?grain:int ->
  seed:int ->
  (rng:Rng.t -> 'a -> 'b) ->
  'a array ->
  'b array
(** [parallel_map_seeded ~seed f arr] derives one independent generator
    per element by splitting [Rng.create seed] sequentially (SplitMix64
    splitting), then maps in parallel.  Output is bit-identical for a
    fixed [seed] whatever the parallelism. *)
