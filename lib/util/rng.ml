type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Mixing function from SplitMix64: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to OCaml's 63-bit non-negative range before reducing. *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let uniform t =
  (* 53 random bits scaled into [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let range t lo hi = lo +. (uniform t *. (hi -. lo))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Box–Muller; discards the second deviate for statelessness. *)
  let rec nonzero () =
    let u = uniform t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~sigma = mean +. (sigma *. gaussian t)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.to_list (Array.sub idx 0 k)
