(** Deterministic splittable pseudo-random number generator.

    All stochastic behaviour in the library flows through explicit [Rng.t]
    values so that every experiment is reproducible from a single seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a small
    state, good statistical quality, and cheap splitting, which lets training
    samplers hand independent streams to sub-tasks without sharing state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed.  Two generators
    created from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    evolve independently. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val mix64 : int64 -> int64
(** SplitMix64 finaliser: two xor-shift-multiply rounds.  Stateless; useful
    for deriving stable hashes/seeds from raw 64-bit payloads (e.g. IEEE-754
    bit patterns) without depending on [Hashtbl.hash]'s representation. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float
(** [uniform t] is uniform in [\[0, 1)]. *)

val range : t -> float -> float -> float
(** [range t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller, one value per call). *)

val gaussian_scaled : t -> mean:float -> sigma:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element.  Requires a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [\[0, n)] in random order.  Requires [0 <= k <= n]. *)
