type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l

let int i = Atom (string_of_int i)
let float f = Atom (Printf.sprintf "%.17g" f)
let string s = Atom s

let shape_error what sexp =
  let head =
    match sexp with
    | Atom a -> Printf.sprintf "atom %S" a
    | List l -> Printf.sprintf "list of %d" (List.length l)
  in
  failwith (Printf.sprintf "Sexp: expected %s, got %s" what head)

let to_int = function
  | Atom a as s -> ( match int_of_string_opt a with Some i -> i | None -> shape_error "int" s)
  | s -> shape_error "int" s

let to_float = function
  | Atom a as s -> (
      match float_of_string_opt a with Some f -> f | None -> shape_error "float" s)
  | s -> shape_error "float" s

let to_string_atom = function Atom a -> a | s -> shape_error "atom" s
let to_list = function List l -> l | s -> shape_error "list" s

let int_array a = List (Array.to_list (Array.map int a))
let float_array a = List (Array.to_list (Array.map float a))
let to_int_array s = Array.of_list (List.map to_int (to_list s))
let to_float_array s = Array.of_list (List.map to_float (to_list s))

let record fields = List (List.map (fun (name, v) -> List [ Atom name; v ]) fields)

let field_opt sexp name =
  match sexp with
  | List fields ->
      List.find_map
        (function List [ Atom n; v ] when n = name -> Some v | _ -> None)
        fields
  | Atom _ -> None

let field sexp name =
  match field_opt sexp name with
  | Some v -> v
  | None -> failwith (Printf.sprintf "Sexp: missing field %s" name)

(* ------------------------------------------------------------- printing *)

let bare_atom_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' | '+' | '*' | '/' | '<' | '>' | '='
  | '!' | '?' | '%' | '@' | ':' ->
      true
  | _ -> false

let needs_quoting s = s = "" || not (String.for_all bare_atom_char s)

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec write buf = function
  | Atom a -> Buffer.add_string buf (if needs_quoting a then quote a else a)
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          write buf item)
        items;
      Buffer.add_char buf ')'

let to_string sexp =
  let buf = Buffer.create 1024 in
  (match sexp with
  | List fields
    when List.for_all (function List (Atom _ :: _) -> true | _ -> false) fields
         && List.length fields > 1 ->
      (* Record-ish top level: one field per line for readability. *)
      Buffer.add_string buf "(";
      List.iteri
        (fun i f ->
          if i > 0 then Buffer.add_string buf "\n ";
          write buf f)
        fields;
      Buffer.add_string buf ")"
  | s -> write buf s);
  Buffer.contents buf

(* -------------------------------------------------------------- parsing *)

type parser_state = { input : string; mutable pos : int }

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let parse_error st msg = failwith (Printf.sprintf "Sexp: %s at byte %d" msg st.pos)

let rec skip_blank st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_blank st
  | Some ';' ->
      (* line comment *)
      let rec to_eol () =
        match peek st with
        | Some '\n' | None -> ()
        | Some _ ->
            advance st;
            to_eol ()
      in
      to_eol ();
      skip_blank st
  | Some _ | None -> ()

let parse_quoted st =
  advance st (* opening quote *);
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> parse_error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
        | Some c -> Buffer.add_char buf c; advance st; go ()
        | None -> parse_error st "dangling escape")
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
  in
  go ();
  Atom (Buffer.contents buf)

let parse_bare st =
  let start = st.pos in
  let rec go () =
    match peek st with
    | Some c when bare_atom_char c ->
        advance st;
        go ()
    | Some _ | None -> ()
  in
  go ();
  if st.pos = start then parse_error st "empty atom";
  Atom (String.sub st.input start (st.pos - start))

let rec parse_exp st =
  skip_blank st;
  match peek st with
  | None -> parse_error st "unexpected end of input"
  | Some '(' ->
      advance st;
      let items = ref [] in
      let rec items_loop () =
        skip_blank st;
        match peek st with
        | Some ')' -> advance st
        | None -> parse_error st "unterminated list"
        | Some _ ->
            items := parse_exp st :: !items;
            items_loop ()
      in
      items_loop ();
      List (List.rev !items)
  | Some ')' -> parse_error st "unexpected )"
  | Some '"' -> parse_quoted st
  | Some _ -> parse_bare st

let of_string input =
  let st = { input; pos = 0 } in
  let result = parse_exp st in
  skip_blank st;
  (match peek st with None -> () | Some _ -> parse_error st "trailing input");
  result

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> failwith (Printf.sprintf "Sexp.read_file: %s" msg)
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try really_input_string ic (in_channel_length ic)
          with End_of_file ->
            failwith (Printf.sprintf "Sexp.read_file: %s: truncated while reading" path))

let save path sexp =
  let tmp = path ^ ".tmp" in
  match
    let oc =
      try open_out_bin tmp
      with Sys_error msg -> failwith (Printf.sprintf "Sexp.save: %s" msg)
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (to_string sexp);
        (* Flush inside the protected region: [close_out_noerr] swallows
           write errors, so a full disk must surface here, not silently. *)
        flush oc)
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let load path =
  let content = read_file path in
  try of_string content with Failure msg -> failwith (Printf.sprintf "%s: %s" path msg)
