(** Minimal S-expressions: the on-disk format for trained models.

    OPPROX's workflow separates offline training from pre-run optimization
    (the paper stores trained models in Python's pickle format and loads
    them at job-submission time).  This module provides the equivalent:
    a tiny, dependency-free S-expression type with a printer and parser,
    plus typed helpers used by the model serializers.

    Grammar: an expression is an atom or a parenthesized list.  Atoms are
    bare words ([A-Za-z0-9._+-] and a few more) or double-quoted strings
    with [\\] escapes.  Whitespace separates expressions; [;] starts a
    line comment. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

val int : int -> t
val float : float -> t
(** Floats print with 17 significant digits, enough to round-trip. *)

val string : string -> t

val to_int : t -> int
(** Raises [Failure] with a descriptive message on the wrong shape. *)

val to_float : t -> float
val to_string_atom : t -> string
val to_list : t -> t list

val int_array : int array -> t
val float_array : float array -> t
val to_int_array : t -> int array
val to_float_array : t -> float array

val record : (string * t) list -> t
(** [(field value) ...] — a list of two-element field lists. *)

val field : t -> string -> t
(** Look a field up in a {!record}; raises [Failure] when missing. *)

val field_opt : t -> string -> t option

val to_string : t -> string
(** Render with minimal quoting, line-wrapped at top-level record fields. *)

val of_string : string -> t
(** Parse one expression; raises [Failure] on syntax errors (with byte
    position) and on trailing garbage. *)

val read_file : string -> string
(** Slurp a whole file.  The channel is closed via [Fun.protect] on every
    path, and failures ([Sys_error], truncation) re-raise as [Failure]
    with the file path in the message. *)

val save : string -> t -> unit
(** Write to a file (atomically via a temp file + rename).  The channel
    is closed via [Fun.protect]; on failure the temp file is removed and
    the error re-raised. *)

val load : string -> t
(** {!read_file} followed by {!of_string}; parse errors carry the file
    path ([Failure "PATH: Sexp: ... at byte N"]). *)
