(* N-way hashed, mutex-per-shard bounded memo table.

   The driver's and oracle's memo tables used to be one Hashtbl behind
   one mutex; in the post-memo regime a hot hit is a few hundred
   nanoseconds of hashing, so a single lock serializes every domain of
   the pool behind it.  Hashing the key across independent shards (each
   its own Dmutex + Hashtbl) makes concurrent hits on distinct keys
   contention-free with probability (shards-1)/shards.

   Only lookups need to scale: an insert corresponds to a memo miss,
   i.e. a real simulation run that costs microseconds to milliseconds.
   So the FIFO eviction order lives in one global queue behind its own
   mutex, touched only by [add] / [set_capacity] — capacity is a bound
   on the whole table and eviction order is the global insertion order,
   exactly as in the single-table memo it replaces.  A key always lands
   in the same shard, so first-writer-wins, hit/miss accounting, and
   determinism are unchanged (tested against a 1-shard instance).

   Both halves of the state are {!Guarded} cells bound to their mutex,
   so the concurrency checker audits that no code path reaches a table
   or the eviction queue outside its lock.  Shard locks share one class
   per map ([<name>.shard]) and the order lock is its own class
   ([<name>.order]); the lock-order invariant — shard locks are never
   taken while holding the order lock and vice versa — shows up as an
   edge-free region of the order graph. *)

type 'a shard = {
  mutex : Dmutex.t;
  table : (string, 'a) Hashtbl.t Guarded.t;
}

(* The eviction queue and the capacity bound change together under the
   order lock, so they live in one guarded cell. *)
type order_state = {
  order : string Queue.t; (* global insertion order; keys unique *)
  mutable capacity : int;
}

type 'a t = {
  shards : 'a shard array;
  order_mutex : Dmutex.t;
  ostate : order_state Guarded.t;
}

let create ?(name = "shardmap") ?(shards = 16) ~capacity () =
  if shards < 1 then invalid_arg "Shardmap.create: shards must be >= 1";
  if capacity < 0 then invalid_arg "Shardmap.create: capacity must be >= 0";
  let order_mutex = Dmutex.create ~name:(name ^ ".order") () in
  {
    shards =
      Array.init shards (fun i ->
          let mutex = Dmutex.create ~name:(name ^ ".shard") () in
          {
            mutex;
            table =
              Guarded.create
                ~name:(Printf.sprintf "%s.shard[%d].table" name i)
                ~locks:[ mutex ] (Hashtbl.create 64);
          });
    order_mutex;
    ostate =
      Guarded.create ~name:(name ^ ".order_state") ~locks:[ order_mutex ]
        { order = Queue.create (); capacity };
  }

let shard_count t = Array.length t.shards

(* [Hashtbl.hash] is deterministic for strings across processes and OCaml
   versions in the unseeded form used here. *)
let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find t key =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  let r = Hashtbl.find_opt (Guarded.get s.table) key in
  Dmutex.unlock s.mutex;
  r

let remove_key t key =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  Hashtbl.remove (Guarded.get s.table) key;
  Dmutex.unlock s.mutex

(* Pop over-capacity victims under the order lock, remove them from
   their shards after releasing it (shard locks are never taken while
   holding the order lock, so the two lock classes cannot deadlock). *)
let trim_over_capacity t =
  Dmutex.lock t.order_mutex;
  let os = Guarded.get t.ostate in
  let victims = ref [] in
  while Queue.length os.order > os.capacity do
    victims := Queue.pop os.order :: !victims
  done;
  Dmutex.unlock t.order_mutex;
  List.iter (remove_key t) !victims

(* Returns [true] iff the binding was inserted (first writer wins) and
   survived eviction. *)
let add t key v =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  let table = Guarded.get s.table in
  let fresh = not (Hashtbl.mem table key) in
  if fresh then Hashtbl.replace table key v;
  Dmutex.unlock s.mutex;
  if not fresh then false
  else begin
    Dmutex.lock t.order_mutex;
    Queue.push key (Guarded.get t.ostate).order;
    Dmutex.unlock t.order_mutex;
    trim_over_capacity t;
    Dmutex.lock s.mutex;
    let survived = Hashtbl.mem (Guarded.get s.table) key in
    Dmutex.unlock s.mutex;
    survived
  end

let clear t =
  Dmutex.lock t.order_mutex;
  Queue.clear (Guarded.get t.ostate).order;
  Dmutex.unlock t.order_mutex;
  Array.iter
    (fun s ->
      Dmutex.lock s.mutex;
      Hashtbl.reset (Guarded.get s.table);
      Dmutex.unlock s.mutex)
    t.shards

let size t =
  Array.fold_left
    (fun acc s ->
      Dmutex.lock s.mutex;
      let n = Hashtbl.length (Guarded.get s.table) in
      Dmutex.unlock s.mutex;
      acc + n)
    0 t.shards

let set_capacity t capacity =
  if capacity < 0 then invalid_arg "Shardmap.set_capacity: capacity must be >= 0";
  Dmutex.lock t.order_mutex;
  (Guarded.get t.ostate).capacity <- capacity;
  Dmutex.unlock t.order_mutex;
  trim_over_capacity t
