(* N-way hashed, mutex-per-shard bounded memo table.

   The driver's and oracle's memo tables used to be one Hashtbl behind
   one mutex; in the post-memo regime a hot hit is a few hundred
   nanoseconds of hashing, so a single lock serializes every domain of
   the pool behind it.  Hashing the key across independent shards (each
   its own Dmutex + Hashtbl) makes concurrent hits on distinct keys
   contention-free with probability (shards-1)/shards.

   Only lookups need to scale: an insert corresponds to a memo miss,
   i.e. a real simulation run that costs microseconds to milliseconds.
   So the FIFO eviction order lives in one global queue behind its own
   mutex, touched only by [add] / [set_capacity] — capacity is a bound
   on the whole table and eviction order is the global insertion order,
   exactly as in the single-table memo it replaces.  A key always lands
   in the same shard, so first-writer-wins, hit/miss accounting, and
   determinism are unchanged (tested against a 1-shard instance). *)

type 'a shard = {
  table : (string, 'a) Hashtbl.t;
  mutex : Dmutex.t;
}

type 'a t = {
  shards : 'a shard array;
  order : string Queue.t; (* global insertion order; keys unique *)
  mutable capacity : int;
  order_mutex : Dmutex.t;
}

let create ?(shards = 16) ~capacity () =
  if shards < 1 then invalid_arg "Shardmap.create: shards must be >= 1";
  if capacity < 0 then invalid_arg "Shardmap.create: capacity must be >= 0";
  {
    shards =
      Array.init shards (fun _ -> { table = Hashtbl.create 64; mutex = Dmutex.create () });
    order = Queue.create ();
    capacity;
    order_mutex = Dmutex.create ();
  }

let shard_count t = Array.length t.shards

(* [Hashtbl.hash] is deterministic for strings across processes and OCaml
   versions in the unseeded form used here. *)
let shard_of t key = t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find t key =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  let r = Hashtbl.find_opt s.table key in
  Dmutex.unlock s.mutex;
  r

let remove_key t key =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  Hashtbl.remove s.table key;
  Dmutex.unlock s.mutex

(* Pop over-capacity victims under the order lock, remove them from
   their shards after releasing it (shard locks are never taken while
   holding the order lock, so the two lock classes cannot deadlock). *)
let trim_over_capacity t =
  Dmutex.lock t.order_mutex;
  let victims = ref [] in
  while Queue.length t.order > t.capacity do
    victims := Queue.pop t.order :: !victims
  done;
  Dmutex.unlock t.order_mutex;
  List.iter (remove_key t) !victims

(* Returns [true] iff the binding was inserted (first writer wins) and
   survived eviction. *)
let add t key v =
  let s = shard_of t key in
  Dmutex.lock s.mutex;
  let fresh = not (Hashtbl.mem s.table key) in
  if fresh then Hashtbl.replace s.table key v;
  Dmutex.unlock s.mutex;
  if not fresh then false
  else begin
    Dmutex.lock t.order_mutex;
    Queue.push key t.order;
    Dmutex.unlock t.order_mutex;
    trim_over_capacity t;
    Dmutex.lock s.mutex;
    let survived = Hashtbl.mem s.table key in
    Dmutex.unlock s.mutex;
    survived
  end

let clear t =
  Dmutex.lock t.order_mutex;
  Queue.clear t.order;
  Dmutex.unlock t.order_mutex;
  Array.iter
    (fun s ->
      Dmutex.lock s.mutex;
      Hashtbl.reset s.table;
      Dmutex.unlock s.mutex)
    t.shards

let size t =
  Array.fold_left
    (fun acc s ->
      Dmutex.lock s.mutex;
      let n = Hashtbl.length s.table in
      Dmutex.unlock s.mutex;
      acc + n)
    0 t.shards

let set_capacity t capacity =
  if capacity < 0 then invalid_arg "Shardmap.set_capacity: capacity must be >= 0";
  Dmutex.lock t.order_mutex;
  t.capacity <- capacity;
  Dmutex.unlock t.order_mutex;
  trim_over_capacity t
