(** N-way hashed, mutex-per-shard bounded memo table.

    A drop-in replacement for the "one [Hashtbl] behind one mutex" memo
    discipline used by the simulation driver and the oracle: keys are
    hashed across [shards] independent shards, each guarded by its own
    {!Dmutex.t}, so concurrent hot hits on distinct keys take
    uncontended locks.  Only lookups need to scale — an insert is a memo
    miss, i.e. real work — so the FIFO eviction order is a single global
    queue touched only on insertion: [capacity] bounds the {e whole}
    table and eviction order equals global insertion order, exactly as
    in a single-table memo.  A key always lands in the same shard, so
    semantics (first-writer-wins insertion, hit/miss behaviour,
    determinism) are identical to a single-shard table — only contention
    changes.  Values should be deterministic functions of their key: two
    domains racing on one key duplicate a computation instead of
    corrupting anything.

    The tables and the eviction queue are {!Guarded} cells, so under
    [OPPROX_RACECHECK=1] the concurrency checker verifies every access
    happens under the owning lock (CONC002) and that the map's two lock
    classes ([<name>.shard], [<name>.order]) never nest (CONC001). *)

type 'a t

val create : ?name:string -> ?shards:int -> capacity:int -> unit -> 'a t
(** [create ~name ~shards ~capacity ()] builds a table of [shards]
    independent shards (default 16) bounded to ~[capacity] entries in
    total ([max_int] = unbounded).  [name] (default ["shardmap"]) labels
    the map's lock classes in the concurrency checker's order graph —
    give distinct structural roles distinct names.  Requires
    [shards >= 1], [capacity >= 0]. *)

val shard_count : 'a t -> int

val find : 'a t -> string -> 'a option

val add : 'a t -> string -> 'a -> bool
(** [add t key v] inserts [key -> v] unless the key is already bound
    (first writer wins); returns [true] iff the binding was inserted and
    survived eviction. *)

val clear : 'a t -> unit

val size : 'a t -> int
(** Total entries across shards (takes every shard lock in turn). *)

val set_capacity : 'a t -> int -> unit
(** Change the total capacity, evicting FIFO-oldest entries as needed. *)
