let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (Printf.sprintf "Stats.%s: empty array" name)

let sum xs =
  (* Kahan summation: modeling matrices accumulate many small residuals. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  check_nonempty "mean" xs;
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "variance" xs;
  let m = mean xs in
  let sq = Array.map (fun x -> (x -. m) *. (x -. m)) xs in
  sum sq /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let quantile xs p =
  check_nonempty "quantile" xs;
  if p < 0.0 || p > 1.0 then invalid_arg "Stats.quantile: p outside [0,1]";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  let pos = p *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then ys.(lo)
  else
    let frac = pos -. float_of_int lo in
    ((1.0 -. frac) *. ys.(lo)) +. (frac *. ys.(hi))

let median xs = quantile xs 0.5

let pearson xs ys =
  if Array.length xs <> Array.length ys then invalid_arg "Stats.pearson: length mismatch";
  check_nonempty "pearson" xs;
  let mx = mean xs and my = mean ys in
  let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  if !vx = 0.0 || !vy = 0.0 then 0.0 else !cov /. sqrt (!vx *. !vy)

let r2_score ~actual ~predicted =
  if Array.length actual <> Array.length predicted then
    invalid_arg "Stats.r2_score: length mismatch";
  check_nonempty "r2_score" actual;
  let m = mean actual in
  let ss_res = ref 0.0 and ss_tot = ref 0.0 in
  Array.iteri
    (fun i a ->
      let r = a -. predicted.(i) in
      ss_res := !ss_res +. (r *. r);
      let d = a -. m in
      ss_tot := !ss_tot +. (d *. d))
    actual;
  if !ss_tot = 0.0 then if !ss_res = 0.0 then 1.0 else 0.0
  else 1.0 -. (!ss_res /. !ss_tot)

let mae ~actual ~predicted =
  if Array.length actual <> Array.length predicted then invalid_arg "Stats.mae: length mismatch";
  check_nonempty "mae" actual;
  let errs = Array.mapi (fun i a -> Float.abs (a -. predicted.(i))) actual in
  mean errs

let rmse ~actual ~predicted =
  if Array.length actual <> Array.length predicted then invalid_arg "Stats.rmse: length mismatch";
  check_nonempty "rmse" actual;
  let errs = Array.mapi (fun i a -> (a -. predicted.(i)) ** 2.0) actual in
  sqrt (mean errs)

let geometric_mean xs =
  check_nonempty "geometric_mean" xs;
  Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive value") xs;
  exp (mean (Array.map log xs))

let normalize xs =
  check_nonempty "normalize" xs;
  Array.iter (fun x -> if x < 0.0 then invalid_arg "Stats.normalize: negative value") xs;
  let s = sum xs in
  if s = 0.0 then Array.make (Array.length xs) (1.0 /. float_of_int (Array.length xs))
  else Array.map (fun x -> x /. s) xs
