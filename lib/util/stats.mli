(** Descriptive statistics over float arrays.

    These are the primitives the modeling layer (R2 scores, residual
    quantiles, ROI statistics) and the benchmark reports are built from.
    All functions raise [Invalid_argument] on empty input unless stated
    otherwise. *)

val mean : float array -> float
(** Arithmetic mean. *)

val variance : float array -> float
(** Population variance (divides by [n]). *)

val stddev : float array -> float
(** Population standard deviation. *)

val min : float array -> float
val max : float array -> float

val sum : float array -> float
(** Kahan-compensated sum; [sum [||] = 0.]. *)

val median : float array -> float
(** Median (average of middle two for even length).  Does not mutate. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [\[0, 1\]], linear interpolation between
    order statistics.  Does not mutate. *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient.  Returns [0.] when either side has
    zero variance.  Requires equal lengths. *)

val r2_score : actual:float array -> predicted:float array -> float
(** Coefficient of determination [1 - SS_res / SS_tot].  When the actuals
    have zero variance, returns [1.] if predictions match exactly and
    [0.] otherwise.  Requires equal non-zero lengths. *)

val mae : actual:float array -> predicted:float array -> float
(** Mean absolute error. *)

val rmse : actual:float array -> predicted:float array -> float
(** Root mean squared error. *)

val geometric_mean : float array -> float
(** Geometric mean of strictly positive values. *)

val normalize : float array -> float array
(** Scale a non-negative array so it sums to 1.  If the sum is zero,
    returns the uniform distribution. *)
