type align = Left | Right

type t = {
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reverse order *)
}

let default_aligns n = Array.init n (fun i -> if i = 0 then Left else Right)

let create ?aligns headers =
  let headers = Array.of_list headers in
  let n = Array.length headers in
  if n = 0 then invalid_arg "Table.create: no columns";
  let aligns =
    match aligns with
    | None -> default_aligns n
    | Some a ->
        if List.length a <> n then invalid_arg "Table.create: aligns width mismatch";
        Array.of_list a
  in
  { headers; aligns; rows = [] }

let add_row t row =
  let row = Array.of_list row in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: row width mismatch";
  t.rows <- row :: t.rows

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.4f" x

let add_float_row t label xs = add_row t (label :: List.map fmt_float xs)

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  List.iter
    (fun row -> Array.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row)
    rows;
  let pad i cell =
    let w = widths.(i) in
    match t.aligns.(i) with
    | Left -> Printf.sprintf "%-*s" w cell
    | Right -> Printf.sprintf "%*s" w cell
  in
  let line row = String.concat "  " (List.mapi pad (Array.to_list row)) in
  let sep = String.concat "  " (List.init n (fun i -> String.make widths.(i) '-')) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print ?title t =
  (match title with
  | None -> ()
  | Some s ->
      print_endline s;
      print_endline (String.make (String.length s) '='));
  print_string (render t);
  print_newline ()

let csv_cell cell =
  let needs_quotes =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if not needs_quotes then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let line row = String.concat "," (List.map csv_cell (Array.to_list row)) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows)) ^ "\n"
