(** Plain-text table rendering for benchmark and experiment reports.

    The bench harness prints every reproduced paper table/figure as an
    aligned monospace table; this module owns the formatting so all reports
    look uniform. *)

type align = Left | Right

type t
(** A table under construction: a header row plus data rows. *)

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table.  [aligns] defaults to [Left] for the
    first column and [Right] for the rest, the usual layout for a label
    column followed by numeric columns. *)

val add_row : t -> string list -> unit
(** Append a data row.  Raises [Invalid_argument] if the row width differs
    from the header width. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends a row with a text label followed by
    numbers formatted with {!fmt_float}. *)

val render : t -> string
(** Render with a separator line under the header, columns padded to the
    widest cell. *)

val print : ?title:string -> t -> unit
(** Render to stdout, optionally preceded by an underlined title and
    followed by a blank line. *)

val to_csv : t -> string
(** RFC-4180-style CSV rendering (quotes doubled, cells with commas,
    quotes or newlines wrapped in quotes), header row first. *)

val fmt_float : float -> string
(** Compact numeric formatting used across reports: integers render without
    a fractional part, everything else with four significant decimals. *)
