(* Test fixtures: a tiny deterministic application that exercises the whole
   App/Driver protocol in well under a millisecond, so the core-pipeline
   tests (training, modeling, optimization) stay fast.

   The "toy" app runs a fixed 40-iteration outer loop over a small state
   vector.  AB0 (perforation) skips smoothing steps — the output error it
   causes decays with the phase in which it is applied (early skips
   propagate).  AB1 (memoization) reuses the previous iteration's increment.
   Work is charged so that higher levels always do less work. *)

module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Env = Opprox_sim.Env
module Approx = Opprox_sim.Approx

let iterations = 40
let state_size = 16

let toy_abs =
  [|
    Ab.make ~name:"smooth" ~technique:Ab.Perforation ~max_level:3;
    Ab.make ~name:"integrate" ~technique:Ab.Memoization ~max_level:3;
  |]

let toy_run env input =
  let scale = input.(0) in
  let state = Array.init state_size (fun i -> scale *. float_of_int (i + 1)) in
  let incr_cache = Array.make state_size 0.0 in
  for iter = 0 to iterations - 1 do
    let iter = ignore iter; Env.begin_outer_iter env in
    (* AB0: smoothing pass over the state, perforated. *)
    let l0 = Env.current_level env ~ab:0 in
    Env.enter_ab env ~ab:0;
    Approx.perforate ~offset:iter ~level:l0 state_size (fun i ->
        let left = state.((i + state_size - 1) mod state_size) in
        let right = state.((i + 1) mod state_size) in
        state.(i) <- (0.5 *. state.(i)) +. (0.25 *. (left +. right));
        Env.charge env ~ab:0 3);
    (* AB1: additive drift, memoized across iterations. *)
    let l1 = Env.current_level env ~ab:1 in
    Env.enter_ab env ~ab:1;
    let fresh = iter mod (l1 + 1) = 0 in
    for i = 0 to state_size - 1 do
      if fresh then begin
        incr_cache.(i) <- 0.01 *. sin (float_of_int (i + iter));
        Env.charge env ~ab:1 2
      end;
      state.(i) <- state.(i) +. incr_cache.(i);
      Env.charge env ~ab:1 1
    done;
    Env.charge_base env 4
  done;
  state

let toy_inputs = [| [| 1.0 |]; [| 1.5 |]; [| 2.0 |] |]

let toy =
  App.make ~name:"toy" ~description:"deterministic two-AB fixture"
    ~param_names:[| "scale" |] ~abs:toy_abs ~default_input:[| 1.5 |]
    ~training_inputs:toy_inputs ~run:toy_run ~seed:7 ()

(* A second fixture whose control flow depends on the input: even [mode]
   visits the ABs in one order, odd in the other — for Cfmodel tests. *)
let flow_abs =
  [|
    Ab.make ~name:"first" ~technique:Ab.Perforation ~max_level:2;
    Ab.make ~name:"second" ~technique:Ab.Perforation ~max_level:2;
  |]

let flow_run env input =
  let even = int_of_float input.(0) mod 2 = 0 in
  let acc = ref 0.0 in
  for _ = 1 to 10 do
    let iter = Env.begin_outer_iter env in
    let visit ab =
      Env.enter_ab env ~ab;
      let level = Env.current_level env ~ab in
      Approx.perforate ~offset:iter ~level 8 (fun i ->
          acc := !acc +. (float_of_int ((ab * 17) + i) *. 0.01);
          Env.charge env ~ab 1)
    in
    if even then begin visit 0; visit 1 end else begin visit 1; visit 0 end
  done;
  [| !acc; input.(0) |]

let flow_inputs = [| [| 0.0 |]; [| 1.0 |]; [| 2.0 |]; [| 3.0 |]; [| 4.0 |]; [| 5.0 |] |]

let flow =
  App.make ~name:"flow" ~description:"input-dependent control-flow fixture"
    ~param_names:[| "mode" |] ~abs:flow_abs ~default_input:[| 0.0 |]
    ~training_inputs:flow_inputs ~run:flow_run ~seed:13 ()

(* Shared helpers. *)

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count gen prop)
