(* Regenerates the committed lint fixtures under test/fixtures/.

   Usage: dune exec test/gen_fixtures.exe [-- DIR]

   Produces one clean trained-pipeline artifact plus four corrupted
   variants, each seeded with exactly one defect that `opprox check`
   must flag with a documented rule code:

     trained_kmeans.sexp        clean baseline            (exit 0)
     corrupt_nan_coeff.sexp     NaN coefficient           MODEL001
     corrupt_inverted_ci.sexp   negative CI half-width    MODEL003
     corrupt_level_range.sexp   schedule level 99         SCHED003
     corrupt_ragged.sexp        ragged schedule rows      SCHED001

   The corruptions are sexp surgery on the clean artifact rather than
   hand-written files, so the fixtures track the serialization format
   for free whenever it changes — just rerun this program. *)

module Sexp = Opprox_util.Sexp

(* Rewrite every record field called [name] anywhere in a sexp tree. *)
let rec rewrite_field name f = function
  | Sexp.List [ Sexp.Atom n; v ] when n = name -> Sexp.List [ Sexp.Atom n; f v ]
  | Sexp.List items -> Sexp.List (List.map (rewrite_field name f) items)
  | atom -> atom

let schedule_sexp rows =
  Sexp.record [ ("levels", Sexp.list (List.map Sexp.int_array (Array.to_list rows))) ]

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/fixtures" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let save name sexp = Sexp.save (Filename.concat dir name) sexp in
  (* A small but real training run: kmeans is the cheapest registered app,
     and two phases keep the artifact reviewable while still exercising
     the per-phase model tables the checker audits. *)
  let app = Opprox_apps.Registry.find "kmeans" in
  let config =
    {
      Opprox.default_train_config with
      n_phases = Some 2;
      training =
        { Opprox.default_train_config.training with joint_samples_per_phase = 8 };
    }
  in
  let trained = Opprox.train ~config app in
  Opprox.save (Filename.concat dir "trained_kmeans.sexp") trained;
  let clean = Sexp.load (Filename.concat dir "trained_kmeans.sexp") in
  save "corrupt_nan_coeff.sexp"
    (rewrite_field "weights"
       (fun v ->
         let w = Sexp.to_float_array v in
         if Array.length w > 0 then w.(0) <- Float.nan;
         Sexp.float_array w)
       clean);
  save "corrupt_inverted_ci.sexp"
    (rewrite_field "qos_ci" (fun _ -> Sexp.float (-0.5)) clean);
  (* Schedule fixtures are built directly: Schedule.make refuses ragged
     input, which is exactly why the ragged one must exist on disk. *)
  save "corrupt_level_range.sexp" (schedule_sexp [| [| 99; 0; 0 |]; [| 1; 0; 0 |] |]);
  save "corrupt_ragged.sexp"
    (Sexp.record
       [ ("levels", Sexp.list [ Sexp.int_array [| 1; 0 |]; Sexp.int_array [| 1 |] ]) ]);
  Printf.printf "wrote 5 fixtures to %s/\n" dir
