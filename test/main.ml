let () =
  let outcome =
    try
      Ok
        (Alcotest.run ~and_exit:false "opprox"
           (Test_util.suite @ Test_linalg.suite @ Test_ml.suite @ Test_sim.suite
          @ Test_apps.suite @ Test_core.suite @ Test_checkpoint.suite @ Test_serialize.suite
          @ Test_runtime.suite @ Test_pool.suite @ Test_analysis.suite @ Test_obs.suite
          @ Test_serve.suite @ Test_corpus.suite @ Test_conc.suite @ Test_control.suite
          @ Test_search.suite))
    with e -> Error e
  in
  (* Under OPPROX_RACECHECK=1 (or the OPPROX_DEBUG alias) the whole suite
     ran with the concurrency checker live; any report that survived —
     tests planting deliberate defects reset after themselves — is a real
     lock-discipline break somewhere in the runtime, and fails the run
     even though every assertion passed. *)
  let checker_env v = Sys.getenv_opt v = Some "1" in
  if checker_env "OPPROX_RACECHECK" || checker_env "OPPROX_DEBUG" then begin
    match Opprox_util.Conc.reports () with
    | [] -> print_endline "conc: suite report-clean under the concurrency checker"
    | reports ->
        List.iter
          (fun (r : Opprox_util.Conc.report) ->
            Printf.eprintf "conc: %s %s: %s\n" r.Opprox_util.Conc.code r.Opprox_util.Conc.subject
              r.Opprox_util.Conc.message)
          reports;
        Printf.eprintf "conc: %d report(s) leaked from the suite\n" (List.length reports);
        exit 1
  end;
  match outcome with Ok () -> () | Error e -> raise e
