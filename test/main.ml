let () =
  Alcotest.run "opprox"
    (Test_util.suite @ Test_linalg.suite @ Test_ml.suite @ Test_sim.suite @ Test_apps.suite
   @ Test_core.suite @ Test_checkpoint.suite @ Test_serialize.suite @ Test_runtime.suite
   @ Test_pool.suite @ Test_analysis.suite @ Test_obs.suite @ Test_serve.suite
   @ Test_corpus.suite)
