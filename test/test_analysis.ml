(* Tests for the static-analysis subsystem: the diagnostic type, the four
   rule modules, the checker aggregation, the fail-fast wiring in
   Models/Optimizer/Opprox.apply, and the Dmutex debug lock discipline.
   Corruption tests work the way the real failure does: serialize a good
   artifact, damage the sexp, reload, and watch the exact rule fire. *)

module App = Opprox_sim.App
module Ab = Opprox_sim.Ab
module Schedule = Opprox_sim.Schedule
module Sexp = Opprox_util.Sexp
module Dmutex = Opprox_util.Dmutex
module Models = Opprox.Models
module Optimizer = Opprox.Optimizer
module Diagnostic = Opprox_analysis.Diagnostic
module Lint_app = Opprox_analysis.Lint_app
module Lint_schedule = Opprox_analysis.Lint_schedule
module Lint_models = Opprox_analysis.Lint_models
module Lint_plan = Opprox_analysis.Lint_plan
module Checker = Opprox_analysis.Checker
open Fixtures

let trained =
  lazy (Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy)

let codes diags = List.map (fun (d : Diagnostic.t) -> d.code) diags
let has_code c diags = List.mem c (codes diags)

let check_clean_strict what diags =
  if Diagnostic.exit_code ~strict:true diags <> 0 then
    Alcotest.failf "%s not clean: %s" what
      (String.concat "; "
         (List.map (Format.asprintf "%a" Diagnostic.pp)
            (List.filter (Diagnostic.is_failure ~strict:true) diags)))

(* ----------------------------------------------------------- Diagnostic *)

let test_exit_code_policy () =
  let err = Diagnostic.v ~code:"APP002" Diagnostic.Error "e" in
  let warn = Diagnostic.v ~code:"APP004" Diagnostic.Warning "w" in
  let info = Diagnostic.v ~code:"SCHED006" Diagnostic.Info "i" in
  check_int "clean" 0 (Diagnostic.exit_code ~strict:false []);
  check_int "info passes strict" 0 (Diagnostic.exit_code ~strict:true [ info ]);
  check_int "warning passes lax" 0 (Diagnostic.exit_code ~strict:false [ warn; info ]);
  check_int "warning fails strict" 1 (Diagnostic.exit_code ~strict:true [ warn ]);
  check_int "error fails lax" 1 (Diagnostic.exit_code ~strict:false [ err; info ])

let test_codes_registered () =
  (* Every code the rules can emit must be in the documented registry. *)
  List.iter
    (fun prefix ->
      check_bool (prefix ^ " family present") true
        (List.exists (fun (c, _) -> String.length c > 4 && String.sub c 0 (String.length prefix) = prefix)
           Diagnostic.codes))
    [ "APP"; "SCHED"; "MODEL"; "PLAN" ]

(* ------------------------------------------------------------- Lint_app *)

let test_registered_apps_clean () =
  List.iter
    (fun (app : App.t) -> check_clean_strict app.App.name (Lint_app.check_app app))
    (Opprox_apps.Registry.all ());
  check_clean_strict "registry" (Lint_app.check_registry (Opprox_apps.Registry.all ()))

let test_registry_rejects_duplicates () =
  match Opprox_apps.Registry.register Opprox_apps.Kmeans.app with
  | () -> Alcotest.fail "duplicate registration accepted"
  | exception Invalid_argument _ -> ()

let test_ab_equal () =
  let a = Ab.make ~name:"x" ~technique:Ab.Perforation ~max_level:3 in
  check_bool "equal" true (Ab.equal a a);
  check_bool "differs" false
    (Ab.equal a (Ab.make ~name:"x" ~technique:Ab.Perforation ~max_level:4))

(* -------------------------------------------------------- Lint_schedule *)

let valid_levels_gen =
  QCheck.Gen.(
    let* n_phases = 1 -- 4 in
    let levels_for ab = 0 -- toy_abs.(ab).Ab.max_level in
    let* rows =
      list_repeat n_phases (let* a = levels_for 0 in let* b = levels_for 1 in return [| a; b |])
    in
    return (Array.of_list rows))

let prop_valid_schedule_lints_clean =
  qcheck_case "valid schedule lints clean" ~count:200
    (QCheck.make valid_levels_gen)
    (fun levels ->
      Lint_schedule.check_raw ~app:"toy" levels = []
      &&
      let sched = Schedule.make levels in
      Diagnostic.exit_code ~strict:true
        (Lint_schedule.check ~app:"toy" ~n_phases:(Array.length levels) ~abs:toy_abs sched)
      = 0)

let test_schedule_corrupt_ragged () =
  (* Ragged matrices can't even become a Schedule.t; check_raw is the
     pre-construction audit with coordinates. *)
  let diags = Lint_schedule.check_raw ~app:"toy" [| [| 1; 2 |]; [| 1 |] |] in
  check_bool "SCHED001 fired" true (has_code "SCHED001" diags);
  check_int "ragged is an error" 1 (Diagnostic.exit_code ~strict:false diags)

let test_schedule_corrupt_level_range () =
  let sched = Schedule.make [| [| 1; 99 |] |] in
  let diags = Lint_schedule.check ~app:"toy" ~abs:toy_abs sched in
  check_bool "SCHED003 fired" true (has_code "SCHED003" diags);
  (match List.find (fun (d : Diagnostic.t) -> d.code = "SCHED003") diags with
  | d ->
      check_bool "locates phase" true (d.location.phase = Some 0);
      check_bool "locates ab" true (d.location.ab = Some 1));
  check_int "out of range is an error" 1 (Diagnostic.exit_code ~strict:false diags)

let test_schedule_shape_mismatch () =
  let sched = Schedule.make [| [| 1 |] |] in
  let diags = Lint_schedule.check ~app:"toy" ~n_phases:2 ~abs:toy_abs sched in
  check_bool "SCHED004 fired" true (has_code "SCHED004" diags)

let test_schedule_dead_knob_is_info () =
  let sched = Schedule.make [| [| 1; 0 |]; [| 2; 0 |] |] in
  let diags = Lint_schedule.check ~app:"toy" ~abs:toy_abs sched in
  check_bool "SCHED006 fired" true (has_code "SCHED006" diags);
  check_int "but stays informational" 0 (Diagnostic.exit_code ~strict:true diags)

let test_schedule_sexp_roundtrip () =
  let sched = Schedule.make [| [| 1; 2 |]; [| 0; 3 |] |] in
  check_bool "roundtrip" true (Schedule.equal sched (Schedule.of_sexp (Schedule.to_sexp sched)))

(* ---------------------------------------------------------- Lint_models *)

let test_trained_models_lint_clean () =
  let tr = Lazy.force trained in
  check_clean_strict "trained toy models" (Models.lint tr.Opprox.models)

(* Rewrite every record field called [name] anywhere in a sexp tree. *)
let rec rewrite_field name f = function
  | Sexp.List [ Sexp.Atom n; v ] when n = name -> Sexp.List [ Sexp.Atom n; f v ]
  | Sexp.List items -> Sexp.List (List.map (rewrite_field name f) items)
  | atom -> atom

let reload sexp = Models.of_sexp ~strict:false ~resolve:(fun _ -> toy) sexp

let test_models_corrupt_nan_coefficient () =
  let sexp = Models.to_sexp (Lazy.force trained).Opprox.models in
  let corrupt =
    rewrite_field "weights"
      (fun v ->
        let w = Sexp.to_float_array v in
        if Array.length w > 0 then w.(0) <- Float.nan;
        Sexp.float_array w)
      sexp
  in
  let diags = Models.lint (reload corrupt) in
  check_bool "MODEL001 fired" true (has_code "MODEL001" diags);
  check_int "NaN coefficient is an error" 1 (Diagnostic.exit_code ~strict:false diags);
  (* Strict loading refuses the artifact outright. *)
  match Models.of_sexp ~strict:true ~resolve:(fun _ -> toy) corrupt with
  | _ -> Alcotest.fail "strict load accepted NaN coefficients"
  | exception Diagnostic.Lint_error diags ->
      check_bool "raised with MODEL001" true (has_code "MODEL001" diags)

let test_models_corrupt_inverted_ci () =
  let sexp = Models.to_sexp (Lazy.force trained).Opprox.models in
  let corrupt = rewrite_field "qos_ci" (fun _ -> Sexp.float (-0.5)) sexp in
  let diags = Models.lint (reload corrupt) in
  check_bool "MODEL003 fired" true (has_code "MODEL003" diags);
  check_int "inverted CI is an error" 1 (Diagnostic.exit_code ~strict:false diags);
  match Models.of_sexp ~strict:true ~resolve:(fun _ -> toy) corrupt with
  | _ -> Alcotest.fail "strict load accepted an inverted CI"
  | exception Diagnostic.Lint_error diags ->
      check_bool "raised with MODEL003" true (has_code "MODEL003" diags)

let test_models_sexp_roundtrip_keeps_rdiag () =
  (* The conditioning evidence must survive a save/load cycle, or the
     checker would go blind on exactly the artifacts it audits. *)
  let m = (Lazy.force trained).Opprox.models in
  let reloaded = reload (Models.to_sexp m) in
  let n_rdiag model =
    List.fold_left
      (fun acc pv ->
        List.fold_left
          (fun acc (r : Lint_models.regression) ->
            List.fold_left (fun acc (_, _, rd) -> acc + Array.length rd) acc r.pieces)
          acc pv.Lint_models.regressions)
      0
      (Array.to_list (Models.view model).Lint_models.per_class.(0))
  in
  check_bool "some R diagonals recorded" true (n_rdiag m > 0);
  check_int "survives roundtrip" (n_rdiag m) (n_rdiag reloaded)

(* ------------------------------------------------------------ Lint_plan *)

let test_optimizer_rejects_bad_inputs () =
  let tr = Lazy.force trained in
  let opt ~roi ~budget =
    Optimizer.optimize ~models:tr.Opprox.models ~roi ~input:toy.App.default_input ~budget ()
  in
  (match opt ~roi:tr.Opprox.roi ~budget:Float.nan with
  | _ -> Alcotest.fail "NaN budget accepted"
  | exception Diagnostic.Lint_error d -> check_bool "PLAN001" true (has_code "PLAN001" d));
  match opt ~roi:[| 1.0 |] ~budget:5.0 with
  | _ -> Alcotest.fail "short ROI accepted"
  | exception Diagnostic.Lint_error d -> check_bool "PLAN002" true (has_code "PLAN002" d)

let test_plan_lint_clean () =
  let tr = Lazy.force trained in
  let plan = Opprox.optimize tr ~budget:10.0 in
  check_clean_strict "optimizer plan" (Optimizer.lint ~models:tr.Opprox.models plan)

let test_apply_rejects_out_of_range_schedule () =
  (* A plan doctored after optimization: the schedule asks for levels the
     ABs do not have.  [apply] must refuse it up front via Lint_plan. *)
  let tr = Lazy.force trained in
  let plan = Opprox.optimize tr ~budget:10.0 in
  let doctored =
    { plan with Optimizer.schedule = Schedule.uniform ~n_phases:2 [| 99; 99 |] }
  in
  match Opprox.apply tr doctored with
  | _ -> Alcotest.fail "out-of-range schedule executed"
  | exception Diagnostic.Lint_error diags ->
      check_bool "SCHED003 fired" true (has_code "SCHED003" diags)

let test_plan_negative_sub_budget () =
  let diags =
    Lint_plan.check_plan
      {
        Lint_plan.app_name = "toy";
        abs = toy_abs;
        n_phases = 1;
        budget = 1.0;
        choices =
          [ { Lint_plan.phase = 0; levels = [| 1; 0 |]; sub_budget = -0.5; qos_hi = 0.0 } ];
        schedule = Schedule.make [| [| 1; 0 |] |];
      }
  in
  check_bool "PLAN004 fired" true (has_code "PLAN004" diags)

(* -------------------------------------------------------------- Checker *)

let test_checker_disable_and_report () =
  let c = Checker.create ~disabled:[ "SCHED006"; "MODEL" ] () in
  Checker.add c
    [
      Diagnostic.v ~code:"SCHED006" Diagnostic.Info "dead knob";
      Diagnostic.v ~code:"MODEL001" Diagnostic.Error "nan";
      Diagnostic.v ~code:"APP002" Diagnostic.Error "bad range";
    ];
  check_int "only APP002 retained" 1 (List.length (Checker.diagnostics c));
  check_int "exit code reflects retained" 1 (Checker.exit_code ~strict:false c)

let test_checker_rejects_unknown_selector () =
  match Checker.create ~disabled:[ "BOGUS42" ] () with
  | _ -> Alcotest.fail "unknown selector accepted"
  | exception Invalid_argument _ -> ()

(* --------------------------------------------------------------- Dmutex *)

let test_dmutex_reentrant_detected () =
  let was = Dmutex.checking () in
  Opprox_util.Conc.reset ();
  Dmutex.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      (* The deliberate reentrancy above recorded a CONC003 report; drop
         it so the suite-wide report-clean check sees only real leaks. *)
      Opprox_util.Conc.reset ();
      Dmutex.set_enabled was)
    (fun () ->
      let m = Dmutex.create () in
      Dmutex.lock m;
      (match Dmutex.lock m with
      | () -> Alcotest.fail "reentrant lock not detected"
      | exception Failure msg ->
          check_bool "names the defect" true
            (String.length msg > 0
            && String.sub msg 0 (String.length "Dmutex.lock") = "Dmutex.lock"));
      Dmutex.unlock m;
      (* After release the same domain may take it again. *)
      Dmutex.lock m;
      Dmutex.unlock m)

let test_dmutex_disabled_is_plain () =
  let was = Dmutex.checking () in
  Dmutex.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Dmutex.set_enabled was)
    (fun () ->
      let m = Dmutex.create () in
      Dmutex.lock m;
      Dmutex.unlock m;
      Dmutex.lock m;
      Dmutex.unlock m)

let suite =
  [
    ( "analysis",
      [
        Alcotest.test_case "exit-code policy" `Quick test_exit_code_policy;
        Alcotest.test_case "code registry covers families" `Quick test_codes_registered;
        Alcotest.test_case "registered apps lint clean" `Quick test_registered_apps_clean;
        Alcotest.test_case "registry rejects duplicates" `Quick test_registry_rejects_duplicates;
        Alcotest.test_case "Ab.equal" `Quick test_ab_equal;
        prop_valid_schedule_lints_clean;
        Alcotest.test_case "corrupt: ragged schedule" `Quick test_schedule_corrupt_ragged;
        Alcotest.test_case "corrupt: level out of range" `Quick test_schedule_corrupt_level_range;
        Alcotest.test_case "schedule shape mismatch" `Quick test_schedule_shape_mismatch;
        Alcotest.test_case "dead knob is Info" `Quick test_schedule_dead_knob_is_info;
        Alcotest.test_case "schedule sexp roundtrip" `Quick test_schedule_sexp_roundtrip;
        Alcotest.test_case "trained models lint clean" `Slow test_trained_models_lint_clean;
        Alcotest.test_case "corrupt: NaN coefficient" `Slow test_models_corrupt_nan_coefficient;
        Alcotest.test_case "corrupt: inverted CI" `Slow test_models_corrupt_inverted_ci;
        Alcotest.test_case "r_diag survives roundtrip" `Slow test_models_sexp_roundtrip_keeps_rdiag;
        Alcotest.test_case "optimizer rejects bad inputs" `Slow test_optimizer_rejects_bad_inputs;
        Alcotest.test_case "optimizer plan lints clean" `Slow test_plan_lint_clean;
        Alcotest.test_case "apply rejects doctored schedule" `Slow
          test_apply_rejects_out_of_range_schedule;
        Alcotest.test_case "negative sub-budget" `Quick test_plan_negative_sub_budget;
        Alcotest.test_case "checker disable + exit code" `Quick test_checker_disable_and_report;
        Alcotest.test_case "checker rejects unknown selector" `Quick
          test_checker_rejects_unknown_selector;
        Alcotest.test_case "dmutex reentrant detected" `Quick test_dmutex_reentrant_detected;
        Alcotest.test_case "dmutex disabled is plain" `Quick test_dmutex_disabled_is_plain;
      ] );
  ]
