(* Tests for the five benchmark applications.  These run real (small)
   simulations, so each check keeps to a handful of executions; the driver
   memoizes exact runs across cases. *)

module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Registry = Opprox_apps.Registry
open Fixtures

let evaluate app sched = Driver.evaluate app sched app.App.default_input

let uniform app levels = evaluate app (Schedule.uniform ~n_phases:1 levels)

let mid_levels app = Array.map (fun m -> (m + 1) / 2) (App.max_levels app)

(* Shared behavioural checks every application must satisfy. *)

let test_exact_is_golden app () =
  let ev = evaluate app (Schedule.exact ~n_abs:(App.n_abs app)) in
  check_float "zero degradation" 0.0 ev.Driver.qos_degradation;
  check_float_eps 1e-9 "unit speedup" 1.0 ev.Driver.speedup

let test_output_finite app () =
  let exact = Driver.run_exact app app.App.default_input in
  check_bool "finite" true (Array.for_all Float.is_finite exact.Driver.output);
  check_bool "non-empty" true (Array.length exact.Driver.output > 0)

let test_all_training_inputs_run app () =
  Array.iter
    (fun input ->
      let exact = Driver.run_exact app input in
      check_bool "positive iterations" true (exact.Driver.iters > 0);
      check_bool "finite" true (Array.for_all Float.is_finite exact.Driver.output))
    app.App.training_inputs

let test_max_approx_speeds_up app () =
  let ev = uniform app (Array.copy (App.max_levels app)) in
  check_bool "speedup > 1" true (ev.Driver.speedup > 1.0);
  check_bool "bounded degradation" true
    (Float.is_finite ev.Driver.qos_degradation && ev.Driver.qos_degradation < 500.0)

let test_phase1_worst app () =
  (* The paper's core observation: approximating the first phase degrades
     QoS at least as much as approximating the last phase. *)
  let mid = mid_levels app in
  let q phase =
    (evaluate app (Schedule.single_phase_active ~n_phases:4 ~phase mid)).Driver.qos_degradation
  in
  check_bool "phase 1 >= phase 4" true (q 0 >= q 3)

let test_work_monotone_in_levels app () =
  (* Raising every AB one level never increases work per iteration. *)
  let work levels =
    let ev = uniform app levels in
    float_of_int ev.Driver.work /. float_of_int ev.Driver.outer_iters
  in
  let w0 = work (Array.make (App.n_abs app) 0) in
  let w1 = work (Array.make (App.n_abs app) 1) in
  check_bool "per-iteration work shrinks" true (w1 <= w0)

let shared_suite app =
  ( "apps-" ^ app.App.name,
    [
      Alcotest.test_case "exact is golden" `Quick (test_exact_is_golden app);
      Alcotest.test_case "output finite" `Quick (test_output_finite app);
      Alcotest.test_case "training inputs run" `Quick (test_all_training_inputs_run app);
      Alcotest.test_case "max approx speeds up" `Quick (test_max_approx_speeds_up app);
      Alcotest.test_case "phase 1 worst" `Quick (test_phase1_worst app);
      Alcotest.test_case "work monotone" `Quick (test_work_monotone_in_levels app);
    ] )

(* --------------------------------------------------------- app-specific *)

let lulesh = Registry.find "lulesh"
let ffmpeg = Registry.find "ffmpeg"
let bodytrack = Registry.find "bodytrack"
let pso = Registry.find "pso"
let comd = Registry.find "comd"

let test_lulesh_iterations_vary () =
  let exact = Driver.run_exact lulesh lulesh.App.default_input in
  let ev = uniform lulesh [| 3; 5; 5; 5 |] in
  check_bool "approximation changes iteration count" true
    (ev.Driver.outer_iters <> exact.Driver.iters)

let test_lulesh_level_monotone_qos () =
  let q l = (uniform lulesh [| Stdlib.min l 3; l; l; l |]).Driver.qos_degradation in
  check_bool "qos grows with level (1 vs 5)" true (q 5 > q 1)

let test_lulesh_mesh_scales_work () =
  let small = Driver.run_exact lulesh [| 40.0; 4.0 |] in
  let large = Driver.run_exact lulesh [| 56.0; 4.0 |] in
  check_bool "bigger mesh, more work" true (large.Driver.work > small.Driver.work)

let test_ffmpeg_frame_bounds () =
  let frame = Opprox_apps.Vidproc.generate_frame ~t:12 in
  check_int "size" (Opprox_apps.Vidproc.frame_width * Opprox_apps.Vidproc.frame_height)
    (Array.length frame);
  check_bool "pixels in [0,255]" true (Array.for_all (fun p -> p >= 0.0 && p <= 255.0) frame)

let test_ffmpeg_filter_order_changes_output () =
  (* Fig. 7: swapping edge/deflate changes the result. *)
  let base = [| 24.0; 3.0; 6.0; 0.0 |] and swapped = [| 24.0; 3.0; 6.0; 1.0 |] in
  let a = Driver.run_exact ffmpeg base and b = Driver.run_exact ffmpeg swapped in
  check_bool "different outputs" true (a.Driver.output <> b.Driver.output);
  check_bool "different traces" true
    (Opprox.Cfmodel.signature_of_trace a.Driver.trace
    <> Opprox.Cfmodel.signature_of_trace b.Driver.trace)

let test_ffmpeg_iterations_are_frames () =
  let exact = Driver.run_exact ffmpeg [| 24.0; 3.0; 6.0; 0.0 |] in
  check_int "fps * duration" 72 exact.Driver.iters;
  (* and independent of approximation *)
  let ev =
    Driver.evaluate ffmpeg (Schedule.uniform ~n_phases:1 [| 5; 5; 5 |]) [| 24.0; 3.0; 6.0; 0.0 |]
  in
  check_int "unchanged under approximation" 72 ev.Driver.outer_iters

let test_ffmpeg_reports_psnr () =
  let ev = uniform ffmpeg [| 1; 1; 1 |] in
  match ev.Driver.psnr with
  | Some p -> check_bool "psnr positive" true (p > 0.0 && Float.is_finite p)
  | None -> Alcotest.fail "expected PSNR metric"

let test_bodytrack_truth_smooth () =
  let a = Opprox_apps.Bodytrack.truth ~frame:0 in
  let b = Opprox_apps.Bodytrack.truth ~frame:1 in
  check_int "pose dim" Opprox_apps.Bodytrack.pose_dim (Array.length a);
  let step =
    Array.fold_left Float.max 0.0 (Array.mapi (fun i x -> Float.abs (x -. b.(i))) a)
  in
  check_bool "bounded per-frame motion" true (step < 1.0)

let test_bodytrack_iterations_depend_on_layers () =
  let i1 = (Driver.run_exact bodytrack [| 3.0; 96.0; 24.0 |]).Driver.iters in
  let i2 = (Driver.run_exact bodytrack [| 5.0; 96.0; 24.0 |]).Driver.iters in
  check_int "3 layers" (3 * 24) i1;
  check_int "5 layers" (5 * 24) i2

let test_bodytrack_anneal_knob_cuts_iterations () =
  let ev = uniform bodytrack [| 0; 0; 0; 3 |] in
  let exact = Driver.run_exact bodytrack bodytrack.App.default_input in
  check_bool "fewer outer iterations" true (ev.Driver.outer_iters < exact.Driver.iters)

let test_pso_objective () =
  let at_optimum =
    Opprox_apps.Pso.objective (Array.init 8 (fun d -> 2.0 +. (0.5 *. sin (float_of_int d))))
  in
  check_float_eps 1e-9 "zero at optimum" 0.0 at_optimum;
  check_bool "positive elsewhere" true (Opprox_apps.Pso.objective (Array.make 8 0.0) > 0.0)

let test_pso_converges () =
  let exact = Driver.run_exact pso pso.App.default_input in
  check_bool "terminates before cap" true (exact.Driver.iters < 600);
  let best_value = exact.Driver.output.(Array.length exact.Driver.output - 1) in
  check_bool "found a decent optimum" true (best_value < 10.0)

let test_pso_iterations_respond_to_approximation () =
  let exact = Driver.run_exact pso pso.App.default_input in
  let ev = uniform pso [| 0; 3; 0 |] in
  check_bool "convergence loop shifts" true (ev.Driver.outer_iters <> exact.Driver.iters)

let test_comd_iterations_fixed () =
  let exact = Driver.run_exact comd comd.App.default_input in
  check_int "equals n_timesteps" 800 exact.Driver.iters;
  let ev = uniform comd [| 3; 3; 3 |] in
  check_int "unchanged by approximation" 800 ev.Driver.outer_iters

let test_comd_timestep_input_controls_iters () =
  let short = Driver.run_exact comd [| 3.0; 1.4; 500.0 |] in
  check_int "500 steps" 500 short.Driver.iters

let test_comd_output_is_per_atom () =
  let exact = Driver.run_exact comd [| 3.0; 1.4; 500.0 |] in
  check_int "27 atoms" 27 (Array.length exact.Driver.output)

let kmeans = Registry.find "kmeans"

let test_lulesh_regions_affect_output () =
  let a = Driver.run_exact lulesh [| 48.0; 2.0 |] in
  let b = Driver.run_exact lulesh [| 48.0; 8.0 |] in
  check_bool "different materials, different energies" true (a.Driver.output <> b.Driver.output)

let test_lulesh_energies_positive () =
  let exact = Driver.run_exact lulesh lulesh.App.default_input in
  check_bool "non-negative energies" true (Array.for_all (fun e -> e >= 0.0) exact.Driver.output)

let test_comd_energy_negative () =
  (* A bound Lennard-Jones structure has negative per-atom potential. *)
  let exact = Driver.run_exact comd comd.App.default_input in
  let mean = Opprox_util.Stats.mean exact.Driver.output in
  check_bool "bound state" true (mean < 0.0)

let test_comd_lattice_affects_structure () =
  let a = Driver.run_exact comd [| 3.0; 1.35; 500.0 |] in
  let b = Driver.run_exact comd [| 3.0; 1.5; 500.0 |] in
  check_bool "different densities, different glasses" true (a.Driver.output <> b.Driver.output)

let test_ffmpeg_quantizer_monotone () =
  (* A coarser quantizer degrades the approximate stream's PSNR against the
     matching exact stream no better than a finer one at high levels. *)
  let psnr q =
    let input = [| 24.0; 3.0; q; 0.0 |] in
    let ev = Driver.evaluate ffmpeg (Schedule.uniform ~n_phases:1 [| 3; 3; 3 |]) input in
    match ev.Driver.psnr with Some p -> p | None -> Alcotest.fail "psnr"
  in
  check_bool "finite at q=4" true (Float.is_finite (psnr 4.0));
  check_bool "finite at q=10" true (Float.is_finite (psnr 10.0))

let test_ffmpeg_deterministic_pipeline () =
  let input = [| 24.0; 3.0; 6.0; 0.0 |] in
  let sched = Schedule.uniform ~n_phases:1 [| 2; 1; 2 |] in
  let a = Driver.evaluate ffmpeg sched input in
  let b = Driver.evaluate ffmpeg sched input in
  check_float "same psnr" (Option.get a.Driver.psnr) (Option.get b.Driver.psnr)

let test_pso_output_shape () =
  (* Ensemble of 6 swarms, each contributing (position, value). *)
  let exact = Driver.run_exact pso [| 24.0; 6.0 |] in
  check_int "6 * (dim + 1)" (6 * 7) (Array.length exact.Driver.output)

let test_pso_best_values_nonnegative () =
  let exact = Driver.run_exact pso pso.App.default_input in
  let dim = 8 in
  for s = 0 to 5 do
    let v = exact.Driver.output.((s * (dim + 1)) + dim) in
    check_bool "objective nonnegative" true (v >= 0.0)
  done

let test_kmeans_output_shape () =
  let exact = Driver.run_exact kmeans [| 320.0; 8.0; 3.0 |] in
  check_int "k*dim + inertia" ((8 * 3) + 1) (Array.length exact.Driver.output)

let test_kmeans_inertia_positive () =
  let exact = Driver.run_exact kmeans kmeans.App.default_input in
  check_bool "positive inertia" true (exact.Driver.output.(Array.length exact.Driver.output - 1) > 0.0)

let test_kmeans_centroids_sorted () =
  let exact = Driver.run_exact kmeans [| 320.0; 8.0; 3.0 |] in
  let dim = 3 and k = 8 in
  let centroid c = Array.sub exact.Driver.output (c * dim) dim in
  for c = 0 to k - 2 do
    check_bool "canonical order" true (compare (centroid c) (centroid (c + 1)) <= 0)
  done

let test_kmeans_iterations_respond () =
  let exact = Driver.run_exact kmeans kmeans.App.default_input in
  let ev = uniform kmeans [| 2; 0; 0 |] in
  check_bool "convergence loop shifts" true (ev.Driver.outer_iters <> exact.Driver.iters)

let test_table1_search_spaces () =
  (* Table 1 sanity: joint spaces match the per-AB level products. *)
  let expect =
    [ ("lulesh", 4 * 6 * 6 * 6); ("ffmpeg", 6 * 6 * 6); ("bodytrack", 6 * 6 * 6 * 4);
      ("pso", 5 * 6 * 6); ("comd", 6 * 6 * 6) ]
  in
  List.iter
    (fun (name, count) ->
      check_int name count (Opprox_sim.Config_space.count (Registry.find name).App.abs))
    expect

let test_registry () =
  check_int "five paper applications" 5 (List.length Registry.paper);
  check_int "all includes extensions" 7 (List.length (Registry.all ()));
  check_bool "find works" true ((Registry.find "lulesh").App.name = "lulesh");
  Alcotest.check_raises "unknown app" Not_found (fun () -> ignore (Registry.find "nope"))

let transformer = Registry.find "transformer"

let test_transformer_space_defeats_enumeration () =
  (* The whole point of the app: 13 ABs x 9 levels, > 1e12 joint configs —
     past both the lint enumeration bound and the issue's 10^12 floor. *)
  let count = Opprox_sim.Config_space.count transformer.App.abs in
  check_int "13 ABs" 13 (App.n_abs transformer);
  check_bool "every AB has 9 levels" true
    (Array.for_all (fun m -> m = 8) (App.max_levels transformer));
  check_bool "space exceeds 10^12" true (count > 1_000_000_000_000);
  check_bool "space exceeds the lint enumeration bound" true
    (count > Opprox_analysis.Lint_app.enumeration_bound)

let test_transformer_output_shape () =
  (* d_model decoded outputs plus the attention-entropy trace. *)
  let exact = Driver.run_exact transformer [| 32.0; 16.0; 8.0 |] in
  check_int "d_model + entropy" 17 (Array.length exact.Driver.output)

let test_transformer_iterations_are_tokens () =
  let exact = Driver.run_exact transformer [| 32.0; 16.0; 8.0 |] in
  check_int "one iteration per token" 32 exact.Driver.iters

let test_transformer_early_phase_propagates () =
  (* Corrupting the first quarter of the decode must hurt at least as much
     as corrupting the last quarter: the hidden state and KV history carry
     the damage forward. *)
  let mid = mid_levels transformer in
  let q phase =
    (evaluate transformer (Schedule.single_phase_active ~n_phases:4 ~phase mid))
      .Driver.qos_degradation
  in
  check_bool "first quarter damage persists" true (q 0 >= q 3);
  check_bool "approximation degrades at all" true (q 0 > 0.0)

let test_transformer_kv_staleness_graded () =
  (* More aggressive KV-cache memoization alone must not improve QoS. *)
  let n = App.n_abs transformer in
  let lv level =
    let a = Array.make n 0 in
    a.(8) <- level;
    a
  in
  let q level = (uniform transformer (lv level)).Driver.qos_degradation in
  check_bool "stale cache degrades" true (q 8 >= 0.0 && q 8 >= q 2 -. 1e-9)

let suite =
  List.map shared_suite (Registry.all ())
  @ [
      ( "apps-specific",
        [
          Alcotest.test_case "lulesh iterations vary" `Quick test_lulesh_iterations_vary;
          Alcotest.test_case "lulesh qos level-monotone" `Quick test_lulesh_level_monotone_qos;
          Alcotest.test_case "lulesh mesh scales work" `Quick test_lulesh_mesh_scales_work;
          Alcotest.test_case "ffmpeg frame bounds" `Quick test_ffmpeg_frame_bounds;
          Alcotest.test_case "ffmpeg filter order" `Quick test_ffmpeg_filter_order_changes_output;
          Alcotest.test_case "ffmpeg iterations = frames" `Quick test_ffmpeg_iterations_are_frames;
          Alcotest.test_case "ffmpeg reports psnr" `Quick test_ffmpeg_reports_psnr;
          Alcotest.test_case "bodytrack truth smooth" `Quick test_bodytrack_truth_smooth;
          Alcotest.test_case "bodytrack layer iterations" `Quick
            test_bodytrack_iterations_depend_on_layers;
          Alcotest.test_case "bodytrack anneal knob" `Quick
            test_bodytrack_anneal_knob_cuts_iterations;
          Alcotest.test_case "pso objective" `Quick test_pso_objective;
          Alcotest.test_case "pso converges" `Quick test_pso_converges;
          Alcotest.test_case "pso iteration response" `Quick
            test_pso_iterations_respond_to_approximation;
          Alcotest.test_case "comd iterations fixed" `Quick test_comd_iterations_fixed;
          Alcotest.test_case "comd timestep input" `Quick test_comd_timestep_input_controls_iters;
          Alcotest.test_case "comd per-atom output" `Quick test_comd_output_is_per_atom;
          Alcotest.test_case "lulesh regions affect output" `Quick test_lulesh_regions_affect_output;
          Alcotest.test_case "lulesh energies positive" `Quick test_lulesh_energies_positive;
          Alcotest.test_case "comd energy negative" `Quick test_comd_energy_negative;
          Alcotest.test_case "comd lattice affects structure" `Quick test_comd_lattice_affects_structure;
          Alcotest.test_case "ffmpeg quantizer" `Quick test_ffmpeg_quantizer_monotone;
          Alcotest.test_case "ffmpeg deterministic" `Quick test_ffmpeg_deterministic_pipeline;
          Alcotest.test_case "pso output shape" `Quick test_pso_output_shape;
          Alcotest.test_case "pso best values" `Quick test_pso_best_values_nonnegative;
          Alcotest.test_case "kmeans output shape" `Quick test_kmeans_output_shape;
          Alcotest.test_case "kmeans inertia positive" `Quick test_kmeans_inertia_positive;
          Alcotest.test_case "kmeans centroids sorted" `Quick test_kmeans_centroids_sorted;
          Alcotest.test_case "kmeans iterations respond" `Quick test_kmeans_iterations_respond;
          Alcotest.test_case "table 1 search spaces" `Quick test_table1_search_spaces;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "transformer space defeats enumeration" `Quick
            test_transformer_space_defeats_enumeration;
          Alcotest.test_case "transformer output shape" `Quick test_transformer_output_shape;
          Alcotest.test_case "transformer iterations are tokens" `Quick
            test_transformer_iterations_are_tokens;
          Alcotest.test_case "transformer early phase propagates" `Quick
            test_transformer_early_phase_propagates;
          Alcotest.test_case "transformer kv staleness graded" `Quick
            test_transformer_kv_staleness_graded;
        ] );
    ]
