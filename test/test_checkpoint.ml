(* Checkpointed simulation: the determinism contract and the cache
   accounting.

   The hard property is bit-identity: a run resumed from an exact
   phase-boundary checkpoint must be indistinguishable — output-derived
   QoS, work units, outer iterations, trace, per-AB and per-phase work —
   from the same run executed from scratch, for every app, schedule and
   phase count.  QCheck drives that per app over random single-phase-active
   schedules (the training sampler's shape, which is exactly what the
   checkpoint path accelerates). *)

module App = Opprox_sim.App
module Env = Opprox_sim.Env
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Rng = Opprox_util.Rng
module Pool = Opprox_util.Pool
module Training = Opprox.Training
open Fixtures

(* Restore the driver's global switches whatever a test does. *)
let with_driver_flags ~checkpointing ~eval_cache f =
  Fun.protect
    ~finally:(fun () ->
      Driver.set_checkpointing true;
      Driver.set_eval_cache true)
    (fun () ->
      Driver.set_checkpointing checkpointing;
      Driver.set_eval_cache eval_cache;
      f ())

(* Small inputs keep the per-case simulation cost of the QCheck properties
   in the milliseconds while still running tens of outer iterations. *)
let small_input (app : App.t) =
  match app.App.name with
  | "lulesh" -> [| 8.0; 2.0 |]
  | "ffmpeg" -> [| 10.0; 1.0; 4.0; 0.0 |]
  | "bodytrack" -> [| 2.0; 16.0; 3.0 |]
  | "pso" -> [| 6.0; 3.0 |]
  | "comd" -> [| 2.0; 1.35; 60.0 |]
  | "kmeans" -> [| 24.0; 3.0; 2.0 |]
  | _ -> app.App.default_input

let eval_equal (a : Driver.evaluation) (b : Driver.evaluation) =
  a.qos_degradation = b.qos_degradation
  && a.psnr = b.psnr && a.speedup = b.speedup && a.work = b.work
  && a.outer_iters = b.outer_iters && a.exact_iters = b.exact_iters && a.trace = b.trace
  && a.work_per_ab = b.work_per_ab && a.work_per_phase = b.work_per_phase

(* Random (n_phases, phase, levels) case for one app. *)
let gen_case (app : App.t) =
  let open QCheck.Gen in
  let levels_gen =
    flatten_l (Array.to_list (Array.map (fun m -> int_range 0 m) (App.max_levels app)))
  in
  int_range 2 5 >>= fun n_phases ->
  int_range 0 (n_phases - 1) >>= fun phase ->
  levels_gen >>= fun levels -> return (n_phases, phase, Array.of_list levels)

let print_case (n_phases, phase, levels) =
  Printf.sprintf "n_phases=%d phase=%d levels=[%s]" n_phases phase
    (String.concat ";" (Array.to_list (Array.map string_of_int levels)))

let resume_equals_scratch (app : App.t) =
  qcheck_case ~count:8
    (Printf.sprintf "%s: checkpoint-resume = scratch" app.App.name)
    (QCheck.make ~print:print_case (gen_case app))
    (fun (n_phases, phase, levels) ->
      let input = small_input app in
      let sched = Schedule.single_phase_active ~n_phases ~phase levels in
      with_driver_flags ~checkpointing:false ~eval_cache:false (fun () ->
          Driver.clear_checkpoints ();
          let scratch = Driver.evaluate app sched input in
          Driver.set_checkpointing true;
          let before = Driver.checkpoint_stats () in
          (* First checkpointed run saves the boundary checkpoints ... *)
          let cold = Driver.evaluate app sched input in
          (* ... the second resumes from the deepest one. *)
          let warm = Driver.evaluate app sched input in
          let after = Driver.checkpoint_stats () in
          let reuse_observed =
            (* Any phase > 0 schedule has a non-empty exact prefix, so the
               warm run must have resumed (and the cold one missed). *)
            if phase = 0 then true
            else after.Driver.hits > before.Driver.hits && after.Driver.misses > before.Driver.misses
          in
          eval_equal scratch cold && eval_equal scratch warm && reuse_observed))

let all_apps = Opprox_apps.Registry.all ()

(* ------------------------------------------------------------------ *)

(* Exact schedules driven through the checkpoint path reproduce the golden
   run itself. *)
let test_exact_schedule_via_checkpoints () =
  let app = Opprox_apps.Registry.find "comd" in
  let input = small_input app in
  with_driver_flags ~checkpointing:true ~eval_cache:false (fun () ->
      Driver.clear_checkpoints ();
      let exact = Driver.run_exact app input in
      let ev =
        Driver.evaluate app (Schedule.uniform ~n_phases:4 [| 0; 0; 0 |]) input
      in
      check_float "exact schedule degrades nothing" 0.0 ev.Driver.qos_degradation;
      check_int "exact schedule work" exact.Driver.work ev.Driver.work;
      check_int "exact schedule iters" exact.Driver.iters ev.Driver.outer_iters)

(* Opaque apps (no iterative form) silently fall back to scratch. *)
let test_opaque_fallback () =
  with_driver_flags ~checkpointing:true ~eval_cache:false (fun () ->
      Driver.clear_checkpoints ();
      Driver.reset_cache_stats ();
      let sched = Schedule.single_phase_active ~n_phases:4 ~phase:2 [| 1; 1 |] in
      let ev1 = Driver.evaluate toy sched toy.App.default_input in
      let ev2 = Driver.evaluate toy sched toy.App.default_input in
      let stats = Driver.checkpoint_stats () in
      check_bool "toy runs agree" true (eval_equal ev1 ev2);
      check_int "no checkpoint activity for opaque app" 0 (stats.Driver.hits + stats.Driver.misses);
      check_int "no checkpoints saved for opaque app" 0 stats.Driver.size)

let test_checkpoint_capacity_and_clear () =
  let app = Opprox_apps.Registry.find "kmeans" in
  let input = small_input app in
  with_driver_flags ~checkpointing:true ~eval_cache:false (fun () ->
      Driver.clear_checkpoints ();
      Fun.protect
        ~finally:(fun () -> Driver.set_checkpoint_capacity 512)
        (fun () ->
          Driver.set_checkpoint_capacity 1;
          let sched = Schedule.single_phase_active ~n_phases:4 ~phase:3 [| 1; 0; 0 |] in
          let scratch =
            Driver.set_checkpointing false;
            Driver.evaluate app sched input
          in
          Driver.set_checkpointing true;
          let capped = Driver.evaluate app sched input in
          let stats = Driver.checkpoint_stats () in
          check_bool "capped run bit-identical" true (eval_equal scratch capped);
          check_bool "capacity bound respected" true (stats.Driver.size <= 1);
          Driver.set_checkpoint_capacity 512;
          ignore (Driver.evaluate app sched input);
          check_bool "capacity raise allows growth" true
            ((Driver.checkpoint_stats ()).Driver.size >= 1);
          Driver.clear_checkpoints ();
          check_int "clear empties the table" 0 (Driver.checkpoint_stats ()).Driver.size))

let test_eval_cache_hits () =
  let app = Opprox_apps.Registry.find "kmeans" in
  let input = small_input app in
  let sched = Schedule.single_phase_active ~n_phases:3 ~phase:1 [| 2; 1; 0 |] in
  with_driver_flags ~checkpointing:true ~eval_cache:true (fun () ->
      Driver.clear_eval_cache ();
      Driver.reset_cache_stats ();
      let ev1 = Driver.evaluate app sched input in
      let ev2 = Driver.evaluate app sched input in
      let stats = Driver.eval_cache_stats () in
      check_bool "memoized evaluation identical" true (eval_equal ev1 ev2);
      check_int "one miss" 1 stats.Driver.misses;
      check_int "one hit" 1 stats.Driver.hits;
      (* Mutating a returned evaluation must not corrupt the memo. *)
      ev2.Driver.work_per_ab.(0) <- -1;
      let ev3 = Driver.evaluate app sched input in
      check_bool "memo unaffected by caller mutation" true (eval_equal ev1 ev3);
      (* A caller-supplied baseline bypasses the memo. *)
      let exact = Driver.run_exact app input in
      let before = (Driver.eval_cache_stats ()).Driver.hits in
      ignore (Driver.evaluate ~exact app sched input);
      check_int "?exact bypasses the memo" before (Driver.eval_cache_stats ()).Driver.hits)

(* The stable seed: a pure function of the app seed and the input's
   IEEE-754 bits, identical across processes and OCaml versions.  The
   literal below is the contract — if it moves, stored training sets and
   golden outputs silently re-randomize. *)
let test_seed_for_stable () =
  let s = Driver.seed_for toy [| 1.5 |] in
  check_int "seed_for is reproducible" s (Driver.seed_for toy [| 1.5 |]);
  check_bool "seed_for separates inputs" true (s <> Driver.seed_for toy [| 1.0 |]);
  check_bool "seed_for is non-negative" true (s >= 0);
  let expected =
    let h =
      Array.fold_left
        (fun acc x -> Rng.mix64 (Int64.logxor acc (Int64.bits_of_float x)))
        (Rng.mix64 (Int64.of_int toy.App.seed))
        [| 1.5 |]
    in
    Int64.to_int h land max_int
  in
  check_int "seed_for matches SplitMix64 fold" expected s

let test_env_snapshot_roundtrip () =
  let sched = Schedule.single_phase_active ~n_phases:2 ~phase:1 [| 1; 1 |] in
  let env =
    Env.create ~rng:(Rng.create 42) ~sched ~expected_iters:10 ~n_abs:2
  in
  ignore (Env.begin_outer_iter env);
  Env.enter_ab env ~ab:0;
  Env.charge env ~ab:0 7;
  Env.charge_base env 3;
  let snap = Env.snapshot env in
  (* Advancing the live environment must not leak into the snapshot. *)
  ignore (Env.begin_outer_iter env);
  Env.enter_ab env ~ab:1;
  Env.charge env ~ab:1 5;
  let r = Env.resume snap ~sched ~expected_iters:10 in
  check_int "resumed work" 10 (Env.total_work r);
  check_int "resumed iters" 1 (Env.outer_iters r);
  check_int "resumed ab0 work" 7 (Env.work_of_ab r 0);
  check_int "resumed ab1 work" 0 (Env.work_of_ab r 1);
  check_bool "resumed trace" true (Env.trace r = [ 0 ]);
  (* The resumed RNG continues the captured stream. *)
  let r2 = Env.resume snap ~sched ~expected_iters:10 in
  check_bool "resumed rng deterministic" true
    (Rng.bits64 (Env.rng r) = Rng.bits64 (Env.rng r2))

let test_exact_prefix () =
  check_int "exact schedule: full prefix" 3
    (Schedule.exact_prefix (Schedule.uniform ~n_phases:3 [| 0; 0 |]));
  check_int "uniform nonzero: no prefix" 0
    (Schedule.exact_prefix (Schedule.uniform ~n_phases:3 [| 1; 0 |]));
  check_int "single-phase-active p: prefix p" 2
    (Schedule.exact_prefix (Schedule.single_phase_active ~n_phases:4 ~phase:2 [| 0; 1 |]));
  check_int "all-zero active vector counts as exact" 4
    (Schedule.exact_prefix (Schedule.single_phase_active ~n_phases:4 ~phase:2 [| 0; 0 |]))

(* ------------------------------------------------------------------ *)

(* Training.collect under checkpointing: the collected dataset is
   bit-identical to the scratch dataset, and each input's exact phase
   prefix is simulated exactly once (one checkpoint-cache miss per input,
   n_phases - 1 saves, everything else hits). *)
let test_collect_accounting () =
  let app = Opprox_apps.Registry.find "comd" in
  let inputs = [| [| 2.0; 1.35; 60.0 |]; [| 2.0; 1.5; 80.0 |] |] in
  let n_phases = 4 in
  let config = { Training.default_config with joint_samples_per_phase = 2; inputs = Some inputs } in
  let pool = Pool.create ~jobs:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      with_driver_flags ~checkpointing:false ~eval_cache:false (fun () ->
          Driver.clear_all_caches ();
          let scratch = Training.collect ~config ~pool app ~n_phases in
          Driver.set_checkpointing true;
          Driver.clear_all_caches ();
          Driver.reset_cache_stats ();
          let resumed = Training.collect ~config ~pool app ~n_phases in
          check_bool "datasets bit-identical (scratch vs checkpointed)" true
            (scratch.Training.samples = resumed.Training.samples);
          let stats = Driver.checkpoint_stats () in
          let n_inputs = Array.length inputs in
          check_int "one scratch prefix per (input, n_phases)" n_inputs stats.Driver.misses;
          check_int "one checkpoint per interior boundary" (n_inputs * (n_phases - 1))
            (Driver.checkpoint_save_count ());
          (* Every phase>=1 run except the first per input resumes: the
             plan has (local sweeps + joint samples) runs per phase. *)
          let runs_per_phase =
            List.length (Opprox_sim.Config_space.local_sweeps app.App.abs)
            + config.Training.joint_samples_per_phase
          in
          let applicable = n_inputs * (n_phases - 1) * runs_per_phase in
          check_int "all other prefix runs resume from a checkpoint"
            (applicable - n_inputs) stats.Driver.hits;
          (* Third arm: the full production configuration (checkpoints and
             evaluation memo on) still reproduces the scratch dataset. *)
          Driver.set_eval_cache true;
          Driver.clear_all_caches ();
          let memoized = Training.collect ~config ~pool app ~n_phases in
          check_bool "datasets bit-identical (scratch vs memoized)" true
            (scratch.Training.samples = memoized.Training.samples)))

let suite =
  [
    ( "checkpoint",
      List.map resume_equals_scratch all_apps
      @ [
          Alcotest.test_case "exact schedule via checkpoints" `Quick
            test_exact_schedule_via_checkpoints;
          Alcotest.test_case "opaque app falls back" `Quick test_opaque_fallback;
          Alcotest.test_case "capacity bound + clear" `Quick test_checkpoint_capacity_and_clear;
          Alcotest.test_case "evaluation memo" `Quick test_eval_cache_hits;
          Alcotest.test_case "seed_for stability" `Quick test_seed_for_stable;
          Alcotest.test_case "env snapshot roundtrip" `Quick test_env_snapshot_roundtrip;
          Alcotest.test_case "schedule exact_prefix" `Quick test_exact_prefix;
          Alcotest.test_case "collect accounting" `Slow test_collect_accounting;
        ] );
  ]
