(* Tests for the concurrency-safety checker: the Conc runtime (lock-order
   graph, held stacks, stress mode), Dmutex instrumentation, Guarded
   lockset checking, and the Lint_conc diagnostic bridge.

   Every test brackets itself with [with_checker]: the checker state is
   process-global, and tests that deliberately plant defects must not
   leak their reports into the suite-wide report-clean assertion
   [main.ml] makes under OPPROX_RACECHECK=1. *)

open Fixtures
module Conc = Opprox_util.Conc
module Dmutex = Opprox_util.Dmutex
module Guarded = Opprox_util.Guarded
module Lint_conc = Opprox_analysis.Lint_conc
module Diagnostic = Opprox_analysis.Diagnostic

let with_checker f =
  let was = Conc.enabled () in
  Conc.reset ();
  Conc.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Conc.reset ();
      Conc.set_enabled was)
    f

let codes () = List.map (fun (r : Conc.report) -> r.Conc.code) (Conc.reports ())

(* ------------------------------------------------------------- CONC001 *)

let test_ab_ba_deadlock_detected () =
  with_checker (fun () ->
      let a = Dmutex.create ~name:"t.conc.a" () in
      let b = Dmutex.create ~name:"t.conc.b" () in
      (* A -> B then B -> A from one domain: the order graph convicts the
         shape without needing the fatal interleaving to occur. *)
      Dmutex.lock a;
      Dmutex.lock b;
      Dmutex.unlock b;
      Dmutex.unlock a;
      check_bool "clean after first nesting" true (Conc.reports () = []);
      Dmutex.lock b;
      Dmutex.lock a;
      Dmutex.unlock a;
      Dmutex.unlock b;
      match Conc.reports () with
      | [ r ] ->
          Alcotest.(check string) "code" "CONC001" r.Conc.code;
          check_bool "subject names both classes" true
            (r.Conc.subject = "t.conc.b -> t.conc.a");
          (* Both acquisition sites of the closing edge are in the message. *)
          check_bool "message carries sites" true
            (String.length r.Conc.message > 0
            && String.split_on_char 't' r.Conc.message <> [])
      | rs -> Alcotest.failf "expected exactly one CONC001, got %d" (List.length rs))

let test_same_class_nesting_is_self_cycle () =
  with_checker (fun () ->
      (* Two instances of one class nested: the AB/BA hazard sharded
         structures must never create, reported from a single nesting. *)
      let s1 = Dmutex.create ~name:"t.conc.shard" () in
      let s2 = Dmutex.create ~name:"t.conc.shard" () in
      Dmutex.lock s1;
      Dmutex.lock s2;
      Dmutex.unlock s2;
      Dmutex.unlock s1;
      check_bool "self-edge reported as CONC001" true (List.mem "CONC001" (codes ())))

let test_deadlock_deduplicated () =
  with_checker (fun () ->
      let a = Dmutex.create ~name:"t.dedup.a" () in
      let b = Dmutex.create ~name:"t.dedup.b" () in
      for _ = 1 to 5 do
        Dmutex.lock a;
        Dmutex.lock b;
        Dmutex.unlock b;
        Dmutex.unlock a;
        Dmutex.lock b;
        Dmutex.lock a;
        Dmutex.unlock a;
        Dmutex.unlock b
      done;
      Alcotest.(check int) "one report for five repeats" 1 (List.length (Conc.reports ())))

(* The QCheck property the checker's soundness rests on: any acquisition
   discipline that respects a fixed hierarchy (locks only taken in
   ascending index order) can never close a cycle, so CONC001 must never
   fire — however the sessions are shaped. *)
let prop_hierarchical_discipline_never_conc001 =
  qcheck_case ~count:150 "hierarchical lock discipline never reports CONC001"
    QCheck.(list_of_size (Gen.int_range 0 12) (list_of_size (Gen.int_range 0 5) (int_range 0 7)))
    (fun sessions ->
      let was = Conc.enabled () in
      Conc.reset ();
      Conc.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Conc.reset ();
          Conc.set_enabled was)
        (fun () ->
          let locks = Array.init 8 (fun i -> Dmutex.create ~name:(Printf.sprintf "t.h%d" i) ()) in
          List.iter
            (fun session ->
              (* Ascending, deduplicated: a legal nested acquisition order. *)
              let order = List.sort_uniq compare session in
              List.iter (fun i -> Dmutex.lock locks.(i)) order;
              List.iter (fun i -> Dmutex.unlock locks.(i)) (List.rev order))
            sessions;
          not (List.mem "CONC001" (codes ()))))

(* ------------------------------------------------------------- CONC002 *)

let test_unguarded_access_detected () =
  with_checker (fun () ->
      let m = Dmutex.create ~name:"t.guard" () in
      let cell = Guarded.create ~name:"t.cell" ~locks:[ m ] 7 in
      (* Guarded access: clean. *)
      Dmutex.lock m;
      Alcotest.(check int) "guarded read" 7 (Guarded.get cell);
      Guarded.set cell 8;
      Dmutex.unlock m;
      check_bool "no report for guarded access" true (Conc.reports () = []);
      (* Unguarded access: CONC002, and the access still proceeds. *)
      Alcotest.(check int) "unguarded read proceeds" 8 (Guarded.get cell);
      match Conc.reports () with
      | [ r ] ->
          Alcotest.(check string) "code" "CONC002" r.Conc.code;
          Alcotest.(check string) "subject" "t.cell" r.Conc.subject
      | rs -> Alcotest.failf "expected exactly one CONC002, got %d" (List.length rs))

let test_partial_lockset_detected () =
  with_checker (fun () ->
      let m1 = Dmutex.create ~name:"t.ls.m1" () in
      let m2 = Dmutex.create ~name:"t.ls.m2" () in
      let cell = Guarded.create ~name:"t.ls.cell" ~locks:[ m1; m2 ] 0 in
      (* Holding only half the lockset is still unguarded. *)
      Dmutex.lock m1;
      Guarded.set cell 1;
      Dmutex.unlock m1;
      check_bool "partial lockset reported" true (List.mem "CONC002" (codes ())))

let test_guarded_requires_lockset () =
  Alcotest.check_raises "empty lockset rejected"
    (Invalid_argument "Guarded.create: empty lockset") (fun () ->
      ignore (Guarded.create ~locks:[] 0 : int Guarded.t))

let test_guarded_off_is_unchecked () =
  let was = Conc.enabled () in
  Conc.set_enabled false;
  Fun.protect
    ~finally:(fun () -> Conc.set_enabled was)
    (fun () ->
      let m = Dmutex.create ~name:"t.off.guard" () in
      let cell = Guarded.create ~name:"t.off.cell" ~locks:[ m ] 1 in
      let before = Conc.report_count () in
      Alcotest.(check int) "read passes" 1 (Guarded.get cell);
      Alcotest.(check int) "no report while off" before (Conc.report_count ()))

(* ----------------------------------------------------- CONC003 / CONC004 *)

let test_reentrant_reports_and_raises () =
  with_checker (fun () ->
      let m = Dmutex.create ~name:"t.reent" () in
      Dmutex.lock m;
      (match Dmutex.lock m with
      | () -> Alcotest.fail "reentrant lock not detected"
      | exception Failure msg ->
          check_bool "legacy Failure message kept" true
            (String.length msg >= String.length "Dmutex.lock"
            && String.sub msg 0 (String.length "Dmutex.lock") = "Dmutex.lock"));
      Dmutex.unlock m;
      check_bool "CONC003 recorded" true (List.mem "CONC003" (codes ()));
      (* After release the same domain may take it again. *)
      Dmutex.lock m;
      Dmutex.unlock m)

let test_foreign_unlock_reports_and_raises () =
  with_checker (fun () ->
      let m = Dmutex.create ~name:"t.foreign" () in
      Dmutex.lock m;
      let d =
        Domain.spawn (fun () ->
            match Dmutex.unlock m with
            | () -> false
            | exception Failure _ -> true)
      in
      check_bool "foreign unlock raised in the other domain" true (Domain.join d);
      check_bool "CONC004 recorded" true (List.mem "CONC004" (codes ()));
      Dmutex.unlock m)

(* ------------------------------------------------------- held-stack API *)

let test_held_by_self_tracks_wait_window () =
  with_checker (fun () ->
      let m = Dmutex.create ~name:"t.held" () in
      check_bool "not held before lock" false (Dmutex.held_by_self m);
      Dmutex.lock m;
      check_bool "held after lock" true (Dmutex.held_by_self m);
      Dmutex.unlock m;
      check_bool "not held after unlock" false (Dmutex.held_by_self m))

(* --------------------------------------------------------------- stress *)

let test_stress_runs_reps_and_restores () =
  let was = Conc.enabled () in
  Conc.set_enabled false;
  Fun.protect
    ~finally:(fun () ->
      Conc.reset ();
      Conc.set_enabled was)
    (fun () ->
      let seen = ref [] in
      Conc.stress ~seed:7 ~reps:4 (fun rep ->
          seen := rep :: !seen;
          check_bool "checker forced on inside stress" true (Conc.enabled ()));
      Alcotest.(check (list int)) "all reps ran in order" [ 0; 1; 2; 3 ] (List.rev !seen);
      check_bool "enable state restored" false (Conc.enabled ()))

let test_stress_widening_still_deterministic_results () =
  with_checker (fun () ->
      (* A sharded map under stress: yields perturb interleavings, the
         result stays a function of the inputs. *)
      let map = Opprox_util.Shardmap.create ~name:"t.stress.map" ~capacity:max_int () in
      Conc.stress ~seed:3 ~reps:2 (fun rep ->
          let pool = Opprox_util.Pool.create ~jobs:3 () in
          Fun.protect
            ~finally:(fun () -> Opprox_util.Pool.shutdown pool)
            (fun () ->
              Opprox_util.Pool.parallel_iter ~pool
                (fun i ->
                  ignore (Opprox_util.Shardmap.add map (Printf.sprintf "r%d.%d" rep i) i : bool))
                (Array.init 64 Fun.id)));
      Alcotest.(check int) "every key inserted exactly once" 128
        (Opprox_util.Shardmap.size map);
      check_bool "no reports from disciplined stress" true (Conc.reports () = []))

(* ------------------------------------------------------------ Lint_conc *)

let test_lint_conc_bridge () =
  with_checker (fun () ->
      let m = Dmutex.create ~name:"t.lint.guard" () in
      let cell = Guarded.create ~name:"t.lint.cell" ~locks:[ m ] 0 in
      ignore (Guarded.get cell : int);
      match Lint_conc.diagnostics () with
      | [ d ] ->
          Alcotest.(check string) "code" "CONC002" d.Diagnostic.code;
          check_bool "severity error" true (d.Diagnostic.severity = Diagnostic.Error);
          Alcotest.(check (option string)) "subject as detail" (Some "t.lint.cell")
            d.Diagnostic.location.Diagnostic.detail
      | ds -> Alcotest.failf "expected one diagnostic, got %d" (List.length ds))

let test_conc_codes_registered () =
  List.iter
    (fun code ->
      check_bool (code ^ " in Diagnostic.codes") true
        (List.mem_assoc code Diagnostic.codes))
    [ "CONC001"; "CONC002"; "CONC003"; "CONC004" ]

let suite =
  [
    ( "conc",
      [
        Alcotest.test_case "AB/BA lock-order cycle -> CONC001" `Quick
          test_ab_ba_deadlock_detected;
        Alcotest.test_case "same-class nesting -> CONC001 self-edge" `Quick
          test_same_class_nesting_is_self_cycle;
        Alcotest.test_case "CONC001 deduplicated" `Quick test_deadlock_deduplicated;
        prop_hierarchical_discipline_never_conc001;
        Alcotest.test_case "unguarded access -> CONC002" `Quick test_unguarded_access_detected;
        Alcotest.test_case "partial lockset -> CONC002" `Quick test_partial_lockset_detected;
        Alcotest.test_case "empty lockset rejected" `Quick test_guarded_requires_lockset;
        Alcotest.test_case "checker off: Guarded unchecked" `Quick test_guarded_off_is_unchecked;
        Alcotest.test_case "reentrant lock -> CONC003 + Failure" `Quick
          test_reentrant_reports_and_raises;
        Alcotest.test_case "foreign unlock -> CONC004 + Failure" `Quick
          test_foreign_unlock_reports_and_raises;
        Alcotest.test_case "held_by_self tracking" `Quick test_held_by_self_tracks_wait_window;
        Alcotest.test_case "stress: reps, forced-on, restore" `Quick
          test_stress_runs_reps_and_restores;
        Alcotest.test_case "stress: results deterministic, report-clean" `Quick
          test_stress_widening_still_deterministic_results;
        Alcotest.test_case "Lint_conc renders reports" `Quick test_lint_conc_bridge;
        Alcotest.test_case "CONC codes registered" `Quick test_conc_codes_registered;
      ] );
  ]
