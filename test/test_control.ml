(* Tests for the online phase-boundary controller (Controller), its
   serving-protocol telemetry surface (telemetry frames in, plan deltas
   out), and the accounting bugfixes that ride along: the optimizer's
   sub-budget split, Phases.probe seeding, and the loadgen percentile
   pass.

   The controller tests run on a registry application because control
   needs the iterative interface; bodytrack is retrained at a small
   problem scale (App.with_training_inputs) so the whole file stays in
   the low seconds. *)

module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Registry = Opprox_apps.Registry
module Optimizer = Opprox.Optimizer
module Controller = Opprox.Controller
module Phases = Opprox.Phases
module Protocol = Opprox_serve.Protocol
module Server = Opprox_serve.Server
module Client = Opprox_serve.Client
module Loadgen = Opprox_serve.Loadgen
module Diagnostic = Opprox_analysis.Diagnostic
module Sexp = Opprox_util.Sexp
open Fixtures

(* ------------------------------------------------------------ fixtures *)

(* Bodytrack at test scale: tiny inputs, three phases, sparse joint
   sampling.  Training takes well under a second and — deliberately —
   generalizes poorly, so executing the plan on an off-distribution
   input drifts enough to exercise the replan path. *)
let bodytrack_small =
  lazy
    (App.with_training_inputs (Registry.find "bodytrack")
       ~default_input:[| 2.0; 16.0; 3.0 |]
       ~training_inputs:[| [| 2.0; 16.0; 3.0 |]; [| 3.0; 24.0; 4.0 |] |])

let trained =
  lazy
    (Opprox.train
       ~config:
         {
           Opprox.default_train_config with
           n_phases = Some 3;
           training = { Opprox.Training.default_config with joint_samples_per_phase = 4 };
         }
       (Lazy.force bodytrack_small))

(* The pinned off-distribution input: first parameter scaled 2.5x away
   from everything the models saw. *)
let perturbed = [| 5.0; 16.0; 3.0 |]

let pinned_budget = 10.0

let eval_equal (a : Driver.evaluation) (b : Driver.evaluation) =
  a.qos_degradation = b.qos_degradation
  && a.psnr = b.psnr && a.speedup = b.speedup && a.work = b.work
  && a.outer_iters = b.outer_iters && a.exact_iters = b.exact_iters && a.trace = b.trace
  && a.work_per_ab = b.work_per_ab && a.work_per_phase = b.work_per_phase

(* ---------------------------------------------------------- controller *)

(* A run that never replans is the driver's evaluation, bit for bit: the
   controller builds its environment exactly as Driver.execute does, so
   with drift_tol = infinity the two executions are the same program. *)
let test_zero_drift_bit_identical =
  qcheck_case ~count:8 "infinite tolerance: no replans, bit-identical"
    QCheck.(float_range 5.0 30.0)
    (fun budget ->
      let t = Lazy.force trained in
      let plan = Opprox.optimize t ~budget in
      let out =
        Opprox.run_controlled
          ~config:{ Controller.drift_tol = Float.infinity; max_replans = 4 }
          t plan
      in
      out.Controller.replans = 0
      && out.Controller.steps = out.Controller.evaluation.Driver.outer_iters
      && eval_equal out.Controller.evaluation (Opprox.apply t plan))

let test_controlled_off_distribution_input_bit_identical () =
  (* Zero-replan identity must hold on a non-default input too. *)
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  let out =
    Opprox.run_controlled
      ~config:{ Controller.drift_tol = Float.infinity; max_replans = 4 }
      ~input:perturbed t plan
  in
  check_int "no replans" 0 out.Controller.replans;
  check_bool "bit-identical on perturbed input" true
    (eval_equal out.Controller.evaluation (Opprox.apply ~input:perturbed t plan))

(* The satellite scenario the whole PR exists for: on the pinned
   perturbed input the static plan blows its budget while the controller
   notices the drift at a phase boundary, re-solves the remaining
   phases, and lands inside it. *)
let test_perturbed_static_violates_controlled_holds () =
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  let static = Opprox.apply ~input:perturbed t plan in
  check_bool "static plan violates its budget" true
    (static.Driver.qos_degradation > pinned_budget);
  let out = Opprox.run_controlled ~input:perturbed t plan in
  check_bool "controller replanned" true (out.Controller.replans >= 1);
  check_bool "controller held the budget" true out.Controller.within_budget;
  check_bool "strictly better QoS than static" true
    (out.Controller.evaluation.Driver.qos_degradation < static.Driver.qos_degradation);
  (* Phase reports carry the boundary evidence. *)
  check_int "one report per phase" 3 (List.length out.Controller.phases);
  check_bool "some boundary was flagged" true
    (List.exists (fun (r : Controller.phase_report) -> r.Controller.replanned)
       out.Controller.phases)

(* Replanning must reuse the live run's state: no extra exact runs are
   charged beyond the one reference run, and every outer iteration is
   stepped exactly once even across a mid-run schedule swap. *)
let test_replan_reuses_checkpoints () =
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  (* Warm the exact-run and profile caches so the measurement below
     counts only what the controlled run itself adds. *)
  ignore (Opprox.run_controlled ~input:perturbed t plan);
  Driver.reset_exact_run_count ();
  let out = Opprox.run_controlled ~input:perturbed t plan in
  check_bool "replanned" true (out.Controller.replans >= 1);
  check_int "no extra exact runs" 0 (Driver.exact_run_count ());
  check_int "every iteration stepped once"
    out.Controller.evaluation.Driver.outer_iters out.Controller.steps

let test_controller_rejects_opaque_apps () =
  let t = Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy in
  let plan = Opprox.optimize t ~budget:10.0 in
  Alcotest.check_raises "opaque app"
    (Invalid_argument "Controller.run: \"toy\" exposes no iterative interface") (fun () ->
      ignore (Opprox.run_controlled t plan))

let test_controller_config_validation () =
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Controller.run: drift_tol must be >= 0") (fun () ->
      ignore
        (Opprox.run_controlled
           ~config:{ Controller.drift_tol = -1.0; max_replans = 4 }
           t plan))

(* ----------------------------------------------- optimizer budget split *)

(* Regression for the stranded-grant bug: an infeasible phase used to
   keep its full allocation while its unconsumed share was also handed
   to later phases, so the recorded sub-budgets could sum past the
   plan's budget.  The split must never promise more than the budget,
   for any app or budget. *)
let test_sub_budgets_never_exceed_budget () =
  let toy_trained =
    Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
  in
  let bt = Lazy.force trained in
  List.iter
    (fun (label, t) ->
      List.iter
        (fun budget ->
          let plan = Opprox.optimize t ~budget in
          let total =
            List.fold_left
              (fun acc (c : Optimizer.phase_choice) -> acc +. c.Optimizer.sub_budget)
              0.0 plan.Optimizer.choices
          in
          check_bool
            (Printf.sprintf "%s: sum %.6f within budget %.1f" label total budget)
            true
            (total <= budget +. (1e-6 *. budget));
          List.iter
            (fun (c : Optimizer.phase_choice) ->
              check_bool "sub-budget nonnegative" true (c.Optimizer.sub_budget >= 0.0))
            plan.Optimizer.choices)
        [ 0.5; 2.0; 5.0; 10.0; 20.0; 40.0 ])
    [ ("toy", toy_trained); ("bodytrack", bt) ]

(* ------------------------------------------------------- Phases seeding *)

(* Algorithm 1's probes draw their variance-injection stream from the
   caller's seed alone.  The old code folded n_phases into the seed, so
   changing the probe granularity silently changed the random AL vectors
   too — these pins fail if that ever comes back. *)
let test_probe_seed_is_caller_seed () =
  let a = Phases.probe ~samples_per_phase:4 ~seed:42 toy ~n_phases:2 in
  let b = Phases.probe ~samples_per_phase:4 ~seed:42 toy ~n_phases:2 in
  Alcotest.(check (array (float 1e-12))) "deterministic" a.Phases.mean_qos_per_phase
    b.Phases.mean_qos_per_phase;
  let c = Phases.probe ~samples_per_phase:4 ~seed:43 toy ~n_phases:2 in
  check_bool "seed actually feeds the stream" true
    (a.Phases.mean_qos_per_phase <> c.Phases.mean_qos_per_phase)

let test_search_pins_post_fix_result () =
  let n, probes = Phases.search ~threshold:0.5 ~max_phases:8 ~samples_per_phase:4 ~seed:7 toy in
  check_int "phase count" 2 n;
  check_bool "made probes" true (List.length probes >= 1);
  (* Golden values of the first probe under the fixed seeding; a
     regression to [seed + n_phases] shifts the sampled AL vectors and
     moves these. *)
  let p = List.hd probes in
  check_int "first probe granularity" 2 p.Phases.n_phases;
  Alcotest.(check (array (float 1e-3)))
    "pinned probe means" [| 4.89895; 4.9907 |] p.Phases.mean_qos_per_phase

(* --------------------------------------------------- loadgen percentiles *)

let test_percentiles_drop_nonfinite () =
  let sorted, dropped =
    Loadgen.finite_sorted [ 5.0; Float.nan; 1.0; Float.infinity; 3.0; Float.neg_infinity ]
  in
  check_int "three dropped" 3 dropped;
  Alcotest.(check (array (float 0.0))) "sorted ascending" [| 1.0; 3.0; 5.0 |] sorted;
  check_float "p50" 3.0 (Loadgen.percentile sorted 0.50);
  check_float "p999 is the finite max" 5.0 (Loadgen.percentile sorted 0.999)

let test_percentiles_empty_and_clean () =
  let sorted, dropped = Loadgen.finite_sorted [] in
  check_int "nothing dropped" 0 dropped;
  check_bool "empty percentile is NaN" true (Float.is_nan (Loadgen.percentile sorted 0.5));
  let sorted, dropped = Loadgen.finite_sorted [ 2.0; -1.0; 0.0 ] in
  check_int "finite samples all kept" 0 dropped;
  Alcotest.(check (array (float 0.0))) "negatives order correctly" [| -1.0; 0.0; 2.0 |] sorted

(* ----------------------------------------------------- telemetry codecs *)

let roundtrip_telemetry tm =
  Protocol.telemetry_of_sexp (Sexp.of_string (Sexp.to_string (Protocol.telemetry_to_sexp tm)))

let sample_telemetry ?input () =
  Protocol.telemetry ?input ~app:"bodytrack" ~plan_budget:10.0 ~phase:1 ~n_phases:3 ~drift:0.8
    ~drift_tol:0.25 ~observed_work:954050.0 ~predicted_work:530693.0 ~remaining_budget:6.5 ()

let test_telemetry_roundtrip () =
  let tm = sample_telemetry ~input:[| 5.0; 16.0; 3.0 |] () in
  check_bool "with input" true (roundtrip_telemetry tm = tm);
  let tm = sample_telemetry () in
  check_bool "without input" true (roundtrip_telemetry tm = tm);
  check_bool "kind tag on the wire" true
    (Protocol.frame_kind (Protocol.telemetry_to_sexp tm) = "telemetry")

let test_requests_stay_untagged () =
  let req = Protocol.request ~app:"toy" ~budget:10.0 () in
  check_bool "request frames have no kind" true
    (Protocol.frame_kind (Protocol.request_to_sexp req) = "request")

let test_telemetry_rejects_malformed () =
  let truncated = Sexp.of_string "((v 1) (kind telemetry) (app bodytrack) (phase 1))" in
  (match Protocol.telemetry_of_sexp truncated with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "truncated telemetry frame must not decode");
  let req = Protocol.request_to_sexp (Protocol.request ~app:"toy" ~budget:10.0 ()) in
  match Protocol.telemetry_of_sexp req with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "a plan request must not decode as telemetry"

let roundtrip_response r =
  Protocol.response_of_sexp (Sexp.of_string (Sexp.to_string (Protocol.response_to_sexp r)))

let test_plan_delta_roundtrip () =
  let no_change = Protocol.PlanDelta { delta = Protocol.No_change; elapsed_ms = 1.5 } in
  check_bool "no_change" true (roundtrip_response no_change = no_change);
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  let replan =
    Protocol.PlanDelta
      { delta = Protocol.Replan { from_phase = 2; plan }; elapsed_ms = 3.25 }
  in
  match (roundtrip_response replan, replan) with
  | ( Protocol.PlanDelta { delta = Protocol.Replan { from_phase = f1; plan = p1 }; _ },
      Protocol.PlanDelta { delta = Protocol.Replan { from_phase = f2; plan = p2 }; _ } ) ->
      check_int "from_phase survives" f2 f1;
      check_bool "schedule survives" true
        (Schedule.equal p1.Optimizer.schedule p2.Optimizer.schedule);
      check_float "budget survives" p2.Optimizer.budget p1.Optimizer.budget
  | _ -> Alcotest.fail "replan delta did not roundtrip as a replan"

(* ----------------------------------------------- telemetry over loopback *)

let make_server () = Server.create [ Lazy.force trained ]

let test_low_drift_acknowledged () =
  let server = make_server () in
  let client = Client.loopback server in
  let tm =
    Protocol.telemetry ~app:"bodytrack" ~plan_budget:10.0 ~phase:0 ~n_phases:3 ~drift:0.1
      ~drift_tol:0.25 ~observed_work:100.0 ~predicted_work:95.0 ~remaining_budget:8.0 ()
  in
  match Client.telemetry client tm with
  | Protocol.PlanDelta { delta = Protocol.No_change; _ } -> ()
  | r -> Alcotest.fail ("low drift should be acknowledged, got " ^ Test_serve.code_of r)

let test_high_drift_replans () =
  let server = make_server () in
  let client = Client.loopback server in
  let tm =
    Protocol.telemetry ~input:perturbed ~app:"bodytrack" ~plan_budget:10.0 ~phase:0
      ~n_phases:3 ~drift:0.9 ~drift_tol:0.25 ~observed_work:200.0 ~predicted_work:100.0
      ~remaining_budget:6.0 ()
  in
  match Client.telemetry client tm with
  | Protocol.PlanDelta { delta = Protocol.Replan { from_phase; plan }; _ } ->
      check_int "suffix starts after the reported phase" 1 from_phase;
      check_float "solved against the remaining budget" 6.0 plan.Optimizer.budget;
      let t = Lazy.force trained in
      check_bool "delta plan lints clean" true
        (Diagnostic.errors (Optimizer.lint ~models:t.Opprox.models plan) = [])
  | r -> Alcotest.fail ("high drift should replan, got " ^ Test_serve.code_of r)

let test_telemetry_unknown_app_rejected () =
  let server = make_server () in
  let client = Client.loopback server in
  let tm =
    Protocol.telemetry ~app:"nonesuch" ~plan_budget:10.0 ~phase:0 ~n_phases:3 ~drift:0.9
      ~drift_tol:0.25 ~observed_work:1.0 ~predicted_work:1.0 ~remaining_budget:5.0 ()
  in
  match Client.telemetry client tm with
  | Protocol.Error diags ->
      check_bool "SRV002" true
        (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = "SRV002") diags)
  | r -> Alcotest.fail ("unknown app must be rejected, got " ^ Test_serve.code_of r)

let test_telemetry_bad_phase_rejected () =
  let server = make_server () in
  let client = Client.loopback server in
  let tm =
    Protocol.telemetry ~app:"bodytrack" ~plan_budget:10.0 ~phase:7 ~n_phases:3 ~drift:0.9
      ~drift_tol:0.25 ~observed_work:1.0 ~predicted_work:1.0 ~remaining_budget:5.0 ()
  in
  match Client.telemetry client tm with
  | Protocol.Error diags ->
      check_bool "SRV004" true
        (List.exists (fun (d : Diagnostic.t) -> d.Diagnostic.code = "SRV004") diags)
  | r -> Alcotest.fail ("out-of-range phase must be rejected, got " ^ Test_serve.code_of r)

(* The full streaming-recontrol loop: the controller's replanner ships
   telemetry to a loopback server and adopts the returned deltas.  The
   server solves with the same models against the same input, so the
   outcome must match the local default replanner exactly. *)
let test_streaming_recontrol_matches_local () =
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:pinned_budget in
  let server = make_server () in
  let client = Client.loopback server in
  let remote =
    Client.replanner client ~input:perturbed ~app:"bodytrack" ~plan_budget:pinned_budget
      ~drift_tol:Controller.default_config.Controller.drift_tol ()
  in
  let streamed = Opprox.run_controlled ~replan:remote ~input:perturbed t plan in
  check_bool "streamed run replans" true (streamed.Controller.replans >= 1);
  check_bool "streamed run holds the budget" true streamed.Controller.within_budget;
  let local = Opprox.run_controlled ~input:perturbed t plan in
  check_int "same replan count" local.Controller.replans streamed.Controller.replans;
  check_bool "same final schedule" true
    (Schedule.equal local.Controller.schedule streamed.Controller.schedule);
  check_bool "same evaluation" true
    (eval_equal local.Controller.evaluation streamed.Controller.evaluation)

let suite =
  [
    ( "control",
      [
        Alcotest.test_case "controlled run off-distribution is bit-identical" `Quick
          test_controlled_off_distribution_input_bit_identical;
        Alcotest.test_case "perturbed: static violates, controlled holds" `Quick
          test_perturbed_static_violates_controlled_holds;
        Alcotest.test_case "replans reuse checkpoints" `Quick test_replan_reuses_checkpoints;
        Alcotest.test_case "opaque apps are rejected" `Quick test_controller_rejects_opaque_apps;
        Alcotest.test_case "config validation" `Quick test_controller_config_validation;
        test_zero_drift_bit_identical;
      ] );
    ( "control-accounting",
      [
        Alcotest.test_case "sub-budgets never exceed the budget" `Quick
          test_sub_budgets_never_exceed_budget;
        Alcotest.test_case "probe stream is seeded by the caller" `Quick
          test_probe_seed_is_caller_seed;
        Alcotest.test_case "search pins the post-fix result" `Quick
          test_search_pins_post_fix_result;
        Alcotest.test_case "percentiles drop non-finite samples" `Quick
          test_percentiles_drop_nonfinite;
        Alcotest.test_case "percentiles on empty and clean input" `Quick
          test_percentiles_empty_and_clean;
      ] );
    ( "control-telemetry",
      [
        Alcotest.test_case "telemetry frames roundtrip" `Quick test_telemetry_roundtrip;
        Alcotest.test_case "requests stay untagged" `Quick test_requests_stay_untagged;
        Alcotest.test_case "malformed telemetry is rejected" `Quick
          test_telemetry_rejects_malformed;
        Alcotest.test_case "plan deltas roundtrip" `Quick test_plan_delta_roundtrip;
        Alcotest.test_case "low drift is acknowledged" `Quick test_low_drift_acknowledged;
        Alcotest.test_case "high drift replans the suffix" `Quick test_high_drift_replans;
        Alcotest.test_case "unknown app telemetry rejected" `Quick
          test_telemetry_unknown_app_rejected;
        Alcotest.test_case "out-of-range phase rejected" `Quick
          test_telemetry_bad_phase_rejected;
        Alcotest.test_case "streaming recontrol matches local" `Quick
          test_streaming_recontrol_matches_local;
      ] );
  ]
