(* Tests for the OPPROX core: Cfmodel, Training, Roi, Phases, Models,
   Optimizer, Oracle, and the end-to-end facade.  Everything runs on the
   fast [Fixtures.toy] and [Fixtures.flow] applications. *)

module App = Opprox_sim.App
module Driver = Opprox_sim.Driver
module Schedule = Opprox_sim.Schedule
module Training = Opprox.Training
module Models = Opprox.Models
module Roi = Opprox.Roi
module Optimizer = Opprox.Optimizer
module Oracle = Opprox.Oracle
module Phases = Opprox.Phases
module Cfmodel = Opprox.Cfmodel
open Fixtures

(* Shared trained pipeline on the toy app (built once). *)
let trained =
  lazy
    (Opprox.train
       ~config:{ Opprox.default_train_config with n_phases = Some 2 }
       toy)

(* -------------------------------------------------------------- Cfmodel *)

let test_cfmodel_flow_classes () =
  let cf = Cfmodel.build flow ~inputs:flow.App.training_inputs in
  check_int "two control flows" 2 (Cfmodel.n_classes cf);
  check_float "classifier accuracy" 1.0 (Cfmodel.training_accuracy cf);
  (* Even and odd modes land in different classes. *)
  check_bool "even/odd differ" true (Cfmodel.classify cf [| 0.0 |] <> Cfmodel.classify cf [| 1.0 |])

let test_cfmodel_single_class () =
  let cf = Cfmodel.build toy ~inputs:toy.App.training_inputs in
  check_int "one control flow" 1 (Cfmodel.n_classes cf)

let test_cfmodel_unseen_trace () =
  let cf = Cfmodel.build toy ~inputs:toy.App.training_inputs in
  check_int "unknown trace maps to 0" 0 (Cfmodel.class_of_trace cf [ 9; 9; 9 ])

let test_signature_truncation () =
  let long = List.init 50 (fun i -> i) in
  check_int "truncated" Cfmodel.signature_length
    (List.length (Cfmodel.signature_of_trace long))

(* ------------------------------------------------------------- Training *)

let training_config =
  { Training.default_config with joint_samples_per_phase = 6 }

let dataset = lazy (Training.collect ~config:training_config toy ~n_phases:2)

let test_training_sample_count () =
  let t = Lazy.force dataset in
  (* per input, per phase: local sweeps (3 + 3 levels) + 6 joint *)
  let expected = Array.length toy.App.training_inputs * 2 * (6 + 6) in
  check_int "run count" expected (Training.n_runs t)

let test_training_samples_well_formed () =
  let t = Lazy.force dataset in
  Array.iter
    (fun (s : Training.sample) ->
      check_bool "phase in range" true (s.phase >= 0 && s.phase < 2);
      check_bool "qos nonnegative" true (s.qos >= 0.0);
      check_bool "speedup positive" true (s.speedup > 0.0);
      check_bool "iters ratio positive" true (s.iters_ratio > 0.0))
    t.Training.samples

let test_training_phase_filter () =
  let t = Lazy.force dataset in
  let p0 = Training.samples_of_phase t 0 and p1 = Training.samples_of_phase t 1 in
  check_int "split evenly" (Array.length t.Training.samples)
    (Array.length p0 + Array.length p1);
  Array.iter (fun (s : Training.sample) -> check_int "phase 0" 0 s.phase) p0

let test_training_local_samples () =
  let t = Lazy.force dataset in
  let locals = Training.local_samples t ~ab:0 ~phase:1 in
  check_bool "has locals" true (Array.length locals >= 3);
  Array.iter
    (fun (s : Training.sample) ->
      check_bool "only ab0 active" true (s.levels.(0) > 0 && s.levels.(1) = 0))
    locals

(* ------------------------------------------------------------------ Roi *)

let test_roi_positive () =
  let t = Lazy.force dataset in
  let roi = Roi.of_training t in
  check_int "per phase" 2 (Array.length roi);
  Array.iter (fun r -> check_bool "positive" true (r > 0.0)) roi

let test_roi_normalize () =
  let n = Roi.normalize [| 1.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9))) "norm" [| 0.25; 0.75 |] n

let test_roi_normalize_zero () =
  Alcotest.(check (array (float 1e-9))) "uniform" [| 0.5; 0.5 |] (Roi.normalize [| 0.0; 0.0 |])

let test_roi_allocate () =
  let alloc = Roi.allocate ~roi:[| 1.0; 4.0 |] ~budget:10.0 in
  Alcotest.(check (array (float 1e-9))) "proportional" [| 2.0; 8.0 |] alloc;
  check_float_eps 1e-9 "sums to budget" 10.0 (Array.fold_left ( +. ) 0.0 alloc)

let test_roi_order () =
  Alcotest.(check (list int)) "descending" [ 2; 0; 1 ] (Roi.descending_order [| 5.0; 1.0; 9.0 |])

(* --------------------------------------------------------------- Phases *)

let test_phases_probe () =
  let p = Phases.probe ~samples_per_phase:4 toy ~n_phases:4 in
  check_int "phase count" 4 (Array.length p.Phases.mean_qos_per_phase);
  check_bool "diff nonnegative" true (p.Phases.max_consecutive_diff >= 0.0)

let test_phases_probe_single () =
  let p = Phases.probe ~samples_per_phase:4 toy ~n_phases:1 in
  check_float "no consecutive diff with one phase" 0.0 p.Phases.max_consecutive_diff

let test_phases_search_bounds () =
  let n, probes = Phases.search ~threshold:0.5 ~max_phases:8 ~samples_per_phase:4 toy in
  check_bool "within bounds" true (n >= 2 && n <= 8);
  check_bool "made probes" true (List.length probes >= 1)

let test_phases_search_high_threshold_stops_early () =
  let n, _ = Phases.search ~threshold:1e9 ~samples_per_phase:4 toy in
  check_int "stops at 2" 2 n

(* --------------------------------------------------------------- Models *)

let models = lazy (Models.build (Lazy.force dataset))

let test_models_zero_anchor () =
  let m = Lazy.force models in
  let p = Models.predict m ~input:toy.App.default_input ~phase:0 ~levels:[| 0; 0 |] in
  check_float "exact => qos 0" 0.0 p.Models.qos;
  check_float "exact => speedup 1" 1.0 p.Models.speedup;
  check_float "exact => qos_hi 0" 0.0 p.Models.qos_hi

let test_models_predictions_finite () =
  let m = Lazy.force models in
  List.iter
    (fun levels ->
      for phase = 0 to 1 do
        let p = Models.predict m ~input:toy.App.default_input ~phase ~levels in
        check_bool "finite speedup" true (Float.is_finite p.Models.speedup);
        check_bool "finite qos" true (Float.is_finite p.Models.qos);
        check_bool "qos nonnegative" true (p.Models.qos >= 0.0);
        check_bool "hi above point" true (p.Models.qos_hi >= p.Models.qos -. 1e-9);
        check_bool "lo below point" true (p.Models.speedup_lo <= p.Models.speedup +. 1e-9)
      done)
    [ [| 1; 0 |]; [| 0; 2 |]; [| 3; 3 |]; [| 2; 1 |] ]

let test_models_speedup_sane () =
  let m = Lazy.force models in
  let p = Models.predict m ~input:toy.App.default_input ~phase:0 ~levels:[| 3; 3 |] in
  (* The toy app's max speedup is well under 3x; a sane model stays in
     the ballpark. *)
  check_bool "plausible magnitude" true (p.Models.speedup > 0.8 && p.Models.speedup < 3.0)

let test_models_bad_phase () =
  let m = Lazy.force models in
  Alcotest.check_raises "phase" (Invalid_argument "Models.predict: bad phase") (fun () ->
      ignore (Models.predict m ~input:toy.App.default_input ~phase:7 ~levels:[| 0; 0 |]))

let test_models_predictor_matches_predict () =
  (* The hoisted per-input predictor must agree with [predict] on every
     field, bit-exactly, across phases and repeated calls (the scratch
     buffers it reuses must not leak state between queries). *)
  let m = Lazy.force models in
  let input = toy.App.default_input in
  let p = Models.predictor m ~input in
  for _pass = 1 to 2 do
    List.iter
      (fun levels ->
        for phase = 0 to 1 do
          let a = Models.predict m ~input ~phase ~levels in
          let b = p ~phase ~levels in
          check_float_eps 0.0 "speedup" a.Models.speedup b.Models.speedup;
          check_float_eps 0.0 "qos" a.Models.qos b.Models.qos;
          check_float_eps 0.0 "speedup_lo" a.Models.speedup_lo b.Models.speedup_lo;
          check_float_eps 0.0 "qos_hi" a.Models.qos_hi b.Models.qos_hi;
          check_float_eps 0.0 "iters_ratio" a.Models.iters_ratio b.Models.iters_ratio
        done)
      [ [| 0; 0 |]; [| 1; 0 |]; [| 0; 2 |]; [| 3; 3 |]; [| 2; 1 |] ]
  done

let test_models_quality_reported () =
  let m = Lazy.force models in
  check_bool "speedup R2 high on deterministic toy" true (Models.speedup_r2 m > 0.7);
  check_bool "degree in range" true
    (Models.max_polynomial_degree m >= 1 && Models.max_polynomial_degree m <= 6)

(* ------------------------------------------------------------ Optimizer *)

let optimize ?search budget =
  let t = Lazy.force trained in
  Optimizer.optimize ?search ~models:t.Opprox.models ~roi:t.Opprox.roi
    ~input:toy.App.default_input ~budget ()

let test_optimizer_zero_budget () =
  let plan = optimize 0.0 in
  check_bool "all exact" true (Schedule.is_exact plan.Optimizer.schedule)

let test_optimizer_respects_predicted_budget () =
  List.iter
    (fun budget ->
      let plan = optimize budget in
      check_bool
        (Printf.sprintf "priced within budget %.1f" budget)
        true
        (plan.Optimizer.predicted_qos <= budget +. 1e-6))
    [ 1.0; 5.0; 10.0; 25.0 ]

let test_optimizer_monotone_in_budget () =
  let s b = (optimize b).Optimizer.predicted_speedup in
  check_bool "more budget, no less speedup" true (s 20.0 >= s 2.0 -. 1e-9)

let test_optimizer_uses_budget () =
  let plan = optimize 50.0 in
  check_bool "non-trivial plan under generous budget" true
    (not (Schedule.is_exact plan.Optimizer.schedule))

let test_optimizer_greedy_feasible () =
  let plan = optimize ~search:Optimizer.Greedy 10.0 in
  check_bool "greedy priced within budget" true (plan.Optimizer.predicted_qos <= 10.0 +. 1e-6)

let test_optimizer_greedy_close_to_enumerate () =
  let e = (optimize ~search:Optimizer.Enumerate 10.0).Optimizer.predicted_speedup in
  let g = (optimize ~search:Optimizer.Greedy 10.0).Optimizer.predicted_speedup in
  check_bool "greedy <= enumerate + eps" true (g <= e +. 1e-6);
  check_bool "greedy not far behind" true (g >= 1.0)

let test_optimizer_negative_budget () =
  (* Input validation now flows through Lint_plan: a negative budget is a
     PLAN001 diagnostic carried by Lint_error. *)
  match optimize (-1.0) with
  | _ -> Alcotest.fail "negative budget accepted"
  | exception Opprox_analysis.Diagnostic.Lint_error diags ->
      check_bool "PLAN001 fired" true
        (List.exists (fun (d : Opprox_analysis.Diagnostic.t) -> d.code = "PLAN001") diags)

let test_compose_speedup () =
  check_float_eps 1e-9 "identity" 1.0 (Optimizer.compose_speedup [ 1.0; 1.0 ]);
  (* one phase saving half of a quarter of the work: 1/(1-0.5) = 2 *)
  check_float_eps 1e-9 "single" 2.0 (Optimizer.compose_speedup [ 2.0 ]);
  check_bool "combination exceeds parts" true
    (Optimizer.compose_speedup [ 1.2; 1.2 ] > 1.2)

let test_optimizer_schedule_shape () =
  let plan = optimize 10.0 in
  check_int "schedule phases match models" 2
    (Schedule.n_phases plan.Optimizer.schedule);
  check_int "schedule ABs match app" (App.n_abs toy)
    (Schedule.n_abs plan.Optimizer.schedule)

let test_optimizer_choices_cover_phases () =
  let plan = optimize 10.0 in
  let phases = List.sort compare (List.map (fun (c : Optimizer.phase_choice) -> c.phase) plan.Optimizer.choices) in
  Alcotest.(check (list int)) "each phase chosen once" [ 0; 1 ] phases

let prop_roi_allocation_nonnegative =
  qcheck_case "allocations stay nonnegative"
    QCheck.(pair (array_of_size (QCheck.Gen.int_range 1 6) (float_range 0.0 10.0)) (float_range 0.0 50.0))
    (fun (roi, budget) ->
      Array.for_all (fun a -> a >= 0.0) (Roi.allocate ~roi ~budget))

let prop_optimizer_feasible_on_random_budgets =
  qcheck_case ~count:20 "plans stay priced within budget" QCheck.(float_range 0.0 40.0)
    (fun budget ->
      let plan = optimize budget in
      plan.Optimizer.predicted_qos <= budget +. 1e-6)

(* --------------------------------------------------------------- Oracle *)

let test_oracle_zero_budget () =
  let r = Oracle.search toy ~input:toy.App.default_input ~budget:0.0 in
  Alcotest.(check (array int)) "exact config" [| 0; 0 |] r.Oracle.levels;
  check_float "no degradation" 0.0 r.Oracle.evaluation.Driver.qos_degradation

let test_oracle_respects_budget () =
  List.iter
    (fun budget ->
      let r = Oracle.search toy ~input:toy.App.default_input ~budget in
      check_bool "measured within budget" true
        (r.Oracle.evaluation.Driver.qos_degradation <= budget))
    [ 0.5; 2.0; 10.0 ]

let test_oracle_is_optimal () =
  (* Cross-check against a manual scan of the measured space. *)
  let budget = 5.0 in
  let r = Oracle.search toy ~input:toy.App.default_input ~budget in
  let space = Oracle.measured_space toy ~input:toy.App.default_input in
  List.iter
    (fun (_, (e : Driver.evaluation)) ->
      if e.qos_degradation <= budget then
        check_bool "no better feasible config" true
          (e.speedup <= r.Oracle.evaluation.Driver.speedup +. 1e-9))
    space

let test_oracle_space_size () =
  let space = Oracle.measured_space toy ~input:toy.App.default_input in
  check_int "full enumeration" 16 (List.length space)

let test_oracle_monotone_in_budget () =
  let s b = (Oracle.search toy ~input:toy.App.default_input ~budget:b).Oracle.evaluation.Driver.speedup in
  check_bool "monotone" true (s 20.0 >= s 1.0)

(* -------------------------------------------------------------- Facade *)

let test_train_end_to_end () =
  let t = Lazy.force trained in
  check_int "two phases" 2 t.Opprox.training.Training.n_phases;
  check_int "roi arity" 2 (Array.length t.Opprox.roi)

let test_facade_optimize_apply () =
  let t = Lazy.force trained in
  let plan = Opprox.optimize t ~budget:10.0 in
  let outcome = Opprox.apply t plan in
  check_bool "speedup at least 1" true (outcome.Driver.speedup >= 0.99);
  check_bool "measured degradation bounded" true (outcome.Driver.qos_degradation < 60.0)

let test_facade_phase_search_mode () =
  let config =
    {
      Opprox.default_train_config with
      n_phases = None;
      training = { training_config with joint_samples_per_phase = 4 };
    }
  in
  let t = Opprox.train ~config toy in
  check_bool "searched phases recorded" true (List.length t.Opprox.phase_probes >= 1);
  check_bool "phase count sane" true
    (t.Opprox.training.Training.n_phases >= 2 && t.Opprox.training.Training.n_phases <= 4)

let test_run_oracle_facade () =
  let r = Opprox.run_oracle toy ~budget:5.0 in
  check_bool "within budget" true (r.Oracle.evaluation.Driver.qos_degradation <= 5.0)

(* ---------------------------------------------------------- determinism *)

let test_training_deterministic () =
  Driver.clear_cache ();
  let a = Training.collect ~config:training_config toy ~n_phases:2 in
  Driver.clear_cache ();
  let b = Training.collect ~config:training_config toy ~n_phases:2 in
  check_int "same run count" (Training.n_runs a) (Training.n_runs b);
  Array.iteri
    (fun i (sa : Training.sample) ->
      let sb = b.Training.samples.(i) in
      check_float "same qos" sa.qos sb.qos;
      check_float "same speedup" sa.speedup sb.speedup)
    a.Training.samples

let test_pipeline_deterministic () =
  (* Two independent end-to-end runs produce the same plan. *)
  let build () =
    let t =
      Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy
    in
    Opprox.optimize t ~budget:10.0
  in
  let p1 = build () and p2 = build () in
  check_bool "identical schedules" true
    (Schedule.equal p1.Optimizer.schedule p2.Optimizer.schedule);
  check_float "identical predicted speedup" p1.Optimizer.predicted_speedup
    p2.Optimizer.predicted_speedup

let test_phases_probe_deterministic () =
  let a = Phases.probe ~samples_per_phase:4 toy ~n_phases:4 in
  let b = Phases.probe ~samples_per_phase:4 toy ~n_phases:4 in
  Alcotest.(check (array (float 1e-12))) "same means" a.Phases.mean_qos_per_phase
    b.Phases.mean_qos_per_phase

let test_huge_budget_goes_aggressive () =
  let t = Lazy.force trained in
  let plan =
    Optimizer.optimize ~models:t.Opprox.models ~roi:t.Opprox.roi
      ~input:toy.App.default_input ~budget:1e6 ()
  in
  (* With an unconstrained budget the optimizer should pick nontrivial
     levels in at least one phase. *)
  check_bool "non-exact plan" true (not (Schedule.is_exact plan.Optimizer.schedule))

let suite =
  [
    ( "cfmodel",
      [
        Alcotest.test_case "flow classes" `Quick test_cfmodel_flow_classes;
        Alcotest.test_case "single class" `Quick test_cfmodel_single_class;
        Alcotest.test_case "unseen trace" `Quick test_cfmodel_unseen_trace;
        Alcotest.test_case "signature truncation" `Quick test_signature_truncation;
      ] );
    ( "training",
      [
        Alcotest.test_case "sample count" `Quick test_training_sample_count;
        Alcotest.test_case "samples well-formed" `Quick test_training_samples_well_formed;
        Alcotest.test_case "phase filter" `Quick test_training_phase_filter;
        Alcotest.test_case "local samples" `Quick test_training_local_samples;
      ] );
    ( "roi",
      [
        Alcotest.test_case "positive" `Quick test_roi_positive;
        Alcotest.test_case "normalize" `Quick test_roi_normalize;
        Alcotest.test_case "normalize zero" `Quick test_roi_normalize_zero;
        Alcotest.test_case "allocate" `Quick test_roi_allocate;
        Alcotest.test_case "descending order" `Quick test_roi_order;
      ] );
    ( "phases",
      [
        Alcotest.test_case "probe" `Quick test_phases_probe;
        Alcotest.test_case "probe single" `Quick test_phases_probe_single;
        Alcotest.test_case "search bounds" `Quick test_phases_search_bounds;
        Alcotest.test_case "high threshold stops" `Quick test_phases_search_high_threshold_stops_early;
      ] );
    ( "models",
      [
        Alcotest.test_case "zero anchor" `Quick test_models_zero_anchor;
        Alcotest.test_case "predictions finite" `Quick test_models_predictions_finite;
        Alcotest.test_case "speedup sane" `Quick test_models_speedup_sane;
        Alcotest.test_case "bad phase" `Quick test_models_bad_phase;
        Alcotest.test_case "predictor matches predict" `Quick test_models_predictor_matches_predict;
        Alcotest.test_case "quality reported" `Quick test_models_quality_reported;
      ] );
    ( "optimizer",
      [
        Alcotest.test_case "zero budget" `Quick test_optimizer_zero_budget;
        Alcotest.test_case "respects predicted budget" `Quick test_optimizer_respects_predicted_budget;
        Alcotest.test_case "monotone in budget" `Quick test_optimizer_monotone_in_budget;
        Alcotest.test_case "uses generous budget" `Quick test_optimizer_uses_budget;
        Alcotest.test_case "greedy feasible" `Quick test_optimizer_greedy_feasible;
        Alcotest.test_case "greedy vs enumerate" `Quick test_optimizer_greedy_close_to_enumerate;
        Alcotest.test_case "negative budget" `Quick test_optimizer_negative_budget;
        Alcotest.test_case "compose speedup" `Quick test_compose_speedup;
        Alcotest.test_case "schedule shape" `Quick test_optimizer_schedule_shape;
        Alcotest.test_case "choices cover phases" `Quick test_optimizer_choices_cover_phases;
        prop_roi_allocation_nonnegative;
        prop_optimizer_feasible_on_random_budgets;
      ] );
    ( "oracle",
      [
        Alcotest.test_case "zero budget" `Quick test_oracle_zero_budget;
        Alcotest.test_case "respects budget" `Quick test_oracle_respects_budget;
        Alcotest.test_case "is optimal" `Quick test_oracle_is_optimal;
        Alcotest.test_case "space size" `Quick test_oracle_space_size;
        Alcotest.test_case "monotone in budget" `Quick test_oracle_monotone_in_budget;
      ] );
    ( "determinism",
      [
        Alcotest.test_case "training" `Quick test_training_deterministic;
        Alcotest.test_case "pipeline" `Quick test_pipeline_deterministic;
        Alcotest.test_case "phase probe" `Quick test_phases_probe_deterministic;
        Alcotest.test_case "huge budget aggressive" `Quick test_huge_budget_goes_aggressive;
      ] );
    ( "facade",
      [
        Alcotest.test_case "train end-to-end" `Quick test_train_end_to_end;
        Alcotest.test_case "optimize + apply" `Quick test_facade_optimize_apply;
        Alcotest.test_case "phase-search mode" `Quick test_facade_phase_search_mode;
        Alcotest.test_case "oracle facade" `Quick test_run_oracle_facade;
      ] );
  ]
