(* Tests for the precomputed plan corpus (Opprox_corpus) and the
   lookup-first serving path built on it: fingerprint/corpus roundtrips,
   nearest-neighbour budget fallback, CORP diagnostics, singleflight
   solve coalescing, and LRU snapshot/restore across server restarts. *)

module Corpus = Opprox_corpus.Corpus
module Key = Opprox_corpus.Key
module Precompute = Opprox_corpus.Precompute
module Plancache = Opprox_serve.Plancache
module Protocol = Opprox_serve.Protocol
module Server = Opprox_serve.Server
module Client = Opprox_serve.Client
module Singleflight = Opprox_serve.Singleflight
module Diagnostic = Opprox_analysis.Diagnostic
module Metrics = Opprox_obs.Metrics
module Schedule = Opprox_sim.Schedule
module Sexp = Opprox_util.Sexp
open Fixtures

let trained =
  lazy (Opprox.train ~config:{ Opprox.default_train_config with n_phases = Some 2 } toy)

let models_hash () = Precompute.models_hash (Lazy.force trained)

let temp_corpus () = Filename.temp_file "opprox_corpus" ".opx"

(* Every float field survives the packed binary encoding bit-exactly, so
   plan equality is structural up to the schedule's representation. *)
let plan_equal (a : Opprox.Optimizer.plan) (b : Opprox.Optimizer.plan) =
  Schedule.equal a.Opprox.Optimizer.schedule b.Opprox.Optimizer.schedule
  && a.Opprox.Optimizer.choices = b.Opprox.Optimizer.choices
  && a.Opprox.Optimizer.predicted_speedup = b.Opprox.Optimizer.predicted_speedup
  && a.Opprox.Optimizer.predicted_qos = b.Opprox.Optimizer.predicted_qos
  && a.Opprox.Optimizer.budget = b.Opprox.Optimizer.budget

let counter_value name =
  match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0

let bump_ulp x = Int64.float_of_bits (Int64.succ (Int64.bits_of_float x))

(* ------------------------------------------------------------------- key *)

let test_key_composition () =
  let app = "toy" and input = [| 1.5; -0.25 |] and models_hash = "cafe" in
  let group = Key.group ~app ~input ~models_hash in
  check_bool "fingerprint = group | budget" true
    (Key.fingerprint ~app ~input ~budget:10.0 ~models_hash
    = Key.of_group ~group ~budget:10.0);
  check_bool "budget ulp changes key" false
    (Key.of_group ~group ~budget:10.0 = Key.of_group ~group ~budget:(bump_ulp 10.0));
  check_bool "hash deterministic" true
    (Int64.equal (Key.hash64 group) (Key.hash64 group));
  check_bool "hash separates groups" false
    (Int64.equal (Key.hash64 group)
       (Key.hash64 (Key.group ~app:"toy2" ~input ~models_hash)))

(* ---------------------------------------------------------------- corpus *)

let sweep_entries budgets =
  let entries, progress =
    Precompute.sweep ~budgets (* default inputs: default_input + training grid *)
      [ Lazy.force trained ]
  in
  check_int "sweep apps" 1 progress.Precompute.apps;
  check_bool "sweep produced plans" true (progress.Precompute.cells > 0);
  entries

let write_corpus budgets =
  let entries = sweep_entries budgets in
  let path = temp_corpus () in
  Corpus.write path entries;
  (path, entries)

let fingerprint_of (e : Corpus.entry) =
  Key.fingerprint ~app:e.Corpus.app ~input:e.Corpus.input ~budget:e.Corpus.budget
    ~models_hash:e.Corpus.models_hash

let test_write_load_roundtrip () =
  let path, entries = write_corpus [| 5.0; 10.0; 20.0 |] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let c = Corpus.load path in
      check_int "length" (List.length entries) (Corpus.length c);
      check_bool "apps" true (Corpus.apps c = [ ("toy", models_hash ()) ]);
      check_bool "models_hash" true (Corpus.models_hash c "toy" = Some (models_hash ()));
      check_bool "budget grid" true (Corpus.budgets c = [| 5.0; 10.0; 20.0 |]);
      List.iter
        (fun (e : Corpus.entry) ->
          let fp = fingerprint_of e in
          check_bool "mem" true (Corpus.mem c fp);
          match Corpus.find c fp with
          | Some plan -> check_bool "plan roundtrips" true (plan_equal plan e.Corpus.plan)
          | None -> Alcotest.fail ("lookup lost " ^ fp))
        entries;
      check_bool "unknown fingerprint" true (Corpus.find c "toy|3ff8|beef|24" = None))

(* QCheck roundtrip over random budget grids: write -> load behaves as
   the in-memory map, and an off-by-one-ulp budget never matches. *)
let prop_corpus_roundtrip =
  qcheck_case ~count:8 "corpus write -> load = in-memory map"
    QCheck.(list_of_size (Gen.int_range 1 3) (float_range 3.0 60.0))
    (fun budgets ->
      let budgets = Array.of_list (List.sort_uniq compare budgets) in
      let inputs _ = [ toy.Opprox_sim.App.default_input ] in
      let entries, _ = Precompute.sweep ~inputs ~budgets [ Lazy.force trained ] in
      QCheck.assume (entries <> []);
      let path = temp_corpus () in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Corpus.write path entries;
          let c = Corpus.load path in
          Corpus.length c = List.length entries
          && List.for_all
               (fun (e : Corpus.entry) ->
                 let fp = fingerprint_of e in
                 let ulp_fp =
                   Key.fingerprint ~app:e.Corpus.app ~input:e.Corpus.input
                     ~budget:(bump_ulp e.Corpus.budget) ~models_hash:e.Corpus.models_hash
                 in
                 (match Corpus.find c fp with
                 | Some plan -> plan_equal plan e.Corpus.plan
                 | None -> false)
                 && (Corpus.find c ulp_fp = None
                    || List.exists
                         (fun (o : Corpus.entry) -> fingerprint_of o = ulp_fp)
                         entries))
               entries))

let test_write_validation () =
  let entries = sweep_entries [| 10.0 |] in
  let path = temp_corpus () in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (match Corpus.write path [] with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "empty corpus accepted");
      (match Corpus.write path (entries @ entries) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "duplicate fingerprints accepted");
      let forged =
        List.map (fun (e : Corpus.entry) -> { e with Corpus.models_hash = "aa" }) entries
      in
      match Corpus.write path (entries @ forged) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "two models hashes for one app accepted")

(* ----------------------------------------------------- nearest neighbour *)

let test_find_nn_grid () =
  let path, entries = write_corpus [| 5.0; 10.0; 20.0 |] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let c = Corpus.load path in
      let group =
        Key.group ~app:"toy" ~input:toy.Opprox_sim.App.default_input
          ~models_hash:(models_hash ())
      in
      let expect_cell requested cell =
        match Corpus.find_nn c ~group ~budget:requested with
        | Some (b, plan) ->
            check_float (Printf.sprintf "nn(%g) grid budget" requested) cell b;
            check_float "plan matches grid cell" cell plan.Opprox.Optimizer.budget
        | None -> Alcotest.fail (Printf.sprintf "nn(%g): expected a plan" requested)
      in
      expect_cell 10.0 10.0;
      (* exact grid point *)
      expect_cell 12.5 10.0;
      (* between cells: tighten down *)
      expect_cell 100.0 20.0;
      (* above the grid: its top cell *)
      check_bool "below the whole grid" true (Corpus.find_nn c ~group ~budget:4.9 = None);
      check_bool "unknown group" true
        (Corpus.find_nn c
           ~group:(Key.group ~app:"nonesuch" ~input:[| 1.0 |] ~models_hash:"00")
           ~budget:10.0
        = None);
      ignore entries)

(* One corpus shared by the NN property and the coverage lints. *)
let nn_corpus =
  lazy
    (let path, _ = write_corpus [| 5.0; 10.0; 20.0 |] in
     at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
     Corpus.load path)

let prop_nn_never_exceeds_budget =
  qcheck_case ~count:200 "nn plan budget <= requested budget"
    QCheck.(float_range 0.1 120.0)
    (fun requested ->
      let c = Lazy.force nn_corpus in
      let group =
        Key.group ~app:"toy" ~input:toy.Opprox_sim.App.default_input
          ~models_hash:(models_hash ())
      in
      match Corpus.find_nn c ~group ~budget:requested with
      | None -> requested < 5.0 (* only below the whole grid may it give up *)
      | Some (b, plan) ->
          b <= requested
          && plan.Opprox.Optimizer.budget = b
          && Array.exists (fun g -> g = b) (Corpus.budgets c))

(* ----------------------------------------------------------- diagnostics *)

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let test_lint_corpus_file () =
  let path, _ = write_corpus [| 5.0; 10.0 |] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_bool "clean file lints clean" true
        (Corpus.lint_file ~expected_hashes:[ ("toy", models_hash ()) ] path = []);
      (* Stale models hash: CORP001. *)
      check_bool "stale hash" true
        (List.mem "CORP001"
           (codes (Corpus.lint_file ~expected_hashes:[ ("toy", "deadbeef") ] path)));
      (* Served app the corpus never covered: CORP003 warning. *)
      let ds = Corpus.lint_file ~expected_hashes:[ ("nonesuch", "00") ] path in
      check_bool "uncovered app" true (List.mem "CORP003" (codes ds));
      check_bool "uncovered app is a warning" true
        (List.for_all (fun d -> d.Diagnostic.severity <> Diagnostic.Error) ds);
      (* Truncation: CORP002 from lint, Failure from load. *)
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      let cut = Filename.temp_file "opprox_corpus" ".cut" in
      Fun.protect
        ~finally:(fun () -> Sys.remove cut)
        (fun () ->
          Out_channel.with_open_bin cut (fun oc ->
              Out_channel.output_string oc (String.sub bytes 0 (String.length bytes / 2)));
          check_bool "truncated file" true (List.mem "CORP002" (codes (Corpus.lint_file cut)));
          (match Corpus.load cut with
          | exception Failure _ -> ()
          | _ -> Alcotest.fail "load accepted a truncated corpus");
          (* Garbage magic. *)
          Out_channel.with_open_bin cut (fun oc ->
              Out_channel.output_string oc
                ("XXXXXXXX" ^ String.sub bytes 8 (String.length bytes - 8)));
          check_bool "bad magic" true (List.mem "CORP002" (codes (Corpus.lint_file cut)))))

let test_lint_coverage () =
  let c = Lazy.force nn_corpus in
  check_bool "covered request" true (Corpus.lint_coverage c ~app:"toy" ~budget:10.0 = []);
  check_bool "off-grid but answerable" true
    (Corpus.lint_coverage c ~app:"toy" ~budget:12.5 = []);
  check_bool "below the grid" true
    (List.mem "CORP003" (codes (Corpus.lint_coverage c ~app:"toy" ~budget:1.0)));
  check_bool "unknown app" true
    (List.mem "CORP003" (codes (Corpus.lint_coverage c ~app:"nonesuch" ~budget:10.0)))

(* ----------------------------------------------------------- singleflight *)

let test_singleflight_one_solve () =
  let flight = Singleflight.create () in
  let n = 6 in
  let calls = Atomic.make 0 in
  let entered = Atomic.make 0 in
  let f () =
    Atomic.incr calls;
    (* Hold the flight open until every domain has reached [run], then a
       beat longer, so stragglers park rather than lead a second flight.
       Poll with a sleep, not [Domain.cpu_relax]: sleeping enters a
       blocking section, so on a single-core host the runtime can still
       run stop-the-world sections (and the remaining [Domain.spawn]s)
       while this leader waits. *)
    while Atomic.get entered < n do
      Unix.sleepf 0.002
    done;
    Unix.sleepf 0.1;
    42
  in
  let worker () =
    Atomic.incr entered;
    Singleflight.run flight "hot-key" f
  in
  let domains = List.init (n - 1) (fun _ -> Domain.spawn worker) in
  (* Run this domain's worker in a separate binding: [::] evaluates right
     to left, so inlining it after the joins would deadlock the gate. *)
  let mine = worker () in
  let outcomes = mine :: List.map Domain.join domains in
  check_int "exactly one execution" 1 (Atomic.get calls);
  check_int "one leader" 1
    (List.length (List.filter (function Singleflight.Led _ -> true | _ -> false) outcomes));
  List.iter
    (fun o ->
      match o with
      | Singleflight.Led v | Singleflight.Joined v -> check_int "shared result" 42 v)
    outcomes;
  check_int "no flights left" 0 (Singleflight.inflight flight);
  (* The entry is gone, so a later caller leads a fresh flight. *)
  match Singleflight.run flight "hot-key" (fun () -> Atomic.incr calls; 7) with
  | Singleflight.Led 7 -> check_int "fresh flight ran" 2 (Atomic.get calls)
  | _ -> Alcotest.fail "expected a fresh leader"

let test_singleflight_leader_failure () =
  let flight = Singleflight.create () in
  (match Singleflight.run flight "k" (fun () -> failwith "boom") with
  | exception Failure msg -> Alcotest.(check string) "leader exn" "boom" msg
  | _ -> Alcotest.fail "expected the leader's exception");
  (* The failed flight is forgotten; the key is reusable. *)
  match Singleflight.run flight "k" (fun () -> 1) with
  | Singleflight.Led 1 -> ()
  | _ -> Alcotest.fail "expected a fresh flight after failure"

let test_server_coalesces_hot_key () =
  let server = Server.create [ Lazy.force trained ] in
  let solves0 = counter_value "optimizer.solves" in
  let leaders0 = counter_value "server.singleflight.leaders" in
  let coalesced0 = counter_value "server.singleflight.coalesced" in
  let n = 6 in
  let gate = Atomic.make 0 in
  let req = Protocol.request ~app:"toy" ~budget:33.0 () in
  let worker () =
    Atomic.incr gate;
    (* Sleep-poll (see above): a busy-spin here can starve the runtime's
       stop-the-world handshake on a single-core host. *)
    while Atomic.get gate < n do
      Unix.sleepf 0.002
    done;
    Server.handle server req
  in
  let domains = List.init (n - 1) (fun _ -> Domain.spawn worker) in
  (* Separate binding: [::] evaluates right to left (see the singleflight
     test above); joining before this worker runs would deadlock the gate. *)
  let mine = worker () in
  let responses = mine :: List.map Domain.join domains in
  List.iter
    (fun resp ->
      match resp with
      | Protocol.Plan _ -> ()
      | _ -> Alcotest.fail "expected every coalesced reply to be a Plan")
    responses;
  let solves = counter_value "optimizer.solves" - solves0 in
  let leaders = counter_value "server.singleflight.leaders" - leaders0 in
  let coalesced = counter_value "server.singleflight.coalesced" - coalesced0 in
  (* Domains that lose the race entirely (arrive after the flight
     published) hit the cache instead; nobody solves twice. *)
  check_int "one solve under the storm" 1 solves;
  check_int "one leader" 1 leaders;
  (* A request losing the race entirely (arriving after the flight
     published) hits the cache instead of joining; nobody solves twice. *)
  check_int "everyone else joined or hit the cache" (n - 1)
    (coalesced + (Server.cache_stats server).Plancache.hits);
  check_int "one cache insertion" 1 (Server.cache_stats server).Plancache.insertions

(* ------------------------------------------------------ snapshot/restore *)

let test_plancache_snapshot_recency () =
  let c = Plancache.create ~shards:1 ~capacity:2 () in
  Plancache.add c "a" 1;
  Plancache.add c "b" 2;
  ignore (Plancache.find c "a");
  (* "a" most recent, "b" next to evict *)
  let snap = Plancache.to_sexp (fun v -> Sexp.Atom (string_of_int v)) c in
  let fresh = Plancache.create ~shards:1 ~capacity:2 () in
  let restored =
    Plancache.restore
      (function Sexp.Atom s -> int_of_string s | _ -> failwith "atom expected")
      fresh snap
  in
  check_int "entries restored" 2 restored;
  check_bool "values survive" true
    (Plancache.find fresh "a" = Some 1 && Plancache.find fresh "b" = Some 2);
  (* Re-establish the pre-snapshot recency, then overflow: the restored
     cache must evict exactly what the live cache would have. *)
  ignore (Plancache.find fresh "a");
  Plancache.add fresh "c" 3;
  check_bool "LRU order preserved" true
    (Plancache.mem fresh "a" && not (Plancache.mem fresh "b") && Plancache.mem fresh "c")

let test_server_snapshot_roundtrip () =
  let snap = Filename.temp_file "opprox_snap" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove snap)
    (fun () ->
      let server = Server.create [ Lazy.force trained ] in
      let client = Client.loopback server in
      List.iter
        (fun budget ->
          match Client.request client (Protocol.request ~app:"toy" ~budget ()) with
          | Protocol.Plan _ -> ()
          | _ -> Alcotest.fail "warmup solve failed")
        [ 6.0; 11.0 ];
      Server.save_cache_snapshot server snap;
      (* Restart: a fresh server restores the snapshot and serves the
         warmed keys from cache without solving. *)
      let solves0 = counter_value "optimizer.solves" in
      let config = { Server.default_config with Server.cache_snapshot = Some snap } in
      let restarted = Server.create ~config [ Lazy.force trained ] in
      let client' = Client.loopback restarted in
      List.iter
        (fun budget ->
          match Client.request client' (Protocol.request ~app:"toy" ~budget ()) with
          | Protocol.Plan { cache = Protocol.Hit; _ } -> ()
          | Protocol.Plan { cache; _ } ->
              Alcotest.fail
                ("expected restored Hit, got " ^ Protocol.cache_status_string cache)
          | _ -> Alcotest.fail "expected a Plan after restore")
        [ 6.0; 11.0 ];
      check_int "no solves after restore" 0 (counter_value "optimizer.solves" - solves0);
      (* Restore replays through [add], so per-instance insertions count
         exactly the restored entries. *)
      check_int "restored entries" 2 (Server.cache_stats restarted).Plancache.insertions)

let test_snapshot_hash_mismatch_rejected () =
  let snap = Filename.temp_file "opprox_snap" ".sexp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove snap)
    (fun () ->
      let server = Server.create [ Lazy.force trained ] in
      let client = Client.loopback server in
      (match Client.request client (Protocol.request ~app:"toy" ~budget:9.0 ()) with
      | Protocol.Plan _ -> ()
      | _ -> Alcotest.fail "warmup solve failed");
      Server.save_cache_snapshot server snap;
      (* Tamper with the recorded models hash (same length, so only the
         hash bytes change). *)
      let body = In_channel.with_open_bin snap In_channel.input_all in
      let hash = models_hash () in
      let forged = String.init (String.length hash) (fun i -> "0123456789abcdef".[i mod 16]) in
      let buf = Buffer.create (String.length body) in
      let i = ref 0 in
      while !i < String.length body do
        if
          !i + String.length hash <= String.length body
          && String.sub body !i (String.length hash) = hash
        then begin
          Buffer.add_string buf forged;
          i := !i + String.length hash
        end
        else begin
          Buffer.add_char buf body.[!i];
          incr i
        end
      done;
      let tampered = Buffer.contents buf in
      check_bool "tampering changed the snapshot" true (tampered <> body);
      Out_channel.with_open_bin snap (fun oc -> Out_channel.output_string oc tampered);
      let rejected0 = counter_value "plancache.restore.rejected" in
      let fresh = Server.create [ Lazy.force trained ] in
      check_bool "stale snapshot rejected" false (Server.restore_cache_snapshot fresh snap);
      check_int "rejection counted" 1
        (counter_value "plancache.restore.rejected" - rejected0);
      check_int "nothing restored" 0 (Server.cache_stats fresh).Plancache.insertions)

(* ------------------------------------------------- server + corpus path *)

let test_server_corpus_lookup_path () =
  let path, _ = write_corpus [| 5.0; 10.0; 20.0 |] in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let config = { Server.default_config with Server.corpus_path = Some path } in
      let server = Server.create ~config [ Lazy.force trained ] in
      let client = Client.loopback server in
      let solves0 = counter_value "optimizer.solves" in
      let hits0 = counter_value "corpus.hits" in
      let nn0 = counter_value "corpus.nn_hits" in
      let misses0 = counter_value "corpus.misses" in
      let source budget =
        match Client.request client (Protocol.request ~app:"toy" ~budget ()) with
        | Protocol.Plan { cache; _ } -> Protocol.cache_source_string cache
        | _ -> "error"
      in
      check_bool "corpus loaded" true (Server.corpus server <> None);
      (* On the grid: answered straight from the mmap. *)
      Alcotest.(check string) "exact corpus hit" "corpus" (source 10.0);
      check_int "no solve for the exact hit" 0 (counter_value "optimizer.solves" - solves0);
      (* Off the grid but above a cell: conservative nearest neighbour. *)
      Alcotest.(check string) "nn fallback" "nn" (source 12.5);
      check_int "no solve for the nn hit" 0 (counter_value "optimizer.solves" - solves0);
      (* Below the whole grid: cold solve, then the LRU. *)
      Alcotest.(check string) "cold below grid" "solved" (source 4.2);
      Alcotest.(check string) "then cached" "cache" (source 4.2);
      check_int "exactly one solve total" 1 (counter_value "optimizer.solves" - solves0);
      check_int "corpus.hits" 1 (counter_value "corpus.hits" - hits0);
      check_int "corpus.nn_hits" 1 (counter_value "corpus.nn_hits" - nn0);
      (* The two below-grid requests consulted the corpus and found
         nothing (the second one was a cache hit... which short-circuits
         before the corpus only if the cache is consulted first — it is
         not; corpus runs first, so both count). *)
      check_int "corpus.misses" 2 (counter_value "corpus.misses" - misses0))

let suite =
  [
    ( "corpus",
      [
        Alcotest.test_case "key composition" `Quick test_key_composition;
        Alcotest.test_case "write/load roundtrip" `Quick test_write_load_roundtrip;
        prop_corpus_roundtrip;
        Alcotest.test_case "write validation" `Quick test_write_validation;
        Alcotest.test_case "nearest-neighbour grid" `Quick test_find_nn_grid;
        prop_nn_never_exceeds_budget;
        Alcotest.test_case "CORP file lints" `Quick test_lint_corpus_file;
        Alcotest.test_case "CORP coverage lint" `Quick test_lint_coverage;
      ] );
    ( "corpus-serving",
      [
        Alcotest.test_case "singleflight: one execution" `Quick test_singleflight_one_solve;
        Alcotest.test_case "singleflight: leader failure" `Quick
          test_singleflight_leader_failure;
        Alcotest.test_case "server coalesces a hot key" `Quick test_server_coalesces_hot_key;
        Alcotest.test_case "plancache snapshot recency" `Quick
          test_plancache_snapshot_recency;
        Alcotest.test_case "server snapshot roundtrip" `Quick test_server_snapshot_roundtrip;
        Alcotest.test_case "stale snapshot rejected" `Quick
          test_snapshot_hash_mismatch_rejected;
        Alcotest.test_case "corpus lookup-first path" `Quick test_server_corpus_lookup_path;
      ] );
  ]
