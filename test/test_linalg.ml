(* Unit and property tests for Opprox_linalg: Matrix, Lstsq, Polyfeat. *)

module Matrix = Opprox_linalg.Matrix
module Lstsq = Opprox_linalg.Lstsq
module Polyfeat = Opprox_linalg.Polyfeat
module Rng = Opprox_util.Rng
open Fixtures

let random_matrix rng rows cols =
  Matrix.init rows cols (fun _ _ -> Rng.range rng (-5.0) 5.0)

(* --------------------------------------------------------------- Matrix *)

let test_create_zero () =
  let m = Matrix.create 2 3 in
  check_float "zero" 0.0 (Matrix.get m 1 2);
  check_int "rows" 2 (Matrix.rows m);
  check_int "cols" 3 (Matrix.cols m)

let test_create_invalid () =
  Alcotest.check_raises "bad dims" (Invalid_argument "Matrix.create: non-positive dimension")
    (fun () -> ignore (Matrix.create 0 3))

let test_get_set () =
  let m = Matrix.create 2 2 in
  Matrix.set m 0 1 7.5;
  check_float "set then get" 7.5 (Matrix.get m 0 1)

let test_out_of_bounds () =
  let m = Matrix.create 2 2 in
  Alcotest.check_raises "oob" (Invalid_argument "Matrix.get: out of bounds") (fun () ->
      ignore (Matrix.get m 2 0))

let test_of_rows () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "entry" 3.0 (Matrix.get m 1 0)

let test_of_rows_copies () =
  let row = [| 1.0; 2.0 |] in
  let m = Matrix.of_rows [| row |] in
  row.(0) <- 99.0;
  check_float "deep copy" 1.0 (Matrix.get m 0 0)

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows") (fun () ->
      ignore (Matrix.of_rows [| [| 1.0 |]; [| 1.0; 2.0 |] |]))

let test_identity () =
  let i3 = Matrix.identity 3 in
  check_float "diag" 1.0 (Matrix.get i3 1 1);
  check_float "off-diag" 0.0 (Matrix.get i3 0 2)

let test_row_col () =
  let m = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 0.0))) "row" [| 3.0; 4.0 |] (Matrix.row m 1);
  Alcotest.(check (array (float 0.0))) "col" [| 2.0; 4.0 |] (Matrix.col m 1)

let test_transpose () =
  let m = Matrix.of_rows [| [| 1.0; 2.0; 3.0 |] |] in
  let t = Matrix.transpose m in
  check_int "rows" 3 (Matrix.rows t);
  check_float "entry" 2.0 (Matrix.get t 1 0)

let test_mul_known () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Matrix.of_rows [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Matrix.mul a b in
  check_float "c00" 19.0 (Matrix.get c 0 0);
  check_float "c11" 50.0 (Matrix.get c 1 1)

let test_mul_identity () =
  let rng = Rng.create 1 in
  let a = random_matrix rng 4 4 in
  check_bool "a * I = a" true (Matrix.equal (Matrix.mul a (Matrix.identity 4)) a)

let test_mul_mismatch () =
  Alcotest.check_raises "dims" (Invalid_argument "Matrix.mul: dimension mismatch") (fun () ->
      ignore (Matrix.mul (Matrix.create 2 3) (Matrix.create 2 3)))

let test_mul_vec () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "Av" [| 5.0; 11.0 |] (Matrix.mul_vec a [| 1.0; 2.0 |])

let test_add_scale () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |] |] in
  let b = Matrix.add a (Matrix.scale a 2.0) in
  check_float "3a" 6.0 (Matrix.get b 0 1)

let test_solve_known () =
  (* 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3 *)
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Matrix.solve a [| 5.0; 10.0 |] in
  check_float_eps 1e-9 "x" 1.0 x.(0);
  check_float_eps 1e-9 "y" 3.0 x.(1)

let test_solve_needs_pivoting () =
  (* Zero top-left pivot requires a row swap. *)
  let a = Matrix.of_rows [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Matrix.solve a [| 2.0; 3.0 |] in
  check_float_eps 1e-9 "x" 3.0 x.(0);
  check_float_eps 1e-9 "y" 2.0 x.(1)

let test_solve_singular () =
  let a = Matrix.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Matrix.solve: singular") (fun () ->
      ignore (Matrix.solve a [| 1.0; 2.0 |]))

let prop_transpose_involution =
  qcheck_case "transpose involutive" QCheck.(pair (int_range 1 6) (int_range 1 6))
    (fun (r, c) ->
      let rng = Rng.create ((r * 31) + c) in
      let m = random_matrix rng r c in
      Matrix.equal (Matrix.transpose (Matrix.transpose m)) m)

let prop_solve_recovers =
  qcheck_case ~count:50 "solve (A, Ax) recovers x" QCheck.(int_range 1 8) (fun n ->
      let rng = Rng.create (n + 100) in
      (* Diagonally dominant => well-conditioned and non-singular. *)
      let a =
        Matrix.init n n (fun i j ->
            if i = j then 10.0 +. Rng.uniform rng else Rng.range rng (-1.0) 1.0)
      in
      let x = Array.init n (fun _ -> Rng.range rng (-3.0) 3.0) in
      let b = Matrix.mul_vec a x in
      let solved = Matrix.solve a b in
      Array.for_all2 (fun u v -> Float.abs (u -. v) < 1e-8) x solved)

(* ------------------------------------------------------------------- Qr *)

module Qr = Opprox_linalg.Qr

let test_qr_r_upper_triangular () =
  let rng = Rng.create 41 in
  let a = random_matrix rng 6 4 in
  let r = Qr.r (Qr.decompose a) in
  for i = 0 to 3 do
    for j = 0 to i - 1 do
      check_float "below diagonal is zero" 0.0 (Matrix.get r i j)
    done
  done

let test_qr_solve_square () =
  let a = Matrix.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Qr.solve (Qr.decompose a) [| 5.0; 10.0 |] in
  check_float_eps 1e-9 "x" 1.0 x.(0);
  check_float_eps 1e-9 "y" 3.0 x.(1)

let test_qr_least_squares () =
  (* Overdetermined: QR minimizes the residual like the normal equations. *)
  let rows = Array.init 30 (fun i -> [| 1.0; float_of_int i |]) in
  let y = Array.init 30 (fun i -> (3.0 *. float_of_int i) +. 2.0) in
  let w = Qr.solve (Qr.decompose (Matrix.of_rows rows)) y in
  check_float_eps 1e-9 "intercept" 2.0 w.(0);
  check_float_eps 1e-9 "slope" 3.0 w.(1)

let test_qr_rank_deficiency_detected () =
  let rows = Array.init 6 (fun i -> [| float_of_int i; 2.0 *. float_of_int i |]) in
  check_bool "collinear columns flagged" true
    (Qr.rank_deficient (Qr.decompose (Matrix.of_rows rows)))

let test_qr_wide_rejected () =
  Alcotest.check_raises "wide matrix" (Invalid_argument "Qr.decompose: need rows >= cols")
    (fun () -> ignore (Qr.decompose (Matrix.create 2 3)))

let prop_qr_matches_normal_equations =
  qcheck_case ~count:30 "QR agrees with well-conditioned normal equations"
    QCheck.(int_range 2 6)
    (fun n ->
      let rng = Rng.create (n * 7) in
      let rows = Array.init (3 * n) (fun _ -> Array.init n (fun _ -> Rng.range rng (-2.0) 2.0)) in
      let truth = Array.init n (fun _ -> Rng.range rng (-3.0) 3.0) in
      let x = Matrix.of_rows rows in
      let y = Matrix.mul_vec x truth in
      let qr = Qr.decompose x in
      if Qr.rank_deficient qr then true
      else
        let w = Qr.solve qr y in
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) w truth)

(* ---------------------------------------------------------------- Lstsq *)

let test_lstsq_exact_line () =
  (* y = 2x + 1 fit from exact points. *)
  let x = Matrix.of_rows [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let w = Lstsq.fit x [| 1.0; 3.0; 5.0 |] in
  check_float_eps 1e-8 "intercept" 1.0 w.(0);
  check_float_eps 1e-8 "slope" 2.0 w.(1)

let test_lstsq_overdetermined () =
  (* Noisy points around y = x: least squares stays close. *)
  let rows = Array.init 20 (fun i -> [| 1.0; float_of_int i |]) in
  let y = Array.init 20 (fun i -> float_of_int i +. if i mod 2 = 0 then 0.1 else -0.1) in
  let w = Lstsq.fit (Matrix.of_rows rows) y in
  check_bool "slope ~ 1" true (Float.abs (w.(1) -. 1.0) < 0.02)

let test_lstsq_ridge_on_collinear () =
  (* Perfectly collinear columns are singular without ridge; fit must not
     raise thanks to penalty escalation. *)
  let rows = Array.init 6 (fun i -> [| float_of_int i; 2.0 *. float_of_int i |]) in
  let y = Array.init 6 (fun i -> float_of_int i) in
  let w = Lstsq.fit (Matrix.of_rows rows) y in
  check_bool "finite" true (Array.for_all Float.is_finite w)

let test_lstsq_predict () =
  let x = Matrix.of_rows [| [| 1.0; 2.0 |] |] in
  Alcotest.(check (array (float 1e-12))) "predict" [| 8.0 |] (Lstsq.predict x [| 2.0; 3.0 |])

let test_lstsq_fit_predict () =
  let x = Matrix.of_rows [| [| 1.0; 0.0 |]; [| 1.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let y = [| 2.0; 4.0; 8.0 |] in
  let _, preds = Lstsq.fit_predict x y in
  Array.iteri (fun i p -> check_float_eps 1e-8 "interpolates" y.(i) p) preds

(* ------------------------------------------------------------- Polyfeat *)

let binomial n k =
  let k = Stdlib.min k (n - k) in
  let num = ref 1 and den = ref 1 in
  for i = 0 to k - 1 do
    num := !num * (n - i);
    den := !den * (i + 1)
  done;
  !num / !den

let test_polyfeat_dim () =
  (* output dim = C(arity + degree, degree) *)
  List.iter
    (fun (arity, degree) ->
      let f = Polyfeat.create ~arity ~degree () in
      check_int
        (Printf.sprintf "dim(%d,%d)" arity degree)
        (binomial (arity + degree) degree)
        (Polyfeat.output_dim f))
    [ (1, 3); (2, 2); (3, 4); (5, 2) ]

let test_polyfeat_constant_first () =
  let f = Polyfeat.create ~arity:2 ~degree:2 () in
  match Polyfeat.exponents f with
  | first :: _ -> Alcotest.(check (array int)) "constant term first" [| 0; 0 |] first
  | [] -> Alcotest.fail "no exponents"

let test_polyfeat_apply_line () =
  let f = Polyfeat.create ~arity:1 ~degree:2 () in
  Alcotest.(check (array (float 1e-12))) "1, x, x^2" [| 1.0; 3.0; 9.0 |]
    (Polyfeat.apply f [| 3.0 |])

let test_polyfeat_degree2_pair () =
  let f = Polyfeat.create ~arity:2 ~degree:2 () in
  let out = Polyfeat.apply f [| 2.0; 3.0 |] in
  let sorted = Array.copy out in
  Array.sort compare sorted;
  (* 1, 2, 3, 4, 6, 9 in some graded order *)
  Alcotest.(check (array (float 1e-12))) "all monomials" [| 1.0; 2.0; 3.0; 4.0; 6.0; 9.0 |] sorted

let test_polyfeat_arity_mismatch () =
  let f = Polyfeat.create ~arity:2 ~degree:1 () in
  Alcotest.check_raises "arity" (Invalid_argument "Polyfeat.apply: arity mismatch") (fun () ->
      ignore (Polyfeat.apply f [| 1.0 |]))

let test_polyfeat_caps () =
  (* Cap the first feature at exponent 1: x^2 monomials disappear. *)
  let f = Polyfeat.create ~caps:[| 1; 2 |] ~arity:2 ~degree:2 () in
  let has_x2 =
    List.exists (fun e -> e.(0) >= 2) (Polyfeat.exponents f)
  in
  check_bool "no x^2" false has_x2;
  let has_y2 = List.exists (fun e -> e.(1) = 2) (Polyfeat.exponents f) in
  check_bool "y^2 kept" true has_y2

let test_polyfeat_design_matrix () =
  let f = Polyfeat.create ~arity:1 ~degree:1 () in
  let m = Polyfeat.design_matrix f [| [| 2.0 |]; [| 5.0 |] |] in
  check_int "rows" 2 (Matrix.rows m);
  check_float "x value" 5.0 (Matrix.get m 1 1)

let prop_polyfeat_product_structure =
  qcheck_case "monomial values multiply" QCheck.(pair (float_range 0.5 2.0) (float_range 0.5 2.0))
    (fun (x, y) ->
      let f = Polyfeat.create ~arity:2 ~degree:3 () in
      let out = Polyfeat.apply f [| x; y |] in
      let exps = Array.of_list (Polyfeat.exponents f) in
      Array.for_all2
        (fun v e -> Float.abs (v -. ((x ** float_of_int e.(0)) *. (y ** float_of_int e.(1)))) < 1e-9)
        out exps)

let suite =
  [
    ( "matrix",
      [
        Alcotest.test_case "create zero" `Quick test_create_zero;
        Alcotest.test_case "create invalid" `Quick test_create_invalid;
        Alcotest.test_case "get/set" `Quick test_get_set;
        Alcotest.test_case "out of bounds" `Quick test_out_of_bounds;
        Alcotest.test_case "of_rows" `Quick test_of_rows;
        Alcotest.test_case "of_rows copies" `Quick test_of_rows_copies;
        Alcotest.test_case "of_rows ragged" `Quick test_of_rows_ragged;
        Alcotest.test_case "identity" `Quick test_identity;
        Alcotest.test_case "row/col" `Quick test_row_col;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "mul known" `Quick test_mul_known;
        Alcotest.test_case "mul identity" `Quick test_mul_identity;
        Alcotest.test_case "mul mismatch" `Quick test_mul_mismatch;
        Alcotest.test_case "mul_vec" `Quick test_mul_vec;
        Alcotest.test_case "add/scale" `Quick test_add_scale;
        Alcotest.test_case "solve known" `Quick test_solve_known;
        Alcotest.test_case "solve pivoting" `Quick test_solve_needs_pivoting;
        Alcotest.test_case "solve singular" `Quick test_solve_singular;
        prop_transpose_involution;
        prop_solve_recovers;
      ] );
    ( "qr",
      [
        Alcotest.test_case "R upper triangular" `Quick test_qr_r_upper_triangular;
        Alcotest.test_case "solve square" `Quick test_qr_solve_square;
        Alcotest.test_case "least squares" `Quick test_qr_least_squares;
        Alcotest.test_case "rank deficiency" `Quick test_qr_rank_deficiency_detected;
        Alcotest.test_case "wide rejected" `Quick test_qr_wide_rejected;
        prop_qr_matches_normal_equations;
      ] );
    ( "lstsq",
      [
        Alcotest.test_case "exact line" `Quick test_lstsq_exact_line;
        Alcotest.test_case "overdetermined" `Quick test_lstsq_overdetermined;
        Alcotest.test_case "ridge on collinear" `Quick test_lstsq_ridge_on_collinear;
        Alcotest.test_case "predict" `Quick test_lstsq_predict;
        Alcotest.test_case "fit_predict" `Quick test_lstsq_fit_predict;
      ] );
    ( "polyfeat",
      [
        Alcotest.test_case "output dim" `Quick test_polyfeat_dim;
        Alcotest.test_case "constant first" `Quick test_polyfeat_constant_first;
        Alcotest.test_case "apply line" `Quick test_polyfeat_apply_line;
        Alcotest.test_case "degree-2 pair" `Quick test_polyfeat_degree2_pair;
        Alcotest.test_case "arity mismatch" `Quick test_polyfeat_arity_mismatch;
        Alcotest.test_case "exponent caps" `Quick test_polyfeat_caps;
        Alcotest.test_case "design matrix" `Quick test_polyfeat_design_matrix;
        prop_polyfeat_product_structure;
      ] );
  ]
