(* Tests for Opprox_ml: Crossval, Mic, Polyreg, Dtree, Confidence. *)

module Crossval = Opprox_ml.Crossval
module Mic = Opprox_ml.Mic
module Polyreg = Opprox_ml.Polyreg
module Dtree = Opprox_ml.Dtree
module Confidence = Opprox_ml.Confidence
module Rng = Opprox_util.Rng
module Stats = Opprox_util.Stats
open Fixtures

(* ------------------------------------------------------------- Crossval *)

let test_folds_partition () =
  let rng = Rng.create 1 in
  let folds = Crossval.fold_indices ~rng ~n:23 ~k:5 in
  let all = Array.concat (Array.to_list folds) in
  Array.sort compare all;
  Alcotest.(check (array int)) "partition of 0..22" (Array.init 23 (fun i -> i)) all;
  Array.iter
    (fun f -> check_bool "balanced" true (Array.length f >= 4 && Array.length f <= 5))
    folds

let test_folds_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "k > n" (Invalid_argument "Crossval.fold_indices: need 2 <= k <= n")
    (fun () -> ignore (Crossval.fold_indices ~rng ~n:3 ~k:5))

let test_split () =
  let train, test = Crossval.split [| 10; 20; 30; 40 |] ~test:[| 2; 0 |] in
  Alcotest.(check (array int)) "test in index order" [| 10; 30 |] test;
  Alcotest.(check (array int)) "train keeps order" [| 20; 40 |] train

let test_crossval_score_linear () =
  let rng = Rng.create 2 in
  let xs = Array.init 40 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) +. 1.0) xs in
  let fit rows targets =
    let x = Opprox_linalg.Matrix.of_rows (Array.map (fun r -> [| 1.0; r.(0) |]) rows) in
    Opprox_linalg.Lstsq.fit x targets
  in
  let predict w row = w.(0) +. (w.(1) *. row.(0)) in
  let score = Crossval.score ~rng ~k:5 ~fit ~predict xs ys in
  check_bool "near-perfect CV score" true (score > 0.999)

(* ------------------------------------------------------------------ Mic *)

let test_equal_frequency_bins () =
  let bins = Mic.equal_frequency_bins [| 5.0; 1.0; 3.0; 2.0 |] 2 in
  Alcotest.(check (array int)) "median split" [| 1; 0; 1; 0 |] bins

let test_mic_linear () =
  let xs = Array.init 200 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> (3.0 *. x) -. 7.0) xs in
  check_bool "linear relation ~ 1" true (Mic.compute xs ys > 0.9)

let test_mic_nonmonotone () =
  (* MIC finds non-monotone functional relationships too. *)
  let xs = Array.init 200 (fun i -> float_of_int i /. 20.0) in
  let ys = Array.map (fun x -> sin x) xs in
  check_bool "sine relation high" true (Mic.compute xs ys > 0.6)

let test_mic_independent () =
  let rng = Rng.create 33 in
  let xs = Array.init 300 (fun _ -> Rng.uniform rng) in
  let ys = Array.init 300 (fun _ -> Rng.uniform rng) in
  check_bool "independent low" true (Mic.compute xs ys < 0.45)

let test_mic_constant () =
  check_float "constant input" 0.0 (Mic.compute (Array.make 50 1.0) (Array.init 50 float_of_int))

let test_mic_short () = check_float "too short" 0.0 (Mic.compute [| 1.0; 2.0 |] [| 1.0; 2.0 |])

let test_mic_symmetric_ballpark () =
  let xs = Array.init 150 (fun i -> float_of_int i) in
  let ys = Array.map (fun x -> x *. x) xs in
  let a = Mic.compute xs ys and b = Mic.compute ys xs in
  check_bool "roughly symmetric" true (Float.abs (a -. b) < 0.2)

let test_mutual_information_identical () =
  let bx = Array.init 100 (fun i -> i mod 4) in
  let mi = Mic.mutual_information bx bx ~nx:4 ~ny:4 in
  check_float_eps 1e-9 "H = 2 bits" 2.0 mi

let test_filter_features () =
  let rng = Rng.create 5 in
  let rows =
    Array.init 200 (fun i -> [| float_of_int i; Rng.uniform rng |])
  in
  let target = Array.map (fun r -> 2.0 *. r.(0)) rows in
  let kept = Mic.filter_features ~threshold:0.5 rows target in
  Alcotest.(check (list int)) "keeps informative column" [ 0 ] kept

let test_filter_features_keeps_best () =
  (* Nothing passes an impossible threshold: the best column survives. *)
  let rng = Rng.create 6 in
  let rows = Array.init 100 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
  let target = Array.init 100 (fun _ -> Rng.uniform rng) in
  check_int "exactly one kept" 1 (List.length (Mic.filter_features ~threshold:2.0 rows target))

(* -------------------------------------------------------------- Polyreg *)

let test_polyreg_recovers_quadratic () =
  let rng = Rng.create 7 in
  let rows = Array.init 60 (fun i -> [| float_of_int i /. 10.0 |]) in
  let ys = Array.map (fun r -> (1.5 *. r.(0) *. r.(0)) -. (2.0 *. r.(0)) +. 3.0) rows in
  let m = Polyreg.fit ~rng rows ys in
  check_bool "good cv" true (Polyreg.cv_r2 m > 0.99);
  let pred = Polyreg.predict m [| 2.5 |] in
  check_bool "interpolates" true (Float.abs (pred -. ((1.5 *. 6.25) -. 5.0 +. 3.0)) < 0.05)

let test_polyreg_constant_target () =
  let rng = Rng.create 8 in
  let rows = Array.init 10 (fun i -> [| float_of_int i |]) in
  let m = Polyreg.fit ~rng rows (Array.make 10 4.2) in
  check_float_eps 1e-9 "constant model" 4.2 (Polyreg.predict m [| 100.0 |]);
  check_int "degree 0" 0 (Polyreg.degree m)

let test_polyreg_two_features () =
  let rng = Rng.create 9 in
  let rows =
    Array.init 80 (fun i -> [| float_of_int (i mod 9); float_of_int (i / 9) |])
  in
  let ys = Array.map (fun r -> (r.(0) *. r.(1)) +. r.(0) |> Float.abs) rows in
  let m = Polyreg.fit ~rng rows ys in
  check_bool "captures interaction" true (Polyreg.cv_r2 m > 0.95)

let test_polyreg_respects_distinct_value_cap () =
  (* A feature with two observed values must not produce wild midpoint
     predictions (the regression is linear in it). *)
  let rng = Rng.create 10 in
  let rows =
    Array.init 40 (fun i -> [| (if i mod 2 = 0 then 0.0 else 1.0); float_of_int (i mod 7) |])
  in
  let ys = Array.map (fun r -> (3.0 *. r.(0)) +. r.(1)) rows in
  let m = Polyreg.fit ~rng rows ys in
  let mid = Polyreg.predict m [| 0.5; 3.0 |] in
  check_bool "midpoint sane" true (Float.abs (mid -. 4.5) < 0.5)

let test_polyreg_too_few_rows () =
  let rng = Rng.create 11 in
  Alcotest.check_raises "one row" (Invalid_argument "Polyreg.fit: need at least two rows")
    (fun () -> ignore (Polyreg.fit ~rng [| [| 1.0 |] |] [| 1.0 |]))

let test_polyreg_residuals_present () =
  let rng = Rng.create 12 in
  let rows = Array.init 30 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun r -> r.(0) +. Rng.range rng (-0.5) 0.5) rows in
  let m = Polyreg.fit ~rng rows ys in
  check_bool "has residuals" true (Array.length (Polyreg.residuals m) > 0)

let test_polyreg_mic_screening () =
  (* A pure-noise feature should be screened out. *)
  let rng = Rng.create 13 in
  let rows = Array.init 100 (fun i -> [| float_of_int i /. 10.0; Rng.uniform rng |]) in
  let ys = Array.map (fun r -> 2.0 *. r.(0)) rows in
  let config = { Polyreg.default_config with mic_threshold = Some 0.35 } in
  let m = Polyreg.fit ~config ~rng rows ys in
  check_bool "noise feature dropped" true (not (List.mem 1 (Polyreg.selected_features m)))

let test_polyreg_predictor_matches_predict () =
  (* The compiled predictor must be bit-identical to [predict], including
     on clamped out-of-range queries, and its reused scratch must not
     leak state between calls. *)
  let rng = Rng.create 15 in
  let rows = Array.init 80 (fun i -> [| float_of_int (i mod 9); float_of_int (i / 9) |]) in
  let ys = Array.map (fun r -> (r.(0) *. r.(1)) -. (0.5 *. r.(1)) +. 2.0) rows in
  let m = Polyreg.fit ~rng rows ys in
  let p = Polyreg.predictor m in
  for _pass = 1 to 2 do
    List.iter
      (fun row ->
        check_float_eps 0.0 "predictor = predict" (Polyreg.predict m row) (p row))
      [ [| 0.0; 0.0 |]; [| 4.0; 5.0 |]; [| 2.5; 7.3 |]; [| -10.0; 50.0 |]; [| 8.0; 8.0 |] ]
  done;
  let rng = Rng.create 16 in
  let const =
    Polyreg.fit ~rng (Array.init 10 (fun i -> [| float_of_int i |])) (Array.make 10 4.2)
  in
  check_float_eps 0.0 "constant model compiles" (Polyreg.predict const [| 3.0 |])
    (Polyreg.predictor const [| 3.0 |])

let prop_polyreg_linear_family =
  qcheck_case ~count:25 "fits arbitrary lines"
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      let rng = Rng.create 14 in
      let rows = Array.init 30 (fun i -> [| float_of_int i /. 5.0 |]) in
      let ys = Array.map (fun r -> (a *. r.(0)) +. b) rows in
      let m = Polyreg.fit ~rng rows ys in
      Float.abs (Polyreg.predict m [| 3.3 |] -. ((a *. 3.3) +. b)) < 0.05)

(* ---------------------------------------------------------------- Dtree *)

let test_gini_pure () = check_float "pure" 0.0 (Dtree.gini [| 1; 1; 1 |])
let test_gini_even () = check_float "50/50" 0.5 (Dtree.gini [| 0; 1; 0; 1 |])
let test_gini_empty () = check_float "empty" 0.0 (Dtree.gini [||])

let test_dtree_separable () =
  let rows = Array.init 20 (fun i -> [| float_of_int i |]) in
  let labels = Array.init 20 (fun i -> if i < 10 then 0 else 1) in
  let t = Dtree.fit rows labels in
  check_float "train accuracy" 1.0 (Dtree.accuracy t rows labels);
  check_int "predict left" 0 (Dtree.predict t [| 3.0 |]);
  check_int "predict right" 1 (Dtree.predict t [| 15.0 |])

let test_dtree_xor () =
  (* XOR needs depth 2: single-feature splits cannot express it at depth 1. *)
  let rows = [| [| 0.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 0.0 |]; [| 1.0; 1.0 |] |] in
  let labels = [| 0; 1; 1; 0 |] in
  let t = Dtree.fit rows labels in
  check_float "xor learned" 1.0 (Dtree.accuracy t rows labels);
  check_bool "depth >= 2" true (Dtree.depth t >= 2)

let test_dtree_single_class () =
  let t = Dtree.fit [| [| 1.0 |]; [| 2.0 |] |] [| 7; 7 |] in
  check_int "single leaf" 1 (Dtree.n_leaves t);
  check_int "constant prediction" 7 (Dtree.predict t [| 0.0 |])

let test_dtree_max_depth () =
  let rows = Array.init 64 (fun i -> [| float_of_int i |]) in
  let labels = Array.init 64 (fun i -> i mod 2) in
  let t = Dtree.fit ~config:{ Dtree.default_config with max_depth = 2 } rows labels in
  check_bool "depth bounded" true (Dtree.depth t <= 2)

let test_dtree_multiclass () =
  let rows = Array.init 30 (fun i -> [| float_of_int i |]) in
  let labels = Array.init 30 (fun i -> i / 10) in
  let t = Dtree.fit rows labels in
  check_float "3-class accuracy" 1.0 (Dtree.accuracy t rows labels)

let test_dtree_mismatch () =
  Alcotest.check_raises "labels" (Invalid_argument "Dtree.fit: label length mismatch") (fun () ->
      ignore (Dtree.fit [| [| 1.0 |] |] [| 1; 2 |]))

let prop_dtree_training_accuracy =
  (* With unlimited depth and distinct inputs the tree memorizes. *)
  qcheck_case ~count:30 "memorizes distinct points" QCheck.(int_range 2 40) (fun n ->
      let rng = Rng.create n in
      let rows = Array.init n (fun i -> [| float_of_int i; Rng.uniform rng |]) in
      let labels = Array.init n (fun _ -> Rng.int rng 3) in
      let t = Dtree.fit ~config:{ Dtree.default_config with max_depth = 30 } rows labels in
      Dtree.accuracy t rows labels = 1.0)

(* -------------------------------------------------------------- Regtree *)

module Regtree = Opprox_ml.Regtree

let test_regtree_linear () =
  (* A single global line: one leaf's linear model suffices. *)
  let rows = Array.init 60 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun r -> (2.0 *. r.(0)) +. 1.0) rows in
  let t = Regtree.fit rows ys in
  check_bool "near-perfect" true (Regtree.r2 t rows ys > 0.999);
  check_bool "prediction" true (Float.abs (Regtree.predict t [| 30.0 |] -. 61.0) < 0.1)

let test_regtree_piecewise () =
  (* Two regimes: the tree must split, linear leaves fit each side. *)
  let rows = Array.init 80 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun r -> if r.(0) < 40.0 then r.(0) else 200.0 -. (2.0 *. r.(0))) rows in
  let t = Regtree.fit rows ys in
  check_bool "split happened" true (Regtree.n_leaves t >= 2);
  check_bool "fits both regimes" true (Regtree.r2 t rows ys > 0.99)

let test_regtree_constant () =
  let rows = Array.init 20 (fun i -> [| float_of_int i |]) in
  let t = Regtree.fit rows (Array.make 20 3.5) in
  check_int "single leaf" 1 (Regtree.n_leaves t);
  check_float_eps 1e-9 "constant" 3.5 (Regtree.predict t [| 7.0 |])

let test_regtree_depth_bound () =
  let rng = Rng.create 51 in
  let rows = Array.init 200 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
  let ys = Array.map (fun r -> sin (10.0 *. r.(0)) +. r.(1)) rows in
  let config = { Regtree.default_config with max_depth = 3 } in
  let t = Regtree.fit ~config rows ys in
  check_bool "depth bounded" true (Regtree.depth t <= 3)

let test_regtree_clamps_extrapolation () =
  let rows = Array.init 30 (fun i -> [| float_of_int i |]) in
  let ys = Array.map (fun r -> 5.0 *. r.(0)) rows in
  let t = Regtree.fit rows ys in
  (* Far outside the data the prediction freezes at the boundary value. *)
  check_bool "clamped" true (Float.abs (Regtree.predict t [| 1000.0 |] -. (5.0 *. 29.0)) < 1.0)

let test_regtree_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Regtree.fit: no rows") (fun () ->
      ignore (Regtree.fit [||] [||]))

let test_regtree_roundtrip () =
  let rng = Rng.create 52 in
  let rows = Array.init 100 (fun _ -> [| Rng.uniform rng; Rng.uniform rng |]) in
  let ys = Array.map (fun r -> if r.(0) > 0.5 then r.(1) else -.r.(1)) rows in
  let t = Regtree.fit rows ys in
  let back = Regtree.of_sexp (Opprox_util.Sexp.of_string (Opprox_util.Sexp.to_string (Regtree.to_sexp t))) in
  Array.iter
    (fun row ->
      check_bool "same prediction" true
        (Float.abs (Regtree.predict t row -. Regtree.predict back row) < 1e-9))
    rows

(* ----------------------------------------------------------- Confidence *)

let test_confidence_quantile () =
  let resid = Array.init 100 (fun i -> float_of_int (i + 1) /. 100.0) in
  let ci = Confidence.of_residuals ~p:0.5 resid in
  check_bool "median of |resid|" true (Float.abs (Confidence.half_width ci -. 0.505) < 0.01)

let test_confidence_bounds () =
  let ci = Confidence.of_residuals ~p:1.0 [| -2.0; 1.0 |] in
  check_float "half width = max |r|" 2.0 (Confidence.half_width ci);
  let lo, hi = Confidence.interval ci 10.0 in
  check_float "lower" 8.0 lo;
  check_float "upper" 12.0 hi;
  check_float "upper fn" 12.0 (Confidence.upper ci 10.0);
  check_float "lower fn" 8.0 (Confidence.lower ci 10.0)

let test_confidence_empty () =
  let ci = Confidence.of_residuals [||] in
  check_float "zero width" 0.0 (Confidence.half_width ci)

let test_confidence_invalid_p () =
  Alcotest.check_raises "p" (Invalid_argument "Confidence.of_residuals: p outside [0,1]")
    (fun () -> ignore (Confidence.of_residuals ~p:1.5 [| 1.0 |]))

let suite =
  [
    ( "crossval",
      [
        Alcotest.test_case "folds partition" `Quick test_folds_partition;
        Alcotest.test_case "folds invalid" `Quick test_folds_invalid;
        Alcotest.test_case "split" `Quick test_split;
        Alcotest.test_case "score linear" `Quick test_crossval_score_linear;
      ] );
    ( "mic",
      [
        Alcotest.test_case "equal frequency bins" `Quick test_equal_frequency_bins;
        Alcotest.test_case "linear" `Quick test_mic_linear;
        Alcotest.test_case "non-monotone" `Quick test_mic_nonmonotone;
        Alcotest.test_case "independent" `Quick test_mic_independent;
        Alcotest.test_case "constant" `Quick test_mic_constant;
        Alcotest.test_case "short" `Quick test_mic_short;
        Alcotest.test_case "symmetric ballpark" `Quick test_mic_symmetric_ballpark;
        Alcotest.test_case "mutual information identical" `Quick test_mutual_information_identical;
        Alcotest.test_case "filter features" `Quick test_filter_features;
        Alcotest.test_case "filter keeps best" `Quick test_filter_features_keeps_best;
      ] );
    ( "polyreg",
      [
        Alcotest.test_case "recovers quadratic" `Quick test_polyreg_recovers_quadratic;
        Alcotest.test_case "constant target" `Quick test_polyreg_constant_target;
        Alcotest.test_case "two features" `Quick test_polyreg_two_features;
        Alcotest.test_case "distinct-value cap" `Quick test_polyreg_respects_distinct_value_cap;
        Alcotest.test_case "too few rows" `Quick test_polyreg_too_few_rows;
        Alcotest.test_case "residuals present" `Quick test_polyreg_residuals_present;
        Alcotest.test_case "mic screening" `Quick test_polyreg_mic_screening;
        Alcotest.test_case "predictor matches predict" `Quick test_polyreg_predictor_matches_predict;
        prop_polyreg_linear_family;
      ] );
    ( "dtree",
      [
        Alcotest.test_case "gini pure" `Quick test_gini_pure;
        Alcotest.test_case "gini even" `Quick test_gini_even;
        Alcotest.test_case "gini empty" `Quick test_gini_empty;
        Alcotest.test_case "separable" `Quick test_dtree_separable;
        Alcotest.test_case "xor" `Quick test_dtree_xor;
        Alcotest.test_case "single class" `Quick test_dtree_single_class;
        Alcotest.test_case "max depth" `Quick test_dtree_max_depth;
        Alcotest.test_case "multiclass" `Quick test_dtree_multiclass;
        Alcotest.test_case "length mismatch" `Quick test_dtree_mismatch;
        prop_dtree_training_accuracy;
      ] );
    ( "regtree",
      [
        Alcotest.test_case "linear" `Quick test_regtree_linear;
        Alcotest.test_case "piecewise" `Quick test_regtree_piecewise;
        Alcotest.test_case "constant" `Quick test_regtree_constant;
        Alcotest.test_case "depth bound" `Quick test_regtree_depth_bound;
        Alcotest.test_case "clamps extrapolation" `Quick test_regtree_clamps_extrapolation;
        Alcotest.test_case "validation" `Quick test_regtree_validation;
        Alcotest.test_case "sexp roundtrip" `Quick test_regtree_roundtrip;
      ] );
    ( "confidence",
      [
        Alcotest.test_case "quantile" `Quick test_confidence_quantile;
        Alcotest.test_case "bounds" `Quick test_confidence_bounds;
        Alcotest.test_case "empty" `Quick test_confidence_empty;
        Alcotest.test_case "invalid p" `Quick test_confidence_invalid_p;
      ] );
  ]
